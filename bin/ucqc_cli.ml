(** The [ucqc] command-line tool.

    Subcommands:
    - [count]      count answers to a UCQ in a database
    - [approx]     Karp-Luby approximate counting (Section 1.2)
    - [check]      static analysis / lint of query files (SARIF, JSON)
    - [optimize]   count-preserving cover rewrite of a query file
    - [meta]       decide linear-time countability (Theorem 5)
    - [classify]   structural measures for the Theorems 1/2/3 criteria
    - [wl-dim]     Weisfeiler–Leman dimension (Theorems 7/8/58)
    - [enumerate]  constant-delay enumeration of an acyclic CQ's answers
    - [euler]      reduced Euler characteristic of a facet-encoded complex
    - [pipeline]   the Lemma 51 SAT-hardness pipeline on a DIMACS file
    - [treewidth]  treewidth of the Gaifman graph of a database

    Query files use the {!Parse} surface syntax, e.g.
    [(x, y) :- E(x, z), E(z, y) ; E(x, y)].

    Resource budgets: [--max-steps] (deterministic) and [--timeout]
    (wall-clock) bound the exponential engines.  On exhaustion the tool
    degrades to a tagged approximate result and exits with code 2; with
    [--no-fallback] it fails with code 124 instead.  Malformed input is
    reported as a structured error on stderr with exit code 65; internal
    invariant failures exit with 70; exact successes with 0. *)

open Cmdliner

let read_file (path : string) : string =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

(* ------------------------------------------------------------------ *)
(* Error rendering and the top-level engine boundary                   *)
(* ------------------------------------------------------------------ *)

let fail_err (e : Ucqc_error.t) : int =
  Printf.eprintf "ucqc: %s\n" (Ucqc_error.to_string e);
  Ucqc_error.exit_code e

(** [guarded f] is the outermost boundary of every subcommand: [f] returns
    an exit code; any structured error — and any stray library escape —
    is rendered on stderr and mapped to its exit code. *)
let guarded (f : unit -> int) : int =
  match Runner.guard f with
  | Ok code -> code
  | Error e -> fail_err e
  | exception Sys_error msg -> fail_err (Ucqc_error.Unsupported msg)

let parse_ucq_file (path : string) : Ucq.t * Parse.query_env =
  match Parse.ucq_result (read_file path) with
  | Ok v -> v
  | Error e -> raise (Ucqc_error.Error e)

let parse_cq_file (path : string) : Cq.t * Parse.query_env =
  match Parse.cq_result (read_file path) with
  | Ok v -> v
  | Error e -> raise (Ucqc_error.Error e)

let parse_db_file (path : string) : Structure.t * Parse.db_env =
  match Parse.database_result (read_file path) with
  | Ok v -> v
  | Error e -> raise (Ucqc_error.Error e)

(* ------------------------------------------------------------------ *)
(* Shared flags                                                       *)
(* ------------------------------------------------------------------ *)

let query_arg =
  let doc = "Query file (surface syntax: '(x, y) :- E(x, z), E(z, y) ; ...')." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY" ~doc)

let max_steps_arg =
  let doc =
    "Bound the engines to $(docv) deterministic steps; exceeding the bound \
     degrades to an approximate result (exit 2) or, with --no-fallback, \
     fails with exit 124."
  in
  Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc = "Wall-clock deadline in seconds (fractions allowed)." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let no_fallback_arg =
  let doc =
    "Disable graceful degradation: exhausting the budget exits with 124 \
     and a structured error instead of an approximate result."
  in
  Arg.(value & flag & info [ "no-fallback" ] ~doc)

(* --optimize is the default for count: the rewrite is count-preserving
   by construction, so opting out is the exceptional path *)
let optimize_arg =
  let on =
    Arg.info [ "optimize" ]
      ~doc:
        "Apply the count-preserving cover optimizer before executing: \
         drop subsumed and duplicate disjuncts, minimize each survivor \
         to its #core.  The count is unchanged by construction; the \
         2^l engines see fewer disjuncts.  This is the default."
  in
  let off =
    Arg.info [ "no-optimize" ]
      ~doc:"Execute the query exactly as written, skipping the optimizer."
  in
  Arg.(value & vflag true [ (true, on); (false, off) ])

(* strict jobs parsing: 0, negatives and garbage are usage errors (exit
   64 through cmdliner's [`Parse]), not silent fallbacks to 1.  The env
   var [UCQC_JOBS] flows through the same converter. *)
let jobs_conv : int Arg.conv =
  let parse s =
    match Pool.validate_jobs s with
    | Ok n -> Ok n
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Worker domains for the parallel engines.  The default ($(docv) = 1) \
     runs every engine sequentially, bit-for-bit identical to the \
     single-threaded behaviour; higher values parallelise the \
     inclusion-exclusion terms, Karp-Luby sampling chunks, naive \
     assignment sweeps and treewidth root branches across OCaml domains \
     with deterministic (index-order) reduction.  Subcommands without a \
     parallel engine accept and ignore the flag.  Must be a positive \
     integer; anything else is a usage error."
  in
  let env = Cmd.Env.info "UCQC_JOBS" ~doc:"Default for $(b,--jobs)." in
  Arg.(value & opt jobs_conv 1 & info [ "jobs"; "j" ] ~docv:"N" ~env ~doc)

let pool_of (jobs : int) : Pool.t = Pool.create ~jobs ()

let budget_of max_steps timeout = Budget.make ?max_steps ?timeout ()

let exhaustion_note (e : Budget.exhaustion) (a : Runner.abandoned)
    (degraded_to : string) : unit =
  Printf.eprintf
    "ucqc: budget exhausted in phase %s after %d steps; abandoned attempt \
     consumed %d steps in %.3f s; degraded to %s\n"
    e.Budget.phase e.Budget.steps_done a.Runner.steps a.Runner.elapsed_s
    degraded_to

(* ------------------------------------------------------------------ *)
(* Observability flags                                                *)
(* ------------------------------------------------------------------ *)

type obs = { trace : string option; metrics : string option; stats : bool }

let obs_term : obs Term.t =
  let trace_arg =
    let doc =
      "Write a Chrome-trace / Perfetto JSON file of the run's spans to \
       $(docv) (open it at ui.perfetto.dev or chrome://tracing)."
    in
    Arg.(
      value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc = "Write counters, gauges and span aggregates as JSON to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let stats_arg =
    let doc = "Print an end-of-run per-phase summary table on stderr." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  Term.(
    const (fun trace metrics stats -> { trace; metrics; stats })
    $ trace_arg $ metrics_arg $ stats_arg)

(* Export files are written to a sibling temp file and renamed into
   place: a crash (or a signal racing the flush) leaves either the old
   file or the new one, never a truncated half-export — these files are
   read by dashboards and CI while the process may still be dying. *)
let write_file_with (path : string) (f : out_channel -> unit) : unit =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  match
    f oc;
    close_out oc
  with
  | () -> Sys.rename tmp path
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(** [flush_obs obs flushed] writes the requested exports exactly once
    ([flushed] makes it idempotent): the shared tail of the normal exit
    path, the signal path, and the server drain path. *)
let flush_obs (obs : obs) (flushed : bool Atomic.t) : unit =
  if not (Atomic.exchange flushed true) then begin
    Option.iter
      (fun path -> write_file_with path Telemetry.export_chrome_trace)
      obs.trace;
    Option.iter
      (fun path -> write_file_with path Telemetry.export_metrics)
      obs.metrics;
    if obs.stats then Telemetry.print_summary stderr
  end

let obs_wanted (obs : obs) : bool =
  obs.trace <> None || obs.metrics <> None || obs.stats

(** [with_obs obs name f] enables telemetry when any of [--trace],
    [--metrics], [--stats] was given, runs [f] under a root span
    [ucqc.<name>], and exports on the way out — also on error paths, so a
    budget-exhausted or degraded run still leaves its trace behind.
    Ctrl-C and SIGTERM flush too, then exit with the conventional
    128+signal code (130/143): an interrupted run keeps its partial
    trace. *)
let with_obs (obs : obs) (name : string) (f : unit -> int) : int =
  if not (obs_wanted obs) then f ()
  else begin
    Telemetry.enable ();
    let flushed = Atomic.make false in
    (* [exit] does not unwind [Fun.protect], so the handler must flush
       itself; [flushed] keeps the two paths from exporting twice *)
    let on_signal code =
      Sys.Signal_handle
        (fun _ ->
          flush_obs obs flushed;
          exit code)
    in
    let prev_int =
      try Some (Sys.signal Sys.sigint (on_signal 130)) with _ -> None
    in
    let prev_term =
      try Some (Sys.signal Sys.sigterm (on_signal 143)) with _ -> None
    in
    Fun.protect
      ~finally:(fun () ->
        (try Option.iter (Sys.set_signal Sys.sigint) prev_int with _ -> ());
        (try Option.iter (Sys.set_signal Sys.sigterm) prev_term with _ -> ());
        flush_obs obs flushed;
        Telemetry.disable ())
      (fun () -> Telemetry.with_span ("ucqc." ^ name) f)
  end

(* ------------------------------------------------------------------ *)
(* Static pre-flight (--lint)                                         *)
(* ------------------------------------------------------------------ *)

let lint_arg =
  let doc =
    "Run the static analyzer ('ucqc check') on the query before executing \
     and print its findings on stderr.  Informational only: the exit code \
     is unaffected (genuine errors surface through normal parsing)."
  in
  Arg.(value & flag & info [ "lint" ] ~doc)

(** The [--lint] pre-flight: analyze the query file under the analyzer's
    own default budget (never the run's execution budget) and report on
    stderr. *)
let lint_preflight (lint : bool) ~(pool : Pool.t) (path : string) : unit =
  if lint then
    let report = Runner.preflight ~pool ~path (read_file path) in
    List.iter
      (fun d -> Printf.eprintf "ucqc: %s\n" (Diagnostic.to_string ~path d))
      report.Analysis.diagnostics

(* ------------------------------------------------------------------ *)
(* count                                                              *)
(* ------------------------------------------------------------------ *)

let method_enum =
  Arg.enum
    [
      ("expansion", Runner.Expansion);
      ("ie", Runner.Inclusion_exclusion);
      ("naive", Runner.Naive);
    ]

let count_cmd =
  let db_arg =
    let doc = "Database file (facts: 'E(1, 2). E(2, 3).')." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DB" ~doc)
  in
  let method_arg =
    let doc =
      "Counting method: 'expansion' (CQ expansion, Lemma 26), 'ie' \
       (inclusion-exclusion), or 'naive' (enumeration; exponential)."
    in
    Arg.(value & opt method_enum Runner.Expansion & info [ "method" ] ~doc)
  in
  let seed_arg =
    let doc = "Random seed for the Karp-Luby fallback." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let run qfile dbfile via seed optimize max_steps timeout no_fallback jobs
      obs lint =
    guarded (fun () ->
        with_obs obs "count" @@ fun () ->
        let pool = pool_of jobs in
        lint_preflight lint ~pool qfile;
        let psi, _ = parse_ucq_file qfile in
        let db, _ = parse_db_file dbfile in
        let budget = budget_of max_steps timeout in
        match
          (* the optimizer also unlocks predictor-driven selection: the
             shrunken query is what the calibrated plan cost is fed *)
          Runner.count ~via ~fallback:(not no_fallback) ~optimize
            ~select:optimize ~seed ~pool ~budget psi db
        with
        | Ok (Runner.Exact n) ->
            Printf.printf "%d\n" n;
            Runner.exit_exact
        | Ok (Runner.Approximate { value; epsilon; delta; exhausted; abandoned })
          ->
            exhaustion_note exhausted abandoned
              (Printf.sprintf "Karp-Luby estimate (epsilon=%g, delta=%g)"
                 epsilon delta);
            Printf.printf "%.2f\n" value;
            Runner.exit_degraded
        | Error e -> fail_err e)
  in
  let doc = "Count answers to a union of conjunctive queries." in
  Cmd.v (Cmd.info "count" ~doc)
    Term.(
      const run $ query_arg $ db_arg $ method_arg $ seed_arg $ optimize_arg
      $ max_steps_arg $ timeout_arg $ no_fallback_arg $ jobs_arg $ obs_term
      $ lint_arg)

(* ------------------------------------------------------------------ *)
(* optimize                                                           *)
(* ------------------------------------------------------------------ *)

let optimize_cmd =
  let format_arg =
    let doc =
      "Output format: 'human' (the optimized query on stdout, the \
       rewrite report on stderr) or 'json' (the full structured report)."
    in
    Arg.(
      value
      & opt (Arg.enum [ ("human", `Human); ("json", `Json) ]) `Human
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let run qfile format max_steps timeout jobs obs =
    guarded (fun () ->
        with_obs obs "optimize" @@ fun () ->
        ignore (pool_of jobs : Pool.t);
        let psi, env = parse_ucq_file qfile in
        let budget =
          match (max_steps, timeout) with
          | None, None -> None
          | _ -> Some (budget_of max_steps timeout)
        in
        let report = Optimize.run ?budget psi in
        (match format with
        | `Human ->
            (* stdout is the rewritten query alone, so the output parses
               back as a query file; the report rides on stderr *)
            print_endline (Pretty.ucq ~env report.Optimize.optimized);
            Printf.eprintf "ucqc: %s\n"
              (String.concat "\nucqc: "
                 (String.split_on_char '\n' (Optimize.describe report)))
        | `Json ->
            print_endline
              (Trace_json.to_string (Optimize.report_to_json ~env report)));
        0)
  in
  let doc =
    "Apply the count-preserving cover optimizer to a query file and \
     print the rewritten query: subsumed and duplicate disjuncts are \
     dropped (each drop justified by a verified homomorphism fixing the \
     free variables), and every surviving disjunct is minimized to its \
     #core.  The rewritten query has the same count as the original on \
     every database."
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(
      const run $ query_arg $ format_arg $ max_steps_arg $ timeout_arg
      $ jobs_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* check                                                              *)
(* ------------------------------------------------------------------ *)

type check_format = Human | Json | Sarif_format

(* check-only --optimize: analysis stays as-written by default, the flag
   opts into the post-rewrite view (satellite of the optimizer pass) *)
let optimize_check_arg =
  let doc =
    "Also classify the query $(b,after) the count-preserving optimizer: \
     when the rewrite changes the update-maintenance tier, a UCQ405 \
     finding reports the post-rewrite tier alongside the as-written one."
  in
  Arg.(value & flag & info [ "optimize" ] ~doc)

let check_cmd =
  let files_arg =
    let doc = "Query files to analyze (surface syntax)." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"QUERY" ~doc)
  in
  let format_arg =
    let doc =
      "Output format: 'human' (one finding per line), 'json' (structured \
       reports), or 'sarif' (SARIF 2.1.0, one run covering every file)."
    in
    Arg.(
      value
      & opt
          (Arg.enum
             [ ("human", Human); ("json", Json); ("sarif", Sarif_format) ])
          Human
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  (* a deny spec is validated at parse time: usage errors (exit 64), not
     runtime failures *)
  let deny_conv : Diagnostic.deny Arg.conv =
    let parse s =
      match Diagnostic.deny_of_string s with
      | Ok d -> Ok d
      | Error msg -> Error (`Msg msg)
    in
    let print ppf (d : Diagnostic.deny) =
      Format.pp_print_string ppf
        (match d with
        | Diagnostic.Code c -> c
        | Diagnostic.At_least s -> Diagnostic.severity_to_string s)
    in
    Arg.conv ~docv:"SPEC" (parse, print)
  in
  let deny_arg =
    let doc =
      "Fail (exit 1) when a finding matches $(docv): a rule code (e.g. \
       'UCQ104') or a severity ('warning' denies warnings and errors). \
       Error-severity findings are always denied.  Repeatable."
    in
    Arg.(value & opt_all deny_conv [] & info [ "deny" ] ~docv:"SPEC" ~doc)
  in
  let tw_threshold_arg =
    let doc = "Contract treewidth above which UCQ201 fires." in
    Arg.(value & opt int 2 & info [ "tw-threshold" ] ~docv:"W" ~doc)
  in
  let ie_threshold_arg =
    let doc = "Disjunct count at which UCQ203 (2^l blowup) fires." in
    Arg.(value & opt int 8 & info [ "ie-threshold" ] ~docv:"L" ~doc)
  in
  let run files format denies tw_threshold ie_threshold optimize max_steps
      timeout jobs obs =
    guarded (fun () ->
        with_obs obs "check" @@ fun () ->
        let pool = pool_of jobs in
        let reports =
          List.map
            (fun path ->
              (* a fresh budget per file: one pathological query must not
                 starve the analysis of the files after it *)
              let budget =
                match (max_steps, timeout) with
                | None, None -> None
                | _ -> Some (budget_of max_steps timeout)
              in
              Analysis.check ?budget ~pool ~tw_threshold ~ie_threshold ~path
                (read_file path))
            files
        in
        (* under --optimize the maintenance tier the serve/watch engines
           will actually use is the post-rewrite one; when it differs
           from the as-written tier (UCQ207 / update_tier), say so *)
        let reports =
          if not optimize then reports
          else
            List.map2
              (fun path (r : Analysis.report) ->
                match
                  (r.Analysis.update_tier, Parse.ucq_result (read_file path))
                with
                | Some sel, Ok (psi, _) ->
                    let orep = Optimize.run psi in
                    let sel' = Tier.select orep.Optimize.optimized in
                    if orep.Optimize.changed && sel'.Tier.tier <> sel.Tier.tier
                    then
                      let d =
                        Diagnostic.make "UCQ405"
                          "maintenance tier changes under --optimize: tier \
                           %s as written, tier %s after the \
                           count-preserving rewrite (%s)"
                          (Tier.to_string sel.Tier.tier)
                          (Tier.to_string sel'.Tier.tier)
                          sel'.Tier.reason
                      in
                      {
                        r with
                        Analysis.diagnostics =
                          List.sort Diagnostic.compare
                            (d :: r.Analysis.diagnostics);
                      }
                    else r
                | _ -> r)
              files reports
        in
        (match format with
        | Human ->
            List.iter
              (fun r -> print_endline (Analysis.report_to_human r))
              reports
        | Json ->
            print_endline
              (Trace_json.to_string
                 (Trace_json.Arr (List.map Analysis.report_to_json reports)))
        | Sarif_format ->
            print_endline
              (Sarif.to_string
                 (Sarif.of_reports ~tool_version:Buildid.version reports)));
        let denied =
          List.concat_map (Analysis.denied_diagnostics denies) reports
        in
        if denied = [] then 0
        else begin
          Printf.eprintf "ucqc: check failed: %d denied finding%s\n"
            (List.length denied)
            (if List.length denied = 1 then "" else "s");
          if format <> Human then
            (* the findings went to stdout in machine form; repeat the
               denied ones on stderr for the human reading the CI log *)
            List.iter
              (fun d -> Printf.eprintf "ucqc: %s\n" (Diagnostic.to_string d))
              denied;
          1
        end)
  in
  let doc =
    "Statically analyze query files: structural lints, \
     complexity-theoretic findings (contract treewidth, free-connexity, \
     WL-dimension, inclusion-exclusion blowup) and a predicted execution \
     plan, as structured diagnostics with stable UCQnnn codes.  Exits 0 \
     when no finding is denied, 1 when one is ('--deny'), 64 on usage \
     errors."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ files_arg $ format_arg $ deny_arg $ tw_threshold_arg
      $ ie_threshold_arg $ optimize_check_arg $ max_steps_arg $ timeout_arg
      $ jobs_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* approx                                                             *)
(* ------------------------------------------------------------------ *)

let approx_cmd =
  let db_arg =
    let doc = "Database file." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DB" ~doc)
  in
  let samples_arg =
    let doc = "Sample budget for the Karp-Luby estimator." in
    Arg.(value & opt int 10_000 & info [ "samples" ] ~doc)
  in
  let seed_arg =
    let doc = "Random seed." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let run qfile dbfile samples seed max_steps timeout jobs obs =
    guarded (fun () ->
        with_obs obs "approx" @@ fun () ->
        let psi, _ = parse_ucq_file qfile in
        let db, _ = parse_db_file dbfile in
        let budget = budget_of max_steps timeout in
        let pool = pool_of jobs in
        match
          Budget.run budget ~phase:"approx" (fun () ->
              Karp_luby.estimate ~seed ~budget ~pool ~samples psi db)
        with
        | Ok est ->
            Printf.printf "estimate: %.2f (samples %d, space %d, hits %d)\n"
              est.Karp_luby.value est.Karp_luby.samples est.Karp_luby.space
              est.Karp_luby.hits;
            if est.Karp_luby.dropped > 0 then
              Printf.eprintf
                "ucqc: %d of %d draws failed and were excluded from the \
                 estimate\n"
                est.Karp_luby.dropped est.Karp_luby.samples;
            Runner.exit_exact
        | Error exhausted ->
            fail_err (Ucqc_error.of_exhaustion exhausted))
  in
  let doc =
    "Approximate the answer count with the Karp-Luby estimator (Section \
     1.2) — no exponential CQ expansion involved."
  in
  Cmd.v (Cmd.info "approx" ~doc)
    Term.(
      const run $ query_arg $ db_arg $ samples_arg $ seed_arg $ max_steps_arg
      $ timeout_arg $ jobs_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* meta                                                               *)
(* ------------------------------------------------------------------ *)

let meta_cmd =
  let run qfile max_steps timeout jobs obs lint =
    guarded (fun () ->
        with_obs obs "meta" @@ fun () ->
        let pool = pool_of jobs in
        lint_preflight lint ~pool qfile;
        let psi, env = parse_ucq_file qfile in
        let budget = budget_of max_steps timeout in
        match Runner.decide_meta ~pool ~budget psi with
        | Error e -> fail_err e
        | Ok d ->
            Printf.printf "linear-time countable: %b\n" d.Meta.linear_time;
            Printf.printf "expansion support (%d #minimal classes):\n"
              (List.length d.Meta.support);
            List.iter
              (fun (q, c) ->
                Printf.printf "  %+d  x  %s   [%s]\n" c
                  (Pretty.cq ~env q)
                  (if Cq.is_acyclic q then "acyclic" else "CYCLIC"))
              d.Meta.support;
            Runner.exit_exact)
  in
  let doc =
    "Decide whether counting answers is possible in linear time (META, \
     Theorem 5; quantifier-free unions only)."
  in
  Cmd.v (Cmd.info "meta" ~doc)
    Term.(
      const run $ query_arg $ max_steps_arg $ timeout_arg $ jobs_arg
      $ obs_term $ lint_arg)

(* ------------------------------------------------------------------ *)
(* classify                                                           *)
(* ------------------------------------------------------------------ *)

let classify_cmd =
  let gamma_arg =
    let doc = "Skip the exponential Gamma(C) measures." in
    Arg.(value & flag & info [ "no-gamma" ] ~doc)
  in
  let run qfile no_gamma jobs obs lint =
    guarded (fun () ->
        with_obs obs "classify" @@ fun () ->
        let pool = pool_of jobs in
        lint_preflight lint ~pool qfile;
        let psi, _ = parse_ucq_file qfile in
        let r = Classify.analyze ~with_gamma:(not no_gamma) ~pool psi in
        Printf.printf "disjuncts:               %d\n" r.Classify.num_disjuncts;
        Printf.printf "quantifier-free:         %b\n" r.Classify.quantifier_free;
        Printf.printf "union of self-join-free: %b\n"
          r.Classify.union_of_self_join_free;
        Printf.printf "quantified variables:    %d\n" r.Classify.num_quantified;
        Printf.printf "tw(/\\Psi):               %d\n" r.Classify.combined_tw;
        Printf.printf "tw(contract(/\\Psi)):     %d\n"
          r.Classify.combined_contract_tw;
        if not no_gamma then begin
          Printf.printf "max tw over Gamma:       %d\n" r.Classify.gamma_max_tw;
          Printf.printf "max ctw over Gamma:      %d\n"
            r.Classify.gamma_max_contract_tw
        end;
        let sel = Tier.select psi in
        Printf.printf "maintenance tier:        %s (%s; %s)\n"
          (Tier.to_string sel.Tier.tier)
          (Tier.describe sel.Tier.tier)
          sel.Tier.reason;
        Runner.exit_exact)
  in
  let doc = "Report the treewidth measures behind Theorems 1/2/3." in
  Cmd.v (Cmd.info "classify" ~doc)
    Term.(const run $ query_arg $ gamma_arg $ jobs_arg $ obs_term $ lint_arg)

(* ------------------------------------------------------------------ *)
(* wl-dim                                                             *)
(* ------------------------------------------------------------------ *)

let wl_dim_cmd =
  let approx_arg =
    let doc = "Use the polynomial-per-term approximation (Theorem 7)." in
    Arg.(value & flag & info [ "approx" ] ~doc)
  in
  let run qfile approx max_steps timeout no_fallback jobs obs =
    guarded (fun () ->
        with_obs obs "wl-dim" @@ fun () ->
        let psi, _ = parse_ucq_file qfile in
        let pool = pool_of jobs in
        if approx then begin
          (* explicitly requested bounds: not a degraded result *)
          let lo, hi = Wl_dimension.approximate psi in
          Printf.printf "dim_WL in [%d, %d]\n" lo hi;
          Runner.exit_exact
        end
        else begin
          let budget = budget_of max_steps timeout in
          match
            Runner.wl_dimension ~fallback:(not no_fallback) ~pool ~budget psi
          with
          | Ok (Runner.Exact_dim k) ->
              Printf.printf "dim_WL = %d\n" k;
              Runner.exit_exact
          | Ok (Runner.Bounds { lower; upper; exhausted; abandoned }) ->
              exhaustion_note exhausted abandoned
                "polynomial bound pair (Theorem 7)";
              Printf.printf "dim_WL in [%d, %d]\n" lower upper;
              Runner.exit_degraded
          | Error e -> fail_err e
        end)
  in
  let doc =
    "Compute the Weisfeiler-Leman dimension of a quantifier-free UCQ on \
     labelled graphs (Theorems 7/8/58)."
  in
  Cmd.v (Cmd.info "wl-dim" ~doc)
    Term.(
      const run $ query_arg $ approx_arg $ max_steps_arg $ timeout_arg
      $ no_fallback_arg $ jobs_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* euler                                                              *)
(* ------------------------------------------------------------------ *)

let euler_cmd =
  let file_arg =
    let doc = "Complex file: one facet per line, elements separated by spaces or commas." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"COMPLEX" ~doc)
  in
  let run path jobs obs =
    ignore (pool_of jobs);
    guarded (fun () ->
        with_obs obs "euler" @@ fun () ->
        let facets =
          read_file path |> String.split_on_char '\n'
          |> List.filter_map (fun line ->
                 let line = String.trim line in
                 if line = "" || line.[0] = '#' then None
                 else
                   Some
                     (String.split_on_char ' '
                        (String.map (fun c -> if c = ',' then ' ' else c) line)
                     |> List.filter (( <> ) "")
                     |> List.map int_of_string))
        in
        let ground = List.sort_uniq compare (List.concat facets) in
        let c = Scomplex.make ground facets in
        Printf.printf "ground set: %d elements, %d facets\n"
          (List.length (Scomplex.ground c))
          (List.length (Scomplex.facets c));
        Printf.printf "irreducible: %b\n" (Scomplex.is_irreducible c);
        Printf.printf "reduced Euler characteristic: %d\n" (Scomplex.euler c);
        Runner.exit_exact)
  in
  let doc = "Reduced Euler characteristic of a facet-encoded complex." in
  Cmd.v (Cmd.info "euler" ~doc)
    Term.(const run $ file_arg $ jobs_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* pipeline                                                           *)
(* ------------------------------------------------------------------ *)

let pipeline_cmd =
  let file_arg =
    let doc = "DIMACS CNF file (keep it tiny: the analysis is exponential)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CNF" ~doc)
  in
  let t_arg =
    let doc = "Clique parameter t of the K_t^k construction." in
    Arg.(value & opt int 3 & info [ "t" ] ~doc)
  in
  let run path t jobs obs =
    guarded (fun () ->
        with_obs obs "pipeline" @@ fun () ->
        let pool = pool_of jobs in
        let f = Cnf.parse_dimacs (read_file path) in
        (match Pipeline.ucq_of_cnf ~t f with
        | Pipeline.Resolved sat ->
            Printf.printf "resolved during preprocessing: satisfiable = %b\n"
              sat
        | Pipeline.Query { psi; ktk; complex } ->
            Printf.printf "power complex: |U| = %d, |Omega| = %d\n"
              (List.length complex.Power_complex.universe)
              (List.length complex.Power_complex.ground);
            Printf.printf "UCQ: %d CQs over K_%d^%d\n" (Ucq.length psi)
              ktk.Ktk.t_ ktk.Ktk.k;
            Printf.printf "c_Psi(K_t^k) = %d\n"
              (Ucq.coefficient psi (Ucq.combined_all psi));
            let d = Meta.decide ~pool psi in
            Printf.printf "META linear-time: %b  =>  formula %s\n"
              d.Meta.linear_time
              (if d.Meta.linear_time then "UNSATISFIABLE" else "SATISFIABLE"));
        Runner.exit_exact)
  in
  let doc = "Run the Lemma 51 SAT-hardness pipeline on a DIMACS file." in
  Cmd.v (Cmd.info "pipeline" ~doc)
    Term.(const run $ file_arg $ t_arg $ jobs_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* enumerate                                                          *)
(* ------------------------------------------------------------------ *)

let enumerate_cmd =
  let db_arg =
    let doc = "Database file." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DB" ~doc)
  in
  let limit_arg =
    let doc = "Print at most this many answers (0 = all)." in
    Arg.(value & opt int 20 & info [ "limit" ] ~doc)
  in
  let run qfile dbfile limit jobs obs =
    ignore (pool_of jobs);
    guarded (fun () ->
        with_obs obs "enumerate" @@ fun () ->
        let q, env = parse_cq_file qfile in
        let db, _ = parse_db_file dbfile in
        let e = Enumerate.prepare q db in
        let seq = Enumerate.answers e in
        let seq = if limit > 0 then Seq.take limit seq else seq in
        let names = List.map (Pretty.var_name env) (Cq.free q) in
        Printf.printf "(%s)\n" (String.concat ", " names);
        Seq.iter
          (fun a ->
            Printf.printf "(%s)\n"
              (String.concat ", " (List.map string_of_int a)))
          seq;
        Runner.exit_exact)
  in
  let doc =
    "Enumerate the answers of an acyclic quantifier-free CQ with constant \
     delay (Section 1.1)."
  in
  Cmd.v (Cmd.info "enumerate" ~doc)
    Term.(const run $ query_arg $ db_arg $ limit_arg $ jobs_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* treewidth                                                          *)
(* ------------------------------------------------------------------ *)

let treewidth_cmd =
  let file_arg =
    let doc = "Database file (its Gaifman graph is decomposed)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DB" ~doc)
  in
  let exact_arg =
    let doc = "Force the exact (exponential) algorithm regardless of size." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run path force_exact max_steps timeout no_fallback jobs obs =
    guarded (fun () ->
        with_obs obs "treewidth" @@ fun () ->
        let d, _ = parse_db_file path in
        let g, _ = Structure.gaifman d in
        if force_exact || Graph.num_vertices g <= 20 then begin
          let budget = budget_of max_steps timeout in
          let pool = pool_of jobs in
          match
            Runner.treewidth ~fallback:(not no_fallback) ~pool ~budget g
          with
          | Ok (Runner.Exact_width w) ->
              Printf.printf "treewidth = %d (exact)\n" w;
              Runner.exit_exact
          | Ok (Runner.Heuristic { lower; upper; exhausted; abandoned }) ->
              exhaustion_note exhausted abandoned "heuristic treewidth bounds";
              Printf.printf "treewidth in [%d, %d] (heuristic)\n" lower upper;
              Runner.exit_degraded
          | Error e -> fail_err e
        end
        else begin
          (* size-gated heuristic: requested behaviour, not degradation *)
          let ub, _ = Treewidth.heuristic g in
          Printf.printf
            "treewidth in [%d, %d] (heuristic; use --exact to force)\n"
            (Treewidth.lower_bound g) ub;
          Runner.exit_exact
        end)
  in
  let doc = "Treewidth of the Gaifman graph of a database." in
  Cmd.v (Cmd.info "treewidth" ~doc)
    Term.(
      const run $ file_arg $ exact_arg $ max_steps_arg $ timeout_arg
      $ no_fallback_arg $ jobs_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* watch                                                              *)
(* ------------------------------------------------------------------ *)

let watch_cmd =
  let files_arg =
    let doc =
      "Query files followed by the database file: the last $(docv) is the \
       database, every earlier one a query to keep counted."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let input_arg =
    let doc = "Read delta lines from $(docv) instead of stdin." in
    Arg.(value & opt (some file) None & info [ "input" ] ~docv:"FILE" ~doc)
  in
  let final_db_arg =
    let doc =
      "After the stream ends, write the final database in .facts syntax to \
       $(docv) — a one-shot 'ucqc count' on it must agree with the last \
       streamed counts."
    in
    Arg.(
      value & opt (some string) None & info [ "final-db" ] ~docv:"FILE" ~doc)
  in
  let run files input final_db max_steps timeout no_fallback jobs obs =
    guarded (fun () ->
        with_obs obs "watch" @@ fun () ->
        let qfiles, dbfile =
          match List.rev files with
          | db :: (_ :: _ as qs) -> (List.rev qs, db)
          | _ ->
              raise
                (Ucqc_error.Error
                   (Ucqc_error.Unsupported
                      "watch needs at least one query file and a database \
                       file"))
        in
        let pool = pool_of jobs in
        let db0, env = parse_db_file dbfile in
        let d = Delta.open_db ~env db0 in
        let queries = List.map (fun p -> (p, fst (parse_ucq_file p))) qfiles in
        let fresh_budget () =
          match (max_steps, timeout) with
          | None, None -> None
          | _ -> Some (budget_of max_steps timeout)
        in
        let states =
          List.map
            (fun (p, psi) -> (p, Delta.prepare ?budget:(fresh_budget ()) psi d))
            queries
        in
        let g_epoch = Telemetry.gauge "watch.db.epoch" in
        let c_applied = Telemetry.counter "watch.updates.applied" in
        let c_noop = Telemetry.counter "watch.updates.noop" in
        let c_rejected = Telemetry.counter "watch.updates.rejected" in
        let c_maintained = Telemetry.counter "watch.counts.maintained" in
        let c_memoized = Telemetry.counter "watch.counts.memoized" in
        let c_recomputed = Telemetry.counter "watch.counts.recomputed" in
        let any_rejected = ref false in
        let any_degraded = ref false in
        (* one count per query: read off the maintained state when it is
           live, otherwise recompute exactly and memoize.  [None] means
           the budget ran out: the count is unavailable this epoch but
           the stream keeps going (degraded, exit 2) — unless
           --no-fallback turned that into a hard 124. *)
        let count_for (st : Delta.state) : int option * string =
          match Delta.maintained_count st d with
          | Some (n, Delta.Maintained) ->
              Telemetry.incr c_maintained;
              (Some n, "maintained")
          | Some (n, Delta.Memoized) ->
              Telemetry.incr c_memoized;
              (Some n, "memoized")
          | None -> (
              match
                Runner.count ~via:Runner.Expansion ~fallback:false ~seed:1
                  ~pool
                  ~budget:(budget_of max_steps timeout)
                  (Delta.query st) (Delta.structure d)
              with
              | Ok (Runner.Exact n) ->
                  Telemetry.incr c_recomputed;
                  Delta.memoize st d n;
                  (Some n, "recomputed")
              | Ok (Runner.Approximate _) ->
                  (* unreachable with ~fallback:false; treat as absent *)
                  (None, "unavailable")
              | Error e ->
                  if no_fallback then raise (Ucqc_error.Error e);
                  any_degraded := true;
                  (None, "unavailable"))
        in
        let counts_json () : Trace_json.t =
          Trace_json.Arr
            (List.map
               (fun (path, st) ->
                 let n, source = count_for st in
                 Trace_json.Obj
                   ([
                      ("query", Trace_json.Str path);
                      ( "count",
                        match n with
                        | Some n -> Trace_json.Num (float_of_int n)
                        | None -> Trace_json.Null );
                      ("source", Trace_json.Str source);
                      ( "tier",
                        Trace_json.Str
                          (Tier.to_string (Delta.effective_tier st)) );
                    ]
                   @
                   match Delta.degraded st with
                   | None -> []
                   | Some reason ->
                       any_degraded := true;
                       [ ("degraded", Trace_json.Str reason) ]))
               states)
        in
        let emit (fields : (string * Trace_json.t) list) : unit =
          print_endline (Trace_json.to_string (Trace_json.Obj fields));
          flush stdout
        in
        let emit_rejected lineno text (e : Ucqc_error.t) : unit =
          any_rejected := true;
          Telemetry.incr c_rejected;
          emit
            [
              ("line", Trace_json.Num (float_of_int lineno));
              ("status", Trace_json.Str "rejected");
              ("input", Trace_json.Str text);
              ("error", Trace_json.Str (Ucqc_error.to_string e));
            ]
        in
        (* the epoch-0 snapshot: initial counts and each query's selected
           tier with the classifier's reason *)
        emit
          [
            ("line", Trace_json.Num 0.);
            ("status", Trace_json.Str "initial");
            ("epoch", Trace_json.Num (float_of_int (Delta.epoch d)));
            ( "tiers",
              Trace_json.Arr
                (List.map
                   (fun (path, st) ->
                     let sel = Delta.selection st in
                     Trace_json.Obj
                       [
                         ("query", Trace_json.Str path);
                         ("tier", Trace_json.Str (Tier.to_string sel.Tier.tier));
                         ("reason", Trace_json.Str sel.Tier.reason);
                       ])
                   states) );
            ("counts", counts_json ());
          ];
        let ic = match input with Some p -> open_in p | None -> stdin in
        Fun.protect
          ~finally:(fun () -> if input <> None then close_in_noerr ic)
          (fun () ->
            let lineno = ref 0 in
            (try
               while true do
                 let text = input_line ic in
                 incr lineno;
                 let lineno = !lineno in
                 match Delta_parse.line ~lineno text with
                 | Ok Delta_parse.Blank -> ()
                 | Error e -> emit_rejected lineno text e
                 | Ok (Delta_parse.Deltas specs) -> (
                     (* resolve and validate the whole batch before
                        applying any of it: a bad delta in an NDJSON
                        'apply' rejects the batch atomically *)
                     let resolved =
                       List.fold_left
                         (fun acc spec ->
                           match acc with
                           | Error _ -> acc
                           | Ok us -> (
                               match Delta.resolve d spec with
                               | Ok u -> Ok (u :: us)
                               | Error e -> Error e))
                         (Ok []) specs
                     in
                     match resolved with
                     | Error e -> emit_rejected lineno text e
                     | Ok rev_updates ->
                         let applied = ref 0 in
                         let noops = ref 0 in
                         List.iter
                           (fun u ->
                             match Delta.apply d u with
                             | Error e ->
                                 (* validated above; a failure here is an
                                    invariant break *)
                                 raise
                                   (Ucqc_error.Error
                                      (Ucqc_error.Internal
                                         ("watch: validated delta failed to \
                                           apply: "
                                         ^ Ucqc_error.to_string e)))
                             | Ok r ->
                                 if r.Delta.changed then begin
                                   incr applied;
                                   Telemetry.incr c_applied;
                                   List.iter
                                     (fun (_, st) ->
                                       Delta.apply_state
                                         ?budget:(fresh_budget ()) st d r)
                                     states
                                 end
                                 else begin
                                   incr noops;
                                   Telemetry.incr c_noop
                                 end)
                           (List.rev rev_updates);
                         Telemetry.set_gauge g_epoch
                           (float_of_int (Delta.epoch d));
                         emit
                           [
                             ("line", Trace_json.Num (float_of_int lineno));
                             ("status", Trace_json.Str "ok");
                             ("applied", Trace_json.Num (float_of_int !applied));
                             ("noop", Trace_json.Num (float_of_int !noops));
                             ( "epoch",
                               Trace_json.Num (float_of_int (Delta.epoch d)) );
                             ("counts", counts_json ());
                           ])
               done
             with End_of_file -> ());
            Option.iter
              (fun path ->
                write_file_with path (fun oc ->
                    output_string oc (Delta.render_facts (Delta.structure d))))
              final_db;
            if !any_rejected then Ucqc_error.exit_code (Ucqc_error.Unsupported "")
            else if !any_degraded then Runner.exit_degraded
            else Runner.exit_exact))
  in
  let doc =
    "Watch a stream of fact deltas ('+E(1,2)' / '-E(1,2)', or the NDJSON \
     forms) against a set of queries, emitting updated counts after every \
     change.  Counts are maintained incrementally where the theory \
     allows: tier A (q-hierarchical dynamic counting, O(1) per update), \
     tier B (delta evaluation through the changed tuple), tier C (lazy \
     recompute, memoized per epoch).  Rejected deltas are reported and \
     skipped (final exit 65); budget exhaustion degrades (exit 2) unless \
     --no-fallback makes it fatal (124)."
  in
  Cmd.v (Cmd.info "watch" ~doc)
    Term.(
      const run $ files_arg $ input_arg $ final_db_arg $ max_steps_arg
      $ timeout_arg $ no_fallback_arg $ jobs_arg $ obs_term)

(* ------------------------------------------------------------------ *)
(* serve                                                              *)
(* ------------------------------------------------------------------ *)

let hostport_conv : (string * int) Arg.conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg "expected HOST:PORT")
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 && host <> "" -> Ok (host, p)
        | _ -> Error (`Msg "expected HOST:PORT"))
  in
  let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
  Arg.conv ~docv:"HOST:PORT" (parse, print)

let serve_cmd =
  let db_arg =
    let doc = "Database file, loaded once and shared by every request." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DB" ~doc)
  in
  let socket_arg =
    let doc = "Listen on a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let port_arg =
    let doc = "Listen on TCP port $(docv) (see --host)." in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let host_arg =
    let doc = "Bind address for --port." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let queue_depth_arg =
    let doc =
      "Admission-queue bound: requests beyond $(docv) outstanding are shed \
       with an 'overloaded' response and a retry hint."
    in
    Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N" ~doc)
  in
  let max_frame_arg =
    let doc = "Reject request frames larger than $(docv) bytes." in
    Arg.(
      value & opt int (1 lsl 20) & info [ "max-frame-bytes" ] ~docv:"N" ~doc)
  in
  let idle_timeout_arg =
    let doc = "Close connections idle for $(docv) seconds." in
    Arg.(value & opt float 300. & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let request_timeout_arg =
    let doc =
      "Per-request wall-clock cap in seconds (also the default when a \
       request asks for none); 0 disables the cap."
    in
    Arg.(
      value & opt float 30. & info [ "request-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_steps_cap_arg =
    let doc =
      "Per-request deterministic step cap; a request's own max_steps is \
       clamped to it."
    in
    Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N" ~doc)
  in
  let cache_size_arg =
    let doc = "Prepared-query cache entries (0 disables the cache)." in
    Arg.(value & opt int 256 & info [ "cache-size" ] ~docv:"N" ~doc)
  in
  let drain_deadline_arg =
    let doc =
      "Graceful-drain allowance on shutdown: past $(docv) seconds the \
       backlog is answered 'shutting_down' and the in-flight request is \
       cancelled."
    in
    Arg.(
      value & opt float 5. & info [ "drain-deadline" ] ~docv:"SECONDS" ~doc)
  in
  let max_connections_arg =
    let doc = "Concurrent client connections; excess is shed at accept." in
    Arg.(value & opt int 128 & info [ "max-connections" ] ~docv:"N" ~doc)
  in
  let metrics_addr_arg =
    let doc =
      "Serve the observability HTTP plane (GET /metrics in Prometheus text \
       exposition, /healthz, /readyz) on $(docv).  Port 0 lets the kernel \
       pick; the bound address is printed on stderr.  Scrapes never touch \
       the evaluator thread."
    in
    Arg.(
      value
      & opt (some hostport_conv) None
      & info [ "metrics-addr" ] ~docv:"HOST:PORT" ~doc)
  in
  let access_log_arg =
    let doc =
      "Append one JSON line per evaluated request (request id, op, status, \
       latency, queue wait) to $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "access-log" ] ~docv:"FILE" ~doc)
  in
  let slow_query_log_arg =
    let doc =
      "Append one JSON line to $(docv) whenever a query's observed step \
       count exceeds --slow-factor times the static plan's cost \
       prediction: the plan-drift log."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "slow-query-log" ] ~docv:"FILE" ~doc)
  in
  let slow_factor_arg =
    let doc = "Drift threshold for --slow-query-log (observed / predicted)." in
    Arg.(value & opt float 8. & info [ "slow-factor" ] ~docv:"K" ~doc)
  in
  let no_optimize_arg =
    let doc =
      "Disable the count-preserving cover optimizer: prepared queries \
       are evaluated and maintained exactly as written.  By default each \
       query is optimized once, at prepare time, and the rewrite is \
       cached with the entry."
    in
    Arg.(value & flag & info [ "no-optimize" ] ~doc)
  in
  let run dbfile socket port host queue_depth max_frame_bytes idle_timeout_s
      request_timeout max_steps_cap cache_capacity drain_deadline_s
      max_connections metrics_addr access_log slow_query_log slow_factor
      no_optimize jobs obs =
    guarded (fun () ->
        let listen =
          match (socket, port) with
          | Some path, None -> Server.Unix_socket path
          | None, Some p -> Server.Tcp { host; port = p }
          | Some _, Some _ ->
              raise
                (Ucqc_error.Error
                   (Ucqc_error.Unsupported
                      "--socket and --port are mutually exclusive"))
          | None, None ->
              raise
                (Ucqc_error.Error
                   (Ucqc_error.Unsupported
                      "serve needs a listen address: --socket PATH or --port \
                       PORT"))
        in
        let db, db_env = parse_db_file dbfile in
        let cfg =
          {
            Server.listen;
            jobs;
            queue_depth;
            max_frame_bytes;
            idle_timeout_s;
            request_timeout_s =
              (if request_timeout <= 0. then None else Some request_timeout);
            max_steps_cap;
            cache_capacity;
            drain_deadline_s;
            max_connections;
            metrics_addr;
            access_log;
            slow_query_log;
            slow_factor;
            optimize = not no_optimize;
          }
        in
        (* serve manages its own telemetry lifecycle instead of [with_obs]:
           there is no root span (requests are the roots), and the flush
           must happen after the drain has joined every thread *)
        let wanted = obs_wanted obs in
        if wanted then Telemetry.enable ();
        let t = Server.start ~env:db_env cfg ~db in
        Server.install_signal_stop t;
        Printf.eprintf "ucqc: serving %s (jobs %d)\n%!"
          (match listen with
          | Server.Unix_socket p -> Printf.sprintf "unix:%s" p
          | Server.Tcp { host; port } -> Printf.sprintf "%s:%d" host port)
          jobs;
        (match (metrics_addr, Server.metrics_port t) with
        | Some (mhost, _), Some mport ->
            (* obs_check and operators parse this line for the actual
               port, so --metrics-addr HOST:0 is usable in scripts *)
            Printf.eprintf "ucqc: metrics on http://%s:%d/metrics\n%!" mhost
              mport
        | _ -> ());
        Server.wait_until_stop_requested t;
        let discarded = Server.stop t in
        if discarded > 0 then
          Printf.eprintf
            "ucqc: drain deadline exceeded; %d queued request%s answered \
             shutting_down\n"
            discarded
            (if discarded = 1 then "" else "s");
        if wanted then begin
          flush_obs obs (Atomic.make false);
          Telemetry.disable ()
        end;
        (* a signal-driven drain is the intended way to stop the server:
           it exits 0, unlike the one-shot commands' 130/143 *)
        ignore (Server.last_signal t);
        0)
  in
  let doc =
    "Serve count/classify/check requests over a Unix or TCP socket \
     (newline-delimited JSON).  The database is loaded once; queries are \
     prepared once and cached; per-request budgets, admission control \
     with load shedding, and a graceful SIGINT/SIGTERM drain keep the \
     process healthy under faults and overload."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ db_arg $ socket_arg $ port_arg $ host_arg $ queue_depth_arg
      $ max_frame_arg $ idle_timeout_arg $ request_timeout_arg
      $ max_steps_cap_arg $ cache_size_arg $ drain_deadline_arg
      $ max_connections_arg $ metrics_addr_arg $ access_log_arg
      $ slow_query_log_arg $ slow_factor_arg $ no_optimize_arg $ jobs_arg
      $ obs_term)

(* ------------------------------------------------------------------ *)
(* top                                                                *)
(* ------------------------------------------------------------------ *)

(* A one-request HTTP client sized for a localhost ops port: connect,
   one GET, read to EOF (the gateway answers with Connection: close). *)
let http_get ~(host : string) ~(port : int) (target : string) :
    (string, string) result =
  let addr =
    try Unix.inet_addr_of_string host
    with _ -> (
      match
        Unix.getaddrinfo host ""
          [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> Unix.inet_addr_loopback
      | exception _ -> Unix.inet_addr_loopback)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  match
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
    Unix.connect fd (Unix.ADDR_INET (addr, port))
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))
  | () -> (
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
          target host
      in
      match
        let pos = ref 0 in
        while !pos < String.length req do
          pos :=
            !pos
            + Unix.write_substring fd req !pos (String.length req - !pos)
        done;
        let buf = Bytes.create 8192 in
        let acc = Buffer.create 8192 in
        let rec drain () =
          match Unix.read fd buf 0 (Bytes.length buf) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes acc buf 0 n;
              drain ()
        in
        drain ();
        Buffer.contents acc
      with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "read: %s" (Unix.error_message e))
      | raw -> (
          let len = String.length raw in
          let rec head_end i =
            if i + 4 > len then None
            else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
            else head_end (i + 1)
          in
          match head_end 0 with
          | None -> Error "malformed HTTP response"
          | Some b ->
              let status_line =
                match String.index_opt raw '\r' with
                | Some i -> String.sub raw 0 i
                | None -> raw
              in
              if
                String.length status_line >= 12
                && String.sub status_line 9 3 = "200"
              then Ok (String.sub raw b (len - b))
              else Error status_line))

let top_cmd =
  let addr_arg =
    let doc = "The server's --metrics-addr (HOST:PORT)." in
    Arg.(
      required
      & pos 0 (some hostport_conv) None
      & info [] ~docv:"HOST:PORT" ~doc)
  in
  let interval_arg =
    let doc = "Seconds between refreshes." in
    Arg.(value & opt float 2. & info [ "interval"; "n" ] ~docv:"SECONDS" ~doc)
  in
  let once_arg =
    let doc = "Scrape once, print one snapshot, exit." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let ops =
    [ "count"; "classify"; "check"; "insert"; "delete"; "apply"; "ping"; "stats" ]
  in
  let render_top ~(host : string) ~(port : int)
      ~(prev : (float * Prometheus.sample list) option) (now_t : float)
      (samples : Prometheus.sample list) : string =
    let b = Buffer.create 2048 in
    let v ?labels name = Prometheus.find ?labels samples name in
    let gf ?labels name = Option.value (v ?labels name) ~default:0. in
    let build =
      List.find_opt
        (fun s -> s.Prometheus.sname = "ucqc_build_info")
        samples
    in
    let label k =
      match build with
      | Some s ->
          Option.value
            (List.assoc_opt k s.Prometheus.slabels)
            ~default:"unknown"
      | None -> "unknown"
    in
    let uptime = gf "ucqc_uptime_seconds" in
    Buffer.add_string b
      (Printf.sprintf "ucqc top — %s:%d — v%s (%s) — up %dh%02dm%02ds%s\n"
         host port (label "version")
         (let c = label "commit" in
          if String.length c > 12 then String.sub c 0 12 else c)
         (int_of_float uptime / 3600)
         (int_of_float uptime / 60 mod 60)
         (int_of_float uptime mod 60)
         (if gf "ucqc_draining" > 0. then "  [DRAINING]" else ""));
    Buffer.add_string b
      (Printf.sprintf
         "conns %d   queue %d (ewma %.1f ms)   pool %d/%d idle   cache %d   \
          slow %d\n\n"
         (int_of_float (gf "ucqc_connections_active"))
         (int_of_float (gf "ucqc_queue_depth"))
         (gf "ucqc_queue_service_ewma_ms")
         (int_of_float (gf "ucqc_pool_domains_idle"))
         (int_of_float (gf "ucqc_pool_domains_spawned"))
         (int_of_float (gf "ucqc_cache_entries"))
         (int_of_float (gf "ucqc_serve_slow_queries_total")));
    Buffer.add_string b
      (Printf.sprintf "%-10s %10s %8s %9s %9s %9s\n" "op" "total" "req/s"
         "p50(ms)" "p95(ms)" "p99(ms)");
    let quant op q =
      match
        v
          ~labels:[ ("op", op); ("quantile", q); ("window", "60s") ]
          "ucqc_rolling_latency_ms"
      with
      | Some x -> Printf.sprintf "%9.2f" x
      | None -> Printf.sprintf "%9s" "-"
    in
    let counter_of smps op =
      Prometheus.find smps ("ucqc_serve_requests_" ^ op ^ "_total")
    in
    let row op (total : float option) =
      let rate =
        match (prev, total) with
        | Some (pt, psamples), Some now_total -> (
            match counter_of psamples op with
            | Some was when now_t > pt ->
                Printf.sprintf "%8.1f" ((now_total -. was) /. (now_t -. pt))
            | _ -> Printf.sprintf "%8s" "-")
        | _ -> Printf.sprintf "%8s" "-"
      in
      Buffer.add_string b
        (Printf.sprintf "%-10s %10.0f %s %s %s %s\n" op
           (Option.value total ~default:0.)
           rate (quant op "0.5") (quant op "0.95") (quant op "0.99"))
    in
    let totals = List.map (fun op -> counter_of samples op) ops in
    let all_total =
      List.fold_left
        (fun acc t -> acc +. Option.value t ~default:0.)
        0. totals
    in
    (* the "all" rate needs an "all" counter in both scrapes: synthesize
       it from the per-op sums the same way in prev and now *)
    let all_rate =
      match prev with
      | Some (pt, psamples) when now_t > pt ->
          let was =
            List.fold_left
              (fun acc op ->
                acc +. Option.value (counter_of psamples op) ~default:0.)
              0. ops
          in
          Printf.sprintf "%8.1f" ((all_total -. was) /. (now_t -. pt))
      | _ -> Printf.sprintf "%8s" "-"
    in
    Buffer.add_string b
      (Printf.sprintf "%-10s %10.0f %s %s %s %s\n" "all" all_total all_rate
         (quant "all" "0.5") (quant "all" "0.95") (quant "all" "0.99"));
    List.iter2 (fun op total -> row op total) ops totals;
    Buffer.contents b
  in
  let run (host, port) interval once =
    let tty = Unix.isatty Unix.stdout in
    let rec loop (prev : (float * Prometheus.sample list) option) : int =
      let now_t = Unix.gettimeofday () in
      match
        match http_get ~host ~port "/metrics" with
        | Error e -> Error e
        | Ok body -> Prometheus.parse body
      with
      | Error msg ->
          Printf.eprintf "ucqc: top: %s\n%!" msg;
          if once then 74
          else begin
            Thread.delay (Float.max 0.1 interval);
            loop prev
          end
      | Ok samples ->
          if tty && not once then print_string "\027[H\027[2J";
          print_string (render_top ~host ~port ~prev now_t samples);
          flush stdout;
          if once then 0
          else begin
            Thread.delay (Float.max 0.1 interval);
            loop (Some (now_t, samples))
          end
    in
    loop None
  in
  let doc =
    "Live dashboard for a running server: polls the --metrics-addr \
     endpoint and renders request rates, rolling latency quantiles \
     (p50/p95/p99 over the last 60 s), queue and pool state, and the \
     slow-query count.  Ctrl-C exits."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const run $ addr_arg $ interval_arg $ once_arg)

let () =
  let doc = "counting answers to unions of conjunctive queries (PODS 2024)" in
  let info = Cmd.info "ucqc" ~version:Buildid.version ~doc in
  (* join the resident pool's parked worker domains on exit
     (best-effort: the signal paths may fire at any point, and workers
     borrowed by an interrupted run are simply left to the process
     teardown) *)
  at_exit (fun () -> try Pool.shutdown_all () with _ -> ());
  (* cmdliner's default usage-error code is 124, which would collide with
     our budget-exhausted code; report usage errors as sysexits EX_USAGE
     (64) and uncaught exceptions as EX_SOFTWARE (70). *)
  exit
    (match
       Cmd.eval_value
         (Cmd.group info
          [
            count_cmd;
            approx_cmd;
            check_cmd;
            optimize_cmd;
            meta_cmd;
            classify_cmd;
            wl_dim_cmd;
            euler_cmd;
            pipeline_cmd;
            enumerate_cmd;
            treewidth_cmd;
            watch_cmd;
            serve_cmd;
            top_cmd;
          ])
     with
    | Ok (`Ok code) -> code
    | Ok (`Version | `Help) -> 0
    | Error (`Parse | `Term) -> 64
    | Error `Exn -> 70)
