(** Tests for the tiered incremental-counting engine: the delta-line
    parser, the database session, and the equivalence of maintained
    counts with from-scratch recomputation under random update
    streams. *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let sg_rs =
  Signature.make [ Signature.symbol "R" 1; Signature.symbol "S" 2 ]

let mkq sg n rels free =
  Cq.make (Structure.make sg (List.init n (fun i -> i)) rels) free

(* tier A: (x) :- R(x), ∃y S(x, y) is q-hierarchical *)
let tier_a_q = mkq sg_rs 2 [ ("R", [ [ 0 ] ]); ("S", [ [ 0; 1 ] ]) ] [ 0 ]

(* tier B: (x, y) :- E(x, z), E(z, y) is acyclic but not
   q-hierarchical (z is quantified yet its atom set strictly contains
   the free variables') *)
let tier_b_q = mkq sg_e 3 [ ("E", [ [ 0; 2 ]; [ 2; 1 ] ]) ] [ 0; 1 ]

(* tier C: the triangle is cyclic *)
let tier_c_q =
  mkq sg_e 3 [ ("E", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]) ] [ 0; 1; 2 ]

let spec_testable : Delta_parse.spec Alcotest.testable =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Delta_parse.render s))
    (fun a b ->
      a.Delta_parse.sign = b.Delta_parse.sign
      && a.Delta_parse.rel = b.Delta_parse.rel
      && a.Delta_parse.args = b.Delta_parse.args)

let parse_one (text : string) : Delta_parse.spec =
  match Delta_parse.line text with
  | Ok (Delta_parse.Deltas [ s ]) -> s
  | Ok (Delta_parse.Deltas _) -> Alcotest.fail ("unexpected batch: " ^ text)
  | Ok Delta_parse.Blank -> Alcotest.fail ("unexpected blank: " ^ text)
  | Error e -> Alcotest.fail (Ucqc_error.to_string e)

let test_parse_text () =
  let s = parse_one "+E(1,2)" in
  Alcotest.(check string) "render" "+E(1,2)" (Delta_parse.render s);
  let s = parse_one "  - E ( 1 , 2 ) .  # trailing comment" in
  Alcotest.(check string) "spaced form" "-E(1,2)" (Delta_parse.render s);
  let s = parse_one "+Likes(alice,post1)" in
  Alcotest.(check string) "identifiers" "+Likes(alice,post1)"
    (Delta_parse.render s);
  let s = parse_one "+Flag()" in
  Alcotest.(check string) "nullary" "+Flag()" (Delta_parse.render s);
  (match Delta_parse.line "" with
  | Ok Delta_parse.Blank -> ()
  | _ -> Alcotest.fail "empty line should be blank");
  match Delta_parse.line "   # just a comment" with
  | Ok Delta_parse.Blank -> ()
  | _ -> Alcotest.fail "comment line should be blank"

let test_parse_errors () =
  let rejects text =
    match Delta_parse.line text with
    | Error (Ucqc_error.Parse_error sp) ->
        (* spans stay inside the line, 1-based end-exclusive *)
        Alcotest.(check bool)
          (Printf.sprintf "span of %S in text" text)
          true
          (sp.col >= 1
          && sp.end_col >= sp.col
          && sp.end_col <= String.length text + 2)
    | Error _ -> Alcotest.fail ("non-parse error for " ^ text)
    | Ok _ -> Alcotest.fail ("accepted malformed input " ^ text)
  in
  List.iter rejects
    [
      "E(1,2)";
      "+";
      "+E";
      "+E(";
      "+E(1";
      "+E(1,";
      "+E(1,2) junk";
      "+E(-1)";
      "+E(1e)";
      "+1R(2)";
      "+E(99999999999999999999999)";
      "{";
      "{\"op\":\"noop\"}";
      "{\"op\":\"insert\"}";
      "{\"op\":\"insert\",\"fact\":3}";
      "{\"op\":\"apply\",\"deltas\":\"+E(1,2)\"}";
      "{\"op\":\"apply\",\"deltas\":[3]}";
    ]

let test_parse_ndjson () =
  let s = parse_one "{\"op\":\"insert\",\"fact\":\"E(1,2)\"}" in
  Alcotest.(check string) "insert frame" "+E(1,2)" (Delta_parse.render s);
  let s = parse_one "{\"op\":\"delete\",\"fact\":\"E(1,2)\"}" in
  Alcotest.(check string) "delete frame" "-E(1,2)" (Delta_parse.render s);
  match
    Delta_parse.line "{\"op\":\"apply\",\"deltas\":[\"+E(1,2)\",\"-R(3)\"]}"
  with
  | Ok (Delta_parse.Deltas [ a; b ]) ->
      Alcotest.(check string) "batch fst" "+E(1,2)" (Delta_parse.render a);
      Alcotest.(check string) "batch snd" "-R(3)" (Delta_parse.render b)
  | _ -> Alcotest.fail "apply batch should parse to two deltas"

let test_render_roundtrip () =
  List.iter
    (fun text ->
      let s = parse_one text in
      Alcotest.check spec_testable
        (Printf.sprintf "roundtrip %S" text)
        s
        (parse_one (Delta_parse.render s)))
    [ "+E(1,2)"; "- E(0, 0) ."; "+Likes(alice,bob)"; "-Flag()" ]

let test_session_epochs () =
  let s = Structure.make sg_e [ 0; 1; 2 ] [ ("E", [ [ 0; 1 ] ]) ] in
  let d = Delta.open_db s in
  Alcotest.(check int) "initial epoch" 0 (Delta.epoch d);
  let apply op rel tuple =
    match Delta.apply d { Delta.op; fact = { Delta.rel; tuple } } with
    | Ok r -> r
    | Error e -> Alcotest.fail (Ucqc_error.to_string e)
  in
  let r = apply `Insert "E" [ 1; 2 ] in
  Alcotest.(check bool) "insert changes" true r.Delta.changed;
  Alcotest.(check int) "epoch bumps" 1 (Delta.epoch d);
  let r = apply `Insert "E" [ 1; 2 ] in
  Alcotest.(check bool) "duplicate insert is a no-op" false r.Delta.changed;
  Alcotest.(check int) "no-op keeps epoch" 1 (Delta.epoch d);
  let r = apply `Delete "E" [ 0; 2 ] in
  Alcotest.(check bool) "absent delete is a no-op" false r.Delta.changed;
  let r = apply `Delete "E" [ 0; 1 ] in
  Alcotest.(check bool) "delete changes" true r.Delta.changed;
  Alcotest.(check int) "epoch after delete" 2 (Delta.epoch d);
  Alcotest.(check int) "tuple really gone" 1
    (List.length (Structure.relation (Delta.structure d) "E"))

let test_session_validation () =
  let s = Structure.make sg_e [ 0; 1 ] [] in
  let d = Delta.open_db s in
  let expect_error name u =
    match Delta.validate d u with
    | Error _ -> ()
    | Ok () -> Alcotest.fail (name ^ " should be rejected")
  in
  expect_error "unknown relation"
    { Delta.op = `Insert; fact = { Delta.rel = "F"; tuple = [ 0 ] } };
  expect_error "arity mismatch"
    { Delta.op = `Insert; fact = { Delta.rel = "E"; tuple = [ 0 ] } };
  expect_error "outside the universe"
    { Delta.op = `Insert; fact = { Delta.rel = "E"; tuple = [ 0; 9 ] } };
  match
    Delta.validate d
      { Delta.op = `Delete; fact = { Delta.rel = "E"; tuple = [ 1; 0 ] } }
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Ucqc_error.to_string e)

let test_resolve_constants () =
  let s = Structure.make sg_e [ 0; 1; 7 ] [] in
  let env = { Parse.constants = [ ("alice", 7) ] } in
  let d = Delta.open_db ~env s in
  let spec text =
    match Delta_parse.delta_string text with
    | Ok sp -> sp
    | Error e -> Alcotest.fail (Ucqc_error.to_string e)
  in
  (match Delta.resolve d (spec "+E(alice,1)") with
  | Ok u -> Alcotest.(check (list int)) "interned" [ 7; 1 ] u.Delta.fact.tuple
  | Error e -> Alcotest.fail (Ucqc_error.to_string e));
  match Delta.resolve d (spec "+E(bob,1)") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown constant should be rejected"

let test_tier_assignment () =
  let d_rs = Delta.open_db (Structure.make sg_rs [ 0; 1; 2 ] []) in
  let d_e = Delta.open_db (Structure.make sg_e [ 0; 1; 2 ] []) in
  let tier psi d = Delta.effective_tier (Delta.prepare psi d) in
  Alcotest.(check string) "tier A" "A"
    (Tier.to_string (tier (Ucq.make [ tier_a_q ]) d_rs));
  Alcotest.(check string) "tier B" "B"
    (Tier.to_string (tier (Ucq.make [ tier_b_q ]) d_e));
  Alcotest.(check string) "tier C" "C"
    (Tier.to_string (tier (Ucq.make [ tier_c_q ]) d_e))

(** Drive [steps] random updates through a session, folding every
    change into each prepared state and checking any maintained count
    against naive recomputation at every step. *)
let drive_and_check ~(seed : int) ~(steps : int) ~(n : int)
    (sg : Signature.t) (queries : (string * Ucq.t) list) : unit =
  let empty = Structure.make sg (List.init n (fun i -> i)) [] in
  let d = Delta.open_db empty in
  let states = List.map (fun (name, psi) -> (name, Delta.prepare psi d)) queries in
  let rng = Random.State.make [| seed |] in
  for step = 1 to steps do
    let s = List.nth sg (Random.State.int rng (List.length sg)) in
    let tuple =
      List.init s.Signature.arity (fun _ -> Random.State.int rng n)
    in
    let op = if Random.State.bool rng then `Insert else `Delete in
    (match Delta.apply d { Delta.op; fact = { Delta.rel = s.Signature.name; tuple } } with
    | Error e -> Alcotest.fail (Ucqc_error.to_string e)
    | Ok r ->
        if r.Delta.changed then
          List.iter (fun (_, st) -> Delta.apply_state st d r) states);
    List.iter
      (fun (name, st) ->
        (match Delta.degraded st with
        | Some reason ->
            Alcotest.fail
              (Printf.sprintf "%s degraded at step %d: %s" name step reason)
        | None -> ());
        match Delta.maintained_count st d with
        | Some (got, _) ->
            let want = Ucq.count_naive (Delta.query st) (Delta.structure d) in
            if got <> want then
              Alcotest.fail
                (Printf.sprintf "%s at step %d: maintained %d <> recomputed %d"
                   name step got want)
        | None -> ())
      states
  done

let test_maintained_equivalence () =
  let psi_a = Ucq.make [ tier_a_q ] in
  let exists_s = mkq sg_rs 2 [ ("S", [ [ 0; 1 ] ]) ] [ 0 ] in
  let has_r = mkq sg_rs 1 [ ("R", [ [ 0 ] ]) ] [ 0 ] in
  let psi_union_a = Ucq.make [ exists_s; has_r ] in
  drive_and_check ~seed:31 ~steps:120 ~n:5 sg_rs
    [ ("tier-a", psi_a); ("tier-a union", psi_union_a) ];
  let psi_b = Ucq.make [ tier_b_q ] in
  (* a boolean acyclic non-qh query: () :- E(x, z), E(z, y) *)
  let bool_b = mkq sg_e 3 [ ("E", [ [ 0; 2 ]; [ 2; 1 ] ]) ] [] in
  drive_and_check ~seed:32 ~steps:60 ~n:4 sg_e
    [ ("tier-b", psi_b); ("tier-b boolean", Ucq.make [ bool_b ]) ]

let test_tier_b_isolated_free () =
  (* (x, w) :- E(x, z), E(z, y) with w isolated free: the count picks
     up a |U| factor that the maintained state must track *)
  let q = mkq sg_e 4 [ ("E", [ [ 0; 2 ]; [ 2; 1 ] ]) ] [ 0; 3 ] in
  drive_and_check ~seed:33 ~steps:50 ~n:4 sg_e
    [ ("tier-b isolated", Ucq.make [ q ]) ]

let sg_ep =
  Signature.make [ Signature.symbol "E" 2; Signature.symbol "P" 1 ]

let test_tier_b_union () =
  (* a union whose combined queries are all acyclic but not
     exhaustively q-hierarchical: the two-hop query joined with unary
     guards stays acyclic in every combination *)
  let q1 = mkq sg_ep 3 [ ("E", [ [ 0; 2 ]; [ 2; 1 ] ]) ] [ 0; 1 ] in
  let q2 = mkq sg_ep 2 [ ("P", [ [ 0 ]; [ 1 ] ]) ] [ 0; 1 ] in
  let psi = Ucq.make [ q1; q2 ] in
  let d = Delta.open_db (Structure.make sg_ep [ 0; 1; 2; 3 ] []) in
  let st = Delta.prepare psi d in
  Alcotest.(check string) "union runs on tier B" "B"
    (Tier.to_string (Delta.effective_tier st));
  drive_and_check ~seed:34 ~steps:60 ~n:4 sg_ep [ ("tier-b union", psi) ]

let test_memoization () =
  let psi = Ucq.make [ tier_c_q ] in
  let d =
    Delta.open_db
      (Structure.make sg_e [ 0; 1; 2 ]
         [ ("E", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]) ])
  in
  let st = Delta.prepare psi d in
  Alcotest.(check bool) "tier C starts unmaintained" true
    (Delta.maintained_count st d = None);
  let n = Ucq.count_naive psi (Delta.structure d) in
  Delta.memoize st d n;
  (match Delta.maintained_count st d with
  | Some (got, Delta.Memoized) -> Alcotest.(check int) "memo hit" n got
  | _ -> Alcotest.fail "expected a memoized count");
  (match
     Delta.apply d
       { Delta.op = `Delete; fact = { Delta.rel = "E"; tuple = [ 0; 1 ] } }
   with
  | Ok r ->
      Alcotest.(check bool) "changed" true r.Delta.changed;
      Delta.apply_state st d r
  | Error e -> Alcotest.fail (Ucqc_error.to_string e));
  Alcotest.(check bool) "memo invalidated by the epoch" true
    (Delta.maintained_count st d = None)

let test_missed_epoch_degrades () =
  let psi = Ucq.make [ tier_a_q ] in
  let d = Delta.open_db (Structure.make sg_rs [ 0; 1 ] []) in
  let st = Delta.prepare psi d in
  Alcotest.(check string) "starts on tier A" "A"
    (Tier.to_string (Delta.effective_tier st));
  let change rel tuple =
    match Delta.apply d { Delta.op = `Insert; fact = { Delta.rel = rel; tuple } } with
    | Ok r -> r
    | Error e -> Alcotest.fail (Ucqc_error.to_string e)
  in
  let _skipped = change "R" [ 0 ] in
  let r2 = change "S" [ 0; 1 ] in
  (* the state never saw the first change; folding in the second must
     degrade rather than serve a stale count *)
  Delta.apply_state st d r2;
  Alcotest.(check bool) "degraded" true (Delta.degraded st <> None);
  Alcotest.(check string) "effective tier C" "C"
    (Tier.to_string (Delta.effective_tier st));
  Alcotest.(check bool) "no maintained count" true
    (Delta.maintained_count st d = None)

let test_jobs_equivalence () =
  (* maintained tier-A/B counts must be bit-identical to a full
     recompute regardless of the pool the recompute runs on (the
     --jobs settings of the CLI) *)
  List.iter
    (fun (sg, psi, seed) ->
      let n = 4 in
      let d =
        Delta.open_db (Structure.make sg (List.init n (fun i -> i)) [])
      in
      let st = Delta.prepare psi d in
      let rng = Random.State.make [| seed |] in
      for _ = 1 to 50 do
        let s = List.nth sg (Random.State.int rng (List.length sg)) in
        let tuple =
          List.init s.Signature.arity (fun _ -> Random.State.int rng n)
        in
        let op = if Random.State.bool rng then `Insert else `Delete in
        match
          Delta.apply d
            { Delta.op; fact = { Delta.rel = s.Signature.name; tuple } }
        with
        | Error e -> Alcotest.fail (Ucqc_error.to_string e)
        | Ok r -> if r.Delta.changed then Delta.apply_state st d r
      done;
      let maintained =
        match Delta.maintained_count st d with
        | Some (m, Delta.Maintained) -> m
        | _ -> Alcotest.fail "state should still be maintained"
      in
      List.iter
        (fun jobs ->
          let pool = Pool.create ~jobs () in
          match
            Runner.count ~via:Runner.Expansion ~fallback:false ~seed:1 ~pool
              ~budget:(Budget.make ()) psi (Delta.structure d)
          with
          | Ok (Runner.Exact got) ->
              Alcotest.(check int)
                (Printf.sprintf "maintained = recompute at jobs=%d" jobs)
                got maintained
          | Ok (Runner.Approximate _) | Error _ ->
              Alcotest.fail "recompute should be exact")
        [ 1; 2; 4 ])
    [
      (sg_rs, Ucq.make [ tier_a_q ], 41);
      (sg_e, Ucq.make [ tier_b_q ], 42);
    ]

let test_render_facts_roundtrip () =
  let s =
    Structure.make sg_rs [ 0; 1; 2; 5 ]
      [ ("R", [ [ 0 ]; [ 2 ] ]); ("S", [ [ 0; 1 ]; [ 2; 5 ] ]) ]
  in
  match Parse.database_result (Delta.render_facts s) with
  | Error e -> Alcotest.fail (Ucqc_error.to_string e)
  | Ok (s', _) ->
      Alcotest.(check (list int)) "universe" (Structure.universe s)
        (Structure.universe s');
      List.iter
        (fun rel ->
          Alcotest.(check (list (list int)))
            rel
            (List.sort compare (Structure.relation s rel))
            (List.sort compare (Structure.relation s' rel)))
        [ "R"; "S" ]

(* qcheck: random update streams keep every tier's maintained count
   equal to full recomputation *)
let qcheck_delta =
  let open QCheck in
  [
    Test.make ~name:"maintained counts match recomputation" ~count:20
      (int_range 0 10_000) (fun seed ->
        let exists_s = mkq sg_rs 2 [ ("S", [ [ 0; 1 ] ]) ] [ 0 ] in
        let has_r = mkq sg_rs 1 [ ("R", [ [ 0 ] ]) ] [ 0 ] in
        drive_and_check ~seed ~steps:40 ~n:4 sg_rs
          [
            ("A", Ucq.make [ tier_a_q ]);
            ("A union", Ucq.make [ exists_s; has_r ]);
          ];
        drive_and_check ~seed:(seed + 1) ~steps:30 ~n:4 sg_e
          [ ("B", Ucq.make [ tier_b_q ]) ];
        true);
  ]

(* fuzz: the delta-line parser is total and deterministic on corpus
   files and raw random bytes, and spans stay inside the input *)
let check_total (text : string) : unit =
  let once () =
    try Ok (Delta_parse.line text) with e -> Error (Printexc.to_string e)
  in
  match (once (), once ()) with
  | Error e, _ | _, Error e ->
      Alcotest.fail (Printf.sprintf "parser raised on %S: %s" text e)
  | Ok a, Ok b ->
      if a <> b then Alcotest.fail (Printf.sprintf "non-deterministic on %S" text);
      (match a with
      | Error (Ucqc_error.Parse_error sp) ->
          let lines = String.split_on_char '\n' text in
          let nlines = max 1 (List.length lines) in
          if
            sp.line < 1
            || sp.line > nlines + 1
            || sp.col < 1
            || sp.end_col < sp.col
            || sp.end_col > String.length text + 2
          then Alcotest.fail (Printf.sprintf "span escapes input on %S" text)
      | _ -> ())

let test_fuzz_corpus () =
  let dir =
    List.find Sys.file_exists [ "delta_corpus"; "test/delta_corpus" ]
  in
  Array.iter
    (fun f ->
      let ic = open_in_bin (Filename.concat dir f) in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      String.split_on_char '\n' text |> List.iter check_total)
    (Sys.readdir dir)

let qcheck_fuzz =
  let open QCheck in
  let delta_alphabet =
    Gen.oneofl
      [ '+'; '-'; 'E'; 'R'; '('; ')'; ','; '.'; ' '; '0'; '1'; '9'; '{'; '}';
        '"'; ':'; '['; ']'; '\\'; '#'; '_'; '\''; 'a'; '\t'; '\n'; '\x00';
        '\xff' ]
  in
  [
    Test.make ~name:"delta parser total on random bytes" ~count:500
      (string_gen_of_size (Gen.int_range 0 40) Gen.char) (fun s ->
        check_total s;
        true);
    Test.make ~name:"delta parser total on delta-alphabet strings" ~count:1000
      (string_gen_of_size (Gen.int_range 0 40) delta_alphabet) (fun s ->
        check_total s;
        true);
  ]

let suite =
  [
    ( "delta",
      [
        Alcotest.test_case "parse text deltas" `Quick test_parse_text;
        Alcotest.test_case "parse errors carry spans" `Quick test_parse_errors;
        Alcotest.test_case "parse NDJSON frames" `Quick test_parse_ndjson;
        Alcotest.test_case "render roundtrips" `Quick test_render_roundtrip;
        Alcotest.test_case "session epochs" `Quick test_session_epochs;
        Alcotest.test_case "session validation" `Quick test_session_validation;
        Alcotest.test_case "identifier constants resolve" `Quick
          test_resolve_constants;
        Alcotest.test_case "tier assignment" `Quick test_tier_assignment;
        Alcotest.test_case "maintained counts match recomputation" `Quick
          test_maintained_equivalence;
        Alcotest.test_case "tier B with isolated free variable" `Quick
          test_tier_b_isolated_free;
        Alcotest.test_case "tier B union" `Quick test_tier_b_union;
        Alcotest.test_case "tier C memoization" `Quick test_memoization;
        Alcotest.test_case "missed epoch degrades" `Quick
          test_missed_epoch_degrades;
        Alcotest.test_case "maintained = recompute across jobs" `Quick
          test_jobs_equivalence;
        Alcotest.test_case "fuzz corpus" `Quick test_fuzz_corpus;
      ]
      @ List.map QCheck_alcotest.to_alcotest (qcheck_delta @ qcheck_fuzz) );
  ]
