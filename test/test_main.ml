(** Entry point for the test suite: aggregates the per-module suites. *)

let () =
  Alcotest.run "ucqc"
    (Test_util.suite @ Test_bigint.suite @ Test_graph.suite
   @ Test_hypergraph.suite @ Test_relational.suite @ Test_hom.suite
   @ Test_db.suite @ Test_cq.suite @ Test_ucq.suite @ Test_scomplex.suite
   @ Test_reduction.suite @ Test_wl.suite @ Test_meta.suite
   @ Test_frontend.suite @ Test_approx.suite @ Test_dynamic.suite
   @ Test_runtime.suite @ Test_pool.suite @ Test_telemetry.suite
   @ Test_delta.suite @ Test_analysis.suite @ Test_optimize.suite
   @ Test_server.suite @ Test_obs.suite)
