(** Tests for uniform answer sampling and the Karp–Luby estimator. *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let mkcq n edges free =
  Cq.make (Structure.make sg_e (List.init n (fun i -> i)) [ ("E", edges) ]) free

let test_sampler_cardinality () =
  let db = Generators.random_digraph ~seed:41 8 20 in
  List.iter
    (fun (name, q) ->
      let s = Sampler.make q db in
      Alcotest.(check int) name
        (Counting.count ~strategy:Counting.Naive q db)
        (Sampler.cardinality s))
    [
      ("edge", mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ]);
      ("path3", mkcq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ]);
      ("two components", mkcq 4 [ [ 0; 1 ]; [ 2; 3 ] ] [ 0; 1; 2; 3 ]);
      ("isolated var", mkcq 3 [ [ 0; 1 ] ] [ 0; 1; 2 ]);
      ("cyclic (fallback)", mkcq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ]);
      ("quantified (fallback)", mkcq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 2 ]);
    ]

let test_sampler_draws_valid_answers () =
  let db = Generators.random_digraph ~seed:43 7 16 in
  let q = mkcq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ] in
  let s = Sampler.make q db in
  let st = Random.State.make [| 5 |] in
  for _ = 1 to 100 do
    match Sampler.draw st s with
    | None -> Alcotest.fail "sampler empty but count > 0"
    | Some answer ->
        Alcotest.(check bool) "drawn assignment is an answer" true
          (Hom.exists ~fixed:answer (Cq.structure q) db)
  done

let test_sampler_uniformity () =
  (* chi-squared-flavoured sanity check: on the directed 4-cycle, the path
     query P3 has exactly 4 answers; each must appear about 1/4 of the
     time *)
  let db = Generators.cycle_db 4 in
  let q = mkcq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ] in
  let s = Sampler.make q db in
  Alcotest.(check int) "four answers" 4 (Sampler.cardinality s);
  let st = Random.State.make [| 7 |] in
  let tally = Hashtbl.create 4 in
  let trials = 4000 in
  for _ = 1 to trials do
    match Sampler.draw st s with
    | None -> Alcotest.fail "unexpected empty"
    | Some a ->
        Hashtbl.replace tally a (1 + Option.value ~default:0 (Hashtbl.find_opt tally a))
  done;
  Alcotest.(check int) "all four answers seen" 4 (Hashtbl.length tally);
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "frequency within 20% of uniform" true
        (abs (c - (trials / 4)) < trials / 5))
    tally

let test_sampler_empty () =
  let db = Generators.path_db 3 in
  (* no triangle in a path *)
  let q = mkcq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ] in
  let s = Sampler.make q db in
  Alcotest.(check int) "empty count" 0 (Sampler.cardinality s);
  let st = Random.State.make [| 1 |] in
  Alcotest.(check bool) "no draw" true (Sampler.draw st s = None)

let test_karp_luby_exact_space () =
  let db = Generators.random_digraph ~seed:47 8 20 in
  let psi = Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ]; mkcq 2 [ [ 1; 0 ] ] [ 0; 1 ] ] in
  let est = Karp_luby.estimate ~samples:4000 psi db in
  let exact = Ucq.count_naive psi db in
  Alcotest.(check int) "space = sum of disjunct counts" est.Karp_luby.space
    (List.fold_left
       (fun acc q -> acc + Counting.count q db)
       0 (Ucq.disjuncts psi));
  (* generous tolerance: 4000 samples, hit rate >= 1/2 *)
  let err = abs_float (est.Karp_luby.value -. float_of_int exact) in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.1f within 15%% of %d" est.Karp_luby.value exact)
    true
    (err <= 0.15 *. float_of_int exact)

let test_karp_luby_with_quantifiers () =
  let db = Generators.random_digraph ~seed:53 7 15 in
  (* (∃y E(x,y)) ∨ (∃y E(y,x)) *)
  let psi = Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0 ]; mkcq 2 [ [ 1; 0 ] ] [ 0 ] ] in
  let est = Karp_luby.estimate ~samples:4000 psi db in
  let exact = Ucq.count_naive psi db in
  let err = abs_float (est.Karp_luby.value -. float_of_int exact) in
  Alcotest.(check bool) "quantified estimate close" true
    (err <= 0.2 *. float_of_int (max exact 1))

let test_karp_luby_empty () =
  let db = Structure.make sg_e [ 0; 1 ] [] in
  let psi = Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ] ] in
  let est = Karp_luby.estimate ~samples:100 psi db in
  Alcotest.(check bool) "zero estimate" true (est.Karp_luby.value = 0.)

let test_fpras_budget () =
  let db = Generators.random_digraph ~seed:59 6 12 in
  let psi = Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ]; mkcq 2 [ [ 1; 0 ] ] [ 0; 1 ] ] in
  let est = Karp_luby.fpras ~epsilon:0.2 ~delta:0.1 psi db in
  (* 4 * 2 * ln(20) / 0.04 = 599.1 -> 600 samples *)
  Alcotest.(check int) "derived sample budget" 600 est.Karp_luby.samples

let test_dropped_draws_not_in_denominator () =
  (* regression for the denominator bias: draws that fail after every
     seed rotation must not count as misses.  Disjunct 0 always yields an
     answer, disjunct 1 always fails; the unbiased estimator divides by
     the successful draws only, so the estimate is exactly [space]
     (every successful draw is a hit), not [space / 2]. *)
  let samples = 1000 in
  let est =
    Karp_luby.estimate_with ~seed:5 ~samples ~counts:[ 2; 2 ]
      ~draw:(fun _st i -> if i = 0 then Some [ (0, 0) ] else None)
      ~member:(fun _j _a -> true)
      ()
  in
  Alcotest.(check bool) "some draws were dropped" true (est.Karp_luby.dropped > 0);
  Alcotest.(check int) "every successful draw is a hit"
    (samples - est.Karp_luby.dropped)
    est.Karp_luby.hits;
  Alcotest.(check (float 1e-9)) "estimate = space (unbiased)" 4.0
    est.Karp_luby.value;
  Alcotest.(check int) "samples field still counts requested draws" samples
    est.Karp_luby.samples

let test_all_draws_dropped () =
  let est =
    Karp_luby.estimate_with ~seed:5 ~samples:50 ~counts:[ 3 ]
      ~draw:(fun _st _i -> None)
      ~member:(fun _j _a -> true)
      ()
  in
  Alcotest.(check int) "everything dropped" 50 est.Karp_luby.dropped;
  Alcotest.(check (float 1e-9)) "no successes: value 0, not NaN" 0.0
    est.Karp_luby.value

let qcheck_approx =
  let open QCheck in
  [
    Test.make ~name:"sampler cardinality equals naive count" ~count:60
      (pair (int_range 0 1000) (int_range 0 15))
      (fun (seed, mask) ->
        let free = List.filter (fun i -> mask land (1 lsl i) <> 0) [ 0; 1; 2 ] in
        let q = mkcq 3 [ [ 0; 1 ]; [ 1; 2 ] ] free in
        let db = Generators.random_digraph ~seed 5 10 in
        Sampler.cardinality (Sampler.make q db)
        = Counting.count ~strategy:Counting.Naive q db);
    Test.make ~name:"drawn samples are answers" ~count:40 (int_range 0 1000)
      (fun seed ->
        let q = mkcq 4 [ [ 0; 1 ]; [ 1; 2 ]; [ 1; 3 ] ] [ 0; 1; 2; 3 ] in
        let db = Generators.random_digraph ~seed 5 12 in
        let s = Sampler.make q db in
        let st = Random.State.make [| seed |] in
        match Sampler.draw st s with
        | None -> Sampler.cardinality s = 0
        | Some a -> Hom.exists ~fixed:a (Cq.structure q) db);
  ]

let suite =
  [
    ( "approx",
      [
        Alcotest.test_case "sampler cardinality" `Quick test_sampler_cardinality;
        Alcotest.test_case "draws are valid answers" `Quick
          test_sampler_draws_valid_answers;
        Alcotest.test_case "uniformity" `Quick test_sampler_uniformity;
        Alcotest.test_case "empty answer set" `Quick test_sampler_empty;
        Alcotest.test_case "karp-luby on a union" `Quick test_karp_luby_exact_space;
        Alcotest.test_case "karp-luby with quantifiers" `Quick
          test_karp_luby_with_quantifiers;
        Alcotest.test_case "karp-luby empty" `Quick test_karp_luby_empty;
        Alcotest.test_case "fpras sample budget" `Quick test_fpras_budget;
        Alcotest.test_case "dropped draws excluded from denominator" `Quick
          test_dropped_draws_not_in_denominator;
        Alcotest.test_case "all draws dropped" `Quick test_all_draws_dropped;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_approx );
  ]
