(** Tests for the count-preserving cover optimizer: unit tests for each
    rewrite rule, fix-payload round-trips, and the qcheck properties the
    optimizer is sold on — [count (optimize psi) = count psi]
    bit-identical across every engine and pool size, plus the
    UCQ104/UCQ106 detection oracle against the hom engine directly. *)

let parse_ucq text =
  match Parse.ucq_result text with
  | Ok (psi, _) -> psi
  | Error e -> Alcotest.failf "parse failed: %s" (Ucqc_error.to_string e)

let counts_equal ?(seeds = 6) psi psi' =
  let ok = ref true in
  for seed = 0 to seeds - 1 do
    let db = Generators.random_digraph ~seed 4 10 in
    if Ucq.count_naive psi db <> Ucq.count_naive psi' db then ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Rewrite rules, one by one                                          *)
(* ------------------------------------------------------------------ *)

let test_duplicate_drop () =
  let psi = parse_ucq "(x) :- E(x, y) ; E(x, z)" in
  let r = Optimize.run psi in
  Alcotest.(check bool) "changed" true r.Optimize.changed;
  Alcotest.(check int) "one disjunct left" 1 (Ucq.length r.Optimize.optimized);
  Alcotest.(check (list int)) "kept the first" [ 0 ] r.Optimize.kept;
  (match r.Optimize.rewrites with
  | [ Optimize.Drop_duplicate { index = 1; by = 0; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly Drop_duplicate of disjunct 2 by 1");
  Alcotest.(check bool) "count preserved" true
    (counts_equal psi r.Optimize.optimized)

let test_subsumed_drop () =
  let psi = parse_ucq "(x) :- E(x, y) ; E(x, y), E(y, z)" in
  let r = Optimize.run psi in
  Alcotest.(check bool) "changed" true r.Optimize.changed;
  Alcotest.(check int) "one disjunct left" 1 (Ucq.length r.Optimize.optimized);
  (match
     List.find_opt
       (function Optimize.Drop_subsumed { index = 1; by = 0; map } ->
           (* the recorded witness must actually be a homomorphism *)
           let ds = Array.of_list (Ucq.disjunct_structures psi) in
           let fixed = List.map (fun v -> (v, v)) (Ucq.free psi) in
           Hom.verify ~fixed ds.(0) ds.(1) map
         | _ -> false)
       r.Optimize.rewrites
   with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a verified Drop_subsumed of disjunct 2");
  Alcotest.(check bool) "count preserved" true
    (counts_equal psi r.Optimize.optimized)

let test_minimize () =
  (* E(x,y) ∧ E(x,z) retracts to E(x,y) fixing the free x *)
  let psi = parse_ucq "(x) :- E(x, y), E(x, z)" in
  let r = Optimize.run psi in
  Alcotest.(check bool) "changed" true r.Optimize.changed;
  Alcotest.(check int) "still one disjunct" 1 (Ucq.length r.Optimize.optimized);
  Alcotest.(check int) "one atom left" 1 (Ucq.num_atoms r.Optimize.optimized);
  (match r.Optimize.rewrites with
  | [ Optimize.Minimize { index = 0; atoms_before = 2; atoms_after = 1; _ } ]
    -> ()
  | _ -> Alcotest.fail "expected exactly Minimize of disjunct 1, 2 -> 1 atoms");
  Alcotest.(check bool) "count preserved" true
    (counts_equal psi r.Optimize.optimized)

let test_identity_on_minimal () =
  let psi = parse_ucq "(x, y) :- E(x, y)" in
  let r = Optimize.run psi in
  Alcotest.(check bool) "not changed" false r.Optimize.changed;
  Alcotest.(check bool) "physically the input" true
    (r.Optimize.optimized == psi);
  Alcotest.(check bool) "complete" true r.Optimize.complete;
  Alcotest.(check int) "no rewrites" 0 (List.length r.Optimize.rewrites)

let test_never_empty () =
  (* three pairwise-equivalent disjuncts: the cover must keep one *)
  let psi = parse_ucq "(x) :- E(x, y) ; E(x, z) ; E(x, w)" in
  let r = Optimize.run psi in
  Alcotest.(check int) "one survivor" 1 (Ucq.length r.Optimize.optimized);
  Alcotest.(check bool) "count preserved" true
    (counts_equal psi r.Optimize.optimized)

let test_metrics () =
  let psi = parse_ucq "(x) :- E(x, y) ; E(x, y), E(y, z) ; E(x, w)" in
  let r = Optimize.run psi in
  Alcotest.(check int) "disjuncts removed" 2 (Optimize.disjuncts_removed r);
  Alcotest.(check int) "atoms removed" 3 (Optimize.atoms_removed r);
  let before, after = Optimize.expansion_subsets r in
  Alcotest.(check (pair int int)) "2^l - 1 subsets" (7, 1) (before, after)

(* ------------------------------------------------------------------ *)
(* Analyzer hints and diagnostics                                     *)
(* ------------------------------------------------------------------ *)

let test_hints_agree () =
  let text = "(x) :- E(x, y) ; E(x, y), E(y, z) ; E(x, w)" in
  let psi = parse_ucq text in
  let hints = (Analysis.check text).Analysis.diagnostics in
  Alcotest.(check bool) "analysis produced witnesses" true
    (List.exists (fun d -> d.Diagnostic.witness <> None) hints);
  let with_hints = Optimize.run ~hints psi in
  let without = Optimize.run psi in
  Alcotest.(check bool) "hinted run = unhinted run" true
    (with_hints = without)

let test_diagnostics_rendered () =
  let psi = parse_ucq "(x) :- E(x, y) ; E(x, y), E(y, z) ; E(x, w)" in
  let r = Optimize.run psi in
  let ds = Optimize.diagnostics r in
  let codes = List.map (fun d -> d.Diagnostic.code) ds in
  Alcotest.(check bool) "UCQ401 present" true (List.mem "UCQ401" codes);
  Alcotest.(check bool) "UCQ402 present" true (List.mem "UCQ402" codes);
  Alcotest.(check bool) "UCQ404 present" true (List.mem "UCQ404" codes);
  (* with a span the UCQ404 carries the machine-applicable fix *)
  let span =
    { Diagnostic.line = 1; col = 1; end_line = 1; end_col = 44 }
  in
  let d404 =
    List.find
      (fun d -> d.Diagnostic.code = "UCQ404")
      (Optimize.diagnostics ~span r)
  in
  match d404.Diagnostic.fix with
  | Some { Diagnostic.replacements = [ { Diagnostic.text; _ } ]; _ } ->
      Alcotest.(check bool) "fix text parses back, count-equal" true
        (counts_equal psi (parse_ucq text))
  | _ -> Alcotest.fail "UCQ404 with a span must carry a one-replacement fix"

let test_analysis_fix_parses_back () =
  let text = "(x) :- E(x, y) ; E(x, y), E(y, z)" in
  let psi = parse_ucq text in
  let r = Analysis.check text in
  let d =
    match
      List.find_opt
        (fun d -> d.Diagnostic.code = "UCQ104")
        r.Analysis.diagnostics
    with
    | Some d -> d
    | None -> Alcotest.fail "UCQ104 not reported"
  in
  match d.Diagnostic.fix with
  | Some { Diagnostic.replacements = [ { Diagnostic.text = t; _ } ]; _ } ->
      Alcotest.(check bool) "fix parses back, count-equal" true
        (counts_equal psi (parse_ucq t))
  | _ -> Alcotest.fail "UCQ104 must carry a one-replacement fix"

let test_sarif_fixes () =
  let reports =
    [
      Analysis.check ~path:"red.ucq" "(x) :- E(x, y) ; E(x, y), E(y, z)";
      Analysis.check ~path:"dup.ucq" "(x) :- E(x, y) ; E(x, z)";
    ]
  in
  let log = Sarif.of_reports ~tool_version:"test" reports in
  (match Sarif.validate log with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "SARIF with fixes invalid: %s" msg);
  (* the fixes survive the textual round-trip too *)
  match Sarif.validate (Trace_json.parse (Sarif.to_string log)) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "round-tripped SARIF invalid: %s" msg

(* ------------------------------------------------------------------ *)
(* Runner integration                                                 *)
(* ------------------------------------------------------------------ *)

let test_runner_optimize () =
  let psi = parse_ucq "(x) :- E(x, y) ; E(x, y), E(y, z) ; E(x, w)" in
  let db = Generators.random_digraph ~seed:3 6 15 in
  let run ~optimize =
    match
      Runner.count ~optimize ~select:optimize
        ~budget:(Budget.of_steps 10_000_000) psi db
    with
    | Ok (Runner.Exact n) -> n
    | Ok (Runner.Approximate _) -> Alcotest.fail "unexpected degradation"
    | Error e -> Alcotest.failf "runner failed: %s" (Ucqc_error.to_string e)
  in
  Alcotest.(check int) "optimized = unoptimized" (run ~optimize:false)
    (run ~optimize:true)

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                  *)
(* ------------------------------------------------------------------ *)

let sg = Generators.graph_signature
let seed_arb = QCheck.int_range 0 10_000
let pool4 = lazy (Pool.create ~jobs:4 ())

let random_query seed =
  Qgen.random_ucq ~seed ~max_disjuncts:4 ~max_vars:4 ~max_atoms:3 sg

(* The tentpole property: the rewrite is count-preserving bit-for-bit,
   under every engine and every pool size. *)
let qcheck_count_preserved =
  QCheck.Test.make ~name:"count (optimize psi) = count psi, all engines"
    ~count:80 seed_arb (fun seed ->
      let psi = random_query seed in
      let opt = (Optimize.run psi).Optimize.optimized in
      let db = Generators.random_digraph ~seed:((seed * 19) + 11) 4 9 in
      let naive = Ucq.count_naive psi db in
      let pool = Lazy.force pool4 in
      Ucq.count_naive opt db = naive
      && Ucq.count_inclusion_exclusion opt db = naive
      && Ucq.count_via_expansion opt db = naive
      && Ucq.count_inclusion_exclusion ~pool opt db = naive
      && Ucq.count_via_expansion ~pool opt db = naive)

let qcheck_total_deterministic =
  QCheck.Test.make ~name:"optimizer is total and deterministic" ~count:80
    seed_arb (fun seed ->
      let psi = random_query seed in
      match Optimize.run psi with
      | r ->
          r = Optimize.run psi
          && Ucq.length r.Optimize.optimized >= 1
          && List.length r.Optimize.kept = Ucq.length r.Optimize.optimized
      | exception _ -> false)

(* Satellite 3: the analyzer's UCQ104/UCQ106 verdicts against the hom
   engine driven directly — same homomorphism questions, independent
   code path — and the verdicts must not depend on --jobs. *)
let subsumption_codes (r : Analysis.report) : (string * int) list =
  List.filter_map
    (fun (d : Diagnostic.t) ->
      match (d.Diagnostic.code, d.Diagnostic.witness) with
      | (("UCQ104" | "UCQ106") as c), Some (Diagnostic.Hom_witness w) ->
          Some (c, w.target)
      | ("UCQ104" | "UCQ106"), _ ->
          Alcotest.fail "subsumption finding without a hom witness"
      | _ -> None)
    r.Analysis.diagnostics

let qcheck_detection_oracle =
  QCheck.Test.make ~name:"UCQ104/106 agree with the hom-engine oracle"
    ~count:60 seed_arb (fun seed ->
      let psi = random_query seed in
      let text = Pretty.ucq psi in
      (* the analyzer re-parses, so the oracle must too (same interning) *)
      match Parse.ucq_result text with
      | Error _ -> QCheck.assume_fail ()
      | Ok (psi, _) ->
          let ds = Array.of_list (Ucq.disjunct_structures psi) in
          let n = Array.length ds in
          let fixed = List.map (fun v -> (v, v)) (Ucq.free psi) in
          let hom i j = Hom.exists ~fixed ds.(i) ds.(j) in
          let expected = ref [] in
          for j = n - 1 downto 0 do
            let dup = ref false and sub = ref false in
            for i = 0 to n - 1 do
              if i <> j && hom i j then
                if hom j i then (if i < j then dup := true) else sub := true
            done;
            if !dup then expected := ("UCQ106", j) :: !expected
            else if !sub then expected := ("UCQ104", j) :: !expected
          done;
          let seq = Analysis.check text in
          let par = Analysis.check ~pool:(Lazy.force pool4) text in
          subsumption_codes seq = !expected
          && subsumption_codes par = !expected)

(* Every dropped disjunct is also count-dead: deleting it alone does not
   change the count (the per-rewrite soundness claim, checked directly). *)
let qcheck_drops_are_dead =
  QCheck.Test.make ~name:"each dropped disjunct contributes no answers"
    ~count:60 seed_arb (fun seed ->
      let psi = random_query seed in
      let r = Optimize.run psi in
      let dropped =
        List.filter_map
          (function
            | Optimize.Drop_subsumed { index; _ }
            | Optimize.Drop_duplicate { index; _ } ->
                Some index
            | Optimize.Minimize _ -> None)
          r.Optimize.rewrites
      in
      dropped = []
      ||
      let db = Generators.random_digraph ~seed:((seed * 23) + 7) 4 9 in
      List.for_all
        (fun j ->
          let without =
            Ucq.make (List.filteri (fun k _ -> k <> j) (Ucq.disjuncts psi))
          in
          Ucq.count_naive without db = Ucq.count_naive psi db)
        dropped)

let qcheck =
  [
    qcheck_count_preserved;
    qcheck_total_deterministic;
    qcheck_detection_oracle;
    qcheck_drops_are_dead;
  ]

let suite =
  [
    ( "optimize",
      [
        Alcotest.test_case "duplicate disjunct dropped" `Quick
          test_duplicate_drop;
        Alcotest.test_case "subsumed disjunct dropped" `Quick
          test_subsumed_drop;
        Alcotest.test_case "disjunct minimized to #core" `Quick test_minimize;
        Alcotest.test_case "identity on minimal query" `Quick
          test_identity_on_minimal;
        Alcotest.test_case "cover never empties the union" `Quick
          test_never_empty;
        Alcotest.test_case "shrink metrics" `Quick test_metrics;
        Alcotest.test_case "analyzer hints agree with cold run" `Quick
          test_hints_agree;
        Alcotest.test_case "UCQ40x diagnostics and fix" `Quick
          test_diagnostics_rendered;
        Alcotest.test_case "UCQ104 fix parses back" `Quick
          test_analysis_fix_parses_back;
        Alcotest.test_case "SARIF fixes validate" `Quick test_sarif_fixes;
        Alcotest.test_case "Runner --optimize equivalence" `Quick
          test_runner_optimize;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck );
  ]
