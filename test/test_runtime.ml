(** Tests for the resource-budget layer: deterministic exhaustion, the
    engine boundaries with graceful degradation, structured errors with
    their exit codes, and the hardened parser (positions and the crash
    corpus).  All budget tests use step budgets — no sleeps, no wall-clock
    assertions. *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let mkcq n edges free =
  Cq.make (Structure.make sg_e (List.init n (fun i -> i)) [ ("E", edges) ]) free

(** A cyclic union whose exact count is expensive enough to exhaust small
    step budgets on a dense digraph. *)
let triangle_psi () =
  Ucq.make
    [
      mkcq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ];
      mkcq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] [ 0; 1; 2 ];
    ]

let dense_db () = Generators.random_digraph ~seed:91 10 45

(** A random graph whose minor-min-width root lower bound is strictly
    below the min-fill upper bound (seed found by search), so the exact
    branch and bound genuinely expands nodes — and ticks the budget —
    instead of pruning at the root. *)
let searchy_graph () =
  let st = Random.State.make [| 176 |] in
  let n = 6 + Random.State.int st 8 in
  let m = n + Random.State.int st (2 * n) in
  let g = Graph.make n in
  for _ = 1 to m do
    Graph.add_edge g (Random.State.int st n) (Random.State.int st n)
  done;
  Alcotest.(check bool) "root prune gap" true
    (Treewidth.lower_bound g < fst (Treewidth.heuristic g));
  g

(* ------------------------------------------------------------------ *)
(* Budget mechanics                                                   *)
(* ------------------------------------------------------------------ *)

let test_budget_steps () =
  let b = Budget.of_steps 5 in
  Budget.tick b;
  Budget.tick b;
  Budget.tick b;
  Budget.tick b;
  Alcotest.(check int) "four done" 4 (Budget.steps_done b);
  Alcotest.(check (option int)) "one left" (Some 1) (Budget.remaining_steps b);
  (match Budget.tick b with
  | () -> Alcotest.fail "fifth tick must exhaust"
  | exception Budget.Exhausted e ->
      Alcotest.(check int) "steps recorded" 5 e.Budget.steps_done);
  (* once exhausted, stays exhausted *)
  (match Budget.check b with
  | () -> Alcotest.fail "check after exhaustion must raise"
  | exception Budget.Exhausted _ -> ())

let test_budget_bulk_ticks () =
  let b = Budget.of_steps 10 in
  Budget.ticks b 7;
  Alcotest.(check int) "bulk counted" 7 (Budget.steps_done b);
  (match Budget.ticks b 100 with
  | () -> Alcotest.fail "overdraft must exhaust"
  | exception Budget.Exhausted _ -> ());
  (* unlimited budgets never trip on steps *)
  let u = Budget.unlimited () in
  Budget.ticks u 1_000_000;
  Alcotest.(check bool) "unlimited" false (Budget.is_limited u)

let test_budget_cancel () =
  let b = Budget.unlimited () in
  Budget.tick b;
  Budget.cancel b;
  match Budget.tick b with
  | () -> Alcotest.fail "tick after cancel must raise"
  | exception Budget.Exhausted _ -> ()

let test_budget_run_boundary () =
  let b = Budget.of_steps 3 in
  (match
     Budget.run b ~phase:"loop" (fun () ->
         for _ = 1 to 100 do
           Budget.tick b
         done)
   with
  | Ok () -> Alcotest.fail "must exhaust"
  | Error e ->
      Alcotest.(check string) "phase label" "loop" e.Budget.phase);
  (* a fresh budget and a terminating computation succeed *)
  match Budget.run (Budget.of_steps 10) ~phase:"ok" (fun () -> 41 + 1) with
  | Ok n -> Alcotest.(check int) "value through boundary" 42 n
  | Error _ -> Alcotest.fail "must not exhaust"

(* ------------------------------------------------------------------ *)
(* Deterministic exhaustion across engines                            *)
(* ------------------------------------------------------------------ *)

(** [same_twice f] runs the budgeted computation twice from identical
    fresh budgets and insists on identical outcomes (the fault-injection
    determinism contract). *)
let same_twice (label : string) (f : Budget.t -> ('a, Budget.exhaustion) result) (n : int)
    : unit =
  let r1 = f (Budget.of_steps n) in
  let r2 = f (Budget.of_steps n) in
  Alcotest.(check bool)
    (Printf.sprintf "%s deterministic at %d steps" label n)
    true (r1 = r2)

let budgets_to_probe = [ 1; 2; 5; 17; 60; 250; 1000; 5000 ]

let test_determinism_count () =
  let psi = triangle_psi () and db = dense_db () in
  List.iter
    (same_twice "count" (fun b ->
         Budget.run b ~phase:"count" (fun () ->
             Ucq.count_via_expansion ~budget:b psi db)))
    budgets_to_probe;
  List.iter
    (same_twice "count-naive" (fun b ->
         Budget.run b ~phase:"count" (fun () -> Ucq.count_naive ~budget:b psi db)))
    budgets_to_probe

let test_determinism_treewidth () =
  let g = searchy_graph () in
  List.iter
    (same_twice "treewidth" (fun b ->
         Budget.run b ~phase:"tw" (fun () -> Treewidth.treewidth ~budget:b g)))
    budgets_to_probe

let test_determinism_wl () =
  let d1 = Generators.random_labelled_graph ~seed:5 ~labels:1 6 9 in
  let d2 = Generators.random_labelled_graph ~seed:6 ~labels:1 6 9 in
  List.iter
    (same_twice "wl" (fun b ->
         Budget.run b ~phase:"wl" (fun () -> Wl.equivalent ~budget:b ~k:2 d1 d2)))
    budgets_to_probe

let test_determinism_karp_luby () =
  let psi = triangle_psi () and db = dense_db () in
  (* same seed, no budget: identical estimates *)
  let e1 = Karp_luby.estimate ~seed:7 ~samples:500 psi db in
  let e2 = Karp_luby.estimate ~seed:7 ~samples:500 psi db in
  Alcotest.(check bool) "same seed same estimate" true (e1 = e2);
  (* budgeted: deterministic exhaustion *)
  List.iter
    (same_twice "karp-luby" (fun b ->
         Budget.run b ~phase:"kl" (fun () ->
             Karp_luby.estimate ~seed:7 ~budget:b ~samples:5000 psi db)))
    [ 1; 50; 400 ]

let test_budget_does_not_change_results () =
  (* a generous budget must be invisible in the result *)
  let psi = triangle_psi () and db = dense_db () in
  let unbudgeted = Ucq.count_via_expansion psi db in
  let b = Budget.of_steps max_int in
  Alcotest.(check int) "expansion" unbudgeted
    (Ucq.count_via_expansion ~budget:b psi db);
  Alcotest.(check int) "naive agrees" unbudgeted
    (Ucq.count_naive ~budget:(Budget.of_steps max_int) psi db)

(* ------------------------------------------------------------------ *)
(* Runner: graceful degradation and exit codes                        *)
(* ------------------------------------------------------------------ *)

let test_runner_count_fallback () =
  let psi = triangle_psi () and db = dense_db () in
  (* exact under an ample budget *)
  let exact = Ucq.count_via_expansion psi db in
  (match Runner.count ~budget:(Budget.unlimited ()) psi db with
  | Ok (Runner.Exact n) -> Alcotest.(check int) "exact" exact n
  | _ -> Alcotest.fail "ample budget must stay exact");
  (* tiny budget: degrade to a tagged Karp-Luby estimate, exit 2 *)
  let r = Runner.count ~seed:3 ~budget:(Budget.of_steps 50) psi db in
  (match r with
  | Ok (Runner.Approximate { epsilon; delta; exhausted; _ }) ->
      Alcotest.(check (float 1e-9)) "epsilon tag" Runner.default_epsilon epsilon;
      Alcotest.(check (float 1e-9)) "delta tag" Runner.default_delta delta;
      Alcotest.(check bool) "steps recorded" true (exhausted.Budget.steps_done > 0)
  | _ -> Alcotest.fail "tiny budget must degrade");
  Alcotest.(check int) "degraded exit code" 2 (Runner.count_exit_code r);
  (* fallbacks disabled: structured Budget_exhausted, exit 124 *)
  let r = Runner.count ~fallback:false ~budget:(Budget.of_steps 50) psi db in
  (match r with
  | Error (Ucqc_error.Budget_exhausted { phase; steps_done }) ->
      Alcotest.(check string) "phase" "count" phase;
      Alcotest.(check bool) "steps" true (steps_done > 0)
  | _ -> Alcotest.fail "no-fallback must surface Budget_exhausted");
  Alcotest.(check int) "exhausted exit code" 124 (Runner.count_exit_code r)

let test_runner_count_determinism () =
  (* the full boundary (including the fallback estimate) is deterministic;
     the abandoned-attempt wall time is the one field allowed to vary
     between otherwise identical runs, so zero it before comparing *)
  let strip = function
    | Ok (Runner.Approximate a) ->
        Ok
          (Runner.Approximate
             { a with abandoned = { a.abandoned with elapsed_s = 0. } })
    | r -> r
  in
  let psi = triangle_psi () and db = dense_db () in
  List.iter
    (fun n ->
      let r1 = Runner.count ~seed:11 ~budget:(Budget.of_steps n) psi db in
      let r2 = Runner.count ~seed:11 ~budget:(Budget.of_steps n) psi db in
      Alcotest.(check bool)
        (Printf.sprintf "runner deterministic at %d" n)
        true
        (strip r1 = strip r2))
    [ 1; 30; 200; 2000 ]

let test_runner_treewidth_fallback () =
  let g = searchy_graph () in
  let exact =
    match Runner.treewidth ~budget:(Budget.unlimited ()) g with
    | Ok (Runner.Exact_width w) -> w
    | _ -> Alcotest.fail "ample budget must stay exact"
  in
  let r = Runner.treewidth ~budget:(Budget.of_steps 5) g in
  (match r with
  | Ok (Runner.Heuristic { lower; upper; _ }) ->
      Alcotest.(check bool) "bounds ordered" true (lower <= upper);
      Alcotest.(check bool) "bounds bracket exact" true
        (lower <= exact && exact <= upper)
  | _ -> Alcotest.fail "tiny budget must degrade to bounds");
  Alcotest.(check int) "degraded exit" 2 (Runner.treewidth_exit_code r);
  match Runner.treewidth ~fallback:false ~budget:(Budget.of_steps 5) g with
  | Error (Ucqc_error.Budget_exhausted _) as r ->
      Alcotest.(check int) "no-fallback exit" 124 (Runner.treewidth_exit_code r)
  | _ -> Alcotest.fail "no-fallback must error"

let test_runner_wl_dimension_fallback () =
  let psi =
    Ucq.make [ mkcq 4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ] ] [ 0; 1; 2; 3 ] ]
  in
  (match Runner.wl_dimension ~budget:(Budget.unlimited ()) psi with
  | Ok (Runner.Exact_dim k) -> Alcotest.(check int) "C4 dimension" 2 k
  | _ -> Alcotest.fail "ample budget must stay exact");
  (* a 1-step budget exhausts on the very first expansion tick *)
  match Runner.wl_dimension ~budget:(Budget.of_steps 1) psi with
  | Ok (Runner.Bounds { lower; upper; _ }) ->
      Alcotest.(check bool) "bounds bracket" true (lower <= 2 && 2 <= upper)
  | _ -> Alcotest.fail "tiny budget must degrade to Theorem 7 bounds"

let test_runner_meta () =
  let psi = triangle_psi () in
  (match Runner.decide_meta ~budget:(Budget.unlimited ()) psi with
  | Ok d -> Alcotest.(check bool) "triangles not linear" false d.Meta.linear_time
  | Error _ -> Alcotest.fail "ample budget must decide");
  (match Runner.decide_meta ~budget:(Budget.of_steps 1) psi with
  | Error (Ucqc_error.Budget_exhausted _) -> ()
  | _ -> Alcotest.fail "META has no fallback: must error");
  (* quantified input: structured Unsupported, not an escape *)
  let quantified = Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0 ] ] in
  match Runner.decide_meta ~budget:(Budget.unlimited ()) quantified with
  | Error (Ucqc_error.Unsupported _) -> ()
  | _ -> Alcotest.fail "quantified META must report Unsupported"

(* ------------------------------------------------------------------ *)
(* Degradation ordering: step limit and deadline in the same budget    *)
(* ------------------------------------------------------------------ *)

(* An already-expired deadline is the one wall-clock configuration that
   behaves deterministically (it is past on every probe), so it can be
   combined with a step limit to pin down which limit trips first. *)

let test_budget_both_limits_ordering () =
  (* the step limit sits below the 256-tick clock-probe stride, so it
     must win even against an expired deadline *)
  let tick_until_exhausted b =
    let rec go () = Budget.tick b; go () in
    match go () with
    | (_ : unit) -> Alcotest.fail "must exhaust"
    | exception Budget.Exhausted e -> e
  in
  let b = Budget.make ~max_steps:5 ~timeout:(-1.0) () in
  let e = tick_until_exhausted b in
  Alcotest.(check int) "step limit wins below the stride" 5 e.Budget.steps_done;
  (* above the stride the expired deadline wins, at exactly the probe *)
  let b = Budget.make ~max_steps:100_000 ~timeout:(-1.0) () in
  let e = tick_until_exhausted b in
  Alcotest.(check int) "deadline wins at the probe stride" 256
    e.Budget.steps_done;
  Alcotest.(check bool) "steps remain" true
    (Budget.remaining_steps b > Some 0);
  (* same configuration twice: identical exhaustion points *)
  let probe () =
    tick_until_exhausted (Budget.make ~max_steps:100_000 ~timeout:(-1.0) ())
  in
  Alcotest.(check bool) "both-limit exhaustion deterministic" true
    (probe () = probe ());
  (* [check] probes the clock unconditionally — no stride coarsening *)
  let b = Budget.make ~max_steps:5 ~timeout:(-1.0) () in
  match Budget.check b with
  | () -> Alcotest.fail "check must see the expired deadline"
  | exception Budget.Exhausted e ->
      Alcotest.(check int) "no steps consumed" 0 e.Budget.steps_done

let test_runner_both_limits () =
  let psi = triangle_psi () and db = dense_db () in
  let both () = Budget.make ~max_steps:50 ~timeout:(-1.0) () in
  (* with fallbacks on, a doubly-dead budget still degrades: the
     Karp-Luby substitute is polynomial and deliberately un-budgeted *)
  let r = Runner.count ~seed:5 ~budget:(both ()) psi db in
  (match r with
  | Ok (Runner.Approximate { exhausted; abandoned; _ }) ->
      Alcotest.(check string) "exhausted in count phase" "count"
        exhausted.Budget.phase;
      Alcotest.(check bool) "step limit tripped below the stride" true
        (exhausted.Budget.steps_done <= 256);
      Alcotest.(check string) "abandoned phase" "count" abandoned.Runner.phase
  | _ -> Alcotest.fail "both limits tripping must still degrade");
  Alcotest.(check int) "degraded exit" 2 (Runner.count_exit_code r);
  (* degradation is reported identically on a re-run (wall time aside) *)
  let strip = function
    | Ok (Runner.Approximate a) ->
        Ok
          (Runner.Approximate
             { a with abandoned = { a.abandoned with elapsed_s = 0. } })
    | r -> r
  in
  let again = Runner.count ~seed:5 ~budget:(both ()) psi db in
  Alcotest.(check bool) "both-limit degradation deterministic" true
    (strip r = strip again);
  (* no fallback: the same exhaustion surfaces as the structured error *)
  match Runner.count ~fallback:false ~budget:(both ()) psi db with
  | Error (Ucqc_error.Budget_exhausted { phase; steps_done }) as r ->
      Alcotest.(check string) "phase" "count" phase;
      Alcotest.(check bool) "steps recorded" true (steps_done > 0);
      Alcotest.(check int) "exit 124" 124 (Runner.count_exit_code r)
  | _ -> Alcotest.fail "no-fallback must surface Budget_exhausted"

(* ------------------------------------------------------------------ *)
(* Structured errors and exit codes                                   *)
(* ------------------------------------------------------------------ *)

let test_exit_codes () =
  let open Ucqc_error in
  Alcotest.(check int) "parse" 65
    (exit_code (parse_error_at ~line:1 ~col:2 "x"));
  Alcotest.(check int) "arity" 65
    (exit_code (Arity_mismatch { rel = "E"; expected = 1; got = 2 }));
  Alcotest.(check int) "unsupported" 65 (exit_code (Unsupported "x"));
  Alcotest.(check int) "budget" 124
    (exit_code (Budget_exhausted { phase = "p"; steps_done = 3 }));
  Alcotest.(check int) "internal" 70 (exit_code (Internal "bug"))

let test_error_rendering () =
  let open Ucqc_error in
  Alcotest.(check string) "parse message"
    "parse error at line 3, column 7: expected '('"
    (to_string
       (Parse_error
          { line = 3; col = 7; end_line = 3; end_col = 9; msg = "expected '('" }));
  Alcotest.(check string) "budget message"
    "budget exhausted in phase count after 42 steps"
    (to_string (Budget_exhausted { phase = "count"; steps_done = 42 }))

let test_guard () =
  (match Ucqc_error.guard (fun () -> 7) with
  | Ok 7 -> ()
  | _ -> Alcotest.fail "guard passes values");
  (match Ucqc_error.guard (fun () -> invalid_arg "domain") with
  | Error (Ucqc_error.Unsupported _) -> ()
  | _ -> Alcotest.fail "Invalid_argument becomes Unsupported");
  (match Ucqc_error.guard (fun () -> failwith "boom") with
  | Error (Ucqc_error.Internal _) -> ()
  | _ -> Alcotest.fail "Failure becomes Internal");
  let b = Budget.of_steps 1 in
  match Ucqc_error.guard (fun () -> Budget.tick b; Budget.tick b) with
  | Error (Ucqc_error.Budget_exhausted _) -> ()
  | _ -> Alcotest.fail "Exhausted becomes Budget_exhausted"

(* ------------------------------------------------------------------ *)
(* Parser hardening                                                   *)
(* ------------------------------------------------------------------ *)

let test_parse_positions () =
  (match Parse.ucq_result "(x, y) :- E(x, z),\n  F(z y)" with
  | Error (Ucqc_error.Parse_error { line; col; _ }) ->
      Alcotest.(check int) "line" 2 line;
      Alcotest.(check int) "col" 7 col
  | _ -> Alcotest.fail "must report the position of the bad token");
  (match Parse.ucq_result "(x) :- E(x), E(x, x)" with
  | Error (Ucqc_error.Arity_mismatch { rel; expected; got }) ->
      Alcotest.(check string) "relation" "E" rel;
      Alcotest.(check bool) "arities" true
        ((expected, got) = (1, 2) || (expected, got) = (2, 1))
  | _ -> Alcotest.fail "arity clash must be structured");
  match Parse.database_result "E(1, 2).\nE(3, ~)." with
  | Error (Ucqc_error.Parse_error { line; _ }) ->
      Alcotest.(check int) "db line" 2 line
  | _ -> Alcotest.fail "db errors must carry positions"

let test_parse_result_ok () =
  (match Parse.ucq_result "(x, y) :- E(x, y) ; E(y, x)" with
  | Ok (psi, _) -> Alcotest.(check int) "two disjuncts" 2 (Ucq.length psi)
  | Error _ -> Alcotest.fail "well-formed query must parse");
  match Parse.cq_result "(x, y) :- E(x, y) ; E(y, x)" with
  | Error (Ucqc_error.Parse_error _) -> ()
  | _ -> Alcotest.fail "cq_result must reject unions"

let test_crash_corpus () =
  (* dune runtest runs from the test directory; direct invocations of the
     binary may run from the workspace root *)
  let dir =
    List.find Sys.file_exists [ "crash_corpus"; "test/crash_corpus" ]
  in
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Alcotest.(check bool) "corpus present" true (Array.length entries >= 10);
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      let text =
        let ic = open_in path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let result =
        if String.length name >= 3 && String.sub name 0 3 = "db_" then
          Result.map (fun _ -> ()) (Parse.database_result text)
        else Result.map (fun _ -> ()) (Parse.ucq_result text)
      in
      match result with
      | Error _ -> () (* structured error: the contract *)
      | Ok () -> Alcotest.failf "corpus input %s parsed successfully" name
      | exception e ->
          Alcotest.failf "corpus input %s escaped with %s" name
            (Printexc.to_string e))
    entries

let suite =
  [
    ( "runtime",
      [
        Alcotest.test_case "budget steps" `Quick test_budget_steps;
        Alcotest.test_case "budget bulk ticks" `Quick test_budget_bulk_ticks;
        Alcotest.test_case "budget cancel" `Quick test_budget_cancel;
        Alcotest.test_case "run boundary" `Quick test_budget_run_boundary;
        Alcotest.test_case "count determinism" `Quick test_determinism_count;
        Alcotest.test_case "treewidth determinism" `Quick
          test_determinism_treewidth;
        Alcotest.test_case "wl determinism" `Quick test_determinism_wl;
        Alcotest.test_case "karp-luby determinism" `Quick
          test_determinism_karp_luby;
        Alcotest.test_case "budget invisible in results" `Quick
          test_budget_does_not_change_results;
        Alcotest.test_case "runner count fallback" `Quick
          test_runner_count_fallback;
        Alcotest.test_case "runner count determinism" `Quick
          test_runner_count_determinism;
        Alcotest.test_case "runner treewidth fallback" `Quick
          test_runner_treewidth_fallback;
        Alcotest.test_case "runner wl-dimension fallback" `Quick
          test_runner_wl_dimension_fallback;
        Alcotest.test_case "runner meta" `Quick test_runner_meta;
        Alcotest.test_case "both limits ordering" `Quick
          test_budget_both_limits_ordering;
        Alcotest.test_case "runner both limits" `Quick test_runner_both_limits;
        Alcotest.test_case "exit codes" `Quick test_exit_codes;
        Alcotest.test_case "error rendering" `Quick test_error_rendering;
        Alcotest.test_case "guard" `Quick test_guard;
        Alcotest.test_case "parse positions" `Quick test_parse_positions;
        Alcotest.test_case "parse result api" `Quick test_parse_result_ok;
        Alcotest.test_case "crash corpus" `Quick test_crash_corpus;
      ] );
  ]
