(** Tests for the META algorithm (Theorem 5), WL-dimension (Theorems
    7/8/58), complexity monotonicity (Theorem 28), the classification
    reports (Theorems 1/2/3), and the Appendix A counterexamples. *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let mkcq n edges free =
  Cq.make (Structure.make sg_e (List.init n (fun i -> i)) [ ("E", edges) ]) free

let test_meta_corollary49 () =
  (* Corollary 49: Ψ1 is not linear-time countable, Ψ2 is *)
  let psi1, _ = Paper_examples.psi1 () in
  let psi2, _ = Paper_examples.psi2 () in
  let d1 = Meta.decide psi1 and d2 = Meta.decide psi2 in
  Alcotest.(check bool) "psi1 not linear" false d1.Meta.linear_time;
  Alcotest.(check bool) "psi2 linear" true d2.Meta.linear_time;
  (* the offending term of Ψ1 is the cyclic K_3^4 *)
  Alcotest.(check int) "one offending term" 1 (List.length d1.Meta.offending);
  Alcotest.(check bool) "offender is cyclic" true
    (not (Cq.is_acyclic (List.hd d1.Meta.offending)))

let test_meta_single_queries () =
  (* a single acyclic CQ: linear *)
  let acyclic = Ucq.make [ mkcq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ] ] in
  Alcotest.(check bool) "acyclic CQ linear" true (Meta.decide acyclic).Meta.linear_time;
  (* a single triangle: not linear *)
  let triangle = Ucq.make [ mkcq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ] ] in
  Alcotest.(check bool) "triangle not linear" false
    (Meta.decide triangle).Meta.linear_time;
  (* quantified input is rejected *)
  let quantified = Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0 ] ] in
  Alcotest.check_raises "quantified rejected"
    (Invalid_argument "Meta.decide: input must be quantifier-free") (fun () ->
      ignore (Meta.decide quantified))

let test_hereditary_treewidth () =
  let psi1, _ = Paper_examples.psi1 () in
  let psi2, _ = Paper_examples.psi2 () in
  Alcotest.(check int) "hdtw psi1 = tw(K_3^4) = 2" 2 (Meta.hereditary_treewidth psi1);
  Alcotest.(check int) "hdtw psi2 = 1" 1 (Meta.hereditary_treewidth psi2);
  let lo1, hi1 = Meta.hereditary_treewidth_bounds psi1 in
  Alcotest.(check bool) "bounds sandwich" true (lo1 <= 2 && 2 <= hi1)

let test_gap () =
  let psi1, _ = Paper_examples.psi1 () in
  let psi2, _ = Paper_examples.psi2 () in
  Alcotest.(check bool) "psi2 within linear" true (Meta.gap ~c:1 ~d:1 psi2 = Meta.Within_c);
  Alcotest.(check bool) "psi1 beyond linear" true (Meta.gap ~c:1 ~d:1 psi1 = Meta.Beyond_d);
  Alcotest.(check bool) "psi1 within cubic" true (Meta.gap ~c:3 ~d:3 psi1 = Meta.Within_c)

let test_wl_dimension () =
  let psi1, _ = Paper_examples.psi1 () in
  let psi2, _ = Paper_examples.psi2 () in
  Alcotest.(check int) "dim_WL psi1 = 2" 2 (Wl_dimension.exact psi1);
  Alcotest.(check int) "dim_WL psi2 = 1" 1 (Wl_dimension.exact psi2);
  Alcotest.(check bool) "at_most" true (Wl_dimension.at_most 2 psi1);
  Alcotest.(check bool) "not at_most 1" false (Wl_dimension.at_most 1 psi1);
  let lo, hi = Wl_dimension.approximate psi1 in
  Alcotest.(check bool) "approx sandwich" true (lo <= 2 && 2 <= hi)

let test_wl_invariance () =
  (* Definition 6 spot-check: k-WL-equivalent databases yield equal counts
     for a UCQ of WL-dimension k *)
  let sg2 = Signature.make [ Signature.symbol "E0" 2; Signature.symbol "E1" 2 ] in
  let mk edges0 edges1 =
    Cq.of_structure
      (Structure.make sg2 [ 0; 1; 2 ] [ ("E0", edges0); ("E1", edges1) ])
  in
  let psi = Ucq.make [ mk [ [ 0; 1 ] ] []; mk [] [ [ 1; 2 ] ] ] in
  Alcotest.(check int) "dim 1 union" 1 (Wl_dimension.exact psi);
  let pairs_checked =
    match Wl_dimension.invariance_check ~k:1 psi with
    | Ok n -> n
    | Error e -> Alcotest.fail (Ucqc_error.to_string e)
  in
  Alcotest.(check bool) "checked pairs" true (pairs_checked >= 1)

let test_monotonicity_recovery () =
  (* Theorem 28: recover per-term counts from the UCQ oracle *)
  let psi =
    Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ]; mkcq 2 [ [ 1; 0 ] ] [ 0; 1 ] ]
  in
  let d = Generators.random_digraph ~seed:33 6 14 in
  let recovered = Monotonicity.recover psi d in
  Alcotest.(check int) "two terms recovered" 2 (List.length recovered);
  List.iter
    (fun (r : Monotonicity.recovered) ->
      let direct = Counting.count ~strategy:Counting.Naive r.Monotonicity.term d in
      Alcotest.(check (option int)) "recovered = direct" (Some direct)
        (Bigint.to_int_opt r.Monotonicity.count))
    recovered

let test_monotonicity_three_disjuncts () =
  let psi =
    Ucq.make
      [
        mkcq 3 [ [ 0; 1 ] ] [ 0; 1; 2 ];
        mkcq 3 [ [ 1; 2 ] ] [ 0; 1; 2 ];
        mkcq 3 [ [ 0; 2 ] ] [ 0; 1; 2 ];
      ]
  in
  let d = Generators.random_digraph ~seed:34 5 10 in
  let recovered = Monotonicity.recover psi d in
  List.iter
    (fun (r : Monotonicity.recovered) ->
      let direct = Counting.count ~strategy:Counting.Naive r.Monotonicity.term d in
      Alcotest.(check (option int)) "recovered = direct" (Some direct)
        (Bigint.to_int_opt r.Monotonicity.count))
    recovered

let test_classify_analyze () =
  let psi1, _ = Paper_examples.psi1 () in
  let r = Classify.analyze psi1 in
  Alcotest.(check int) "combined tw" 2 r.Classify.combined_tw;
  Alcotest.(check int) "gamma tw" 2 r.Classify.gamma_max_tw;
  Alcotest.(check bool) "qf" true r.Classify.quantifier_free;
  Alcotest.(check bool) "sjf" true r.Classify.union_of_self_join_free;
  (* quantifier-free: contract measures coincide with plain treewidth *)
  Alcotest.(check int) "contract tw = tw" r.Classify.combined_tw
    r.Classify.combined_contract_tw

let test_lemma59_family () =
  (* dropping deletion-closedness: combined treewidth grows with t, the
     expansion support stays acyclic (so #UCQ of the family is FPT) *)
  List.iter
    (fun t ->
      let psi, ktk = Counterexamples.lemma59 t in
      Alcotest.(check int)
        (Printf.sprintf "combined tw at t=%d" t)
        (t - 1)
        (Cq.treewidth (Ucq.combined_all psi));
      Alcotest.(check bool) "coefficient of combined vanishes" true
        (Ucq.coefficient psi (Ucq.combined_all psi) = 0);
      Alcotest.(check int)
        (Printf.sprintf "gamma stays acyclic at t=%d" t)
        1
        (Meta.hereditary_treewidth psi);
      ignore ktk)
    [ 3; 4 ]

let test_lemma60_family () =
  (* dropping bounded quantified variables: tw(∧Ψ_k) grows, while every
     #minimal expansion term and its contract stay of treewidth ≤ 2 *)
  let k = 3 in
  let psi = Counterexamples.lemma60 k in
  Alcotest.(check int) "binomial(k,2) disjuncts" 3 (Ucq.length psi);
  Alcotest.(check bool) "sjf union" true (Ucq.is_union_of_self_join_free psi);
  Alcotest.(check bool) "combined tw >= k - 1" true
    (Cq.treewidth (Ucq.combined_all psi) >= k - 1);
  List.iter
    (fun (t : Ucq.expansion_term) ->
      Alcotest.(check bool) "support tw <= 2" true
        (Cq.treewidth t.representative <= 2);
      Alcotest.(check bool) "support contract tw <= 2" true
        (Cq.contract_treewidth t.representative <= 2))
    (Ucq.support psi)

let test_lemma61_family () =
  (* dropping self-join-freeness: the contract of ψ_k has treewidth k while
     the #core's contract has treewidth 1 *)
  let k = 3 in
  let psi = Counterexamples.lemma61 k in
  let q = Ucq.disjunct psi 0 in
  Alcotest.(check bool) "contract tw grows" true (Cq.contract_treewidth q >= k);
  let core = Cq.sharp_core q in
  Alcotest.(check int) "core contract tw" 1 (Cq.contract_treewidth core);
  Alcotest.(check bool) "not sjf" false (Cq.is_self_join_free q)

let test_meta_pipeline_hdtw () =
  (* unsat pipeline query: support is all-acyclic, hdtw = 1;
     sat pipeline query: the cyclic K_3^k survives, hdtw = 2 *)
  (match Pipeline.ucq_of_cnf (Cnf.make 1 [ [ 1 ]; [ -1 ] ]) with
  | Pipeline.Query { psi; _ } ->
      Alcotest.(check int) "unsat hdtw" 1 (Meta.hereditary_treewidth psi)
  | _ -> Alcotest.fail "expected query");
  match Pipeline.ucq_of_cnf (Cnf.make 1 [ [ 1 ] ]) with
  | Pipeline.Query { psi; _ } ->
      Alcotest.(check int) "sat hdtw" 2 (Meta.hereditary_treewidth psi)
  | _ -> Alcotest.fail "expected query"

let test_gap_between () =
  (* a C4 union: hdtw 1 < tw(C4) = 2?  no — the single C4 has hdtw 2; use
     it to exercise the Between band of META[1, 2] ... hdtw 2 > d = 2 is
     false, so Between *)
  let c4 =
    Ucq.make [ mkcq 4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ] ] [ 0; 1; 2; 3 ] ]
  in
  Alcotest.(check bool) "within quadratic" true (Meta.gap ~c:2 ~d:2 c4 = Meta.Within_c);
  Alcotest.(check bool) "between for (1,2)" true (Meta.gap ~c:1 ~d:2 c4 = Meta.Between);
  Alcotest.(check bool) "beyond linear" true (Meta.gap ~c:1 ~d:1 c4 = Meta.Beyond_d)

let test_monotonicity_custom_oracle () =
  (* the oracle really is used as a black box: count the calls *)
  let psi =
    Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ]; mkcq 2 [ [ 1; 0 ] ] [ 0; 1 ] ]
  in
  let d = Generators.random_digraph ~seed:35 5 10 in
  let calls = ref 0 in
  let oracle b =
    incr calls;
    Ucq.count_inclusion_exclusion_big psi b
  in
  let recovered = Monotonicity.recover_with_oracle ~oracle psi d in
  Alcotest.(check int) "oracle called once per basis element"
    (List.length recovered) !calls;
  List.iter
    (fun (r : Monotonicity.recovered) ->
      let direct = Counting.count ~strategy:Counting.Naive r.Monotonicity.term d in
      Alcotest.(check (option int)) "recovered" (Some direct)
        (Bigint.to_int_opt r.Monotonicity.count))
    recovered

let test_analyze_cq () =
  (* Lemma 61 query: core collapses the contract *)
  let psi = Counterexamples.lemma61 3 in
  let q = Ucq.disjunct psi 0 in
  let r = Classify.analyze_cq q in
  Alcotest.(check bool) "input not minimal" false r.Classify.was_minimal;
  Alcotest.(check int) "core tw" 1 r.Classify.core_tw;
  Alcotest.(check int) "core contract tw" 1 r.Classify.core_contract_tw;
  Alcotest.(check bool) "core acyclic" true r.Classify.core_acyclic;
  Alcotest.(check bool) "core quantifier-free" true r.Classify.core_quantifier_free;
  (* a quantifier-free triangle is its own core *)
  let tri = mkcq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ] in
  let r2 = Classify.analyze_cq tri in
  Alcotest.(check bool) "triangle minimal" true r2.Classify.was_minimal;
  Alcotest.(check int) "triangle core tw" 2 r2.Classify.core_tw

let test_meta_fast_agrees () =
  List.iter
    (fun f ->
      let fast = Pipeline.meta_fast f in
      match Pipeline.ucq_of_cnf f with
      | Pipeline.Resolved sat ->
          Alcotest.(check bool) "degenerate agreement" (not sat) fast
      | Pipeline.Query { psi; _ } ->
          Alcotest.(check bool) "fast = generic META" (Meta.decide psi).Meta.linear_time
            fast)
    [
      Cnf.make 1 [ [ 1 ] ];
      Cnf.make 1 [ [ 1 ]; [ -1 ] ];
      Cnf.make 2 [ [ 1; 2 ]; [ -1; -2 ] ];
      Cnf.make 2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ];
      Cnf.make 2 [ [] ];
    ]

let test_classify_family_verdicts () =
  (* bounded family: stars as single-CQ unions -> FPT *)
  let star_family k =
    Ucq.make [ mkcq (k + 1) (List.init k (fun i -> [ 0; i + 1 ])) (Combinat.range (k + 1)) ]
  in
  let r = Classify.analyze_family star_family [ 2; 3; 4 ] in
  Alcotest.(check bool) "stars FPT" true (r.Classify.verdict = Classify.Fpt);
  (* growing family: cliques as single-CQ unions (deletion-closed as a
     class of single CQs) -> W[1]-hard evidence *)
  let clique_family k =
    let edges =
      List.concat_map
        (fun (u, v) -> [ [ u; v ] ])
        (Combinat.pairs (Combinat.range k))
    in
    Ucq.make [ mkcq k edges (Combinat.range k) ]
  in
  let r2 = Classify.analyze_family ~with_gamma:false clique_family [ 3; 4; 5 ] in
  Alcotest.(check bool) "cliques hard" true (r2.Classify.verdict = Classify.W1_hard)

let suite =
  [
    ( "meta",
      [
        Alcotest.test_case "Corollary 49 via META" `Quick test_meta_corollary49;
        Alcotest.test_case "META on single CQs" `Quick test_meta_single_queries;
        Alcotest.test_case "hereditary treewidth" `Quick test_hereditary_treewidth;
        Alcotest.test_case "META gap problem" `Quick test_gap;
        Alcotest.test_case "WL-dimension (Theorem 58)" `Quick test_wl_dimension;
        Alcotest.test_case "WL invariance spot-check" `Quick test_wl_invariance;
        Alcotest.test_case "monotonicity recovery" `Quick test_monotonicity_recovery;
        Alcotest.test_case "monotonicity (3 disjuncts)" `Quick
          test_monotonicity_three_disjuncts;
        Alcotest.test_case "classification report" `Quick test_classify_analyze;
        Alcotest.test_case "Lemma 59 family" `Quick test_lemma59_family;
        Alcotest.test_case "Lemma 60 family" `Quick test_lemma60_family;
        Alcotest.test_case "Lemma 61 family" `Quick test_lemma61_family;
        Alcotest.test_case "pipeline hereditary treewidth" `Quick
          test_meta_pipeline_hdtw;
        Alcotest.test_case "gap bands" `Quick test_gap_between;
        Alcotest.test_case "monotonicity custom oracle" `Quick
          test_monotonicity_custom_oracle;
        Alcotest.test_case "single-CQ profile (Theorem 21)" `Quick test_analyze_cq;
        Alcotest.test_case "fast pipeline META" `Quick test_meta_fast_agrees;
        Alcotest.test_case "family verdicts" `Quick test_classify_family_verdicts;
      ] );
  ]
