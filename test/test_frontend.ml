(** Tests for the surface-syntax parser and pretty-printer. *)

let test_parse_ucq () =
  let psi, env = Parse.ucq "(x, y) :- E(x, z), E(z, y) ; E(x, y)" in
  Alcotest.(check int) "two disjuncts" 2 (Ucq.length psi);
  Alcotest.(check int) "two free vars" 2 (List.length (Ucq.free psi));
  Alcotest.(check int) "one quantified" 1 (Ucq.num_quantified psi);
  Alcotest.(check (list string)) "head names" [ "x"; "y" ]
    (List.map fst env.Parse.free_names)

let test_parse_cq () =
  let q, _ = Parse.cq "(a, b, c) :- E(a, b), E(b, c), E(c, a)" in
  Alcotest.(check bool) "qf" true (Cq.is_quantifier_free q);
  Alcotest.(check bool) "cyclic" false (Cq.is_acyclic q);
  Alcotest.(check int) "three atoms" 3 (Structure.num_tuples (Cq.structure q))

let test_parse_boolean () =
  let q, _ = Parse.cq "() :- E(x, y)" in
  Alcotest.(check (list int)) "no free vars" [] (Cq.free q);
  Alcotest.(check int) "two quantified" 2 (List.length (Cq.quantified q))

let test_parse_mixed_arity () =
  let psi, _ = Parse.ucq "(x) :- P(x), E(x, y) ; P(x)" in
  Alcotest.(check int) "signature has two symbols" 2
    (Signature.size (Structure.signature (List.hd (Ucq.disjunct_structures psi))))

let test_nullary_atoms () =
  (* arity-0 relations parse in queries and databases *)
  let psi, _ = Parse.ucq "(x) :- Flag(), P(x) ; P(x)" in
  Alcotest.(check int) "two symbols" 2
    (Signature.size (Structure.signature (List.hd (Ucq.disjunct_structures psi))));
  let db, _ = Parse.database "Flag(). P(0). P(1)." in
  Alcotest.(check int) "flag present" 1 (List.length (Structure.relation db "Flag"));
  Alcotest.(check int) "with flag" 2 (Ucq.count_via_expansion psi db);
  let db2, _ = Parse.database "universe { 0, 1 }\nP(0). P(1). Q(0, 1)." in
  (* query signature must be covered: rebuild without Flag *)
  let psi2, _ = Parse.ucq "(x) :- P(x)" in
  Alcotest.(check int) "without flag" 2 (Ucq.count_via_expansion psi2 db2)

let test_parse_errors () =
  let fails s =
    try
      ignore (Parse.ucq s);
      false
    with Parse.Parse_error _ -> true
  in
  Alcotest.(check bool) "arity clash" true (fails "(x) :- E(x), E(x, x)");
  Alcotest.(check bool) "missing turnstile" true (fails "(x) E(x, y)");
  Alcotest.(check bool) "duplicate head var" true (fails "(x, x) :- E(x, x)");
  Alcotest.(check bool) "constant in query" true (fails "(x) :- E(x, 3)");
  Alcotest.(check bool) "garbage" true (fails "(x) :- E(x, y) @")

let test_comments_whitespace () =
  let psi, _ =
    Parse.ucq "# a comment\n( x ,\n y ) :- \n  E(x, y) # trailing\n ; E(y, x)"
  in
  Alcotest.(check int) "parsed through comments" 2 (Ucq.length psi)

let test_parse_database () =
  let db, _ = Parse.database "E(0, 1). E(1, 2).\nP(2)." in
  Alcotest.(check int) "universe" 3 (Structure.universe_size db);
  Alcotest.(check int) "tuples" 3 (Structure.num_tuples db);
  Alcotest.(check int) "binary + unary" 2 (Signature.size (Structure.signature db))

let test_database_identifiers () =
  let db, env = Parse.database "Likes(alice, post1). Likes(bob, post1)." in
  Alcotest.(check int) "interned constants" 3 (List.length env.Parse.constants);
  Alcotest.(check int) "universe" 3 (Structure.universe_size db);
  (* identifiers intern above literals: no clash when mixed *)
  let db2, _ = Parse.database "E(7, x). E(x, 7)." in
  Alcotest.(check int) "mixed constants" 2 (Structure.universe_size db2)

let test_database_universe_decl () =
  let db, _ = Parse.database "universe { 5, 9 }\nE(0, 1)." in
  Alcotest.(check int) "declared isolated elements" 4 (Structure.universe_size db);
  Alcotest.(check (list int)) "isolated" [ 5; 9 ] (Structure.isolated_elements db)

let test_end_to_end () =
  let psi, _ = Parse.ucq "(x, y) :- E(x, y) ; E(y, x)" in
  let db, _ = Parse.database "E(0, 1). E(1, 2). E(2, 0)." in
  Alcotest.(check int) "count through the front-end" 6
    (Ucq.count_via_expansion psi db)

let test_pretty_roundtrip () =
  let texts =
    [
      "(x, y) :- E(x, z), E(z, y) ; E(x, y)";
      "(a) :- P(a) ; Q(a, b)";
      "() :- E(u, v)";
    ]
  in
  List.iter
    (fun text ->
      let psi, env = Parse.ucq text in
      let printed = Pretty.ucq ~env psi in
      let psi2, _ = Parse.ucq printed in
      (* roundtrip preserves counting behaviour *)
      let db, _ = Parse.database "E(0,1). E(1,2). E(2,0). P(0). Q(1,2)." in
      Alcotest.(check int)
        ("roundtrip: " ^ text)
        (Ucq.count_via_expansion psi db)
        (Ucq.count_via_expansion psi2 db))
    texts

let test_error_spans () =
  (* structured errors carry a full 1-based, end-exclusive span *)
  (match Parse.ucq_result "(x) :-\n  E(x,, y)" with
  | Error (Ucqc_error.Parse_error p) ->
      Alcotest.(check int) "start line" 2 p.line;
      Alcotest.(check int) "start col" 7 p.col;
      Alcotest.(check int) "end line" 2 p.end_line;
      Alcotest.(check int) "end col (end-exclusive)" 8 p.end_col
  | Error _ -> Alcotest.fail "expected Parse_error"
  | Ok _ -> Alcotest.fail "expected a parse failure");
  (* the legacy exception renders exactly the structured error's text *)
  match Parse.ucq_result "(x) E(x, y)" with
  | Error e -> (
      try
        ignore (Parse.ucq "(x) E(x, y)");
        Alcotest.fail "legacy entry point did not raise"
      with Parse.Parse_error msg ->
        Alcotest.(check string) "legacy message text unchanged"
          (Ucqc_error.to_string e) msg)
  | Ok _ -> Alcotest.fail "expected a parse failure"

let test_atom_dedupe () =
  (* syntactic duplicates are dropped at interning, count-preserving *)
  let psi, _ = Parse.ucq "(x) :- E(x, y), E(x, y)" in
  Alcotest.(check int) "duplicate dropped" 1
    (Structure.num_tuples (List.hd (Ucq.disjunct_structures psi)));
  let psi0, _ = Parse.ucq "(x) :- E(x, y)" in
  let db, _ = Parse.database "E(0, 1). E(1, 2). E(2, 2)." in
  Alcotest.(check int) "count preserved" (Ucq.count_via_expansion psi0 db)
    (Ucq.count_via_expansion psi db);
  (* duplicates across disjuncts are not touched *)
  let psi2, _ = Parse.ucq "(x) :- E(x, y) ; E(x, y)" in
  Alcotest.(check int) "disjuncts kept" 2 (Ucq.length psi2)

let test_pretty_database_roundtrip () =
  let db, _ = Parse.database "universe { 9 }\nE(0, 1). E(1, 2)." in
  let db2, _ = Parse.database (Pretty.database db) in
  Alcotest.(check bool) "database roundtrip" true (Structure.equal db db2)

let suite =
  [
    ( "frontend",
      [
        Alcotest.test_case "parse ucq" `Quick test_parse_ucq;
        Alcotest.test_case "parse cq" `Quick test_parse_cq;
        Alcotest.test_case "boolean query" `Quick test_parse_boolean;
        Alcotest.test_case "mixed arity" `Quick test_parse_mixed_arity;
        Alcotest.test_case "nullary atoms" `Quick test_nullary_atoms;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "comments and whitespace" `Quick test_comments_whitespace;
        Alcotest.test_case "parse database" `Quick test_parse_database;
        Alcotest.test_case "identifier constants" `Quick test_database_identifiers;
        Alcotest.test_case "universe declaration" `Quick test_database_universe_decl;
        Alcotest.test_case "end to end counting" `Quick test_end_to_end;
        Alcotest.test_case "error spans" `Quick test_error_spans;
        Alcotest.test_case "atom dedupe at interning" `Quick test_atom_dedupe;
        Alcotest.test_case "query pretty roundtrip" `Quick test_pretty_roundtrip;
        Alcotest.test_case "database pretty roundtrip" `Quick
          test_pretty_database_roundtrip;
      ] );
  ]
