(** Tests for the domain pool: sequential-fallback and deterministic
    reduction contracts, chunked scheduling, exception propagation and
    cooperative cancellation, the domain-safety of shared budgets, and the
    jobs-independence of every parallelised engine. *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let mkcq n edges free =
  Cq.make (Structure.make sg_e (List.init n (fun i -> i)) [ ("E", edges) ]) free

(* ------------------------------------------------------------------ *)
(* Pool mechanics                                                     *)
(* ------------------------------------------------------------------ *)

let test_run_matches_sequential () =
  List.iter
    (fun jobs ->
      let p = Pool.create ~jobs () in
      List.iter
        (fun n ->
          let expect = Array.init n (fun i -> (i * i) + 1) in
          let got = Pool.run p ~f:(fun i -> (i * i) + 1) n in
          Alcotest.(check (array int))
            (Printf.sprintf "run jobs=%d n=%d" jobs n)
            expect got)
        [ 0; 1; 2; 7; 100 ])
    [ 1; 2; 4 ]

let test_sequential_fallback_in_order () =
  (* jobs = 1 must evaluate f 0, f 1, ... in the calling domain, in
     ascending index order — the bit-for-bit contract *)
  let seen = ref [] in
  let self = Domain.self () in
  let _ =
    Pool.run Pool.sequential
      ~f:(fun i ->
        Alcotest.(check bool) "runs in the calling domain" true
          (Domain.self () = self);
        seen := i :: !seen;
        i)
      20
  in
  Alcotest.(check (list int)) "ascending order" (List.init 20 (fun i -> i))
    (List.rev !seen)

let test_fold_deterministic_reduction () =
  (* a non-commutative combine: result depends on reduction order, so a
     scheduling-dependent fold would differ between runs and job counts *)
  let input = Array.init 64 string_of_int in
  let combine acc s = acc ^ "," ^ s in
  let expect = Array.fold_left combine "" input in
  List.iter
    (fun jobs ->
      let p = Pool.create ~jobs () in
      Alcotest.(check string)
        (Printf.sprintf "fold jobs=%d" jobs)
        expect
        (Pool.fold p ~f:Fun.id ~combine ~init:"" input))
    [ 1; 2; 4 ]

let test_map_opt_none () =
  let input = [| 3; 1; 4; 1; 5 |] in
  Alcotest.(check (array int)) "map_opt None = Array.map"
    (Array.map succ input)
    (Pool.map_opt None succ input)

exception Boom of int

let test_exception_propagation () =
  let p = Pool.create ~jobs:4 () in
  let b = Budget.unlimited () in
  (match Pool.run p ~budget:b ~f:(fun i -> if i = 37 then raise (Boom i)) 100 with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 37 -> ());
  Alcotest.(check bool) "failure cancels the shared budget" true
    (Budget.is_cancelled b)

let test_count_range () =
  List.iter
    (fun jobs ->
      let p = Pool.create ~jobs () in
      Alcotest.(check int)
        (Printf.sprintf "count_range jobs=%d" jobs)
        (let c = ref 0 in
         for i = 0 to 9_999 do
           if i mod 7 = 3 then incr c
         done;
         !c)
        (Pool.count_range p ~total:10_000 (fun i -> i mod 7 = 3)))
    [ 1; 3 ]

let test_partition_overflow_regression () =
  (* the pre-work-stealing bounds were [total * r / ranges], which
     overflows for totals near max_int (2^62 subset sweeps) and produced
     negative range bounds; the partition must stay exact by division *)
  List.iter
    (fun (total, parts) ->
      let ranges = Pool.partition ~total ~parts in
      Alcotest.(check bool)
        (Printf.sprintf "some ranges for total=%d" total)
        true
        (Array.length ranges > 0 && Array.length ranges <= parts);
      let lo0, _ = ranges.(0) in
      let _, hi_last = ranges.(Array.length ranges - 1) in
      Alcotest.(check int) "starts at 0" 0 lo0;
      Alcotest.(check int) "ends at total" total hi_last;
      Array.iteri
        (fun r (lo, hi) ->
          Alcotest.(check bool) "bounds non-negative and ordered" true
            (0 <= lo && lo <= hi);
          if r > 0 then begin
            let _, prev_hi = ranges.(r - 1) in
            Alcotest.(check int) "contiguous" prev_hi lo
          end;
          (* near-equal: sizes differ by at most one *)
          let size = hi - lo in
          let base = total / Array.length ranges in
          Alcotest.(check bool) "near-equal size" true
            (size = base || size = base + 1))
        ranges)
    [
      (max_int, 32);
      (max_int - 1, 7);
      (max_int, 1);
      (10, 3);
      (1, 8);
      (5, 5);
    ];
  Alcotest.(check int) "empty for total=0" 0
    (Array.length (Pool.partition ~total:0 ~parts:4))

let test_pool_reuse_no_domain_leak () =
  (* resident-worker contract: after a warm-up run, many runs across
     many pool values spawn no further domains *)
  let p = Pool.create ~jobs:4 () in
  ignore (Pool.run p ~f:Fun.id 64);
  let s0 = Pool.spawn_count () in
  for _ = 1 to 50 do
    ignore (Pool.run p ~f:(fun i -> i * 2) 64);
    (* fresh pool values share the same resident workers *)
    ignore (Pool.run (Pool.create ~jobs:3 ()) ~f:(fun i -> i + 1) 32)
  done;
  Alcotest.(check int) "no domain spawned after warm-up" s0
    (Pool.spawn_count ());
  Alcotest.(check bool) "workers parked between runs" true
    (Pool.idle_count () >= 3)

let test_cost_aware_run () =
  (* costs steer placement only — any cost function (including adversarial
     NaN / negative / zero estimates) must leave results and reduction
     order untouched *)
  let n = 37 in
  let expect = Array.init n (fun i -> i * 3) in
  List.iter
    (fun (label, costs) ->
      let p = Pool.create ~jobs:4 () in
      Alcotest.(check (array int))
        label expect
        (Pool.run p ~costs ~f:(fun i -> i * 3) n))
    [
      ("descending costs", fun i -> float_of_int (n - i));
      ("one giant item", fun i -> if i = 17 then 1e9 else 1.);
      ("all equal", fun _ -> 1.);
      ("all zero", fun _ -> 0.);
      ("adversarial nan/negative", fun i ->
        if i mod 3 = 0 then Float.nan else if i mod 3 = 1 then -5. else 2.);
    ];
  (* the deterministic-fold contract holds with costs too *)
  let input = Array.init 48 string_of_int in
  let combine acc s = acc ^ "," ^ s in
  let expect = Array.fold_left combine "" input in
  let p = Pool.create ~jobs:4 () in
  Alcotest.(check string) "cost-aware fold is index-ordered" expect
    (Pool.fold p
       ~costs:(fun s -> float_of_string s)
       ~f:Fun.id ~combine ~init:"" input)

let test_nested_run () =
  (* a pool task may itself run on a pool (engines compose); the inner
     runs borrow or spawn workers independently of the outer run *)
  let p = Pool.create ~jobs:2 () in
  let got =
    Pool.run p
      ~f:(fun i ->
        Array.fold_left ( + ) 0
          (Pool.run (Pool.create ~jobs:2 ()) ~f:(fun j -> (10 * i) + j) 4))
      6
  in
  let expect =
    Array.init 6 (fun i ->
        Array.fold_left ( + ) 0 (Array.init 4 (fun j -> (10 * i) + j)))
  in
  Alcotest.(check (array int)) "nested runs" expect got

let test_shutdown_and_respawn () =
  let p = Pool.create ~jobs:3 () in
  ignore (Pool.run p ~f:Fun.id 16);
  Alcotest.(check bool) "workers parked" true (Pool.idle_count () >= 2);
  Pool.shutdown_all ();
  Alcotest.(check int) "free-list empty after shutdown" 0 (Pool.idle_count ());
  (* shutdown is a courtesy, not a poison pill: the next run respawns *)
  Alcotest.(check (array int))
    "runs fine after shutdown"
    (Array.init 16 (fun i -> i + 1))
    (Pool.run p ~f:(fun i -> i + 1) 16);
  Alcotest.(check bool) "workers parked again" true (Pool.idle_count () >= 2)

let test_budget_exhaustion_in_run () =
  (* Budget.Exhausted raised by a worker is an exception like any other:
     it cancels the shared budget (waking the ticking workers promptly)
     and re-raises in the caller *)
  let p = Pool.create ~jobs:4 () in
  let b = Budget.of_steps 50 in
  (match
     Pool.run p ~budget:b
       ~f:(fun i ->
         Budget.tick b;
         i)
       10_000
   with
  | _ -> Alcotest.fail "expected Budget.Exhausted to propagate"
  | exception Budget.Exhausted _ -> ());
  Alcotest.(check bool) "budget cancelled for prompt worker wake-up" true
    (Budget.is_cancelled b)

let test_jobs_validation () =
  let ok = function Ok n -> Some n | Error _ -> None in
  Alcotest.(check (option int)) "well-formed" (Some 3) (ok (Pool.validate_jobs "3"));
  Alcotest.(check (option int)) "whitespace tolerated" (Some 2)
    (ok (Pool.validate_jobs " 2 "));
  Alcotest.(check (option int)) "garbage rejected" None
    (ok (Pool.validate_jobs "lots"));
  Alcotest.(check (option int)) "zero rejected" None (ok (Pool.validate_jobs "0"));
  Alcotest.(check (option int)) "negative rejected" None
    (ok (Pool.validate_jobs "-4"));
  Alcotest.(check (option int)) "empty rejected" None (ok (Pool.validate_jobs ""))

let test_jobs_of_env_strict () =
  let with_env v f =
    Unix.putenv "UCQC_JOBS" v;
    let r = f () in
    Unix.putenv "UCQC_JOBS" "";
    r
  in
  Alcotest.(check int) "well-formed" 3 (with_env "3" Pool.jobs_of_env);
  Alcotest.(check bool) "malformed is an error, not a silent 1" true
    (with_env "lots" (fun () ->
         match Pool.jobs_of_env_result () with Error _ -> true | Ok _ -> false));
  Alcotest.(check bool) "zero is an error" true
    (with_env "0" (fun () ->
         match Pool.jobs_of_env_result () with Error _ -> true | Ok _ -> false));
  Alcotest.(check int) "set-but-empty means unset" 1
    (with_env "" Pool.jobs_of_env);
  (* the exception-raising variant mirrors the result variant *)
  Alcotest.(check bool) "jobs_of_env raises on garbage" true
    (with_env "garbage" (fun () ->
         match Pool.jobs_of_env () with
         | exception Invalid_argument _ -> true
         | _ -> false))

(* ------------------------------------------------------------------ *)
(* Shared-budget domain safety                                        *)
(* ------------------------------------------------------------------ *)

let test_budget_concurrent_ticks () =
  (* two domains hammer one step budget: accounting must stay exact (at
     most [max_steps] ticks return normally) and the recorded steps_done
     may overshoot max_steps by at most the clock stride (256) *)
  let n = 25_000 in
  let b = Budget.of_steps n in
  let ok_ticks = Atomic.make 0 in
  let worker () =
    try
      while true do
        Budget.tick b;
        Atomic.incr ok_ticks
      done
    with Budget.Exhausted _ -> ()
  in
  let d = Domain.spawn worker in
  worker ();
  Domain.join d;
  Alcotest.(check bool) "both domains stopped; ticks within allowance" true
    (Atomic.get ok_ticks <= n);
  Alcotest.(check bool)
    (Printf.sprintf "steps_done %d within max_steps + stride" (Budget.steps_done b))
    true
    (Budget.steps_done b <= n + 256)

let test_worker_exhaustion_exit_codes () =
  (* budget exhaustion inside a worker domain must surface through the
     Runner boundary with the PR-1 semantics: 124 without fallback, 2
     with degradation *)
  let psi =
    Ucq.make
      [
        mkcq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ];
        mkcq 3 [ [ 1; 0 ] ] [ 0; 1; 2 ];
      ]
  in
  let db = Generators.random_digraph ~seed:71 6 14 in
  let pool = Pool.create ~jobs:4 () in
  let strict =
    Runner.count ~via:Runner.Naive ~fallback:false ~pool
      ~budget:(Budget.of_steps 40) psi db
  in
  Alcotest.(check int) "no-fallback exhaustion exits 124" 124
    (Runner.count_exit_code strict);
  let degraded =
    Runner.count ~via:Runner.Naive ~pool ~budget:(Budget.of_steps 40) psi db
  in
  Alcotest.(check bool) "fallback result is approximate" true
    (match degraded with Ok (Runner.Approximate _) -> true | _ -> false);
  Alcotest.(check int) "degraded exit code is 2" 2
    (Runner.count_exit_code degraded)

(* ------------------------------------------------------------------ *)
(* Engine jobs-independence (qcheck)                                  *)
(* ------------------------------------------------------------------ *)

let pool4 = lazy (Pool.create ~jobs:4 ())

(* captured at module load, before any test mutates the environment: the
   UCQC_JOBS=2 CI leg runs the engine equivalences below on a 2-domain
   pool as well; locally (jobs = 1) the extra checks are free *)
let env_pool = Pool.of_env ()

let qcheck_pool =
  let open QCheck in
  [
    Test.make ~name:"exact counts identical under --jobs 4" ~count:20
      (int_range 0 10_000)
      (fun seed ->
        let psi =
          Qgen.random_ucq ~seed ~max_disjuncts:3 ~max_vars:4 ~max_atoms:3 sg_e
        in
        let db = Generators.random_digraph ~seed:(seed + 1) 5 10 in
        let check pool =
          Ucq.count_via_expansion ~pool psi db = Ucq.count_via_expansion psi db
          && Ucq.count_inclusion_exclusion ~pool psi db
             = Ucq.count_inclusion_exclusion psi db
          && Ucq.count_naive ~pool psi db = Ucq.count_naive psi db
        in
        check (Lazy.force pool4) && check env_pool);
    Test.make ~name:"karp-luby fixed (seed, jobs) is reproducible" ~count:15
      (int_range 0 10_000)
      (fun seed ->
        let psi =
          Ucq.make
            [ mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ]; mkcq 2 [ [ 1; 0 ] ] [ 0; 1 ] ]
        in
        let db = Generators.random_digraph ~seed 8 20 in
        let pool = Lazy.force pool4 in
        let a = Karp_luby.estimate ~seed ~pool ~samples:400 psi db in
        let b = Karp_luby.estimate ~seed ~pool ~samples:400 psi db in
        let seq = Karp_luby.estimate ~seed ~samples:400 psi db in
        let seq' = Karp_luby.estimate ~seed ~samples:400 psi db in
        a = b && seq = seq');
    Test.make ~name:"cost estimates never change results" ~count:30
      (QCheck.pair (int_range 0 10_000) (int_range 2 6))
      (fun (seed, jobs) ->
        (* random (even garbage) per-item costs steer only the initial
           placement; the filled slots and the left-to-right fold are
           scheduling-independent *)
        let n = 1 + (seed mod 97) in
        let st = Random.State.make [| seed; jobs |] in
        let raw = Array.init n (fun _ -> Random.State.float st 10. -. 2.) in
        let costs i = if raw.(i) < -1.5 then Float.nan else raw.(i) in
        let p = Pool.create ~jobs () in
        Pool.run p ~costs ~f:(fun i -> (i * 7) mod 13) n
        = Array.init n (fun i -> (i * 7) mod 13));
    Test.make ~name:"treewidth identical under --jobs 4" ~count:20
      (int_range 0 10_000)
      (fun seed ->
        let db = Generators.random_digraph ~seed 8 18 in
        let g, _ = Structure.gaifman db in
        let seq = Treewidth.treewidth g in
        Treewidth.treewidth ~pool:(Lazy.force pool4) g = seq
        && Treewidth.treewidth ~pool:env_pool g = seq);
  ]

let suite =
  [
    ( "pool",
      [
        Alcotest.test_case "run matches sequential" `Quick
          test_run_matches_sequential;
        Alcotest.test_case "jobs=1 fallback order" `Quick
          test_sequential_fallback_in_order;
        Alcotest.test_case "deterministic fold" `Quick
          test_fold_deterministic_reduction;
        Alcotest.test_case "map_opt without a pool" `Quick test_map_opt_none;
        Alcotest.test_case "exception propagation + cancellation" `Quick
          test_exception_propagation;
        Alcotest.test_case "count_range" `Quick test_count_range;
        Alcotest.test_case "partition overflow regression" `Quick
          test_partition_overflow_regression;
        Alcotest.test_case "pool reuse spawns no domains" `Quick
          test_pool_reuse_no_domain_leak;
        Alcotest.test_case "cost-aware scheduling" `Quick test_cost_aware_run;
        Alcotest.test_case "nested runs" `Quick test_nested_run;
        Alcotest.test_case "shutdown and respawn" `Quick
          test_shutdown_and_respawn;
        Alcotest.test_case "budget exhaustion in a worker" `Quick
          test_budget_exhaustion_in_run;
        Alcotest.test_case "jobs validation" `Quick test_jobs_validation;
        Alcotest.test_case "UCQC_JOBS strict parsing" `Quick
          test_jobs_of_env_strict;
        Alcotest.test_case "concurrent budget ticks" `Quick
          test_budget_concurrent_ticks;
        Alcotest.test_case "worker exhaustion exit codes" `Quick
          test_worker_exhaustion_exit_codes;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_pool );
  ]
