(** Tests for the [ucqc serve] layers: the total wire-protocol parser,
    the newline framer, the prepared-query cache, admission control, and
    a small in-process end-to-end run over a Unix socket.  The heavy
    fault-injection scenarios (malformed frames, slowloris, bursts,
    drain under load) live in [tools/fault_inject.exe]; here we pin the
    unit contracts each layer promises. *)

let json = Alcotest.testable (Fmt.of_to_string Trace_json.to_string) ( = )

(* ------------------------------------------------------------------ *)
(* Protocol                                                           *)
(* ------------------------------------------------------------------ *)

let parse_ok s =
  match Protocol.parse_request s with
  | Ok r -> r
  | Error e -> Alcotest.failf "%S must parse: %s" s (Protocol.req_error_message e)

let parse_err s =
  match Protocol.parse_request s with
  | Error e -> e
  | Ok _ -> Alcotest.failf "%S must be rejected" s

let test_protocol_requests () =
  (match parse_ok {|{"op": "ping", "id": 1}|} with
  | { Protocol.id = Some (Trace_json.Num 1.); op = Protocol.Ping } -> ()
  | _ -> Alcotest.fail "ping with numeric id");
  (match parse_ok {|{"op": "stats"}|} with
  | { Protocol.id = None; op = Protocol.Stats } -> ()
  | _ -> Alcotest.fail "stats without id");
  (* count defaults: expansion, seed 1, fallbacks on *)
  (match parse_ok {|{"op": "count", "query": "(x) :- E(x, y)"}|} with
  | {
      Protocol.op =
        Protocol.Count
          {
            query = "(x) :- E(x, y)";
            meth = Protocol.Expansion;
            seed = 1;
            max_steps = None;
            timeout_ms = None;
            no_fallback = false;
          };
      _;
    } -> ()
  | _ -> Alcotest.fail "count defaults");
  (* all budget fields through *)
  match
    parse_ok
      {|{"op": "count", "query": "q", "method": "ie", "seed": 7,
         "max_steps": 50, "timeout_ms": 1500, "no_fallback": true}|}
  with
  | {
      Protocol.op =
        Protocol.Count
          {
            meth = Protocol.Inclusion_exclusion;
            seed = 7;
            max_steps = Some 50;
            timeout_ms = Some 1500.;
            no_fallback = true;
            _;
          };
      _;
    } -> ()
  | _ -> Alcotest.fail "count with explicit budget fields"

let test_protocol_mutations () =
  (match parse_ok {|{"op": "insert", "fact": "E(1, 2)", "id": 1}|} with
  | { Protocol.op = Protocol.Insert { fact = "E(1, 2)" }; _ } -> ()
  | _ -> Alcotest.fail "insert with fact");
  (match parse_ok {|{"op": "delete", "fact": "E(1, 2)"}|} with
  | { Protocol.op = Protocol.Delete { fact = "E(1, 2)" }; _ } -> ()
  | _ -> Alcotest.fail "delete with fact");
  (match parse_ok {|{"op": "apply", "deltas": ["+E(1, 2)", "-R(3)"]}|} with
  | { Protocol.op = Protocol.Apply { deltas = [ "+E(1, 2)"; "-R(3)" ] }; _ }
    -> ()
  | _ -> Alcotest.fail "apply with a deltas array");
  (match parse_ok {|{"op": "apply", "deltas": []}|} with
  | { Protocol.op = Protocol.Apply { deltas = [] }; _ } -> ()
  | _ -> Alcotest.fail "apply with an empty batch");
  Alcotest.(check string)
    "insert label" "insert"
    (Protocol.op_label (Protocol.Insert { fact = "" }));
  Alcotest.(check string)
    "apply label" "apply"
    (Protocol.op_label (Protocol.Apply { deltas = [] }));
  (match parse_err {|{"op": "insert"}|} with
  | Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "insert without fact is Bad_request");
  (match parse_err {|{"op": "insert", "fact": 7}|} with
  | Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "non-string fact is Bad_request");
  (match parse_err {|{"op": "apply"}|} with
  | Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "apply without deltas is Bad_request");
  (match parse_err {|{"op": "apply", "deltas": "+E(1, 2)"}|} with
  | Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "non-array deltas is Bad_request");
  match parse_err {|{"op": "apply", "deltas": ["+E(1, 2)", 3]}|} with
  | Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "mixed-type deltas is Bad_request"

let test_protocol_rejections () =
  (match parse_err "not json at all" with
  | Protocol.Bad_json _ -> ()
  | _ -> Alcotest.fail "non-JSON is Bad_json");
  (match parse_err {|[1, 2]|} with
  | Protocol.Bad_json _ | Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "non-object is rejected");
  (match parse_err {|{"op": "frobnicate"}|} with
  | Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "unknown op is Bad_request");
  (match parse_err {|{"op": "count"}|} with
  | Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "count without query is Bad_request");
  (match parse_err {|{"op": "count", "query": "q", "method": "magic"}|} with
  | Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "unknown method is Bad_request");
  (* ids are echoed verbatim, so only scalars are accepted *)
  (match parse_err {|{"op": "ping", "id": {"nested": 1}}|} with
  | Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "object id is Bad_request");
  (match parse_err {|{"op": "ping", "id": [1]}|} with
  | Protocol.Bad_request _ -> ()
  | _ -> Alcotest.fail "array id is Bad_request");
  match (parse_ok {|{"op": "ping", "id": "abc"}|}).Protocol.id with
  | Some (Trace_json.Str "abc") -> ()
  | _ -> Alcotest.fail "string id round-trips"

let test_protocol_responses () =
  Alcotest.(check int) "ok code" 0 (Protocol.status_code Protocol.Ok_);
  Alcotest.(check int) "degraded code" 2 (Protocol.status_code Protocol.Degraded);
  Alcotest.(check int) "overloaded code" 75
    (Protocol.status_code Protocol.Overloaded);
  Alcotest.(check int) "shutting-down code" 75
    (Protocol.status_code Protocol.Shutting_down);
  (* a rendered frame is one newline-terminated line that parses back *)
  let r =
    Protocol.make_response ~id:(Trace_json.Str "a\nb") Protocol.Ok_
      [ ("result", Trace_json.Obj [ ("count", Trace_json.Num 5.) ]) ]
  in
  let line = Protocol.to_string r in
  Alcotest.(check bool) "newline-terminated" true
    (line.[String.length line - 1] = '\n');
  Alcotest.(check bool) "single line" false
    (String.contains (String.sub line 0 (String.length line - 1)) '\n');
  let v = Trace_json.parse line in
  Alcotest.(check (option json)) "id echoed verbatim"
    (Some (Trace_json.Str "a\nb"))
    (Trace_json.member "id" v);
  Alcotest.(check (option json)) "status rendered"
    (Some (Trace_json.Str "ok"))
    (Trace_json.member "status" v);
  (* error mappers: frame rejections carry 64, engine errors their code *)
  let code resp = resp.Protocol.rcode in
  Alcotest.(check int) "bad json is 64" 64
    (code (Protocol.of_req_error (Protocol.Bad_json "x")));
  Alcotest.(check int) "oversized is 64" 64
    (code (Protocol.of_req_error (Protocol.Frame_too_large 9)));
  Alcotest.(check int) "exhaustion is 124" 124
    (code
       (Protocol.of_ucqc_error
          (Ucqc_error.Budget_exhausted { phase = "count"; steps_done = 3 })));
  Alcotest.(check int) "internal is 70" 70
    (code (Protocol.of_ucqc_error (Ucqc_error.Internal "boom")));
  Alcotest.(check int) "unsupported is 65" 65
    (code (Protocol.of_ucqc_error (Ucqc_error.Unsupported "no")))

(* ------------------------------------------------------------------ *)
(* Framer                                                             *)
(* ------------------------------------------------------------------ *)

let feed_all fr s =
  let b = Bytes.of_string s in
  Framer.feed fr b ~off:0 ~len:(Bytes.length b)

let test_framer_chunking () =
  let fr = Framer.create ~max_frame_bytes:64 () in
  (* a frame split across arbitrary feeds reassembles *)
  Alcotest.(check bool) "no frame yet" true (feed_all fr "hel" = []);
  Alcotest.(check bool) "still buffering" true (feed_all fr "lo" = []);
  (match feed_all fr "\nwor" with
  | [ Framer.Frame "hello" ] -> ()
  | _ -> Alcotest.fail "first frame complete");
  (* CRLF is tolerated; two frames can arrive in one feed *)
  (match feed_all fr "ld\r\nagain\n" with
  | [ Framer.Frame "world"; Framer.Frame "again" ] -> ()
  | _ -> Alcotest.fail "CRLF stripped, batched frames split");
  Alcotest.(check int) "buffer drained" 0 (Framer.pending fr);
  (* EOF flushes a trailing partial frame exactly once *)
  ignore (feed_all fr "tail");
  (match Framer.eof fr with
  | Some (Framer.Frame "tail") -> ()
  | _ -> Alcotest.fail "EOF flushes the partial frame");
  Alcotest.(check bool) "EOF is then empty" true (Framer.eof fr = None)

let test_framer_oversized () =
  let fr = Framer.create ~max_frame_bytes:4 () in
  (* an over-limit frame is discarded to the next newline, reported once,
     and the connection keeps working *)
  (match feed_all fr "abcdefgh\nok\n" with
  | [ Framer.Oversized 4; Framer.Frame "ok" ] -> ()
  | _ -> Alcotest.fail "oversized reported once, next frame survives");
  (* a frame of exactly the limit is fine *)
  (match feed_all fr "abcd\n" with
  | [ Framer.Frame "abcd" ] -> ()
  | _ -> Alcotest.fail "limit-sized frame accepted");
  (* EOF in the middle of a discard still reports the oversize *)
  ignore (feed_all fr "toolong");
  match Framer.eof fr with
  | Some (Framer.Oversized 4) -> ()
  | _ -> Alcotest.fail "EOF reports the in-progress discard"

(* ------------------------------------------------------------------ *)
(* Prepared-query cache                                               *)
(* ------------------------------------------------------------------ *)

let label c text = Cache.outcome_label (Cache.lookup c text)

let test_cache_hits () =
  let c = Cache.create ~capacity:8 () in
  let q = "(x, y) :- E(x, z), E(z, y)" in
  Alcotest.(check string) "first sighting" "miss" (label c q);
  Alcotest.(check string) "exact text repeats" "hit" (label c q);
  (* a different spelling of the same UCQ shares the entry *)
  Alcotest.(check string) "renamed spelling interns" "interned"
    (label c "(a, b) :-  E(a, c), E(c, b)  # same query");
  Alcotest.(check string) "alias now hits" "hit"
    (label c "(a, b) :-  E(a, c), E(c, b)  # same query");
  Alcotest.(check int) "one entry for both spellings" 1 (Cache.entries c);
  (match Cache.lookup c q with
  | Cache.Hit e -> Alcotest.(check bool) "hits counted" true (e.Cache.hits >= 3)
  | _ -> Alcotest.fail "exact text must hit");
  (* parse failures are cached too: the second lookup skips the parse *)
  Alcotest.(check string) "invalid" "invalid" (label c "(x :- garbage(");
  Alcotest.(check string) "invalid cached" "invalid" (label c "(x :- garbage(");
  Alcotest.(check int) "one cached failure" 1 (Cache.invalids c);
  (* the find/admit split: find is the no-parse path *)
  Alcotest.(check bool) "find knows the text" true (Cache.find c q <> None);
  Alcotest.(check bool) "find misses new text" true
    (Cache.find c "(u) :- E(u, u)" = None)

let test_cache_eviction () =
  let c = Cache.create ~capacity:2 () in
  ignore (Cache.lookup c "(x) :- E(x, a)");
  ignore (Cache.lookup c "(x) :- E(a, x)");
  ignore (Cache.lookup c "(x) :- E(x, a)" : Cache.outcome) (* refresh LRU *);
  ignore (Cache.lookup c "(x, y) :- E(x, y)") (* evicts the middle one *);
  Alcotest.(check int) "capacity respected" 2 (Cache.entries c);
  Alcotest.(check string) "recently-used survived" "hit"
    (label c "(x) :- E(x, a)");
  Alcotest.(check string) "LRU victim re-misses" "miss"
    (label c "(x) :- E(a, x)");
  (* capacity 0 disables caching entirely *)
  let off = Cache.create ~capacity:0 () in
  Alcotest.(check string) "no cache: miss" "miss" (label off "(x) :- E(x, x)");
  Alcotest.(check string) "no cache: still miss" "miss"
    (label off "(x) :- E(x, x)");
  Alcotest.(check int) "nothing stored" 0 (Cache.entries off)

(* ------------------------------------------------------------------ *)
(* Admission control                                                  *)
(* ------------------------------------------------------------------ *)

let test_admission () =
  let q = Admission.create ~depth:2 () in
  Alcotest.(check bool) "first accepted" true (Admission.offer q 1 = Admission.Accepted);
  Alcotest.(check bool) "second accepted" true (Admission.offer q 2 = Admission.Accepted);
  (match Admission.offer q 3 with
  | Admission.Shed { retry_after_ms } ->
      Alcotest.(check bool) "retry hint sane" true
        (retry_after_ms >= 10 && retry_after_ms <= 30_000)
  | _ -> Alcotest.fail "full queue must shed");
  Alcotest.(check int) "backlog gauge" 2 (Admission.depth q);
  (* FIFO order *)
  Alcotest.(check (option int)) "first out" (Some 1) (Admission.take q);
  Alcotest.(check (option int)) "second out" (Some 2) (Admission.take q);
  (* slower service times push the retry hint up *)
  let hint q =
    ignore (Admission.offer q 1 : int Admission.offer_outcome);
    ignore (Admission.offer q 2 : int Admission.offer_outcome);
    match Admission.offer q 3 with
    | Admission.Shed { retry_after_ms } -> retry_after_ms
    | _ -> Alcotest.fail "must shed"
  in
  let slow = Admission.create ~depth:2 () in
  List.iter (fun _ -> Admission.note_service_ms slow 5_000.) [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "slow service raises the hint" true
    (hint slow > hint (Admission.create ~depth:2 ()));
  (* drain mode: no new work, the backlog still drains, then take ends *)
  let d = Admission.create ~depth:4 () in
  ignore (Admission.offer d 10 : int Admission.offer_outcome);
  Admission.close d;
  Alcotest.(check bool) "post-close offers drain" true
    (Admission.offer d 11 = Admission.Draining);
  Alcotest.(check (option int)) "backlog drains" (Some 10) (Admission.take d);
  Alcotest.(check (option int)) "then take ends" None (Admission.take d);
  (* forced drain empties the backlog oldest-first *)
  let f = Admission.create ~depth:4 () in
  ignore (Admission.offer f 1 : int Admission.offer_outcome);
  ignore (Admission.offer f 2 : int Admission.offer_outcome);
  Alcotest.(check (list int)) "discard order" [ 1; 2 ]
    (Admission.discard_pending f);
  Alcotest.(check int) "emptied" 0 (Admission.depth f)

(* ------------------------------------------------------------------ *)
(* In-process end-to-end                                              *)
(* ------------------------------------------------------------------ *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let small_db () =
  Structure.make sg_e
    (List.init 5 (fun i -> i))
    [ ("E", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 0; 2 ] ]) ]

let test_server_end_to_end () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucqc-test-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let config =
    {
      (Server.default_config ~listen:(Server.Unix_socket path) ~jobs:1) with
      Server.queue_depth = 8;
      cache_capacity = 8;
      request_timeout_s = Some 10.;
    }
  in
  let db = small_db () in
  let t = Server.start config ~db in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop t : int))
    (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
      Unix.connect fd (Unix.ADDR_UNIX path);
      let send s =
        ignore (Unix.write_substring fd s 0 (String.length s) : int)
      in
      let recv_line =
        let buf = Buffer.create 256 in
        let one = Bytes.create 1 in
        fun () ->
          Buffer.clear buf;
          let rec go () =
            match Unix.read fd one 0 1 with
            | 0 -> Alcotest.fail "server closed the connection early"
            | _ when Bytes.get one 0 = '\n' -> Buffer.contents buf
            | _ ->
                Buffer.add_char buf (Bytes.get one 0);
                go ()
          in
          go ()
      in
      let query = "(x, y) :- E(x, z), E(z, y)" in
      let expected =
        match Parse.ucq_result query with
        | Ok (psi, _) -> Ucq.count_naive psi db
        | Error _ -> Alcotest.fail "test query must parse"
      in
      send {|{"op": "ping", "id": "p"}|};
      send "\n";
      let pong = Trace_json.parse (recv_line ()) in
      Alcotest.(check (option json)) "pong id" (Some (Trace_json.Str "p"))
        (Trace_json.member "id" pong);
      Alcotest.(check (option json)) "pong ok" (Some (Trace_json.Str "ok"))
        (Trace_json.member "status" pong);
      (* the same count twice: identical results, second one cache-hot *)
      let ask i =
        send
          (Trace_json.to_string
             (Trace_json.Obj
                [
                  ("op", Trace_json.Str "count");
                  ("query", Trace_json.Str query);
                  ("id", Trace_json.Num (float_of_int i));
                ]));
        send "\n";
        Trace_json.parse (recv_line ())
      in
      let counted v =
        match Trace_json.member "result" v with
        | Some r -> Trace_json.member "count" r
        | None -> None
      in
      let r1 = ask 1 and r2 = ask 2 in
      Alcotest.(check (option json)) "exact count"
        (Some (Trace_json.Num (float_of_int expected)))
        (counted r1);
      Alcotest.(check (option json)) "cached count identical" (counted r1)
        (counted r2);
      Alcotest.(check (option json)) "second answer is a cache hit"
        (Some (Trace_json.Str "hit"))
        (Trace_json.member "cache" r2);
      (* malformed frame: structured 64, connection survives *)
      send "this is not json\n";
      let err = Trace_json.parse (recv_line ()) in
      Alcotest.(check (option json)) "malformed is code 64"
        (Some (Trace_json.Num 64.))
        (Trace_json.member "code" err);
      send {|{"op": "ping", "id": "still-here"}|};
      send "\n";
      Alcotest.(check (option json)) "connection survived"
        (Some (Trace_json.Str "still-here"))
        (Trace_json.member "id" (Trace_json.parse (recv_line ())));
      Unix.close fd);
  Alcotest.(check int) "graceful drain discards nothing" 0 (Server.stop t);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path)

let test_server_pool_reuse () =
  (* the serve evaluator owns one resident pool for its whole lifetime:
     two sequential parallel-counted requests must not spawn any domain
     beyond what the first one left parked *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucqc-test-pool-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let config =
    {
      (Server.default_config ~listen:(Server.Unix_socket path) ~jobs:2) with
      Server.queue_depth = 8;
      cache_capacity = 8;
      request_timeout_s = Some 10.;
    }
  in
  let t = Server.start config ~db:(small_db ()) in
  Fun.protect
    ~finally:(fun () -> ignore (Server.stop t : int))
    (fun () ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
      Unix.connect fd (Unix.ADDR_UNIX path);
      let send s =
        ignore (Unix.write_substring fd s 0 (String.length s) : int)
      in
      let recv_line =
        let buf = Buffer.create 256 in
        let one = Bytes.create 1 in
        fun () ->
          Buffer.clear buf;
          let rec go () =
            match Unix.read fd one 0 1 with
            | 0 -> Alcotest.fail "server closed the connection early"
            | _ when Bytes.get one 0 = '\n' -> Buffer.contents buf
            | _ ->
                Buffer.add_char buf (Bytes.get one 0);
                go ()
          in
          go ()
      in
      (* distinct multi-disjunct queries: no cache hit, and ≥ 2 pool
         items per request so the parallel path actually engages *)
      let ask id query =
        send
          (Trace_json.to_string
             (Trace_json.Obj
                [
                  ("op", Trace_json.Str "count");
                  ("query", Trace_json.Str query);
                  ("id", Trace_json.Str id);
                ]));
        send "\n";
        Trace_json.parse (recv_line ())
      in
      let r1 = ask "q1" "(x, y) :- E(x, z), E(z, y) ; E(x, y)" in
      Alcotest.(check (option json)) "first request ok"
        (Some (Trace_json.Str "ok"))
        (Trace_json.member "status" r1);
      (* the first parallel count has parked its workers by the time its
         response arrived — the second request must reuse them *)
      let s0 = Pool.spawn_count () in
      let r2 = ask "q2" "(x, y) :- E(x, y) ; E(y, x)" in
      Alcotest.(check (option json)) "second request ok"
        (Some (Trace_json.Str "ok"))
        (Trace_json.member "status" r2);
      Alcotest.(check int) "second request spawned no domains" s0
        (Pool.spawn_count ());
      (* the stats response exposes the resident-pool gauges *)
      send {|{"op": "stats", "id": "s"}|};
      send "\n";
      let st = Trace_json.parse (recv_line ()) in
      (match Trace_json.member "result" st with
      | Some r ->
          Alcotest.(check (option json)) "stats report the pool jobs"
            (Some (Trace_json.Num 2.))
            (Trace_json.member "jobs" r);
          Alcotest.(check (option json)) "stats expose the spawn count"
            (Some (Trace_json.Num (float_of_int s0)))
            (Trace_json.member "pool_domains_spawned" r)
      | None -> Alcotest.fail "stats response has no result");
      Unix.close fd)

let suite =
  [
    ( "server",
      [
        Alcotest.test_case "protocol requests" `Quick test_protocol_requests;
        Alcotest.test_case "protocol mutations" `Quick
          test_protocol_mutations;
        Alcotest.test_case "protocol rejections" `Quick
          test_protocol_rejections;
        Alcotest.test_case "protocol responses" `Quick test_protocol_responses;
        Alcotest.test_case "framer chunking" `Quick test_framer_chunking;
        Alcotest.test_case "framer oversized" `Quick test_framer_oversized;
        Alcotest.test_case "cache hits" `Quick test_cache_hits;
        Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
        Alcotest.test_case "admission control" `Quick test_admission;
        Alcotest.test_case "end to end" `Quick test_server_end_to_end;
        Alcotest.test_case "pool reuse across requests" `Quick
          test_server_pool_reuse;
      ] );
  ]
