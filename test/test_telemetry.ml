(** Tests for the telemetry layer: span nesting/ordering invariants,
    Chrome-trace export validity (via the in-tree validator CI also
    uses), metric-count determinism under parallel merge, the abandoned-
    attempt accounting of the Runner, and the no-op cost contract
    (byte-identical solver output, zero allocations on the counter hot
    path). *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let mkcq n edges free =
  Cq.make (Structure.make sg_e (List.init n (fun i -> i)) [ ("E", edges) ]) free

let psi_union () =
  Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ]; mkcq 2 [ [ 1; 0 ] ] [ 0; 1 ] ]

(* big enough that a 40-step budget exhausts mid-sweep *)
let psi_heavy () =
  Ucq.make
    [
      mkcq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ];
      mkcq 3 [ [ 1; 0 ] ] [ 0; 1; 2 ];
    ]

(* every test must leave telemetry off and empty for its neighbours *)
let scoped (f : unit -> 'a) : 'a =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  scoped (fun () ->
      Telemetry.with_span "outer" (fun () ->
          Alcotest.(check (list string)) "stack inside outer" [ "outer" ]
            (Telemetry.current_stack ());
          Telemetry.with_span "inner" (fun () ->
              Alcotest.(check (list string)) "stack inside inner"
                [ "inner"; "outer" ] (Telemetry.current_stack ()));
          Alcotest.(check (list string)) "inner popped" [ "outer" ]
            (Telemetry.current_stack ()));
      Alcotest.(check (list string)) "all popped" []
        (Telemetry.current_stack ());
      let stats = Telemetry.span_stats () in
      let find n =
        List.find_opt (fun s -> s.Telemetry.sname = n) stats
      in
      Alcotest.(check bool) "outer recorded" true (find "outer" <> None);
      Alcotest.(check bool) "inner recorded" true (find "inner" <> None);
      let outer = Option.get (find "outer") in
      let inner = Option.get (find "inner") in
      Alcotest.(check int) "outer called once" 1 outer.Telemetry.calls;
      Alcotest.(check bool) "outer time includes inner (inclusive)" true
        (outer.Telemetry.total_ns >= inner.Telemetry.total_ns))

let test_span_closed_on_exception () =
  scoped (fun () ->
      (try
         Telemetry.with_span "failing" (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check (list string)) "stack popped after raise" []
        (Telemetry.current_stack ());
      (* B/E balance survives the exception: the export must validate *)
      let tmp = Filename.temp_file "ucqc_trace" ".json" in
      let oc = open_out tmp in
      Telemetry.export_chrome_trace oc;
      close_out oc;
      let v = Trace_json.parse_file tmp in
      Sys.remove tmp;
      match Trace_json.validate_chrome_trace v with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("trace invalid after exception: " ^ msg))

let test_span_budget_delta () =
  scoped (fun () ->
      let b = Budget.of_steps 1_000 in
      ignore
        (Budget.run b ~phase:"t" (fun () ->
             Telemetry.with_span ~budget:b "ticking" (fun () ->
                 for _ = 1 to 42 do
                   Budget.tick b
                 done)));
      let st =
        List.find
          (fun s -> s.Telemetry.sname = "ticking")
          (Telemetry.span_stats ())
      in
      Alcotest.(check int) "steps delta attributed to the span" 42
        st.Telemetry.steps)

let test_disabled_spans_invisible () =
  Telemetry.reset ();
  (* telemetry off: no stack, no events, no metric movement *)
  Telemetry.with_span "ghost" (fun () ->
      Alcotest.(check (list string)) "no stack when off" []
        (Telemetry.current_stack ()));
  let c = Telemetry.counter "test.ghost" in
  Telemetry.incr c;
  Alcotest.(check int) "counter frozen when off" 0 (Telemetry.counter_value c);
  Alcotest.(check bool) "no spans recorded when off" true
    (Telemetry.span_stats () = [])

let test_chrome_trace_valid () =
  scoped (fun () ->
      let psi = psi_union () in
      let db = Generators.random_digraph ~seed:5 5 12 in
      ignore (Ucq.count_via_expansion psi db);
      ignore (Ucq.count_inclusion_exclusion psi db);
      let tmp = Filename.temp_file "ucqc_trace" ".json" in
      let oc = open_out tmp in
      Telemetry.export_chrome_trace oc;
      close_out oc;
      let v = Trace_json.parse_file tmp in
      Sys.remove tmp;
      match Trace_json.validate_chrome_trace v with
      | Ok n -> Alcotest.(check bool) "events present" true (n > 0)
      | Error msg -> Alcotest.fail msg)

let test_metrics_export_well_formed () =
  scoped (fun () ->
      let c = Telemetry.counter "test.export" in
      Telemetry.add c 7;
      let h = Telemetry.histogram "test.h" in
      Telemetry.observe h 0.5;
      Telemetry.observe h 1024.;
      let g = Telemetry.gauge "test.g" in
      Telemetry.set_gauge g 3.25;
      let tmp = Filename.temp_file "ucqc_metrics" ".json" in
      let oc = open_out tmp in
      Telemetry.export_metrics oc;
      close_out oc;
      let v = Trace_json.parse_file tmp in
      Sys.remove tmp;
      match Trace_json.member "counters" v with
      | Some (Trace_json.Obj kvs) ->
          Alcotest.(check bool) "exported counter present" true
            (List.assoc_opt "test.export" kvs = Some (Trace_json.Num 7.))
      | _ -> Alcotest.fail "metrics JSON missing counters object")

(* ------------------------------------------------------------------ *)
(* Runner abandoned-attempt accounting                                *)
(* ------------------------------------------------------------------ *)

let test_runner_abandoned_capture () =
  let psi = psi_heavy () in
  let db = Generators.random_digraph ~seed:71 6 14 in
  match
    Runner.count ~via:Runner.Naive ~budget:(Budget.of_steps 40) psi db
  with
  | Ok (Runner.Approximate { abandoned; exhausted; _ }) ->
      Alcotest.(check string) "abandoned phase" "count"
        abandoned.Runner.phase;
      Alcotest.(check bool) "abandoned steps recorded" true
        (abandoned.Runner.steps > 0);
      Alcotest.(check bool) "abandoned steps within exhaustion total" true
        (abandoned.Runner.steps <= exhausted.Budget.steps_done);
      Alcotest.(check bool) "elapsed non-negative" true
        (abandoned.Runner.elapsed_s >= 0.)
  | other ->
      Alcotest.fail
        (match other with
        | Ok (Runner.Exact _) -> "expected degradation, got exact"
        | Error _ -> "expected degradation, got error"
        | _ -> "unexpected outcome")

let test_runner_degraded_event () =
  scoped (fun () ->
      let psi = psi_heavy () in
      let db = Generators.random_digraph ~seed:71 6 14 in
      (match
         Runner.count ~via:Runner.Naive ~budget:(Budget.of_steps 40) psi db
       with
      | Ok (Runner.Approximate _) -> ()
      | _ -> Alcotest.fail "expected degradation");
      let tmp = Filename.temp_file "ucqc_trace" ".json" in
      let oc = open_out tmp in
      Telemetry.export_chrome_trace oc;
      close_out oc;
      let v = Trace_json.parse_file tmp in
      Sys.remove tmp;
      match Trace_json.member "traceEvents" v with
      | Some (Trace_json.Arr evs) ->
          let is_degraded ev =
            Trace_json.member "name" ev
            = Some (Trace_json.Str "runner.degraded")
          in
          Alcotest.(check bool) "runner.degraded event emitted" true
            (List.exists is_degraded evs)
      | _ -> Alcotest.fail "no traceEvents")

(* ------------------------------------------------------------------ *)
(* No-op cost contract                                                *)
(* ------------------------------------------------------------------ *)

let test_noop_identical_output () =
  (* the solver must produce the same numbers with telemetry off as a
     never-enabled run; this runs with telemetry genuinely off *)
  Telemetry.reset ();
  let psi = psi_union () in
  let db = Generators.random_digraph ~seed:9 5 12 in
  let base = Ucq.count_via_expansion psi db in
  scoped (fun () -> ignore (Ucq.count_via_expansion psi db));
  Alcotest.(check int) "count unchanged after a traced run" base
    (Ucq.count_via_expansion psi db);
  Alcotest.(check int) "IE count unchanged"
    (Ucq.count_inclusion_exclusion psi db)
    (scoped (fun () -> Ucq.count_inclusion_exclusion psi db))

let test_noop_zero_alloc_counters () =
  (* with telemetry off, the counter hot path (one atomic flag read)
     must not allocate: compare minor-heap words around a tight loop *)
  Telemetry.reset ();
  let c = Telemetry.counter "test.hot" in
  (* warm up: force any lazy initialisation *)
  for _ = 1 to 100 do
    Telemetry.incr c
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Telemetry.incr c;
    Telemetry.add c 3
  done;
  let after = Gc.minor_words () in
  let allocated = int_of_float (after -. before) in
  Alcotest.(check bool)
    (Printf.sprintf "no-op counter path allocates nothing (got %d words)"
       allocated)
    true (allocated = 0);
  Alcotest.(check int) "and records nothing" 0 (Telemetry.counter_value c)

let test_disabled_span_no_events () =
  (* with_span when off must not touch domain state: stack stays empty,
     span_stats stays empty even after re-enabling *)
  Telemetry.reset ();
  Telemetry.with_span "off1" (fun () ->
      Telemetry.with_span "off2" (fun () -> ()));
  Telemetry.enable ();
  Alcotest.(check bool) "nothing recorded from disabled spans" true
    (Telemetry.span_stats () = []);
  Telemetry.disable ();
  Telemetry.reset ()

(* ------------------------------------------------------------------ *)
(* Parallel-merge determinism (qcheck)                                *)
(* ------------------------------------------------------------------ *)

let qcheck_telemetry =
  let open QCheck in
  [
    Test.make ~name:"metric counts deterministic under jobs>1" ~count:15
      (int_range 0 10_000)
      (fun seed ->
        let psi =
          Qgen.random_ucq ~seed ~max_disjuncts:3 ~max_vars:3 ~max_atoms:3 sg_e
        in
        let db = Generators.random_digraph ~seed:(seed + 3) 5 10 in
        let run pool =
          scoped (fun () ->
              ignore (Ucq.count_via_expansion ?pool psi db);
              ( Telemetry.counter_value (Telemetry.counter "ucq.ie.terms"),
                Telemetry.counter_value
                  (Telemetry.counter "ucq.expansion.classes") ))
        in
        let seq = run None in
        let par = run (Some (Pool.create ~jobs:4 ())) in
        let par' = run (Some (Pool.create ~jobs:4 ())) in
        (* counts are scheduling-independent: sequential = parallel, and
           parallel runs agree with each other *)
        seq = par && par = par');
    Test.make ~name:"parallel span merge balances B/E per domain" ~count:10
      (int_range 0 10_000)
      (fun seed ->
        let psi =
          Qgen.random_ucq ~seed ~max_disjuncts:3 ~max_vars:3 ~max_atoms:3 sg_e
        in
        let db = Generators.random_digraph ~seed:(seed + 7) 5 10 in
        scoped (fun () ->
            ignore
              (Ucq.count_inclusion_exclusion
                 ~pool:(Pool.create ~jobs:4 ())
                 psi db);
            let tmp = Filename.temp_file "ucqc_trace" ".json" in
            let oc = open_out tmp in
            Telemetry.export_chrome_trace oc;
            close_out oc;
            let v = Trace_json.parse_file tmp in
            Sys.remove tmp;
            match Trace_json.validate_chrome_trace v with
            | Ok _ -> true
            | Error _ -> false));
  ]

(* ------------------------------------------------------------------ *)
(* Histogram edge cases                                               *)
(* ------------------------------------------------------------------ *)

let test_histogram_empty () =
  scoped (fun () ->
      let h = Telemetry.histogram "t.empty" in
      let s = Telemetry.histogram_snapshot h in
      Alcotest.(check int) "empty count" 0 s.Telemetry.hs_count;
      Alcotest.(check (float 0.)) "empty sum" 0. s.Telemetry.hs_sum;
      Alcotest.(check int) "no bucket populated" 0
        (Array.fold_left ( + ) 0 s.Telemetry.hs_counts);
      Alcotest.(check (float 0.)) "empty quantile is 0" 0.
        (Rolling.quantile_of_counts s.Telemetry.hs_counts 0.99))

let test_histogram_single_sample () =
  scoped (fun () ->
      let h = Telemetry.histogram "t.single" in
      Telemetry.observe h 3.5;
      let s = Telemetry.histogram_snapshot h in
      Alcotest.(check int) "one sample" 1 s.Telemetry.hs_count;
      Alcotest.(check (float 1e-6)) "sum is the sample" 3.5
        s.Telemetry.hs_sum;
      Alcotest.(check int) "exactly one bucket" 1
        (Array.fold_left ( + ) 0 s.Telemetry.hs_counts);
      (* every quantile of a single sample reports that bucket's edge *)
      let p50 = Rolling.quantile_of_counts s.Telemetry.hs_counts 0.5 in
      let p99 = Rolling.quantile_of_counts s.Telemetry.hs_counts 0.99 in
      Alcotest.(check (float 0.)) "p50 = p99 for one sample" p50 p99;
      Alcotest.(check bool) "edge bounds the sample" true (p50 >= 3.5))

let test_histogram_max_bucket_overflow () =
  scoped (fun () ->
      let h = Telemetry.histogram "t.overflow" in
      (* far past the top bucket's range (2^31): both must clamp into
         bucket 63 instead of raising or indexing out of bounds *)
      Telemetry.observe h 1e10;
      Telemetry.observe h 4e10;
      let s = Telemetry.histogram_snapshot h in
      Alcotest.(check int) "both counted" 2 s.Telemetry.hs_count;
      Alcotest.(check int) "both in the top bucket" 2
        s.Telemetry.hs_counts.(63);
      Alcotest.(check bool) "sum survives" true
        (Float.abs (s.Telemetry.hs_sum -. 5e10) < 1.))

let test_histogram_cross_domain_merge () =
  scoped (fun () ->
      let h = Telemetry.histogram "t.domains" in
      let per = 5000 in
      (* two domains observing concurrently: the atomic buckets must
         lose nothing, and the per-bucket totals are deterministic
         (set-of-observations determined, order independent) *)
      let worker lo =
        Domain.spawn (fun () ->
            for i = lo to lo + per - 1 do
              Telemetry.observe h (float_of_int ((i mod 1000) + 1))
            done)
      in
      let d1 = worker 0 and d2 = worker per in
      Domain.join d1;
      Domain.join d2;
      let s = Telemetry.histogram_snapshot h in
      Alcotest.(check int) "no observation lost" (2 * per)
        s.Telemetry.hs_count;
      Alcotest.(check int) "buckets sum to the count" (2 * per)
        (Array.fold_left ( + ) 0 s.Telemetry.hs_counts);
      (* the same observations sequentially: bucket-for-bucket equal *)
      let h' = Telemetry.histogram "t.domains.seq" in
      for i = 0 to (2 * per) - 1 do
        Telemetry.observe h' (float_of_int ((i mod 1000) + 1))
      done;
      let s' = Telemetry.histogram_snapshot h' in
      Alcotest.(check (array int)) "merge deterministic"
        s'.Telemetry.hs_counts s.Telemetry.hs_counts;
      Alcotest.(check (float 1e-3)) "sums agree" s'.Telemetry.hs_sum
        s.Telemetry.hs_sum)

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "span nesting and stats" `Quick test_span_nesting;
        Alcotest.test_case "span closed on exception" `Quick
          test_span_closed_on_exception;
        Alcotest.test_case "budget delta per span" `Quick
          test_span_budget_delta;
        Alcotest.test_case "disabled spans invisible" `Quick
          test_disabled_spans_invisible;
        Alcotest.test_case "chrome trace validates" `Quick
          test_chrome_trace_valid;
        Alcotest.test_case "metrics export well-formed" `Quick
          test_metrics_export_well_formed;
        Alcotest.test_case "runner captures abandoned attempt" `Quick
          test_runner_abandoned_capture;
        Alcotest.test_case "runner emits degradation event" `Quick
          test_runner_degraded_event;
        Alcotest.test_case "no-op mode: identical output" `Quick
          test_noop_identical_output;
        Alcotest.test_case "no-op mode: zero-alloc counters" `Quick
          test_noop_zero_alloc_counters;
        Alcotest.test_case "no-op mode: no events" `Quick
          test_disabled_span_no_events;
        Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
        Alcotest.test_case "histogram: single sample" `Quick
          test_histogram_single_sample;
        Alcotest.test_case "histogram: max-bucket overflow" `Quick
          test_histogram_max_bucket_overflow;
        Alcotest.test_case "histogram: cross-domain merge deterministic"
          `Quick test_histogram_cross_domain_merge;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_telemetry );
  ]
