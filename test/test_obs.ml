(** Tests for the observability plane: rolling windows, Prometheus
    exposition build/parse/validate, the gateway's HTTP sliver, request
    ids, slow-query log records, and the served [/metrics] endpoint
    end to end. *)

(* ------------------------------------------------------------------ *)
(* Rolling windows                                                    *)
(* ------------------------------------------------------------------ *)

let test_rolling_buckets () =
  Alcotest.(check int) "64 buckets" 64 Rolling.buckets;
  Alcotest.(check int) "zero clamps low" 0 (Rolling.bucket_of 0.);
  Alcotest.(check int) "negative clamps low" 0 (Rolling.bucket_of (-3.));
  Alcotest.(check int) "nan clamps low" 0 (Rolling.bucket_of Float.nan);
  Alcotest.(check int) "huge clamps high" 63 (Rolling.bucket_of 1e40);
  (* 1.0 = 2^0 lands in the bucket whose range is [2^-1, 2^0)... the
     layout fact that matters is only edge consistency: every value is
     strictly below its bucket's upper edge and at or above the
     previous bucket's *)
  List.iter
    (fun v ->
      let b = Rolling.bucket_of v in
      Alcotest.(check bool)
        (Printf.sprintf "%g below upper edge of bucket %d" v b)
        true
        (v < Rolling.bucket_upper b || b = 63);
      if b > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "%g at/above lower edge of bucket %d" v b)
          true
          (v >= Rolling.bucket_upper (b - 1)))
    [ 0.001; 0.5; 1.; 1.5; 2.; 3.; 100.; 1024.; 5e8 ]

let test_rolling_quantiles () =
  let counts = Array.make Rolling.buckets 0 in
  Alcotest.(check (float 0.)) "empty quantile is 0" 0.
    (Rolling.quantile_of_counts counts 0.99);
  (* a single sample: every quantile reports its bucket's upper edge *)
  counts.(Rolling.bucket_of 5.) <- 1;
  let edge = Rolling.bucket_upper (Rolling.bucket_of 5.) in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "single-sample p%g" p)
        edge
        (Rolling.quantile_of_counts counts p))
    [ 0.; 0.5; 0.99; 1. ];
  (* 90 fast + 10 slow: p50 reports the fast edge, p99 the slow edge *)
  let counts = Array.make Rolling.buckets 0 in
  counts.(Rolling.bucket_of 1.) <- 90;
  counts.(Rolling.bucket_of 1000.) <- 10;
  Alcotest.(check (float 0.)) "p50 in the fast bucket"
    (Rolling.bucket_upper (Rolling.bucket_of 1.))
    (Rolling.quantile_of_counts counts 0.5);
  Alcotest.(check (float 0.)) "p99 in the slow bucket"
    (Rolling.bucket_upper (Rolling.bucket_of 1000.))
    (Rolling.quantile_of_counts counts 0.99);
  (* merge-order independence: summing two count arrays in either order
     yields the same quantiles *)
  let a = Array.make Rolling.buckets 0 and b = Array.make Rolling.buckets 0 in
  a.(3) <- 5;
  a.(10) <- 2;
  b.(10) <- 4;
  b.(40) <- 1;
  let merge x y = Array.init Rolling.buckets (fun i -> x.(i) + y.(i)) in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "merge commutes at p%g" p)
        (Rolling.quantile_of_counts (merge a b) p)
        (Rolling.quantile_of_counts (merge b a) p))
    [ 0.1; 0.5; 0.9; 0.99 ]

let test_rolling_window_expiry () =
  let r = Rolling.create ~window_s:60. ~slots:6 () in
  let t0 = 1000. in
  Rolling.observe ~now:t0 r 10.;
  Rolling.observe ~now:t0 r 20.;
  Alcotest.(check int) "both live inside the window" 2
    (Rolling.count ~now:(t0 +. 5.) r);
  Alcotest.(check bool) "quantile sees them" true
    (Rolling.quantile ~now:(t0 +. 5.) r 0.5 > 0.);
  (* ride past the window: the old slots expire *)
  Alcotest.(check int) "expired after the window" 0
    (Rolling.count ~now:(t0 +. 120.) r);
  Alcotest.(check (float 0.)) "quantile back to 0" 0.
    (Rolling.quantile ~now:(t0 +. 120.) r 0.99);
  (* new traffic after expiry counts fresh *)
  Rolling.observe ~now:(t0 +. 121.) r 5.;
  Alcotest.(check int) "fresh observation alone" 1
    (Rolling.count ~now:(t0 +. 121.) r)

let test_rolling_concurrent () =
  (* observers on several threads, no torn totals beyond the documented
     rotation race — with a fixed [now] there is no rotation at all, so
     the count must be exact *)
  let r = Rolling.create () in
  let n = 4 and per = 2000 in
  let now = 7777. in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            for j = 1 to per do
              Rolling.observe ~now r (float_of_int ((i * per) + j))
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "all concurrent observations counted" (n * per)
    (Rolling.count ~now r)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                              *)
(* ------------------------------------------------------------------ *)

let test_prom_roundtrip () =
  let p = Prometheus.create () in
  Prometheus.scalar p ~kind:Prometheus.Counter ~help:"requests served"
    "ucqc_requests" 42.;
  Prometheus.scalar p ~kind:Prometheus.Gauge "ucqc_queue_depth" 3.;
  Prometheus.scalar p ~kind:Prometheus.Gauge
    ~labels:[ ("op", "count"); ("quantile", "0.99") ]
    "ucqc_latency" 12.5;
  let counts = Array.make 64 0 in
  counts.(Rolling.bucket_of 1.) <- 10;
  counts.(Rolling.bucket_of 100.) <- 2;
  Prometheus.log2_histogram p ~labels:[ ("op", "count") ] "ucqc_steps"
    ~counts ~sum:230.;
  let text = Prometheus.render p in
  (match Prometheus.validate text with
  | Ok n -> Alcotest.(check bool) "several samples" true (n > 5)
  | Error msg -> Alcotest.fail ("rendered exposition invalid: " ^ msg));
  let samples =
    match Prometheus.parse text with
    | Ok s -> s
    | Error msg -> Alcotest.fail ("rendered exposition unparseable: " ^ msg)
  in
  Alcotest.(check (option (float 0.))) "counter got _total"
    (Some 42.)
    (Prometheus.find samples "ucqc_requests_total");
  Alcotest.(check (option (float 0.))) "labeled gauge found"
    (Some 12.5)
    (Prometheus.find ~labels:[ ("quantile", "0.99") ] samples "ucqc_latency");
  Alcotest.(check (option (float 0.))) "histogram count"
    (Some 12.)
    (Prometheus.find ~labels:[ ("op", "count") ] samples "ucqc_steps_count");
  Alcotest.(check (option (float 0.))) "histogram sum"
    (Some 230.)
    (Prometheus.find ~labels:[ ("op", "count") ] samples "ucqc_steps_sum");
  Alcotest.(check (option (float 0.))) "+Inf bucket equals count"
    (Some 12.)
    (Prometheus.find ~labels:[ ("le", "+Inf") ] samples "ucqc_steps_bucket")

let test_prom_sanitize () =
  Alcotest.(check string) "dots become underscores" "serve_cache_hit"
    (Prometheus.sanitize "serve.cache.hit");
  Alcotest.(check string) "leading digit prefixed" "_9lives"
    (Prometheus.sanitize "9lives");
  Alcotest.(check string) "legal names pass through" "ok_name:x"
    (Prometheus.sanitize "ok_name:x")

let test_prom_validate_rejects () =
  let bad_cases =
    [
      ( "interleaved families",
        "# TYPE a counter\na_total 1\n# TYPE b counter\nb_total 1\na_total 2\n"
      );
      ("negative counter", "# TYPE a_total counter\na_total -1\n");
      ( "histogram beyond count",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n\
         h_sum 1\nh_count 3\n" );
      ( "histogram without +Inf",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n" );
      ("duplicate sample", "# TYPE g gauge\ng 1\ng 2\n");
      ("garbage line", "not a metric line at all!\n");
    ]
  in
  List.iter
    (fun (name, text) ->
      match Prometheus.validate text with
      | Ok _ -> Alcotest.failf "validate accepted %s" name
      | Error _ -> ())
    bad_cases;
  (* and a well-formed minimal exposition still passes *)
  match Prometheus.validate "# TYPE up gauge\nup 1\n" with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "minimal exposition: %d samples, expected 1" n
  | Error msg -> Alcotest.fail ("minimal exposition rejected: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Microhttp                                                          *)
(* ------------------------------------------------------------------ *)

let test_microhttp () =
  (match Microhttp.parse_request "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n" with
  | Ok r ->
      Alcotest.(check string) "method" "GET" r.Microhttp.meth;
      Alcotest.(check string) "target" "/metrics" r.Microhttp.target
  | Error e -> Alcotest.fail e);
  (match Microhttp.parse_request "garbage\r\n\r\n" with
  | Ok _ -> Alcotest.fail "malformed request accepted"
  | Error _ -> ());
  Alcotest.(check string) "query string dropped" "/metrics"
    (Microhttp.path "/metrics?format=prometheus");
  Alcotest.(check bool) "incomplete head" false
    (Microhttp.head_complete "GET / HTTP/1.1\r\nHost:");
  Alcotest.(check bool) "complete head" true
    (Microhttp.head_complete "GET / HTTP/1.1\r\n\r\n");
  let resp = Microhttp.response ~status:200 ~content_type:"text/plain" "hi" in
  Alcotest.(check bool) "response has content-length" true
    (let needle = "Content-Length: 2" in
     let nl = String.length needle and rl = String.length resp in
     let rec go i = i + nl <= rl && (String.sub resp i nl = needle || go (i + 1)) in
     go 0)

(* ------------------------------------------------------------------ *)
(* Request ids and slow-log records                                   *)
(* ------------------------------------------------------------------ *)

let test_reqid_unique () =
  let g = Reqid.create () in
  let n = 1000 in
  let ids = List.init n (fun _ -> Reqid.next g) in
  Alcotest.(check int) "all distinct" n
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      Alcotest.(check bool) "r- prefix" true
        (String.length id > 2 && String.sub id 0 2 = "r-"))
    ids

let test_slowlog_roundtrip () =
  let e =
    {
      Slowlog.ts = 1234.5;
      request_id = "r-abc123-7";
      query = "(x) :- E(x, y)";
      op = "count";
      predicted_cost = 12.;
      observed_steps = 50000;
      factor = 4166.7;
      threshold = 8.;
      degradation = "karp-luby";
      lint_codes = [ "UCQ105"; "UCQ301" ];
      elapsed_ms = 298.4;
    }
  in
  let line = Slowlog.to_json e in
  Alcotest.(check bool) "one line" false (String.contains line '\n');
  match Slowlog.of_json line with
  | Error msg -> Alcotest.fail ("roundtrip failed: " ^ msg)
  | Ok e' ->
      Alcotest.(check string) "request id" e.Slowlog.request_id
        e'.Slowlog.request_id;
      Alcotest.(check int) "observed steps" e.Slowlog.observed_steps
        e'.Slowlog.observed_steps;
      Alcotest.(check (float 1e-6)) "predicted cost" e.Slowlog.predicted_cost
        e'.Slowlog.predicted_cost;
      Alcotest.(check (list string)) "lint codes" e.Slowlog.lint_codes
        e'.Slowlog.lint_codes;
      Alcotest.(check string) "degradation" e.Slowlog.degradation
        e'.Slowlog.degradation

(* ------------------------------------------------------------------ *)
(* The served /metrics endpoint, end to end                           *)
(* ------------------------------------------------------------------ *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let small_db () =
  Structure.make sg_e
    (List.init 5 (fun i -> i))
    [ ("E", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ]; [ 2; 3 ]; [ 3; 4 ] ]) ]

let http_get (port : int) (target : string) : int * string =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let reqs =
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
      target
  in
  ignore (Unix.write_substring fd reqs 0 (String.length reqs) : int);
  let buf = Bytes.create 8192 in
  let acc = Buffer.create 8192 in
  let rec drain () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes acc buf 0 n;
        drain ()
    | exception _ -> ()
  in
  drain ();
  let raw = Buffer.contents acc in
  let len = String.length raw in
  let rec head_end i =
    if i + 4 > len then Alcotest.fail "malformed HTTP response"
    else if String.sub raw i 4 = "\r\n\r\n" then i
    else head_end (i + 1)
  in
  let he = head_end 0 in
  let status =
    match int_of_string_opt (String.sub raw 9 3) with
    | Some s -> s
    | None -> Alcotest.fail "no HTTP status"
  in
  (status, String.sub raw (he + 4) (len - he - 4))

let test_server_metrics_endpoint () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucqc-test-obs-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists path then Sys.remove path;
  let slow_log = Filename.temp_file "ucqc_slow" ".jsonl" in
  let config =
    {
      (Server.default_config ~listen:(Server.Unix_socket path) ~jobs:1) with
      Server.queue_depth = 8;
      cache_capacity = 8;
      request_timeout_s = Some 10.;
      metrics_addr = Some ("127.0.0.1", 0);
      slow_query_log = Some slow_log;
      slow_factor = 8.;
    }
  in
  let t = Server.start config ~db:(small_db ()) in
  let mport =
    match Server.metrics_port t with
    | Some p -> p
    | None -> Alcotest.fail "metrics gateway not started"
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Server.stop t : int);
      (* the server auto-enabled telemetry for its counters; leave the
         process the way the other suites expect it *)
      Telemetry.disable ();
      Telemetry.reset ();
      try Sys.remove slow_log with Sys_error _ -> ())
    (fun () ->
      (* drive one cheap and one deliberately mispredicted count *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
      Unix.connect fd (Unix.ADDR_UNIX path);
      let send s =
        ignore (Unix.write_substring fd s 0 (String.length s) : int)
      in
      let recv_line =
        let buf = Buffer.create 256 in
        let one = Bytes.create 1 in
        fun () ->
          Buffer.clear buf;
          let rec go () =
            match Unix.read fd one 0 1 with
            | 0 -> Alcotest.fail "server closed the connection early"
            | _ when Bytes.get one 0 = '\n' -> Buffer.contents buf
            | _ ->
                Buffer.add_char buf (Bytes.get one 0);
                go ()
          in
          go ()
      in
      send
        {|{"op": "count", "query": "(x, y) :- E(x, z), E(z, y)", "id": 1}|};
      send "\n";
      let r1 = Trace_json.parse (recv_line ()) in
      (* every evaluated response carries a request id once the obs
         plane is on *)
      let rid1 =
        match Trace_json.member "request_id" r1 with
        | Some (Trace_json.Str s) -> s
        | _ -> Alcotest.fail "response lacks request_id"
      in
      send
        {|{"op": "count", "query": "(a, b, c, d, e, f, g, h, i) :- E(a, b), E(c, d), E(e, f), E(g, h), E(i, a)", "method": "naive", "max_steps": 50000, "id": 2}|};
      send "\n";
      let r2 = Trace_json.parse (recv_line ()) in
      let rid2 =
        match Trace_json.member "request_id" r2 with
        | Some (Trace_json.Str s) -> s
        | _ -> Alcotest.fail "mispredicted response lacks request_id"
      in
      Alcotest.(check bool) "request ids distinct" true (rid1 <> rid2);
      (* stats must read the coherent evaluator snapshot *)
      send {|{"op": "stats", "id": 3}|};
      send "\n";
      let st = Trace_json.parse (recv_line ()) in
      (match Trace_json.member "result" st with
      | Some r -> (
          (match Trace_json.member "cache" r with
          | Some c -> (
              match Trace_json.member "entries" c with
              | Some (Trace_json.Num n) ->
                  Alcotest.(check bool) "snapshot sees cached entries" true
                    (n >= 1.)
              | _ -> Alcotest.fail "stats cache block lacks entries")
          | None -> Alcotest.fail "stats lacks cache block");
          match Trace_json.member "slow_queries" r with
          | Some (Trace_json.Num n) ->
              Alcotest.(check bool) "slow query counted in stats" true
                (n >= 1.)
          | _ -> Alcotest.fail "stats lacks slow_queries")
      | None -> Alcotest.fail "stats response has no result");
      Unix.close fd;
      (* the exposition validates and reflects the traffic *)
      let status, body = http_get mport "/metrics" in
      Alcotest.(check int) "metrics is 200" 200 status;
      (match Prometheus.validate body with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("exposition invalid: " ^ msg));
      let samples =
        match Prometheus.parse body with
        | Ok s -> s
        | Error msg -> Alcotest.fail ("exposition unparseable: " ^ msg)
      in
      (match Prometheus.find samples "ucqc_serve_requests_count_total" with
      | Some n -> Alcotest.(check bool) "count requests counted" true (n >= 2.)
      | None -> Alcotest.fail "request counter missing");
      (match Prometheus.find samples "ucqc_serve_slow_queries_total" with
      | Some n -> Alcotest.(check bool) "slow query exported" true (n >= 1.)
      | None -> Alcotest.fail "slow-query counter missing");
      (match
         Prometheus.find
           ~labels:[ ("op", "count"); ("quantile", "0.99") ]
           samples "ucqc_rolling_latency_ms"
       with
      | Some q -> Alcotest.(check bool) "rolling p99 positive" true (q > 0.)
      | None -> Alcotest.fail "rolling latency gauge missing");
      let hstatus, hbody = http_get mport "/healthz" in
      Alcotest.(check int) "healthz 200 while serving" 200 hstatus;
      Alcotest.(check string) "healthz body" "ok\n" hbody;
      (* the slow-query log carries the mispredicted request's id *)
      let ic = open_in slow_log in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let entries =
        List.filter_map
          (fun l ->
            match Slowlog.of_json l with Ok e -> Some e | Error _ -> None)
          !lines
      in
      match
        List.find_opt (fun e -> e.Slowlog.request_id = rid2) entries
      with
      | Some e ->
          Alcotest.(check string) "slow entry op" "count" e.Slowlog.op;
          Alcotest.(check bool) "slow entry observed steps" true
            (e.Slowlog.observed_steps >= 50000)
      | None -> Alcotest.fail "no slow-log entry for the mispredicted query");
  (* the gateway dies with the server: the port must refuse *)
  match http_get mport "/healthz" with
  | exception _ -> ()
  | status, _ ->
      Alcotest.failf "gateway still answering HTTP %d after stop" status

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "rolling bucket layout" `Quick test_rolling_buckets;
        Alcotest.test_case "rolling quantiles" `Quick test_rolling_quantiles;
        Alcotest.test_case "rolling window expiry" `Quick
          test_rolling_window_expiry;
        Alcotest.test_case "rolling concurrent observers" `Quick
          test_rolling_concurrent;
        Alcotest.test_case "prometheus build/parse roundtrip" `Quick
          test_prom_roundtrip;
        Alcotest.test_case "prometheus sanitize" `Quick test_prom_sanitize;
        Alcotest.test_case "prometheus validate rejects" `Quick
          test_prom_validate_rejects;
        Alcotest.test_case "microhttp parsing" `Quick test_microhttp;
        Alcotest.test_case "request ids unique" `Quick test_reqid_unique;
        Alcotest.test_case "slowlog json roundtrip" `Quick
          test_slowlog_roundtrip;
        Alcotest.test_case "served /metrics end to end" `Quick
          test_server_metrics_endpoint;
      ] );
  ]
