(** Tests for the static analyzer: rule-by-rule unit tests on tiny
    queries, deny semantics, SARIF emission/validation, and qcheck
    properties (pretty/parse round-trip, analyzer determinism, pool
    independence). *)

let check = Analysis.check

let codes text =
  List.map (fun d -> d.Diagnostic.code) (check text).Analysis.diagnostics

let has code text = List.mem code (codes text)

let find code text =
  List.find_opt
    (fun d -> d.Diagnostic.code = code)
    (check text).Analysis.diagnostics

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* ------------------------------------------------------------------ *)
(* Rule-by-rule unit tests                                            *)
(* ------------------------------------------------------------------ *)

let test_clean () =
  let r = check "(x, y) :- E(x, y)" in
  (* a free-connex acyclic single CQ gets only the informational
     WL-dimension and plan reports *)
  Alcotest.(check (list string)) "only the reports" [ "UCQ204"; "UCQ301" ]
    (List.map (fun d -> d.Diagnostic.code) r.Analysis.diagnostics);
  Alcotest.(check bool) "plan present" true (r.Analysis.plan <> None);
  Alcotest.(check bool) "max severity Info" true
    (Analysis.max_severity r = Some Diagnostic.Info)

let test_syntax_error () =
  let r = check "(x" in
  match r.Analysis.diagnostics with
  | [ d ] ->
      Alcotest.(check string) "code" "UCQ001" d.Diagnostic.code;
      Alcotest.(check bool) "severity Error" true
        (d.Diagnostic.severity = Diagnostic.Error);
      Alcotest.(check bool) "has a span" true (d.Diagnostic.span <> None);
      (* Error findings are denied even with no --deny specs *)
      Alcotest.(check int) "always denied" 1
        (List.length (Analysis.denied_diagnostics [] r))
  | ds -> Alcotest.failf "expected exactly UCQ001, got %d findings" (List.length ds)

let test_arity_clash () =
  let d =
    match find "UCQ002" "(x) :- E(x), E(x, x)" with
    | Some d -> d
    | None -> Alcotest.fail "UCQ002 not reported"
  in
  (* the span points at the later, conflicting atom *)
  match d.Diagnostic.span with
  | Some s ->
      Alcotest.(check int) "line" 1 s.Diagnostic.line;
      Alcotest.(check int) "col of second atom" 14 s.Diagnostic.col
  | None -> Alcotest.fail "UCQ002 span missing"

let test_occurrence_hints () =
  (* y occurs once: UCQ101 *)
  Alcotest.(check bool) "single occurrence" true (has "UCQ101" "(x) :- E(x, y)");
  (* y occurs twice but in one atom only: UCQ102 *)
  Alcotest.(check bool) "single atom" true (has "UCQ102" "(x) :- T(x, y, y)");
  (* y shared across atoms: neither hint *)
  let t = "(x) :- E(x, y), E(y, x)" in
  Alcotest.(check bool) "joining var is fine" false
    (has "UCQ101" t || has "UCQ102" t);
  (* underscore prefix opts out of both hints *)
  let t = "(x) :- T(x, _y, _y), E(x, _z)" in
  Alcotest.(check bool) "wildcard opt-out" false
    (has "UCQ101" t || has "UCQ102" t)

let test_duplicate_atom () =
  let d =
    match find "UCQ103" "(x) :- E(x, y), E(x, y), E(y, x)" with
    | Some d -> d
    | None -> Alcotest.fail "UCQ103 not reported"
  in
  Alcotest.(check bool) "warning" true
    (d.Diagnostic.severity = Diagnostic.Warning);
  Alcotest.(check bool) "span on the duplicate" true
    (match d.Diagnostic.span with Some s -> s.Diagnostic.col = 17 | None -> false)

let test_subsumed_disjunct () =
  (* every answer of disjunct 2 is an answer of disjunct 1 *)
  let t = "(x) :- E(x, y) ; E(x, y), E(y, z)" in
  Alcotest.(check bool) "UCQ104" true (has "UCQ104" t);
  Alcotest.(check bool) "not a duplicate" false (has "UCQ106" t)

let test_duplicate_disjunct () =
  (* alpha-equivalent disjuncts: equivalent over the free variables *)
  let t = "(x) :- E(x, y) ; E(x, z)" in
  Alcotest.(check bool) "UCQ106" true (has "UCQ106" t);
  Alcotest.(check bool) "no one-way subsumption" false (has "UCQ104" t)

let test_cartesian_product () =
  Alcotest.(check bool) "disjoint parts" true
    (has "UCQ105" "(x, y) :- E(x, x), E(y, y)");
  Alcotest.(check bool) "connected is fine" false
    (has "UCQ105" "(x, y) :- E(x, y), E(y, x)")

let test_unconstrained_free_var () =
  Alcotest.(check bool) "free var in no atom" true
    (has "UCQ107" "(x, y) :- E(x, x)");
  Alcotest.(check bool) "constrained is fine" false
    (has "UCQ107" "(x, y) :- E(x, y)")

let test_contract_treewidth () =
  (* quantifier-free K4: contract = Gaifman = K4, treewidth 3 > 2 *)
  let k4 =
    "(a, b, c, d) :- E(a, b), E(a, c), E(a, d), E(b, c), E(b, d), E(c, d)"
  in
  Alcotest.(check bool) "K4 over threshold" true (has "UCQ201" k4);
  (* the triangle has contract treewidth 2: at the default threshold *)
  Alcotest.(check bool) "triangle within threshold" false
    (has "UCQ201" "(a, b, c) :- E(a, b), E(b, c), E(c, a)")

let test_free_connex_and_cyclic () =
  (* the path query: acyclic but not free-connex *)
  Alcotest.(check bool) "not free-connex" true
    (has "UCQ202" "(x, y) :- E(x, z), E(z, y)");
  (* quantifier-free triangle: cyclic, but not free-connex-diagnosed *)
  let tri = "(a, b, c) :- E(a, b), E(b, c), E(c, a)" in
  Alcotest.(check bool) "cyclic" true (has "UCQ206" tri);
  Alcotest.(check bool) "UCQ202 only fires on acyclic" false (has "UCQ202" tri)

let test_ie_blowup () =
  let union n =
    "(x) :- "
    ^ String.concat " ; "
        (List.init n (fun i -> Printf.sprintf "R%d(x)" i))
  in
  (match find "UCQ203" (union 8) with
  | Some d ->
      Alcotest.(check bool) "names 255 subsets" true
        (contains ~sub:"255" d.Diagnostic.message)
  | None -> Alcotest.fail "UCQ203 not reported at 8 disjuncts");
  Alcotest.(check bool) "below threshold" false (has "UCQ203" (union 7))

let test_quantified_union () =
  Alcotest.(check bool) "quantified union" true
    (has "UCQ205" "(x) :- E(x, y) ; E(y, x)");
  Alcotest.(check bool) "quantifier-free union" false
    (has "UCQ205" "(x, y) :- E(x, y) ; E(y, x)");
  Alcotest.(check bool) "single disjunct" false (has "UCQ205" "(x) :- E(x, y)")

let test_plan_report () =
  let r = check "(x, y) :- E(x, y) ; E(y, x)" in
  match r.Analysis.plan with
  | None -> Alcotest.fail "plan missing"
  | Some p ->
      Alcotest.(check int) "disjuncts" 2 p.Plan.disjuncts;
      Alcotest.(check int) "subsets" 3 p.Plan.subsets;
      Alcotest.(check bool) "expansion metered" true (p.Plan.expansion_steps > 0);
      Alcotest.(check bool) "acyclic support" true p.Plan.all_acyclic;
      (* outcome anchors: no limit completes; a limit at or below the
         exactly-known expansion cost exhausts *)
      Alcotest.(check bool) "unlimited is exact" true
        (Plan.predicted_outcome ~db_elems:5 ~db_tuples:10 p = Plan.Exact);
      Alcotest.(check bool) "starved falls back" true
        (Plan.predicted_outcome ~max_steps:1 ~db_elems:5 ~db_tuples:10 p
        = Plan.Fallback);
      Alcotest.(check bool) "describe mentions the method" true
        (contains ~sub:"count --via expansion" (Plan.describe p))

let test_budget_exhaustion () =
  let r =
    check ~budget:(Budget.of_steps 1) "(x) :- E(x, y), E(y, z) ; E(z, x)"
  in
  Alcotest.(check bool) "UCQ003 reported" true
    (List.exists
       (fun d -> d.Diagnostic.code = "UCQ003")
       r.Analysis.diagnostics);
  (* structural findings survive exhaustion of the semantic stage *)
  Alcotest.(check bool) "still sorted and duplicate-free" true
    (let ds = r.Analysis.diagnostics in
     List.sort_uniq Diagnostic.compare ds = ds)

(* ------------------------------------------------------------------ *)
(* Deny semantics                                                     *)
(* ------------------------------------------------------------------ *)

let test_deny_parsing () =
  Alcotest.(check bool) "severity name" true
    (Diagnostic.deny_of_string "warning" = Ok (Diagnostic.At_least Diagnostic.Warning));
  Alcotest.(check bool) "case-insensitive" true
    (Diagnostic.deny_of_string "Hint" = Ok (Diagnostic.At_least Diagnostic.Hint));
  Alcotest.(check bool) "registered code" true
    (Diagnostic.deny_of_string "UCQ103" = Ok (Diagnostic.Code "UCQ103"));
  Alcotest.(check bool) "lower-case code" true
    (Diagnostic.deny_of_string "ucq103" = Ok (Diagnostic.Code "UCQ103"));
  Alcotest.(check bool) "unregistered code rejected" true
    (match Diagnostic.deny_of_string "UCQ999" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "garbage rejected" true
    (match Diagnostic.deny_of_string "sometimes" with Error _ -> true | Ok _ -> false)

let test_denied_filter () =
  let r = check "(x) :- E(x, y), E(x, y)" in
  let denied specs = Analysis.denied_diagnostics specs r in
  Alcotest.(check int) "nothing denied by default" 0 (List.length (denied []));
  Alcotest.(check bool) "deny warning catches UCQ103" true
    (List.exists
       (fun d -> d.Diagnostic.code = "UCQ103")
       (denied [ Diagnostic.At_least Diagnostic.Warning ]));
  Alcotest.(check bool) "deny by code" true
    (List.exists
       (fun d -> d.Diagnostic.code = "UCQ103")
       (denied [ Diagnostic.Code "UCQ103" ]));
  Alcotest.(check int) "deny error catches nothing here" 0
    (List.length (denied [ Diagnostic.At_least Diagnostic.Error ]))

(* ------------------------------------------------------------------ *)
(* SARIF                                                              *)
(* ------------------------------------------------------------------ *)

let test_sarif_valid () =
  let reports =
    [
      check ~path:"a.ucq" "(x) :- E(x, y), E(x, y)";
      check ~path:"b.ucq" "(x";
      check ~path:"c.ucq" "(x, y) :- E(x, y)";
    ]
  in
  let total =
    List.fold_left
      (fun n r -> n + List.length r.Analysis.diagnostics)
      0 reports
  in
  let log = Sarif.of_reports ~tool_version:"test" reports in
  (match Sarif.validate log with
  | Ok n -> Alcotest.(check int) "one result per diagnostic" total n
  | Error msg -> Alcotest.failf "emitted SARIF invalid: %s" msg);
  (* the emitted text round-trips through the in-tree JSON parser *)
  match Sarif.validate (Trace_json.parse (Sarif.to_string log)) with
  | Ok n -> Alcotest.(check int) "round-trip" total n
  | Error msg -> Alcotest.failf "round-tripped SARIF invalid: %s" msg

let test_sarif_invalid () =
  let rejects what log =
    match Sarif.validate log with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "validator accepted %s" what
  in
  rejects "a non-object" Trace_json.Null;
  rejects "a wrong version"
    (Trace_json.Obj
       [ ("version", Trace_json.Str "1.0"); ("runs", Trace_json.Arr []) ]);
  rejects "empty runs"
    (Trace_json.Obj
       [ ("version", Trace_json.Str "2.1.0"); ("runs", Trace_json.Arr []) ]);
  (* tamper with valid output: rename a result's ruleId to an undeclared
     code *)
  let log = Sarif.of_reports [ check ~path:"a.ucq" "(x" ] in
  let rec tamper = function
    | Trace_json.Obj kvs ->
        Trace_json.Obj
          (List.map
             (fun (k, v) ->
               if k = "ruleId" then (k, Trace_json.Str "UCQ999")
               else (k, tamper v))
             kvs)
    | Trace_json.Arr xs -> Trace_json.Arr (List.map tamper xs)
    | j -> j
  in
  rejects "an undeclared ruleId" (tamper log)

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                  *)
(* ------------------------------------------------------------------ *)

let sg = Generators.graph_signature

let random_query seed =
  Qgen.random_ucq ~seed ~max_disjuncts:3 ~max_vars:4 ~max_atoms:3 sg

let seed_arb = QCheck.int_range 0 10_000

(* Satellite property: Pretty.ucq . Parse.ucq = id modulo variable
   renaming — checked as: same shape, and the same count on random
   databases.  A quantified variable appearing in no atom is the one
   (semantically inert) thing the rendering cannot preserve, so the
   quantifier count may only shrink. *)
let qcheck_roundtrip =
  QCheck.Test.make ~name:"pretty/parse round-trip (modulo renaming)"
    ~count:60 seed_arb (fun seed ->
      let psi = random_query seed in
      match Parse.ucq_result (Pretty.ucq psi) with
      | Error _ -> false
      | Ok (psi2, _) ->
          let db = Generators.random_digraph ~seed:((seed * 13) + 5) 4 9 in
          let db2 = Generators.random_digraph ~seed:((seed * 7) + 1) 5 14 in
          Ucq.length psi2 = Ucq.length psi
          && List.length (Ucq.free psi2) = List.length (Ucq.free psi)
          && Ucq.num_quantified psi2 <= Ucq.num_quantified psi
          && Ucq.count_naive psi2 db = Ucq.count_naive psi db
          && Ucq.count_naive psi2 db2 = Ucq.count_naive psi db2)

let qcheck_deterministic =
  QCheck.Test.make ~name:"analyzer is deterministic" ~count:40 seed_arb
    (fun seed ->
      let text = Pretty.ucq (random_query seed) in
      check text = check text)

let pool4 = lazy (Pool.create ~jobs:4 ())

let qcheck_pool_independent =
  QCheck.Test.make ~name:"analyzer findings independent of --jobs" ~count:40
    seed_arb (fun seed ->
      let text = Pretty.ucq (random_query seed) in
      let seq = check text in
      let par = check ~pool:(Lazy.force pool4) text in
      seq.Analysis.diagnostics = par.Analysis.diagnostics)

let qcheck =
  [ qcheck_roundtrip; qcheck_deterministic; qcheck_pool_independent ]

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "clean query" `Quick test_clean;
        Alcotest.test_case "UCQ001 syntax error" `Quick test_syntax_error;
        Alcotest.test_case "UCQ002 arity clash" `Quick test_arity_clash;
        Alcotest.test_case "UCQ101/102 occurrence hints" `Quick
          test_occurrence_hints;
        Alcotest.test_case "UCQ103 duplicate atom" `Quick test_duplicate_atom;
        Alcotest.test_case "UCQ104 subsumed disjunct" `Quick
          test_subsumed_disjunct;
        Alcotest.test_case "UCQ106 duplicate disjunct" `Quick
          test_duplicate_disjunct;
        Alcotest.test_case "UCQ105 cartesian product" `Quick
          test_cartesian_product;
        Alcotest.test_case "UCQ107 unconstrained free var" `Quick
          test_unconstrained_free_var;
        Alcotest.test_case "UCQ201 contract treewidth" `Quick
          test_contract_treewidth;
        Alcotest.test_case "UCQ202/206 connexity and cycles" `Quick
          test_free_connex_and_cyclic;
        Alcotest.test_case "UCQ203 IE blowup" `Quick test_ie_blowup;
        Alcotest.test_case "UCQ205 quantified union" `Quick
          test_quantified_union;
        Alcotest.test_case "UCQ301 plan report" `Quick test_plan_report;
        Alcotest.test_case "UCQ003 budget exhaustion" `Quick
          test_budget_exhaustion;
        Alcotest.test_case "deny parsing" `Quick test_deny_parsing;
        Alcotest.test_case "denied filter" `Quick test_denied_filter;
        Alcotest.test_case "SARIF emit + validate" `Quick test_sarif_valid;
        Alcotest.test_case "SARIF validator rejects" `Quick test_sarif_invalid;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck );
  ]
