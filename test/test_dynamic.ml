(** Tests for the dynamic (q-hierarchical) counting engine against
    from-scratch recomputation. *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let sg_rs =
  Signature.make [ Signature.symbol "R" 1; Signature.symbol "S" 2 ]

let mkq sg n rels free =
  Cq.make (Structure.make sg (List.init n (fun i -> i)) rels) free

(* q-hierarchical test queries *)
let star_q =
  (* (x) :- E(x, y1), E(x, y2) with y's quantified *)
  mkq sg_e 3 [ ("E", [ [ 0; 1 ]; [ 0; 2 ] ]) ] [ 0 ]

let rs_q =
  (* (x, y) :- R(x), S(x, y): hierarchical, all free *)
  mkq sg_rs 2 [ ("R", [ [ 0 ] ]); ("S", [ [ 0; 1 ] ]) ] [ 0; 1 ]

let exists_q =
  (* (x) :- R(x), ∃y S(x, y) *)
  mkq sg_rs 2 [ ("R", [ [ 0 ] ]); ("S", [ [ 0; 1 ] ]) ] [ 0 ]

let boolean_q =
  (* () :- ∃x∃y S(x, y) *)
  mkq sg_rs 2 [ ("S", [ [ 0; 1 ] ]) ] []

let sg_rst =
  Signature.make
    [ Signature.symbol "R" 1; Signature.symbol "S" 2; Signature.symbol "T" 3 ]

let deep_q =
  (* (x, y) :- R(x), S(x, y), ∃z T(x, y, z): a depth-3 chain *)
  mkq sg_rst 3
    [ ("R", [ [ 0 ] ]); ("S", [ [ 0; 1 ] ]); ("T", [ [ 0; 1; 2 ] ]) ]
    [ 0; 1 ]

let recount q db = Counting.count ~strategy:Counting.Naive q db

let test_rejects_non_qh () =
  let path = Paper_examples.q_hierarchical_example () in
  let db = Generators.path_db 3 in
  Alcotest.check_raises "path query rejected" Dynamic.Not_q_hierarchical
    (fun () -> ignore (Dynamic.create_exn path db))

let test_result_convention () =
  (* the result-returning constructors report Unsupported instead of
     raising, and succeed exactly where the _exn forms do *)
  let db = Generators.path_db 3 in
  (match Dynamic.create (Paper_examples.q_hierarchical_example ()) db with
  | Error (Ucqc_error.Unsupported _) -> ()
  | Error e ->
      Alcotest.fail ("expected Unsupported, got " ^ Ucqc_error.to_string e)
  | Ok _ -> Alcotest.fail "non-q-hierarchical query accepted");
  (match Dynamic.create star_q (Generators.random_digraph ~seed:71 8 20) with
  | Ok st ->
      Alcotest.(check int) "result create counts"
        (recount star_q (Generators.random_digraph ~seed:71 8 20))
        (Dynamic.count st)
  | Error e -> Alcotest.fail (Ucqc_error.to_string e));
  let e1 = mkq sg_e 3 [ ("E", [ [ 0; 1 ] ]) ] [ 0; 1; 2 ] in
  let e2 = mkq sg_e 3 [ ("E", [ [ 1; 2 ] ]) ] [ 0; 1; 2 ] in
  let e3 = mkq sg_e 3 [ ("E", [ [ 2; 0 ] ]) ] [ 0; 1; 2 ] in
  let db3 = Structure.make sg_e [ 0; 1; 2 ] [] in
  (match Dynamic_ucq.create (Ucq.make [ e1; e2; e3 ]) db3 with
  | Error (Ucqc_error.Unsupported _) -> ()
  | Error e ->
      Alcotest.fail ("expected Unsupported, got " ^ Ucqc_error.to_string e)
  | Ok _ -> Alcotest.fail "non-exhaustively-qh union accepted");
  match
    Dynamic_ucq.create
      (Ucq.make [ mkq sg_rs 1 [ ("R", [ [ 0 ] ]) ] [ 0 ] ])
      (Structure.make sg_rs [ 0; 1 ] [ ("R", [ [ 1 ] ]) ])
  with
  | Ok st -> Alcotest.(check int) "union result create counts" 1 (Dynamic_ucq.count st)
  | Error e -> Alcotest.fail (Ucqc_error.to_string e)

let test_initial_counts () =
  let db = Generators.random_digraph ~seed:71 8 20 in
  let st = Dynamic.create_exn star_q db in
  Alcotest.(check int) "initial star count" (recount star_q db) (Dynamic.count st)

let test_insert_delete_roundtrip () =
  let db = Structure.make sg_rs [ 0; 1; 2 ] [ ("R", [ [ 0 ] ]); ("S", [ [ 0; 1 ] ]) ] in
  let st = Dynamic.create_exn rs_q db in
  Alcotest.(check int) "initial" 1 (Dynamic.count st);
  Dynamic.insert st "S" [ 0; 2 ];
  Alcotest.(check int) "after S insert" 2 (Dynamic.count st);
  Dynamic.insert st "R" [ 1 ];
  Alcotest.(check int) "R without S has no effect" 2 (Dynamic.count st);
  Dynamic.insert st "S" [ 1; 1 ];
  Alcotest.(check int) "now R(1), S(1,1)" 3 (Dynamic.count st);
  Dynamic.delete st "R" [ 0 ];
  Alcotest.(check int) "deleting R(0) removes two answers" 1 (Dynamic.count st);
  Dynamic.delete st "R" [ 0 ];
  Alcotest.(check int) "idempotent delete" 1 (Dynamic.count st);
  Dynamic.insert st "S" [ 1; 1 ];
  Alcotest.(check int) "idempotent insert" 1 (Dynamic.count st)

let test_quantified_indicator () =
  let db = Structure.make sg_rs [ 0; 1; 2 ] [] in
  let st = Dynamic.create_exn exists_q db in
  Alcotest.(check int) "empty" 0 (Dynamic.count st);
  Dynamic.insert st "R" [ 0 ];
  Alcotest.(check int) "R alone" 0 (Dynamic.count st);
  Dynamic.insert st "S" [ 0; 1 ];
  Alcotest.(check int) "witness appears" 1 (Dynamic.count st);
  Dynamic.insert st "S" [ 0; 2 ];
  Alcotest.(check int) "second witness does not double count" 1 (Dynamic.count st);
  Dynamic.delete st "S" [ 0; 1 ];
  Alcotest.(check int) "one witness remains" 1 (Dynamic.count st);
  Dynamic.delete st "S" [ 0; 2 ];
  Alcotest.(check int) "witnesses gone" 0 (Dynamic.count st)

let test_boolean_query () =
  let db = Structure.make sg_rs [ 0; 1 ] [] in
  let st = Dynamic.create_exn boolean_q db in
  Alcotest.(check int) "false" 0 (Dynamic.count st);
  Dynamic.insert st "S" [ 0; 1 ];
  Alcotest.(check int) "true" 1 (Dynamic.count st);
  Dynamic.delete st "S" [ 0; 1 ];
  Alcotest.(check int) "false again" 0 (Dynamic.count st)

let test_random_update_sequences () =
  (* drive random insert/delete sequences and compare with recomputation *)
  let queries =
    [
      ("star", star_q, sg_e);
      ("rs", rs_q, sg_rs);
      ("exists", exists_q, sg_rs);
      ("boolean", boolean_q, sg_rs);
      ("deep chain", deep_q, sg_rst);
    ]
  in
  List.iter
    (fun (name, q, sg) ->
      let n = 5 in
      let universe = List.init n (fun i -> i) in
      let empty = Structure.make sg universe [] in
      let st = Dynamic.create_exn q empty in
      let current = Hashtbl.create 16 in
      let rng = Random.State.make [| 1234 |] in
      for step = 1 to 120 do
        let symbols = Structure.signature empty in
        let s = List.nth symbols (Random.State.int rng (List.length symbols)) in
        let tuple =
          List.init s.Signature.arity (fun _ -> Random.State.int rng n)
        in
        if Random.State.bool rng then begin
          Dynamic.insert st s.Signature.name tuple;
          Hashtbl.replace current (s.Signature.name, tuple) ()
        end
        else begin
          Dynamic.delete st s.Signature.name tuple;
          Hashtbl.remove current (s.Signature.name, tuple)
        end;
        if step mod 10 = 0 then begin
          let rels =
            List.map
              (fun (sym : Signature.symbol) ->
                ( sym.name,
                  Hashtbl.fold
                    (fun (rn, t) () acc -> if rn = sym.name then t :: acc else acc)
                    current [] ))
              symbols
          in
          let db = Structure.make sg universe rels in
          Alcotest.(check int)
            (Printf.sprintf "%s at step %d" name step)
            (recount q db) (Dynamic.count st)
        end
      done)
    queries

let test_free_twins () =
  (* (x, y) :- E(x, y): two free variables with equal atom sets *)
  let q = mkq sg_e 2 [ ("E", [ [ 0; 1 ] ]) ] [ 0; 1 ] in
  let db = Generators.random_digraph ~seed:91 6 12 in
  let st = Dynamic.create_exn q db in
  Alcotest.(check int) "edge count" (recount q db) (Dynamic.count st);
  Dynamic.insert st "E" [ 5; 0 ];
  let db' = Structure.add_tuples db "E" [ [ 5; 0 ] ] in
  Alcotest.(check int) "after insert" (recount q db') (Dynamic.count st)

let test_isolated_free_variable () =
  (* (x, z) :- E(x, y) with z isolated free: count multiplies by n *)
  let q = mkq sg_e 3 [ ("E", [ [ 0; 1 ] ]) ] [ 0; 2 ] in
  let db = Generators.random_digraph ~seed:92 5 8 in
  let st = Dynamic.create_exn q db in
  Alcotest.(check int) "isolated factor" (recount q db) (Dynamic.count st)

let test_dynamic_ucq () =
  (* Ψ(x) = (∃y S(x, y)) ∨ R(x): exhaustively q-hierarchical *)
  let out_edges = mkq sg_rs 2 [ ("S", [ [ 0; 1 ] ]) ] [ 0 ] in
  let has_r = mkq sg_rs 1 [ ("R", [ [ 0 ] ]) ] [ 0 ] in
  let psi = Ucq.make [ out_edges; has_r ] in
  Alcotest.(check bool) "exhaustively qh" true
    (Ucq.is_exhaustively_q_hierarchical psi);
  let n = 5 in
  let universe = List.init n (fun i -> i) in
  let empty = Structure.make sg_rs universe [] in
  let st = Dynamic_ucq.create_exn psi empty in
  Alcotest.(check int) "empty union count" 0 (Dynamic_ucq.count st);
  let current = Hashtbl.create 16 in
  let rng = Random.State.make [| 77 |] in
  for step = 1 to 100 do
    let symbols = Structure.signature empty in
    let s = List.nth symbols (Random.State.int rng (List.length symbols)) in
    let tuple = List.init s.Signature.arity (fun _ -> Random.State.int rng n) in
    if Random.State.bool rng then begin
      Dynamic_ucq.insert st s.Signature.name tuple;
      Hashtbl.replace current (s.Signature.name, tuple) ()
    end
    else begin
      Dynamic_ucq.delete st s.Signature.name tuple;
      Hashtbl.remove current (s.Signature.name, tuple)
    end;
    if step mod 10 = 0 then begin
      let rels =
        List.map
          (fun (sym : Signature.symbol) ->
            ( sym.name,
              Hashtbl.fold
                (fun (rn, t) () acc -> if rn = sym.name then t :: acc else acc)
                current [] ))
          symbols
      in
      let db = Structure.make sg_rs universe rels in
      Alcotest.(check int)
        (Printf.sprintf "union at step %d" step)
        (Ucq.count_naive psi db) (Dynamic_ucq.count st)
    end
  done

let test_dynamic_ucq_rejects () =
  (* the triangle-of-unions combined query is not hierarchical *)
  let e1 = mkq sg_e 3 [ ("E", [ [ 0; 1 ] ]) ] [ 0; 1; 2 ] in
  let e2 = mkq sg_e 3 [ ("E", [ [ 1; 2 ] ]) ] [ 0; 1; 2 ] in
  let e3 = mkq sg_e 3 [ ("E", [ [ 2; 0 ] ]) ] [ 0; 1; 2 ] in
  let psi = Ucq.make [ e1; e2; e3 ] in
  let db = Structure.make sg_e [ 0; 1; 2 ] [] in
  Alcotest.check_raises "rejected" Dynamic_ucq.Not_exhaustively_q_hierarchical
    (fun () -> ignore (Dynamic_ucq.create_exn psi db))

(* random q-hierarchical query generator: a random variable forest with
   free variables closed upwards, and one atom per node spanning its
   ancestor chain (fresh relation symbol each) *)
let random_qh_query (seed : int) : Cq.t * Signature.t =
  let rng = Random.State.make [| seed |] in
  let n = 2 + Random.State.int rng 4 in
  (* parent.(i) < i or -1 *)
  let parent = Array.init n (fun i -> if i = 0 then -1 else Random.State.int rng (i + 1) - 1) in
  (* free: roots decide; a child of a quantified node is quantified *)
  let free = Array.make n false in
  for i = 0 to n - 1 do
    let parent_free = parent.(i) < 0 || free.(parent.(i)) in
    free.(i) <- parent_free && Random.State.bool rng
  done;
  let chain i =
    let rec up j acc = if j < 0 then acc else up parent.(j) (j :: acc) in
    up i []
  in
  let symbols = ref [] in
  let rels = ref [] in
  Array.iteri
    (fun i _ ->
      let vars = chain i in
      let name = Printf.sprintf "R%d" i in
      symbols := Signature.symbol name (List.length vars) :: !symbols;
      rels := (name, [ vars ]) :: !rels)
    parent;
  let sg = Signature.make !symbols in
  let universe = List.init n (fun i -> i) in
  let free_vars = List.filter (fun i -> free.(i)) universe in
  (Cq.make (Structure.make sg universe !rels) free_vars, sg)

let qcheck_dynamic =
  let open QCheck in
  [
    Test.make ~name:"random q-hierarchical queries stay consistent" ~count:25
      (int_range 0 10_000) (fun seed ->
        let q, sg = random_qh_query seed in
        if not (Cq.is_q_hierarchical q) then
          QCheck.Test.fail_report "generator produced a non-qh query";
        let n = 4 in
        let universe = List.init n (fun i -> i) in
        let empty = Structure.make sg universe [] in
        let st = Dynamic.create_exn q empty in
        let current = Hashtbl.create 16 in
        let rng = Random.State.make [| seed + 1 |] in
        let ok = ref true in
        for step = 1 to 40 do
          let symbols = sg in
          let s = List.nth symbols (Random.State.int rng (List.length symbols)) in
          let tuple =
            List.init s.Signature.arity (fun _ -> Random.State.int rng n)
          in
          if Random.State.bool rng then begin
            Dynamic.insert st s.Signature.name tuple;
            Hashtbl.replace current (s.Signature.name, tuple) ()
          end
          else begin
            Dynamic.delete st s.Signature.name tuple;
            Hashtbl.remove current (s.Signature.name, tuple)
          end;
          if step mod 8 = 0 then begin
            let rels =
              List.map
                (fun (sym : Signature.symbol) ->
                  ( sym.name,
                    Hashtbl.fold
                      (fun (rn, t) () acc -> if rn = sym.name then t :: acc else acc)
                      current [] ))
                symbols
            in
            let db = Structure.make sg universe rels in
            if Dynamic.count st <> recount q db then ok := false
          end
        done;
        !ok);
  ]

let suite =
  [
    ( "dynamic",
      [
        Alcotest.test_case "rejects non-q-hierarchical" `Quick test_rejects_non_qh;
        Alcotest.test_case "result-returning constructors" `Quick
          test_result_convention;
        Alcotest.test_case "initial counts" `Quick test_initial_counts;
        Alcotest.test_case "insert/delete roundtrip" `Quick
          test_insert_delete_roundtrip;
        Alcotest.test_case "existential indicators" `Quick test_quantified_indicator;
        Alcotest.test_case "boolean query" `Quick test_boolean_query;
        Alcotest.test_case "random update sequences" `Quick
          test_random_update_sequences;
        Alcotest.test_case "free twins" `Quick test_free_twins;
        Alcotest.test_case "isolated free variable" `Quick
          test_isolated_free_variable;
        Alcotest.test_case "dynamic UCQ (exhaustively q-hierarchical)" `Quick
          test_dynamic_ucq;
        Alcotest.test_case "dynamic UCQ rejects" `Quick test_dynamic_ucq_rejects;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_dynamic );
  ]
