(** Benchmark harness: one section per experiment of EXPERIMENTS.md
    (E1–E13), regenerating every figure / worked example / algorithmic
    claim of the paper, followed by Bechamel micro-benchmarks (one
    [Test.make] per experiment).  [--json] instead runs the E14 parallel
    speedup table plus the E15 telemetry-overhead measurement and writes
    [BENCH_parallel.json], then the E19 optimizer-effect table and
    writes [BENCH_optimize.json].

    Run with: [dune exec bench/main.exe] *)

open Bench_util

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let mkcq n edges free =
  Cq.make (Structure.make sg_e (List.init n (fun i -> i)) [ ("E", edges) ]) free

(* ================================================================== *)
(* E1: Figure 1 — reduced Euler characteristics                       *)
(* ================================================================== *)

let e1 () =
  header "E1  Figure 1: reduced Euler characteristics (paper: -2 and 0)";
  let widths = [ 8; 14; 14; 14; 10 ] in
  row widths [ "complex"; "brute"; "facet-IE"; "Lemma42+IE"; "paper" ];
  List.iter
    (fun (name, c, expected) ->
      row widths
        [
          name;
          string_of_int (Scomplex.euler_brute c);
          string_of_int (Scomplex.euler_facet_ie c);
          string_of_int (Scomplex.euler c);
          string_of_int expected;
        ])
    [
      ("Delta1", Scomplex.figure1_delta1, -2);
      ("Delta2", Scomplex.figure1_delta2, 0);
    ]

(* ================================================================== *)
(* E2: Figure 2 — K_3^4 and the substructures S_A                     *)
(* ================================================================== *)

let e2 () =
  header "E2  Figure 2: the structure K_3^4 and its slices S_A";
  let ktk = Paper_examples.ktk34 () in
  Printf.printf "K_3^4: %d vertices, %d singleton relations, treewidth %d, acyclic: %b\n"
    (List.length (Ktk.universe ktk))
    (Signature.size ktk.Ktk.signature)
    (Structure.treewidth ktk.Ktk.structure)
    (Cq.is_acyclic (Cq.of_structure ktk.Ktk.structure));
  let widths = [ 12; 10; 10 ] in
  row widths [ "S_A for A="; "acyclic"; "tuples" ];
  List.iter
    (fun a ->
      let s = Paper_examples.s_a a in
      row widths
        [
          "{" ^ String.concat "," (List.map string_of_int a) ^ "}";
          string_of_bool (Cq.is_acyclic (Cq.of_structure s));
          string_of_int (Structure.num_tuples s);
        ])
    [ [ 1 ]; [ 2; 4 ]; [ 1; 4 ]; [ 3; 4 ]; [ 2; 3 ]; [ 1; 2; 3 ] ];
  let psi1, _ = Paper_examples.psi1 () in
  let psi2, _ = Paper_examples.psi2 () in
  Printf.printf "/\\(Psi1) = K_3^4: %b;  /\\(Psi2) = K_3^4: %b\n"
    (Structure.equal (Cq.structure (Ucq.combined_all psi1)) ktk.Ktk.structure)
    (Structure.equal (Cq.structure (Ucq.combined_all psi2)) ktk.Ktk.structure);
  Printf.printf "c_Psi1(K_3^4) = %d (= -chi^(Delta1));  c_Psi2(K_3^4) = %d (= -chi^(Delta2))\n"
    (Ucq.coefficient psi1 (Ucq.combined_all psi1))
    (Ucq.coefficient psi2 (Ucq.combined_all psi2))

(* ================================================================== *)
(* E3: Corollary 49 — Psi1 superlinear vs Psi2 linear                 *)
(* ================================================================== *)

let evaluate_support = Ucq.count_compiled

let e3 () =
  header
    "E3  Corollary 49: counting answers to Psi1 (superlinear) vs Psi2 (linear)";
  Printf.printf
    "Databases: Lemma 45 construction over quarter-dense random host graphs.\n";
  Printf.printf
    "Expected shape: t/|D| roughly flat for Psi2, growing for Psi1.\n\n";
  let psi1, ktk = Paper_examples.psi1 () in
  let psi2, _ = Paper_examples.psi2 () in
  let support1 = Ucq.compile psi1 and support2 = Ucq.compile psi2 in
  let widths = [ 6; 9; 12; 12; 14; 14 ] in
  row widths
    [ "host n"; "|D|"; "t(Psi1) ms"; "t(Psi2) ms"; "us/|D| Psi1"; "us/|D| Psi2" ];
  List.iter
    (fun n ->
      let m = n * (n - 1) / 4 in
      let host = Graph.of_edges n (Listx.take m (Graph.edges (Graph.clique n))) in
      let db = Ktk.database_of_graph ktk host in
      let size = Structure.size db in
      let t1 = time (fun () -> evaluate_support support1 db) in
      let t2 = time (fun () -> evaluate_support support2 db) in
      row widths
        [
          string_of_int n;
          string_of_int size;
          ms t1;
          ms t2;
          us_per t1 size;
          us_per t2 size;
        ])
    [ 8; 12; 16; 22; 28 ];
  Printf.printf
    "\n(Consistency: both engines agree with inclusion-exclusion on a small host.)\n";
  let db = Ktk.database_of_graph ktk (Graph.clique 4) in
  Printf.printf "Psi1 on K4-host: support eval = %d, IE = %d\n"
    (evaluate_support support1 db)
    (Ucq.count_inclusion_exclusion psi1 db)

(* ================================================================== *)
(* E4: Theorem 5 — the META algorithm and its 2^l scaling             *)
(* ================================================================== *)

let path_union l =
  (* union of l single-edge CQs over the shared free path variables *)
  Ucq.make
    (List.init l (fun i ->
         mkcq (l + 1) [ [ i; i + 1 ] ] (List.init (l + 1) (fun v -> v))))

let e4 () =
  header "E4  Theorem 5: META decisions and the 2^l running-time shape";
  let widths = [ 4; 10; 12; 14; 12 ] in
  row widths [ "l"; "decision"; "#support"; "time ms"; "ratio" ];
  let prev = ref None in
  List.iter
    (fun l ->
      let psi = path_union l in
      let d = Meta.decide psi in
      let t = time (fun () -> Meta.decide psi) in
      let ratio =
        match !prev with
        | None -> "-"
        | Some p -> Printf.sprintf "%.2f" (t /. p)
      in
      prev := Some t;
      row widths
        [
          string_of_int l;
          string_of_bool d.Meta.linear_time;
          string_of_int (List.length d.Meta.support);
          ms t;
          ratio;
        ])
    [ 2; 3; 4; 5; 6; 7; 8 ];
  Printf.printf
    "\n(Unions of paths stay acyclic under conjunction, so META answers yes;\n";
  Printf.printf " adding a closing edge flips the answer:)\n";
  let cyclic =
    Ucq.make
      [
        mkcq 3 [ [ 0; 1 ] ] [ 0; 1; 2 ];
        mkcq 3 [ [ 1; 2 ] ] [ 0; 1; 2 ];
        mkcq 3 [ [ 2; 0 ] ] [ 0; 1; 2 ];
      ]
  in
  Printf.printf "triangle-of-unions: linear_time = %b\n"
    (Meta.decide cyclic).Meta.linear_time

(* ================================================================== *)
(* E5: Lemmas 47/48/50/51 — the SAT hardness pipeline                 *)
(* ================================================================== *)

let e5 () =
  header "E5  Lemma 51 pipeline: CNF -> complex -> UCQ -> META decides SAT";
  let widths = [ 30; 6; 8; 10; 8; 12 ] in
  row widths [ "formula"; "#sat"; "chi^"; "c(K_t^k)"; "l"; "META=linear" ];
  let formulas =
    [
      ("(x1)", Cnf.make 1 [ [ 1 ] ]);
      ("(x1)&(-x1)", Cnf.make 1 [ [ 1 ]; [ -1 ] ]);
      ("(x1|x2)", Cnf.make 2 [ [ 1; 2 ] ]);
      ("(x1|x2)&(-x1|-x2)", Cnf.make 2 [ [ 1; 2 ]; [ -1; -2 ] ]);
      ( "all four 2-clauses",
        Cnf.make 2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ] );
      ("(x1|x2|x3)&(-x1|-x2|-x3)", Cnf.make 3 [ [ 1; 2; 3 ]; [ -1; -2; -3 ] ]);
    ]
  in
  List.iter
    (fun (name, f) ->
      match Pipeline.ucq_of_cnf f with
      | Pipeline.Resolved _ -> row widths [ name; "-"; "-"; "-"; "-"; "resolved" ]
      | Pipeline.Query { psi; complex; _ } ->
          let d = Meta.decide psi in
          row widths
            [
              name;
              string_of_int (Cnf.count_sat f);
              string_of_int (Power_complex.euler_independent_sets complex);
              string_of_int (Ucq.coefficient psi (Ucq.combined_all psi));
              string_of_int (Ucq.length psi);
              string_of_bool d.Meta.linear_time;
            ])
    formulas;
  Printf.printf
    "\nInvariant: #sat = chi^, c(K_t^k) = -#sat, META linear iff unsatisfiable.\n";
  Printf.printf
    "\nLarger formulas via the specialised pipeline decision (Lemma 48 item 3\n\
     reduces META on pipeline queries to the vanishing of chi^):\n";
  let widths = [ 10; 10; 8; 14 ] in
  row widths [ "vars"; "clauses"; "l"; "META (fast)" ];
  List.iter
    (fun (n, m, seed) ->
      let f = Cnf.random_3cnf ~seed n m in
      row widths
        [
          string_of_int n;
          string_of_int m;
          string_of_int ((3 * n) + m);
          string_of_bool (Pipeline.meta_fast f);
        ])
    [ (5, 10, 1); (8, 30, 2); (10, 50, 3); (12, 55, 4) ]

(* ================================================================== *)
(* E6: Theorems 4/37 — linear-time acyclic counting                   *)
(* ================================================================== *)

let e6 () =
  header "E6  Theorems 4/37: Yannakakis counting is linear; triangles are not";
  let p4 = mkcq 4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] [ 0; 1; 2; 3 ] in
  let triangle = mkcq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ] in
  let widths = [ 8; 9; 14; 14; 14; 14 ] in
  row widths
    [ "n"; "|D|"; "P4 yann ms"; "us/|D| P4"; "tri wve ms"; "us/|D| tri" ];
  List.iter
    (fun n ->
      let db = Generators.random_digraph ~seed:77 n (8 * n) in
      let size = Structure.size db in
      let t_path =
        time (fun () -> Counting.count ~strategy:Counting.Yannakakis p4 db)
      in
      let t_tri =
        time (fun () -> Counting.count ~strategy:Counting.Weighted triangle db)
      in
      row widths
        [
          string_of_int n;
          string_of_int size;
          ms t_path;
          us_per t_path size;
          ms t_tri;
          us_per t_tri size;
        ])
    [ 500; 1000; 2000; 4000; 8000 ];
  Printf.printf
    "\n(P4 time per |D| stays flat — linear; triangle time per |D| grows.)\n";
  Printf.printf
    "\nConstant-delay enumeration (Section 1.1): time to the first 100\n\
     answers of P4 after linear preprocessing stays flat as |D| grows:\n";
  let widths = [ 8; 14; 18 ] in
  row widths [ "n"; "prep ms"; "first-100 us" ];
  List.iter
    (fun n ->
      let db = Generators.random_digraph ~seed:78 n (8 * n) in
      let t_prep = time (fun () -> Enumerate.prepare p4 db) in
      let e = Enumerate.prepare p4 db in
      let t_first =
        time (fun () -> List.of_seq (Seq.take 100 (Enumerate.answers e)))
      in
      row widths
        [ string_of_int n; ms t_prep; Printf.sprintf "%.1f" (t_first *. 1e6) ])
    [ 1000; 4000; 16000 ]

(* ================================================================== *)
(* E7: Theorem 28 — complexity monotonicity                           *)
(* ================================================================== *)

let e7 () =
  header "E7  Theorem 28: recovering CQ counts from the UCQ oracle";
  let psi =
    Ucq.make
      [
        mkcq 3 [ [ 0; 1 ] ] [ 0; 1; 2 ];
        mkcq 3 [ [ 1; 2 ] ] [ 0; 1; 2 ];
        mkcq 3 [ [ 0; 2 ] ] [ 0; 1; 2 ];
      ]
  in
  let d = Generators.random_digraph ~seed:99 7 18 in
  let recovered = Monotonicity.recover psi d in
  let widths = [ 8; 8; 8; 18; 18; 8 ] in
  row widths [ "term"; "vars"; "coeff"; "recovered"; "direct"; "match" ];
  List.iteri
    (fun i (r : Monotonicity.recovered) ->
      let direct = Counting.count r.Monotonicity.term d in
      row widths
        [
          string_of_int i;
          string_of_int (Structure.universe_size (Cq.structure r.Monotonicity.term));
          string_of_int r.Monotonicity.coefficient;
          Bigint.to_string r.Monotonicity.count;
          string_of_int direct;
          string_of_bool (Bigint.to_int_opt r.Monotonicity.count = Some direct);
        ])
    recovered

(* ================================================================== *)
(* E8: Theorems 1/2/3 — classification of query families              *)
(* ================================================================== *)

let e8 () =
  header "E8  Theorems 1/2/3: classification measures along query families";
  let star_family k =
    Ucq.make
      [ mkcq (k + 1) (List.init k (fun i -> [ 0; i + 1 ])) (Combinat.range (k + 1)) ]
  in
  let clique_family k =
    Ucq.make
      [
        mkcq k
          (List.map (fun (u, v) -> [ u; v ]) (Combinat.pairs (Combinat.range k)))
          (Combinat.range k);
      ]
  in
  let cycle_union_family k =
    Ucq.make
      (List.init k (fun i -> mkcq k [ [ i; (i + 1) mod k ] ] (Combinat.range k)))
  in
  let families =
    [
      ("stars (single CQ)", star_family, [ 2; 3; 4 ], true);
      ("cliques (single CQ)", clique_family, [ 3; 4; 5 ], false);
      ("cycle unions", cycle_union_family, [ 3; 4; 5 ], true);
    ]
  in
  let widths = [ 22; 6; 12; 16; 10; 12 ] in
  row widths [ "family"; "k"; "tw(/\\C)"; "tw(contract)"; "gammaTW"; "verdict" ];
  List.iter
    (fun (name, family, params, with_gamma) ->
      let fr = Classify.analyze_family ~with_gamma family params in
      List.iter
        (fun (p, (r : Classify.report)) ->
          row widths
            [
              name;
              string_of_int p;
              string_of_int r.Classify.combined_tw;
              string_of_int r.Classify.combined_contract_tw;
              (if r.Classify.gamma_max_tw < 0 then "-"
               else string_of_int r.Classify.gamma_max_tw);
              (match fr.Classify.verdict with
              | Classify.Fpt -> "FPT"
              | Classify.W1_hard -> "W[1]-hard"
              | Classify.Inconclusive -> "(Gamma)");
            ])
        fr.Classify.samples)
    families;
  Printf.printf
    "\n(Theorem 2: for deletion-closed quantifier-free classes, growth of\n";
  Printf.printf " tw(/\\C) alone separates FPT from W[1]-hard.)\n"

(* ================================================================== *)
(* E9: Theorems 7/8/58 — WL-dimension                                 *)
(* ================================================================== *)

let e9 () =
  header "E9  Theorems 7/8/58: WL-dimension of UCQs";
  let psi1, _ = Paper_examples.psi1 () in
  let psi2, _ = Paper_examples.psi2 () in
  let tri =
    Ucq.make [ mkcq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ] ]
  in
  let widths = [ 18; 12; 16; 14 ] in
  row widths [ "query"; "dim_WL"; "approx [lo,hi]"; "at_most 1" ];
  List.iter
    (fun (name, psi) ->
      let exact = Wl_dimension.exact psi in
      let lo, hi = Wl_dimension.approximate psi in
      row widths
        [
          name;
          string_of_int exact;
          Printf.sprintf "[%d, %d]" lo hi;
          string_of_bool (Wl_dimension.at_most 1 psi);
        ])
    [ ("Psi1", psi1); ("Psi2", psi2); ("triangle", tri) ];
  Printf.printf "\nDefinition 6 consistency (equivalent pairs with equal counts): %s\n"
    (match Wl_dimension.invariance_check ~k:1 psi2 with
    | Ok n -> Printf.sprintf "%d pairs" n
    | Error e -> "FAILED: " ^ Ucqc_error.to_string e)

(* ================================================================== *)
(* E10: Appendix A — necessity of the Theorem 3 side conditions       *)
(* ================================================================== *)

let e10 () =
  header "E10  Appendix A: the three counterexample families";
  subheader "Lemma 59 (drop deletion-closure): Psi_t = A^_t(Delta2)";
  let widths = [ 4; 12; 14; 16 ] in
  row widths [ "t"; "tw(/\\Psi)"; "c(/\\Psi)"; "hdtw (=Gamma tw)" ];
  List.iter
    (fun t ->
      let psi, _ = Counterexamples.lemma59 t in
      row widths
        [
          string_of_int t;
          string_of_int (Cq.treewidth (Ucq.combined_all psi));
          string_of_int (Ucq.coefficient psi (Ucq.combined_all psi));
          string_of_int (Meta.hereditary_treewidth psi);
        ])
    [ 3; 4 ];
  Printf.printf "-> tw(/\\C) unbounded, but the expansion support stays acyclic: FPT.\n";

  subheader "Lemma 60 (drop bounded quantified variables)";
  let widths = [ 4; 6; 12; 16; 18 ] in
  row widths [ "k"; "l"; "tw(/\\Psi)"; "max support tw"; "max support ctw" ];
  List.iter
    (fun k ->
      let psi = Counterexamples.lemma60 k in
      let stw, sctw =
        List.fold_left
          (fun (a, b) (t : Ucq.expansion_term) ->
            ( max a (Cq.treewidth t.representative),
              max b (Cq.contract_treewidth t.representative) ))
          (0, 0) (Ucq.support psi)
      in
      row widths
        [
          string_of_int k;
          string_of_int (Ucq.length psi);
          string_of_int (Cq.treewidth (Ucq.combined_all psi));
          string_of_int stw;
          string_of_int sctw;
        ])
    [ 3; 4 ];
  Printf.printf "-> tw(/\\C) grows with k, every surviving term stays of treewidth <= 2.\n";

  subheader "Lemma 61 (drop self-join-freeness)";
  let widths = [ 4; 18; 20 ] in
  row widths [ "k"; "ctw(psi_k)"; "ctw(#core psi_k)" ];
  List.iter
    (fun k ->
      let psi = Counterexamples.lemma61 k in
      let q = Ucq.disjunct psi 0 in
      row widths
        [
          string_of_int k;
          string_of_int (Cq.contract_treewidth q);
          string_of_int (Cq.contract_treewidth (Cq.sharp_core q));
        ])
    [ 2; 3; 4 ];
  Printf.printf
    "-> contract treewidth of psi_k is unbounded, but its #core is a star.\n"

(* ================================================================== *)
(* E11: q-hierarchicality (Section 1.2)                               *)
(* ================================================================== *)

let e11 () =
  header "E11  q-hierarchicality (dynamic-setting criterion, Section 1.2)";
  let phi = Paper_examples.q_hierarchical_example () in
  Printf.printf
    "paper example E(a,b) & E(b,c) & E(c,d): acyclic = %b, q-hierarchical = %b\n"
    (Cq.is_acyclic phi) (Cq.is_q_hierarchical phi);
  Printf.printf
    "\nExhaustive q-hierarchicality of path unions (2^l combined queries):\n";
  let widths = [ 4; 12; 12 ] in
  row widths [ "l"; "exhaustive"; "time ms" ];
  List.iter
    (fun l ->
      let psi = path_union l in
      let t = time (fun () -> Ucq.is_exhaustively_q_hierarchical psi) in
      row widths
        [
          string_of_int l;
          string_of_bool (Ucq.is_exhaustively_q_hierarchical psi);
          ms t;
        ])
    [ 2; 3; 4; 6; 8; 10 ]

(* ================================================================== *)
(* E12: Karp-Luby approximate counting (Section 1.2)                  *)
(* ================================================================== *)

let e12 () =
  header "E12  Karp-Luby approximation for UCQ counts (Section 1.2)";
  let psi =
    Ucq.make
      [
        mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ];
        mkcq 3 [ [ 0; 2 ]; [ 2; 1 ] ] [ 0; 1 ];
        mkcq 4 [ [ 0; 2 ]; [ 2; 3 ]; [ 3; 1 ] ] [ 0; 1 ];
      ]
  in
  let db = Generators.random_digraph ~seed:17 80 280 in
  let exact = Ucq.count_via_expansion psi db in
  Printf.printf "reach-in-<=3-steps union on a random digraph; exact = %d\n\n" exact;
  let widths = [ 10; 12; 10; 12 ] in
  row widths [ "samples"; "estimate"; "err %"; "time ms" ];
  List.iter
    (fun samples ->
      let est = Karp_luby.estimate ~seed:1 ~samples psi db in
      let t = time (fun () -> Karp_luby.estimate ~seed:1 ~samples psi db) in
      row widths
        [
          string_of_int samples;
          Printf.sprintf "%.1f" est.Karp_luby.value;
          Printf.sprintf "%.2f"
            (100. *. abs_float (est.Karp_luby.value -. float_of_int exact)
            /. float_of_int (max exact 1));
          ms t;
        ])
    [ 100; 1000; 10000 ];
  Printf.printf
    "\n(Error shrinks like 1/sqrt(samples); the union itself is handled by\n\
     sampling, so no 2^l expansion is ever computed.)\n"

(* ================================================================== *)
(* E13: dynamic counting for q-hierarchical CQs (Section 1.2)         *)
(* ================================================================== *)

let e13 () =
  header "E13  Dynamic counting under updates (q-hierarchical, Section 1.2)";
  let sg =
    Signature.make [ Signature.symbol "R" 1; Signature.symbol "S" 2 ]
  in
  (* q(x) = R(x) ∧ ∃y S(x, y) *)
  let q =
    Cq.make
      (Structure.make sg [ 0; 1 ] [ ("R", [ [ 0 ] ]); ("S", [ [ 0; 1 ] ]) ])
      [ 0 ]
  in
  Printf.printf
    "q(x) = R(x) & exists y S(x, y); per-update cost vs recompute-from-scratch\n\n";
  let widths = [ 8; 16; 18; 16 ] in
  row widths [ "n"; "updates"; "dynamic us/upd"; "recompute ms" ];
  List.iter
    (fun n ->
      let universe = List.init n (fun i -> i) in
      let empty = Structure.make sg universe [] in
      let st = Dynamic.create_exn q empty in
      let rng = Random.State.make [| 3 |] in
      let updates = 50_000 in
      let t0 = Sys.time () in
      for _ = 1 to updates do
        let u = Random.State.int rng n in
        match Random.State.int rng 4 with
        | 0 -> Dynamic.insert st "R" [ u ]
        | 1 -> Dynamic.delete st "R" [ u ]
        | 2 -> Dynamic.insert st "S" [ u; Random.State.int rng n ]
        | _ -> Dynamic.delete st "S" [ u; Random.State.int rng n ]
      done;
      let per_update = (Sys.time () -. t0) /. float_of_int updates in
      (* recomputation baseline on a database of comparable size *)
      let db =
        Structure.make sg universe
          [
            ("R", List.init (n / 2) (fun i -> [ i ]));
            ("S", List.init n (fun i -> [ i; (i * 7) mod n ]));
          ]
      in
      let t_re = time (fun () -> Counting.count q db) in
      row widths
        [
          string_of_int n;
          string_of_int updates;
          Printf.sprintf "%.3f" (per_update *. 1e6);
          ms t_re;
        ])
    [ 100; 1000; 10000 ];
  Printf.printf
    "\n(Per-update cost is flat in n — constant data complexity — while each\n\
     from-scratch recount grows linearly.)\n"

(* ================================================================== *)
(* Bechamel micro-benchmarks: one Test.make per experiment            *)
(* ================================================================== *)

let bechamel_tests () =
  let open Bechamel in
  let psi1, ktk = Paper_examples.psi1 () in
  let psi2, _ = Paper_examples.psi2 () in
  let support1 = Ucq.compile psi1 in
  let db_small = Ktk.database_of_graph ktk (Graph.clique 5) in
  let db_graph = Generators.random_digraph ~seed:7 2000 8000 in
  let p4 = mkcq 4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] [ 0; 1; 2; 3 ] in
  let triangle = mkcq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ] in
  let f_sat = Cnf.make 2 [ [ 1; 2 ]; [ -1; 2 ] ] in
  let mono_psi =
    Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ]; mkcq 2 [ [ 1; 0 ] ] [ 0; 1 ] ]
  in
  let mono_db = Generators.random_digraph ~seed:5 6 14 in
  [
    Test.make ~name:"E1_euler_figure1" (Staged.stage (fun () ->
        ignore (Scomplex.euler Scomplex.figure1_delta1)));
    Test.make ~name:"E2_build_K34" (Staged.stage (fun () -> ignore (Ktk.make 3 4)));
    Test.make ~name:"E3_psi1_count_small" (Staged.stage (fun () ->
        ignore (evaluate_support support1 db_small)));
    Test.make ~name:"E4_meta_decide_psi1" (Staged.stage (fun () ->
        ignore (Meta.decide psi1)));
    Test.make ~name:"E5_pipeline_2vars" (Staged.stage (fun () ->
        ignore (Pipeline.ucq_of_cnf f_sat)));
    Test.make ~name:"E6_yannakakis_p4" (Staged.stage (fun () ->
        ignore (Counting.count ~strategy:Counting.Yannakakis p4 db_graph)));
    Test.make ~name:"E6_weighted_triangle" (Staged.stage (fun () ->
        ignore (Counting.count ~strategy:Counting.Weighted triangle db_graph)));
    Test.make ~name:"E7_monotonicity_recover" (Staged.stage (fun () ->
        ignore (Monotonicity.recover mono_psi mono_db)));
    Test.make ~name:"E8_classify_psi1" (Staged.stage (fun () ->
        ignore (Classify.analyze psi1)));
    Test.make ~name:"E9_wl_dimension_psi2" (Staged.stage (fun () ->
        ignore (Wl_dimension.exact psi2)));
    Test.make ~name:"E10_lemma60_analysis" (Staged.stage (fun () ->
        ignore (Meta.hereditary_treewidth (Counterexamples.lemma60 3))));
    Test.make ~name:"E11_exhaustive_qh" (Staged.stage (fun () ->
        ignore (Ucq.is_exhaustively_q_hierarchical (path_union 6))));
    Test.make ~name:"E12_karp_luby_1k" (Staged.stage (fun () ->
        let psi =
          Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ]; mkcq 2 [ [ 1; 0 ] ] [ 0; 1 ] ]
        in
        ignore (Karp_luby.estimate ~seed:1 ~samples:1000 psi db_graph)));
    (let sg =
       Signature.make [ Signature.symbol "R" 1; Signature.symbol "S" 2 ]
     in
     let q =
       Cq.make
         (Structure.make sg [ 0; 1 ] [ ("R", [ [ 0 ] ]); ("S", [ [ 0; 1 ] ]) ])
         [ 0 ]
     in
     let st = Dynamic.create_exn q (Structure.make sg (List.init 1000 (fun i -> i)) []) in
     let i = ref 0 in
     Test.make ~name:"E13_dynamic_update" (Staged.stage (fun () ->
         incr i;
         let u = !i mod 1000 in
         Dynamic.insert st "S" [ u; (u * 13) mod 1000 ];
         Dynamic.delete st "S" [ u; (u * 13) mod 1000 ])));
  ]

let run_bechamel () =
  header "Bechamel micro-benchmarks (ns per run, OLS estimate)";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.4) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"ucqc" (bechamel_tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some [ e ] -> e
          | _ -> nan
        in
        (name, est) :: acc)
      results []
  in
  let widths = [ 34; 18 ] in
  row widths [ "benchmark"; "ns/run" ];
  List.iter
    (fun (name, est) -> row widths [ name; Printf.sprintf "%.0f" est ])
    (List.sort compare rows)

(* ================================================================== *)
(* E14: --json — parallel speedup table (BENCH_parallel.json)         *)
(* ================================================================== *)

(** The [--json] mode: measure the wall-clock speedup of the domain pool
    at jobs ∈ {1, 2, 4} on the two engine workloads with the most
    parallel slack — the E3 Ψ₁ inclusion–exclusion count and the
    Karp–Luby fpras at ε = 0.1 — and write the table to
    [BENCH_parallel.json].  Every jobs > 1 result is cross-checked
    against jobs = 1 (exact counts must be equal; KL estimates are a
    function of (seed, jobs), so each is re-run for reproducibility).

    Each run also carries a per-phase breakdown (span aggregates from a
    separate traced execution — the timed runs stay untraced), and the
    file ends with a measurement of the tracing overhead itself on the
    inclusion–exclusion workload. *)

(** One traced (untimed) execution, reduced to the top span aggregates:
    where the run spent its time, by span name. *)
let span_phases (run : unit -> unit) : Telemetry.span_stat list =
  Telemetry.reset ();
  Telemetry.enable ();
  run ();
  Telemetry.disable ();
  let stats = Telemetry.span_stats () in
  Telemetry.reset ();
  List.filteri (fun i _ -> i < 8) stats

let phases_json (indent : string) (phases : Telemetry.span_stat list) : string =
  String.concat ",\n"
    (List.map
       (fun (s : Telemetry.span_stat) ->
         Printf.sprintf
           "%s{\"span\": %S, \"calls\": %d, \"total_ms\": %.3f, \"steps\": %d}"
           indent s.Telemetry.sname s.Telemetry.calls
           (Int64.to_float s.Telemetry.total_ns /. 1e6)
           s.Telemetry.steps)
       phases)

let parallel_json () =
  let jobs_list = [ 1; 2; 4 ] in
  let psi1, ktk = Paper_examples.psi1 () in
  let host =
    let n = 12 in
    Graph.of_edges n (Listx.take (n * (n - 1) / 4) (Graph.edges (Graph.clique n)))
  in
  let db = Ktk.database_of_graph ktk host in
  let kl_psi =
    Ucq.make
      [
        mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ];
        mkcq 3 [ [ 0; 2 ]; [ 2; 1 ] ] [ 0; 1 ];
        mkcq 4 [ [ 0; 2 ]; [ 2; 3 ]; [ 3; 1 ] ] [ 0; 1 ];
      ]
  in
  let kl_db = Generators.random_digraph ~seed:17 80 280 in
  (* [exact_across_jobs]: must every jobs value reproduce the jobs = 1
     result bit-for-bit?  True for exact counting (deterministic
     reduction); the KL estimate is instead a function of (seed, jobs) —
     checked for reproducibility and for staying within the ε band. *)
  let workloads =
    [
      ( "E3_psi1_inclusion_exclusion",
        true,
        fun pool -> float_of_int (Ucq.count_inclusion_exclusion ~pool psi1 db) );
      ( "E12_karp_luby_fpras_eps0.1",
        false,
        fun pool ->
          (Karp_luby.fpras ~seed:1 ~pool ~epsilon:0.1 ~delta:0.05 kl_psi kl_db)
            .Karp_luby.value );
    ]
  in
  let measured =
    List.map
      (fun (name, exact_across_jobs, run) ->
        let per_jobs =
          List.map
            (fun jobs ->
              let pool = Pool.create ~jobs () in
              let value = run pool in
              let value' = run pool in
              let t = wall_time (fun () -> run pool) in
              let phases = span_phases (fun () -> ignore (run pool)) in
              (jobs, t, value, value = value', phases))
            jobs_list
        in
        (name, exact_across_jobs, per_jobs))
      workloads
  in
  (* tracing overhead on the sequential IE workload: the acceptance bar
     for the telemetry layer is < 2% when enabled, ~0 when off *)
  let ie_seq () = ignore (Ucq.count_inclusion_exclusion psi1 db) in
  let t_off = wall_time ~reps:5 ie_seq in
  Telemetry.enable ();
  let t_on =
    wall_time ~reps:5 (fun () ->
        Telemetry.reset ();
        ie_seq ())
  in
  Telemetry.disable ();
  Telemetry.reset ();
  let overhead_pct = 100. *. ((t_on /. t_off) -. 1.) in
  let buf = Buffer.create 2048 in
  let t1_of per_jobs =
    match List.find_opt (fun (j, _, _, _, _) -> j = 1) per_jobs with
    | Some (_, t, _, _, _) -> t
    | None -> nan
  in
  (* provenance stamp: which commit produced these numbers, and when —
     without it two BENCH_parallel.json files cannot be compared *)
  let git_commit = Buildid.git_commit () in
  let timestamp =
    let tm = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"git_commit\": %S,\n" git_commit);
  Buffer.add_string buf (Printf.sprintf "  \"timestamp\": %S,\n" timestamp);
  let cores = Domain.recommended_domain_count () in
  Buffer.add_string buf (Printf.sprintf "  \"cores_available\": %d,\n" cores);
  (* on a single hardware thread a jobs > 1 run measures contention, not
     parallelism: the speedup columns are recorded for the trajectory
     but must not be read as a comparison (tools/bench_check.exe skips
     its speedup bar when this flag is false) *)
  Buffer.add_string buf
    (Printf.sprintf "  \"parallel_comparison_valid\": %b,\n" (cores >= 2));
  Buffer.add_string buf
    (Printf.sprintf "  \"jobs\": [%s],\n"
       (String.concat ", " (List.map string_of_int jobs_list)));
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun wi (name, exact_across_jobs, per_jobs) ->
      let t1 = t1_of per_jobs in
      let v1 =
        match List.find_opt (fun (j, _, _, _, _) -> j = 1) per_jobs with
        | Some (_, _, v, _, _) -> v
        | None -> nan
      in
      Buffer.add_string buf "    {\n";
      Buffer.add_string buf (Printf.sprintf "      \"name\": %S,\n" name);
      Buffer.add_string buf
        (Printf.sprintf "      \"exact_across_jobs\": %b,\n" exact_across_jobs);
      Buffer.add_string buf "      \"runs\": [\n";
      List.iteri
        (fun i (jobs, t, value, reproducible, phases) ->
          let consistent =
            if exact_across_jobs then value = v1
            else
              reproducible
              && abs_float (value -. v1) /. abs_float v1 < 0.2
          in
          Buffer.add_string buf
            (Printf.sprintf
               "        {\"jobs\": %d, \"wall_s\": %.6f, \"speedup_vs_1\": \
                %.3f, \"value\": %.4f, \"reproducible\": %b, \
                \"consistent\": %b,\n         \"phases\": [\n%s\n         \
                ]}%s\n"
               jobs t (t1 /. t) value reproducible consistent
               (phases_json "          " phases)
               (if i = List.length per_jobs - 1 then "" else ",")))
        per_jobs;
      Buffer.add_string buf "      ]\n";
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n"
           (if wi = List.length measured - 1 then "" else ","))
    )
    measured;
  Buffer.add_string buf "  ],\n";
  (* resident-pool evidence: every workload above ran on the same
     process-global worker registry, so the spawn count is the total
     domains created across all [3 workloads × 3 jobs × ~10 runs] — the
     pre-persistent pool spawned (jobs − 1) fresh domains per run *)
  Buffer.add_string buf
    (Printf.sprintf
       "  \"pool\": {\"domains_spawned\": %d, \"domains_idle\": %d},\n"
       (Pool.spawn_count ()) (Pool.idle_count ()));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"telemetry_overhead\": {\"workload\": \
        \"E3_psi1_inclusion_exclusion_seq\", \"off_wall_s\": %.6f, \
        \"on_wall_s\": %.6f, \"overhead_pct\": %.2f}\n"
       t_off t_on overhead_pct);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf);
  prerr_endline "wrote BENCH_parallel.json"

(* ================================================================== *)
(* E19: --json — optimizer effect table (BENCH_optimize.json)         *)
(* ================================================================== *)

(** The redundant-union workload of E19: five single-free-variable path
    disjuncts of which three are cover-redundant — one strictly subsumed
    ([E(x,y),E(y,z)] under [E(x,y)]), one duplicate ([E(x,w)]), one
    subsumed 2-cycle — so the optimizer shrinks ℓ = 5 → 2 and the
    inclusion–exclusion subset count 31 → 3.  [tools/bench_check.exe]
    gates on the written file: counts must agree bit-for-bit, the subset
    and expansion-term counts must strictly shrink, and the optimized
    end-to-end wall time (optimizer pass included) must not lose to the
    unoptimized count. *)
let optimize_json () =
  let psi =
    Ucq.make
      [
        mkcq 2 [ [ 0; 1 ] ] [ 0 ] (* (x) :- E(x,y) — kept *);
        mkcq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0 ] (* subsumed by disjunct 1 *);
        mkcq 2 [ [ 0; 1 ] ] [ 0 ] (* duplicate of disjunct 1 *);
        mkcq 2 [ [ 0; 1 ]; [ 1; 0 ] ] [ 0 ] (* 2-cycle: subsumed too *);
        mkcq 2 [ [ 1; 0 ] ] [ 0 ] (* (x) :- E(y,x) — kept *);
      ]
  in
  let db = Generators.random_digraph ~seed:29 2000 8000 in
  let r = Optimize.run psi in
  let subsets_before, subsets_after = Optimize.expansion_subsets r in
  let support_before = List.length (Ucq.support psi) in
  let support_after = List.length (Ucq.support r.Optimize.optimized) in
  let count_unoptimized = Ucq.count_via_expansion psi db in
  let count_optimized =
    Ucq.count_via_expansion r.Optimize.optimized db
  in
  let wall_unoptimized =
    wall_time ~reps:5 (fun () -> Ucq.count_via_expansion psi db)
  in
  (* the honest comparison re-runs the optimizer every rep: the bar is
     "optimize + count" vs "count", not a pre-paid rewrite *)
  let wall_optimized =
    wall_time ~reps:5 (fun () ->
        let r = Optimize.run psi in
        Ucq.count_via_expansion r.Optimize.optimized db)
  in
  let wall_optimizer_pass = wall_time ~reps:5 (fun () -> Optimize.run psi) in
  let git_commit = Buildid.git_commit () in
  let timestamp =
    let tm = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"kind\": \"optimize\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"git_commit\": %S,\n" git_commit);
  Buffer.add_string buf (Printf.sprintf "  \"timestamp\": %S,\n" timestamp);
  Buffer.add_string buf
    "  \"workload\": \"E19_redundant_union_paths\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"changed\": %b,\n  \"complete\": %b,\n" r.Optimize.changed
       r.Optimize.complete);
  Buffer.add_string buf
    (Printf.sprintf "  \"disjuncts_before\": %d,\n  \"disjuncts_after\": %d,\n"
       (Ucq.length psi)
       (Ucq.length r.Optimize.optimized));
  Buffer.add_string buf
    (Printf.sprintf "  \"subsets_before\": %d,\n  \"subsets_after\": %d,\n"
       subsets_before subsets_after);
  Buffer.add_string buf
    (Printf.sprintf "  \"support_before\": %d,\n  \"support_after\": %d,\n"
       support_before support_after);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"count_unoptimized\": %d,\n  \"count_optimized\": %d,\n  \
        \"counts_equal\": %b,\n"
       count_unoptimized count_optimized
       (count_unoptimized = count_optimized));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"wall_unoptimized_s\": %.6f,\n  \"wall_optimized_s\": %.6f,\n  \
        \"wall_optimizer_pass_s\": %.6f,\n"
       wall_unoptimized wall_optimized wall_optimizer_pass);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup\": %.3f\n"
       (wall_unoptimized /. wall_optimized));
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_optimize.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf);
  prerr_endline "wrote BENCH_optimize.json"

let () =
  if Array.exists (( = ) "--json") Sys.argv then begin
    parallel_json ();
    optimize_json ();
    exit 0
  end;
  Printf.printf "ucqc benchmark harness — regenerating the paper's artefacts\n";
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  run_bechamel ();
  Printf.printf "\nAll experiments completed.\n"
