(** Helpers for the benchmark harness: wall-clock timing for the scaling
    tables and fixed-width table printing. *)

(** [time f] runs [f] repeatedly until at least ~50ms of CPU time has
    accumulated and returns the per-run time in seconds. *)
let time (f : unit -> 'a) : float =
  let t0 = Sys.time () in
  ignore (f ());
  let once = Sys.time () -. t0 in
  if once > 0.05 then once
  else begin
    let reps = max 1 (int_of_float (0.05 /. (once +. 1e-9))) in
    let t0 = Sys.time () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Sys.time () -. t0) /. float_of_int reps
  end

(** [wall_time f] measures wall-clock seconds per run (median of [reps]
    runs).  [time] above uses CPU time, which sums over OCaml domains and
    would report a parallel speedup of at most 1; the speedup tables must
    use wall clock. *)
let wall_time ?(reps = 3) (f : unit -> 'a) : float =
  let one () =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let ts = List.sort compare (List.init (max 1 reps) (fun _ -> one ())) in
  List.nth ts (List.length ts / 2)

(** [row widths cells] prints one table row with right-padded cells. *)
let row (widths : int list) (cells : string list) : unit =
  List.iter2
    (fun w c -> Printf.printf "%-*s  " w c)
    widths cells;
  print_newline ()

let header (title : string) : unit =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let subheader (s : string) : unit = Printf.printf "\n--- %s ---\n" s

let ms (t : float) : string = Printf.sprintf "%.3f" (t *. 1000.)

(** [us_per t n] pretty-prints time per unit of size. *)
let us_per (t : float) (n : int) : string =
  Printf.sprintf "%.3f" (t *. 1e6 /. float_of_int (max 1 n))
