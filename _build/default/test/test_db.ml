(** Tests for the relational-algebra engine, variable elimination, the
    counting dispatch and the database generators. *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let mkq n edges free =
  Cq.make (Structure.make sg_e (List.init n (fun i -> i)) [ ("E", edges) ]) free

let test_relation_ops () =
  let r1 = Relation.make [ 1; 2 ] [ [ 10; 20 ]; [ 10; 21 ]; [ 11; 20 ] ] in
  let r2 = Relation.make [ 2; 3 ] [ [ 20; 30 ]; [ 21; 31 ]; [ 22; 32 ] ] in
  let j = Relation.join r1 r2 in
  Alcotest.(check (list int)) "join vars" [ 1; 2; 3 ] j.Relation.vars;
  Alcotest.(check int) "join cardinality" 3 (Relation.cardinality j);
  let p = Relation.project j [ 1 ] in
  Alcotest.(check int) "project dedupes" 2 (Relation.cardinality p);
  let s = Relation.semijoin r1 r2 in
  Alcotest.(check int) "semijoin" 3 (Relation.cardinality s);
  let e = Relation.eliminate r1 1 in
  Alcotest.(check (list int)) "eliminate vars" [ 2 ] e.Relation.vars;
  Alcotest.(check int) "eliminate dedupes" 2 (Relation.cardinality e)

let test_of_atom_repetition () =
  (* atom E(x, x) keeps only diagonal tuples *)
  let r = Relation.of_atom [ 5; 5 ] [ [ 1; 1 ]; [ 1; 2 ]; [ 3; 3 ] ] in
  Alcotest.(check (list int)) "vars collapsed" [ 5 ] r.Relation.vars;
  Alcotest.(check int) "diagonal only" 2 (Relation.cardinality r)

let test_varelim_vs_naive () =
  let db = Generators.random_digraph ~seed:3 7 15 in
  let queries =
    [
      (* ∃y. E(x, y): out-degree >= 1 *)
      ("exists out-edge", mkq 2 [ [ 0; 1 ] ] [ 0 ]);
      (* ∃y. E(x, y) ∧ E(y, z): connected by a 2-walk *)
      ("2-walk endpoints", mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 2 ]);
      (* quantifier-free triangle *)
      ("triangle qf", mkq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ]);
      (* boolean: is there any triangle *)
      ("boolean triangle", mkq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] []);
      (* isolated free variable *)
      ("isolated free", mkq 2 [ [ 0; 0 ] ] [ 0; 1 ]);
    ]
  in
  List.iter
    (fun (name, q) ->
      Alcotest.(check int) name
        (Counting.count ~strategy:Counting.Naive q db)
        (Varelim.count q db))
    queries

let test_varelim_answer_set () =
  let db = Generators.path_db 4 in
  (* answers to ∃y. E(x,y) on 0->1->2->3: x in {0,1,2} *)
  let q = mkq 2 [ [ 0; 1 ] ] [ 0 ] in
  Alcotest.(check (list (list int)))
    "answer set" [ [ 0 ]; [ 1 ]; [ 2 ] ] (Varelim.answers q db)

let test_relation_edge_cases () =
  (* join with disjoint variable sets is a cartesian product *)
  let r1 = Relation.make [ 1 ] [ [ 10 ]; [ 11 ] ] in
  let r2 = Relation.make [ 2 ] [ [ 20 ]; [ 21 ]; [ 22 ] ] in
  Alcotest.(check int) "cartesian" 6 (Relation.cardinality (Relation.join r1 r2));
  (* joining with truth / falsity *)
  Alcotest.(check int) "join truth" 2
    (Relation.cardinality (Relation.join r1 Relation.truth));
  Alcotest.(check int) "join falsity" 0
    (Relation.cardinality (Relation.join r1 Relation.falsity));
  (* project to nothing: nonempty relation becomes truth *)
  let p = Relation.project r1 [] in
  Alcotest.(check int) "nullary projection" 1 (Relation.cardinality p)

let test_ternary_counting () =
  (* exercise every engine on an arity-3 signature *)
  let sg = Signature.make [ Signature.symbol "T" 3 ] in
  let db = Generators.random_structure ~seed:8 sg 5 30 in
  let q2 =
    (* (x, y) :- ∃z T(x, z, y) *)
    Cq.make
      (Structure.make sg [ 0; 1; 2 ] [ ("T", [ [ 0; 2; 1 ] ]) ])
      [ 0; 1 ]
  in
  let qf =
    (* (x, y, z) :- T(x, y, z), T(y, z, x): cyclic ternary *)
    Cq.make
      (Structure.make sg [ 0; 1; 2 ] [ ("T", [ [ 0; 1; 2 ]; [ 1; 2; 0 ] ]) ])
      [ 0; 1; 2 ]
  in
  let naive q = Counting.count ~strategy:Counting.Naive q db in
  Alcotest.(check int) "varelim ternary" (naive q2) (Varelim.count q2 db);
  Alcotest.(check int) "auto ternary qf" (naive qf) (Counting.count qf db);
  Alcotest.(check int) "treedec ternary" (naive qf)
    (Counting.count ~strategy:Counting.Treedec qf db);
  Alcotest.(check int) "weighted ternary" (naive qf)
    (Counting.count ~strategy:Counting.Weighted qf db)

let test_counting_dispatch () =
  let db = Generators.random_digraph ~seed:5 8 20 in
  let acyclic = mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ] in
  let cyclic = mkq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ] in
  let naive q = Counting.count ~strategy:Counting.Naive q db in
  Alcotest.(check int) "auto acyclic" (naive acyclic) (Counting.count acyclic db);
  Alcotest.(check int) "auto cyclic" (naive cyclic) (Counting.count cyclic db);
  Alcotest.(check int) "yannakakis" (naive acyclic)
    (Counting.count ~strategy:Counting.Yannakakis acyclic db);
  Alcotest.(check int) "treedec" (naive cyclic)
    (Counting.count ~strategy:Counting.Treedec cyclic db);
  Alcotest.check_raises "yannakakis refuses cyclic"
    (Counting.Unsupported "Yannakakis counting requires an acyclic query")
    (fun () -> ignore (Counting.count ~strategy:Counting.Yannakakis cyclic db))

let test_empty_database () =
  let db = Structure.make sg_e [] [] in
  let q = mkq 2 [ [ 0; 1 ] ] [ 0 ] in
  Alcotest.(check int) "no answers on empty db" 0 (Varelim.count q db);
  let boolean_empty = Cq.make (Structure.make sg_e [] []) [] in
  Alcotest.(check int) "empty boolean query satisfied" 1 (Varelim.count boolean_empty db)

let test_enumerate_matches_answers () =
  let db = Generators.random_digraph ~seed:61 7 16 in
  List.iter
    (fun (name, q) ->
      let e = Enumerate.prepare q db in
      Alcotest.(check (list (list int))) name
        (Varelim.answers q db) (Enumerate.to_list e))
    [
      ("edge", mkq 2 [ [ 0; 1 ] ] [ 0; 1 ]);
      ("path3", mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ]);
      ("star", mkq 3 [ [ 0; 1 ]; [ 0; 2 ] ] [ 0; 1; 2 ]);
      ("two components", mkq 4 [ [ 0; 1 ]; [ 2; 3 ] ] [ 0; 1; 2; 3 ]);
      ("isolated var", mkq 3 [ [ 0; 1 ] ] [ 0; 1; 2 ]);
      ("no atoms", mkq 1 [] [ 0 ]);
    ]

let test_enumerate_lazy_prefix () =
  (* taking a prefix does not force the whole enumeration *)
  let db = Generators.clique_db 30 in
  let q = mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ] in
  let e = Enumerate.prepare q db in
  let firsts = List.of_seq (Seq.take 5 (Enumerate.answers e)) in
  Alcotest.(check int) "five answers" 5 (List.length firsts);
  List.iter
    (fun a ->
      Alcotest.(check bool) "is an answer" true
        (Hom.exists ~fixed:(List.combine [ 0; 1; 2 ] a) (Cq.structure q) db))
    firsts

let test_enumerate_rejects () =
  let db = Generators.path_db 3 in
  let tri = mkq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ] in
  Alcotest.check_raises "cyclic rejected"
    (Enumerate.Unsupported "Enumerate: query must be acyclic") (fun () ->
      ignore (Enumerate.prepare tri db));
  let quantified = mkq 2 [ [ 0; 1 ] ] [ 0 ] in
  Alcotest.check_raises "quantified rejected"
    (Enumerate.Unsupported "Enumerate: query must be quantifier-free")
    (fun () -> ignore (Enumerate.prepare quantified db))

let test_nullary_and_unary_relations () =
  (* arity-0 and arity-1 symbols through every engine *)
  let sg =
    Signature.make
      [ Signature.symbol "Flag" 0; Signature.symbol "P" 1; Signature.symbol "E" 2 ]
  in
  let db_on =
    Structure.make sg [ 0; 1; 2 ]
      [ ("Flag", [ [] ]); ("P", [ [ 0 ]; [ 1 ] ]); ("E", [ [ 0; 1 ]; [ 1; 2 ] ]) ]
  in
  let db_off =
    Structure.make sg [ 0; 1; 2 ]
      [ ("P", [ [ 0 ]; [ 1 ] ]); ("E", [ [ 0; 1 ]; [ 1; 2 ] ]) ]
  in
  (* (x) :- Flag(), P(x), E(x, y) with y quantified *)
  let q =
    Cq.make
      (Structure.make sg [ 0; 1 ]
         [ ("Flag", [ [] ]); ("P", [ [ 0 ] ]); ("E", [ [ 0; 1 ] ]) ])
      [ 0 ]
  in
  let naive d = Counting.count ~strategy:Counting.Naive q d in
  Alcotest.(check int) "flag on" (naive db_on) (Varelim.count q db_on);
  Alcotest.(check int) "flag on value" 2 (Varelim.count q db_on);
  Alcotest.(check int) "flag off kills answers" 0 (Varelim.count q db_off);
  (* quantifier-free variant through the DP engines *)
  let qf =
    Cq.of_structure
      (Structure.make sg [ 0; 1 ]
         [ ("Flag", [ [] ]); ("P", [ [ 0 ] ]); ("E", [ [ 0; 1 ] ]) ])
  in
  Alcotest.(check int) "treedec with nullary" (naive db_on)
    (Counting.count ~strategy:Counting.Treedec qf db_on);
  Alcotest.(check int) "weighted with nullary"
    (Counting.count ~strategy:Counting.Naive qf db_on)
    (Counting.count ~strategy:Counting.Weighted qf db_on);
  Alcotest.(check int) "nice with nullary"
    (Counting.count ~strategy:Counting.Naive qf db_on)
    (Nice_count.count (Cq.structure qf) db_on);
  Alcotest.(check int) "nice nullary off" 0 (Nice_count.count (Cq.structure qf) db_off)

let test_generators () =
  let d = Generators.path_db 5 in
  Alcotest.(check int) "path tuples" 4 (Structure.num_tuples d);
  let c = Generators.cycle_db 5 in
  Alcotest.(check int) "cycle tuples" 5 (Structure.num_tuples c);
  let k = Generators.clique_db 4 in
  Alcotest.(check int) "clique tuples" 12 (Structure.num_tuples k);
  let r = Generators.random_digraph ~seed:1 10 30 in
  Alcotest.(check int) "universe size" 10 (Structure.universe_size r);
  (* determinism *)
  Alcotest.(check bool) "seeded determinism" true
    (Structure.equal r (Generators.random_digraph ~seed:1 10 30))

let test_wvarelim () =
  let db = Generators.random_digraph ~seed:9 8 22 in
  List.iter
    (fun (name, edges, n) ->
      let q = mkq n edges (List.init n (fun i -> i)) in
      Alcotest.(check int) name
        (Hom.count (Cq.structure q) db)
        (Counting.count ~strategy:Counting.Weighted q db))
    [
      ("edge", [ [ 0; 1 ] ], 2);
      ("triangle", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ], 3);
      ("C4", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ] ], 4);
      ("diamond", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ]; [ 1; 3 ]; [ 3; 2 ] ], 4);
      ("no atoms", [], 2);
    ]

let qcheck_varelim =
  let open QCheck in
  let gen_query =
    make
      ~print:(fun (n, edges, free) ->
        Printf.sprintf "n=%d |E|=%d X={%s}" n (List.length edges)
          (String.concat "," (List.map string_of_int free)))
      (Gen.(>>=) (Gen.int_range 1 4) (fun n ->
           Gen.(>>=)
             (Gen.list_size (Gen.int_range 0 4)
                (Gen.pair (Gen.int_range 0 3) (Gen.int_range 0 3)))
             (fun pairs ->
               Gen.map
                 (fun mask ->
                   ( n,
                     List.map (fun (u, v) -> [ u mod n; v mod n ]) pairs,
                     List.filter (fun i -> mask land (1 lsl i) <> 0)
                       (List.init n (fun i -> i)) ))
                 (Gen.int_range 0 15))))
  in
  [
    Test.make ~name:"weighted varelim agrees with backtracking" ~count:80
      (pair gen_query (int_range 0 1000))
      (fun ((n, edges, _), seed) ->
        let q = mkq n edges (List.init n (fun i -> i)) in
        let db = Generators.random_digraph ~seed 5 10 in
        Counting.count ~strategy:Counting.Weighted q db
        = Hom.count (Cq.structure q) db);
    Test.make ~name:"varelim agrees with naive answer counting" ~count:100
      (pair gen_query (int_range 0 1000))
      (fun ((n, edges, free), seed) ->
        let q = mkq n edges free in
        let db = Generators.random_digraph ~seed 5 10 in
        Varelim.count q db = Counting.count ~strategy:Counting.Naive q db);
    Test.make ~name:"enumeration agrees with varelim answers" ~count:60
      (pair gen_query (int_range 0 1000))
      (fun ((n, edges, _), seed) ->
        let q = mkq n edges (List.init n (fun i -> i)) in
        let db = Generators.random_digraph ~seed 5 10 in
        match Enumerate.prepare q db with
        | e -> Enumerate.to_list e = Varelim.answers q db
        | exception Enumerate.Unsupported _ -> not (Cq.is_acyclic q));
    Test.make ~name:"answer set size equals count" ~count:60
      (pair gen_query (int_range 0 1000))
      (fun ((n, edges, free), seed) ->
        let q = mkq n edges free in
        let db = Generators.random_digraph ~seed 4 8 in
        List.length (Varelim.answers q db) = Varelim.count q db);
  ]

let qcheck_qgen =
  let open QCheck in
  let sg = Generators.graph_signature in
  [
    Test.make ~name:"qgen CQs: all engines agree" ~count:80
      (pair (int_range 0 100_000) (int_range 0 1000))
      (fun (qseed, dseed) ->
        let q = Qgen.random_cq ~seed:qseed ~max_vars:4 ~max_atoms:4 sg in
        let db = Generators.random_digraph ~seed:dseed 5 10 in
        let naive = Counting.count ~strategy:Counting.Naive q db in
        Counting.count q db = naive && Varelim.count q db = naive);
    Test.make ~name:"qgen acyclic CQs: yannakakis and enumeration agree" ~count:80
      (pair (int_range 0 100_000) (int_range 0 1000))
      (fun (qseed, dseed) ->
        let q = Qgen.random_acyclic_cq ~seed:qseed ~max_vars:5 sg in
        let db = Generators.random_digraph ~seed:dseed 5 12 in
        Cq.is_acyclic q
        && Counting.count ~strategy:Counting.Yannakakis q db
           = Counting.count ~strategy:Counting.Naive q db
        && List.length (Enumerate.to_list (Enumerate.prepare q db))
           = Counting.count ~strategy:Counting.Naive q db);
    Test.make ~name:"qgen UCQs: IE and expansion agree with naive" ~count:40
      (pair (int_range 0 100_000) (int_range 0 1000))
      (fun (qseed, dseed) ->
        let psi =
          Qgen.random_ucq ~seed:qseed ~max_disjuncts:3 ~max_vars:4 ~max_atoms:3 sg
        in
        let db = Generators.random_digraph ~seed:dseed 4 8 in
        let naive = Ucq.count_naive psi db in
        Ucq.count_inclusion_exclusion psi db = naive
        && Ucq.count_via_expansion psi db = naive);
  ]

let suite =
  [
    ( "db",
      [
        Alcotest.test_case "relation algebra" `Quick test_relation_ops;
        Alcotest.test_case "atom with repeated vars" `Quick test_of_atom_repetition;
        Alcotest.test_case "varelim vs naive" `Quick test_varelim_vs_naive;
        Alcotest.test_case "weighted varelim" `Quick test_wvarelim;
        Alcotest.test_case "answer sets" `Quick test_varelim_answer_set;
        Alcotest.test_case "relation edge cases" `Quick test_relation_edge_cases;
        Alcotest.test_case "ternary relations" `Quick test_ternary_counting;
        Alcotest.test_case "counting dispatch" `Quick test_counting_dispatch;
        Alcotest.test_case "empty database" `Quick test_empty_database;
        Alcotest.test_case "enumeration matches answers" `Quick
          test_enumerate_matches_answers;
        Alcotest.test_case "enumeration is lazy" `Quick test_enumerate_lazy_prefix;
        Alcotest.test_case "enumeration rejections" `Quick test_enumerate_rejects;
        Alcotest.test_case "nullary and unary relations" `Quick
          test_nullary_and_unary_relations;
        Alcotest.test_case "generators" `Quick test_generators;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_varelim
      @ List.map QCheck_alcotest.to_alcotest qcheck_qgen );
  ]
