(** Tests for arbitrary-precision integers, rationals, and exact linear
    algebra. *)

let bi = Alcotest.testable (fun fmt x -> Bigint.pp fmt x) Bigint.equal

let test_roundtrip () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "roundtrip %d" n)
        (Some n)
        (Bigint.to_int_opt (Bigint.of_int n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 45; max_int; min_int + 1 ]

let test_string () =
  Alcotest.(check string) "zero" "0" (Bigint.to_string Bigint.zero);
  Alcotest.(check string) "negative" "-12345" (Bigint.to_string (Bigint.of_int (-12345)));
  Alcotest.(check string)
    "big product"
    (let a = Bigint.of_string "123456789012345678901234567890" in
     Bigint.to_string a)
    "123456789012345678901234567890";
  Alcotest.(check bi)
    "of_string inverse" (Bigint.of_int 987654321)
    (Bigint.of_string (Bigint.to_string (Bigint.of_int 987654321)))

let test_arithmetic_large () =
  (* (10^20)^2 = 10^40 *)
  let e20 = Bigint.pow (Bigint.of_int 10) 20 in
  let e40 = Bigint.mul e20 e20 in
  Alcotest.(check string)
    "10^40"
    ("1" ^ String.make 40 '0')
    (Bigint.to_string e40);
  (* division round-trip *)
  let q, r = Bigint.divmod e40 (Bigint.of_int 7) in
  Alcotest.(check bi) "divmod identity" e40
    (Bigint.add (Bigint.mul q (Bigint.of_int 7)) r)

let test_factorial () =
  let rec fact n = if n = 0 then Bigint.one else Bigint.mul (Bigint.of_int n) (fact (n - 1)) in
  Alcotest.(check string)
    "30!" "265252859812191058636308480000000"
    (Bigint.to_string (fact 30))

let test_gcd () =
  Alcotest.(check bi) "gcd" (Bigint.of_int 6)
    (Bigint.gcd (Bigint.of_int 54) (Bigint.of_int (-24)));
  Alcotest.(check bi) "gcd with zero" (Bigint.of_int 7)
    (Bigint.gcd (Bigint.of_int 7) Bigint.zero)

let test_negative_division () =
  (* truncated semantics matching OCaml *)
  List.iter
    (fun (a, b) ->
      let q, r = Bigint.divmod (Bigint.of_int a) (Bigint.of_int b) in
      Alcotest.(check (option int)) (Printf.sprintf "%d / %d" a b) (Some (a / b))
        (Bigint.to_int_opt q);
      Alcotest.(check (option int)) (Printf.sprintf "%d mod %d" a b) (Some (a mod b))
        (Bigint.to_int_opt r))
    [ (-7, 2); (7, -2); (-7, -2); (-100, 7); (100, -7) ]

let test_pow_edge_cases () =
  Alcotest.(check string) "0^0" "1" (Bigint.to_string (Bigint.pow Bigint.zero 0));
  Alcotest.(check string) "(-2)^63"
    "-9223372036854775808"
    (Bigint.to_string (Bigint.pow (Bigint.of_int (-2)) 63));
  Alcotest.(check string) "negative of_string" "-42"
    (Bigint.to_string (Bigint.of_string "-42"))

let test_rational () =
  let half = Rational.make (Bigint.of_int 1) (Bigint.of_int 2) in
  let third = Rational.make (Bigint.of_int 1) (Bigint.of_int 3) in
  let sum = Rational.add half third in
  Alcotest.(check string) "1/2 + 1/3" "5/6" (Rational.to_string sum);
  Alcotest.(check string) "normalisation" "2/3"
    (Rational.to_string (Rational.make (Bigint.of_int (-4)) (Bigint.of_int (-6))));
  Alcotest.(check bool) "comparison" true (Rational.compare third half < 0);
  Alcotest.(check string) "division" "3/2"
    (Rational.to_string (Rational.div half third))

let test_linalg_solve () =
  (* 2x + y = 5, x - y = 1  =>  x = 2, y = 1 *)
  let q = Rational.of_int in
  let m = [| [| q 2; q 1 |]; [| q 1; q (-1) |] |] in
  let b = [| q 5; q 1 |] in
  match Linalg.solve m b with
  | None -> Alcotest.fail "unexpected singular"
  | Some x ->
      Alcotest.(check string) "x" "2" (Rational.to_string x.(0));
      Alcotest.(check string) "y" "1" (Rational.to_string x.(1))

let test_linalg_singular () =
  let q = Rational.of_int in
  let m = [| [| q 1; q 2 |]; [| q 2; q 4 |] |] in
  Alcotest.(check bool) "singular detected" true (Linalg.solve m [| q 1; q 2 |] = None);
  Alcotest.(check int) "rank 1" 1 (Linalg.rank m)

let qcheck_bigint =
  let open QCheck in
  let num = int_range (-1_000_000_000) 1_000_000_000 in
  [
    Test.make ~name:"add agrees with int" ~count:500 (pair num num) (fun (a, b) ->
        Bigint.to_int_opt (Bigint.add (Bigint.of_int a) (Bigint.of_int b)) = Some (a + b));
    Test.make ~name:"sub agrees with int" ~count:500 (pair num num) (fun (a, b) ->
        Bigint.to_int_opt (Bigint.sub (Bigint.of_int a) (Bigint.of_int b)) = Some (a - b));
    Test.make ~name:"mul agrees with int" ~count:500
      (pair (int_range (-1_000_000) 1_000_000) (int_range (-1_000_000) 1_000_000))
      (fun (a, b) ->
        Bigint.to_int_opt (Bigint.mul (Bigint.of_int a) (Bigint.of_int b)) = Some (a * b));
    Test.make ~name:"divmod agrees with int" ~count:500
      (pair num (int_range 1 100_000))
      (fun (a, b) ->
        let q, r = Bigint.divmod (Bigint.of_int a) (Bigint.of_int b) in
        Bigint.to_int_opt q = Some (a / b) && Bigint.to_int_opt r = Some (a mod b));
    Test.make ~name:"compare agrees with int" ~count:500 (pair num num)
      (fun (a, b) ->
        Stdlib.compare a b = Bigint.compare (Bigint.of_int a) (Bigint.of_int b));
    Test.make ~name:"to_string agrees with int" ~count:500 num (fun a ->
        string_of_int a = Bigint.to_string (Bigint.of_int a));
    Test.make ~name:"string roundtrip (large)" ~count:200 (pair num num)
      (fun (a, b) ->
        let x = Bigint.mul (Bigint.of_int a) (Bigint.of_int b) in
        Bigint.equal x (Bigint.of_string (Bigint.to_string x)));
    Test.make ~name:"rational field laws sample" ~count:200
      (triple (int_range (-1000) 1000) (int_range 1 1000) (int_range 1 1000))
      (fun (a, b, c) ->
        let x = Rational.make (Bigint.of_int a) (Bigint.of_int b) in
        let y = Rational.make (Bigint.of_int c) (Bigint.of_int b) in
        Rational.equal
          (Rational.mul (Rational.add x y) (Rational.of_int b))
          (Rational.of_int (a + c)));
  ]

let suite =
  [
    ( "bigint",
      [
        Alcotest.test_case "int roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "string conversion" `Quick test_string;
        Alcotest.test_case "large arithmetic" `Quick test_arithmetic_large;
        Alcotest.test_case "factorial 30" `Quick test_factorial;
        Alcotest.test_case "gcd" `Quick test_gcd;
        Alcotest.test_case "negative division" `Quick test_negative_division;
        Alcotest.test_case "pow edge cases" `Quick test_pow_edge_cases;
        Alcotest.test_case "rationals" `Quick test_rational;
        Alcotest.test_case "linear solve" `Quick test_linalg_solve;
        Alcotest.test_case "singular matrix" `Quick test_linalg_singular;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_bigint );
  ]
