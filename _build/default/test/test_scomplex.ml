(** Tests for simplicial complexes, the reduced Euler characteristic
    (Definition 40, Figure 1), domination (Lemmas 41/42), and power
    complexes (Definition 46, Lemma 47). *)

let test_figure1 () =
  (* the paper's worked values: χ̂(Δ1) = -2, χ̂(Δ2) = 0 *)
  let d1 = Scomplex.figure1_delta1 and d2 = Scomplex.figure1_delta2 in
  Alcotest.(check int) "brute d1" (-2) (Scomplex.euler_brute d1);
  Alcotest.(check int) "facet-IE d1" (-2) (Scomplex.euler_facet_ie d1);
  Alcotest.(check int) "euler d1" (-2) (Scomplex.euler d1);
  Alcotest.(check int) "brute d2" 0 (Scomplex.euler_brute d2);
  Alcotest.(check int) "facet-IE d2" 0 (Scomplex.euler_facet_ie d2);
  Alcotest.(check int) "euler d2" 0 (Scomplex.euler d2);
  (* face counts quoted in the Figure 1 caption: Δ1 has 1 + 6 + 4 + 1 faces *)
  Alcotest.(check int) "d1 face count" 12 (List.length (Scomplex.faces d1))

let test_sphere_boundaries () =
  (* boundary of the 3-simplex is a 2-sphere: chi^ = 1 *)
  let tetra_boundary =
    Scomplex.make [ 1; 2; 3; 4 ]
      [ [ 1; 2; 3 ]; [ 1; 2; 4 ]; [ 1; 3; 4 ]; [ 2; 3; 4 ] ]
  in
  Alcotest.(check int) "S^2" 1 (Scomplex.euler tetra_boundary);
  (* boundary of the triangle is a 1-sphere: chi^ = -1 *)
  let circle = Scomplex.make [ 1; 2; 3 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ] ] in
  Alcotest.(check int) "S^1" (-1) (Scomplex.euler circle);
  (* the full simplex (ground set is a facet): chi^ = 0 *)
  let full = Scomplex.make [ 1; 2; 3 ] [ [ 1; 2; 3 ] ] in
  Alcotest.(check int) "full simplex" 0 (Scomplex.euler full)

let test_disjoint_union_formula () =
  (* chi^(A ⊔ B) = chi^(A) + chi^(B) + 1 (the empty face is shared) *)
  let circle a b c = [ [ a; b ]; [ b; c ]; [ a; c ] ] in
  let two_circles =
    Scomplex.make [ 1; 2; 3; 4; 5; 6 ] (circle 1 2 3 @ circle 4 5 6)
  in
  Alcotest.(check int) "two circles" (-1) (Scomplex.euler two_circles)

let test_normalisation () =
  (* non-maximal facets are absorbed; uncovered elements gain singletons *)
  let c = Scomplex.make [ 1; 2; 3 ] [ [ 1; 2 ]; [ 1 ] ] in
  Alcotest.(check int) "two facets" 2 (List.length (Scomplex.facets c));
  Alcotest.(check bool) "singleton 3 added" true (Scomplex.is_face c [ 3 ]);
  Alcotest.(check bool) "downward closure" true (Scomplex.is_face c [ 2 ]);
  Alcotest.(check bool) "empty face" true (Scomplex.is_face c []);
  Alcotest.(check bool) "non-face" false (Scomplex.is_face c [ 2; 3 ])

let test_domination () =
  (* in Δ1, no element dominates another (irreducible) *)
  Alcotest.(check bool) "Δ1 irreducible" true
    (Scomplex.is_irreducible Scomplex.figure1_delta1);
  (* in the complex with facets {1,2} and {1,3}, element 1 dominates 2 and 3 *)
  let c = Scomplex.make [ 1; 2; 3 ] [ [ 1; 2 ]; [ 1; 3 ] ] in
  Alcotest.(check bool) "1 dominates 2" true (Scomplex.dominates c 1 2);
  Alcotest.(check bool) "2 does not dominate 1" false (Scomplex.dominates c 2 1);
  Alcotest.(check bool) "reducible" false (Scomplex.is_irreducible c);
  (* Lemma 42: deleting a dominated element preserves χ̂ *)
  Alcotest.(check int) "euler preserved" (Scomplex.euler_brute c)
    (Scomplex.euler_brute (Scomplex.delete c 2));
  (* this cone has vanishing χ̂ *)
  Alcotest.(check int) "cone is 0" 0 (Scomplex.euler c)

let test_reduce () =
  let c = Scomplex.make [ 1; 2; 3 ] [ [ 1; 2 ]; [ 1; 3 ] ] in
  let r = Scomplex.reduce c in
  Alcotest.(check bool) "reduces to trivial" true (Scomplex.is_trivial r)

let test_isomorphic () =
  let c1 = Scomplex.make [ 1; 2; 3 ] [ [ 1; 2 ]; [ 2; 3 ] ] in
  let c2 = Scomplex.make [ 7; 8; 9 ] [ [ 8; 9 ]; [ 7; 9 ] ] in
  Alcotest.(check bool) "path complexes isomorphic" true (Scomplex.isomorphic c1 c2);
  let c3 = Scomplex.make [ 1; 2; 3 ] [ [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ] in
  Alcotest.(check bool) "different face counts" false (Scomplex.isomorphic c1 c3)

let test_power_complex_figure1 () =
  (* the paper's worked example after Lemma 47, adjusted to our facet
     order: Δ1 has sorted facets F1={1,2}, F2={1,3}, F3={1,4}, F4={2,3,4},
     so b(1) = {4}, b(2) = {2,3}, b(3) = {1,3}, b(4) = {1,2}. *)
  let pc, assignment = Power_complex.of_complex Scomplex.figure1_delta1 in
  Alcotest.(check (list (list int)))
    "ground of power complex"
    [ [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ]; [ 4 ] ]
    pc.Power_complex.ground;
  Alcotest.(check (list int)) "b(1)" [ 4 ] (List.assoc 1 assignment);
  Alcotest.(check (list int)) "b(2)" [ 2; 3 ] (List.assoc 2 assignment);
  (* Lemma 47: Δ ≅ Δ_{Ω,U} *)
  Alcotest.(check bool) "isomorphic to power complex" true
    (Scomplex.isomorphic Scomplex.figure1_delta1 (Power_complex.to_complex pc));
  (* Euler characteristics agree across all three algorithms *)
  Alcotest.(check int) "signed cover" (-2) (Power_complex.euler_signed_cover pc);
  Alcotest.(check int) "independent sets" (-2)
    (Power_complex.euler_independent_sets pc)

let test_power_complex_rejects () =
  Alcotest.(check bool) "universe member rejected" true
    (try
       ignore (Power_complex.make [ 1; 2 ] [ [ 1; 2 ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "reducible complex rejected" true
    (try
       ignore
         (Power_complex.of_complex (Scomplex.make [ 1; 2; 3 ] [ [ 1; 2 ]; [ 1; 3 ] ]));
       false
     with Invalid_argument _ -> true)

let qcheck_complex =
  let open QCheck in
  let gen_complex =
    make
      ~print:(fun facets ->
        String.concat " "
          (List.map
             (fun f -> "{" ^ String.concat "," (List.map string_of_int f) ^ "}")
             facets))
      (Gen.list_size (Gen.int_range 1 4)
         (Gen.map
            (fun vs -> List.sort_uniq compare vs)
            (Gen.list_size (Gen.int_range 1 3) (Gen.int_range 1 5))))
  in
  let build facets = Scomplex.make [ 1; 2; 3; 4; 5 ] facets in
  [
    Test.make ~name:"facet-IE agrees with brute euler" ~count:150 gen_complex
      (fun facets ->
        let c = build facets in
        Scomplex.euler_facet_ie c = Scomplex.euler_brute c);
    Test.make ~name:"reduction preserves euler" ~count:150 gen_complex
      (fun facets ->
        let c = build facets in
        let r = Scomplex.reduce c in
        (if Scomplex.is_trivial r then 0 else Scomplex.euler_brute r)
        = Scomplex.euler_brute c);
    Test.make ~name:"euler main dispatch agrees with brute" ~count:150 gen_complex
      (fun facets ->
        let c = build facets in
        Scomplex.euler c = Scomplex.euler_brute c);
    Test.make ~name:"power complex euler algorithms agree" ~count:100
      (small_list (small_list (int_range 1 4)))
      (fun members ->
        let members =
          List.filter_map
            (fun m ->
              let m = List.sort_uniq compare m in
              if m = [] || m = [ 1; 2; 3; 4 ] then None else Some m)
            members
        in
        match members with
        | [] -> true
        | _ ->
            let pc = Power_complex.make [ 1; 2; 3; 4 ] members in
            Power_complex.euler_signed_cover pc
            = Power_complex.euler_independent_sets pc);
    Test.make ~name:"Lemma 47 roundtrip on irreducible complexes" ~count:100
      gen_complex (fun facets ->
        let c = Scomplex.reduce (build facets) in
        if
          Scomplex.is_trivial c
          || List.exists (fun f -> f = Scomplex.ground c) (Scomplex.facets c)
        then true
        else begin
          let pc, _ = Power_complex.of_complex c in
          Scomplex.isomorphic c (Power_complex.to_complex pc)
          && Power_complex.euler_signed_cover pc = Scomplex.euler_brute c
        end);
  ]

let suite =
  [
    ( "scomplex",
      [
        Alcotest.test_case "Figure 1 Euler characteristics" `Quick test_figure1;
        Alcotest.test_case "sphere boundaries" `Quick test_sphere_boundaries;
        Alcotest.test_case "disjoint union formula" `Quick test_disjoint_union_formula;
        Alcotest.test_case "normalisation" `Quick test_normalisation;
        Alcotest.test_case "domination (Lemmas 41/42)" `Quick test_domination;
        Alcotest.test_case "reduce" `Quick test_reduce;
        Alcotest.test_case "complex isomorphism" `Quick test_isomorphic;
        Alcotest.test_case "power complex of Figure 1" `Quick test_power_complex_figure1;
        Alcotest.test_case "power complex preconditions" `Quick
          test_power_complex_rejects;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_complex );
  ]
