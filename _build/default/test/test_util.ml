(** Tests for the combinatorics and list utilities. *)

let test_subsets () =
  Alcotest.(check int) "2^4 subsets" 16 (List.length (Combinat.subsets 4));
  Alcotest.(check int)
    "nonempty" 15
    (List.length (Combinat.nonempty_subsets 4));
  Alcotest.(check (list (list int)))
    "subsets 2" [ []; [ 0 ]; [ 1 ]; [ 0; 1 ] ] (Combinat.subsets 2)

let test_subsets_fold () =
  (* total cardinality of all subsets of [n] is n * 2^(n-1) *)
  let total =
    Combinat.subsets_fold (fun acc s -> acc + List.length s) 0 5
  in
  Alcotest.(check int) "sum of sizes" (5 * 16) total

let test_ksubsets () =
  Alcotest.(check int)
    "5 choose 2" 10
    (List.length (Combinat.ksubsets 2 [ 1; 2; 3; 4; 5 ]));
  Alcotest.(check int) "binomial" 10 (Combinat.binomial 5 2);
  Alcotest.(check int) "binomial edge" 1 (Combinat.binomial 5 0);
  Alcotest.(check int) "binomial out of range" 0 (Combinat.binomial 3 5)

let test_permutations () =
  Alcotest.(check int)
    "4! permutations" 24
    (List.length (Combinat.permutations [ 1; 2; 3; 4 ]));
  Alcotest.(check (list (list int)))
    "perm 2"
    [ [ 1; 2 ]; [ 2; 1 ] ]
    (Combinat.permutations [ 1; 2 ])

let test_tuples () =
  Alcotest.(check int) "3^2 tuples" 9 (List.length (Combinat.tuples 2 [ 1; 2; 3 ]));
  Alcotest.(check int) "empty tuple" 1 (List.length (Combinat.tuples 0 [ 1 ]))

let test_pairs () =
  Alcotest.(check int) "4 choose 2 pairs" 6 (List.length (Combinat.pairs [ 1; 2; 3; 4 ]))

let test_power_int () =
  Alcotest.(check int) "3^4" 81 (Combinat.power_int 3 4);
  Alcotest.(check int) "x^0" 1 (Combinat.power_int 7 0);
  Alcotest.(check int) "0^0" 1 (Combinat.power_int 0 0)

let test_sorted_ops () =
  Alcotest.(check (list int))
    "inter" [ 2; 4 ]
    (Listx.inter_sorted [ 1; 2; 3; 4 ] [ 2; 4; 6 ]);
  Alcotest.(check (list int))
    "union" [ 1; 2; 3; 4; 6 ]
    (Listx.union_sorted [ 1; 2; 3; 4 ] [ 2; 4; 6 ]);
  Alcotest.(check (list int))
    "diff" [ 1; 3 ]
    (Listx.diff_sorted [ 1; 2; 3; 4 ] [ 2; 4; 6 ]);
  Alcotest.(check bool) "subset yes" true (Listx.is_subset_sorted [ 2; 4 ] [ 1; 2; 3; 4 ]);
  Alcotest.(check bool) "subset no" false (Listx.is_subset_sorted [ 2; 5 ] [ 1; 2; 3; 4 ])

let test_group_by () =
  let groups = Listx.group_by (fun x -> x mod 3) [ 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check int) "3 groups" 3 (List.length groups);
  Alcotest.(check (list int)) "class of 1" [ 1; 4; 7 ] (List.assoc 1 groups)

let qcheck_sorted_ops =
  let open QCheck in
  [
    Test.make ~name:"inter_sorted agrees with filter" ~count:200
      (pair (small_list small_nat) (small_list small_nat))
      (fun (a, b) ->
        let a = List.sort_uniq compare a and b = List.sort_uniq compare b in
        Listx.inter_sorted a b = List.filter (fun x -> List.mem x b) a);
    Test.make ~name:"union_sorted agrees with sort_uniq append" ~count:200
      (pair (small_list small_nat) (small_list small_nat))
      (fun (a, b) ->
        let a = List.sort_uniq compare a and b = List.sort_uniq compare b in
        Listx.union_sorted a b = List.sort_uniq compare (a @ b));
    Test.make ~name:"diff_sorted agrees with filter-out" ~count:200
      (pair (small_list small_nat) (small_list small_nat))
      (fun (a, b) ->
        let a = List.sort_uniq compare a and b = List.sort_uniq compare b in
        Listx.diff_sorted a b = List.filter (fun x -> not (List.mem x b)) a);
    Test.make ~name:"subsets count is 2^n" ~count:20 (int_range 0 10)
      (fun n -> List.length (Combinat.subsets n) = 1 lsl n);
  ]

let suite =
  [
    ( "util",
      [
        Alcotest.test_case "subsets" `Quick test_subsets;
        Alcotest.test_case "subsets_fold" `Quick test_subsets_fold;
        Alcotest.test_case "ksubsets/binomial" `Quick test_ksubsets;
        Alcotest.test_case "permutations" `Quick test_permutations;
        Alcotest.test_case "tuples" `Quick test_tuples;
        Alcotest.test_case "pairs" `Quick test_pairs;
        Alcotest.test_case "power_int" `Quick test_power_int;
        Alcotest.test_case "sorted ops" `Quick test_sorted_ops;
        Alcotest.test_case "group_by" `Quick test_group_by;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_sorted_ops );
  ]
