(** Tests for conjunctive queries: acyclicity, contracts (Definition 20),
    #minimality and #cores (Definitions 16/19, Observation 17, Lemmas
    33/34), and q-hierarchicality. *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let mkq n edges free =
  Cq.make (Structure.make sg_e (List.init n (fun i -> i)) [ ("E", edges) ]) free

let test_basics () =
  let q = mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 2 ] in
  Alcotest.(check (list int)) "free" [ 0; 2 ] (Cq.free q);
  Alcotest.(check (list int)) "quantified" [ 1 ] (Cq.quantified q);
  Alcotest.(check bool) "not qf" false (Cq.is_quantifier_free q);
  Alcotest.(check bool) "qf" true (Cq.is_quantifier_free (mkq 2 [ [ 0; 1 ] ] [ 0; 1 ]));
  Alcotest.(check int) "arity" 2 (Cq.arity q)

let test_acyclicity () =
  Alcotest.(check bool) "path acyclic" true
    (Cq.is_acyclic (mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ]));
  Alcotest.(check bool) "triangle cyclic" false
    (Cq.is_acyclic (mkq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ]))

let test_self_join_free () =
  Alcotest.(check bool) "two E atoms not sjf" false
    (Cq.is_self_join_free (mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ]));
  Alcotest.(check bool) "one atom sjf" true
    (Cq.is_self_join_free (mkq 2 [ [ 0; 1 ] ] [ 0; 1 ]))

let test_contract_simple () =
  (* ∃y. E(x0, y) ∧ E(x1, y): the quantified component {y} is adjacent to
     both free variables, so the contract is the single edge x0–x1. *)
  let q = mkq 3 [ [ 0; 2 ]; [ 1; 2 ] ] [ 0; 1 ] in
  let c, mapping = Cq.contract q in
  Alcotest.(check int) "contract vertices" 2 (Graph.num_vertices c);
  Alcotest.(check int) "contract edges" 1 (Graph.num_edges c);
  Alcotest.(check (array int)) "contract mapping" [| 0; 1 |] mapping;
  (* quantifier-free query: contract = Gaifman graph on X *)
  let qf = mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ] in
  let cf, _ = Cq.contract qf in
  Alcotest.(check int) "qf contract edges" 2 (Graph.num_edges cf)

let test_contract_components () =
  (* two separate quantified components, each adjacent to one free var:
     no contract edges added *)
  let q = mkq 4 [ [ 0; 2 ]; [ 1; 3 ] ] [ 0; 1 ] in
  let c, _ = Cq.contract q in
  Alcotest.(check int) "no added edges" 0 (Graph.num_edges c);
  (* a single quantified path connecting both free vars adds the edge *)
  let q2 = mkq 4 [ [ 0; 2 ]; [ 2; 3 ]; [ 3; 1 ] ] [ 0; 1 ] in
  let c2, _ = Cq.contract q2 in
  Alcotest.(check int) "path component adds edge" 1 (Graph.num_edges c2)

let test_sharp_minimal_qf () =
  (* every quantifier-free CQ is #minimal (Section 2.2) *)
  Alcotest.(check bool) "qf minimal" true
    (Cq.is_sharp_minimal (mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ]))

let lemma61_query k =
  (* ψ_k(x_1..x_k, x_⊥) = ∃y. ⋀ E(x_i, x_⊥) ∧ E(x_i, y); encoding:
     x_⊥ = 0, x_i = i, y = k+1 *)
  let edges =
    List.concat (List.init k (fun i0 -> [ [ i0 + 1; 0 ]; [ i0 + 1; k + 1 ] ]))
  in
  mkq (k + 2) edges (List.init (k + 1) (fun i -> i))

let test_sharp_core_lemma61 () =
  let k = 3 in
  let q = lemma61_query k in
  Alcotest.(check bool) "psi_k not minimal" false (Cq.is_sharp_minimal q);
  let core = Cq.sharp_core q in
  Alcotest.(check bool) "core minimal" true (Cq.is_sharp_minimal core);
  (* the #core is ψ'_k = ⋀ E(x_i, x_⊥): y collapses onto x_⊥ *)
  Alcotest.(check int) "core universe" (k + 1)
    (Structure.universe_size (Cq.structure core));
  Alcotest.(check bool) "core quantifier-free" true (Cq.is_quantifier_free core);
  (* #equivalence of the query and its core *)
  Alcotest.(check bool) "equivalent to core" true (Cq.sharp_equivalent q core);
  (* Lemma 61: contract of ψ_k has high treewidth, contract of the core is
     a star *)
  Alcotest.(check int) "contract tw of core" 1 (Cq.contract_treewidth core);
  Alcotest.(check bool) "contract tw of psi_k large" true
    (Cq.contract_treewidth q >= k)

let test_sharp_equivalence_answers () =
  (* #equivalent queries have the same number of answers in every database;
     spot-check on random databases *)
  let q = lemma61_query 2 in
  let core = Cq.sharp_core q in
  List.iter
    (fun seed ->
      let db = Generators.random_digraph ~seed 5 12 in
      Alcotest.(check int)
        (Printf.sprintf "same counts on seed %d" seed)
        (Counting.count ~strategy:Counting.Naive q db)
        (Counting.count ~strategy:Counting.Naive core db))
    [ 1; 2; 3 ]

let test_lemma33_free_gaifman () =
  (* Lemma 33: #equivalent queries have isomorphic G[X] *)
  let q = lemma61_query 3 in
  let core = Cq.sharp_core q in
  let gx q' =
    let g, old_of_new = Structure.gaifman (Cq.structure q') in
    let dense =
      List.filter_map
        (fun x ->
          let found = ref None in
          Array.iteri (fun i v -> if v = x then found := Some i) old_of_new;
          !found)
        (Cq.free q')
    in
    fst (Graph.induced g dense)
  in
  Alcotest.(check bool) "G[X] isomorphic" true (Graph_iso.isomorphic (gx q) (gx core))

let test_lemma34_sjf_core () =
  (* a self-join-free CQ without isolated quantified variables is its own
     #core *)
  let sg =
    Signature.make [ Signature.symbol "R" 2; Signature.symbol "S" 2 ]
  in
  let q =
    Cq.make
      (Structure.make sg [ 0; 1; 2 ] [ ("R", [ [ 0; 2 ] ]); ("S", [ [ 1; 2 ] ]) ])
      [ 0; 1 ]
  in
  Alcotest.(check bool) "sjf" true (Cq.is_self_join_free q);
  Alcotest.(check bool) "sjf is minimal" true (Cq.is_sharp_minimal q);
  (* adding an isolated quantified variable breaks minimality; dropping it
     restores the core *)
  let q_iso =
    Cq.make
      (Structure.make sg [ 0; 1; 2; 9 ] [ ("R", [ [ 0; 2 ] ]); ("S", [ [ 1; 2 ] ]) ])
      [ 0; 1 ]
  in
  Alcotest.(check bool) "isolated breaks minimality" false (Cq.is_sharp_minimal q_iso);
  Alcotest.(check bool) "core drops isolated var" true
    (Cq.isomorphic (Cq.sharp_core q_iso) q)

let test_lemma60_contract_shape () =
  (* the paper's explicit claim in the proof of Lemma 60: the contract of
     φ_k^{i,j} is G[X] plus the single edge {x_i, x_j} — acyclic *)
  let psi = Counterexamples.lemma60 3 in
  List.iter
    (fun q ->
      let c, _ = Cq.contract q in
      Alcotest.(check bool) "contract acyclic" true (Graph.is_acyclic c))
    (Ucq.disjuncts psi)

let test_sharp_equivalent_negative () =
  let p2 = mkq 2 [ [ 0; 1 ] ] [ 0; 1 ] in
  let p3 = mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ] in
  Alcotest.(check bool) "edge != path" false (Cq.sharp_equivalent p2 p3);
  (* same structure, different free sets: not #equivalent *)
  let q_src = mkq 2 [ [ 0; 1 ] ] [ 0 ] in
  let q_tgt = mkq 2 [ [ 0; 1 ] ] [ 1 ] in
  Alcotest.(check bool) "source vs target" false (Cq.sharp_equivalent q_src q_tgt)

let test_degree_of_freedom () =
  let q = mkq 3 [ [ 0; 2 ]; [ 1; 2 ] ] [ 0; 1 ] in
  Alcotest.(check int) "dof of y" 2 (Cq.degree_of_freedom q 2)

let test_free_connex () =
  (* footnote 2: quantifier-free acyclic queries are free-connex *)
  let qf_path = mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ] in
  Alcotest.(check bool) "qf acyclic is free-connex" true (Cq.is_free_connex qf_path);
  (* the classic non-free-connex query: (x, z) :- ∃y E(x,y), E(y,z) —
     acyclic, but adding the hyperedge {x, z} creates a cycle *)
  let two_walk = mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 2 ] in
  Alcotest.(check bool) "acyclic" true (Cq.is_acyclic two_walk);
  Alcotest.(check bool) "not free-connex" false (Cq.is_free_connex two_walk);
  (* a star with quantified leaves is free-connex *)
  let star = mkq 3 [ [ 0; 1 ]; [ 0; 2 ] ] [ 0 ] in
  Alcotest.(check bool) "star free-connex" true (Cq.is_free_connex star)

let test_semantic_acyclicity () =
  (* a cyclic query whose #core is acyclic: boolean triangle-with-pendant?
     use ∃-closed triangle plus a boolean edge query... simplest: the
     Lemma 61 query's core is acyclic while the query itself is cyclic *)
  let q = lemma61_query 3 in
  Alcotest.(check bool) "psi_k cyclic" false (Cq.is_acyclic q);
  Alcotest.(check bool) "but semantically acyclic" true
    (Cq.is_semantically_acyclic q);
  (* a quantifier-free triangle is its own core: not semantically acyclic *)
  let tri = mkq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ] in
  Alcotest.(check bool) "triangle stays cyclic" false (Cq.is_semantically_acyclic tri)

let test_q_hierarchical () =
  (* the paper's Section 1.2 example: acyclic but not q-hierarchical *)
  let phi = Paper_examples.q_hierarchical_example () in
  Alcotest.(check bool) "acyclic" true (Cq.is_acyclic phi);
  Alcotest.(check bool) "not hierarchical" false (Cq.is_hierarchical phi);
  Alcotest.(check bool) "not q-hierarchical" false (Cq.is_q_hierarchical phi);
  (* a star with quantified leaves is q-hierarchical *)
  let star = mkq 3 [ [ 0; 1 ]; [ 0; 2 ] ] [ 0 ] in
  Alcotest.(check bool) "star hierarchical" true (Cq.is_hierarchical star);
  Alcotest.(check bool) "star q-hierarchical" true (Cq.is_q_hierarchical star);
  (* free variable whose atoms are strictly inside a quantified variable's:
     E(x, y) with only x free and a second atom E(y, y') — atoms(x) ⊊
     atoms(y) makes it hierarchical but not q-hierarchical *)
  let bad = mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0 ] in
  Alcotest.(check bool) "hierarchical" true (Cq.is_hierarchical bad);
  Alcotest.(check bool) "but not q-hierarchical" false (Cq.is_q_hierarchical bad)

let test_isomorphic_queries () =
  let q1 = mkq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0 ] in
  let q2 =
    Cq.make
      (Structure.make sg_e [ 5; 6; 7 ] [ ("E", [ [ 7; 5 ]; [ 5; 6 ] ]) ])
      [ 7 ]
  in
  Alcotest.(check bool) "isomorphic with free-set match" true (Cq.isomorphic q1 q2);
  let q3 =
    Cq.make
      (Structure.make sg_e [ 5; 6; 7 ] [ ("E", [ [ 7; 5 ]; [ 5; 6 ] ]) ])
      [ 6 ]
  in
  Alcotest.(check bool) "free set must correspond" false (Cq.isomorphic q1 q3)

let qcheck_core =
  let open QCheck in
  let gen_query =
    make
      ~print:(fun (n, edges, free) ->
        Printf.sprintf "n=%d |E|=%d X={%s}" n (List.length edges)
          (String.concat "," (List.map string_of_int free)))
      (Gen.(>>=) (Gen.int_range 1 4) (fun n ->
           Gen.(>>=)
             (Gen.list_size (Gen.int_range 0 4)
                (Gen.pair (Gen.int_range 0 3) (Gen.int_range 0 3)))
             (fun pairs ->
               Gen.map
                 (fun mask ->
                   ( n,
                     List.map (fun (u, v) -> [ u mod n; v mod n ]) pairs,
                     List.filter (fun i -> mask land (1 lsl i) <> 0)
                       (List.init n (fun i -> i)) ))
                 (Gen.int_range 0 15))))
  in
  [
    Test.make ~name:"#core is #minimal and #equivalent" ~count:60
      (pair gen_query (int_range 0 1000))
      (fun ((n, edges, free), seed) ->
        let q = mkq n edges free in
        let core = Cq.sharp_core q in
        Cq.is_sharp_minimal core
        &&
        let db = Generators.random_digraph ~seed 4 8 in
        Counting.count ~strategy:Counting.Naive q db
        = Counting.count ~strategy:Counting.Naive core db);
    Test.make ~name:"#core is idempotent" ~count:60 gen_query
      (fun (n, edges, free) ->
        let q = mkq n edges free in
        let core = Cq.sharp_core q in
        Cq.isomorphic core (Cq.sharp_core core));
  ]

let suite =
  [
    ( "cq",
      [
        Alcotest.test_case "basics" `Quick test_basics;
        Alcotest.test_case "acyclicity" `Quick test_acyclicity;
        Alcotest.test_case "self-join-freeness" `Quick test_self_join_free;
        Alcotest.test_case "contract simple" `Quick test_contract_simple;
        Alcotest.test_case "contract components" `Quick test_contract_components;
        Alcotest.test_case "qf queries are #minimal" `Quick test_sharp_minimal_qf;
        Alcotest.test_case "Lemma 61 #core" `Quick test_sharp_core_lemma61;
        Alcotest.test_case "#equivalence preserves counts" `Quick
          test_sharp_equivalence_answers;
        Alcotest.test_case "Lemma 33 (free Gaifman graphs)" `Quick
          test_lemma33_free_gaifman;
        Alcotest.test_case "Lemma 34 (sjf cores)" `Quick test_lemma34_sjf_core;
        Alcotest.test_case "Lemma 60 contract shape" `Quick test_lemma60_contract_shape;
        Alcotest.test_case "#equivalence negatives" `Quick test_sharp_equivalent_negative;
        Alcotest.test_case "degree of freedom" `Quick test_degree_of_freedom;
        Alcotest.test_case "free-connexity (footnote 2)" `Quick test_free_connex;
        Alcotest.test_case "semantic acyclicity (footnote 3)" `Quick
          test_semantic_acyclicity;
        Alcotest.test_case "q-hierarchicality" `Quick test_q_hierarchical;
        Alcotest.test_case "query isomorphism" `Quick test_isomorphic_queries;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_core );
  ]
