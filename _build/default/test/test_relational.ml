(** Tests for signatures, relational structures, Gaifman graphs, tensor
    products and structure isomorphism. *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let triangle =
  Structure.make sg_e [ 0; 1; 2 ] [ ("E", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]) ]

let path3 =
  Structure.make sg_e [ 0; 1; 2 ] [ ("E", [ [ 0; 1 ]; [ 1; 2 ] ]) ]

let test_signature () =
  Alcotest.(check int) "arity" 2 (Signature.arity sg_e);
  Alcotest.(check bool) "mem" true (Signature.mem sg_e "E");
  Alcotest.(check bool) "not mem" false (Signature.mem sg_e "F");
  let sg2 = Signature.make [ Signature.symbol "E" 2; Signature.symbol "P" 1 ] in
  Alcotest.(check bool) "subset" true (Signature.subset sg_e sg2);
  Alcotest.(check int) "union size" 2 (Signature.size (Signature.union sg_e sg2));
  Alcotest.check_raises "duplicate symbol rejected"
    (Invalid_argument "Signature.make: duplicate symbol E") (fun () ->
      ignore (Signature.make [ Signature.symbol "E" 2; Signature.symbol "E" 1 ]))

let test_structure_invariants () =
  Alcotest.(check (list int)) "universe sorted" [ 0; 1; 2 ] (Structure.universe triangle);
  (* |A| = |sig| + |U| + Σ |R|·arity = 1 + 3 + 6 *)
  Alcotest.(check int) "encoding size" 10 (Structure.size triangle);
  Alcotest.(check int) "tuples" 3 (Structure.num_tuples triangle);
  Alcotest.check_raises "arity mismatch rejected"
    (Invalid_argument "Structure.make: arity mismatch in E") (fun () ->
      ignore (Structure.make sg_e [ 0 ] [ ("E", [ [ 0 ] ]) ]))

let test_union_induced () =
  let u = Structure.union triangle path3 in
  Alcotest.(check int) "union tuples (dedup)" 3 (Structure.num_tuples u);
  let ind = Structure.induced triangle [ 0; 1 ] in
  Alcotest.(check int) "induced tuples" 1 (Structure.num_tuples ind);
  Alcotest.(check bool) "substructure" true (Structure.is_substructure ind triangle);
  Alcotest.(check bool) "not substructure" false
    (Structure.is_substructure triangle ind)

let test_isolated () =
  let s = Structure.make sg_e [ 0; 1; 5 ] [ ("E", [ [ 0; 1 ] ]) ] in
  Alcotest.(check (list int)) "isolated" [ 5 ] (Structure.isolated_elements s)

let test_gaifman () =
  let g, mapping = Structure.gaifman triangle in
  Alcotest.(check int) "gaifman triangle edges" 3 (Graph.num_edges g);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2 |] mapping;
  (* a ternary tuple spans a clique in the Gaifman graph *)
  let sg3 = Signature.make [ Signature.symbol "T" 3 ] in
  let s = Structure.make sg3 [ 0; 1; 2 ] [ ("T", [ [ 0; 1; 2 ] ]) ] in
  let g3, _ = Structure.gaifman s in
  Alcotest.(check int) "ternary tuple clique" 3 (Graph.num_edges g3);
  Alcotest.(check int) "treewidth of triangle" 2 (Structure.treewidth triangle);
  Alcotest.(check int) "treewidth of path" 1 (Structure.treewidth path3)

let test_tensor () =
  let prod, _ = Structure.tensor path3 path3 in
  Alcotest.(check int) "tensor universe" 9 (Structure.universe_size prod);
  Alcotest.(check int) "tensor tuples" 4 (Structure.num_tuples prod);
  (* multiplicativity of hom counts over tensor products (Theorem 28) *)
  let query = path3 in
  let d1 = triangle and d2 = path3 in
  let t, _ = Structure.tensor d1 d2 in
  Alcotest.(check int) "hom multiplicative"
    (Hom.count query d1 * Hom.count query d2)
    (Hom.count query t)

let test_struct_iso () =
  let tri2 =
    Structure.make sg_e [ 5; 7; 9 ] [ ("E", [ [ 5; 7 ]; [ 7; 9 ]; [ 9; 5 ] ]) ]
  in
  Alcotest.(check bool) "triangles isomorphic" true (Struct_iso.isomorphic triangle tri2);
  Alcotest.(check bool) "triangle != path" false (Struct_iso.isomorphic triangle path3);
  (* directed path 0->1->2: the identity of endpoints matters under
     protected sets *)
  Alcotest.(check bool) "protected endpoints ok" true
    (Struct_iso.isomorphic ~protected_:[ ([ 0 ], [ 0 ]) ] path3 path3);
  Alcotest.(check bool) "protected mismatch fails" false
    (Struct_iso.isomorphic ~protected_:[ ([ 0 ], [ 2 ]) ] path3 path3)

let test_rename () =
  let renamed = Structure.rename path3 (fun v -> v + 10) in
  Alcotest.(check (list int)) "renamed universe" [ 10; 11; 12 ] (Structure.universe renamed);
  Alcotest.(check bool) "isomorphic after rename" true
    (Struct_iso.isomorphic path3 renamed)

let qcheck_tensor =
  let open QCheck in
  let gen_structure =
    make
      ~print:(fun (n, edges) -> Printf.sprintf "n=%d |E|=%d" n (List.length edges))
      (Gen.(>>=) (Gen.int_range 1 4) (fun n ->
           Gen.map
             (fun pairs -> (n, List.map (fun (u, v) -> [ u mod n; v mod n ]) pairs))
             (Gen.list_size (Gen.int_range 0 6)
                (Gen.pair (Gen.int_range 0 3) (Gen.int_range 0 3)))))
  in
  let build (n, edges) =
    Structure.make sg_e (List.init n (fun i -> i)) [ ("E", edges) ]
  in
  [
    Test.make ~name:"tensor multiplicativity of hom counts" ~count:60
      (pair gen_structure gen_structure) (fun (s1, s2) ->
        let d1 = build s1 and d2 = build s2 in
        let t, _ = Structure.tensor d1 d2 in
        let q = path3 in
        Hom.count q t = Hom.count q d1 * Hom.count q d2);
    Test.make ~name:"isomorphism invariant under renaming" ~count:60 gen_structure
      (fun s ->
        let d = build s in
        Struct_iso.isomorphic d (Structure.rename d (fun v -> 100 - v)));
  ]

let suite =
  [
    ( "relational",
      [
        Alcotest.test_case "signature" `Quick test_signature;
        Alcotest.test_case "structure invariants" `Quick test_structure_invariants;
        Alcotest.test_case "union and induced" `Quick test_union_induced;
        Alcotest.test_case "isolated elements" `Quick test_isolated;
        Alcotest.test_case "gaifman graphs" `Quick test_gaifman;
        Alcotest.test_case "tensor product" `Quick test_tensor;
        Alcotest.test_case "structure isomorphism" `Quick test_struct_iso;
        Alcotest.test_case "rename" `Quick test_rename;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_tensor );
  ]
