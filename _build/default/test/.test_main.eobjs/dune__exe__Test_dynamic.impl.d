test/test_dynamic.ml: Alcotest Array Counting Cq Dynamic Dynamic_ucq Generators Hashtbl List Paper_examples Printf QCheck QCheck_alcotest Random Signature Structure Test Ucq
