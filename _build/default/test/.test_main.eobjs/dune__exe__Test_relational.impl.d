test/test_relational.ml: Alcotest Gen Graph Hom List Printf QCheck QCheck_alcotest Signature Struct_iso Structure Test
