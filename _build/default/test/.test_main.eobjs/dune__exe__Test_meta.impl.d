test/test_meta.ml: Alcotest Bigint Classify Cnf Combinat Counterexamples Counting Cq Generators List Meta Monotonicity Paper_examples Pipeline Printf Signature Structure Ucq Wl_dimension
