test/test_bigint.ml: Alcotest Array Bigint Linalg List Printf QCheck QCheck_alcotest Rational Stdlib String Test
