test/test_hom.ml: Alcotest Bigint Gen Generators Hom Jointree_count List Nice_count Printf QCheck QCheck_alcotest Signature Structure Test Treedec_count
