test/test_cq.ml: Alcotest Array Counterexamples Counting Cq Gen Generators Graph Graph_iso List Paper_examples Printf QCheck QCheck_alcotest Signature String Structure Test Ucq
