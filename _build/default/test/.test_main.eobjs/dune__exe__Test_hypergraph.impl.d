test/test_hypergraph.ml: Alcotest Array Gen Graph Hypergraph List QCheck QCheck_alcotest String Test
