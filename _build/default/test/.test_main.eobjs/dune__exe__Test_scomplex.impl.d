test/test_scomplex.ml: Alcotest Gen List Power_complex QCheck QCheck_alcotest Scomplex String Test
