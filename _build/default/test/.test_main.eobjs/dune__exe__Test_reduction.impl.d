test/test_reduction.ml: Alcotest Cnf Cq Graph Ktk Lemma48 List Pipeline Power_complex Printf QCheck QCheck_alcotest Sat_complex Scomplex Signature String Structure Test Treedec_count Ucq
