test/test_frontend.ml: Alcotest Cq List Parse Pretty Signature Structure Ucq
