test/test_ucq.ml: Alcotest Bigint Counting Cq Gen Generators Ktk List Listx Paper_examples Printf QCheck QCheck_alcotest Signature String Struct_iso Structure Test Ucq
