test/test_graph.ml: Alcotest Array Gen Graph Graph_iso Intset List Nice_treedec Printf QCheck QCheck_alcotest Random String Test Treedec Treewidth
