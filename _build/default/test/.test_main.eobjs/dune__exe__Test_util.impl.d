test/test_util.ml: Alcotest Combinat List Listx QCheck QCheck_alcotest Test
