test/test_wl.ml: Alcotest Cq Generators Hom List QCheck QCheck_alcotest Qgen Signature Structure Test Wl
