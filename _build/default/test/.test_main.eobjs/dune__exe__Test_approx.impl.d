test/test_approx.ml: Alcotest Counting Cq Generators Hashtbl Hom Karp_luby List Option Printf QCheck QCheck_alcotest Random Sampler Signature Structure Test Ucq
