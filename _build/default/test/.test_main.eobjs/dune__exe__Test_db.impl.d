test/test_db.ml: Alcotest Counting Cq Enumerate Gen Generators Hom List Nice_count Printf QCheck QCheck_alcotest Qgen Relation Seq Signature String Structure Test Ucq Varelim
