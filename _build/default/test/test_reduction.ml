(** Tests for the hardness machinery of Section 4.2: CNF handling, the
    SAT → power-complex reduction (χ̂(Δ_F) = #sat(F)), the [K_t^k]
    structures, and the Lemma 48/50 algorithms. *)

let test_cnf_basics () =
  let f = Cnf.make 3 [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ] in
  Alcotest.(check int) "vars" 3 (Cnf.num_vars f);
  Alcotest.(check int) "clauses" 3 (Cnf.num_clauses f);
  Alcotest.(check bool) "sat check" true (Cnf.satisfies f [| true; false; true |]);
  Alcotest.(check bool) "unsat check" false (Cnf.satisfies f [| true; true; true |]);
  (* models: (T,F,T) and (F,T,F) *)
  Alcotest.(check int) "count" 2 (Cnf.count_sat f)

let test_count_sat_known () =
  Alcotest.(check int) "x1 has 1 model" 1 (Cnf.count_sat (Cnf.make 1 [ [ 1 ] ]));
  Alcotest.(check int) "free variable doubles" 2
    (Cnf.count_sat (Cnf.make 2 [ [ 1 ] ]));
  Alcotest.(check int) "contradiction" 0
    (Cnf.count_sat (Cnf.make 1 [ [ 1 ]; [ -1 ] ]));
  Alcotest.(check int) "empty formula" 4 (Cnf.count_sat (Cnf.make 2 []));
  Alcotest.(check int) "tautological clause" 2
    (Cnf.count_sat (Cnf.make 1 [ [ 1; -1 ] ]))

let test_dimacs () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let f = Cnf.parse_dimacs text in
  Alcotest.(check int) "vars" 3 (Cnf.num_vars f);
  Alcotest.(check int) "clauses" 2 (Cnf.num_clauses f);
  let f2 = Cnf.parse_dimacs (Cnf.to_dimacs f) in
  Alcotest.(check int) "roundtrip count" (Cnf.count_sat f) (Cnf.count_sat f2)

let test_sat_complex_identity () =
  (* χ̂(Δ_F) = #sat(F) on hand-picked formulas *)
  List.iter
    (fun (name, f) ->
      let pc = Sat_complex.power_complex_of_cnf f in
      Alcotest.(check int) name (Cnf.count_sat f)
        (Power_complex.euler_independent_sets pc))
    [
      ("single positive", Cnf.make 1 [ [ 1 ] ]);
      ("contradiction", Cnf.make 1 [ [ 1 ]; [ -1 ] ]);
      ("free formula", Cnf.make 2 []);
      ("2-clause", Cnf.make 2 [ [ 1; 2 ] ]);
      ("implication chain", Cnf.make 3 [ [ -1; 2 ]; [ -2; 3 ] ]);
      ("3-sat", Cnf.make 3 [ [ 1; 2; 3 ]; [ -1; -2; -3 ] ]);
      ("tautological clause", Cnf.make 2 [ [ 1; -1 ]; [ 2 ] ]);
      ("duplicate clause", Cnf.make 2 [ [ 1; 2 ]; [ 1; 2 ] ]);
    ]

let test_ktk_structure () =
  let k34 = Ktk.make 3 4 in
  Alcotest.(check int) "universe of K_3^4" 12 (List.length (Ktk.universe k34));
  Alcotest.(check int) "clique edges" 3 (Ktk.num_clique_edges k34);
  Alcotest.(check int) "relations" 12
    (Signature.size (Structure.signature k34.Ktk.structure));
  (* Observation 44: self-join-free, arity 2 *)
  Alcotest.(check bool) "self-join-free" true
    (Cq.is_self_join_free (Cq.of_structure k34.Ktk.structure));
  Alcotest.(check int) "arity" 2 (Signature.arity k34.Ktk.signature);
  (* K_3^4 is cyclic with treewidth 2 *)
  Alcotest.(check bool) "cyclic" false
    (Cq.is_acyclic (Cq.of_structure k34.Ktk.structure));
  Alcotest.(check int) "treewidth" 2 (Structure.treewidth k34.Ktk.structure)

let test_ktk_slices () =
  let k34 = Ktk.make 3 4 in
  (* every E_i is a feedback edge set: single slices and proper unions are
     acyclic (Figure 2 caption: "all of the S_A are acyclic") *)
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "S_{%s} acyclic"
           (String.concat "" (List.map string_of_int a)))
        true
        (Cq.is_acyclic (Cq.of_structure (Ktk.slices k34 a))))
    [ [ 1 ]; [ 2; 4 ]; [ 1; 4 ]; [ 3; 4 ]; [ 2; 3 ]; [ 1; 2; 3 ] ];
  (* the full slice set reconstitutes K_3^4 *)
  Alcotest.(check bool) "full slices = K_3^4" true
    (Structure.equal (Ktk.slices k34 [ 1; 2; 3; 4 ]) k34.Ktk.structure)

let test_ktk_database_of_graph () =
  let k33 = Ktk.make 3 3 in
  let with_triangle = Ktk.database_of_graph k33 (Graph.clique 3) in
  let without = Ktk.database_of_graph k33 (Graph.cycle 4) in
  Alcotest.(check bool) "triangle host has homs" true
    (Treedec_count.count k33.Ktk.structure with_triangle > 0);
  Alcotest.(check int) "triangle-free host has none" 0
    (Treedec_count.count k33.Ktk.structure without)

let test_ktk_hom_counts_exact () =
  (* two disjoint triangles in the host: 6 colour-preserving homs per
     (ordered) triangle *)
  let k33 = Ktk.make 3 3 in
  let host =
    Graph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]
  in
  let db = Ktk.database_of_graph k33 host in
  Alcotest.(check int) "6 homs per triangle" 12
    (Treedec_count.count k33.Ktk.structure db)

let test_lemma48_on_delta2 () =
  (* the vanishing side: Psi2 = A^_3(Delta2) *)
  let psi, ktk = Lemma48.ucq_of_complex 3 Scomplex.figure1_delta2 in
  Alcotest.(check int) "coefficient 0" 0
    (Ucq.coefficient psi (Ucq.combined_all psi));
  List.iter
    (fun (t : Ucq.expansion_term) ->
      Alcotest.(check bool) "all support acyclic" true
        (Cq.is_acyclic t.representative))
    (Ucq.support psi);
  ignore ktk

let test_lemma48_parameter_t () =
  (* the construction works for any clique parameter t *)
  List.iter
    (fun t ->
      let psi, ktk = Lemma48.ucq_of_complex t Scomplex.figure1_delta1 in
      Alcotest.(check int)
        (Printf.sprintf "coefficient at t=%d" t)
        2
        (Ucq.coefficient psi (Ucq.combined_all psi));
      Alcotest.(check int)
        (Printf.sprintf "treewidth of K_%d^4" t)
        (t - 1)
        (Structure.treewidth ktk.Ktk.structure))
    [ 2; 3; 4 ]

let test_lemma48_on_figure1 () =
  let psi, ktk = Lemma48.ucq_of_complex 3 Scomplex.figure1_delta1 in
  (* item 4: ℓ ≤ |Ω| = 4 *)
  Alcotest.(check int) "4 CQs" 4 (Ucq.length psi);
  (* item 1: ∧(Ψ) ≅ K_3^4 *)
  Alcotest.(check bool) "combined = K_3^4" true
    (Structure.equal (Cq.structure (Ucq.combined_all psi)) ktk.Ktk.structure);
  (* item 2: c_Ψ(∧Ψ) = -χ̂(Δ1) = 2 *)
  Alcotest.(check int) "coefficient" 2
    (Ucq.coefficient psi (Ucq.combined_all psi));
  (* item 5 *)
  Alcotest.(check bool) "acyclic disjuncts" true (Ucq.is_union_of_acyclic psi);
  Alcotest.(check bool) "sjf disjuncts" true (Ucq.is_union_of_self_join_free psi)

let test_lemma50_dispatch () =
  (* a cone resolves to Euler 0 without producing a UCQ *)
  (match Lemma48.algorithm_a 3 (Scomplex.make [ 1; 2; 3 ] [ [ 1; 2 ]; [ 1; 3 ] ]) with
  | Lemma48.Euler e -> Alcotest.(check int) "cone euler" 0 e
  | Lemma48.Ucq_out _ -> Alcotest.fail "expected Euler for reducible complex");
  (* complete complex also resolves to 0 *)
  (match Lemma48.algorithm_a 3 (Scomplex.make [ 1; 2 ] [ [ 1; 2 ] ]) with
  | Lemma48.Euler e -> Alcotest.(check int) "complete euler" 0 e
  | Lemma48.Ucq_out _ -> Alcotest.fail "expected Euler for complete complex");
  (* Figure 1 Δ1 is irreducible: a UCQ is produced *)
  match Lemma48.algorithm_a 3 Scomplex.figure1_delta1 with
  | Lemma48.Euler _ -> Alcotest.fail "expected a UCQ"
  | Lemma48.Ucq_out (psi, _) -> Alcotest.(check int) "4 CQs" 4 (Ucq.length psi)

let test_pipeline_end_to_end () =
  (* satisfiable F: the K_t^k coefficient is -#sat ≠ 0 *)
  let f_sat = Cnf.make 1 [ [ 1 ] ] in
  (match Pipeline.ucq_of_cnf f_sat with
  | Pipeline.Resolved _ -> Alcotest.fail "expected a query"
  | Pipeline.Query { psi; ktk; _ } ->
      Alcotest.(check int) "l = 3n + m" 4 (Ucq.length psi);
      let combined = Ucq.combined_all psi in
      Alcotest.(check bool) "combined = K_3^3" true
        (Structure.equal (Cq.structure combined) ktk.Ktk.structure);
      Alcotest.(check int) "coefficient = -#sat" (-1)
        (Ucq.coefficient psi combined));
  (* unsatisfiable F: coefficient 0 and every support term acyclic *)
  let f_unsat = Cnf.make 1 [ [ 1 ]; [ -1 ] ] in
  match Pipeline.ucq_of_cnf f_unsat with
  | Pipeline.Resolved _ -> Alcotest.fail "expected a query"
  | Pipeline.Query { psi; _ } ->
      Alcotest.(check int) "coefficient vanishes" 0
        (Ucq.coefficient psi (Ucq.combined_all psi));
      List.iter
        (fun (t : Ucq.expansion_term) ->
          Alcotest.(check bool) "support acyclic" true
            (Cq.is_acyclic t.representative))
        (Ucq.support psi)

let test_pipeline_degenerate () =
  (match Pipeline.ucq_of_cnf (Cnf.make 2 [ [] ]) with
  | Pipeline.Resolved sat -> Alcotest.(check bool) "empty clause unsat" false sat
  | _ -> Alcotest.fail "expected resolution");
  match Pipeline.ucq_of_cnf (Cnf.make 0 []) with
  | Pipeline.Resolved sat -> Alcotest.(check bool) "empty formula sat" true sat
  | _ -> Alcotest.fail "expected resolution"

let qcheck_reduction =
  let open QCheck in
  [
    Test.make ~name:"parsimony: euler(Delta_F) = #sat(F)" ~count:40
      (pair (int_range 0 10_000) (pair (int_range 3 4) (int_range 1 4)))
      (fun (seed, (n, m)) ->
        let f = Cnf.random_3cnf ~seed n m in
        Sat_complex.euler_equals_count_sat f);
    Test.make ~name:"pipeline coefficient = -#sat" ~count:6
      (pair (int_range 0 10_000) (int_range 1 2))
      (fun (seed, m) ->
        (* keep n = 3 fixed so the 2^(3n+m) expansion stays small *)
        let f = Cnf.random_3cnf ~seed 3 m in
        match Pipeline.ucq_of_cnf f with
        | Pipeline.Resolved _ -> true
        | Pipeline.Query { psi; _ } ->
            Ucq.coefficient psi (Ucq.combined_all psi) = -Cnf.count_sat f);
  ]

let suite =
  [
    ( "reduction",
      [
        Alcotest.test_case "cnf basics" `Quick test_cnf_basics;
        Alcotest.test_case "count_sat known values" `Quick test_count_sat_known;
        Alcotest.test_case "dimacs" `Quick test_dimacs;
        Alcotest.test_case "sat-complex identity" `Quick test_sat_complex_identity;
        Alcotest.test_case "K_t^k structure" `Quick test_ktk_structure;
        Alcotest.test_case "K_t^k slices (Figure 2)" `Quick test_ktk_slices;
        Alcotest.test_case "K_t^k database of graph (Lemma 45)" `Quick
          test_ktk_database_of_graph;
        Alcotest.test_case "K_t^k exact hom counts" `Quick test_ktk_hom_counts_exact;
        Alcotest.test_case "Lemma 48 on Delta2" `Quick test_lemma48_on_delta2;
        Alcotest.test_case "Lemma 48 parameter sweep" `Quick test_lemma48_parameter_t;
        Alcotest.test_case "Lemma 48 on Figure 1" `Quick test_lemma48_on_figure1;
        Alcotest.test_case "Lemma 50 dispatch" `Quick test_lemma50_dispatch;
        Alcotest.test_case "pipeline end to end" `Quick test_pipeline_end_to_end;
        Alcotest.test_case "pipeline degenerate inputs" `Quick test_pipeline_degenerate;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_reduction );
  ]
