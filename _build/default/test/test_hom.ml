(** Tests for the homomorphism engine and the two counting dynamic
    programs (join tree and tree decomposition). *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let mk n edges = Structure.make sg_e (List.init n (fun i -> i)) [ ("E", edges) ]

let triangle = mk 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]
let path2 = mk 2 [ [ 0; 1 ] ] (* a single directed edge *)
let path3 = mk 3 [ [ 0; 1 ]; [ 1; 2 ] ]
let cycle4 = mk 4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ] ]

let test_hom_counts_known () =
  (* hom(edge -> triangle) = #directed edges = 3 *)
  Alcotest.(check int) "edge->triangle" 3 (Hom.count path2 triangle);
  (* hom(P3 -> triangle): 3 choices then 1 then 1 -> each walk of length 2: 3*1*1 = 3 *)
  Alcotest.(check int) "P3->triangle walks" 3 (Hom.count path3 triangle);
  (* hom(triangle -> triangle) = 3 rotations (directed) *)
  Alcotest.(check int) "triangle->triangle" 3 (Hom.count triangle triangle);
  (* no hom triangle -> C4 (directed C4 has no closed walk of length 3) *)
  Alcotest.(check int) "triangle->C4" 0 (Hom.count triangle cycle4);
  Alcotest.(check bool) "exists edge->path" true (Hom.exists path2 path3);
  Alcotest.(check bool) "not exists triangle->path" false (Hom.exists triangle path3)

let test_fixed () =
  (* homs of the edge 0->1 into P3 with source fixed to 0: only (0,1) *)
  Alcotest.(check int) "fixed source" 1 (Hom.count ~fixed:[ (0, 0) ] path2 path3);
  Alcotest.(check int) "fixed impossible" 0 (Hom.count ~fixed:[ (0, 2) ] path2 path3)

let test_empty_query () =
  let empty = mk 2 [] in
  (* 2 unconstrained variables into a 3-element universe: 9 homs *)
  Alcotest.(check int) "no atoms" 9 (Hom.count empty triangle)

let test_repeated_variables () =
  (* query E(x, x) requires a self-loop *)
  let sg = sg_e in
  let loopq = Structure.make sg [ 0 ] [ ("E", [ [ 0; 0 ] ]) ] in
  let with_loop = Structure.make sg [ 0; 1 ] [ ("E", [ [ 0; 0 ]; [ 0; 1 ] ]) ] in
  Alcotest.(check int) "no loop, no hom" 0 (Hom.count loopq triangle);
  Alcotest.(check int) "loop found" 1 (Hom.count loopq with_loop)

let test_non_surjective_endo () =
  (* P3 with all variables fixed has only the identity: #minimal *)
  Alcotest.(check bool) "qf is minimal" true
    (Hom.find_non_surjective_endo path3 ~fixed_pointwise:[ 0; 1; 2 ] = None);
  (* with no fixed variables, P3 retracts onto an edge of itself?  No: the
     directed path 0->1->2 has no shorter retract; but two disjoint edges
     retract onto one *)
  let two_edges = mk 4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  Alcotest.(check bool) "disjoint edges retract" true
    (Hom.find_non_surjective_endo two_edges ~fixed_pointwise:[] <> None);
  Alcotest.(check bool) "retract fixing one edge still exists" true
    (Hom.find_non_surjective_endo two_edges ~fixed_pointwise:[ 0; 1 ] <> None)

let test_iter_homs_early_stop () =
  let db = Generators.clique_db 5 in
  let seen = ref 0 in
  Hom.iter_homs path2 db (fun _ ->
      incr seen;
      !seen < 3);
  Alcotest.(check int) "stopped after 3" 3 !seen

let test_empty_database_homs () =
  let empty = Structure.make sg_e [] [] in
  Alcotest.(check int) "no homs into empty" 0 (Hom.count path2 empty);
  (* the empty query has exactly the empty hom *)
  let trivial = Structure.make sg_e [] [] in
  Alcotest.(check int) "empty to empty" 1 (Hom.count trivial empty)

let test_jointree_matches_naive () =
  let db = Generators.random_digraph ~seed:7 10 25 in
  List.iter
    (fun (name, q) ->
      match Jointree_count.count q db with
      | None -> Alcotest.fail (name ^ ": expected acyclic")
      | Some c -> Alcotest.(check int) name (Hom.count q db) c)
    [ ("edge", path2); ("P3", path3); ("two edges", mk 4 [ [ 0; 1 ]; [ 2; 3 ] ]) ];
  (* triangle is cyclic: join-tree counter refuses *)
  Alcotest.(check bool) "triangle refused" true (Jointree_count.count triangle db = None)

let test_treedec_matches_naive () =
  let db = Generators.random_digraph ~seed:11 8 20 in
  List.iter
    (fun (name, q) ->
      Alcotest.(check int) name (Hom.count q db) (Treedec_count.count q db))
    [
      ("edge", path2);
      ("P3", path3);
      ("triangle", triangle);
      ("C4", cycle4);
      ("empty", mk 3 []);
    ]

let test_nice_count_matches () =
  let db = Generators.random_digraph ~seed:17 8 20 in
  List.iter
    (fun (name, q) ->
      Alcotest.(check int) name (Hom.count q db) (Nice_count.count q db))
    [
      ("edge", path2);
      ("P3", path3);
      ("triangle", triangle);
      ("C4", cycle4);
      ("empty query", mk 3 []);
      ("loop atom", Structure.make sg_e [ 0 ] [ ("E", [ [ 0; 0 ] ]) ]);
    ]

let test_big_counters_agree () =
  let db = Generators.random_digraph ~seed:13 9 24 in
  List.iter
    (fun q ->
      Alcotest.(check string) "big = int"
        (string_of_int (Treedec_count.count q db))
        (Bigint.to_string (Treedec_count.count_big q db)))
    [ path3; triangle; cycle4 ]

let qcheck_counters =
  let open QCheck in
  let gen_query =
    make
      ~print:(fun (n, edges) -> Printf.sprintf "query n=%d |E|=%d" n (List.length edges))
      (Gen.(>>=) (Gen.int_range 1 4) (fun n ->
           Gen.map
             (fun pairs -> (n, List.map (fun (u, v) -> [ u mod n; v mod n ]) pairs))
             (Gen.list_size (Gen.int_range 0 5)
                (Gen.pair (Gen.int_range 0 3) (Gen.int_range 0 3)))))
  in
  let gen_db = int_range 0 1000 in
  [
    Test.make ~name:"treedec DP agrees with backtracking" ~count:80
      (pair gen_query gen_db) (fun ((n, edges), seed) ->
        let q = mk n edges in
        let db = Generators.random_digraph ~seed 6 12 in
        Treedec_count.count q db = Hom.count q db);
    Test.make ~name:"nice-decomposition DP agrees with backtracking" ~count:60
      (pair gen_query gen_db) (fun ((n, edges), seed) ->
        let q = mk n edges in
        let db = Generators.random_digraph ~seed 6 12 in
        Nice_count.count q db = Hom.count q db);
    Test.make ~name:"join-tree counter agrees when acyclic" ~count:80
      (pair gen_query gen_db) (fun ((n, edges), seed) ->
        let q = mk n edges in
        let db = Generators.random_digraph ~seed 6 12 in
        match Jointree_count.count q db with
        | None -> not (Jointree_count.is_acyclic_structure q)
        | Some c -> c = Hom.count q db);
  ]

let suite =
  [
    ( "hom",
      [
        Alcotest.test_case "known hom counts" `Quick test_hom_counts_known;
        Alcotest.test_case "fixed assignments" `Quick test_fixed;
        Alcotest.test_case "atom-free query" `Quick test_empty_query;
        Alcotest.test_case "repeated variables" `Quick test_repeated_variables;
        Alcotest.test_case "non-surjective endomorphisms" `Quick test_non_surjective_endo;
        Alcotest.test_case "early stop" `Quick test_iter_homs_early_stop;
        Alcotest.test_case "empty databases" `Quick test_empty_database_homs;
        Alcotest.test_case "join-tree counting" `Quick test_jointree_matches_naive;
        Alcotest.test_case "treedec counting" `Quick test_treedec_matches_naive;
        Alcotest.test_case "nice-decomposition counting" `Quick test_nice_count_matches;
        Alcotest.test_case "bigint counters agree" `Quick test_big_counters_agree;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_counters );
  ]
