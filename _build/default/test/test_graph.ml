(** Tests for graphs, tree decompositions (Definition 14), treewidth and
    graph isomorphism. *)

let test_basic_ops () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check int) "vertices" 4 (Graph.num_vertices g);
  Alcotest.(check int) "edges" 3 (Graph.num_edges g);
  Alcotest.(check bool) "edge present" true (Graph.has_edge g 1 2);
  Alcotest.(check bool) "edge symmetric" true (Graph.has_edge g 2 1);
  Alcotest.(check bool) "edge absent" false (Graph.has_edge g 0 3);
  Alcotest.(check int) "degree" 2 (Graph.degree g 1)

let test_self_loop_ignored () =
  let g = Graph.make 3 in
  Graph.add_edge g 1 1;
  Alcotest.(check int) "no self loop" 0 (Graph.num_edges g)

let test_components () =
  let g = Graph.of_edges 6 [ (0, 1); (2, 3); (3, 4) ] in
  Alcotest.(check int) "three components" 3 (List.length (Graph.components g));
  Alcotest.(check bool) "not connected" false (Graph.is_connected g);
  Alcotest.(check bool) "path connected" true (Graph.is_connected (Graph.path 5))

let test_acyclic () =
  Alcotest.(check bool) "path acyclic" true (Graph.is_acyclic (Graph.path 5));
  Alcotest.(check bool) "cycle not acyclic" false (Graph.is_acyclic (Graph.cycle 5));
  Alcotest.(check bool) "forest acyclic" true
    (Graph.is_acyclic (Graph.of_edges 6 [ (0, 1); (2, 3); (4, 5) ]))

let test_induced () =
  let g = Graph.cycle 5 in
  let sub, mapping = Graph.induced g [ 0; 1; 2 ] in
  Alcotest.(check int) "induced size" 3 (Graph.num_vertices sub);
  Alcotest.(check int) "induced edges" 2 (Graph.num_edges sub);
  Alcotest.(check (array int)) "mapping" [| 0; 1; 2 |] mapping

let test_stretched_clique () =
  let g, stretches = Graph.stretched_clique 3 4 in
  (* K_3^4: 3 clique vertices + 3 edges × 3 internal vertices *)
  Alcotest.(check int) "vertices of K_3^4" 12 (Graph.num_vertices g);
  Alcotest.(check int) "edges of K_3^4" 12 (Graph.num_edges g);
  Alcotest.(check int) "three stretches" 3 (Array.length stretches);
  Array.iter
    (fun s -> Alcotest.(check int) "stretch length" 4 (List.length s))
    stretches;
  (* K_t^k is one big cycle-containing graph: treewidth 2 for t = 3 *)
  Alcotest.(check int) "tw(K_3^4) = 2" 2 (Treewidth.treewidth g)

let test_treedec_validate () =
  let g = Graph.path 4 in
  let good =
    {
      Treedec.bags =
        [|
          Intset.of_list [ 0; 1 ]; Intset.of_list [ 1; 2 ]; Intset.of_list [ 2; 3 ];
        |];
      tree = [ (0, 1); (1, 2) ];
    }
  in
  Alcotest.(check bool) "valid decomposition" true (Treedec.validate g good);
  Alcotest.(check int) "width 1" 1 (Treedec.width good);
  (* break connectedness (C3): vertex 1 in bags 0 and 2 but not 1 *)
  let bad =
    {
      Treedec.bags =
        [|
          Intset.of_list [ 0; 1 ]; Intset.of_list [ 2 ]; Intset.of_list [ 1; 2; 3 ];
        |];
      tree = [ (0, 1); (1, 2) ];
    }
  in
  Alcotest.(check bool) "C3 violation detected" false (Treedec.validate g bad);
  (* missing edge (C2) *)
  let bad2 =
    {
      Treedec.bags = [| Intset.of_list [ 0; 1 ]; Intset.of_list [ 2; 3 ] |];
      tree = [ (0, 1) ];
    }
  in
  Alcotest.(check bool) "C2 violation detected" false (Treedec.validate g bad2)

let known_treewidths =
  [
    ("path 6", Graph.path 6, 1);
    ("cycle 5", Graph.cycle 5, 2);
    ("K4", Graph.clique 4, 3);
    ("K6", Graph.clique 6, 5);
    ("star 5", Graph.star 5, 1);
    ("grid 3x3", Graph.grid 3 3, 3);
    ("grid 2x4", Graph.grid 2 4, 2);
    ("single vertex", Graph.make 1, 0);
    ("two isolated", Graph.make 2, 0);
  ]

let test_exact_treewidth () =
  List.iter
    (fun (name, g, expected) ->
      let w, dec = Treewidth.exact g in
      Alcotest.(check int) name expected w;
      Alcotest.(check bool) (name ^ " decomposition valid") true (Treedec.validate g dec))
    known_treewidths

let test_heuristics_and_bounds () =
  List.iter
    (fun (name, g, expected) ->
      let ub, dec = Treewidth.heuristic g in
      let lb = Treewidth.lower_bound g in
      Alcotest.(check bool) (name ^ " heuristic valid") true (Treedec.validate g dec);
      Alcotest.(check bool) (name ^ " lb <= tw") true (lb <= expected);
      Alcotest.(check bool) (name ^ " tw <= ub") true (expected <= ub))
    known_treewidths

let test_known_treewidths_extra () =
  (* Petersen graph: treewidth 4 *)
  let petersen =
    Graph.of_edges 10
      [
        (0, 1); (1, 2); (2, 3); (3, 4); (4, 0);
        (5, 7); (7, 9); (9, 6); (6, 8); (8, 5);
        (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
      ]
  in
  Alcotest.(check int) "petersen" 4 (Treewidth.treewidth petersen);
  (* complete bipartite K_{3,3}: treewidth 3 *)
  let k33 =
    Graph.of_edges 6
      [ (0, 3); (0, 4); (0, 5); (1, 3); (1, 4); (1, 5); (2, 3); (2, 4); (2, 5) ]
  in
  Alcotest.(check int) "K33" 3 (Treewidth.treewidth k33);
  (* prism (C3 x K2): treewidth 3 *)
  let prism =
    Graph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (0, 3); (1, 4); (2, 5) ]
  in
  Alcotest.(check int) "prism" 3 (Treewidth.treewidth prism)

let test_heuristic_on_larger_graph () =
  (* sanity on a 40-vertex random graph: bounds sandwich, decomposition
     valid *)
  let g =
    let st = Random.State.make [| 5 |] in
    let h = Graph.make 40 in
    for _ = 1 to 120 do
      let u = Random.State.int st 40 and v = Random.State.int st 40 in
      Graph.add_edge h u v
    done;
    h
  in
  let ub, dec = Treewidth.heuristic g in
  Alcotest.(check bool) "valid" true (Treedec.validate g dec);
  Alcotest.(check bool) "lb <= ub" true (Treewidth.lower_bound g <= ub)

let test_nice_treedec () =
  List.iter
    (fun (name, g, expected_tw) ->
      let _, dec = Treewidth.exact g in
      let nice = Nice_treedec.of_treedec dec in
      Alcotest.(check bool) (name ^ " nice valid") true (Nice_treedec.validate g nice);
      Alcotest.(check int) (name ^ " nice width") expected_tw (Nice_treedec.width nice))
    known_treewidths

let test_graph_iso () =
  Alcotest.(check bool) "C5 ~ C5 relabelled" true
    (Graph_iso.isomorphic (Graph.cycle 5)
       (Graph.of_edges 5 [ (0, 2); (2, 4); (4, 1); (1, 3); (3, 0) ]));
  Alcotest.(check bool) "P4 !~ star3" false
    (Graph_iso.isomorphic (Graph.path 4) (Graph.star 3));
  Alcotest.(check bool) "C6 !~ 2C3" false
    (Graph_iso.isomorphic (Graph.cycle 6)
       (Graph.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]))

let qcheck_treewidth =
  let open QCheck in
  let random_graph =
    make
      ~print:(fun (n, edges) ->
        Printf.sprintf "n=%d edges=%s" n
          (String.concat "," (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges)))
      (Gen.(>>=) (Gen.int_range 1 8) (fun n ->
           Gen.map
             (fun pairs ->
               (n, List.map (fun (u, v) -> (u mod n, v mod n)) pairs))
             (Gen.list_size (Gen.int_range 0 12)
                (Gen.pair (Gen.int_range 0 7) (Gen.int_range 0 7)))))
  in
  [
    Test.make ~name:"exact tw is sandwiched and witnessed" ~count:60 random_graph
      (fun (n, edges) ->
        let g = Graph.of_edges n edges in
        let w, dec = Treewidth.exact g in
        let ub, hdec = Treewidth.heuristic g in
        let lb = Treewidth.lower_bound g in
        Treedec.validate g dec && Treedec.validate g hdec && lb <= w && w <= ub);
    Test.make ~name:"elimination order decomposition always valid" ~count:60
      random_graph (fun (n, edges) ->
        let g = Graph.of_edges n edges in
        let order = Treewidth.heuristic_order Treewidth.Min_degree g in
        Treedec.validate g (Treedec.of_elimination_order g order));
    Test.make ~name:"nice conversion is valid and width-preserving" ~count:60
      random_graph (fun (n, edges) ->
        let g = Graph.of_edges n edges in
        let w, dec = Treewidth.exact g in
        let nice = Nice_treedec.of_treedec dec in
        Nice_treedec.validate g nice && Nice_treedec.width nice = max w (-1));
  ]

let suite =
  [
    ( "graph",
      [
        Alcotest.test_case "basic ops" `Quick test_basic_ops;
        Alcotest.test_case "self loops ignored" `Quick test_self_loop_ignored;
        Alcotest.test_case "components" `Quick test_components;
        Alcotest.test_case "acyclicity" `Quick test_acyclic;
        Alcotest.test_case "induced subgraph" `Quick test_induced;
        Alcotest.test_case "stretched clique" `Quick test_stretched_clique;
        Alcotest.test_case "treedec validation" `Quick test_treedec_validate;
        Alcotest.test_case "exact treewidth" `Quick test_exact_treewidth;
        Alcotest.test_case "heuristics and bounds" `Quick test_heuristics_and_bounds;
        Alcotest.test_case "more known treewidths" `Quick test_known_treewidths_extra;
        Alcotest.test_case "heuristics on larger graphs" `Quick
          test_heuristic_on_larger_graph;
        Alcotest.test_case "nice tree decompositions" `Quick test_nice_treedec;
        Alcotest.test_case "graph isomorphism" `Quick test_graph_iso;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_treewidth );
  ]
