(** Tests for the k-dimensional Weisfeiler–Leman algorithm (Section 5). *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let sym_graph n edges =
  Structure.make sg_e
    (List.init n (fun i -> i))
    [ ("E", List.concat_map (fun (u, v) -> [ [ u; v ]; [ v; u ] ]) edges) ]

let c6 = sym_graph 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ]
let two_c3 = sym_graph 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]
let p3 = sym_graph 3 [ (0, 1); (1, 2) ]
let star3 = sym_graph 4 [ (0, 1); (0, 2); (0, 3) ]

let test_labelled_graph_check () =
  Alcotest.(check bool) "c6 is labelled graph" true (Wl.is_labelled_graph c6);
  let with_loop = Structure.make sg_e [ 0; 1 ] [ ("E", [ [ 0; 0 ] ]) ] in
  Alcotest.(check bool) "self loop rejected" false (Wl.is_labelled_graph with_loop)

let test_classic_pair () =
  (* C6 and 2×C3 are both 2-regular: 1-WL cannot tell them apart, but 2-WL
     can (2×C3 has triangles). *)
  Alcotest.(check bool) "1-WL equivalent" true (Wl.equivalent ~k:1 c6 two_c3);
  Alcotest.(check bool) "2-WL distinguishes" false (Wl.equivalent ~k:2 c6 two_c3)

let test_distinguishable_pairs () =
  Alcotest.(check bool) "different sizes" false (Wl.equivalent ~k:1 p3 c6);
  Alcotest.(check bool) "path vs star" false (Wl.equivalent ~k:1 (sym_graph 4 [ (0, 1); (1, 2); (2, 3) ]) star3)

let test_isomorphic_pairs () =
  let relabelled = Structure.rename c6 (fun v -> (v + 3) mod 6 + 10) in
  Alcotest.(check bool) "iso pair 1-WL" true (Wl.equivalent ~k:1 c6 relabelled);
  Alcotest.(check bool) "iso pair 2-WL" true (Wl.equivalent ~k:2 c6 relabelled)

let test_colour_classes () =
  (* vertex-transitive C6: one stable 1-WL colour class *)
  Alcotest.(check int) "C6 classes" 1 (Wl.colour_classes ~k:1 c6);
  (* path P3: endpoints vs middle *)
  Alcotest.(check int) "P3 classes" 2 (Wl.colour_classes ~k:1 p3)

let test_equivalence_preserves_hom_counts () =
  (* 1-WL equivalence preserves homomorphism counts from trees; C6 vs 2C3
     agree on paths but differ on the triangle (treewidth 2) *)
  let tree = Structure.make sg_e [ 0; 1; 2 ] [ ("E", [ [ 0; 1 ]; [ 1; 2 ] ]) ] in
  Alcotest.(check int) "path homs agree"
    (Hom.count tree c6) (Hom.count tree two_c3);
  let triangle =
    Structure.make sg_e [ 0; 1; 2 ] [ ("E", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]) ]
  in
  Alcotest.(check bool) "triangle homs differ" true
    (Hom.count triangle c6 <> Hom.count triangle two_c3)

let test_directed_labels_matter () =
  (* a directed edge versus its reversal on a path of two vertices with an
     extra pendant: 1-WL on labelled (directed) graphs distinguishes
     orientation *)
  let d1 = Structure.make sg_e [ 0; 1; 2 ] [ ("E", [ [ 0; 1 ]; [ 1; 2 ] ]) ] in
  let d2 = Structure.make sg_e [ 0; 1; 2 ] [ ("E", [ [ 0; 1 ]; [ 2; 1 ] ]) ] in
  Alcotest.(check bool) "orientation distinguished" false (Wl.equivalent ~k:1 d1 d2)

let test_unary_labels () =
  (* vertex labels (unary relations) refine the initial colouring *)
  let sg =
    Signature.make [ Signature.symbol "E" 2; Signature.symbol "P" 1 ]
  in
  let base edges ps =
    Structure.make sg [ 0; 1; 2 ] [ ("E", edges); ("P", ps) ]
  in
  let d1 = base [ [ 0; 1 ]; [ 1; 0 ] ] [ [ 2 ] ] in
  let d2 = base [ [ 0; 1 ]; [ 1; 0 ] ] [ [ 0 ] ] in
  (* d2's labelled vertex is on the edge; d1's is isolated *)
  Alcotest.(check bool) "labels distinguish" false (Wl.equivalent ~k:1 d1 d2)

let test_k2_on_paths () =
  (* P4 vs P3+P1 have different degree sequences: distinguished at k=1 *)
  let p4 = sym_graph 4 [ (0, 1); (1, 2); (2, 3) ] in
  let p31 = sym_graph 4 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "1-WL" false (Wl.equivalent ~k:1 p4 p31);
  Alcotest.(check bool) "2-WL" false (Wl.equivalent ~k:2 p4 p31)

let test_k2_iso_invariance () =
  let g = sym_graph 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let g' = Structure.rename g (fun v -> (v * 2) mod 5 + 100) in
  Alcotest.(check bool) "2-WL on isomorphic C5" true (Wl.equivalent ~k:2 g g')

let qcheck_wl =
  let open QCheck in
  [
    (* the Dvořák / Dell–Grohe–Rattan fact behind Theorem 58: 1-WL
       equivalent graphs agree on homomorphism counts from all trees *)
    Test.make ~name:"1-WL equivalent pair agrees on tree hom counts" ~count:60
      (int_range 0 100_000) (fun seed ->
        let tree =
          Qgen.random_acyclic_cq ~seed ~max_vars:5 Generators.graph_signature
        in
        Hom.count (Cq.structure tree) c6 = Hom.count (Cq.structure tree) two_c3);
  ]

let suite =
  [
    ( "wl",
      [
        Alcotest.test_case "labelled graph check" `Quick test_labelled_graph_check;
        Alcotest.test_case "C6 vs 2C3" `Quick test_classic_pair;
        Alcotest.test_case "distinguishable pairs" `Quick test_distinguishable_pairs;
        Alcotest.test_case "isomorphic pairs" `Quick test_isomorphic_pairs;
        Alcotest.test_case "colour classes" `Quick test_colour_classes;
        Alcotest.test_case "hom count invariance" `Quick
          test_equivalence_preserves_hom_counts;
        Alcotest.test_case "orientation matters" `Quick test_directed_labels_matter;
        Alcotest.test_case "unary labels" `Quick test_unary_labels;
        Alcotest.test_case "2-WL on paths" `Quick test_k2_on_paths;
        Alcotest.test_case "2-WL isomorphism invariance" `Quick test_k2_iso_invariance;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_wl );
  ]
