(** Tests for hypergraphs, GYO acyclicity, and join trees. *)

let h vertices edges = Hypergraph.make vertices edges

let test_acyclic_cases () =
  (* a path of binary edges *)
  Alcotest.(check bool) "path acyclic" true
    (Hypergraph.is_acyclic (h [ 1; 2; 3; 4 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]));
  (* triangle from three binary edges: cyclic *)
  Alcotest.(check bool) "binary triangle cyclic" false
    (Hypergraph.is_acyclic (h [ 1; 2; 3 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ] ]));
  (* triangle plus a covering ternary edge: alpha-acyclic *)
  Alcotest.(check bool) "covered triangle acyclic" true
    (Hypergraph.is_acyclic
       (h [ 1; 2; 3 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ]; [ 1; 2; 3 ] ]));
  (* C4 cyclic *)
  Alcotest.(check bool) "C4 cyclic" false
    (Hypergraph.is_acyclic
       (h [ 1; 2; 3; 4 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 1 ] ]));
  (* star *)
  Alcotest.(check bool) "star acyclic" true
    (Hypergraph.is_acyclic (h [ 0; 1; 2; 3 ] [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ] ]));
  (* empty and singleton *)
  Alcotest.(check bool) "no edges acyclic" true (Hypergraph.is_acyclic (h [ 1; 2 ] []));
  Alcotest.(check bool) "one edge acyclic" true
    (Hypergraph.is_acyclic (h [ 1; 2; 3 ] [ [ 1; 2; 3 ] ]))

let test_duplicate_and_contained_edges () =
  Alcotest.(check bool) "duplicate edges acyclic" true
    (Hypergraph.is_acyclic (h [ 1; 2 ] [ [ 1; 2 ]; [ 1; 2 ] ]));
  Alcotest.(check bool) "contained edge acyclic" true
    (Hypergraph.is_acyclic (h [ 1; 2; 3 ] [ [ 1; 2; 3 ]; [ 1; 2 ] ]))

let test_join_tree () =
  let acyclic = h [ 1; 2; 3; 4; 5 ] [ [ 1; 2 ]; [ 2; 3; 4 ]; [ 4; 5 ] ] in
  (match Hypergraph.join_tree acyclic with
  | None -> Alcotest.fail "expected a join tree"
  | Some jt ->
      Alcotest.(check bool) "running intersection holds" true
        (Hypergraph.join_tree_valid acyclic jt));
  Alcotest.(check bool) "cyclic has no join tree" true
    (Hypergraph.join_tree (h [ 1; 2; 3 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ] ]) = None)

let test_join_tree_disconnected () =
  let hg = h [ 1; 2; 3; 4 ] [ [ 1; 2 ]; [ 3; 4 ] ] in
  match Hypergraph.join_tree hg with
  | None -> Alcotest.fail "disconnected acyclic hypergraph must have a join tree"
  | Some jt ->
      Alcotest.(check bool) "valid" true (Hypergraph.join_tree_valid hg jt)

let test_primal_graph () =
  let g, mapping = Hypergraph.primal_graph (h [ 1; 2; 3 ] [ [ 1; 2; 3 ] ]) in
  Alcotest.(check int) "primal of ternary edge is K3" 3 (Graph.num_edges g);
  Alcotest.(check (array int)) "mapping" [| 1; 2; 3 |] mapping

(* Brute-force alpha-acyclicity via join-tree existence over all spanning
   trees of the edge set would be costly; instead cross-check GYO against a
   direct implementation of "has a join tree" for small edge counts by
   trying all trees on edge indices. *)
let brute_has_join_tree (vertices : int list) (edges : int list list) : bool =
  let m = List.length edges in
  if m <= 1 then true
  else begin
    let arr = Array.of_list edges in
    (* enumerate labelled trees on m nodes via Prüfer sequences *)
    let rec sequences k =
      if k = 0 then [ [] ]
      else
        List.concat_map
          (fun s -> List.init m (fun i -> i :: s))
          (sequences (k - 1))
    in
    let trees =
      if m = 2 then [ [ (0, 1) ] ]
      else
        List.map
          (fun prufer ->
            (* decode the Prüfer sequence with the standard algorithm *)
            let degree = Array.make m 1 in
            List.iter (fun i -> degree.(i) <- degree.(i) + 1) prufer;
            let result = ref [] in
            List.iter
              (fun i ->
                let j = ref 0 in
                while degree.(!j) <> 1 do
                  incr j
                done;
                result := (!j, i) :: !result;
                degree.(!j) <- degree.(!j) - 1;
                degree.(i) <- degree.(i) - 1)
              prufer;
            let last = ref [] in
            Array.iteri (fun i d -> if d = 1 then last := i :: !last) degree;
            (match !last with
            | [ a; b ] -> result := (a, b) :: !result
            | _ -> ());
            !result)
          (sequences (m - 2))
    in
    List.exists
      (fun tree ->
        Hypergraph.join_tree_valid
          (Hypergraph.make vertices edges)
          { Hypergraph.nodes = arr; tree })
      trees
  end

let qcheck_gyo =
  let open QCheck in
  let random_hg =
    make
      ~print:(fun edges ->
        String.concat " "
          (List.map
             (fun e -> "{" ^ String.concat "," (List.map string_of_int e) ^ "}")
             edges))
      (Gen.list_size (Gen.int_range 0 4)
         (Gen.map
            (fun vs -> List.sort_uniq compare vs)
            (Gen.list_size (Gen.int_range 1 3) (Gen.int_range 0 4))))
  in
  [
    Test.make ~name:"GYO agrees with brute-force join-tree search" ~count:120
      random_hg (fun edges ->
        let vertices = List.init 5 (fun i -> i) in
        Hypergraph.is_acyclic (Hypergraph.make vertices edges)
        = brute_has_join_tree vertices (List.map (List.sort_uniq compare) edges));
    Test.make ~name:"constructed join trees are valid" ~count:120 random_hg
      (fun edges ->
        let hg = Hypergraph.make (List.init 5 (fun i -> i)) edges in
        match Hypergraph.join_tree hg with
        | None -> not (Hypergraph.is_acyclic hg)
        | Some jt -> Hypergraph.join_tree_valid hg jt);
  ]

let suite =
  [
    ( "hypergraph",
      [
        Alcotest.test_case "acyclicity cases" `Quick test_acyclic_cases;
        Alcotest.test_case "duplicates and containment" `Quick
          test_duplicate_and_contained_edges;
        Alcotest.test_case "join trees" `Quick test_join_tree;
        Alcotest.test_case "disconnected join tree" `Quick test_join_tree_disconnected;
        Alcotest.test_case "primal graph" `Quick test_primal_graph;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_gyo );
  ]
