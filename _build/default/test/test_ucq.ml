(** Tests for UCQs: combined queries (Definition 23), the CQ expansion and
    coefficient function (Definition 25, Lemma 26), and the counting
    algorithms. *)

let sg_e = Signature.make [ Signature.symbol "E" 2 ]

let mkcq n edges free =
  Cq.make (Structure.make sg_e (List.init n (fun i -> i)) [ ("E", edges) ]) free

(* a small quantifier-free union over free variables {0, 1}:
   E(x0, x1)  ∨  E(x1, x0) *)
let psi_sym =
  Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ]; mkcq 2 [ [ 1; 0 ] ] [ 0; 1 ] ]

let test_structure_accessors () =
  Alcotest.(check int) "two disjuncts" 2 (Ucq.length psi_sym);
  Alcotest.(check bool) "qf" true (Ucq.is_quantifier_free psi_sym);
  Alcotest.(check int) "arity" 2 (Ucq.arity psi_sym);
  Alcotest.(check int) "deletion closure" 3
    (List.length (Ucq.deletion_closure psi_sym))

let test_rename_apart () =
  (* two disjuncts ∃y E(x,y) — quantified variables must become disjoint *)
  let q = mkcq 2 [ [ 0; 1 ] ] [ 0 ] in
  let psi = Ucq.make [ q; q ] in
  let universes = List.map Structure.universe (Ucq.disjunct_structures psi) in
  (match universes with
  | [ u1; u2 ] ->
      Alcotest.(check (list int)) "shared part is X" [ 0 ]
        (Listx.inter_sorted u1 u2)
  | _ -> Alcotest.fail "expected two disjuncts");
  Alcotest.(check int) "one quantified var each" 2 (Ucq.num_quantified psi)

let test_combined () =
  let combined = Ucq.combined_all psi_sym in
  (* ∧(Ψ) = E(x0,x1) ∧ E(x1,x0) *)
  Alcotest.(check int) "combined tuples" 2 (Structure.num_tuples (Cq.structure combined));
  Alcotest.(check bool) "restriction to singleton" true
    (Cq.equal (Ucq.combined psi_sym [ 0 ]) (Ucq.disjunct psi_sym 0))

let test_count_union_semantics () =
  let db = Generators.random_digraph ~seed:21 6 10 in
  (* answers = ordered pairs connected in either direction *)
  let expected = Ucq.count_naive psi_sym db in
  Alcotest.(check int) "inclusion-exclusion" expected
    (Ucq.count_inclusion_exclusion psi_sym db);
  Alcotest.(check int) "via expansion" expected (Ucq.count_via_expansion psi_sym db)

let test_coefficients_sym () =
  (* ∧(Ψ|{0}) = E(x0,x1), ∧(Ψ|{1}) = E(x1,x0), ∧(Ψ|{0,1}) = both.
     The two singletons are isomorphic (swap x0, x1), so c(edge) = 2 and
     c(double edge) = -1. *)
  let terms = Ucq.expansion psi_sym in
  Alcotest.(check int) "two classes" 2 (List.length terms);
  let coeffs =
    List.sort compare
      (List.map (fun (t : Ucq.expansion_term) -> t.coefficient) terms)
  in
  Alcotest.(check (list int)) "coefficients" [ -1; 2 ] coeffs

let test_coefficient_lookup () =
  let edge = mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ] in
  Alcotest.(check int) "c(edge) = 2" 2 (Ucq.coefficient psi_sym edge);
  let both = mkcq 2 [ [ 0; 1 ]; [ 1; 0 ] ] [ 0; 1 ] in
  Alcotest.(check int) "c(double) = -1" (-1) (Ucq.coefficient psi_sym both);
  let triangle = mkcq 3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ] [ 0; 1; 2 ] in
  Alcotest.(check int) "c(unrelated) = 0" 0 (Ucq.coefficient psi_sym triangle)

let test_lemma26_identity () =
  (* ans(Ψ → D) must equal Σ c_Ψ(A) · ans(A → D) for every database *)
  List.iter
    (fun seed ->
      let db = Generators.random_digraph ~seed 5 8 in
      Alcotest.(check int)
        (Printf.sprintf "identity on seed %d" seed)
        (Ucq.count_naive psi_sym db)
        (List.fold_left
           (fun acc (t : Ucq.expansion_term) ->
             acc
             + t.coefficient
               * Counting.count ~strategy:Counting.Naive t.representative db)
           0 (Ucq.expansion psi_sym)))
    [ 4; 5; 6 ]

let test_quantified_union () =
  (* (∃y. E(x,y)) ∨ (∃y. E(y,x)): vertices with out- or in-edges *)
  let psi = Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0 ]; mkcq 2 [ [ 1; 0 ] ] [ 0 ] ] in
  List.iter
    (fun seed ->
      let db = Generators.random_digraph ~seed 6 9 in
      let expected = Ucq.count_naive psi db in
      Alcotest.(check int) "IE" expected (Ucq.count_inclusion_exclusion psi db);
      Alcotest.(check int) "expansion" expected (Ucq.count_via_expansion psi db))
    [ 7; 8 ]

let test_paper_psi1_psi2 () =
  let psi1, ktk1 = Paper_examples.psi1 () in
  let psi2, _ = Paper_examples.psi2 () in
  Alcotest.(check int) "psi1 has 4 disjuncts" 4 (Ucq.length psi1);
  Alcotest.(check int) "psi2 has 4 disjuncts" 4 (Ucq.length psi2);
  (* ∧(Ψ1) = ∧(Ψ2) = K_3^4 *)
  let combined1 = Ucq.combined_all psi1 in
  Alcotest.(check bool) "combined is K_3^4" true
    (Struct_iso.isomorphic (Cq.structure combined1) ktk1.Ktk.structure);
  (* Lemma 48 item 2: c_Ψ(∧Ψ) = -χ̂ : for Δ1, -(-2) = 2; for Δ2, 0 *)
  Alcotest.(check int) "c_psi1(K_3^4) = 2" 2
    (Ucq.coefficient psi1 combined1);
  Alcotest.(check int) "c_psi2(K_3^4) = 0" 0
    (Ucq.coefficient psi2 (Ucq.combined_all psi2));
  (* Lemma 48 item 5: all disjuncts acyclic, self-join-free, binary *)
  Alcotest.(check bool) "psi1 union of acyclic" true (Ucq.is_union_of_acyclic psi1);
  Alcotest.(check bool) "psi1 union of sjf" true
    (Ucq.is_union_of_self_join_free psi1);
  Alcotest.(check int) "binary" 2 (Ucq.arity psi1);
  (* Lemma 48 item 3: every non-combined support term is acyclic *)
  List.iter
    (fun (t : Ucq.expansion_term) ->
      if not (Cq.isomorphic t.representative combined1) then
        Alcotest.(check bool) "support term acyclic" true
          (Cq.is_acyclic t.representative))
    (Ucq.support psi1)

let test_expansion_distinct_classes () =
  (* three pairwise non-isomorphic disjuncts: all 2^3 - 1 = 7 combined
     queries fall in distinct classes *)
  let psi =
    Ucq.make
      [
        mkcq 3 [ [ 0; 1 ] ] [ 0; 1; 2 ];
        mkcq 3 [ [ 1; 2 ] ] [ 0; 1; 2 ];
        mkcq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ];
      ]
  in
  (* two classes: the single-edge disjuncts are isomorphic (the free set
     maps setwise), and every J containing disjunct 3 or both 1 and 2
     yields the path.  Edge: +1 +1 = 2; path: +1 (J={3}) - 3 (pairs) + 1
     (J={1,2,3}) = -1. *)
  let terms = Ucq.expansion psi in
  let support = Ucq.support psi in
  Alcotest.(check int) "two classes" 2 (List.length terms);
  Alcotest.(check int) "support size" 2 (List.length support);
  let path = mkcq 3 [ [ 0; 1 ]; [ 1; 2 ] ] [ 0; 1; 2 ] in
  Alcotest.(check int) "path coefficient" (-1) (Ucq.coefficient psi path);
  let edge = mkcq 3 [ [ 0; 1 ] ] [ 0; 1; 2 ] in
  Alcotest.(check int) "edge coefficient" 2 (Ucq.coefficient psi edge)

let test_restrict_semantics () =
  let psi =
    Ucq.make
      [
        mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ];
        mkcq 2 [ [ 1; 0 ] ] [ 0; 1 ];
        mkcq 2 [ [ 0; 0 ] ] [ 0; 1 ];
      ]
  in
  let db = Generators.random_digraph ~seed:31 5 9 in
  (* a sub-union counts a subset of the answers *)
  let sub = Ucq.restrict psi [ 0; 2 ] in
  Alcotest.(check bool) "monotone" true
    (Ucq.count_naive sub db <= Ucq.count_naive psi db);
  Alcotest.(check int) "sub union agree" (Ucq.count_naive sub db)
    (Ucq.count_via_expansion sub db)

let test_size_and_arity () =
  let psi = Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0 ] ] in
  Alcotest.(check bool) "size positive" true (Ucq.size psi > 0);
  Alcotest.(check int) "arity 2" 2 (Ucq.arity psi)

let test_exhaustive_q_hierarchical () =
  (* single q-hierarchical CQ *)
  let star = Ucq.make [ mkcq 3 [ [ 0; 1 ]; [ 0; 2 ] ] [ 0 ] ] in
  Alcotest.(check bool) "star union" true (Ucq.is_exhaustively_q_hierarchical star);
  (* the union E(x0,x1) ∨ E(x1,x2)-style combined query is the paper's
     non-q-hierarchical path *)
  let path_union =
    Ucq.make
      [
        mkcq 4 [ [ 0; 1 ] ] [ 0; 1; 2; 3 ];
        mkcq 4 [ [ 1; 2 ] ] [ 0; 1; 2; 3 ];
        mkcq 4 [ [ 2; 3 ] ] [ 0; 1; 2; 3 ];
      ]
  in
  Alcotest.(check bool) "path union fails" false
    (Ucq.is_exhaustively_q_hierarchical path_union)

let test_compiled () =
  let psi =
    Ucq.make [ mkcq 2 [ [ 0; 1 ] ] [ 0; 1 ]; mkcq 2 [ [ 1; 0 ] ] [ 0; 1 ] ]
  in
  let c = Ucq.compile psi in
  Alcotest.(check int) "support preserved" 2
    (List.length (Ucq.compiled_support c));
  List.iter
    (fun seed ->
      let db = Generators.random_digraph ~seed 6 12 in
      Alcotest.(check int)
        (Printf.sprintf "compiled count seed %d" seed)
        (Ucq.count_via_expansion psi db)
        (Ucq.count_compiled c db))
    [ 1; 2; 3 ]

let qcheck_counting =
  let open QCheck in
  let gen_disjunct =
    Gen.(>>=) (Gen.int_range 1 3) (fun extra ->
        Gen.map
          (fun pairs ->
            List.map (fun (u, v) -> [ u mod (2 + extra); v mod (2 + extra) ]) pairs)
          (Gen.list_size (Gen.int_range 1 3)
             (Gen.pair (Gen.int_range 0 4) (Gen.int_range 0 4))))
  in
  let gen_ucq =
    make
      ~print:(fun dss ->
        String.concat " | "
          (List.map
             (fun ds ->
               String.concat ","
                 (List.map
                    (fun t -> "E" ^ String.concat "" (List.map string_of_int t))
                    ds))
             dss))
      (Gen.list_size (Gen.int_range 1 3) gen_disjunct)
  in
  let build dss =
    (* free variables {0, 1}; everything above is quantified *)
    Ucq.make
      (List.map
         (fun edges ->
           let n = 1 + List.fold_left (fun acc t -> List.fold_left max acc t) 1 edges in
           mkcq n edges [ 0; 1 ])
         dss)
  in
  [
    Test.make ~name:"IE and expansion counting agree with naive" ~count:60
      (pair gen_ucq (int_range 0 500))
      (fun (dss, seed) ->
        let psi = build dss in
        let db = Generators.random_digraph ~seed 4 8 in
        let naive = Ucq.count_naive psi db in
        Ucq.count_inclusion_exclusion psi db = naive
        && Ucq.count_via_expansion psi db = naive);
    Test.make ~name:"big counting agrees with int counting" ~count:30
      (pair gen_ucq (int_range 0 500))
      (fun (dss, seed) ->
        let psi = build dss in
        let db = Generators.random_digraph ~seed 4 8 in
        Bigint.to_int_opt (Ucq.count_inclusion_exclusion_big psi db)
        = Some (Ucq.count_inclusion_exclusion psi db)
        && Bigint.to_int_opt (Ucq.count_via_expansion_big psi db)
          = Some (Ucq.count_via_expansion psi db));
  ]

let suite =
  [
    ( "ucq",
      [
        Alcotest.test_case "accessors" `Quick test_structure_accessors;
        Alcotest.test_case "rename apart" `Quick test_rename_apart;
        Alcotest.test_case "combined queries" `Quick test_combined;
        Alcotest.test_case "union counting semantics" `Quick test_count_union_semantics;
        Alcotest.test_case "coefficients (symmetric pair)" `Quick test_coefficients_sym;
        Alcotest.test_case "coefficient lookup" `Quick test_coefficient_lookup;
        Alcotest.test_case "Lemma 26 identity" `Quick test_lemma26_identity;
        Alcotest.test_case "quantified unions" `Quick test_quantified_union;
        Alcotest.test_case "paper examples psi1/psi2" `Quick test_paper_psi1_psi2;
        Alcotest.test_case "expansion classes" `Quick test_expansion_distinct_classes;
        Alcotest.test_case "restrict semantics" `Quick test_restrict_semantics;
        Alcotest.test_case "size and arity" `Quick test_size_and_arity;
        Alcotest.test_case "compiled expansions" `Quick test_compiled;
        Alcotest.test_case "exhaustive q-hierarchicality" `Quick
          test_exhaustive_q_hierarchical;
      ]
      @ List.map QCheck_alcotest.to_alcotest qcheck_counting );
  ]
