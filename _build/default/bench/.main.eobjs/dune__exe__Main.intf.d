bench/main.mli:
