bench/bench_util.ml: List Printf Sys
