(** The [ucqc] command-line tool.

    Subcommands:
    - [count]      count answers to a UCQ in a database
    - [approx]     Karp-Luby approximate counting (Section 1.2)
    - [meta]       decide linear-time countability (Theorem 5)
    - [classify]   structural measures for the Theorems 1/2/3 criteria
    - [wl-dim]     Weisfeiler–Leman dimension (Theorems 7/8/58)
    - [enumerate]  constant-delay enumeration of an acyclic CQ's answers
    - [euler]      reduced Euler characteristic of a facet-encoded complex
    - [pipeline]   the Lemma 51 SAT-hardness pipeline on a DIMACS file
    - [treewidth]  treewidth of the Gaifman graph of a database

    Query files use the {!Parse} surface syntax, e.g.
    [(x, y) :- E(x, z), E(z, y) ; E(x, y)]. *)

open Cmdliner

let read_file (path : string) : string =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let query_arg =
  let doc = "Query file (surface syntax: '(x, y) :- E(x, z), E(z, y) ; ...')." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY" ~doc)

(* ------------------------------------------------------------------ *)
(* count                                                              *)
(* ------------------------------------------------------------------ *)

let method_enum =
  Arg.enum
    [ ("expansion", `Expansion); ("ie", `Ie); ("naive", `Naive) ]

let count_cmd =
  let db_arg =
    let doc = "Database file (facts: 'E(1, 2). E(2, 3).')." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DB" ~doc)
  in
  let method_arg =
    let doc =
      "Counting method: 'expansion' (CQ expansion, Lemma 26), 'ie' \
       (inclusion-exclusion), or 'naive' (enumeration; exponential)."
    in
    Arg.(value & opt method_enum `Expansion & info [ "method" ] ~doc)
  in
  let run qfile dbfile meth =
    let psi, _ = Parse.ucq (read_file qfile) in
    let db, _ = Parse.database (read_file dbfile) in
    let count =
      match meth with
      | `Expansion -> Ucq.count_via_expansion psi db
      | `Ie -> Ucq.count_inclusion_exclusion psi db
      | `Naive -> Ucq.count_naive psi db
    in
    Printf.printf "%d\n" count
  in
  let doc = "Count answers to a union of conjunctive queries." in
  Cmd.v (Cmd.info "count" ~doc)
    Term.(const run $ query_arg $ db_arg $ method_arg)

(* ------------------------------------------------------------------ *)
(* approx                                                             *)
(* ------------------------------------------------------------------ *)

let approx_cmd =
  let db_arg =
    let doc = "Database file." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DB" ~doc)
  in
  let samples_arg =
    let doc = "Sample budget for the Karp-Luby estimator." in
    Arg.(value & opt int 10_000 & info [ "samples" ] ~doc)
  in
  let seed_arg =
    let doc = "Random seed." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let run qfile dbfile samples seed =
    let psi, _ = Parse.ucq (read_file qfile) in
    let db, _ = Parse.database (read_file dbfile) in
    let est = Karp_luby.estimate ~seed ~samples psi db in
    Printf.printf "estimate: %.2f (samples %d, space %d, hits %d)\n"
      est.Karp_luby.value est.Karp_luby.samples est.Karp_luby.space
      est.Karp_luby.hits
  in
  let doc =
    "Approximate the answer count with the Karp-Luby estimator (Section \
     1.2) — no exponential CQ expansion involved."
  in
  Cmd.v (Cmd.info "approx" ~doc)
    Term.(const run $ query_arg $ db_arg $ samples_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* meta                                                               *)
(* ------------------------------------------------------------------ *)

let meta_cmd =
  let run qfile =
    let psi, env = Parse.ucq (read_file qfile) in
    let d = Meta.decide psi in
    Printf.printf "linear-time countable: %b\n" d.Meta.linear_time;
    Printf.printf "expansion support (%d #minimal classes):\n"
      (List.length d.Meta.support);
    List.iter
      (fun (q, c) ->
        Printf.printf "  %+d  x  %s   [%s]\n" c
          (Pretty.cq ~env q)
          (if Cq.is_acyclic q then "acyclic" else "CYCLIC"))
      d.Meta.support
  in
  let doc =
    "Decide whether counting answers is possible in linear time (META, \
     Theorem 5; quantifier-free unions only)."
  in
  Cmd.v (Cmd.info "meta" ~doc) Term.(const run $ query_arg)

(* ------------------------------------------------------------------ *)
(* classify                                                           *)
(* ------------------------------------------------------------------ *)

let classify_cmd =
  let gamma_arg =
    let doc = "Skip the exponential Gamma(C) measures." in
    Arg.(value & flag & info [ "no-gamma" ] ~doc)
  in
  let run qfile no_gamma =
    let psi, _ = Parse.ucq (read_file qfile) in
    let r = Classify.analyze ~with_gamma:(not no_gamma) psi in
    Printf.printf "disjuncts:               %d\n" r.Classify.num_disjuncts;
    Printf.printf "quantifier-free:         %b\n" r.Classify.quantifier_free;
    Printf.printf "union of self-join-free: %b\n" r.Classify.union_of_self_join_free;
    Printf.printf "quantified variables:    %d\n" r.Classify.num_quantified;
    Printf.printf "tw(/\\Psi):               %d\n" r.Classify.combined_tw;
    Printf.printf "tw(contract(/\\Psi)):     %d\n" r.Classify.combined_contract_tw;
    if not no_gamma then begin
      Printf.printf "max tw over Gamma:       %d\n" r.Classify.gamma_max_tw;
      Printf.printf "max ctw over Gamma:      %d\n" r.Classify.gamma_max_contract_tw
    end
  in
  let doc = "Report the treewidth measures behind Theorems 1/2/3." in
  Cmd.v (Cmd.info "classify" ~doc) Term.(const run $ query_arg $ gamma_arg)

(* ------------------------------------------------------------------ *)
(* wl-dim                                                             *)
(* ------------------------------------------------------------------ *)

let wl_dim_cmd =
  let approx_arg =
    let doc = "Use the polynomial-per-term approximation (Theorem 7)." in
    Arg.(value & flag & info [ "approx" ] ~doc)
  in
  let run qfile approx =
    let psi, _ = Parse.ucq (read_file qfile) in
    if approx then begin
      let lo, hi = Wl_dimension.approximate psi in
      Printf.printf "dim_WL in [%d, %d]\n" lo hi
    end
    else Printf.printf "dim_WL = %d\n" (Wl_dimension.exact psi)
  in
  let doc =
    "Compute the Weisfeiler-Leman dimension of a quantifier-free UCQ on \
     labelled graphs (Theorems 7/8/58)."
  in
  Cmd.v (Cmd.info "wl-dim" ~doc) Term.(const run $ query_arg $ approx_arg)

(* ------------------------------------------------------------------ *)
(* euler                                                              *)
(* ------------------------------------------------------------------ *)

let euler_cmd =
  let file_arg =
    let doc = "Complex file: one facet per line, elements separated by spaces or commas." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"COMPLEX" ~doc)
  in
  let run path =
    let facets =
      read_file path |> String.split_on_char '\n'
      |> List.filter_map (fun line ->
             let line = String.trim line in
             if line = "" || line.[0] = '#' then None
             else
               Some
                 (String.split_on_char ' '
                    (String.map (fun c -> if c = ',' then ' ' else c) line)
                 |> List.filter (( <> ) "")
                 |> List.map int_of_string))
    in
    let ground = List.sort_uniq compare (List.concat facets) in
    let c = Scomplex.make ground facets in
    Printf.printf "ground set: %d elements, %d facets\n"
      (List.length (Scomplex.ground c))
      (List.length (Scomplex.facets c));
    Printf.printf "irreducible: %b\n" (Scomplex.is_irreducible c);
    Printf.printf "reduced Euler characteristic: %d\n" (Scomplex.euler c)
  in
  let doc = "Reduced Euler characteristic of a facet-encoded complex." in
  Cmd.v (Cmd.info "euler" ~doc) Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* pipeline                                                           *)
(* ------------------------------------------------------------------ *)

let pipeline_cmd =
  let file_arg =
    let doc = "DIMACS CNF file (keep it tiny: the analysis is exponential)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CNF" ~doc)
  in
  let t_arg =
    let doc = "Clique parameter t of the K_t^k construction." in
    Arg.(value & opt int 3 & info [ "t" ] ~doc)
  in
  let run path t =
    let f = Cnf.parse_dimacs (read_file path) in
    match Pipeline.ucq_of_cnf ~t f with
    | Pipeline.Resolved sat ->
        Printf.printf "resolved during preprocessing: satisfiable = %b\n" sat
    | Pipeline.Query { psi; ktk; complex } ->
        Printf.printf "power complex: |U| = %d, |Omega| = %d\n"
          (List.length complex.Power_complex.universe)
          (List.length complex.Power_complex.ground);
        Printf.printf "UCQ: %d CQs over K_%d^%d\n" (Ucq.length psi) ktk.Ktk.t_
          ktk.Ktk.k;
        Printf.printf "c_Psi(K_t^k) = %d\n"
          (Ucq.coefficient psi (Ucq.combined_all psi));
        let d = Meta.decide psi in
        Printf.printf "META linear-time: %b  =>  formula %s\n" d.Meta.linear_time
          (if d.Meta.linear_time then "UNSATISFIABLE" else "SATISFIABLE")
  in
  let doc = "Run the Lemma 51 SAT-hardness pipeline on a DIMACS file." in
  Cmd.v (Cmd.info "pipeline" ~doc) Term.(const run $ file_arg $ t_arg)

(* ------------------------------------------------------------------ *)
(* enumerate                                                          *)
(* ------------------------------------------------------------------ *)

let enumerate_cmd =
  let db_arg =
    let doc = "Database file." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"DB" ~doc)
  in
  let limit_arg =
    let doc = "Print at most this many answers (0 = all)." in
    Arg.(value & opt int 20 & info [ "limit" ] ~doc)
  in
  let run qfile dbfile limit =
    let q, env = Parse.cq (read_file qfile) in
    let db, _ = Parse.database (read_file dbfile) in
    let e = Enumerate.prepare q db in
    let seq = Enumerate.answers e in
    let seq = if limit > 0 then Seq.take limit seq else seq in
    let names = List.map (Pretty.var_name env) (Cq.free q) in
    Printf.printf "(%s)\n" (String.concat ", " names);
    Seq.iter
      (fun a ->
        Printf.printf "(%s)\n" (String.concat ", " (List.map string_of_int a)))
      seq
  in
  let doc =
    "Enumerate the answers of an acyclic quantifier-free CQ with constant \
     delay (Section 1.1)."
  in
  Cmd.v (Cmd.info "enumerate" ~doc)
    Term.(const run $ query_arg $ db_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* treewidth                                                          *)
(* ------------------------------------------------------------------ *)

let treewidth_cmd =
  let file_arg =
    let doc = "Database file (its Gaifman graph is decomposed)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DB" ~doc)
  in
  let exact_arg =
    let doc = "Force the exact (exponential) algorithm regardless of size." in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  let run path force_exact =
    let d, _ = Parse.database (read_file path) in
    let g, _ = Structure.gaifman d in
    if force_exact || Graph.num_vertices g <= 20 then
      Printf.printf "treewidth = %d (exact)\n" (Treewidth.treewidth g)
    else begin
      let ub, _ = Treewidth.heuristic g in
      Printf.printf "treewidth in [%d, %d] (heuristic; use --exact to force)\n"
        (Treewidth.lower_bound g) ub
    end
  in
  let doc = "Treewidth of the Gaifman graph of a database." in
  Cmd.v (Cmd.info "treewidth" ~doc) Term.(const run $ file_arg $ exact_arg)

let () =
  let doc = "counting answers to unions of conjunctive queries (PODS 2024)" in
  let info = Cmd.info "ucqc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            count_cmd;
            approx_cmd;
            meta_cmd;
            classify_cmd;
            wl_dim_cmd;
            euler_cmd;
            pipeline_cmd;
            enumerate_cmd;
            treewidth_cmd;
          ]))
