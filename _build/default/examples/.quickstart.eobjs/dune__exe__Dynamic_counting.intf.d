examples/dynamic_counting.mli:
