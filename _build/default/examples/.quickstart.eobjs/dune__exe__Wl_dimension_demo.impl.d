examples/wl_dimension_demo.ml: Cq Format List Paper_examples Signature Structure Ucq Wl Wl_dimension
