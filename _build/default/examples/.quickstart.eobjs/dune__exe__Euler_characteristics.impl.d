examples/euler_characteristics.ml: Cnf Format List Power_complex Sat_complex Scomplex String
