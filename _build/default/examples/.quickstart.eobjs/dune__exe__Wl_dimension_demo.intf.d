examples/wl_dimension_demo.mli:
