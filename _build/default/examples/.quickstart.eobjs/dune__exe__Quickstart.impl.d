examples/quickstart.ml: Classify Cq Format List Signature Structure Ucq
