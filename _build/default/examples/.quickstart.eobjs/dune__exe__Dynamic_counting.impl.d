examples/dynamic_counting.ml: Cq Dynamic Format Generators List Paper_examples Random Signature Structure Sys
