examples/quickstart.mli:
