examples/social_network.ml: Counting Cq Format List Meta Random Signature Structure Ucq
