examples/euler_characteristics.mli:
