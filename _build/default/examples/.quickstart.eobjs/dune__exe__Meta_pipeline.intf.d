examples/meta_pipeline.mli:
