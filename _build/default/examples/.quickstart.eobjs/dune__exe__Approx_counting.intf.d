examples/approx_counting.mli:
