examples/meta_pipeline.ml: Cnf Format Ktk List Meta Pipeline Power_complex Sys Ucq
