examples/approx_counting.ml: Cq Format Generators Karp_luby List Signature Structure Ucq
