(** The META-hardness pipeline of Section 4 (Lemma 51), end to end:

      3-CNF F  →  power complex Δ_F with χ̂(Δ_F) = #sat(F)
               →  UCQ Ψ_F (Lemma 48)
               →  META decision (Lemma 38)

    and the headline equivalence: Ψ_F is linear-time countable iff F is
    unsatisfiable.

    Run with: [dune exec examples/meta_pipeline.exe] — or pass a DIMACS
    file: [dune exec examples/meta_pipeline.exe -- path/to/file.cnf]
    (keep it tiny: the analysis is exponential in 3·vars + clauses). *)

let demo_formulas =
  [
    ("satisfiable:   (x1)", Cnf.make 1 [ [ 1 ] ]);
    ("unsatisfiable: (x1) & (-x1)", Cnf.make 1 [ [ 1 ]; [ -1 ] ]);
    ("satisfiable:   (x1 | x2) & (-x1 | x2)", Cnf.make 2 [ [ 1; 2 ]; [ -1; 2 ] ]);
    ( "unsatisfiable: all four 2-clauses",
      Cnf.make 2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ] );
  ]

let run_formula (name : string) (f : Cnf.t) : unit =
  Format.printf "--- %s ---@." name;
  Format.printf "  #sat(F) (brute force) = %d@." (Cnf.count_sat f);
  match Pipeline.ucq_of_cnf f with
  | Pipeline.Resolved sat ->
      Format.printf "  resolved during preprocessing: satisfiable = %b@.@." sat
  | Pipeline.Query { psi; ktk; complex } ->
      Format.printf "  power complex: |U| = %d, |Omega| = %d@."
        (List.length complex.Power_complex.universe)
        (List.length complex.Power_complex.ground);
      Format.printf "  chi^(Delta_F) = %d (expected: #sat)@."
        (Power_complex.euler_independent_sets complex);
      Format.printf "  UCQ Psi_F: %d CQs over K_%d^%d (%d variables)@."
        (Ucq.length psi) ktk.Ktk.t_ ktk.Ktk.k
        (List.length (Ktk.universe ktk));
      let combined = Ucq.combined_all psi in
      Format.printf "  c_Psi(K_t^k) = %d (expected: -#sat)@."
        (Ucq.coefficient psi combined);
      let decision = Meta.decide psi in
      Format.printf "  META: linear-time countable = %b  =>  F %s@.@."
        decision.Meta.linear_time
        (if decision.Meta.linear_time then "is UNSATISFIABLE"
         else "is SATISFIABLE")

let () =
  (match Sys.argv with
  | [| _ |] -> List.iter (fun (name, f) -> run_formula name f) demo_formulas
  | [| _; path |] ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      run_formula path (Cnf.parse_dimacs text)
  | _ ->
      prerr_endline "usage: meta_pipeline [file.cnf]";
      exit 2);
  Format.printf
    "Every decision above decides SAT — which is why META itself is NP-hard \
     (Theorem 5).@."
