(** Quickstart: define a union of conjunctive queries, count its answers
    three ways, inspect its CQ expansion and decide linear-time
    countability.

    Run with: [dune exec examples/quickstart.exe] *)

let () =
  (* A database over one binary relation E: a small directed graph. *)
  let sg = Signature.make [ Signature.symbol "E" 2 ] in
  let db =
    Structure.make sg
      (List.init 6 (fun i -> i))
      [ ("E", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 5 ] ]) ]
  in
  Format.printf "Database: 6 elements, %d tuples, |D| = %d@."
    (Structure.num_tuples db) (Structure.size db);

  (* Ψ(x0, x1) = E(x0, x1) ∨ (∃y. E(x0, y) ∧ E(y, x1)):
     pairs connected by an edge or by a 2-walk. *)
  let edge =
    Cq.make (Structure.make sg [ 0; 1 ] [ ("E", [ [ 0; 1 ] ]) ]) [ 0; 1 ]
  in
  let two_walk =
    Cq.make
      (Structure.make sg [ 0; 1; 2 ] [ ("E", [ [ 0; 2 ]; [ 2; 1 ] ]) ])
      [ 0; 1 ]
  in
  let psi = Ucq.make [ edge; two_walk ] in
  Format.printf "Query: %d disjuncts, %d quantified variable(s), |Psi| = %d@.@."
    (Ucq.length psi) (Ucq.num_quantified psi) (Ucq.size psi);

  (* Counting answers, three ways. *)
  Format.printf "ans(Psi -> D) by naive enumeration      = %d@."
    (Ucq.count_naive psi db);
  Format.printf "ans(Psi -> D) by inclusion-exclusion    = %d@."
    (Ucq.count_inclusion_exclusion psi db);
  Format.printf "ans(Psi -> D) by the CQ expansion       = %d@.@."
    (Ucq.count_via_expansion psi db);

  (* The CQ expansion (Definition 25 / Lemma 26): #minimal representatives
     with non-zero coefficients. *)
  Format.printf "CQ expansion support of Psi:@.";
  List.iter
    (fun (t : Ucq.expansion_term) ->
      Format.printf "  coefficient %+d  x  query with %d variables, %d atoms (%s)@."
        t.coefficient
        (Structure.universe_size (Cq.structure t.representative))
        (Structure.num_tuples (Cq.structure t.representative))
        (if Cq.is_acyclic t.representative then "acyclic" else "cyclic"))
    (Ucq.support psi);

  (* Structural measures used by the classifications of Theorems 1-3. *)
  let report = Classify.analyze psi in
  Format.printf "@.tw(/\\(Psi)) = %d,  tw(contract(/\\(Psi))) = %d@."
    report.Classify.combined_tw report.Classify.combined_contract_tw;
  Format.printf "max tw over Gamma = %d,  max contract tw over Gamma = %d@."
    report.Classify.gamma_max_tw report.Classify.gamma_max_contract_tw
