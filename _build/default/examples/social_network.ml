(** A domain example: counting interaction patterns in a synthetic social
    network.

    Schema (all binary, a "labelled graph" in the sense of Section 5):
    - [Follows(u, v)]: user u follows user v;
    - [Likes(u, p)]: user u likes post p;
    - [Authored(u, p)]: user u wrote post p.

    The example counts answers to a union of patterns and shows how the
    structural criteria of the paper predict which patterns are cheap.

    Run with: [dune exec examples/social_network.exe] *)

let sg =
  Signature.make
    [
      Signature.symbol "Follows" 2;
      Signature.symbol "Likes" 2;
      Signature.symbol "Authored" 2;
    ]

(** Generate a network with [users] users and [posts] posts; element ids:
    users are [0 .. users-1], posts are [users .. users+posts-1]. *)
let network ~seed ~users ~posts =
  let st = Random.State.make [| seed |] in
  let follows = ref [] in
  for _ = 1 to 4 * users do
    let u = Random.State.int st users and v = Random.State.int st users in
    if u <> v then follows := [ u; v ] :: !follows
  done;
  let likes = ref [] in
  for _ = 1 to 6 * users do
    let u = Random.State.int st users in
    let p = users + Random.State.int st posts in
    likes := [ u; p ] :: !likes
  done;
  let authored =
    List.init posts (fun i -> [ Random.State.int st users; users + i ])
  in
  Structure.make sg
    (List.init (users + posts) (fun i -> i))
    [ ("Follows", !follows); ("Likes", !likes); ("Authored", authored) ]

let () =
  let db = network ~seed:2024 ~users:40 ~posts:30 in
  Format.printf "Network: |D| = %d (%d tuples)@.@." (Structure.size db)
    (Structure.num_tuples db);

  (* Ψ(u, v) = "u and v interact":
       Follows(u, v) ∧ Follows(v, u)                  (mutual follows)
     ∨ ∃p. Likes(u, p) ∧ Likes(v, p)                  (co-liked post)
     ∨ ∃p. Authored(u, p) ∧ Likes(v, p)               (v likes u's post) *)
  let mutual =
    Cq.make
      (Structure.make sg [ 0; 1 ] [ ("Follows", [ [ 0; 1 ]; [ 1; 0 ] ]) ])
      [ 0; 1 ]
  in
  let co_like =
    Cq.make
      (Structure.make sg [ 0; 1; 2 ] [ ("Likes", [ [ 0; 2 ]; [ 1; 2 ] ]) ])
      [ 0; 1 ]
  in
  let fan =
    Cq.make
      (Structure.make sg [ 0; 1; 2 ]
         [ ("Authored", [ [ 0; 2 ] ]); ("Likes", [ [ 1; 2 ] ]) ])
      [ 0; 1 ]
  in
  let psi = Ucq.make [ mutual; co_like; fan ] in
  Format.printf "interacting pairs (naive)               = %d@."
    (Ucq.count_naive psi db);
  Format.printf "interacting pairs (inclusion-exclusion) = %d@."
    (Ucq.count_inclusion_exclusion psi db);
  Format.printf "interacting pairs (CQ expansion)        = %d@.@."
    (Ucq.count_via_expansion psi db);

  (* Per-disjunct counts with the automatic strategy (all disjuncts are
     acyclic, so counting each is linear; the union requires the expansion
     machinery). *)
  List.iteri
    (fun i q ->
      Format.printf "disjunct %d: %s, self-join-free: %b, answers = %d@." i
        (if Cq.is_acyclic q then "acyclic" else "cyclic")
        (Cq.is_self_join_free q) (Counting.count q db))
    (Ucq.disjuncts psi);

  (* The expansion support tells us which combined patterns actually
     matter. *)
  Format.printf "@.expansion support (%d classes):@."
    (List.length (Ucq.support psi));
  List.iter
    (fun (t : Ucq.expansion_term) ->
      Format.printf "  %+d  x  (%d vars, %d atoms, %s)@." t.coefficient
        (Structure.universe_size (Cq.structure t.representative))
        (Structure.num_tuples (Cq.structure t.representative))
        (if Cq.is_acyclic t.representative then "acyclic" else "cyclic"))
    (Ucq.support psi);

  (* A quantifier-free pattern union on the Follows graph: META applies. *)
  let follows_edge a b =
    Structure.make sg [ 0; 1; 2 ] [ ("Follows", [ [ a; b ] ]) ]
  in
  let qf_union =
    Ucq.make
      (List.map
         (fun s -> Cq.make s [ 0; 1; 2 ])
         [ follows_edge 0 1; follows_edge 1 2; follows_edge 2 0 ])
  in
  let decision = Meta.decide qf_union in
  Format.printf
    "@.META on the triangle-of-unions pattern: linear-time countable = %b@."
    decision.Meta.linear_time;
  Format.printf "  (the combined query closes a Follows-triangle: %d cyclic term%s)@."
    (List.length decision.Meta.offending)
    (if List.length decision.Meta.offending = 1 then "" else "s")
