(** Approximate counting of UCQ answers with the Karp–Luby estimator
    (Section 1.2: "for approximate counting, unions can generally be
    handled using a standard trick of Karp and Luby").

    Exact counting of unions is genuinely harder than counting single CQs
    (Theorem 5); approximation side-steps this: each disjunct is counted
    and sampled exactly (acyclic disjuncts through the join tree), and the
    union is handled by sampling.

    Run with: [dune exec examples/approx_counting.exe] *)

let () =
  let sg = Signature.make [ Signature.symbol "E" 2 ] in
  let mk n edges free =
    Cq.make (Structure.make sg (List.init n (fun i -> i)) [ ("E", edges) ]) free
  in
  (* Ψ(x, y) = "x reaches y in at most 3 steps":
     E(x,y) ∨ ∃z E(x,z)∧E(z,y) ∨ ∃z,w E(x,z)∧E(z,w)∧E(w,y) *)
  let psi =
    Ucq.make
      [
        mk 2 [ [ 0; 1 ] ] [ 0; 1 ];
        mk 3 [ [ 0; 2 ]; [ 2; 1 ] ] [ 0; 1 ];
        mk 4 [ [ 0; 2 ]; [ 2; 3 ]; [ 3; 1 ] ] [ 0; 1 ];
      ]
  in
  let db = Generators.random_digraph ~seed:17 60 200 in
  let exact = Ucq.count_via_expansion psi db in
  Format.printf "exact ans(Psi -> D) = %d@.@." exact;
  Format.printf "%-10s %-12s %-10s %-10s@." "samples" "estimate" "error" "hits";
  List.iter
    (fun samples ->
      let est = Karp_luby.estimate ~seed:1 ~samples psi db in
      Format.printf "%-10d %-12.1f %-10.2f%% %-10d@." samples
        est.Karp_luby.value
        (100. *. abs_float (est.Karp_luby.value -. float_of_int exact)
        /. float_of_int exact)
        est.Karp_luby.hits)
    [ 100; 1000; 10_000; 100_000 ];
  let est = Karp_luby.fpras ~epsilon:0.05 ~delta:0.01 psi db in
  Format.printf
    "@.fpras(eps=0.05, delta=0.01): %d samples, estimate %.1f (exact %d)@."
    est.Karp_luby.samples est.Karp_luby.value exact;
  Format.printf "sample space (sum of disjunct counts) = %d@." est.Karp_luby.space
