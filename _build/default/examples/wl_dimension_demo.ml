(** The Weisfeiler–Leman dimension of UCQs (Section 5, Theorems 7/8/58).

    Computes dim_WL for the paper's queries Ψ₁ and Ψ₂ (equal combined
    query, different dimensions), and demonstrates the underlying k-WL
    algorithm on the classical 6-cycle versus two-triangles pair.

    Run with: [dune exec examples/wl_dimension_demo.exe] *)

let () =
  let psi1, _ = Paper_examples.psi1 () in
  let psi2, _ = Paper_examples.psi2 () in
  Format.printf "Psi1 = A^_3(Delta1),  Psi2 = A^_3(Delta2)   (Figure 1/2)@.@.";
  List.iter
    (fun (name, psi) ->
      let exact = Wl_dimension.exact psi in
      let lo, hi = Wl_dimension.approximate psi in
      Format.printf
        "%s: dim_WL = hdtw = %d   (poly-time approximation: [%d, %d])@." name
        exact lo hi)
    [ ("Psi1", psi1); ("Psi2", psi2) ];
  Format.printf
    "@.Although /\\(Psi1) = /\\(Psi2) = K_3^4, the dimensions differ: the@.";
  Format.printf
    "cyclic term survives in Psi1's expansion (coefficient %d) but cancels@."
    (Ucq.coefficient psi1 (Ucq.combined_all psi1));
  Format.printf "in Psi2's (coefficient %d).@.@."
    (Ucq.coefficient psi2 (Ucq.combined_all psi2));

  (* The k-WL algorithm itself: C6 vs 2xC3. *)
  let sg = Signature.make [ Signature.symbol "E" 2 ] in
  let sym edges = List.concat_map (fun (u, v) -> [ [ u; v ]; [ v; u ] ]) edges in
  let c6 =
    Structure.make sg (List.init 6 (fun i -> i))
      [ ("E", sym [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ]) ]
  in
  let cc3 =
    Structure.make sg (List.init 6 (fun i -> i))
      [ ("E", sym [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]) ]
  in
  Format.printf "k-WL on C6 versus C3 + C3 (both 2-regular):@.";
  List.iter
    (fun k ->
      Format.printf "  %d-WL equivalent: %b@." k (Wl.equivalent ~k c6 cc3))
    [ 1; 2 ];
  Format.printf
    "@.Consistency with Definition 6: a UCQ of WL-dimension 1 cannot tell@.";
  Format.printf "them apart.  Count answers of a tree-shaped union on both:@.";
  let path =
    Cq.of_structure
      (Structure.make sg [ 0; 1; 2 ] [ ("E", [ [ 0; 1 ]; [ 1; 2 ] ]) ])
  in
  let star =
    Cq.of_structure
      (Structure.make sg [ 0; 1; 2 ] [ ("E", [ [ 1; 0 ]; [ 1; 2 ] ]) ])
  in
  let psi = Ucq.make [ path; star ] in
  Format.printf "  dim_WL(union of trees) = %d@." (Wl_dimension.exact psi);
  Format.printf "  ans on C6      = %d@." (Ucq.count_via_expansion psi c6);
  Format.printf "  ans on C3 + C3 = %d@." (Ucq.count_via_expansion psi cc3);
  let tri =
    Ucq.make
      [
        Cq.of_structure
          (Structure.make sg [ 0; 1; 2 ]
             [ ("E", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 0 ] ]) ]);
      ]
  in
  Format.printf "@.A dimension-2 query separates them:@.";
  Format.printf "  dim_WL(triangle) = %d@." (Wl_dimension.exact tri);
  Format.printf "  ans on C6      = %d@." (Ucq.count_via_expansion tri c6);
  Format.printf "  ans on C3 + C3 = %d@." (Ucq.count_via_expansion tri cc3)
