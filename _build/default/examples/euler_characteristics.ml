(** Simplicial complexes and reduced Euler characteristics (Section 4.2.1,
    Figure 1): the three algorithms, domination reduction, and the Lemma 47
    power-complex conversion.

    Run with: [dune exec examples/euler_characteristics.exe] *)

let describe name c =
  Format.printf "%s: %a@." name Scomplex.pp c;
  Format.printf "  faces: %d, irreducible: %b@."
    (List.length (Scomplex.faces c))
    (Scomplex.is_irreducible c);
  Format.printf "  chi^ (brute over faces)        = %d@." (Scomplex.euler_brute c);
  Format.printf "  chi^ (facet inclusion-exclusion) = %d@."
    (Scomplex.euler_facet_ie c);
  Format.printf "  chi^ (with Lemma 42 reduction)   = %d@.@." (Scomplex.euler c)

let () =
  Format.printf "=== Figure 1 of the paper ===@.@.";
  describe "Delta1" Scomplex.figure1_delta1;
  describe "Delta2" Scomplex.figure1_delta2;

  Format.printf "=== Domination and Lemma 42 ===@.@.";
  let cone = Scomplex.make [ 1; 2; 3; 4 ] [ [ 1; 2; 3 ]; [ 1; 3; 4 ] ] in
  describe "a cone (1 dominates everything)" cone;
  Format.printf "after domination reduction: trivial = %b (so chi^ = 0)@.@."
    (Scomplex.is_trivial (Scomplex.reduce cone));

  Format.printf "=== Lemma 47: power complex of Delta1 ===@.@.";
  let pc, assignment = Power_complex.of_complex Scomplex.figure1_delta1 in
  Format.printf "universe U = {1..%d} (one element per facet)@."
    (List.length pc.Power_complex.universe);
  List.iter
    (fun (x, b) ->
      Format.printf "  b(%d) = {%s}@." x
        (String.concat "," (List.map string_of_int b)))
    assignment;
  Format.printf "chi^ via signed covers        = %d@."
    (Power_complex.euler_signed_cover pc);
  Format.printf "chi^ via independent sets     = %d@."
    (Power_complex.euler_independent_sets pc);
  Format.printf "isomorphic to Delta1          = %b@.@."
    (Scomplex.isomorphic Scomplex.figure1_delta1 (Power_complex.to_complex pc));

  Format.printf "=== SAT as an Euler characteristic (DESIGN.md section 3) ===@.@.";
  let f = Cnf.make 3 [ [ 1; 2; 3 ]; [ -1; -2 ]; [ -2; -3 ] ] in
  let pc = Sat_complex.power_complex_of_cnf f in
  Format.printf "F = (x1|x2|x3) & (-x1|-x2) & (-x2|-x3)@.";
  Format.printf "#sat(F)       = %d@." (Cnf.count_sat f);
  Format.printf "chi^(Delta_F) = %d   (parsimonious: always equal)@."
    (Power_complex.euler_independent_sets pc)
