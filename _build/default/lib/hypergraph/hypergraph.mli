(** Hypergraphs and alpha-acyclicity: the GYO reduction and join trees
    behind the linear-time counting criterion (Theorems 4/37). *)

type t = { vertices : int list; edges : int list list }

(** [make vertices edges] normalises (sorting, deduplicating within edges)
    and validates that edges draw from the vertex set. *)
val make : int list -> int list list -> t

val num_vertices : t -> int
val num_edges : t -> int

(** [primal_graph h] is the primal (Gaifman) graph over densely re-indexed
    vertices, plus the dense-index → vertex mapping. *)
val primal_graph : t -> Graph.t * int array

(** A join tree over the input hyperedges (nodes are indexed by position in
    the original edge list). *)
type join_tree = { nodes : int list array; tree : (int * int) list }

(** [gyo_acyclic h] decides alpha-acyclicity by ear removal. *)
val gyo_acyclic : t -> bool

(** [is_acyclic h] is {!gyo_acyclic}. *)
val is_acyclic : t -> bool

(** [join_tree h] constructs a join tree, or [None] when cyclic. *)
val join_tree : t -> join_tree option

(** [join_tree_valid h jt] checks the running-intersection property. *)
val join_tree_valid : t -> join_tree -> bool
