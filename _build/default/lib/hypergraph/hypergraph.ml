(** Finite hypergraphs and (alpha-)acyclicity.

    A conjunctive query is acyclic iff its atom hypergraph has a join tree
    (Section 2.2 of the paper, following Gottlob–Greco–Scarcello).  The
    criterion for linear-time CQ counting (Theorems 4/37) and three of the
    five guarantees of Lemma 48 are acyclicity statements, so this module is
    load-bearing for the META algorithm.

    Vertices are integers; a hyperedge is a sorted duplicate-free integer
    list.  Empty hyperedges are permitted (a nullary atom) and are trivially
    contained in every other edge. *)

module Listx = Listx

type t = { vertices : int list; (* sorted, duplicate-free *) edges : int list list }

(** [make vertices edges] normalises and validates a hypergraph: every edge
    must draw its vertices from [vertices]. *)
let make (vertices : int list) (edges : int list list) : t =
  let vertices = Listx.sort_uniq_ints vertices in
  let edges = List.map Listx.sort_uniq_ints edges in
  List.iter
    (fun e ->
      if not (Listx.is_subset_sorted e vertices) then
        invalid_arg "Hypergraph.make: edge not over vertex set")
    edges;
  { vertices; edges }

let num_vertices (h : t) : int = List.length h.vertices
let num_edges (h : t) : int = List.length h.edges

(** [primal_graph h] is the primal (Gaifman) graph: vertices of [h], with an
    edge between two vertices whenever they share a hyperedge.  Vertices are
    re-indexed densely; the second component maps dense indices back. *)
let primal_graph (h : t) : Graph.t * int array =
  let old_of_new = Array.of_list h.vertices in
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun i v -> Hashtbl.add new_of_old v i) old_of_new;
  let g = Graph.make (Array.length old_of_new) in
  List.iter
    (fun e ->
      let idx = List.map (Hashtbl.find new_of_old) e in
      List.iter
        (fun (a, b) -> Graph.add_edge g a b)
        (Combinat.pairs idx))
    h.edges;
  (g, old_of_new)

(* ------------------------------------------------------------------ *)
(* GYO reduction and join trees                                       *)
(* ------------------------------------------------------------------ *)

(** A join tree over the hyperedges of the input: nodes are indices into the
    original edge list; the connectedness ("running intersection") property
    holds for every vertex. *)
type join_tree = { nodes : int list array; tree : (int * int) list }

(** [gyo_acyclic h] decides alpha-acyclicity by ear removal: repeatedly find
    an edge [e] whose vertices-shared-with-other-edges are all contained in
    one single other edge [f] (then [e] is an "ear" and may be removed).
    The hypergraph is acyclic iff this process eliminates all but at most
    one edge. *)
let gyo_acyclic (h : t) : bool =
  let edges = Array.of_list h.edges in
  let alive = Array.make (Array.length edges) true in
  let alive_count = ref (Array.length edges) in
  let progress = ref true in
  while !alive_count > 1 && !progress do
    progress := false;
    (try
       for i = 0 to Array.length edges - 1 do
         if alive.(i) then begin
           (* vertices of edge i that occur in some other live edge *)
           let shared =
             List.filter
               (fun v ->
                 Array.exists
                   (fun j -> j)
                   (Array.mapi
                      (fun j e -> j <> i && alive.(j) && List.mem v e)
                      edges))
               edges.(i)
           in
           let witness =
             Array.exists
               (fun j -> j)
               (Array.mapi
                  (fun j e ->
                    j <> i && alive.(j) && Listx.is_subset_sorted shared e)
                  edges)
           in
           if shared = [] || witness then begin
             alive.(i) <- false;
             decr alive_count;
             progress := true;
             raise Exit
           end
         end
       done
     with Exit -> ())
  done;
  !alive_count <= 1

(** [join_tree h] constructs a join tree by the same ear-removal process,
    recording for each removed ear the containing witness edge.  Returns
    [None] when the hypergraph is cyclic. *)
let join_tree (h : t) : join_tree option =
  let edges = Array.of_list h.edges in
  let m = Array.length edges in
  if m = 0 then Some { nodes = [||]; tree = [] }
  else begin
    let alive = Array.make m true in
    let alive_count = ref m in
    let tree = ref [] in
    let progress = ref true in
    while !alive_count > 1 && !progress do
      progress := false;
      (try
         for i = 0 to m - 1 do
           if alive.(i) then begin
             let shared =
               List.filter
                 (fun v ->
                   let occurs = ref false in
                   Array.iteri
                     (fun j e ->
                       if j <> i && alive.(j) && List.mem v e then occurs := true)
                     edges;
                   !occurs)
                 edges.(i)
             in
             let witness = ref (-1) in
             Array.iteri
               (fun j e ->
                 if !witness < 0 && j <> i && alive.(j)
                    && Listx.is_subset_sorted shared e
                 then witness := j)
               edges;
             if !witness >= 0 then begin
               tree := (i, !witness) :: !tree;
               alive.(i) <- false;
               decr alive_count;
               progress := true;
               raise Exit
             end
             else if shared = [] && !alive_count > 1 then begin
               (* disconnected component: attach to any other live edge *)
               let other = ref (-1) in
               Array.iteri
                 (fun j _ -> if !other < 0 && j <> i && alive.(j) then other := j)
                 edges;
               tree := (i, !other) :: !tree;
               alive.(i) <- false;
               decr alive_count;
               progress := true;
               raise Exit
             end
           end
         done
       with Exit -> ())
    done;
    if !alive_count > 1 then None
    else Some { nodes = edges; tree = !tree }
  end

(** [is_acyclic h] is [gyo_acyclic h]; exposed under the paper's name. *)
let is_acyclic (h : t) : bool = gyo_acyclic h

(** [join_tree_valid h jt] checks the running-intersection property: for
    every vertex, the tree nodes whose edge contains it form a subtree. *)
let join_tree_valid (h : t) (jt : join_tree) : bool =
  let m = Array.length jt.nodes in
  if m = 0 then h.edges = []
  else begin
    let tg = Graph.of_edges m jt.tree in
    (Graph.is_connected tg && Graph.num_edges tg = m - 1)
    && List.for_all
         (fun v ->
           let holders =
             List.filter
               (fun i -> List.mem v jt.nodes.(i))
               (List.init m (fun i -> i))
           in
           match holders with
           | [] -> true
           | _ ->
               let sub, _ = Graph.induced tg holders in
               Graph.is_connected sub)
         h.vertices
  end
