(** Seeded random query generators for fuzzing and property tests.

    The test suite cross-checks every counting engine against the naive
    oracle on queries drawn from these distributions; they are exported as
    library API so downstream users can property-test their own extensions
    the same way. *)

(** [random_cq ~seed ~max_vars ~max_atoms sg] draws a conjunctive query
    over the binary/unary/ternary symbols of [sg]: a uniform variable count
    in [1 .. max_vars], uniform atoms over uniform variable tuples, and a
    uniform subset of free variables. *)
let random_cq ~(seed : int) ~(max_vars : int) ~(max_atoms : int)
    (sg : Signature.t) : Cq.t =
  if max_vars < 1 || max_atoms < 0 then invalid_arg "Qgen.random_cq";
  let st = Random.State.make [| seed |] in
  let n = 1 + Random.State.int st max_vars in
  let num_atoms = Random.State.int st (max_atoms + 1) in
  let symbols = Array.of_list sg in
  let rels =
    List.init num_atoms (fun _ ->
        let s = symbols.(Random.State.int st (Array.length symbols)) in
        ( s.Signature.name,
          [ List.init s.Signature.arity (fun _ -> Random.State.int st n) ] ))
  in
  let free =
    List.filter (fun _ -> Random.State.bool st) (List.init n (fun i -> i))
  in
  Cq.make (Structure.make sg (List.init n (fun i -> i)) rels) free

(** [random_acyclic_cq ~seed ~max_vars sg2] draws an acyclic
    quantifier-free query over a binary symbol of [sg2] by sampling a
    random forest (each atom connects a vertex to an earlier one). *)
let random_acyclic_cq ~(seed : int) ~(max_vars : int) (sg2 : Signature.t) :
    Cq.t =
  let name =
    match List.find_opt (fun (s : Signature.symbol) -> s.arity = 2) sg2 with
    | Some s -> s.Signature.name
    | None -> invalid_arg "Qgen.random_acyclic_cq: no binary symbol"
  in
  let st = Random.State.make [| seed |] in
  let n = 2 + Random.State.int st (max 1 (max_vars - 1)) in
  let edges =
    List.init (n - 1) (fun i ->
        let target = Random.State.int st (i + 1) in
        if Random.State.bool st then [ i + 1; target ] else [ target; i + 1 ])
  in
  Cq.of_structure
    (Structure.make sg2 (List.init n (fun i -> i)) [ (name, edges) ])

(** [random_ucq ~seed ~max_disjuncts ~max_vars ~max_atoms sg] draws a union
    whose disjuncts share the free variables [{0, 1}]. *)
let random_ucq ~(seed : int) ~(max_disjuncts : int) ~(max_vars : int)
    ~(max_atoms : int) (sg : Signature.t) : Ucq.t =
  if max_disjuncts < 1 then invalid_arg "Qgen.random_ucq";
  let st = Random.State.make [| seed |] in
  let l = 1 + Random.State.int st max_disjuncts in
  let symbols = Array.of_list sg in
  let disjunct i =
    let n = 2 + Random.State.int st (max 1 (max_vars - 1)) in
    let num_atoms = 1 + Random.State.int st (max 1 max_atoms) in
    let rels =
      List.init num_atoms (fun _ ->
          let s = symbols.(Random.State.int st (Array.length symbols)) in
          ( s.Signature.name,
            [ List.init s.Signature.arity (fun _ -> Random.State.int st n) ] ))
    in
    ignore i;
    Cq.make (Structure.make sg (List.init n (fun v -> v)) rels) [ 0; 1 ]
  in
  Ucq.make (List.init l disjunct)
