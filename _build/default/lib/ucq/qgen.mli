(** Seeded random query generators for fuzzing and property tests. *)

(** [random_cq ~seed ~max_vars ~max_atoms sg] draws a CQ over [sg] with a
    uniform free-variable subset. *)
val random_cq : seed:int -> max_vars:int -> max_atoms:int -> Signature.t -> Cq.t

(** [random_acyclic_cq ~seed ~max_vars sg] draws an acyclic quantifier-free
    CQ (a random forest over a binary symbol of [sg]).
    @raise Invalid_argument when [sg] has no binary symbol. *)
val random_acyclic_cq : seed:int -> max_vars:int -> Signature.t -> Cq.t

(** [random_ucq ~seed ~max_disjuncts ~max_vars ~max_atoms sg] draws a union
    over the shared free variables [{0, 1}]. *)
val random_ucq :
  seed:int ->
  max_disjuncts:int ->
  max_vars:int ->
  max_atoms:int ->
  Signature.t ->
  Ucq.t
