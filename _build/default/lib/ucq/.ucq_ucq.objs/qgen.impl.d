lib/ucq/qgen.ml: Array Cq List Random Signature Structure Ucq
