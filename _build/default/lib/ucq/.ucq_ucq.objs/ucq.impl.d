lib/ucq/ucq.ml: Bigint Combinat Counting Cq Format Hashtbl Hom Intset List Listx Signature String Structure
