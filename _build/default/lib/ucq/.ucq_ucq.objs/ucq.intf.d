lib/ucq/ucq.mli: Bigint Counting Cq Format Structure
