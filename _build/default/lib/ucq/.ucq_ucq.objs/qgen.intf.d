lib/ucq/qgen.mli: Cq Signature Ucq
