(** The Karp–Luby estimator for UCQ answer counts (Section 1.2): exact
    per-disjunct counting and sampling, with the union handled by sampling
    — approximation side-steps the union-specific hardness of Theorem 5. *)

type estimate = {
  value : float;  (** the estimated [ans(Ψ → D)] *)
  samples : int;
  space : int;  (** [Σ_i ans(Ψ_i → D)] *)
  hits : int;
}

(** [estimate ?seed ~samples psi d] runs the estimator with a fixed
    budget; unbiased, with relative error [O(sqrt(ℓ / samples))]. *)
val estimate : ?seed:int -> samples:int -> Ucq.t -> Structure.t -> estimate

(** [fpras ?seed ~epsilon ~delta psi d] derives the budget
    [⌈4 ℓ ln(2/δ) / ε²⌉] for an (ε, δ)-guarantee.
    @raise Invalid_argument for non-positive parameters. *)
val fpras :
  ?seed:int -> epsilon:float -> delta:float -> Ucq.t -> Structure.t -> estimate
