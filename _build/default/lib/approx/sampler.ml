(** Uniform sampling from the answer set of a conjunctive query.

    The Karp–Luby estimator ({!Karp_luby}) needs, per disjunct, (a) the
    exact answer count and (b) uniform samples from the answer set.  For
    acyclic quantifier-free queries both come from the join tree: the
    bottom-up counting pass of Yannakakis stores, for every node and tuple,
    the number of consistent subtree extensions; a top-down pass then draws
    a tuple at the root proportionally to its extension count and matching
    child tuples proportionally to theirs — an exactly uniform sample in
    linear preprocessing / logarithmic-ish drawing time.  Other query
    shapes fall back to materialising the answer set. *)

type node = {
  vars : int list;
  tuples : (int array * int) array; (* tuple values, subtree count *)
  children : (int * int list) list; (* child node index, positions of shared vars *)
  (* child key -> candidate (tuple index in child, count) *)
  child_index : (int list, (int * int) list) Hashtbl.t array;
}

type t =
  | Join_tree of {
      nodes : node array;
      root : int;
      total : int;
      free_order : int list; (* sorted free variables of the query *)
      isolated : int list;
      domain : int array;
    }
  | Materialised of { free_order : int list; answers : int list array }


(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let make_join_tree (q : Cq.t) (d : Structure.t) : t option =
  if not (Cq.is_quantifier_free q) then None
  else begin
    let a = Cq.structure q in
    if not (Signature.subset (Structure.signature a) (Structure.signature d))
    then None
    else begin
      let atoms =
        List.concat_map
          (fun (name, ts) ->
            let td = Structure.relation d name in
            List.map (fun qt -> Relation.of_atom qt td) ts)
          (Structure.relations a)
      in
      if atoms = [] then None
      else begin
        let h =
          Hypergraph.make (Structure.universe a)
            (List.map (fun r -> r.Relation.vars) atoms)
        in
        match Hypergraph.join_tree h with
        | None -> None
        | Some jt ->
            let atoms_arr = Array.of_list atoms in
            let m = Array.length atoms_arr in
            (* root at 0, BFS orientation *)
            let adj = Array.make m [] in
            List.iter
              (fun (x, y) ->
                adj.(x) <- y :: adj.(x);
                adj.(y) <- x :: adj.(y))
              jt.Hypergraph.tree;
            let parent = Array.make m (-1) in
            let children = Array.make m [] in
            let visited = Array.make m false in
            let topo = ref [] in
            let queue = Queue.create () in
            Queue.add 0 queue;
            visited.(0) <- true;
            while not (Queue.is_empty queue) do
              let x = Queue.pop queue in
              topo := x :: !topo;
              List.iter
                (fun y ->
                  if not visited.(y) then begin
                    visited.(y) <- true;
                    parent.(y) <- x;
                    children.(x) <- y :: children.(x);
                    Queue.add y queue
                  end)
                adj.(x)
            done;
            (* bottom-up counts *)
            let nodes = Array.make m None in
            let counts :
                (int list, (int * int) list) Hashtbl.t array =
              (* per node: parent key -> (tuple index, count) list *)
              Array.init m (fun _ -> Hashtbl.create 64)
            in
            List.iter
              (fun i ->
                let rel = atoms_arr.(i) in
                let vars_i = rel.Relation.vars in
                let tuples = Array.of_list rel.Relation.tuples in
                let child_info =
                  List.map
                    (fun c ->
                      let itx =
                        Listx.inter_sorted (atoms_arr.(c)).Relation.vars vars_i
                      in
                      let pos = List.map (fun v -> Listx.index_of v vars_i) itx in
                      (c, pos))
                    children.(i)
                in
                let parent_pos =
                  if parent.(i) < 0 then []
                  else
                    List.map
                      (fun v -> Listx.index_of v vars_i)
                      (Listx.inter_sorted vars_i
                         (atoms_arr.(parent.(i))).Relation.vars)
                in
                let tuple_counts =
                  Array.map
                    (fun t ->
                      let arr = Array.of_list t in
                      let c =
                        List.fold_left
                          (fun acc (child, pos) ->
                            if acc = 0 then 0
                            else begin
                              let key = List.map (fun p -> arr.(p)) pos in
                              let entries =
                                Option.value ~default:[]
                                  (Hashtbl.find_opt counts.(child) key)
                              in
                              acc * Listx.sum (List.map snd entries)
                            end)
                          1 child_info
                      in
                      (arr, c))
                    tuples
                in
                (* publish into the parent-facing table *)
                Array.iteri
                  (fun idx (arr, c) ->
                    if c > 0 then begin
                      let key = List.map (fun p -> arr.(p)) parent_pos in
                      Hashtbl.replace counts.(i) key
                        ((idx, c)
                        :: Option.value ~default:[] (Hashtbl.find_opt counts.(i) key))
                    end)
                  tuple_counts;
                let child_index =
                  Array.of_list (List.map (fun (c, _) -> counts.(c)) child_info)
                in
                nodes.(i) <-
                  Some
                    {
                      vars = vars_i;
                      tuples = tuple_counts;
                      children = child_info;
                      child_index;
                    })
              !topo;
            let nodes = Array.map Option.get nodes in
            let total =
              Hashtbl.fold
                (fun _ entries acc -> acc + Listx.sum (List.map snd entries))
                counts.(0) 0
            in
            let covered =
              List.sort_uniq compare (List.concat_map (fun r -> r.Relation.vars) atoms)
            in
            let isolated =
              List.filter (fun v -> not (List.mem v covered)) (Structure.universe a)
            in
            Some
              (Join_tree
                 {
                   nodes;
                   root = 0;
                   total = total * Combinat.power_int (Structure.universe_size d) (List.length isolated);
                   free_order = Cq.free q;
                   isolated;
                   domain = Array.of_list (Structure.universe d);
                 })
      end
    end
  end

(** [make q d] builds a sampler for [Ans(q → D)], preferring the join-tree
    construction and falling back to materialisation. *)
let make (q : Cq.t) (d : Structure.t) : t =
  match make_join_tree q d with
  | Some s -> s
  | None ->
      Materialised
        { free_order = Cq.free q; answers = Array.of_list (Varelim.answers q d) }

(** [cardinality s] is the exact answer count behind the sampler. *)
let cardinality (s : t) : int =
  match s with
  | Join_tree j -> j.total
  | Materialised m -> Array.length m.answers

(* ------------------------------------------------------------------ *)
(* Drawing                                                            *)
(* ------------------------------------------------------------------ *)

(** weighted choice from a non-empty list of (value, weight > 0) *)
let weighted_choice (st : Random.State.t) (entries : ('a * int) list) : 'a =
  let total = Listx.sum (List.map snd entries) in
  let r = Random.State.int st total in
  let rec pick acc = function
    | [] -> invalid_arg "weighted_choice"
    | (v, w) :: rest -> if r < acc + w then v else pick (acc + w) rest
  in
  pick 0 entries

(** [draw st s] samples a uniformly random answer as an association list
    (sorted free variable → value).  Returns [None] when the answer set is
    empty. *)
let draw (st : Random.State.t) (s : t) : (int * int) list option =
  match s with
  | Materialised m ->
      if Array.length m.answers = 0 then None
      else begin
        let t = m.answers.(Random.State.int st (Array.length m.answers)) in
        Some (List.combine m.free_order t)
      end
  | Join_tree j ->
      if j.total = 0 then None
      else begin
        let assignment = Hashtbl.create 16 in
        let rec descend (i : int) (tuple_idx : int) : unit =
          let node = j.nodes.(i) in
          let arr, _ = node.tuples.(tuple_idx) in
          List.iteri (fun p v -> Hashtbl.replace assignment v arr.(p)) node.vars;
          List.iteri
            (fun ci (child, pos) ->
              let key = List.map (fun p -> arr.(p)) pos in
              let entries = Hashtbl.find node.child_index.(ci) key in
              let child_tuple = weighted_choice st entries in
              descend child child_tuple)
            node.children
        in
        (* pick a root tuple proportional to its count *)
        let root = j.nodes.(j.root) in
        let entries =
          Array.to_list root.tuples
          |> List.mapi (fun idx (_, c) -> (idx, c))
          |> List.filter (fun (_, c) -> c > 0)
        in
        descend j.root (weighted_choice st entries);
        List.iter
          (fun v ->
            Hashtbl.replace assignment v
              j.domain.(Random.State.int st (Array.length j.domain)))
          j.isolated;
        Some (List.map (fun v -> (v, Hashtbl.find assignment v)) j.free_order)
      end
