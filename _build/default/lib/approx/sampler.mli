(** Uniform sampling from the answer set of a conjunctive query: join-tree
    based (two-pass Yannakakis) for acyclic quantifier-free queries,
    materialisation otherwise.  The engine behind {!Karp_luby}. *)

type t

(** [make q d] builds a sampler for [Ans(q → D)]. *)
val make : Cq.t -> Structure.t -> t

(** [cardinality s] is the exact answer count. *)
val cardinality : t -> int

(** [weighted_choice st entries] draws from a non-empty positive-weight
    list, proportionally to the weights. *)
val weighted_choice : Random.State.t -> ('a * int) list -> 'a

(** [draw st s] is a uniformly random answer (sorted free variable →
    value), or [None] when the answer set is empty. *)
val draw : Random.State.t -> t -> (int * int) list option
