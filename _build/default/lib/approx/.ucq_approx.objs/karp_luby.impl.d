lib/approx/karp_luby.ml: Array Cq Hashtbl List Listx Random Sampler Structure Ucq Varelim
