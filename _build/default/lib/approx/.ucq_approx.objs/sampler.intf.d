lib/approx/sampler.mli: Cq Random Structure
