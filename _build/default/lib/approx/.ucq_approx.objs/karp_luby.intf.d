lib/approx/karp_luby.mli: Structure Ucq
