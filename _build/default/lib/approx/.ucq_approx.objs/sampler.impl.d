lib/approx/sampler.ml: Array Combinat Cq Hashtbl Hypergraph List Listx Option Queue Random Relation Signature Structure Varelim
