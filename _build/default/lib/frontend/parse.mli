(** A textual front-end for conjunctive queries, unions, and databases.

    Query syntax (Datalog-flavoured): the head tuple lists the free
    variables, disjuncts are separated by [;], atoms by [,]; variables not
    in the head are existentially quantified per disjunct; [#] starts a
    line comment:

    {v  (x, y) :- E(x, z), E(z, y) ; E(x, y)  v}

    Database syntax: facts terminated by [.], with an optional [universe]
    declaration adding isolated elements; integer constants denote
    themselves, identifier constants are interned:

    {v  universe { 7, spare }
        E(1, 2). Likes(alice, post1).  v} *)

exception Parse_error of string

(** Variable environment of a parsed query. *)
type query_env = {
  free_names : (string * int) list;  (** head variables, in head order *)
  signature : Signature.t;  (** inferred from the atoms *)
}

(** [ucq text] parses a union of conjunctive queries.
    @raise Parse_error on malformed input (including constants in queries
    and arity clashes). *)
val ucq : string -> Ucq.t * query_env

(** [cq text] parses a single conjunctive query (no [;]).
    @raise Parse_error as {!ucq}, or when the union has several
    disjuncts. *)
val cq : string -> Cq.t * query_env

(** Constant-interning environment of a parsed database. *)
type db_env = { constants : (string * int) list }

(** [database text] parses a fact list into a structure.
    @raise Parse_error on malformed input. *)
val database : string -> Structure.t * db_env
