(** Rendering queries and databases back to the surface syntax of
    {!Parse}. *)

(** [var_name env i] is the original name of variable [i] if it was a head
    variable, or a generated name [_yi] for quantified variables. *)
let var_name (env : Parse.query_env) (i : int) : string =
  match List.find_opt (fun (_, j) -> j = i) env.Parse.free_names with
  | Some (name, _) -> name
  | None -> Printf.sprintf "_y%d" i

(** [cq ?env q] renders a conjunctive query. *)
let cq ?(env : Parse.query_env option) (q : Cq.t) : string =
  let name i =
    match env with
    | Some e -> var_name e i
    | None -> Printf.sprintf "x%d" i
  in
  let head = String.concat ", " (List.map name (Cq.free q)) in
  let atoms =
    List.concat_map
      (fun (rel, ts) ->
        List.map
          (fun t ->
            Printf.sprintf "%s(%s)" rel (String.concat ", " (List.map name t)))
          ts)
      (Structure.relations (Cq.structure q))
  in
  let body = if atoms = [] then "true()" else String.concat ", " atoms in
  Printf.sprintf "(%s) :- %s" head body

(** [ucq ?env psi] renders a union of conjunctive queries. *)
let ucq ?(env : Parse.query_env option) (psi : Ucq.t) : string =
  let name i =
    match env with
    | Some e -> var_name e i
    | None -> Printf.sprintf "x%d" i
  in
  let head = String.concat ", " (List.map name (Ucq.free psi)) in
  let disjunct a =
    let atoms =
      List.concat_map
        (fun (rel, ts) ->
          List.map
            (fun t ->
              Printf.sprintf "%s(%s)" rel (String.concat ", " (List.map name t)))
            ts)
        (Structure.relations a)
    in
    if atoms = [] then "true()" else String.concat ", " atoms
  in
  Printf.sprintf "(%s) :- %s" head
    (String.concat " ; " (List.map disjunct (Ucq.disjunct_structures psi)))

(** [database d] renders a structure as a fact list (integer constants). *)
let database (d : Structure.t) : string =
  let buf = Buffer.create 256 in
  let covered =
    List.concat_map (fun (_, ts) -> List.concat ts) (Structure.relations d)
  in
  let isolated =
    List.filter (fun v -> not (List.mem v covered)) (Structure.universe d)
  in
  if isolated <> [] then
    Buffer.add_string buf
      (Printf.sprintf "universe { %s }\n"
         (String.concat ", " (List.map string_of_int isolated)));
  List.iter
    (fun (rel, ts) ->
      List.iter
        (fun t ->
          Buffer.add_string buf
            (Printf.sprintf "%s(%s).\n" rel
               (String.concat ", " (List.map string_of_int t))))
        ts)
    (Structure.relations d);
  Buffer.contents buf
