(** A textual front-end for conjunctive queries, unions, and databases.

    Query syntax (Datalog-flavoured):

    {v
      (x, y) :- E(x, z), E(z, y) ; E(x, y)
    v}

    — the head tuple lists the free variables; disjuncts are separated by
    [;]; each disjunct is a comma-separated list of atoms.  Variables not
    appearing in the head are existentially quantified (per disjunct).
    A nullary head is written [()].  Comments start with [#] and run to the
    end of the line.

    Database syntax: a sequence of facts, optionally preceded by a
    [universe] declaration listing extra (isolated) elements:

    {v
      universe { a, b, 7 }
      E(1, 2). E(2, 3). Likes(alice, post1).
    v}

    Constants may be integers (used as themselves) or identifiers
    (interned to fresh integers above every literal); the returned
    environment maps names to ids. *)

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Tokeniser                                                          *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int of int
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Semicolon
  | Turnstile (* ":-" *)
  | Dot

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let tokenize (s : string) : token list =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then (tokens := Lparen :: !tokens; incr i)
    else if c = ')' then (tokens := Rparen :: !tokens; incr i)
    else if c = '{' then (tokens := Lbrace :: !tokens; incr i)
    else if c = '}' then (tokens := Rbrace :: !tokens; incr i)
    else if c = ',' then (tokens := Comma :: !tokens; incr i)
    else if c = ';' then (tokens := Semicolon :: !tokens; incr i)
    else if c = '.' then (tokens := Dot :: !tokens; incr i)
    else if c = ':' && !i + 1 < n && s.[!i + 1] = '-' then begin
      tokens := Turnstile :: !tokens;
      i := !i + 2
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      tokens := Int (int_of_string (String.sub s start (!i - start))) :: !tokens
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      tokens := Ident (String.sub s start (!i - start)) :: !tokens
    end
    else raise (Parse_error (Printf.sprintf "unexpected character %C at offset %d" c !i))
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Query parsing                                                      *)
(* ------------------------------------------------------------------ *)

type atom = { rel : string; args : string list }

(** Abstract syntax of a parsed UCQ before variable interning. *)
type ast = { head : string list; disjuncts : atom list list }

let parse_term = function
  | Ident v :: rest -> (v, rest)
  | Int k :: rest -> (string_of_int k, rest)
  | _ -> raise (Parse_error "expected a variable or constant")

let rec parse_term_list acc tokens =
  let t, rest = parse_term tokens in
  match rest with
  | Comma :: rest -> parse_term_list (t :: acc) rest
  | Rparen :: rest -> (List.rev (t :: acc), rest)
  | _ -> raise (Parse_error "expected ',' or ')' in argument list")

let parse_args = function
  | Lparen :: Rparen :: rest -> ([], rest)
  | Lparen :: rest -> parse_term_list [] rest
  | _ -> raise (Parse_error "expected '('")

let parse_atom = function
  | Ident rel :: rest ->
      let args, rest = parse_args rest in
      ({ rel; args }, rest)
  | _ -> raise (Parse_error "expected a relation name")

let rec parse_conjunction acc tokens =
  let atom, rest = parse_atom tokens in
  match rest with
  | Comma :: rest -> parse_conjunction (atom :: acc) rest
  | _ -> (List.rev (atom :: acc), rest)

let rec parse_union acc tokens =
  let conj, rest = parse_conjunction [] tokens in
  match rest with
  | Semicolon :: rest -> parse_union (conj :: acc) rest
  | [] | [ Dot ] -> List.rev (conj :: acc)
  | _ -> raise (Parse_error "expected ';' or end of query")

(** [parse_ast text] parses the surface syntax into an AST. *)
let parse_ast (text : string) : ast =
  match tokenize text with
  | Lparen :: rest ->
      let head, rest =
        match rest with
        | Rparen :: rest -> ([], rest)
        | _ -> parse_term_list [] rest
      in
      (match rest with
      | Turnstile :: body -> { head; disjuncts = parse_union [] body }
      | _ -> raise (Parse_error "expected ':-' after the head"))
  | _ -> raise (Parse_error "a query starts with its head tuple '(x, ...)'")

(* ------------------------------------------------------------------ *)
(* Interning: AST -> Ucq.t                                            *)
(* ------------------------------------------------------------------ *)

(** Variable environment of a parsed query: free variables in head order
    (shared across disjuncts) and, per disjunct, the quantified names. *)
type query_env = {
  free_names : (string * int) list;
  signature : Signature.t;
}

let infer_signature (disjuncts : atom list list) : Signature.t =
  let arities = Hashtbl.create 8 in
  List.iter
    (List.iter (fun a ->
         match Hashtbl.find_opt arities a.rel with
         | None -> Hashtbl.add arities a.rel (List.length a.args)
         | Some k ->
             if k <> List.length a.args then
               raise
                 (Parse_error
                    (Printf.sprintf "relation %s used with arities %d and %d"
                       a.rel k (List.length a.args)))))
    disjuncts;
  Signature.make
    (Hashtbl.fold (fun name arity acc -> Signature.symbol name arity :: acc) arities [])

(** [ucq_of_ast ast] interns variables and builds the {!Ucq.t}: head
    variables get ids [0, 1, ...] in head order; quantified variables get
    fresh ids per disjunct. *)
let ucq_of_ast (ast : ast) : Ucq.t * query_env =
  if ast.disjuncts = [] then raise (Parse_error "empty union");
  (* the CQ model of the paper has no constants: reject numeric terms *)
  List.iter
    (fun v ->
      if int_of_string_opt v <> None then
        raise (Parse_error "constants are not supported in queries"))
    (ast.head
    @ List.concat_map (fun conj -> List.concat_map (fun a -> a.args) conj)
        ast.disjuncts);
  let dup =
    List.exists
      (fun v -> List.length (List.filter (( = ) v) ast.head) > 1)
      ast.head
  in
  if dup then raise (Parse_error "duplicate variable in the head");
  let signature = infer_signature ast.disjuncts in
  let free_names = List.mapi (fun i v -> (v, i)) ast.head in
  let next = ref (List.length ast.head) in
  let cqs =
    List.map
      (fun conj ->
        let local = Hashtbl.create 8 in
        List.iter (fun (v, i) -> Hashtbl.replace local v i) free_names;
        let intern v =
          match Hashtbl.find_opt local v with
          | Some i -> i
          | None ->
              let i = !next in
              incr next;
              Hashtbl.replace local v i;
              i
        in
        let rels =
          List.map (fun a -> (a.rel, [ List.map intern a.args ])) conj
        in
        let universe =
          List.map snd free_names
          @ Hashtbl.fold (fun _ i acc -> i :: acc) local []
        in
        Cq.make (Structure.make signature universe rels) (List.map snd free_names))
      ast.disjuncts
  in
  (Ucq.make cqs, { free_names; signature })

(** [ucq text] parses a UCQ from its surface syntax. *)
let ucq (text : string) : Ucq.t * query_env =
  ucq_of_ast (parse_ast text)

(** [cq text] parses a single conjunctive query (no [;] allowed). *)
let cq (text : string) : Cq.t * query_env =
  let psi, env = ucq text in
  if Ucq.length psi <> 1 then raise (Parse_error "expected a single CQ");
  (Ucq.disjunct psi 0, env)

(* ------------------------------------------------------------------ *)
(* Database parsing                                                   *)
(* ------------------------------------------------------------------ *)

type db_env = { constants : (string * int) list }

(** [database text] parses a fact list into a structure.  Integer literals
    denote themselves; identifier constants are interned to fresh integers
    above every literal. *)
let database (text : string) : Structure.t * db_env =
  let tokens = tokenize text in
  (* optional universe declaration *)
  let extra, tokens =
    match tokens with
    | Ident "universe" :: Lbrace :: rest ->
        let rec grab acc = function
          | Int k :: Comma :: rest -> grab (`I k :: acc) rest
          | Int k :: Rbrace :: rest -> (List.rev (`I k :: acc), rest)
          | Ident v :: Comma :: rest -> grab (`S v :: acc) rest
          | Ident v :: Rbrace :: rest -> (List.rev (`S v :: acc), rest)
          | Rbrace :: rest -> (List.rev acc, rest)
          | _ -> raise (Parse_error "malformed universe declaration")
        in
        grab [] rest
    | _ -> ([], tokens)
  in
  (* parse facts *)
  let rec parse_facts acc tokens =
    match tokens with
    | [] -> List.rev acc
    | Dot :: rest -> parse_facts acc rest
    | _ ->
        let atom, rest = parse_atom tokens in
        parse_facts (atom :: acc) rest
  in
  let facts = parse_facts [] tokens in
  (* interning *)
  let max_literal =
    List.fold_left
      (fun acc a ->
        List.fold_left
          (fun acc arg ->
            match int_of_string_opt arg with Some k -> max acc k | None -> acc)
          acc a.args)
      (List.fold_left
         (fun acc -> function `I k -> max acc k | `S _ -> acc)
         (-1) extra)
      facts
  in
  let interned = Hashtbl.create 16 in
  let next = ref (max_literal + 1) in
  let elem_of arg =
    match int_of_string_opt arg with
    | Some k ->
        if k < 0 then raise (Parse_error "negative constants are not allowed");
        k
    | None -> (
        match Hashtbl.find_opt interned arg with
        | Some i -> i
        | None ->
            let i = !next in
            incr next;
            Hashtbl.replace interned arg i;
            i)
  in
  let extra_elems =
    List.map (function `I k -> k | `S v -> elem_of v) extra
  in
  let signature = infer_signature [ facts ] in
  let rels = List.map (fun a -> (a.rel, [ List.map elem_of a.args ])) facts in
  let universe =
    extra_elems @ List.concat_map (fun (_, ts) -> List.concat ts) rels
  in
  let s = Structure.make signature universe rels in
  (s, { constants = Hashtbl.fold (fun k v acc -> (k, v) :: acc) interned [] })
