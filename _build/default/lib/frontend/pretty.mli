(** Rendering queries and databases back into the {!Parse} surface
    syntax. *)

(** [var_name env i] is the head name of variable [i], or a generated
    [_y<i>] for quantified variables. *)
val var_name : Parse.query_env -> int -> string

(** [cq ?env q] renders a conjunctive query (an atom-free body prints as
    [true()]). *)
val cq : ?env:Parse.query_env -> Cq.t -> string

(** [ucq ?env psi] renders a union. *)
val ucq : ?env:Parse.query_env -> Ucq.t -> string

(** [database d] renders a structure as a fact list (with a [universe]
    declaration for isolated elements); parses back to an equal
    structure. *)
val database : Structure.t -> string
