lib/frontend/pretty.mli: Cq Parse Structure Ucq
