lib/frontend/pretty.ml: Buffer Cq List Parse Printf String Structure Ucq
