lib/frontend/parse.mli: Cq Signature Structure Ucq
