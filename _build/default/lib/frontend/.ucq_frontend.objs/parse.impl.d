lib/frontend/parse.ml: Cq Hashtbl List Printf Signature String Structure Ucq
