(** Integer sets ([Set.Make (Int)] specialisation) with a map sibling —
    universes, vertex sets and decomposition bags throughout the library. *)

module S : Set.S with type elt = int
module M : Map.S with type key = int

type t = S.t

val empty : t
val of_list : int list -> t
val to_list : t -> int list
val elements : t -> int list
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val singleton : int -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val subset : t -> t -> bool
val equal : t -> t -> bool
val is_empty : t -> bool
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> unit) -> t -> unit
val min_elt : t -> int
val choose : t -> int
val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
