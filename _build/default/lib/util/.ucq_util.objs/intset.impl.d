lib/util/intset.ml: Format Int List Map Set String
