lib/util/combinat.mli:
