lib/util/listx.mli:
