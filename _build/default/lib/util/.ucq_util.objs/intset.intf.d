lib/util/intset.mli: Format Map Set
