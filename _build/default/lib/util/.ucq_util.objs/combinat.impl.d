lib/util/combinat.ml: List
