(** Integer sets and maps, specialised from the standard library functors.

    Universes of relational structures, vertices of graphs, and ground-set
    elements of simplicial complexes are all represented as integers; these
    aliases keep signatures readable. *)

module S = Set.Make (Int)
module M = Map.Make (Int)

type t = S.t

let of_list = S.of_list
let to_list = S.elements
let mem = S.mem
let empty = S.empty
let add = S.add
let remove = S.remove
let union = S.union
let inter = S.inter
let diff = S.diff
let cardinal = S.cardinal
let subset = S.subset
let equal = S.equal
let is_empty = S.is_empty
let fold = S.fold
let iter = S.iter
let elements = S.elements
let singleton = S.singleton
let min_elt = S.min_elt
let choose = S.choose
let exists = S.exists
let for_all = S.for_all
let filter = S.filter
let compare = S.compare

let pp (fmt : Format.formatter) (s : t) : unit =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map string_of_int (to_list s)))
