(** List utilities: sorted duplicate-free integer lists double as light
    sets throughout the library. *)

val sort_uniq_ints : int list -> int list
val sort_uniq : ('a -> 'a -> int) -> 'a list -> 'a list

(** Linear-time set operations on sorted duplicate-free lists. *)
val is_subset_sorted : int list -> int list -> bool

val inter_sorted : int list -> int list -> int list
val union_sorted : int list -> int list -> int list

(** [diff_sorted xs ys] is [xs \ ys]. *)
val diff_sorted : int list -> int list -> int list

(** @raise Not_found when absent. *)
val index_of : 'a -> 'a list -> int

(** @raise Invalid_argument on the empty list. *)
val max_by : ('a -> int) -> 'a list -> 'a

(** @raise Invalid_argument on the empty list. *)
val min_by : ('a -> int) -> 'a list -> 'a

val sum : int list -> int
val maximum : ?default:int -> int list -> int

(** [group_by key xs] groups by key, keys in order of first appearance. *)
val group_by : ('a -> 'k) -> 'a list -> ('k * 'a list) list

val take : int -> 'a list -> 'a list
