(** Small list/array utilities shared across the library. *)

(** [sort_uniq_ints xs] sorts [xs] and removes duplicates. *)
let sort_uniq_ints (xs : int list) : int list = List.sort_uniq compare xs

(** [sort_uniq cmp xs] sorts with [cmp] and removes duplicates. *)
let sort_uniq cmp xs = List.sort_uniq cmp xs

(** [is_subset_sorted xs ys] decides [xs ⊆ ys] for sorted duplicate-free
    integer lists, in linear time. *)
let rec is_subset_sorted (xs : int list) (ys : int list) : bool =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' ->
      if x = y then is_subset_sorted xs' ys'
      else if x > y then is_subset_sorted xs ys'
      else false

(** [inter_sorted xs ys] intersects two sorted duplicate-free lists. *)
let rec inter_sorted (xs : int list) (ys : int list) : int list =
  match (xs, ys) with
  | [], _ | _, [] -> []
  | x :: xs', y :: ys' ->
      if x = y then x :: inter_sorted xs' ys'
      else if x < y then inter_sorted xs' ys
      else inter_sorted xs ys'

(** [union_sorted xs ys] merges two sorted duplicate-free lists. *)
let rec union_sorted (xs : int list) (ys : int list) : int list =
  match (xs, ys) with
  | [], zs | zs, [] -> zs
  | x :: xs', y :: ys' ->
      if x = y then x :: union_sorted xs' ys'
      else if x < y then x :: union_sorted xs' ys
      else y :: union_sorted xs ys'

(** [diff_sorted xs ys] is [xs \ ys] for sorted duplicate-free lists. *)
let rec diff_sorted (xs : int list) (ys : int list) : int list =
  match (xs, ys) with
  | [], _ -> []
  | zs, [] -> zs
  | x :: xs', y :: ys' ->
      if x = y then diff_sorted xs' ys'
      else if x < y then x :: diff_sorted xs' ys
      else diff_sorted xs ys'

(** [index_of x xs] is the index of the first occurrence of [x] in [xs].
    @raise Not_found if absent. *)
let index_of (x : 'a) (xs : 'a list) : int =
  let rec go i = function
    | [] -> raise Not_found
    | y :: ys -> if y = x then i else go (i + 1) ys
  in
  go 0 xs

(** [max_by f xs] returns an element maximising [f].
    @raise Invalid_argument on the empty list. *)
let max_by (f : 'a -> int) (xs : 'a list) : 'a =
  match xs with
  | [] -> invalid_arg "Listx.max_by"
  | x :: rest ->
      List.fold_left (fun best y -> if f y > f best then y else best) x rest

(** [min_by f xs] returns an element minimising [f].
    @raise Invalid_argument on the empty list. *)
let min_by (f : 'a -> int) (xs : 'a list) : 'a =
  match xs with
  | [] -> invalid_arg "Listx.min_by"
  | x :: rest ->
      List.fold_left (fun best y -> if f y < f best then y else best) x rest

(** [sum xs] sums an integer list. *)
let sum (xs : int list) : int = List.fold_left ( + ) 0 xs

(** [maximum xs] is the maximum of a non-empty integer list, and [default]
    for the empty list. *)
let maximum ?(default = min_int) (xs : int list) : int =
  List.fold_left max default xs

(** [group_by key xs] groups the elements of [xs] by [key], returning an
    association list from keys (in order of first appearance) to the list of
    elements with that key (in input order). *)
let group_by (key : 'a -> 'k) (xs : 'a list) : ('k * 'a list) list =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt tbl k with
      | None ->
          Hashtbl.add tbl k (ref [ x ]);
          order := k :: !order
      | Some r -> r := x :: !r)
    xs;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

(** [take n xs] is the first [n] elements of [xs] (or all of [xs] if
    shorter). *)
let rec take n xs =
  if n <= 0 then [] else match xs with [] -> [] | x :: r -> x :: take (n - 1) r
