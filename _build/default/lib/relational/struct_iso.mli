(** Isomorphism of relational structures (Definition 15), with optional
    protected element-set pairs — an isomorphism of conjunctive queries
    must map the free set [X] onto [X'] setwise. *)

(** [profile a v] is the occurrence profile of an element (per relation and
    position) — an isomorphism invariant used for pruning. *)
val profile : Structure.t -> int -> (string * int * int) list

(** [find_isomorphism ?protected_ a b] is a witnessing element bijection
    (as an association list), mapping each protected set of [a] onto its
    partner in [b]. *)
val find_isomorphism :
  ?protected_:(int list * int list) list ->
  Structure.t ->
  Structure.t ->
  (int * int) list option

val isomorphic :
  ?protected_:(int list * int list) list -> Structure.t -> Structure.t -> bool
