lib/relational/structure.ml: Array Combinat Format Graph Hashtbl Intset List Listx Printf Signature String Treewidth
