lib/relational/structure.mli: Format Graph Intset Signature
