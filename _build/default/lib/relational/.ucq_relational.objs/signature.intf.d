lib/relational/signature.mli: Format
