lib/relational/signature.ml: Format List Option Printf String
