lib/relational/struct_iso.ml: Array Hashtbl Intset List Option Signature Structure
