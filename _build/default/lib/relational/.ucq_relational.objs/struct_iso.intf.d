lib/relational/struct_iso.mli: Structure
