(** Relational signatures: finite lists of relation symbols with arities
    (Section 2.2 of the paper). *)

type symbol = { name : string; arity : int }

type t = symbol list

(** [make symbols] validates and normalises a signature: names must be
    distinct and arities non-negative; symbols are sorted by name. *)
let make (symbols : symbol list) : t =
  let sorted = List.sort (fun a b -> compare a.name b.name) symbols in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if a.name = b.name then
          invalid_arg ("Signature.make: duplicate symbol " ^ a.name);
        check rest
    | _ -> ()
  in
  List.iter
    (fun s -> if s.arity < 0 then invalid_arg "Signature.make: negative arity")
    sorted;
  check sorted;
  sorted

let symbol (name : string) (arity : int) : symbol =
  if arity < 0 then invalid_arg "Signature.symbol";
  { name; arity }

(** [arity sg] is the arity of the signature: the maximum symbol arity
    (0 for the empty signature). *)
let arity (sg : t) : int = List.fold_left (fun acc s -> max acc s.arity) 0 sg

let find_opt (sg : t) (name : string) : symbol option =
  List.find_opt (fun s -> s.name = name) sg

let mem (sg : t) (name : string) : bool = Option.is_some (find_opt sg name)

let arity_of (sg : t) (name : string) : int =
  match find_opt sg name with
  | Some s -> s.arity
  | None -> invalid_arg ("Signature.arity_of: unknown symbol " ^ name)

(** [union sg1 sg2] merges two signatures; a symbol present in both must
    have the same arity. *)
let union (sg1 : t) (sg2 : t) : t =
  let merged =
    List.fold_left
      (fun acc s ->
        match find_opt acc s.name with
        | None -> s :: acc
        | Some s' ->
            if s'.arity <> s.arity then
              invalid_arg ("Signature.union: arity clash on " ^ s.name)
            else acc)
      sg1 sg2
  in
  make merged

(** [subset sg1 sg2] checks that every symbol of [sg1] occurs in [sg2] with
    the same arity. *)
let subset (sg1 : t) (sg2 : t) : bool =
  List.for_all
    (fun s ->
      match find_opt sg2 s.name with
      | Some s' -> s'.arity = s.arity
      | None -> false)
    sg1

(** [inter sg1 sg2] is the common part of two signatures (symbols present in
    both with equal arity), as used by the tensor product of Theorem 28. *)
let inter (sg1 : t) (sg2 : t) : t =
  make
    (List.filter
       (fun s ->
         match find_opt sg2 s.name with
         | Some s' -> s'.arity = s.arity
         | None -> false)
       sg1)

(** [size sg] is the number of symbols, the signature's contribution to the
    encoding size |A| of a structure. *)
let size (sg : t) : int = List.length sg

let equal (sg1 : t) (sg2 : t) : bool = sg1 = sg2

let pp (fmt : Format.formatter) (sg : t) : unit =
  Format.fprintf fmt "{%s}"
    (String.concat "; "
       (List.map (fun s -> Printf.sprintf "%s/%d" s.name s.arity) sg))
