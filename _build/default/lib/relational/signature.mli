(** Relational signatures (Section 2.2): relation symbols with arities. *)

type symbol = { name : string; arity : int }

type t = symbol list

(** [make symbols] sorts by name and validates (distinct names,
    non-negative arities). *)
val make : symbol list -> t

val symbol : string -> int -> symbol

(** [arity sg] is the maximum symbol arity (0 for the empty signature). *)
val arity : t -> int

val find_opt : t -> string -> symbol option
val mem : t -> string -> bool

(** @raise Invalid_argument for unknown symbols. *)
val arity_of : t -> string -> int

(** [union sg1 sg2] merges; shared symbols must agree on arity. *)
val union : t -> t -> t

(** [subset sg1 sg2]: every symbol of [sg1] occurs in [sg2] with equal
    arity. *)
val subset : t -> t -> bool

(** [inter sg1 sg2] is the common part (used by tensor products). *)
val inter : t -> t -> t

(** [size sg] is the number of symbols (the signature's contribution to the
    encoding size |A|). *)
val size : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
