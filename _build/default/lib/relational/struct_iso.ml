(** Isomorphism of relational structures (Definition 15 of the paper).

    Collecting the #equivalent terms of a CQ expansion (Definition 25,
    Lemma 26) requires deciding isomorphism of query structures, optionally
    constrained to map the free-variable set [X] onto [X'] (an isomorphism
    [b] of conjunctive queries must satisfy [b(X) = X']).  Query structures
    are small, so a profile-pruned backtracking search suffices.

    [protected_] is a list of paired element sets [(S_A, S_B)]; a witness
    must map each [S_A] onto the corresponding [S_B] setwise. *)

module Intset = Intset

(** Occurrence profile of an element: for every (relation, position), how
    many tuples contain the element at that position.  Isomorphisms preserve
    profiles, so they prune the search cheaply. *)
let profile (a : Structure.t) (v : int) : (string * int * int) list =
  List.concat_map
    (fun (name, ts) ->
      let arity = match ts with [] -> 0 | t :: _ -> List.length t in
      List.concat
        (List.init arity (fun pos ->
             let c =
               List.length (List.filter (fun t -> List.nth t pos = v) ts)
             in
             if c = 0 then [] else [ (name, pos, c) ])))
    (Structure.relations a)

let find_isomorphism ?(protected_ : (int list * int list) list = [])
    (a : Structure.t) (b : Structure.t) : (int * int) list option =
  let ua = Structure.universe a and ub = Structure.universe b in
  let same_shape =
    Signature.equal (Structure.signature a) (Structure.signature b)
    && List.length ua = List.length ub
    && List.for_all2
         (fun (na, ta) (nb, tb) -> na = nb && List.length ta = List.length tb)
         (Structure.relations a) (Structure.relations b)
    && List.for_all
         (fun (sa, sb) -> List.length sa = List.length sb)
         protected_
  in
  if not same_shape then None
  else begin
    let ua_arr = Array.of_list ua in
    let n = Array.length ua_arr in
    let profiles_a = List.map (fun v -> (v, profile a v)) ua in
    let profiles_b = List.map (fun v -> (v, profile b v)) ub in
    let prof_a v = List.assoc v profiles_a in
    let prof_b v = List.assoc v profiles_b in
    (* protected-set membership signature of an element *)
    let pa v = List.map (fun (sa, _) -> List.mem v sa) protected_ in
    let pb v = List.map (fun (_, sb) -> List.mem v sb) protected_ in
    let mapping = Hashtbl.create n in
    let used = Hashtbl.create n in
    let rels_a = Structure.relations a in
    (* Tuples of A indexed by the elements they mention; when an element is
       assigned we re-check all its fully-assigned tuples. *)
    let check_tuples_of v =
      List.for_all
        (fun (name, ts) ->
          let tb = Structure.relation b name in
          List.for_all
            (fun t ->
              if List.mem v t && List.for_all (Hashtbl.mem mapping) t then
                List.mem (List.map (Hashtbl.find mapping) t) tb
              else true)
            ts)
        rels_a
    in
    let result = ref None in
    let rec assign i =
      if !result <> None then ()
      else if i = n then result := Some (Hashtbl.fold (fun k v acc -> (k, v) :: acc) mapping [])
      else begin
        let v = ua_arr.(i) in
        let pv = prof_a v and sv = pa v in
        List.iter
          (fun w ->
            if !result = None && (not (Hashtbl.mem used w))
               && prof_b w = pv && pb w = sv
            then begin
              Hashtbl.add mapping v w;
              Hashtbl.add used w ();
              if check_tuples_of v then assign (i + 1);
              Hashtbl.remove mapping v;
              Hashtbl.remove used w
            end)
          ub
      end
    in
    assign 0;
    !result
  end

(** [isomorphic ?protected_ a b] decides isomorphism (optionally respecting
    protected set pairs).  Since witnesses are injective on universes of
    equal size and relation cardinalities agree, mapping every tuple of [A]
    into [B] forces the tuple images to be exactly [R^B], so the
    backtracking check is sound and complete. *)
let isomorphic ?(protected_ : (int list * int list) list = []) (a : Structure.t)
    (b : Structure.t) : bool =
  Option.is_some (find_isomorphism ~protected_ a b)
