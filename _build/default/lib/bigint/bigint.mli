(** Arbitrary-precision signed integers (sign / base-2^30 magnitude).

    Implemented in-tree because [zarith] is not available in the sealed
    build environment; used wherever answer counts exceed the native 63-bit
    range, most prominently by the complexity-monotonicity solver of
    Theorem 28. *)

type t

val zero : t
val one : t
val minus_one : t

val is_zero : t -> bool

(** [of_int n] embeds a native integer (including [min_int]). *)
val of_int : int -> t

(** [to_int_opt x] converts back when the value fits into a native int. *)
val to_int_opt : t -> int option

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod x y] is truncated division: [x = q·y + r], [|r| < |y|], [r]
    carrying the sign of [x] (matching OCaml's [/] and [mod]).
    @raise Division_by_zero when [y] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [gcd x y] is the non-negative greatest common divisor. *)
val gcd : t -> t -> t

(** [pow b e] is [b^e] for a native exponent [e >= 0]. *)
val pow : t -> int -> t

(** [sign x] is [-1], [0] or [1]. *)
val sign : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string

(** [of_string s] parses an optionally ['-']-prefixed decimal numeral.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
