(** Exact linear algebra over {!Rational}: the solver behind the Theorem 28
    complexity-monotonicity system. *)

type matrix = Rational.t array array
type vector = Rational.t array

(** [solve m b] solves [m · x = b] by Gaussian elimination with
    first-nonzero pivoting; [None] for singular [m].  Inputs are not
    mutated. *)
val solve : matrix -> vector -> vector option

(** [rank m] is the rank of a possibly rectangular matrix. *)
val rank : matrix -> int

(** [is_nonsingular m] decides invertibility of a square matrix. *)
val is_nonsingular : matrix -> bool

(** [mat_vec m v] is the matrix-vector product. *)
val mat_vec : matrix -> vector -> vector
