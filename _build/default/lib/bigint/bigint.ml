(** Arbitrary-precision signed integers.

    The complexity-monotonicity algorithm (Theorem 28 of the paper) solves an
    exact linear system whose entries are answer counts on tensor products of
    databases; these routinely exceed the native 63-bit range (e.g. counting
    answers of a 12-variable quantifier-free query over a universe of a few
    hundred elements).  Since [zarith] is not available in the sealed build
    environment, this module provides a self-contained implementation.

    Representation: sign / magnitude, where the magnitude is a little-endian
    array of base-[2^30] limbs with no trailing zero limb.  Zero is
    represented uniquely as [{ sign = 0; mag = [||] }]. *)

let base_bits = 30
let base = 1 lsl base_bits
let limb_mask = base - 1

type t = { sign : int; (* -1, 0 or 1 *) mag : int array }

let zero = { sign = 0; mag = [||] }
let is_zero (x : t) : bool = x.sign = 0

(* ------------------------------------------------------------------ *)
(* Magnitude (unsigned) helpers                                       *)
(* ------------------------------------------------------------------ *)

(** Drop trailing zero limbs so magnitudes are canonical. *)
let normalize_mag (m : int array) : int array =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length m then m else Array.sub m 0 !n

let mag_compare (a : int array) (b : int array) : int =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let mag_add (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  let l = max la lb + 1 in
  let r = Array.make l 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  normalize_mag r

(** [mag_sub a b] assumes [a >= b]. *)
let mag_sub (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize_mag r

let mag_mul (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai, b.(j) < 2^30 so the product fits comfortably in 62 bits. *)
        let v = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- v land limb_mask;
        carry := v lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = r.(!k) + !carry in
        r.(!k) <- v land limb_mask;
        carry := v lsr base_bits;
        incr k
      done
    done;
    normalize_mag r
  end

(** [mag_divmod_small a d] divides a magnitude by a small positive int
    [d < 2^30], returning quotient magnitude and remainder. *)
let mag_divmod_small (a : int array) (d : int) : int array * int =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize_mag q, !rem)

(** Shift a magnitude left by [k] whole limbs. *)
let mag_shift_limbs (a : int array) (k : int) : int array =
  if Array.length a = 0 then [||]
  else begin
    let r = Array.make (Array.length a + k) 0 in
    Array.blit a 0 r k (Array.length a);
    r
  end

(** Long division of magnitudes: returns (quotient, remainder).  Uses simple
    schoolbook division limb by limb with binary search for each quotient
    digit — O(n^2 log base), fine for the sizes we handle. *)
let mag_divmod (a : int array) (b : int array) : int array * int array =
  if Array.length b = 0 then raise Division_by_zero;
  if mag_compare a b < 0 then ([||], a)
  else if Array.length b = 1 then begin
    let q, r = mag_divmod_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    let la = Array.length a and lb = Array.length b in
    let q = Array.make (la - lb + 1) 0 in
    let rem = ref [||] in
    (* Process digits of [a] from most to least significant. *)
    for i = la - 1 downto 0 do
      (* rem := rem * base + a.(i) *)
      rem := normalize_mag (mag_add (mag_shift_limbs !rem 1) [| a.(i) |]);
      if mag_compare !rem b >= 0 then begin
        (* binary search for digit d in [1, base-1] with d*b <= rem *)
        let lo = ref 1 and hi = ref (base - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi + 1) / 2 in
          if mag_compare (mag_mul b [| mid |]) !rem <= 0 then lo := mid
          else hi := mid - 1
        done;
        let d = !lo in
        if i <= la - lb then q.(i) <- d;
        rem := mag_sub !rem (mag_mul b [| d |])
      end
    done;
    (normalize_mag q, !rem)
  end

(* ------------------------------------------------------------------ *)
(* Signed interface                                                   *)
(* ------------------------------------------------------------------ *)

let mk (sign : int) (mag : int array) : t =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

(** [of_int n] converts a native integer. *)
let of_int (n : int) : t =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* Careful with [min_int]: its absolute value overflows, so peel limbs
       using arithmetic shifts on the negative value. *)
    let rec limbs n acc =
      if n = 0 then List.rev acc
      else limbs (n lsr base_bits) ((n land limb_mask) :: acc)
    in
    (* [abs min_int] overflows; min_int = -2^62 on 63-bit native ints, whose
       magnitude in base 2^30 is the limb vector [0; 0; 4]. *)
    let v = if n = min_int then [ 0; 0; 4 ] else limbs (abs n) [] in
    mk sign (Array.of_list v)
  end

let one = of_int 1
let minus_one = of_int (-1)
let neg (x : t) : t = if x.sign = 0 then zero else { x with sign = -x.sign }

let compare (x : t) (y : t) : int =
  if x.sign <> y.sign then Stdlib.compare x.sign y.sign
  else if x.sign >= 0 then mag_compare x.mag y.mag
  else mag_compare y.mag x.mag

let equal (x : t) (y : t) : bool = compare x y = 0

let add (x : t) (y : t) : t =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then mk x.sign (mag_add x.mag y.mag)
  else begin
    let c = mag_compare x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then mk x.sign (mag_sub x.mag y.mag)
    else mk y.sign (mag_sub y.mag x.mag)
  end

let sub (x : t) (y : t) : t = add x (neg y)
let mul (x : t) (y : t) : t =
  if x.sign = 0 || y.sign = 0 then zero
  else mk (x.sign * y.sign) (mag_mul x.mag y.mag)

(** [divmod x y] is truncated division: [x = q*y + r] with [|r| < |y|] and
    [r] carrying the sign of [x] (like OCaml's [/] and [mod]). *)
let divmod (x : t) (y : t) : t * t =
  if y.sign = 0 then raise Division_by_zero;
  let qm, rm = mag_divmod x.mag y.mag in
  let q = mk (x.sign * y.sign) qm in
  let r = mk x.sign rm in
  (q, r)

let div (x : t) (y : t) : t = fst (divmod x y)
let rem (x : t) (y : t) : t = snd (divmod x y)
let abs (x : t) : t = if x.sign < 0 then neg x else x

(** Greatest common divisor of absolute values (non-negative result). *)
let rec gcd (x : t) (y : t) : t =
  if is_zero y then abs x else gcd y (rem x y)

let sign (x : t) : int = x.sign

(** [to_int_opt x] converts back to a native integer if it fits. *)
let to_int_opt (x : t) : int option =
  match Array.length x.mag with
  | 0 -> Some 0
  | n when n <= 2 ->
      let v = Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) x.mag 0 in
      Some (x.sign * v)
  | 3 when x.mag.(2) < 4 ->
      let v = (x.mag.(2) lsl (2 * base_bits)) lor (x.mag.(1) lsl base_bits) lor x.mag.(0) in
      if v >= 0 then Some (x.sign * v) else None
  | _ -> None

let to_string (x : t) : string =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let m = ref x.mag in
    while Array.length !m > 0 do
      let q, r = mag_divmod_small !m 1_000_000_000 in
      m := q;
      if Array.length q = 0 then Buffer.add_string buf (string_of_int r)
      else Buffer.add_string buf (Printf.sprintf "%09d" r)
    done;
    (* Blocks were appended least-significant first; every block is exactly 9
       characters except the final (most significant) one.  Re-split the
       buffer into those blocks and reverse their order. *)
    let s = Buffer.contents buf in
    let blocks = ref [] in
    let i = ref 0 in
    let len = String.length s in
    while !i < len do
      let take = min 9 (len - !i) in
      blocks := String.sub s !i take :: !blocks;
      i := !i + take
    done;
    let s = String.concat "" !blocks in
    (if x.sign < 0 then "-" else "") ^ s
  end

let of_string (s : string) : t =
  let s, sign = if String.length s > 0 && s.[0] = '-' then (String.sub s 1 (String.length s - 1), -1) else (s, 1) in
  if s = "" then invalid_arg "Bigint.of_string";
  let acc = ref zero in
  let ten9 = of_int 1_000_000_000 in
  let i = ref 0 in
  let len = String.length s in
  while !i < len do
    let take = min 9 (len - !i) in
    let chunk = String.sub s !i take in
    let v = int_of_string chunk in
    let scale =
      if take = 9 then ten9
      else of_int (int_of_float (10. ** float_of_int take))
    in
    acc := add (mul !acc scale) (of_int v);
    i := !i + take
  done;
  if sign < 0 then neg !acc else !acc

let pp (fmt : Format.formatter) (x : t) : unit =
  Format.pp_print_string fmt (to_string x)

(** [pow b e] raises [b] to the non-negative native exponent [e]. *)
let pow (b : t) (e : int) : t =
  if e < 0 then invalid_arg "Bigint.pow";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e asr 1)
    else go acc (mul b b) (e asr 1)
  in
  go one b e
