(** Exact rational numbers over {!Bigint}.

    Invariant: strictly positive denominator, numerator and denominator
    coprime; zero is [0/1]. *)

type t

val zero : t
val one : t

(** [make num den] normalises a fraction.
    @raise Division_by_zero when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

val of_bigint : Bigint.t -> t
val of_int : int -> t

val is_zero : t -> bool
val num : t -> Bigint.t
val den : t -> Bigint.t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** @raise Division_by_zero when dividing by zero. *)
val div : t -> t -> t

(** @raise Division_by_zero on zero. *)
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val is_integer : t -> bool

(** [to_bigint_exn x] is the numerator of an integral rational.
    @raise Invalid_argument otherwise. *)
val to_bigint_exn : t -> Bigint.t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
