lib/bigint/rational.mli: Bigint Format
