lib/bigint/linalg.mli: Rational
