lib/bigint/rational.ml: Bigint Format
