lib/bigint/linalg.ml: Array Rational
