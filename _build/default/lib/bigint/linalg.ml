(** Exact linear algebra over {!Rational}.

    The complexity-monotonicity algorithm (Theorem 28) sets up a square
    linear system [M · x = b] where [M.(i).(j) = ans((A_j, X_j) → B_i)] and
    recovers the unknowns [c_Ψ(A_j, X_j) · ans((A_j, X_j) → D)] by solving
    it.  The matrices involved are small (dimension = number of #equivalence
    classes in the CQ expansion) but their entries are huge, so we use exact
    Gaussian elimination with partial (first-nonzero) pivoting. *)

type matrix = Rational.t array array
type vector = Rational.t array

(** [solve m b] solves [m · x = b] for a non-singular square matrix [m].
    Returns [None] when the matrix is singular.  [m] and [b] are not
    mutated. *)
let solve (m : matrix) (b : vector) : vector option =
  let n = Array.length m in
  if n = 0 then Some [||]
  else begin
    assert (Array.length b = n);
    let a = Array.init n (fun i -> Array.append (Array.copy m.(i)) [| b.(i) |]) in
    let singular = ref false in
    (for col = 0 to n - 1 do
       if not !singular then begin
         (* find a pivot row *)
         let pivot = ref (-1) in
         for row = col to n - 1 do
           if !pivot < 0 && not (Rational.is_zero a.(row).(col)) then pivot := row
         done;
         if !pivot < 0 then singular := true
         else begin
           let tmp = a.(col) in
           a.(col) <- a.(!pivot);
           a.(!pivot) <- tmp;
           let inv_p = Rational.inv a.(col).(col) in
           for j = col to n do
             a.(col).(j) <- Rational.mul a.(col).(j) inv_p
           done;
           for row = 0 to n - 1 do
             if row <> col && not (Rational.is_zero a.(row).(col)) then begin
               let factor = a.(row).(col) in
               for j = col to n do
                 a.(row).(j) <-
                   Rational.sub a.(row).(j) (Rational.mul factor a.(col).(j))
               done
             end
           done
         end
       end
     done);
    if !singular then None else Some (Array.init n (fun i -> a.(i).(n)))
  end

(** [rank m] computes the rank of a (possibly rectangular) matrix by
    fraction-free forward elimination on a copy. *)
let rank (m : matrix) : int =
  let rows = Array.length m in
  if rows = 0 then 0
  else begin
    let cols = Array.length m.(0) in
    let a = Array.map Array.copy m in
    let r = ref 0 in
    for col = 0 to cols - 1 do
      if !r < rows then begin
        let pivot = ref (-1) in
        for row = !r to rows - 1 do
          if !pivot < 0 && not (Rational.is_zero a.(row).(col)) then pivot := row
        done;
        if !pivot >= 0 then begin
          let tmp = a.(!r) in
          a.(!r) <- a.(!pivot);
          a.(!pivot) <- tmp;
          for row = !r + 1 to rows - 1 do
            if not (Rational.is_zero a.(row).(col)) then begin
              let factor = Rational.div a.(row).(col) a.(!r).(col) in
              for j = col to cols - 1 do
                a.(row).(j) <-
                  Rational.sub a.(row).(j) (Rational.mul factor a.(!r).(j))
              done
            end
          done;
          incr r
        end
      end
    done;
    !r
  end

(** [is_nonsingular m] decides invertibility of a square matrix. *)
let is_nonsingular (m : matrix) : bool =
  let n = Array.length m in
  n = 0 || rank m = n

(** [mat_vec m v] multiplies a matrix by a vector. *)
let mat_vec (m : matrix) (v : vector) : vector =
  Array.map
    (fun row ->
      let acc = ref Rational.zero in
      Array.iteri (fun j coeff -> acc := Rational.add !acc (Rational.mul coeff v.(j))) row;
      !acc)
    m
