(** Exact rational numbers over {!Bigint}.

    Used by the complexity-monotonicity solver (Theorem 28): the linear
    system relating UCQ answer counts on tensor products to individual CQ
    answer counts must be solved exactly — floating point would corrupt the
    coefficients [c_Ψ(A, X)], which are small alternating sums surrounded by
    astronomically large answer counts.

    Invariant: denominator is strictly positive and [gcd(num, den) = 1];
    zero is represented as [0/1]. *)

type t = { num : Bigint.t; den : Bigint.t }

let normalize (num : Bigint.t) (den : Bigint.t) : t =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    { num = Bigint.div num g; den = Bigint.div den g }
  end

let make num den = normalize num den
let of_bigint (n : Bigint.t) : t = { num = n; den = Bigint.one }
let of_int (n : int) : t = of_bigint (Bigint.of_int n)
let zero = of_int 0
let one = of_int 1
let is_zero (x : t) : bool = Bigint.is_zero x.num
let num (x : t) : Bigint.t = x.num
let den (x : t) : Bigint.t = x.den

let add (x : t) (y : t) : t =
  normalize
    (Bigint.add (Bigint.mul x.num y.den) (Bigint.mul y.num x.den))
    (Bigint.mul x.den y.den)

let neg (x : t) : t = { x with num = Bigint.neg x.num }
let sub (x : t) (y : t) : t = add x (neg y)

let mul (x : t) (y : t) : t =
  normalize (Bigint.mul x.num y.num) (Bigint.mul x.den y.den)

let div (x : t) (y : t) : t =
  if is_zero y then raise Division_by_zero;
  normalize (Bigint.mul x.num y.den) (Bigint.mul x.den y.num)

let inv (x : t) : t = div one x

let compare (x : t) (y : t) : int =
  Bigint.compare (Bigint.mul x.num y.den) (Bigint.mul y.num x.den)

let equal (x : t) (y : t) : bool = compare x y = 0

(** [to_bigint_exn x] returns the numerator when [x] is an integer.
    @raise Invalid_argument otherwise. *)
let to_bigint_exn (x : t) : Bigint.t =
  if Bigint.equal x.den Bigint.one then x.num
  else invalid_arg "Rational.to_bigint_exn: not an integer"

let is_integer (x : t) : bool = Bigint.equal x.den Bigint.one

let to_string (x : t) : string =
  if is_integer x then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let pp (fmt : Format.formatter) (x : t) : unit =
  Format.pp_print_string fmt (to_string x)
