(** Power complexes (Definition 46) and the Lemma 47 conversion.

    A power complex [Δ_{Ω,U}] is given by a universe [U] and a ground set
    [Ω ⊆ 2^U] with [U ∉ Ω]; its faces are the subfamilies [S ⊆ Ω] whose
    union does not cover [U].  Power complexes are the bridge between
    simplicial complexes and the UCQ construction of Lemma 48: the [j]-th
    CQ of the constructed union takes exactly the edge slices indexed by the
    [j]-th ground-set member. *)

module Listx = Listx

type t = {
  universe : int list; (* sorted, duplicate-free, non-empty *)
  ground : int list list; (* sorted members of 2^U, duplicate-free *)
}

(** [make universe ground] validates: each member is a proper subset of the
    universe (in particular [U ∉ Ω]). *)
let make (universe : int list) (ground : int list list) : t =
  let universe = Listx.sort_uniq_ints universe in
  if universe = [] then invalid_arg "Power_complex.make: empty universe";
  let ground = List.sort_uniq compare (List.map Listx.sort_uniq_ints ground) in
  if ground = [] then invalid_arg "Power_complex.make: empty ground set";
  List.iter
    (fun a ->
      if not (Listx.is_subset_sorted a universe) then
        invalid_arg "Power_complex.make: member not over universe";
      if a = universe then
        invalid_arg "Power_complex.make: universe must not be a member")
    ground;
  { universe; ground }

(** [covers_universe pc s] decides whether the subfamily indexed by [s]
    (indices into [ground]) unions to the whole universe. *)
let covers_universe (pc : t) (s : int list) : bool =
  let members = Array.of_list pc.ground in
  let u =
    List.fold_left (fun acc i -> Listx.union_sorted acc members.(i)) [] s
  in
  u = pc.universe

(** [is_face pc s] decides facehood per Definition 46. *)
let is_face (pc : t) (s : int list) : bool = not (covers_universe pc s)

(** [euler_signed_cover pc] computes the reduced Euler characteristic
    directly from the definition:
    [χ̂(Δ_{Ω,U}) = Σ_{S ⊆ Ω, ∪S = U} (-1)^|S|]
    (since the alternating sum over all of [2^Ω] vanishes).  Exponential in
    [|Ω|]. *)
let euler_signed_cover (pc : t) : int =
  let l = List.length pc.ground in
  if l > 25 then invalid_arg "Power_complex.euler_signed_cover: too large";
  Combinat.subsets_fold
    (fun acc s ->
      if covers_universe pc s then
        acc + (if List.length s mod 2 = 0 then 1 else -1)
      else acc)
    0 l

(** [euler_independent_sets pc] computes χ̂ by Möbius inversion:
    [χ̂(Δ_{Ω,U}) = (-1)^|U| · Σ_{W ⊆ U, no A ∈ Ω with A ⊆ W} (-1)^|W|]
    — the signed count of the "independent sets" of the hypergraph [Ω].
    Exponential in [|U|]; an independent cross-check and the identity
    underlying our SAT reduction (DESIGN.md §3). *)
let euler_independent_sets (pc : t) : int =
  let u = Array.of_list pc.universe in
  let k = Array.length u in
  if k > 25 then invalid_arg "Power_complex.euler_independent_sets: too large";
  let sum =
    Combinat.subsets_fold
      (fun acc widx ->
        let w = List.map (fun i -> u.(i)) widx in
        let independent =
          not (List.exists (fun a -> Listx.is_subset_sorted a w) pc.ground)
        in
        if independent then
          acc + (if List.length widx mod 2 = 0 then 1 else -1)
        else acc)
      0 k
  in
  if k mod 2 = 0 then sum else -sum

(** [to_complex pc] materialises the power complex as a facet-encoded
    {!Scomplex.t} over ground-set indices [0 .. |Ω|-1].  Facets are the
    maximal non-covering subfamilies; enumeration is exponential in [|Ω|]
    and intended for tests. *)
let to_complex (pc : t) : Scomplex.t =
  let l = List.length pc.ground in
  if l > 20 then invalid_arg "Power_complex.to_complex: too large";
  let face_sets =
    List.filter (fun s -> is_face pc s) (Combinat.subsets l)
  in
  Scomplex.make (Combinat.range l) face_sets

(** [of_complex c] is the Lemma 47 construction: for a non-trivial
    irreducible complex [Δ] with facets [F_1, ..., F_k] and [Ω ∉ I], map
    each element [x] to [b(x) = {i : x ∉ F_i}]; then [Δ ≅ Δ_{b(Ω), [k]}].
    Returns the power complex together with the assignment [b] (element →
    member), in ground-set order.
    @raise Invalid_argument when the preconditions fail. *)
let of_complex (c : Scomplex.t) : t * (int * int list) list =
  if Scomplex.is_trivial c then
    invalid_arg "Power_complex.of_complex: trivial complex";
  if not (Scomplex.is_irreducible c) then
    invalid_arg "Power_complex.of_complex: reducible complex";
  let facets = Array.of_list (Scomplex.facets c) in
  let k = Array.length facets in
  if Array.exists (fun f -> f = Scomplex.ground c) facets then
    invalid_arg "Power_complex.of_complex: ground set is a facet";
  let b x =
    List.concat
      (List.init k (fun i -> if List.mem x facets.(i) then [] else [ i + 1 ]))
  in
  let assignment = List.map (fun x -> (x, b x)) (Scomplex.ground c) in
  let ground = List.map snd assignment in
  (make (List.init k (fun i -> i + 1)) ground, assignment)
