lib/scomplex/power_complex.ml: Array Combinat List Listx Scomplex
