lib/scomplex/scomplex.mli: Format
