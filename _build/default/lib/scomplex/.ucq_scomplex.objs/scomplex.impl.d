lib/scomplex/scomplex.ml: Array Combinat Format Intset List Listx Option String
