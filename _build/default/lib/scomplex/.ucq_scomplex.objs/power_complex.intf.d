lib/scomplex/power_complex.mli: Scomplex
