(** Power complexes (Definition 46) and the Lemma 47 conversion: the bridge
    between simplicial complexes and the Lemma 48 UCQ construction. *)

type t = {
  universe : int list;  (** the covered set [U] *)
  ground : int list list;  (** [Ω ⊆ 2^U] with [U ∉ Ω] *)
}

(** [make universe ground] validates (members are proper subsets of the
    universe). *)
val make : int list -> int list list -> t

(** [covers_universe pc s] decides whether the subfamily indexed by [s]
    unions to [U]. *)
val covers_universe : t -> int list -> bool

(** [is_face pc s] per Definition 46. *)
val is_face : t -> int list -> bool

(** [euler_signed_cover pc] is
    [χ̂ = Σ_(S ⊆ Ω, ∪S = U) (-1)^|S|] (exponential in [|Ω|]).
    @raise Invalid_argument beyond 25 members. *)
val euler_signed_cover : t -> int

(** [euler_independent_sets pc] is the Möbius-dual form
    [χ̂ = (-1)^|U| · Σ_(W independent) (-1)^|W|] (exponential in [|U|]) —
    the identity underlying the SAT reduction (DESIGN.md §3).
    @raise Invalid_argument beyond 25 universe elements. *)
val euler_independent_sets : t -> int

(** [to_complex pc] materialises as a facet-encoded complex over ground-set
    indices (exponential; tests only). *)
val to_complex : t -> Scomplex.t

(** [of_complex c] is Lemma 47: for a non-trivial irreducible complex whose
    ground set is not a facet, [b(x) = {i : x ∉ F_i}] yields an isomorphic
    power complex.  Returns it with the assignment [b].
    @raise Invalid_argument when the preconditions fail. *)
val of_complex : Scomplex.t -> t * (int * int list) list
