(** Abstract simplicial complexes (Section 4.2.1 of the paper).

    A complex is a non-empty finite ground set together with a downward
    closed family of faces containing all singletons (Definition 39).
    Complexes are encoded by their ground set and their facets (the
    inclusion-maximal faces), exactly as the paper assumes.

    The reduced Euler characteristic (Definition 40) drives the entire
    meta-complexity machinery of Section 4: the coefficient of the
    high-treewidth term in the Lemma 48 construction equals [-χ̂(Δ)]. *)

module Listx = Listx
module Intset = Intset

type t = { ground : int list; (* sorted, duplicate-free, non-empty *) facets : int list list }

(** [make ground facets] normalises a complex: facets are sorted and reduced
    to the inclusion-maximal ones; elements of the ground set contained in
    no facet gain their singleton facet (Definition 39 forces every
    singleton to be a face). *)
let make (ground : int list) (facets : int list list) : t =
  let ground = Listx.sort_uniq_ints ground in
  if ground = [] then invalid_arg "Scomplex.make: empty ground set";
  let facets = List.map Listx.sort_uniq_ints facets in
  List.iter
    (fun f ->
      if not (Listx.is_subset_sorted f ground) then
        invalid_arg "Scomplex.make: facet not over ground set")
    facets;
  (* add singleton facets for uncovered elements *)
  let covered = List.concat facets in
  let facets =
    facets
    @ List.filter_map
        (fun x -> if List.mem x covered then None else Some [ x ])
        ground
  in
  (* keep only inclusion-maximal, distinct facets *)
  let facets = List.sort_uniq compare facets in
  let maximal =
    List.filter
      (fun f ->
        not
          (List.exists
             (fun g -> g <> f && Listx.is_subset_sorted f g)
             facets))
      facets
  in
  { ground; facets = List.sort compare maximal }

let ground (c : t) : int list = c.ground
let facets (c : t) : int list list = c.facets

(** [size c] is the encoding length: ground-set size plus total facet
    size. *)
let size (c : t) : int =
  List.length c.ground + Listx.sum (List.map List.length c.facets)

(** [is_face c s] decides membership of [s] in the face family. *)
let is_face (c : t) (s : int list) : bool =
  let s = Listx.sort_uniq_ints s in
  List.exists (fun f -> Listx.is_subset_sorted s f) c.facets

(** [faces c] enumerates all faces (including the empty face).  Exponential;
    for small complexes and tests. *)
let faces (c : t) : int list list =
  List.filter (is_face c) (Combinat.subsets_of_list c.ground)
  |> List.map (List.sort compare)
  |> List.sort_uniq compare

(** [is_trivial c] checks whether [c] is isomorphic to
    [({x}, {∅, {x}})]. *)
let is_trivial (c : t) : bool = List.length c.ground = 1

(* ------------------------------------------------------------------ *)
(* Reduced Euler characteristic (Definition 40)                       *)
(* ------------------------------------------------------------------ *)

(** [euler_brute c] computes [χ̂(Δ) = -Σ_{S ∈ I} (-1)^|S|] by enumerating
    all faces.  Exponential in the ground-set size; the reference oracle. *)
let euler_brute (c : t) : int =
  -Listx.sum
     (List.map (fun s -> if List.length s mod 2 = 0 then 1 else -1) (faces c))

(** [euler_facet_ie c] computes χ̂ by inclusion–exclusion over facets:
    since [Σ_{S ⊆ W} (-1)^|S| = [W = ∅]], only facet subfamilies with empty
    intersection contribute, giving
    [χ̂(Δ) = Σ_{∅ ≠ T ⊆ facets, ∩T = ∅} (-1)^|T|].
    Exponential in the number of facets — an independent cross-check. *)
let euler_facet_ie (c : t) : int =
  let facets = Array.of_list c.facets in
  let k = Array.length facets in
  if k > 25 then invalid_arg "Scomplex.euler_facet_ie: too many facets";
  Combinat.subsets_fold
    (fun acc tset ->
      match tset with
      | [] -> acc
      | first :: rest ->
          let inter =
            List.fold_left
              (fun acc i -> Listx.inter_sorted acc facets.(i))
              facets.(first) rest
          in
          if inter = [] then
            acc + (if List.length tset mod 2 = 0 then 1 else -1)
          else acc)
    0 k

(* ------------------------------------------------------------------ *)
(* Domination (Lemmas 41/42) and irreducibility                       *)
(* ------------------------------------------------------------------ *)

(** [dominates c x y] decides whether [x] dominates [y]: by Lemma 41, iff
    every facet containing [y] also contains [x]. *)
let dominates (c : t) (x : int) (y : int) : bool =
  x <> y
  && List.for_all
       (fun f -> (not (List.mem y f)) || List.mem x f)
       c.facets

(** [find_dominated c] returns a pair [(x, y)] with [x] dominating [y], if
    any. *)
let find_dominated (c : t) : (int * int) option =
  let rec scan = function
    | [] -> None
    | y :: rest -> (
        match List.find_opt (fun x -> dominates c x y) c.ground with
        | Some x -> Some (x, y)
        | None -> scan rest)
  in
  scan c.ground

let is_irreducible (c : t) : bool = Option.is_none (find_dominated c)

(** [delete c y] is [Δ \ y]: delete every face containing [y] and remove
    [y] from the ground set.  The new facets are the maximal sets among
    [F \ {y}]. *)
let delete (c : t) (y : int) : t =
  let ground = List.filter (fun x -> x <> y) c.ground in
  if ground = [] then invalid_arg "Scomplex.delete: deleting last element";
  make ground (List.map (List.filter (fun x -> x <> y)) c.facets)

(** [reduce c] applies Lemma 42 exhaustively: repeatedly delete a dominated
    element (χ̂ is invariant under each step).  The result is irreducible or
    trivial. *)
let rec reduce (c : t) : t =
  if is_trivial c then c
  else
    match find_dominated c with
    | None -> c
    | Some (_, y) -> reduce (delete c y)

(** [euler c] computes χ̂ with the Lemma 50 preprocessing: reduce by
    domination; a trivial result or a complete complex (ground set is a
    facet) has [χ̂ = 0]; otherwise fall back to facet inclusion–exclusion
    (or brute force when the facet count is large but the ground set is
    small). *)
let euler (c : t) : int =
  let c = reduce c in
  if is_trivial c then 0
  else if List.exists (fun f -> f = c.ground) c.facets then 0
  else if List.length c.facets <= 20 then euler_facet_ie c
  else if List.length c.ground <= 20 then euler_brute c
  else invalid_arg "Scomplex.euler: complex too large for exact computation"

(* ------------------------------------------------------------------ *)
(* Isomorphism (Definition 43) — for tests on small complexes          *)
(* ------------------------------------------------------------------ *)

(** [isomorphic c1 c2] decides complex isomorphism by brute-force search
    over ground-set bijections (facet multisets must correspond).  Intended
    for small complexes in tests. *)
let isomorphic (c1 : t) (c2 : t) : bool =
  List.length c1.ground = List.length c2.ground
  && List.length c1.facets = List.length c2.facets
  && List.exists
       (fun perm ->
         let mapping = List.combine c1.ground perm in
         let image =
           List.sort compare
             (List.map
                (fun f ->
                  List.sort compare (List.map (fun x -> List.assoc x mapping) f))
                c1.facets)
         in
         image = c2.facets)
       (Combinat.permutations c2.ground)

(* ------------------------------------------------------------------ *)
(* Figure 1 of the paper                                              *)
(* ------------------------------------------------------------------ *)

(** [figure1_delta1] is the left complex of Figure 1: facets
    {2,3,4}, {1,2}, {1,3}, {1,4}; its reduced Euler characteristic is -2. *)
let figure1_delta1 : t =
  make [ 1; 2; 3; 4 ] [ [ 2; 3; 4 ]; [ 1; 2 ]; [ 1; 3 ]; [ 1; 4 ] ]

(** [figure1_delta2] is the right complex of Figure 1: facets
    {1,2}, {2,3}, {1,3}, {4}; its reduced Euler characteristic is 0. *)
let figure1_delta2 : t =
  make [ 1; 2; 3; 4 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ]; [ 4 ] ]

let pp (fmt : Format.formatter) (c : t) : unit =
  Format.fprintf fmt "complex(ground={%s}; facets=%s)"
    (String.concat "," (List.map string_of_int c.ground))
    (String.concat " "
       (List.map
          (fun f -> "{" ^ String.concat "," (List.map string_of_int f) ^ "}")
          c.facets))
