(** Abstract simplicial complexes (Definition 39), encoded by ground set
    and facets, with the reduced Euler characteristic (Definition 40) and
    the domination machinery of Lemmas 41/42. *)

type t

(** [make ground facets] normalises: facets reduced to inclusion-maximal
    sets; uncovered elements gain singleton facets (Definition 39 requires
    all singletons to be faces).
    @raise Invalid_argument on an empty ground set. *)
val make : int list -> int list list -> t

val ground : t -> int list
val facets : t -> int list list

(** [size c] is the encoding length. *)
val size : t -> int

val is_face : t -> int list -> bool

(** [faces c] enumerates all faces, including the empty one (exponential;
    for small complexes). *)
val faces : t -> int list list

(** [is_trivial c]: isomorphic to [({x}, {∅, {x}})]. *)
val is_trivial : t -> bool

(** [euler_brute c] is [χ̂(Δ) = -Σ_(S ∈ I) (-1)^|S|] by face
    enumeration. *)
val euler_brute : t -> int

(** [euler_facet_ie c] computes χ̂ by inclusion–exclusion over facets
    (only facet subfamilies with empty intersection contribute).
    @raise Invalid_argument beyond 25 facets. *)
val euler_facet_ie : t -> int

(** [dominates c x y] is Lemma 41: every facet containing [y] contains
    [x]. *)
val dominates : t -> int -> int -> bool

val find_dominated : t -> (int * int) option
val is_irreducible : t -> bool

(** [delete c y] is [Δ \ y].
    @raise Invalid_argument when deleting the last element. *)
val delete : t -> int -> t

(** [reduce c] deletes dominated elements exhaustively (χ̂-preserving by
    Lemma 42). *)
val reduce : t -> t

(** [euler c] is χ̂ with the Lemma 50 preprocessing: reduce, resolve
    trivial/complete cases to 0, else facet inclusion–exclusion (or brute
    force).
    @raise Invalid_argument when the complex is too large for exact
    computation. *)
val euler : t -> int

(** [isomorphic c1 c2] is Definition 43 isomorphism, by brute force over
    ground-set bijections (small complexes only). *)
val isomorphic : t -> t -> bool

(** Figure 1, left: facets {2,3,4}, {1,2}, {1,3}, {1,4}; χ̂ = -2. *)
val figure1_delta1 : t

(** Figure 1, right: facets {1,2}, {2,3}, {1,3}, {4}; χ̂ = 0. *)
val figure1_delta2 : t

val pp : Format.formatter -> t -> unit
