(** Materialised relations over named integer variables, with the natural
    join / semijoin / projection operators of relational algebra.

    The variable-elimination evaluator ({!Varelim}) and the Yannakakis-style
    counting use these as their workhorse.  A relation carries a list of
    distinct variables (column names) and a set of tuples aligned with that
    list.  A nullary relation is either [{ vars = []; tuples = [[]] }]
    (true) or [{ vars = []; tuples = [] }] (false). *)

type t = { vars : int list; tuples : int list list }

(** [make vars tuples] validates arity and deduplicates. *)
let make (vars : int list) (tuples : int list list) : t =
  if List.length (List.sort_uniq compare vars) <> List.length vars then
    invalid_arg "Relation.make: duplicate variables";
  let arity = List.length vars in
  List.iter
    (fun t ->
      if List.length t <> arity then invalid_arg "Relation.make: arity mismatch")
    tuples;
  { vars; tuples = List.sort_uniq compare tuples }

let truth : t = { vars = []; tuples = [ [] ] }
let falsity : t = { vars = []; tuples = [] }
let cardinality (r : t) : int = List.length r.tuples
let is_empty (r : t) : bool = r.tuples = []

(** [columns_of r vs] is the projection function extracting the values of
    [vs] (in that order) from a tuple of [r].
    @raise Not_found if some variable is absent. *)
let columns_of (r : t) (vs : int list) : int list -> int list =
  let pos = List.map (fun v -> Listx.index_of v r.vars) vs in
  fun tup ->
    let arr = Array.of_list tup in
    List.map (fun p -> arr.(p)) pos

(** [project r vs] projects onto the variables [vs] (deduplicating). *)
let project (r : t) (vs : int list) : t =
  let vs = List.filter (fun v -> List.mem v r.vars) vs in
  let extract = columns_of r vs in
  make vs (List.map extract r.tuples)

(** [join r1 r2] is the natural join: tuples agreeing on the shared
    variables, with output variables [r1.vars @ (r2.vars \ r1.vars)]. *)
let join (r1 : t) (r2 : t) : t =
  let shared = List.filter (fun v -> List.mem v r1.vars) r2.vars in
  let extra = List.filter (fun v -> not (List.mem v r1.vars)) r2.vars in
  let key1 = columns_of r1 shared and key2 = columns_of r2 shared in
  let extra2 = columns_of r2 extra in
  (* hash the smaller side *)
  let index = Hashtbl.create (List.length r2.tuples) in
  List.iter
    (fun t2 ->
      let k = key2 t2 in
      Hashtbl.replace index k (extra2 t2 :: Option.value ~default:[] (Hashtbl.find_opt index k)))
    r2.tuples;
  let out =
    List.concat_map
      (fun t1 ->
        match Hashtbl.find_opt index (key1 t1) with
        | None -> []
        | Some exts -> List.map (fun e -> t1 @ e) exts)
      r1.tuples
  in
  make (r1.vars @ extra) out

(** [join_all rs] folds {!join}; the empty list joins to [truth]. *)
let join_all (rs : t list) : t = List.fold_left join truth rs

(** [semijoin r1 r2] keeps the tuples of [r1] that join with some tuple of
    [r2]. *)
let semijoin (r1 : t) (r2 : t) : t =
  let shared = List.filter (fun v -> List.mem v r1.vars) r2.vars in
  let key1 = columns_of r1 shared and key2 = columns_of r2 shared in
  let index = Hashtbl.create (List.length r2.tuples) in
  List.iter (fun t2 -> Hashtbl.replace index (key2 t2) ()) r2.tuples;
  { r1 with tuples = List.filter (fun t1 -> Hashtbl.mem index (key1 t1)) r1.tuples }

(** [eliminate r v] projects the variable [v] out of [r] (an existential
    quantification step). *)
let eliminate (r : t) (v : int) : t =
  project r (List.filter (fun w -> w <> v) r.vars)

(** [of_atom query_tuple db_tuples] converts an atom [R(t)] with database
    relation [db_tuples] into a relation over the distinct variables of
    [t], honouring repeated variables (e.g. [R(x, y, x)] keeps only
    database tuples with equal first and third components). *)
let of_atom (query_tuple : int list) (db_tuples : int list list) : t =
  let vars = List.sort_uniq compare query_tuple in
  let out =
    List.filter_map
      (fun dt ->
        let binding = Hashtbl.create 4 in
        let ok =
          List.for_all2
            (fun qv dv ->
              match Hashtbl.find_opt binding qv with
              | None ->
                  Hashtbl.add binding qv dv;
                  true
              | Some dv' -> dv = dv')
            query_tuple dt
        in
        if ok then Some (List.map (Hashtbl.find binding) vars) else None)
      db_tuples
  in
  make vars out

let pp (fmt : Format.formatter) (r : t) : unit =
  Format.fprintf fmt "rel(vars=[%s]; %d tuples)"
    (String.concat ";" (List.map string_of_int r.vars))
    (List.length r.tuples)
