(** Constant-delay enumeration of the answers of an acyclic
    quantifier-free conjunctive query (Bagan–Durand–Grandjean; the
    enumeration line of work the paper surveys in Section 1.1).

    Preprocessing is linear: lift the atoms to relations, build a join
    tree, and run a full reducer (bottom-up then top-down semijoin passes),
    after which {e every} remaining tuple participates in at least one
    answer.  Enumeration is a depth-first product over the join tree: at
    each node the tuples matching the parent key are streamed from a hash
    index, and since reduction guarantees each branch completes to an
    answer, the delay between consecutive answers depends only on the
    query.  Answers come out as a lazy {!Seq.t} over the sorted free
    variables. *)

type node = {
  vars : int list;
  tuples : int list list; (* after full reduction *)
  children : child list;
}

and child = {
  child_node : node;
  parent_positions : int list; (* positions of the shared vars in the parent's vars *)
  index : (int list, int list list) Hashtbl.t; (* shared values -> child tuples *)
}

type t = {
  roots : node list; (* one per join-tree component; [] when no atoms *)
  free_order : int list;
  isolated : int list;
  domain : int list;
  empty : bool; (* no answers at all (signature mismatch or empty domain for quantified parts) *)
}

exception Unsupported of string

(** [prepare q d] runs the linear preprocessing.
    @raise Unsupported unless [q] is acyclic and quantifier-free. *)
let prepare (q : Cq.t) (d : Structure.t) : t =
  if not (Cq.is_quantifier_free q) then
    raise (Unsupported "Enumerate: query must be quantifier-free");
  let a = Cq.structure q in
  if not (Signature.subset (Structure.signature a) (Structure.signature d))
  then
    { roots = []; free_order = Cq.free q; isolated = []; domain = []; empty = true }
  else begin
    let atoms =
      List.concat_map
        (fun (name, ts) ->
          let td = Structure.relation d name in
          List.map (fun qt -> Relation.of_atom qt td) ts)
        (Structure.relations a)
    in
    let covered =
      List.sort_uniq compare (List.concat_map (fun r -> r.Relation.vars) atoms)
    in
    let isolated =
      List.filter (fun v -> not (List.mem v covered)) (Structure.universe a)
    in
    match atoms with
    | [] ->
        {
          roots = [];
          free_order = Cq.free q;
          isolated;
          domain = Structure.universe d;
          empty = Structure.universe_size d = 0 && isolated <> [];
        }
    | _ -> begin
        let h =
          Hypergraph.make (Structure.universe a)
            (List.map (fun r -> r.Relation.vars) atoms)
        in
        match Hypergraph.join_tree h with
        | None -> raise (Unsupported "Enumerate: query must be acyclic")
        | Some jt ->
            let rels = Array.of_list atoms in
            let m = Array.length rels in
            let adj = Array.make m [] in
            List.iter
              (fun (x, y) ->
                adj.(x) <- y :: adj.(x);
                adj.(y) <- x :: adj.(y))
              jt.Hypergraph.tree;
            let parent = Array.make m (-1) in
            let order = ref [] in
            let visited = Array.make m false in
            let queue = Queue.create () in
            Queue.add 0 queue;
            visited.(0) <- true;
            parent.(0) <- 0;
            while not (Queue.is_empty queue) do
              let x = Queue.pop queue in
              order := x :: !order;
              List.iter
                (fun y ->
                  if not visited.(y) then begin
                    visited.(y) <- true;
                    parent.(y) <- x;
                    Queue.add y queue
                  end)
                adj.(x)
            done;
            parent.(0) <- -1;
            let bottom_up = !order (* children before parents *) in
            let top_down = List.rev !order in
            (* full reducer *)
            List.iter
              (fun i ->
                if parent.(i) >= 0 then
                  rels.(parent.(i)) <- Relation.semijoin rels.(parent.(i)) rels.(i))
              bottom_up;
            List.iter
              (fun i ->
                if parent.(i) >= 0 then
                  rels.(i) <- Relation.semijoin rels.(i) rels.(parent.(i)))
              top_down;
            (* build nodes bottom-up *)
            let built : node option array = Array.make m None in
            List.iter
              (fun i ->
                let r = rels.(i) in
                let child_ids =
                  List.filter (fun j -> j <> i && parent.(j) = i) (List.init m (fun j -> j))
                in
                let children =
                  List.map
                    (fun j ->
                      let c = Option.get built.(j) in
                      let shared =
                        List.filter (fun v -> List.mem v r.Relation.vars) c.vars
                      in
                      let parent_positions =
                        List.map (fun v -> Listx.index_of v r.Relation.vars) shared
                      in
                      let cpos = List.map (fun v -> Listx.index_of v c.vars) shared in
                      let index = Hashtbl.create (List.length c.tuples) in
                      List.iter
                        (fun t ->
                          let arr = Array.of_list t in
                          let k = List.map (fun p -> arr.(p)) cpos in
                          Hashtbl.replace index k
                            (t
                            :: Option.value ~default:[] (Hashtbl.find_opt index k)))
                        c.tuples;
                      { child_node = c; parent_positions; index })
                    child_ids
                in
                built.(i) <- Some { vars = r.Relation.vars; tuples = r.Relation.tuples; children })
              bottom_up;
            let root = Option.get built.(0) in
            {
              roots = [ root ];
              free_order = Cq.free q;
              isolated;
              domain = Structure.universe d;
              empty = root.tuples = [] || (Structure.universe_size d = 0 && isolated <> []);
            }
      end
  end

(* environments from one node subtree, given the node's candidate tuples *)
let rec subtree_envs (n : node) (candidates : int list list) :
    (int * int) list Seq.t =
  Seq.concat_map
    (fun tuple ->
      let arr = Array.of_list tuple in
      let env = List.combine n.vars tuple in
      List.fold_left
        (fun acc (c : child) ->
          let key = List.map (fun p -> arr.(p)) c.parent_positions in
          let child_tuples =
            Option.value ~default:[] (Hashtbl.find_opt c.index key)
          in
          Seq.concat_map
            (fun partial ->
              Seq.map
                (fun child_env -> child_env @ partial)
                (subtree_envs c.child_node child_tuples))
            acc)
        (Seq.return env) n.children)
    (List.to_seq candidates)

(** [answers t] lazily enumerates the answer set over the sorted free
    variables. *)
let answers (t : t) : int list Seq.t =
  if t.empty then Seq.empty
  else begin
    let base =
      List.fold_left
        (fun acc root ->
          Seq.concat_map
            (fun partial ->
              Seq.map
                (fun env -> env @ partial)
                (subtree_envs root root.tuples))
            acc)
        (Seq.return []) t.roots
    in
    (* expand isolated variables over the domain *)
    let with_isolated =
      List.fold_left
        (fun acc v ->
          Seq.concat_map
            (fun env ->
              Seq.map (fun value -> (v, value) :: env) (List.to_seq t.domain))
            acc)
        base t.isolated
    in
    Seq.map
      (fun env -> List.map (fun v -> List.assoc v env) t.free_order)
      with_isolated
  end

(** [to_list t] materialises the enumeration (tests). *)
let to_list (t : t) : int list list =
  List.sort_uniq compare (List.of_seq (answers t))
