lib/db/enumerate.mli: Cq Seq Structure
