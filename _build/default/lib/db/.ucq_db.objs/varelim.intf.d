lib/db/varelim.mli: Bigint Cq Relation Structure
