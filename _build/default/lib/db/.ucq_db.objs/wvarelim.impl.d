lib/db/wvarelim.ml: Array Combinat Hashtbl List Listx Option Relation Signature Structure
