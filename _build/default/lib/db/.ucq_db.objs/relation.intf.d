lib/db/relation.mli: Format
