lib/db/generators.ml: List Printf Random Signature Structure
