lib/db/counting.ml: Bigint Combinat Cq Hom Jointree_count List Structure Treedec_count Varelim Wvarelim
