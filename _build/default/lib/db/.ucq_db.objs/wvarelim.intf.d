lib/db/wvarelim.mli: Structure
