lib/db/varelim.ml: Bigint Combinat Cq Hom List Listx Relation Signature Structure
