lib/db/enumerate.ml: Array Cq Hashtbl Hypergraph List Listx Option Queue Relation Seq Signature Structure
