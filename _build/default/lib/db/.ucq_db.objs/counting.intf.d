lib/db/counting.mli: Bigint Cq Structure
