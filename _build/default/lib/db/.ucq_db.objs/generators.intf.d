lib/db/generators.mli: Signature Structure
