lib/db/relation.ml: Array Format Hashtbl List Listx Option String
