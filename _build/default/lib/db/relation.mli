(** Materialised relations over named integer variables with the natural
    join / semijoin / projection operators. *)

type t = { vars : int list; tuples : int list list }

(** [make vars tuples] validates (distinct variables, matching arities) and
    deduplicates. *)
val make : int list -> int list list -> t

(** The nullary true relation [{ vars = []; tuples = [[]] }]. *)
val truth : t

(** The nullary false relation. *)
val falsity : t

val cardinality : t -> int
val is_empty : t -> bool

(** [columns_of r vs] extracts the values of [vs] (in order) from a tuple.
    @raise Not_found if some variable is absent from [r.vars]. *)
val columns_of : t -> int list -> int list -> int list

(** [project r vs] projects onto the listed variables (deduplicating;
    variables absent from [r] are dropped from the projection list). *)
val project : t -> int list -> t

(** [join r1 r2] is the natural join; output variables are
    [r1.vars @ (r2.vars \ r1.vars)]. *)
val join : t -> t -> t

(** [join_all rs] folds {!join} starting from {!truth}. *)
val join_all : t list -> t

(** [semijoin r1 r2] keeps the tuples of [r1] joining with [r2]. *)
val semijoin : t -> t -> t

(** [eliminate r v] projects the variable out (an ∃ step). *)
val eliminate : t -> int -> t

(** [of_atom query_tuple db_tuples] lifts an atom to a relation over its
    distinct variables, honouring repeated variables. *)
val of_atom : int list -> int list list -> t

val pp : Format.formatter -> t -> unit
