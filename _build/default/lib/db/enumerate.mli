(** Constant-delay enumeration of the answers of acyclic quantifier-free
    conjunctive queries (Bagan–Durand–Grandjean; Section 1.1's enumeration
    context): linear-time preprocessing by a full semijoin reducer over the
    join tree, then answer-to-answer delay independent of the database. *)

type t

exception Unsupported of string

(** [prepare q d] runs the linear preprocessing.
    @raise Unsupported unless [q] is acyclic and quantifier-free. *)
val prepare : Cq.t -> Structure.t -> t

(** [answers t] lazily enumerates the answers over the sorted free
    variables. *)
val answers : t -> int list Seq.t

(** [to_list t] materialises and sorts the enumeration (tests). *)
val to_list : t -> int list list
