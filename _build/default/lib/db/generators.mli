(** Seeded synthetic database generators for tests, examples and the
    benchmark harness (the paper has no testbed; see DESIGN.md §3). *)

(** The signature [{E/2}]. *)
val graph_signature : Signature.t

(** [random_digraph ~seed n m] draws [m] directed edges (no self-loops). *)
val random_digraph : seed:int -> int -> int -> Structure.t

(** [random_graph ~seed n m] is the symmetric variant. *)
val random_graph : seed:int -> int -> int -> Structure.t

(** [path_db n] is the directed path [0 → 1 → ... → n-1]. *)
val path_db : int -> Structure.t

(** [cycle_db n] is the directed cycle. *)
val cycle_db : int -> Structure.t

(** [clique_db n] is the complete loopless symmetric digraph. *)
val clique_db : int -> Structure.t

(** [random_structure ~seed sg n k] draws [k] uniform tuples per symbol. *)
val random_structure : seed:int -> Signature.t -> int -> int -> Structure.t

(** [random_labelled_graph ~seed ~labels n m] has binary relations
    [E0 ... E(labels-1)] with [m] random loop-free edges each (a labelled
    graph in the sense of Section 5). *)
val random_labelled_graph : seed:int -> labels:int -> int -> int -> Structure.t
