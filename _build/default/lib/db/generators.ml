(** Synthetic database generators for tests, examples and benchmarks.

    The paper has no experimental testbed; the running-time "shape"
    experiments (EXPERIMENTS.md, E3/E4/E6) are driven by databases produced
    here.  All generators take an explicit [seed] so every experiment is
    reproducible. *)

let graph_signature : Signature.t = Signature.make [ Signature.symbol "E" 2 ]

(** [random_digraph ~seed n m] is a database over signature {E/2} with [n]
    elements and [m] random directed edges (no self-loops, duplicates
    dropped by set semantics). *)
let random_digraph ~(seed : int) (n : int) (m : int) : Structure.t =
  let st = Random.State.make [| seed |] in
  let edges = ref [] in
  for _ = 1 to m do
    let u = Random.State.int st n in
    let v = Random.State.int st n in
    if u <> v then edges := [ u; v ] :: !edges
  done;
  Structure.make graph_signature (List.init n (fun i -> i)) [ ("E", !edges) ]

(** [random_graph ~seed n m] is as {!random_digraph} but symmetric: both
    orientations of each edge are present. *)
let random_graph ~(seed : int) (n : int) (m : int) : Structure.t =
  let st = Random.State.make [| seed |] in
  let edges = ref [] in
  for _ = 1 to m do
    let u = Random.State.int st n in
    let v = Random.State.int st n in
    if u <> v then edges := [ u; v ] :: [ v; u ] :: !edges
  done;
  Structure.make graph_signature (List.init n (fun i -> i)) [ ("E", !edges) ]

(** [path_db n] is the directed path 0 → 1 → ... → n-1. *)
let path_db (n : int) : Structure.t =
  Structure.make graph_signature
    (List.init n (fun i -> i))
    [ ("E", List.init (max 0 (n - 1)) (fun i -> [ i; i + 1 ])) ]

(** [cycle_db n] is the directed cycle on [n ≥ 1] elements. *)
let cycle_db (n : int) : Structure.t =
  Structure.make graph_signature
    (List.init n (fun i -> i))
    [ ("E", List.init n (fun i -> [ i; (i + 1) mod n ])) ]

(** [clique_db n] is the complete symmetric digraph without self-loops
    (worst case for triangle-style queries). *)
let clique_db (n : int) : Structure.t =
  let edges =
    List.concat
      (List.init n (fun u ->
           List.concat
             (List.init n (fun v -> if u <> v then [ [ u; v ] ] else []))))
  in
  Structure.make graph_signature (List.init n (fun i -> i)) [ ("E", edges) ]

(** [random_structure ~seed sg n tuples_per_symbol] draws, for each symbol,
    [tuples_per_symbol] uniform tuples over a universe of size [n]. *)
let random_structure ~(seed : int) (sg : Signature.t) (n : int)
    (tuples_per_symbol : int) : Structure.t =
  let st = Random.State.make [| seed |] in
  let rels =
    List.map
      (fun (s : Signature.symbol) ->
        ( s.name,
          List.init tuples_per_symbol (fun _ ->
              List.init s.arity (fun _ -> Random.State.int st (max 1 n))) ))
      sg
  in
  Structure.make sg (List.init n (fun i -> i)) rels

(** [random_labelled_graph ~seed ~labels n m] is a database with [labels]
    binary relations [E0, ..., E(labels-1)] and [m] random edges per
    relation — a "labelled graph" in the sense of Section 5 (arity ≤ 2, no
    self-loops). *)
let random_labelled_graph ~(seed : int) ~(labels : int) (n : int) (m : int) :
    Structure.t =
  let sg =
    Signature.make
      (List.init labels (fun i -> Signature.symbol (Printf.sprintf "E%d" i) 2))
  in
  let st = Random.State.make [| seed |] in
  let rels =
    List.init labels (fun i ->
        let edges = ref [] in
        for _ = 1 to m do
          let u = Random.State.int st n in
          let v = Random.State.int st n in
          if u <> v then edges := [ u; v ] :: !edges
        done;
        (Printf.sprintf "E%d" i, !edges))
  in
  Structure.make sg (List.init n (fun i -> i)) rels
