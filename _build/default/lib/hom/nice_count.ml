(** Counting homomorphisms by dynamic programming over a {e nice} tree
    decomposition — the textbook [Leaf / Introduce / Forget / Join]
    formulation of the algorithm behind {!Treedec_count}.

    Tables map assignments of the current bag (encoded as sorted
    (vertex, value) association lists) to partial counts:

    - [Leaf]: the empty assignment with count 1;
    - [Introduce v]: extend every assignment with every domain value of
      [v], keeping only extensions satisfying the atoms that become fully
      assigned (every atom spans a Gaifman clique, hence fits in a bag, and
      is checked at the node introducing the last of its elements);
    - [Forget v]: project [v] away, summing counts;
    - [Join]: multiply counts of equal assignments.

    The empty root bag leaves a single scalar: [hom(A → D)].  This module
    exists alongside {!Treedec_count} as an independently-implemented
    cross-check (the two are tested against each other and against the
    backtracking oracle). *)

module Intset = Intset

(** [count ?nice a d] is [hom(A → D)].  A nice decomposition of the
    Gaifman graph is computed from the exact/heuristic treewidth algorithm
    unless one is supplied. *)
let count ?(nice : Nice_treedec.t option) (a : Structure.t) (d : Structure.t) :
    int =
  if not (Signature.subset (Structure.signature a) (Structure.signature d))
  then 0
  else begin
    let g, old_of_new = Structure.gaifman a in
    let new_of_old = Hashtbl.create (Array.length old_of_new) in
    Array.iteri (fun i v -> Hashtbl.add new_of_old v i) old_of_new;
    let nice =
      match nice with
      | Some n -> n
      | None ->
          let _, dec =
            if Graph.num_vertices g <= 20 then Treewidth.exact g
            else Treewidth.heuristic g
          in
          let dec =
            if Treedec.num_bags dec = 0 then
              { Treedec.bags = [| Intset.empty |]; tree = [] }
            else dec
          in
          Nice_treedec.of_treedec dec
    in
    let domain = Array.of_list (Structure.universe d) in
    let nd = Array.length domain in
    if Structure.universe_size a = 0 then 1
    else if nd = 0 then 0
    else begin
      (* atoms as (dense element list, membership test) *)
      let atoms =
        List.concat_map
          (fun (name, ts) ->
            let td = Structure.relation d name in
            let set = Hashtbl.create (List.length td) in
            List.iter (fun t -> Hashtbl.replace set t ()) td;
            List.map
              (fun qt ->
                let dense = List.map (Hashtbl.find new_of_old) qt in
                (Listx.sort_uniq_ints dense, dense, set))
              ts)
          (Structure.relations a)
      in
      (* nullary atoms involve no vertex and are never reached by the
         introduce rule: check them upfront *)
      let nullary_ok =
        List.for_all
          (fun (vars, dense, set) ->
            vars <> [] || dense <> [] || Hashtbl.mem set [])
          atoms
      in
      if not nullary_ok then 0
      else begin
      (* table: sorted (vertex, value) assoc list -> count *)
      let rec run (n : Nice_treedec.t) : (int * int) list list * int list =
        (* returns the table as a list of (assignment, count implicit via
           pairing below) — we carry counts in a parallel list to keep the
           key type simple *)
        match n with
        | Nice_treedec.Leaf -> ([ [] ], [ 1 ])
        | Nice_treedec.Forget (v, _, c) ->
            let keys, counts = run c in
            let tbl = Hashtbl.create (List.length keys) in
            List.iter2
              (fun key cnt ->
                let key' = List.filter (fun (x, _) -> x <> v) key in
                Hashtbl.replace tbl key'
                  (cnt + Option.value ~default:0 (Hashtbl.find_opt tbl key')))
              keys counts;
            Hashtbl.fold (fun k c (ks, cs) -> (k :: ks, c :: cs)) tbl ([], [])
        | Nice_treedec.Introduce (v, b, c) ->
            let keys, counts = run c in
            let bag_elems = Intset.to_list b in
            (* atoms fully inside the bag that mention v *)
            let relevant =
              List.filter
                (fun (vars, _, _) ->
                  List.mem v vars && Listx.is_subset_sorted vars bag_elems)
                atoms
            in
            let out_keys = ref [] and out_counts = ref [] in
            List.iter2
              (fun key cnt ->
                Array.iter
                  (fun value ->
                    let key' =
                      List.merge
                        (fun (x, _) (y, _) -> compare x y)
                        [ (v, value) ] key
                    in
                    let ok =
                      List.for_all
                        (fun (_, dense, set) ->
                          let tup =
                            List.map (fun x -> List.assoc x key') dense
                          in
                          Hashtbl.mem set tup)
                        relevant
                    in
                    if ok then begin
                      out_keys := key' :: !out_keys;
                      out_counts := cnt :: !out_counts
                    end)
                  domain)
              keys counts;
            (!out_keys, !out_counts)
        | Nice_treedec.Join (_, c1, c2) ->
            let keys1, counts1 = run c1 in
            let keys2, counts2 = run c2 in
            let tbl = Hashtbl.create (List.length keys2) in
            List.iter2
              (fun k c ->
                Hashtbl.replace tbl k
                  (c + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
              keys2 counts2;
            let out_keys = ref [] and out_counts = ref [] in
            List.iter2
              (fun k c ->
                match Hashtbl.find_opt tbl k with
                | None -> ()
                | Some c2 ->
                    out_keys := k :: !out_keys;
                    out_counts := (c * c2) :: !out_counts)
              keys1 counts1;
            (!out_keys, !out_counts)
      in
      let keys, counts = run nice in
      (* root bag is empty: at most one entry *)
      List.fold_left2
        (fun acc key cnt -> if key = [] then acc + cnt else acc)
        0 keys counts
      end
    end
  end
