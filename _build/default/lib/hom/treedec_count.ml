(** Counting homomorphisms by dynamic programming over a tree decomposition.

    This is the classical [n^{tw+1}]-time algorithm behind the tractable
    side of the Chen–Mengel classification (Theorem 21) in the
    quantifier-free case: counting answers to a quantifier-free conjunctive
    query [A] equals counting homomorphisms [A → D], which bounded-treewidth
    queries admit in polynomial time.  Every atom of [A] spans a clique of
    the Gaifman graph, hence lies inside some bag of any tree decomposition
    (the Helly property of subtrees), so each atom can be checked locally at
    one bag. *)

module Intset = Intset

type plan = {
  elems : int array; (* dense index -> element of A *)
  bags : int list array; (* bag index -> sorted dense element indices *)
  children : int list array;
  parent_itx : int list array; (* bag -> sorted dense indices shared with parent *)
  local_atoms : (string * int list) list array; (* bag -> atoms (name, dense tuple) *)
  root : int;
}

(** [make_plan a] computes a tree decomposition of the Gaifman graph of [a]
    (exact for small queries, heuristic otherwise), roots it, and assigns
    every atom to a bag containing all of its elements. *)
let make_plan (a : Structure.t) : plan =
  let g, old_of_new = Structure.gaifman a in
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun i v -> Hashtbl.add new_of_old v i) old_of_new;
  let _, dec =
    if Graph.num_vertices g <= 20 then Treewidth.exact g else Treewidth.heuristic g
  in
  let dec =
    if Treedec.num_bags dec = 0 then { Treedec.bags = [| Intset.empty |]; tree = [] }
    else dec
  in
  let b = Treedec.num_bags dec in
  let bags = Array.map (fun s -> Intset.to_list s) dec.Treedec.bags in
  (* Root at 0 and orient. *)
  let adj = Array.make b [] in
  List.iter
    (fun (x, y) ->
      adj.(x) <- y :: adj.(x);
      adj.(y) <- x :: adj.(y))
    dec.Treedec.tree;
  let parent = Array.make b (-1) in
  let children = Array.make b [] in
  let visited = Array.make b false in
  let order = ref [] in
  let queue = Queue.create () in
  Queue.add 0 queue;
  visited.(0) <- true;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    order := x :: !order;
    List.iter
      (fun y ->
        if not visited.(y) then begin
          visited.(y) <- true;
          parent.(y) <- x;
          children.(x) <- y :: children.(x);
          Queue.add y queue
        end)
      adj.(x)
  done;
  let parent_itx =
    Array.init b (fun i ->
        if parent.(i) < 0 then []
        else Listx.inter_sorted bags.(i) bags.(parent.(i)))
  in
  (* Assign each atom to a bag containing all of its elements. *)
  let local_atoms = Array.make b [] in
  List.iter
    (fun (name, ts) ->
      List.iter
        (fun tup ->
          let dense = List.map (Hashtbl.find new_of_old) tup in
          let sorted = Listx.sort_uniq_ints dense in
          let bag =
            let found = ref (-1) in
            Array.iteri
              (fun i bvs ->
                if !found < 0 && Listx.is_subset_sorted sorted bvs then found := i)
              bags;
            !found
          in
          if bag < 0 then
            invalid_arg "Treedec_count: atom not coverable (invalid decomposition)";
          local_atoms.(bag) <- (name, dense) :: local_atoms.(bag))
        ts)
    (Structure.relations a);
  { elems = old_of_new; bags; children; parent_itx; local_atoms; root = 0 }

(** [Make (R)] instantiates the dynamic program over a counting semiring;
    [R = Semiring.Int] gives the fast native path, [Semiring.Big] the exact
    arbitrary-precision path used by the Theorem 28 solver. *)
module Make (R : Semiring.S) = struct
(** [count a d] is [hom(A -> D)], computed in time roughly
    [|bags| * |U(D)|^{tw+1}]. *)
let count (a : Structure.t) (d : Structure.t) : R.t =
  if not (Signature.subset (Structure.signature a) (Structure.signature d))
  then R.zero
  else if Structure.universe_size a = 0 then R.one
  else begin
    let plan = make_plan a in
    let domain = Array.of_list (Structure.universe d) in
    let nd = Array.length domain in
    if nd = 0 then R.zero
    else begin
      let b = Array.length plan.bags in
      (* memoised relation membership *)
      let rel_tbl = Hashtbl.create 16 in
      List.iter
        (fun (name, ts) ->
          let set = Hashtbl.create (List.length ts) in
          List.iter (fun t -> Hashtbl.replace set t ()) ts;
          Hashtbl.replace rel_tbl name set)
        (Structure.relations d);
      let tuple_in name tup =
        match Hashtbl.find_opt rel_tbl name with
        | None -> false
        | Some set -> Hashtbl.mem set tup
      in
      (* Bottom-up DP; table for bag i maps the value vector of
         [parent_itx.(i)] to the number of consistent subtree extensions. *)
      let tables : (int list, R.t) Hashtbl.t array =
        Array.init b (fun _ -> Hashtbl.create 64)
      in
      let rec process (i : int) : unit =
        List.iter process plan.children.(i);
        let bag = Array.of_list plan.bags.(i) in
        let k = Array.length bag in
        let assignment = Hashtbl.create 8 in
        let child_info =
          List.map
            (fun c ->
              (tables.(c), plan.parent_itx.(c)))
            plan.children.(i)
        in
        let table = tables.(i) in
        (* odometer over domain^k *)
        let counters = Array.make k 0 in
        let finished = ref (k = 0) in
        let step () =
          let j = ref 0 in
          let carrying = ref true in
          while !carrying && !j < k do
            counters.(!j) <- counters.(!j) + 1;
            if counters.(!j) = nd then begin
              counters.(!j) <- 0;
              incr j
            end
            else carrying := false
          done;
          if !carrying then finished := true
        in
        let emit () =
          Array.iteri (fun p e -> Hashtbl.replace assignment e domain.(counters.(p))) bag;
          let local_ok =
            List.for_all
              (fun (name, dense_tup) ->
                tuple_in name (List.map (Hashtbl.find assignment) dense_tup))
              plan.local_atoms.(i)
          in
          if local_ok then begin
            let contribution =
              List.fold_left
                (fun acc (ctable, itx) ->
                  if R.is_zero acc then acc
                  else begin
                    let key = List.map (Hashtbl.find assignment) itx in
                    match Hashtbl.find_opt ctable key with
                    | None -> R.zero
                    | Some c -> R.mul acc c
                  end)
                R.one child_info
            in
            if not (R.is_zero contribution) then begin
              let key = List.map (Hashtbl.find assignment) plan.parent_itx.(i) in
              Hashtbl.replace table key
                (R.add contribution
                   (Option.value ~default:R.zero (Hashtbl.find_opt table key)))
            end
          end
        in
        if k = 0 then begin
          (* empty bag: contributes the product of children at the empty key *)
          let contribution =
            List.fold_left
              (fun acc (ctable, _) ->
                R.mul acc
                  (Option.value ~default:R.zero (Hashtbl.find_opt ctable [])))
              R.one child_info
          in
          Hashtbl.replace table [] contribution
        end
        else begin
          (* iterate all nd^k assignments *)
          let continue_ = ref true in
          while !continue_ do
            emit ();
            step ();
            if !finished then continue_ := false
          done
        end
      in
      process plan.root;
      Hashtbl.fold (fun _ c acc -> R.add acc c) tables.(plan.root) R.zero
    end
  end
end

module I = Make (Semiring.Int)
module B = Make (Semiring.Big)

(** [count a d] is [hom(A -> D)] with native-integer arithmetic. *)
let count : Structure.t -> Structure.t -> int = I.count

(** [count_big a d] is [hom(A -> D)] with exact arbitrary precision. *)
let count_big : Structure.t -> Structure.t -> Bigint.t = B.count
