(** Homomorphisms between relational structures (Section 2.2): the
    semantics of conjunctive-query answers, found by backtracking with
    unary-consistency pruning. *)

(** [iter_homs ?fixed a b f] invokes [f] on every homomorphism [A → B]
    extending the partial assignment [fixed]; [f] returns [false] to stop
    the enumeration. *)
val iter_homs :
  ?fixed:(int * int) list ->
  Structure.t ->
  Structure.t ->
  ((int * int) list -> bool) ->
  unit

(** [exists ?fixed a b] decides existence. *)
val exists : ?fixed:(int * int) list -> Structure.t -> Structure.t -> bool

(** [count ?fixed a b] counts by exhaustive backtracking — the reference
    oracle (exponential in [|U(A)|]). *)
val count : ?fixed:(int * int) list -> Structure.t -> Structure.t -> int

(** [find ?fixed a b] returns some homomorphism, if any. *)
val find :
  ?fixed:(int * int) list ->
  Structure.t ->
  Structure.t ->
  (int * int) list option

(** [find_non_surjective_endo a ~fixed_pointwise] searches for a
    non-surjective endomorphism of [a] fixing the listed elements
    pointwise — the Observation 17 test: [(A, X)] is #minimal iff none
    exists. *)
val find_non_surjective_endo :
  Structure.t -> fixed_pointwise:int list -> (int * int) list option
