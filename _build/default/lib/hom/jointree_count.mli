(** Linear-time counting of homomorphisms of acyclic quantifier-free
    conjunctive queries — the counting variant of Yannakakis' join-tree
    algorithm (upper bound of Theorems 4/37). *)

(** [atom_hypergraph a] is the hypergraph of atom scopes. *)
val atom_hypergraph : Structure.t -> Hypergraph.t

(** [is_acyclic_structure a] is alpha-acyclicity of the atom hypergraph —
    the paper's notion of acyclicity for queries. *)
val is_acyclic_structure : Structure.t -> bool

(** [Make (R)] instantiates the counter over a semiring. *)
module Make (R : Semiring.S) : sig
  val count : Structure.t -> Structure.t -> R.t option
end

(** [count a d] is [hom(A → D)] with native integers, or [None] when [a] is
    cyclic (fall back to {!Treedec_count}). *)
val count : Structure.t -> Structure.t -> int option

(** [count_big a d] is the exact arbitrary-precision variant. *)
val count_big : Structure.t -> Structure.t -> Bigint.t option
