(** Linear-time counting of homomorphisms of acyclic quantifier-free
    conjunctive queries (upper bound of Theorems 4/37).

    The algorithm is the counting variant of Yannakakis' join-tree
    evaluation: process the join tree of the atom hypergraph bottom-up,
    aggregating for each node a table from (values of the variables shared
    with the parent) to the number of consistent assignments of the
    variables introduced in the subtree.  Every relation of the database is
    scanned a constant number of times and all lookups are hash-based, so
    the running time is linear in [|D|] for a fixed query — matching the
    word-RAM bound the paper cites ([17]). *)

module Intset = Intset

(** [atom_hypergraph a] is the hypergraph whose vertices are the universe of
    [a] and whose edges are the element sets of its atoms. *)
let atom_hypergraph (a : Structure.t) : Hypergraph.t =
  let edges =
    List.concat_map
      (fun (_, ts) -> List.map (fun t -> List.sort_uniq compare t) ts)
      (Structure.relations a)
  in
  Hypergraph.make (Structure.universe a) edges

(** [is_acyclic_structure a] decides alpha-acyclicity of the atom
    hypergraph (the paper's notion of acyclicity for structures/queries). *)
let is_acyclic_structure (a : Structure.t) : bool =
  Hypergraph.is_acyclic (atom_hypergraph a)

(** [Make (R)] instantiates the join-tree counter over a counting
    semiring. *)
module Make (R : Semiring.S) = struct
(** [count a d] is [hom(A -> D)] for an acyclic quantifier-free query [a].
    Returns [None] if [a] is not acyclic (callers fall back to
    {!Treedec_count}). *)
let count (a : Structure.t) (d : Structure.t) : R.t option =
  if not (Signature.subset (Structure.signature a) (Structure.signature d))
  then Some R.zero
  else begin
    (* List atoms as (vars-of-atom, database tuples restricted to a canonical
       variable order).  An atom R(x, y, x) with repeated variables keeps
       only database tuples with equal first/third components. *)
    let atoms =
      List.concat_map
        (fun (name, ts) ->
          let td = Structure.relation d name in
          List.map
            (fun qt ->
              let vars = List.sort_uniq compare qt in
              (* For each database tuple, check the repetition pattern and
                 project onto [vars]. *)
              let proj =
                List.filter_map
                  (fun dt ->
                    let binding = Hashtbl.create 4 in
                    let ok =
                      List.for_all2
                        (fun qv dv ->
                          match Hashtbl.find_opt binding qv with
                          | None ->
                              Hashtbl.add binding qv dv;
                              true
                          | Some dv' -> dv = dv')
                        qt dt
                    in
                    if ok then Some (List.map (Hashtbl.find binding) vars)
                    else None)
                  td
              in
              (vars, List.sort_uniq compare proj))
            ts)
        (Structure.relations a)
    in
    let h =
      Hypergraph.make (Structure.universe a) (List.map fst atoms)
    in
    match Hypergraph.join_tree h with
    | None -> None
    | Some jt ->
        let atoms_arr = Array.of_list atoms in
        let m = Array.length atoms_arr in
        let n_db = Structure.universe_size d in
        if m = 0 then
          Some (R.pow (R.of_int n_db) (Structure.universe_size a))
        else begin
          (* Variables covered by no atom are free: multiply by |U(D)| each.*)
          let covered =
            List.fold_left
              (fun acc (vars, _) -> List.fold_left (fun s v -> Intset.add v s) acc vars)
              Intset.empty atoms
          in
          let isolated =
            List.length
              (List.filter
                 (fun v -> not (Intset.mem v covered))
                 (Structure.universe a))
          in
          (* Root the join tree at node 0 and process bottom-up. *)
          let adj = Array.make m [] in
          List.iter
            (fun (x, y) ->
              adj.(x) <- y :: adj.(x);
              adj.(y) <- x :: adj.(y))
            jt.Hypergraph.tree;
          let parent = Array.make m (-1) in
          let children = Array.make m [] in
          let visited = Array.make m false in
          let queue = Queue.create () in
          Queue.add 0 queue;
          visited.(0) <- true;
          let topo = ref [] in
          while not (Queue.is_empty queue) do
            let x = Queue.pop queue in
            topo := x :: !topo;
            List.iter
              (fun y ->
                if not visited.(y) then begin
                  visited.(y) <- true;
                  parent.(y) <- x;
                  children.(x) <- y :: children.(x);
                  Queue.add y queue
                end)
              adj.(x)
          done;
          (* tables.(i) maps shared-with-parent value vectors to counts *)
          let tables : (int list, R.t) Hashtbl.t array =
            Array.init m (fun _ -> Hashtbl.create 64)
          in
          (* process in reverse BFS order (leaves first) *)
          List.iter
            (fun i ->
              let vars_i, tuples_i = atoms_arr.(i) in
              let itx_parent =
                if parent.(i) < 0 then []
                else Listx.inter_sorted vars_i (fst atoms_arr.(parent.(i)))
              in
              let child_info =
                List.map
                  (fun c ->
                    let itx = Listx.inter_sorted (fst atoms_arr.(c)) vars_i in
                    (* positions of itx variables within vars_i *)
                    let pos = List.map (fun v -> Listx.index_of v vars_i) itx in
                    (tables.(c), pos))
                  children.(i)
              in
              let parent_pos =
                List.map (fun v -> Listx.index_of v vars_i) itx_parent
              in
              let table = tables.(i) in
              List.iter
                (fun tup ->
                  let arr = Array.of_list tup in
                  let contribution =
                    List.fold_left
                      (fun acc (ctable, pos) ->
                        if R.is_zero acc then acc
                        else begin
                          let key = List.map (fun p -> arr.(p)) pos in
                          R.mul acc
                            (Option.value ~default:R.zero
                               (Hashtbl.find_opt ctable key))
                        end)
                      R.one child_info
                  in
                  if not (R.is_zero contribution) then begin
                    let key = List.map (fun p -> arr.(p)) parent_pos in
                    Hashtbl.replace table key
                      (R.add contribution
                         (Option.value ~default:R.zero (Hashtbl.find_opt table key)))
                  end)
                tuples_i)
            !topo;
          let root_total =
            Hashtbl.fold (fun _ c acc -> R.add acc c) tables.(0) R.zero
          in
          Some (R.mul root_total (R.pow (R.of_int n_db) isolated))
        end
      end
end

module I = Make (Semiring.Int)
module B = Make (Semiring.Big)

(** [count a d] is [hom(A -> D)] with native-integer arithmetic, or [None]
    if [a] is cyclic. *)
let count : Structure.t -> Structure.t -> int option = I.count

(** [count_big a d] is the exact arbitrary-precision variant. *)
let count_big : Structure.t -> Structure.t -> Bigint.t option = B.count
