(** Counting homomorphisms over a nice tree decomposition — the textbook
    [Leaf / Introduce / Forget / Join] dynamic program, kept as an
    independently-implemented cross-check of {!Treedec_count}. *)

(** [count ?nice a d] is [hom(A → D)]; a nice decomposition of the Gaifman
    graph is computed unless supplied. *)
val count : ?nice:Nice_treedec.t -> Structure.t -> Structure.t -> int
