lib/hom/treedec_count.ml: Array Bigint Graph Hashtbl Intset List Listx Option Queue Semiring Signature Structure Treedec Treewidth
