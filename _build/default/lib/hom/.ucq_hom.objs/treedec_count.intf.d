lib/hom/treedec_count.mli: Bigint Semiring Structure
