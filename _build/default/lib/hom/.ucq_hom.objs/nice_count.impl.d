lib/hom/nice_count.ml: Array Graph Hashtbl Intset List Listx Nice_treedec Option Signature Structure Treedec Treewidth
