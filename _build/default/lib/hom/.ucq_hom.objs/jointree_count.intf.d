lib/hom/jointree_count.mli: Bigint Hypergraph Semiring Structure
