lib/hom/semiring.ml: Bigint
