lib/hom/hom.ml: Array Hashtbl Intset List Signature Structure
