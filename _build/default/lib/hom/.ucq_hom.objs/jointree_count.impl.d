lib/hom/jointree_count.ml: Array Bigint Hashtbl Hypergraph Intset List Listx Option Queue Semiring Signature Structure
