lib/hom/hom.mli: Structure
