lib/hom/nice_count.mli: Nice_treedec Structure
