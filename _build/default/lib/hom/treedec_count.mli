(** Counting homomorphisms in [|U(D)|^(tw+1)] time by dynamic programming
    over a tree decomposition — the tractable side of Theorem 21 for
    quantifier-free queries. *)

(** A compiled counting plan: rooted decomposition with atoms assigned to
    covering bags (every atom spans a Gaifman clique, hence fits in a bag
    by the Helly property). *)
type plan

(** [make_plan a] decomposes the Gaifman graph (exactly for small queries)
    and assigns atoms to bags.
    @raise Invalid_argument if the decomposition cannot cover an atom. *)
val make_plan : Structure.t -> plan

(** [Make (R)] instantiates the dynamic program over a semiring. *)
module Make (R : Semiring.S) : sig
  val count : Structure.t -> Structure.t -> R.t
end

(** [count a d] is [hom(A → D)] with native integers. *)
val count : Structure.t -> Structure.t -> int

(** [count_big a d] is the exact arbitrary-precision variant (used on the
    tensor products of Theorem 28). *)
val count_big : Structure.t -> Structure.t -> Bigint.t
