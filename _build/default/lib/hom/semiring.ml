(** Commutative semirings for parametric counting.

    The dynamic programs of {!Jointree_count} and {!Treedec_count} only add
    and multiply partial counts, so they are written once over an abstract
    semiring.  The [Int] instance is the fast word-RAM path used by the
    benchmarks (matching the machine model of Section 2); the [Big] instance
    (over {!Bigint.t}) is used by the complexity-monotonicity solver of
    Theorem 28, whose tensor-product counts overflow native integers. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val mul : t -> t -> t
  val is_zero : t -> bool

  (** [of_int n] embeds a small non-negative native integer. *)
  val of_int : int -> t

  (** [pow b e] is [b^e] for [e >= 0] (used for isolated variables). *)
  val pow : t -> int -> t
end

module Int : S with type t = int = struct
  type t = int

  let zero = 0
  let one = 1
  let add = ( + )
  let mul = ( * )
  let is_zero n = n = 0
  let of_int n = n

  let pow b e =
    let rec go acc b e =
      if e = 0 then acc
      else if e land 1 = 1 then go (acc * b) (b * b) (e asr 1)
      else go acc (b * b) (e asr 1)
    in
    if e < 0 then invalid_arg "Semiring.Int.pow" else go 1 b e
end

module Big : S with type t = Bigint.t = struct
  type t = Bigint.t

  let zero = Bigint.zero
  let one = Bigint.one
  let add = Bigint.add
  let mul = Bigint.mul
  let is_zero = Bigint.is_zero
  let of_int = Bigint.of_int
  let pow = Bigint.pow
end
