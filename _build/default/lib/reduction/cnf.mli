(** CNF formulas, DIMACS parsing, and brute-force model counting — the
    source problem of the Section 4 lower bounds. *)

(** DIMACS convention: [v] for the positive literal of variable [v ≥ 1],
    [-v] for its negation. *)
type literal = int

type clause = literal list

type t

(** [make num_vars clauses] validates literal ranges; clauses are sorted
    and deduplicated internally. *)
val make : int -> clause list -> t

val num_vars : t -> int
val clauses : t -> clause list
val num_clauses : t -> int

(** [satisfies f assignment] with [assignment.(v - 1)] the value of [v]. *)
val satisfies : t -> bool array -> bool

(** [count_sat f] enumerates all [2^n] assignments.
    @raise Invalid_argument beyond 25 variables. *)
val count_sat : t -> int

val is_satisfiable : t -> bool

(** [parse_dimacs text] parses a DIMACS CNF document. *)
val parse_dimacs : string -> t

val to_dimacs : t -> string

(** [random_3cnf ~seed n m] draws [m] clauses over three distinct variables
    with random polarities. *)
val random_3cnf : seed:int -> int -> int -> t
