(** The end-to-end META-hardness pipeline of Lemma 51:
    3-CNF → power complex (χ̂ = #sat) → UCQ (Lemma 48), such that META
    answers "linear" iff the formula is unsatisfiable. *)

type result =
  | Resolved of bool
      (** satisfiability resolved during preprocessing (degenerate
          inputs) *)
  | Query of { psi : Ucq.t; ktk : Ktk.t; complex : Power_complex.t }

(** [ucq_of_cnf ?t f] runs the reduction ([t = 3] matches Lemma 51;
    Lemma 53 raises it). *)
val ucq_of_cnf : ?t:int -> Cnf.t -> result

(** [expected_coefficient f] is [-#sat(F)], the Lemma 48 prediction for
    [c_(Ψ_F)(∧Ψ_F)] (small formulas). *)
val expected_coefficient : Cnf.t -> int

(** [meta_fast f] decides META for [Ψ_F] through the structure of the
    construction ([2^n] instead of [2^(3n+m)]): linear-time countable iff
    [#sat(F) = 0]. *)
val meta_fast : Cnf.t -> bool
