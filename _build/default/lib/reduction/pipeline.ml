(** The end-to-end META-hardness pipeline of Lemma 51:
    3-CNF [F] → power complex [Δ_F] (with [χ̂(Δ_F) = #sat(F)], DESIGN.md §3)
    → UCQ [Ψ_F] (Lemma 48 with parameter [t]).

    The resulting union of self-join-free, acyclic, binary, quantifier-free
    conjunctive queries satisfies: counting answers to [Ψ_F] is possible in
    linear time iff [c_{Ψ_F}(K_t^k) = -χ̂(Δ_F) = -#sat(F)] vanishes, i.e.
    iff [F] is unsatisfiable.  Hence any polynomial-time decision procedure
    for META decides SAT. *)

type result =
  | Resolved of bool
      (** satisfiability resolved during preprocessing (degenerate inputs:
          an empty clause, or a formula without variables) *)
  | Query of { psi : Ucq.t; ktk : Ktk.t; complex : Power_complex.t }

(** [ucq_of_cnf ?t f] runs the reduction with clique parameter [t]
    (default 3, as in the Triangle-Conjecture-based Lemma 51; Lemma 53
    raises [t] to rule out [O(n^d)] algorithms). *)
let ucq_of_cnf ?(t = 3) (f : Cnf.t) : result =
  if List.exists (fun c -> c = []) (Cnf.clauses f) then Resolved false
  else if Cnf.num_vars f = 0 then Resolved true (* no clauses, no vars *)
  else begin
    let pc = Sat_complex.power_complex_of_cnf f in
    let psi, ktk = Lemma48.ucq_of_power_complex t pc in
    Query { psi; ktk; complex = pc }
  end

(** [expected_coefficient f] is the value [c_{Ψ_F}(∧(Ψ_F))] predicted by
    Lemma 48 item 2 for small formulas: [-χ̂(Δ_F) = -#sat(F)]. *)
let expected_coefficient (f : Cnf.t) : int = -Cnf.count_sat f

(** [meta_fast f] decides META for the pipeline query [Ψ_F] without
    computing the CQ expansion: by Lemma 48 every expansion term other than
    the combined query is acyclic, so Ψ_F is linear-time countable iff
    [c_{Ψ_F}(K_t^k) = -χ̂(Δ_F)] vanishes — which our parsimonious reduction
    makes equal to [-#sat(F)].  The generic META algorithm takes
    [2^(3n+m)] steps on these inputs; this specialised route takes [2^n]
    (it is still exponential, as Theorem 5 says it must be). *)
let meta_fast (f : Cnf.t) : bool =
  if List.exists (fun c -> c = []) (Cnf.clauses f) then true
  else if Cnf.num_vars f = 0 then false
  else Cnf.count_sat f = 0
