(** CNF formulas, DIMACS parsing, and brute-force model counting.

    3-SAT is the source problem of every lower bound in Section 4 (via the
    reduction to the reduced Euler characteristic); the brute-force counter
    here is the ground truth the reduction pipeline is tested against. *)

(** A literal is a non-zero integer: [v] for the positive literal of
    variable [v ≥ 1], [-v] for its negation (DIMACS convention). *)
type literal = int

type clause = literal list

type t = { num_vars : int; clauses : clause list }

(** [make num_vars clauses] validates variable indices. *)
let make (num_vars : int) (clauses : clause list) : t =
  if num_vars < 0 then invalid_arg "Cnf.make";
  List.iter
    (fun c ->
      List.iter
        (fun l ->
          if l = 0 || abs l > num_vars then
            invalid_arg "Cnf.make: literal out of range")
        c)
    clauses;
  { num_vars; clauses = List.map (List.sort_uniq compare) clauses }

let num_vars (f : t) : int = f.num_vars
let clauses (f : t) : clause list = f.clauses
let num_clauses (f : t) : int = List.length f.clauses

(** [satisfies f assignment] evaluates [f] under [assignment], where
    [assignment.(v - 1)] is the value of variable [v]. *)
let satisfies (f : t) (assignment : bool array) : bool =
  List.for_all
    (List.exists (fun l ->
         if l > 0 then assignment.(l - 1) else not assignment.(-l - 1)))
    f.clauses

(** [count_sat f] counts satisfying assignments by enumeration ([2^n]);
    the reference oracle for the reduction pipeline. *)
let count_sat (f : t) : int =
  if f.num_vars > 25 then invalid_arg "Cnf.count_sat: too many variables";
  let n = f.num_vars in
  let count = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let assignment = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
    if satisfies f assignment then incr count
  done;
  !count

let is_satisfiable (f : t) : bool =
  if f.num_vars <= 25 then count_sat f > 0
  else invalid_arg "Cnf.is_satisfiable: too many variables"

(** [parse_dimacs text] parses a DIMACS CNF document: comment lines start
    with [c], the problem line is [p cnf <vars> <clauses>], and each clause
    is a 0-terminated sequence of literals (possibly spanning lines). *)
let parse_dimacs (text : string) : t =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref (-1) in
  let tokens = Buffer.create 256 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; v; _ ] -> num_vars := int_of_string v
        | _ -> invalid_arg "Cnf.parse_dimacs: malformed problem line"
      end
      else begin
        Buffer.add_string tokens line;
        Buffer.add_char tokens ' '
      end)
    lines;
  if !num_vars < 0 then invalid_arg "Cnf.parse_dimacs: missing problem line";
  let words =
    String.split_on_char ' ' (Buffer.contents tokens)
    |> List.filter (( <> ) "")
    |> List.map int_of_string
  in
  let clauses = ref [] in
  let current = ref [] in
  List.iter
    (fun l ->
      if l = 0 then begin
        clauses := List.rev !current :: !clauses;
        current := []
      end
      else current := l :: !current)
    words;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  make !num_vars (List.rev !clauses)

(** [to_dimacs f] renders a DIMACS document. *)
let to_dimacs (f : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" f.num_vars (List.length f.clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    f.clauses;
  Buffer.contents buf

(** [random_3cnf ~seed n m] draws [m] clauses of three distinct variables
    with random polarities — the standard random 3-SAT model, used for
    property tests of the reduction. *)
let random_3cnf ~(seed : int) (n : int) (m : int) : t =
  if n < 3 then invalid_arg "Cnf.random_3cnf: need at least 3 variables";
  let st = Random.State.make [| seed |] in
  let clause () =
    let rec distinct3 () =
      let a = 1 + Random.State.int st n in
      let b = 1 + Random.State.int st n in
      let c = 1 + Random.State.int st n in
      if a <> b && b <> c && a <> c then (a, b, c) else distinct3 ()
    in
    let a, b, c = distinct3 () in
    List.map
      (fun v -> if Random.State.bool st then v else -v)
      [ a; b; c ]
  in
  make n (List.init m (fun _ -> clause ()))
