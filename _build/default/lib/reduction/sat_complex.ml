(** From CNF formulas to power complexes with
    [χ̂(Δ_F) = #sat(F)] — our substitute for the Roune–Sáenz-de-Cabezón
    reduction [57] that the paper invokes as a black box (see DESIGN.md §3).

    Construction.  For a CNF [F] over variables [1..n] with clause list
    [c_1, ..., c_m], introduce three universe elements per variable [i]:
    [a_i] (i true), [b_i] (i false) and a slack element [s_i].  The ground
    set [Ω] of the power complex consists of the following subsets of the
    universe [V] (the "forbidden patterns" of the associated hypergraph):

    - the three pairs [{a_i, b_i}], [{a_i, s_i}], [{b_i, s_i}] per variable
      (at most one element per gadget), and
    - per clause [c], its falsifying pattern [{g(¬l) : l ∈ c}], where
      [g(i) = a_i] and [g(-i) = b_i].

    Correctness.  A power complex satisfies (Möbius inversion)
    [χ̂(Δ_{Ω,V}) = (-1)^|V| · Σ_{W ⊆ V independent} (-1)^|W|], where [W] is
    independent when it contains no member of [Ω].  Pair the independent
    sets in which some variable [i] is unset (neither [a_i] nor [b_i]
    present) with their toggle [W Δ {s_i}] (smallest such [i]): a
    sign-reversing involution, because no clause pattern mentions slack
    elements and the pair patterns only exclude [s_i] when the gadget is
    set.  What survives are the independent sets choosing exactly one of
    [a_i, b_i] for every variable and no slack — precisely the assignments
    falsifying no clause — each of size [n] and sign [(-1)^n].  Hence
    [χ̂ = (-1)^{3n} · (-1)^n · #sat(F) = #sat(F)], a parsimonious reduction.

    Sizes: [|V| = 3n], [|Ω| ≤ 3n + m] — matching the [O(n + m)] ground-set
    bound the paper takes from [57]. *)

(** Universe encoding: [a_i = 3(i-1) + 1], [b_i = 3(i-1) + 2],
    [s_i = 3(i-1) + 3] for variable [i ∈ [1..n]]. *)
let elem_true (i : int) : int = (3 * (i - 1)) + 1

let elem_false (i : int) : int = (3 * (i - 1)) + 2
let elem_slack (i : int) : int = (3 * (i - 1)) + 3

(** [of_literal l] is the universe element asserting the literal [l]. *)
let of_literal (l : int) : int =
  if l > 0 then elem_true l else elem_false (-l)

(** [falsifying_pattern clause] is the forbidden set of a clause: the
    elements asserting the negation of each of its literals.  A
    tautological clause (containing both [v] and [-v]) yields a pattern
    containing a gadget pair, hence never occurs inside an independent set
    — the clause is correctly treated as always satisfied. *)
let falsifying_pattern (clause : Cnf.clause) : int list =
  List.sort_uniq compare (List.map (fun l -> of_literal (-l)) clause)

(** [power_complex_of_cnf f] builds the power complex [Δ_F].
    @raise Invalid_argument if [f] has no variables or an empty clause
    (handle both upfront: no variables means [#sat ∈ {0, 1}] by direct
    evaluation; an empty clause means unsatisfiable). *)
let power_complex_of_cnf (f : Cnf.t) : Power_complex.t =
  let n = Cnf.num_vars f in
  if n = 0 then
    invalid_arg "Sat_complex.power_complex_of_cnf: formula without variables";
  if List.exists (fun c -> c = []) (Cnf.clauses f) then
    invalid_arg "Sat_complex.power_complex_of_cnf: empty clause";
  let universe = List.init (3 * n) (fun i -> i + 1) in
  let gadget_pairs =
    List.concat
      (List.init n (fun i0 ->
           let i = i0 + 1 in
           [
             [ elem_true i; elem_false i ];
             [ elem_true i; elem_slack i ];
             [ elem_false i; elem_slack i ];
           ]))
  in
  let clause_patterns = List.map falsifying_pattern (Cnf.clauses f) in
  Power_complex.make universe (gadget_pairs @ clause_patterns)

(** [euler_equals_count_sat f] checks the headline identity
    [χ̂(Δ_F) = #sat(F)] by brute force on both sides — only for tiny
    formulas; used by the test suite. *)
let euler_equals_count_sat (f : Cnf.t) : bool =
  let pc = power_complex_of_cnf f in
  Power_complex.euler_independent_sets pc = Cnf.count_sat f
