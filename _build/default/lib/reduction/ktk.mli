(** The structures [K_t^k] of Section 4.2.2: stretched cliques with one
    singleton binary relation per edge (Observation 44), their edge slices
    [E_i], and the Lemma 45 database construction. *)

(** [rel_name i j] is the symbol of the [j]-th stretch edge of clique edge
    [i] (both 1-based). *)
val rel_name : int -> int -> string

type t = {
  t_ : int;  (** clique size *)
  k : int;  (** stretch length *)
  structure : Structure.t;  (** the full [K_t^k] *)
  signature : Signature.t;
  stretches : (int * int) list array;
      (** per clique edge, its stretch edges in path order *)
}

(** [make t k] builds [K_t^k].
    @raise Invalid_argument for non-positive parameters. *)
val make : int -> int -> t

val num_clique_edges : t -> int
val universe : t -> int list

(** [slice x i] is the substructure [E_i] ([i ∈ [1..k]]): for each clique
    edge, only the [i]-th stretch edge — a feedback edge set. *)
val slice : t -> int -> Structure.t

(** [slices x is] is [∪_(i ∈ is) E_i] (the [B_j] of Lemma 48). *)
val slices : t -> int list -> Structure.t

(** [database_of_graph x g] is the Lemma 45 reduction: every host edge
    becomes, per clique edge, a coloured [k]-edge path (both directions);
    colour-preserving homomorphisms from [K_t^k] correspond to [t]-cliques
    of [g]. *)
val database_of_graph : t -> Graph.t -> Structure.t
