(** The algorithms [Â_t] (Lemma 48) and [A_t] (Lemma 50): from complexes to
    UCQs whose CQ expansion hides the reduced Euler characteristic. *)

(** [ucq_of_power_complex t pc] builds the UCQ of Lemma 48 directly from a
    power complex with [∪Ω = U]; returns it with the underlying [K_t^k].
    Guarantees (Lemma 48): [∧(Ψ) ≅ K_t^k]; [c_Ψ(∧Ψ) = -χ̂]; all other
    support terms acyclic; [ℓ ≤ |Ω|]; disjuncts acyclic, self-join-free,
    binary.
    @raise Invalid_argument when [∪Ω ≠ U]. *)
val ucq_of_power_complex : int -> Power_complex.t -> Ucq.t * Ktk.t

(** [ucq_of_complex t c] is [Â_t]: Lemma 47 conversion followed by
    {!ucq_of_power_complex}.
    @raise Invalid_argument unless [c] is non-trivial, irreducible, and its
    ground set is not a facet. *)
val ucq_of_complex : int -> Scomplex.t -> Ucq.t * Ktk.t

type lemma50_result =
  | Euler of int  (** χ̂ resolved during preprocessing *)
  | Ucq_out of Ucq.t * Ktk.t

(** [algorithm_a t c] is [A_t] (Lemma 50): domination-reduce; trivial or
    complete complexes resolve to [Euler 0]; otherwise run [Â_t]. *)
val algorithm_a : int -> Scomplex.t -> lemma50_result
