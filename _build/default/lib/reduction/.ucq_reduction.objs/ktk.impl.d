lib/reduction/ktk.ml: Array Graph List Printf Signature Structure
