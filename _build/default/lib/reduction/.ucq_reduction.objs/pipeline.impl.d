lib/reduction/pipeline.ml: Cnf Ktk Lemma48 List Power_complex Sat_complex Ucq
