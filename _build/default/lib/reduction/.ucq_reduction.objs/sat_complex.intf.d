lib/reduction/sat_complex.mli: Cnf Power_complex
