lib/reduction/ktk.mli: Graph Signature Structure
