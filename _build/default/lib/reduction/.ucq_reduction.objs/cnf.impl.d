lib/reduction/cnf.ml: Array Buffer List Printf Random String
