lib/reduction/pipeline.mli: Cnf Ktk Power_complex Ucq
