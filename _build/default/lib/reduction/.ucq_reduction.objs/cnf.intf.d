lib/reduction/cnf.mli:
