lib/reduction/lemma48.ml: Hashtbl Ktk List Listx Power_complex Scomplex Ucq
