lib/reduction/sat_complex.ml: Cnf List Power_complex
