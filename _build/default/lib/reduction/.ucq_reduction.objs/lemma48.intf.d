lib/reduction/lemma48.mli: Ktk Power_complex Scomplex Ucq
