(** The algorithms [Â_t] (Lemma 48) and [A_t] (Lemma 50): from simplicial
    complexes to unions of conjunctive queries whose CQ expansion hides the
    reduced Euler characteristic.

    Given a power complex [Δ_{Ω,U}] with [∪Ω = U] (equivalently: the ground
    set of the source complex is not a facet), set [k = |U|] and build, for
    each member [A_j ∈ Ω], the quantifier-free CQ
    [B_j = ∪_{i ∈ A_j} E_i] over the slices of [K_t^k].  The resulting UCQ
    [Ψ = (B_1, ..., B_ℓ)] satisfies (Lemma 48):

    1. [∧(Ψ) ≅ K_t^k];
    2. [c_Ψ(∧(Ψ)) = -χ̂(Δ)];
    3. every other structure in the support of [c_Ψ] is acyclic;
    4. [ℓ ≤ |Ω|];
    5. every [B_j] is acyclic, self-join-free and binary. *)

(** [ucq_of_power_complex t pc] is the core of algorithm [Â_t], operating
    directly on a power complex (this is also the entry point of the SAT
    pipeline, which produces power complexes natively).
    Requires [∪Ω = U].  Returns the UCQ together with the [K_t^k]
    structure. *)
let ucq_of_power_complex (t_ : int) (pc : Power_complex.t) : Ucq.t * Ktk.t =
  let u = pc.Power_complex.universe in
  let members = pc.Power_complex.ground in
  let union_all =
    List.fold_left Listx.union_sorted [] members
  in
  if union_all <> u then
    invalid_arg "Lemma48.ucq_of_power_complex: ground set does not cover U";
  let k = List.length u in
  (* normalise U to [1..k] *)
  let index_of = Hashtbl.create k in
  List.iteri (fun i x -> Hashtbl.add index_of x (i + 1)) u;
  let ktk = Ktk.make t_ k in
  let structures =
    List.map
      (fun a -> Ktk.slices ktk (List.map (Hashtbl.find index_of) a))
      members
  in
  (Ucq.of_structures structures (Ktk.universe ktk), ktk)

(** [ucq_of_complex t c] is algorithm [Â_t] of Lemma 48: requires a
    non-trivial irreducible complex whose ground set is not a facet;
    converts to a power complex via Lemma 47 and applies
    {!ucq_of_power_complex}. *)
let ucq_of_complex (t_ : int) (c : Scomplex.t) : Ucq.t * Ktk.t =
  let pc, _ = Power_complex.of_complex c in
  ucq_of_power_complex t_ pc

(** Result of algorithm [A_t] (Lemma 50): either the reduced Euler
    characteristic was resolved during preprocessing, or a UCQ with the
    Lemma 48 guarantees. *)
type lemma50_result =
  | Euler of int
  | Ucq_out of Ucq.t * Ktk.t

(** [algorithm_a t c] is algorithm [A_t] of Lemma 50: reduce by domination
    (Lemma 42 preserves χ̂); output [χ̂ = 0] for the trivial complex or when
    the ground set is a facet; otherwise run [Â_t] on the now-irreducible
    complex. *)
let algorithm_a (t_ : int) (c : Scomplex.t) : lemma50_result =
  let c = Scomplex.reduce c in
  if Scomplex.is_trivial c then Euler 0
  else if List.exists (fun f -> f = Scomplex.ground c) (Scomplex.facets c) then
    Euler 0
  else begin
    let psi, ktk = ucq_of_complex t_ c in
    Ucq_out (psi, ktk)
  end
