(** The CNF → power-complex reduction with [χ̂(Δ_F) = #sat(F)] — this
    library's substitute for the Roune–Sáenz-de-Cabezón reduction [57] the
    paper cites (construction and correctness proof in DESIGN.md §3 and the
    module implementation). *)

(** Universe encoding of the per-variable gadget [{a_i, b_i, s_i}]. *)
val elem_true : int -> int

val elem_false : int -> int
val elem_slack : int -> int

(** [of_literal l] is the element asserting [l]. *)
val of_literal : int -> int

(** [falsifying_pattern c] is the forbidden set of a clause: the elements
    asserting the negation of each literal. *)
val falsifying_pattern : Cnf.clause -> int list

(** [power_complex_of_cnf f] builds [Δ_F] with [|U| = 3n], [|Ω| ≤ 3n + m]
    and [χ̂(Δ_F) = #sat(F)] (parsimonious).
    @raise Invalid_argument for variable-free formulas or empty clauses
    (resolve those upfront). *)
val power_complex_of_cnf : Cnf.t -> Power_complex.t

(** [euler_equals_count_sat f] verifies the headline identity by brute
    force (tiny formulas; used by the test suite). *)
val euler_equals_count_sat : Cnf.t -> bool
