(** The structures [K_t^k] of Section 4.2.2 and their edge slices.

    [K_t^k] is the [t]-clique with every edge stretched into a path of [k]
    edges; each edge [e] of the stretched graph carries its own binary
    singleton relation [R_e] (Observation 44: self-join-free, arity 2).
    The substructure [E_i] keeps, for every clique edge, only the [i]-th
    edge of its stretch — a feedback edge set, which is what makes every
    proper sub-union in Lemma 48 acyclic. *)

(** [rel_name i j] is the relation symbol of the [j]-th stretch edge
    ([j ∈ [1..k]]) of the [i]-th clique edge ([i ∈ [1..m]]). *)
let rel_name (i : int) (j : int) : string = Printf.sprintf "R_e%d_%d" i j

type t = {
  t_ : int; (* clique size *)
  k : int; (* stretch length *)
  structure : Structure.t; (* the full K_t^k *)
  signature : Signature.t;
  (* stretches.(i) is the list of the k stretched edges of clique edge i+1,
     in path order, as vertex pairs *)
  stretches : (int * int) list array;
}

(** [make t k] builds [K_t^k]. *)
let make (t_ : int) (k : int) : t =
  let g, stretches = Graph.stretched_clique t_ k in
  let m = Array.length stretches in
  let signature =
    Signature.make
      (List.concat
         (List.init m (fun i0 ->
              List.init k (fun j0 -> Signature.symbol (rel_name (i0 + 1) (j0 + 1)) 2))))
  in
  let universe = Graph.vertices g in
  let rels =
    List.concat
      (List.init m (fun i0 ->
           List.mapi
             (fun j0 (u, v) -> (rel_name (i0 + 1) (j0 + 1), [ [ u; v ] ]))
             stretches.(i0)))
  in
  { t_; k; structure = Structure.make signature universe rels; signature; stretches }

let num_clique_edges (x : t) : int = Array.length x.stretches
let universe (x : t) : int list = Structure.universe x.structure

(** [slice x i] is the substructure [E_i] ([i ∈ [1..k]]): full universe,
    and for each clique edge only the [i]-th stretch edge's relation. *)
let slice (x : t) (i : int) : Structure.t =
  if i < 1 || i > x.k then invalid_arg "Ktk.slice";
  let m = num_clique_edges x in
  let rels =
    List.init m (fun e0 ->
        let u, v = List.nth x.stretches.(e0) (i - 1) in
        (rel_name (e0 + 1) i, [ [ u; v ] ]))
  in
  Structure.make x.signature (universe x) rels

(** [slices x is] is [∪_{i ∈ is} E_i] — the structure [B_j] of Lemma 48 for
    a ground-set member [A_j = is]. *)
let slices (x : t) (is : int list) : Structure.t =
  match is with
  | [] ->
      (* the empty slice set: the universe with all relations empty *)
      Structure.make x.signature (universe x) []
  | i :: rest -> List.fold_left (fun acc j -> Structure.union acc (slice x j)) (slice x i) rest

(** [database_of_graph x g] is the Lemma 45 reduction applied to a host
    graph [g]: each (undirected) edge of [g] is replaced, for every clique
    edge [i] of [K_t], by a fresh path of [k] edges coloured
    [R_{e_i^1}, ..., R_{e_i^k}] — in both directions, so that undirected
    host edges behave symmetrically.  The resulting database has
    colour-preserving homomorphisms from [K_t^k] exactly when [g] contains
    a [t]-clique, which is what makes counting answers to the UCQs built by
    Lemma 48 as hard as clique detection. *)
let database_of_graph (x : t) (g : Graph.t) : Structure.t =
  let m = num_clique_edges x in
  let next = ref (Graph.num_vertices g) in
  let rels = ref [] in
  let add_path (u : int) (v : int) (i : int) =
    (* internal vertices *)
    let inner = List.init (x.k - 1) (fun _ -> let id = !next in incr next; id) in
    let chain = (u :: inner) @ [ v ] in
    let rec go j = function
      | a :: (b :: _ as rest) ->
          rels := (rel_name i j, [ a; b ]) :: !rels;
          go (j + 1) rest
      | _ -> ()
    in
    go 1 chain
  in
  List.iter
    (fun (u, v) ->
      for i = 1 to m do
        add_path u v i;
        add_path v u i
      done)
    (Graph.edges g);
  let universe = List.init !next (fun i -> i) in
  let grouped =
    List.map
      (fun (s : Signature.symbol) ->
        ( s.name,
          List.filter_map
            (fun (name, tup) -> if name = s.name then Some tup else None)
            !rels ))
      x.signature
  in
  Structure.make x.signature universe grouped
