(** Dynamic counting for exhaustively q-hierarchical UCQs
    ([12, Theorem 4.5], Section 1.2): one {!Dynamic} instance per combined
    query, summed by inclusion–exclusion.  Updates cost [2^ℓ - 1] constant
    instance updates — constant data complexity. *)

type t

exception Not_exhaustively_q_hierarchical

(** [create psi d] preprocesses all combined queries.
    @raise Not_exhaustively_q_hierarchical when some [∧(Ψ|J)] fails the
    criterion. *)
val create : Ucq.t -> Structure.t -> t

val insert : t -> string -> int list -> unit
val delete : t -> string -> int list -> unit

(** [count st] is the current [ans(Ψ → D)]. *)
val count : t -> int
