lib/dynamic/dynamic_ucq.ml: Combinat Dynamic List Structure Ucq
