lib/dynamic/dynamic.ml: Array Combinat Cq Hashtbl List Listx Option Signature Structure
