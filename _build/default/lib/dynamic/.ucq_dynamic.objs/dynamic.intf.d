lib/dynamic/dynamic.mli: Cq Structure
