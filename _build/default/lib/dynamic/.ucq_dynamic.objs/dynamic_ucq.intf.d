lib/dynamic/dynamic_ucq.mli: Structure Ucq
