(** The paper's worked examples, constructed by the library itself.

    - Figure 1: the complexes Δ₁ (χ̂ = -2) and Δ₂ (χ̂ = 0);
    - Figure 2: the structure 𝒦₃⁴ and its slice substructures [S_A];
    - the UCQs Ψ₁ = Â₃(Δ₁) and Ψ₂ = Â₃(Δ₂) of Section 4.2.2, which share
      the combined query [∧(Ψ₁) = ∧(Ψ₂) = 𝒦₃⁴] yet differ in linear-time
      countability (Corollary 49): [c_{Ψ₁}(𝒦₃⁴) = -χ̂(Δ₁) = 2 ≠ 0], while
      [c_{Ψ₂}(𝒦₃⁴) = 0]. *)

(** Figure 1, left: facets {2,3,4}, {1,2}, {1,3}, {1,4}. *)
let delta1 : Scomplex.t = Scomplex.figure1_delta1

(** Figure 1, right: facets {1,2}, {2,3}, {1,3}, {4}. *)
let delta2 : Scomplex.t = Scomplex.figure1_delta2

(** [psi1 ()] is Ψ₁ = Â₃(Δ₁) together with the underlying 𝒦₃⁴. *)
let psi1 () : Ucq.t * Ktk.t = Lemma48.ucq_of_complex 3 delta1

(** [psi2 ()] is Ψ₂ = Â₃(Δ₂) together with the underlying 𝒦₃⁴. *)
let psi2 () : Ucq.t * Ktk.t = Lemma48.ucq_of_complex 3 delta2

(** [ktk34 ()] is the structure 𝒦₃⁴ of Figure 2. *)
let ktk34 () : Ktk.t = Ktk.make 3 4

(** [s_a is] is the substructure [S_A] of Figure 2 for [A = is ⊆ [4]]:
    the union of the edge slices [E_i], [i ∈ A]. *)
let s_a (is : int list) : Structure.t = Ktk.slices (ktk34 ()) is

(** The q-hierarchicality example of Section 1.2:
    [φ(\{a,b,c,d\}) = E(a,b) ∧ E(b,c) ∧ E(c,d)] — acyclic but not
    q-hierarchical. *)
let q_hierarchical_example () : Cq.t =
  let sg = Signature.make [ Signature.symbol "E" 2 ] in
  Cq.of_structure
    (Structure.make sg [ 0; 1; 2; 3 ]
       [ ("E", [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ]) ])
