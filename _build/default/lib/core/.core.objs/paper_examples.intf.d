lib/core/paper_examples.mli: Cq Ktk Scomplex Structure Ucq
