lib/core/paper_examples.ml: Cq Ktk Lemma48 Scomplex Signature Structure Ucq
