(** The paper's worked examples, constructed by the library itself:
    Figure 1 (Δ₁, Δ₂), Figure 2 (𝒦₃⁴ and its slices), the UCQs Ψ₁/Ψ₂ of
    Section 4.2.2 (Corollary 49), and the q-hierarchicality example of
    Section 1.2. *)

(** Figure 1, left (χ̂ = -2). *)
val delta1 : Scomplex.t

(** Figure 1, right (χ̂ = 0). *)
val delta2 : Scomplex.t

(** [psi1 ()] is Ψ₁ = Â₃(Δ₁) with the underlying 𝒦₃⁴;
    [c_(Ψ₁)(𝒦₃⁴) = 2 ≠ 0], so counting Ψ₁ is not linear-time possible. *)
val psi1 : unit -> Ucq.t * Ktk.t

(** [psi2 ()] is Ψ₂ = Â₃(Δ₂); [c_(Ψ₂)(𝒦₃⁴) = 0], so Ψ₂ is linear-time
    countable although [∧(Ψ₂) = ∧(Ψ₁)]. *)
val psi2 : unit -> Ucq.t * Ktk.t

(** [ktk34 ()] is the structure 𝒦₃⁴ of Figure 2. *)
val ktk34 : unit -> Ktk.t

(** [s_a is] is the substructure [S_A] of Figure 2, [A = is ⊆ [4]]. *)
val s_a : int list -> Structure.t

(** The acyclic, non-q-hierarchical path query of Section 1.2. *)
val q_hierarchical_example : unit -> Cq.t
