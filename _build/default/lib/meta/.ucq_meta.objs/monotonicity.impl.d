lib/meta/monotonicity.ml: Array Bigint Combinat Counting Cq Linalg List Listx Rational Structure Ucq
