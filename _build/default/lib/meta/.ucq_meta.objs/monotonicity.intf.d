lib/meta/monotonicity.mli: Bigint Cq Rational Structure Ucq
