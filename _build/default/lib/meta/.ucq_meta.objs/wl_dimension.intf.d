lib/meta/wl_dimension.mli: Signature Structure Ucq
