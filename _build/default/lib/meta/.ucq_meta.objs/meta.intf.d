lib/meta/meta.mli: Cq Ucq
