lib/meta/wl_dimension.ml: Generators List Meta Printf Signature Structure Ucq Wl
