lib/meta/classify.mli: Cq Ucq
