lib/meta/meta.ml: Cq List Structure Treewidth Ucq
