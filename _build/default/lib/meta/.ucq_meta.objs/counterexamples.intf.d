lib/meta/counterexamples.mli: Ktk Ucq
