lib/meta/counterexamples.ml: Cq Ktk Lemma48 List Printf Scomplex Signature Structure Ucq
