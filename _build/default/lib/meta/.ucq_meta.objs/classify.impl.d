lib/meta/classify.ml: Cq List Ucq
