(** Complexity monotonicity (Theorem 28): recover the individual CQ answer
    counts in the support of a UCQ's expansion from an oracle for the
    union's own counts, via tensor products and an exact linear system. *)

type recovered = {
  term : Cq.t;  (** #minimal representative [(A_j, X_j)] *)
  coefficient : int;  (** [c_Ψ(A_j, X_j)] *)
  count : Bigint.t;  (** the recovered [ans((A_j, X_j) → D)] *)
}

exception No_basis

(** [select_basis terms pool] greedily extends test structures from [pool]
    until the matrix [ans(term_j → B_i)] is non-singular.
    @raise No_basis when the pool is exhausted first. *)
val select_basis :
  Cq.t list -> Structure.t list -> Structure.t list * Rational.t array array

(** [candidate_pool psi] is the default pool: the combined-query structures
    of [Ψ] closed once under tensor products. *)
val candidate_pool : Ucq.t -> Structure.t list

(** [recover_with_oracle ~oracle psi d] runs the Theorem 28 algorithm; the
    oracle computes [B ↦ ans(Ψ → B)] exactly and is queried on the tensor
    products [D ⊗ B_i] only. *)
val recover_with_oracle :
  oracle:(Structure.t -> Bigint.t) -> Ucq.t -> Structure.t -> recovered list

(** [recover psi d] instantiates the oracle with the library's own exact
    counter (treated as a black box). *)
val recover : Ucq.t -> Structure.t -> recovered list
