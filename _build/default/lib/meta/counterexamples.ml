(** The Appendix A counterexample families: each side condition of
    Theorem 3 is necessary.

    - Lemma 59 (drop (I), deletion-closedness): [Ψ_t = Â_t(Δ₂)] for the
      Figure 1 complex Δ₂ with [χ̂(Δ₂) = 0]; the combined query is [K_t^k]
      of unbounded treewidth, yet every support term of the expansion is
      acyclic, so #UCQ of the family is FPT.
    - Lemma 60 (drop (II), bounded quantified variables): the queries
      [φ_k^{i,j}] whose union [Ψ_k] has a combined query containing a
      subdivided k-clique, while every #minimal expansion term stays of
      treewidth ≤ 2.
    - Lemma 61 (drop (III), self-join-freeness): the single CQs [ψ_k] whose
      contract is a k-clique but whose #core is a star. *)

(** [lemma59 t] is [Ψ_t]: algorithm [Â_t] applied to Δ₂ (Figure 1, right).
    Quantifier-free, self-join-free, binary; [∧(Ψ_t) ≅ K_t^4] has treewidth
    [t - 1], but [c_{Ψ_t}(∧(Ψ_t)) = -χ̂(Δ₂) = 0]. *)
let lemma59 (t : int) : Ucq.t * Ktk.t =
  Lemma48.ucq_of_complex t Scomplex.figure1_delta2

(** Variable encoding for [lemma60 k]: free variables [x_1 .. x_k] are
    [1 .. k], [x_⊥] is [0], and the quantified witness of the pair
    [(i, j)] is a fresh variable above [k]. *)
let lemma60 (k : int) : Ucq.t =
  if k < 3 then invalid_arg "Counterexamples.lemma60: k >= 3 required";
  let sg =
    Signature.make
      (List.init k (fun i -> Signature.symbol (Printf.sprintf "E%d" (i + 1)) 2))
  in
  let free = 0 :: List.init k (fun i -> i + 1) in
  let pairs =
    List.concat
      (List.init k (fun i ->
           List.init k (fun j -> (i + 1, j + 1))
           |> List.filter (fun (a, b) -> a < b)))
  in
  let cq_of_pair (i, j) =
    let y = k + 1 in
    let rels =
      (Printf.sprintf "E%d" i, [ [ i; y ] ])
      :: (Printf.sprintf "E%d" j, [ [ j; y ] ])
      :: List.filter_map
           (fun l ->
             if l = i || l = j then None
             else Some (Printf.sprintf "E%d" l, [ [ l; 0 ] ]))
           (List.init k (fun l -> l + 1))
    in
    Cq.make (Structure.make sg (y :: free) rels) free
  in
  Ucq.make (List.map cq_of_pair pairs)

(** [lemma61 k] is the single quantifier-free-ish CQ
    [ψ_k(x_1, ..., x_k, x_⊥) = ∃y. ⋀_i E(x_i, x_⊥) ∧ E(x_i, y)]
    viewed as a one-disjunct UCQ.  Its contract is a (k+1)-clique-ish graph
    of treewidth k, but it is #equivalent to [⋀_i E(x_i, x_⊥)] whose
    contract has treewidth 1. *)
let lemma61 (k : int) : Ucq.t =
  if k < 1 then invalid_arg "Counterexamples.lemma61";
  let sg = Signature.make [ Signature.symbol "E" 2 ] in
  let free = 0 :: List.init k (fun i -> i + 1) in
  let y = k + 1 in
  let rels =
    [
      ( "E",
        List.concat
          (List.init k (fun i0 ->
               let i = i0 + 1 in
               [ [ i; 0 ]; [ i; y ] ])) );
    ]
  in
  Ucq.make [ Cq.make (Structure.make sg (y :: free) rels) free ]
