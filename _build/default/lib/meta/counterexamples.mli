(** The Appendix A counterexample families: each Theorem 3 side condition
    is necessary. *)

(** [lemma59 t] is [Ψ_t = Â_t(Δ₂)] (drop (I), deletion-closure):
    [tw(∧Ψ_t) = t - 1] grows, yet the expansion support stays acyclic. *)
val lemma59 : int -> Ucq.t * Ktk.t

(** [lemma60 k] (drop (II), bounded quantified variables): [tw(∧Ψ_k)]
    grows with [k] while every #minimal support term and its contract stay
    of treewidth ≤ 2.
    @raise Invalid_argument for [k < 3]. *)
val lemma60 : int -> Ucq.t

(** [lemma61 k] (drop (III), self-join-freeness): the single CQ [ψ_k] whose
    contract has treewidth [k] but whose #core's contract is a star.
    @raise Invalid_argument for [k < 1]. *)
val lemma61 : int -> Ucq.t
