(** The Weisfeiler–Leman dimension of quantifier-free UCQs on labelled
    graphs: [dim_WL(Ψ) = hdtw(Ψ)] (Theorems 7/8/58). *)

(** [check_labelled psi]: arity ≤ 2 and no [R(v, v)] atoms. *)
val check_labelled : Ucq.t -> bool

(** [exact psi] is [dim_WL(Ψ)] (Theorem 8 regime: exact per-term
    treewidth).
    @raise Invalid_argument for non-quantifier-free or non-labelled-graph
    inputs. *)
val exact : Ucq.t -> int

(** [approximate psi] is the Theorem 7 regime: polynomial-per-term bounds
    [(lo, hi)] with [lo ≤ dim_WL(Ψ) ≤ hi]. *)
val approximate : Ucq.t -> int * int

(** [at_most k psi] decides [dim_WL(Ψ) ≤ k]. *)
val at_most : int -> Ucq.t -> bool

(** [c6_and_2c3 sg] is the classical 1-WL-equivalent non-isomorphic pair
    (6-cycle vs two triangles) over the binary symbols of [sg]. *)
val c6_and_2c3 : Signature.t -> Structure.t * Structure.t

(** [invariance_check ~k psi] validates Definition 6 empirically on k-WL
    equivalent pairs; returns the number of pairs checked.
    @raise Failure on a counterexample. *)
val invariance_check : k:int -> Ucq.t -> int
