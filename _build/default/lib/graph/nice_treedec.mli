(** Nice tree decompositions: the [Leaf / Introduce / Forget / Join]
    normal form used by textbook treewidth dynamic programs. *)

type t =
  | Leaf
  | Introduce of int * Intset.t * t
      (** introduced vertex, bag after introduction, child *)
  | Forget of int * Intset.t * t
      (** forgotten vertex, bag after forgetting, child *)
  | Join of Intset.t * t * t  (** both children carry the same bag *)

val bag : t -> Intset.t
val width : t -> int
val num_nodes : t -> int

(** [of_treedec dec] converts a valid decomposition into a nice one with an
    empty root bag, without increasing the width. *)
val of_treedec : Treedec.t -> t

(** [shape_ok n] checks the per-node-kind invariants. *)
val shape_ok : t -> bool

(** [to_treedec n] flattens back to bag/tree form. *)
val to_treedec : t -> Treedec.t

(** [validate g n] checks shape invariants, empty root bag, and validity of
    the flattened decomposition for [g]. *)
val validate : Graph.t -> t -> bool
