(** Graph isomorphism by backtracking with invariant pruning.

    Used in tests (e.g. to check Lemma 33: #equivalent queries have
    isomorphic free-variable-induced Gaifman graphs) and as a fallback for
    structure isomorphism on Gaifman graphs.  The refinement invariant is
    the multiset of neighbour degrees, iterated to a fixpoint — effectively
    one-dimensional Weisfeiler–Leman, which is also reused by the [wl]
    library for labelled graphs. *)

module Intset = Intset

(** [refine_colours g init] iterates colour refinement starting from the
    colouring [init] until stable, returning the final colouring (colours
    are arbitrary dense integers). *)
let refine_colours (g : Graph.t) (init : int array) : int array =
  let n = Graph.num_vertices g in
  let colours = Array.copy init in
  let changed = ref true in
  while !changed do
    changed := false;
    let signature v =
      let nbr_colours =
        List.sort compare
          (Intset.fold (fun w acc -> colours.(w) :: acc) (Graph.neighbours g v) [])
      in
      (colours.(v), nbr_colours)
    in
    let sigs = Array.init n signature in
    let tbl = Hashtbl.create 16 in
    let next = ref 0 in
    let fresh s =
      match Hashtbl.find_opt tbl s with
      | Some c -> c
      | None ->
          let c = !next in
          incr next;
          Hashtbl.add tbl s c;
          c
    in
    let new_colours = Array.map fresh sigs in
    if new_colours <> colours then begin
      Array.blit new_colours 0 colours 0 n;
      changed := true
    end
  done;
  colours

(** [find_isomorphism g1 g2] returns a bijection (as an array mapping
    vertices of [g1] to vertices of [g2]) witnessing isomorphism, if one
    exists. *)
let find_isomorphism (g1 : Graph.t) (g2 : Graph.t) : int array option =
  let n = Graph.num_vertices g1 in
  if n <> Graph.num_vertices g2 || Graph.num_edges g1 <> Graph.num_edges g2
  then None
  else begin
    (* Refine the disjoint union of the two graphs so that colour
       identifiers are directly comparable between them. *)
    let union = Graph.make (2 * n) in
    List.iter (fun (u, v) -> Graph.add_edge union u v) (Graph.edges g1);
    List.iter (fun (u, v) -> Graph.add_edge union (n + u) (n + v)) (Graph.edges g2);
    let c = refine_colours union (Array.make (2 * n) 0) in
    let c1 = Array.sub c 0 n in
    let c2 = Array.sub c n n in
    (* Colour class sizes must agree between the two sides. *)
    let hist arr =
      let t = Hashtbl.create 16 in
      Array.iter
        (fun x ->
          Hashtbl.replace t x (1 + Option.value ~default:0 (Hashtbl.find_opt t x)))
        arr;
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])
    in
    if hist c1 <> hist c2 then None
    else begin
      let mapping = Array.make n (-1) in
      let used = Array.make n false in
      let ok = ref None in
      let rec assign v =
        if !ok <> None then ()
        else if v = n then ok := Some (Array.copy mapping)
        else
          for w = 0 to n - 1 do
            if !ok = None && (not used.(w)) && c1.(v) = c2.(w) then begin
              (* check consistency with already-mapped neighbours *)
              let consistent = ref true in
              for u = 0 to v - 1 do
                if !consistent then
                  if Graph.has_edge g1 u v <> Graph.has_edge g2 mapping.(u) w
                  then consistent := false
              done;
              if !consistent then begin
                mapping.(v) <- w;
                used.(w) <- true;
                assign (v + 1);
                used.(w) <- false;
                mapping.(v) <- -1
              end
            end
          done
      in
      assign 0;
      !ok
    end
  end

(** [isomorphic g1 g2] decides graph isomorphism. *)
let isomorphic (g1 : Graph.t) (g2 : Graph.t) : bool =
  Option.is_some (find_isomorphism g1 g2)
