(** Finite simple undirected graphs on vertex set [{0, ..., n-1}].

    Gaifman graphs of relational structures (Section 2.2 of the paper),
    contracts of conjunctive queries (Definition 20) and the inputs to the
    treewidth machinery are all represented with this module.  Edges are
    irreflexive and symmetric. *)

module Intset = Intset

type t = { n : int; adj : Intset.t array }

(** [make n] is the edgeless graph on [n] vertices. *)
let make (n : int) : t =
  if n < 0 then invalid_arg "Graph.make";
  { n; adj = Array.make n Intset.empty }

let num_vertices (g : t) : int = g.n

(** [copy g] is an independent mutable copy. *)
let copy (g : t) : t = { n = g.n; adj = Array.copy g.adj }

(** [add_edge g u v] inserts the undirected edge [{u, v}]; self-loops are
    silently ignored (Gaifman graphs are irreflexive). *)
let add_edge (g : t) (u : int) (v : int) : unit =
  if u < 0 || v < 0 || u >= g.n || v >= g.n then invalid_arg "Graph.add_edge";
  if u <> v then begin
    g.adj.(u) <- Intset.add v g.adj.(u);
    g.adj.(v) <- Intset.add u g.adj.(v)
  end

let remove_edge (g : t) (u : int) (v : int) : unit =
  g.adj.(u) <- Intset.remove v g.adj.(u);
  g.adj.(v) <- Intset.remove u g.adj.(v)

(** [of_edges n edges] builds a graph from an edge list. *)
let of_edges (n : int) (edges : (int * int) list) : t =
  let g = make n in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let has_edge (g : t) (u : int) (v : int) : bool = Intset.mem v g.adj.(u)
let neighbours (g : t) (v : int) : Intset.t = g.adj.(v)
let degree (g : t) (v : int) : int = Intset.cardinal g.adj.(v)

(** [edges g] lists each edge once, as [(u, v)] with [u < v]. *)
let edges (g : t) : (int * int) list =
  let acc = ref [] in
  for u = 0 to g.n - 1 do
    Intset.iter (fun v -> if u < v then acc := (u, v) :: !acc) g.adj.(u)
  done;
  List.rev !acc

let num_edges (g : t) : int = List.length (edges g)

(** [vertices g] is [[0; ...; n-1]]. *)
let vertices (g : t) : int list = List.init g.n (fun i -> i)

(** [induced g vs] is the subgraph induced by the vertex list [vs], together
    with the mapping from new indices to old vertices. *)
let induced (g : t) (vs : int list) : t * int array =
  let vs = List.sort_uniq compare vs in
  let old_of_new = Array.of_list vs in
  let new_of_old = Hashtbl.create (List.length vs) in
  Array.iteri (fun i v -> Hashtbl.add new_of_old v i) old_of_new;
  let h = make (Array.length old_of_new) in
  Array.iteri
    (fun i v ->
      Intset.iter
        (fun w ->
          match Hashtbl.find_opt new_of_old w with
          | Some j when i < j -> add_edge h i j
          | _ -> ())
        g.adj.(v))
    old_of_new;
  (h, old_of_new)

(** [components g] partitions the vertex set into connected components. *)
let components (g : t) : int list list =
  let seen = Array.make g.n false in
  let comps = ref [] in
  for s = 0 to g.n - 1 do
    if not seen.(s) then begin
      let comp = ref [] in
      let stack = ref [ s ] in
      seen.(s) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            comp := v :: !comp;
            Intset.iter
              (fun w ->
                if not seen.(w) then begin
                  seen.(w) <- true;
                  stack := w :: !stack
                end)
              g.adj.(v)
      done;
      comps := List.sort compare !comp :: !comps
    end
  done;
  List.rev !comps

let is_connected (g : t) : bool = g.n <= 1 || List.length (components g) = 1

(** [is_clique g vs] checks that the vertices of [vs] are pairwise
    adjacent. *)
let is_clique (g : t) (vs : int list) : bool =
  let rec go = function
    | [] -> true
    | v :: rest -> List.for_all (fun w -> has_edge g v w) rest && go rest
  in
  go vs

(** [is_acyclic g] decides whether the graph is a forest. *)
let is_acyclic (g : t) : bool =
  (* A forest satisfies |E| = |V| - #components. *)
  num_edges g = g.n - List.length (components g)

(** [union g1 g2] is the graph on [max n1 n2] vertices with the union of the
    edge sets. *)
let union (g1 : t) (g2 : t) : t =
  let g = make (max g1.n g2.n) in
  List.iter (fun (u, v) -> add_edge g u v) (edges g1);
  List.iter (fun (u, v) -> add_edge g u v) (edges g2);
  g

(** [equal g1 g2] is structural equality (same vertex count and edge sets).*)
let equal (g1 : t) (g2 : t) : bool =
  g1.n = g2.n && Array.for_all2 Intset.equal g1.adj g2.adj

(* ------------------------------------------------------------------ *)
(* Standard constructions                                             *)
(* ------------------------------------------------------------------ *)

(** [clique k] is the complete graph [K_k]. *)
let clique (k : int) : t =
  let g = make k in
  for u = 0 to k - 1 do
    for v = u + 1 to k - 1 do
      add_edge g u v
    done
  done;
  g

(** [path k] is the path with [k] vertices. *)
let path (k : int) : t =
  let g = make k in
  for v = 0 to k - 2 do
    add_edge g v (v + 1)
  done;
  g

(** [cycle k] is the cycle with [k >= 3] vertices. *)
let cycle (k : int) : t =
  if k < 3 then invalid_arg "Graph.cycle";
  let g = path k in
  add_edge g (k - 1) 0;
  g

(** [star k] is the star with one centre (vertex 0) and [k] leaves. *)
let star (k : int) : t =
  let g = make (k + 1) in
  for v = 1 to k do
    add_edge g 0 v
  done;
  g

(** [grid w h] is the [w × h] grid graph (treewidth [min w h]). *)
let grid (w : int) (h : int) : t =
  let g = make (w * h) in
  for x = 0 to w - 1 do
    for y = 0 to h - 1 do
      let v = (y * w) + x in
      if x + 1 < w then add_edge g v (v + 1);
      if y + 1 < h then add_edge g v (v + w)
    done
  done;
  g

(** [stretched_clique t k] is the graph [K_t^k] of Section 4.2.2: the
    [t]-clique with every edge subdivided into a path of [k] edges.  Clique
    vertices are [0, ..., t-1]; subdivision vertices follow.  Returns the
    graph together with, for each clique edge index [i] (edges of [K_t] in
    lexicographic order), the list of the [k] edges of its stretch, in path
    order. *)
let stretched_clique (t : int) (k : int) : t * (int * int) list array =
  if t < 1 || k < 1 then invalid_arg "Graph.stretched_clique";
  let clique_edges =
    List.concat
      (List.init t (fun u -> List.init (t - u - 1) (fun d -> (u, u + d + 1))))
  in
  let m = List.length clique_edges in
  let n = t + (m * (k - 1)) in
  let g = make n in
  let stretches = Array.make m [] in
  List.iteri
    (fun i (u, v) ->
      let inner = List.init (k - 1) (fun j -> t + (i * (k - 1)) + j) in
      let chain = (u :: inner) @ [ v ] in
      let rec path_edges = function
        | a :: (b :: _ as rest) ->
            add_edge g a b;
            (a, b) :: path_edges rest
        | _ -> []
      in
      stretches.(i) <- path_edges chain)
    clique_edges;
  (g, stretches)

let pp (fmt : Format.formatter) (g : t) : unit =
  Format.fprintf fmt "graph(n=%d; edges=%s)" g.n
    (String.concat ", "
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) (edges g)))
