(** Graph isomorphism by backtracking with colour-refinement pruning. *)

(** [refine_colours g init] iterates 1-WL-style colour refinement from the
    initial colouring to a fixpoint. *)
val refine_colours : Graph.t -> int array -> int array

(** [find_isomorphism g1 g2] is a witnessing vertex bijection, if any. *)
val find_isomorphism : Graph.t -> Graph.t -> int array option

val isomorphic : Graph.t -> Graph.t -> bool
