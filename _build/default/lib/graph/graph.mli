(** Finite simple undirected graphs on vertex set [{0, ..., n-1}]:
    Gaifman graphs, contracts (Definition 20), and treewidth inputs. *)

type t

(** [make n] is the edgeless graph on [n] vertices.
    @raise Invalid_argument for negative [n]. *)
val make : int -> t

val num_vertices : t -> int
val num_edges : t -> int

(** [copy g] is an independent mutable copy. *)
val copy : t -> t

(** [add_edge g u v] inserts the undirected edge; self-loops are silently
    ignored (Gaifman graphs are irreflexive).
    @raise Invalid_argument for out-of-range vertices. *)
val add_edge : t -> int -> int -> unit

val remove_edge : t -> int -> int -> unit

(** [of_edges n edges] builds a graph from an edge list. *)
val of_edges : int -> (int * int) list -> t

val has_edge : t -> int -> int -> bool
val neighbours : t -> int -> Intset.t
val degree : t -> int -> int

(** [edges g] lists each edge once as [(u, v)] with [u < v]. *)
val edges : t -> (int * int) list

(** [vertices g] is [[0; ...; n-1]]. *)
val vertices : t -> int list

(** [induced g vs] is the induced subgraph on the (deduplicated) vertex
    list, with the dense-index → original-vertex mapping. *)
val induced : t -> int list -> t * int array

(** [components g] partitions the vertices into connected components
    (each sorted). *)
val components : t -> int list list

val is_connected : t -> bool

(** [is_clique g vs] checks pairwise adjacency of [vs]. *)
val is_clique : t -> int list -> bool

(** [is_acyclic g] decides whether [g] is a forest. *)
val is_acyclic : t -> bool

(** [union g1 g2] has [max n1 n2] vertices and the union of edge sets. *)
val union : t -> t -> t

val equal : t -> t -> bool

(** {2 Standard constructions} *)

val clique : int -> t
val path : int -> t

(** @raise Invalid_argument for fewer than 3 vertices. *)
val cycle : int -> t

(** [star k]: centre 0 with [k] leaves. *)
val star : int -> t

(** [grid w h]: the [w × h] grid (treewidth [min w h]). *)
val grid : int -> int -> t

(** [stretched_clique t k] is [K_t^k] (Section 4.2.2): the [t]-clique with
    every edge subdivided into a [k]-edge path.  Returns the graph and, per
    clique-edge index, its stretch edges in path order. *)
val stretched_clique : int -> int -> t * (int * int) list array

val pp : Format.formatter -> t -> unit
