lib/graph/graph.mli: Format Intset
