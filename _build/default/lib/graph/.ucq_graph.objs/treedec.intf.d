lib/graph/treedec.mli: Graph Intset
