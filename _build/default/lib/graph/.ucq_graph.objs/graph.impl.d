lib/graph/graph.ml: Array Format Hashtbl Intset List Printf String
