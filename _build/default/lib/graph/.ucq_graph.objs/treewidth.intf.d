lib/graph/treewidth.mli: Graph Treedec
