lib/graph/nice_treedec.mli: Graph Intset Treedec
