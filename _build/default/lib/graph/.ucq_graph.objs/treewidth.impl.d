lib/graph/treewidth.ml: Array Graph Intset List Treedec
