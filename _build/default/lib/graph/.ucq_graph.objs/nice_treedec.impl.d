lib/graph/nice_treedec.ml: Array Graph Intset List Treedec
