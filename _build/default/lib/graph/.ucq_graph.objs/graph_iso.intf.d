lib/graph/graph_iso.mli: Graph
