lib/graph/graph_iso.ml: Array Graph Hashtbl Intset List Option
