lib/graph/treedec.ml: Array Graph Hashtbl Intset List Queue
