(** Nice tree decompositions.

    A nice decomposition normalises a tree decomposition into four node
    kinds — [Leaf] (empty bag), [Introduce v], [Forget v] (bag differs from
    the single child's by exactly one vertex), and [Join] (two children
    with identical bags) — the standard form in which treewidth dynamic
    programs are written and taught.  {!of_treedec} converts any valid
    decomposition without increasing the width; {!validate} checks the
    shape invariants and that the underlying decomposition is valid. *)

module Intset = Intset

type t =
  | Leaf
  | Introduce of int * Intset.t * t (* introduced vertex, bag after introduction *)
  | Forget of int * Intset.t * t (* forgotten vertex, bag after forgetting *)
  | Join of Intset.t * t * t

let bag (n : t) : Intset.t =
  match n with
  | Leaf -> Intset.empty
  | Introduce (_, b, _) | Forget (_, b, _) -> b
  | Join (b, _, _) -> b

let rec width (n : t) : int =
  match n with
  | Leaf -> -1
  | Introduce (_, b, c) | Forget (_, b, c) ->
      max (Intset.cardinal b - 1) (width c)
  | Join (b, c1, c2) ->
      max (Intset.cardinal b - 1) (max (width c1) (width c2))

let rec num_nodes (n : t) : int =
  match n with
  | Leaf -> 1
  | Introduce (_, _, c) | Forget (_, _, c) -> 1 + num_nodes c
  | Join (_, c1, c2) -> 1 + num_nodes c1 + num_nodes c2

(* ------------------------------------------------------------------ *)
(* Conversion                                                         *)
(* ------------------------------------------------------------------ *)

(** [chain_from_to from_bag to_bag below] builds the introduce/forget chain
    transforming a node whose bag is [from_bag] (the subtree [below]) into
    a node whose bag is [to_bag]: forget the vertices of
    [from_bag \ to_bag], then introduce those of [to_bag \ from_bag]. *)
let chain_from_to (from_bag : Intset.t) (to_bag : Intset.t) (below : t) : t =
  let after_forgets =
    Intset.fold
      (fun v acc ->
        let b = Intset.remove v (bag acc) in
        Forget (v, b, acc))
      (Intset.diff from_bag to_bag)
      below
  in
  Intset.fold
    (fun v acc ->
      let b = Intset.add v (bag acc) in
      Introduce (v, b, acc))
    (Intset.diff to_bag from_bag)
    after_forgets

(** [of_treedec dec] converts a valid tree decomposition into a nice one
    rooted at bag 0 with an empty root bag (all vertices forgotten at the
    top) — the form expected by the counting DP. *)
let of_treedec (dec : Treedec.t) : t =
  let b = Treedec.num_bags dec in
  if b = 0 then Leaf
  else begin
    let adj = Array.make b [] in
    List.iter
      (fun (x, y) ->
        adj.(x) <- y :: adj.(x);
        adj.(y) <- x :: adj.(y))
      dec.Treedec.tree;
    let rec build (i : int) (parent : int) : t =
      let my_bag = dec.Treedec.bags.(i) in
      let children = List.filter (fun j -> j <> parent) adj.(i) in
      let child_subtrees =
        List.map
          (fun j ->
            let sub = build j i in
            (* lift the child's bag to mine with a forget/introduce chain *)
            chain_from_to (bag sub) my_bag sub)
          children
      in
      let base =
        match child_subtrees with
        | [] ->
            (* build the bag from scratch: introduce everything over a leaf *)
            chain_from_to Intset.empty my_bag Leaf
        | [ single ] -> single
        | first :: rest ->
            List.fold_left (fun acc sub -> Join (my_bag, acc, sub)) first rest
      in
      base
    in
    let root = build 0 (-1) in
    (* forget the root bag so the DP ends in a scalar *)
    chain_from_to (bag root) Intset.empty root
  end

(* ------------------------------------------------------------------ *)
(* Validation                                                         *)
(* ------------------------------------------------------------------ *)

(** [shape_ok n] checks the local invariants of each node kind. *)
let rec shape_ok (n : t) : bool =
  match n with
  | Leaf -> true
  | Introduce (v, b, c) ->
      Intset.mem v b
      && Intset.equal (Intset.remove v b) (bag c)
      && shape_ok c
  | Forget (v, b, c) ->
      (not (Intset.mem v b))
      && Intset.mem v (bag c)
      && Intset.equal b (Intset.remove v (bag c))
      && shape_ok c
  | Join (b, c1, c2) ->
      Intset.equal b (bag c1) && Intset.equal b (bag c2) && shape_ok c1
      && shape_ok c2

(** [to_treedec n] flattens a nice decomposition back into bag/tree form so
    the Definition 14 conditions can be checked with {!Treedec.validate}. *)
let to_treedec (n : t) : Treedec.t =
  let bags = ref [] in
  let edges = ref [] in
  let next = ref 0 in
  let rec go (n : t) : int =
    let my_id = !next in
    incr next;
    bags := (my_id, bag n) :: !bags;
    (match n with
    | Leaf -> ()
    | Introduce (_, _, c) | Forget (_, _, c) ->
        let cid = go c in
        edges := (my_id, cid) :: !edges
    | Join (_, c1, c2) ->
        let c1id = go c1 in
        let c2id = go c2 in
        edges := (my_id, c1id) :: (my_id, c2id) :: !edges);
    my_id
  in
  ignore (go n);
  let arr = Array.make !next Intset.empty in
  List.iter (fun (i, b) -> arr.(i) <- b) !bags;
  { Treedec.bags = arr; tree = !edges }

(** [validate g n] checks both the nice-shape invariants and that the
    flattened decomposition is a valid tree decomposition of [g] (with the
    convention that the root bag is empty, vertices of [g] must all be
    introduced somewhere). *)
let validate (g : Graph.t) (n : t) : bool =
  shape_ok n
  && Intset.is_empty (bag n)
  && Treedec.validate g (to_treedec n)
