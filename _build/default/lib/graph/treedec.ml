(** Tree decompositions (Definition 14 of the paper) with validation.

    A decomposition is a tree on bag indices [{0, ..., b-1}] where bag [i]
    is a set of vertices of the decomposed graph.  The three conditions of
    Definition 14 — vertex coverage (C1), edge coverage (C2) and
    connectedness of the occurrence subtrees (C3) — are checked by
    {!validate}, which every treewidth algorithm in this library is tested
    against. *)

module Intset = Intset

type t = { bags : Intset.t array; tree : (int * int) list }

let width (d : t) : int =
  Array.fold_left (fun acc bag -> max acc (Intset.cardinal bag - 1)) (-1) d.bags

let num_bags (d : t) : int = Array.length d.bags

(** [trivial g] is the one-bag decomposition containing every vertex. *)
let trivial (g : Graph.t) : t =
  { bags = [| Intset.of_list (Graph.vertices g) |]; tree = [] }

(** [validate g d] checks conditions (C1)–(C3) of Definition 14, and
    additionally that the bag-connecting edge set really forms a tree
    (connected and acyclic over the bag indices). *)
let validate (g : Graph.t) (d : t) : bool =
  let b = Array.length d.bags in
  if b = 0 then Graph.num_vertices g = 0
  else begin
    (* The tree must be connected and acyclic on bag indices. *)
    let tree_ok =
      let tg = Graph.of_edges b d.tree in
      Graph.is_connected tg && Graph.num_edges tg = b - 1
    in
    (* (C1): every vertex occurs in some bag. *)
    let c1 =
      List.for_all
        (fun v -> Array.exists (fun bag -> Intset.mem v bag) d.bags)
        (Graph.vertices g)
    in
    (* (C2): every edge is contained in some bag. *)
    let c2 =
      List.for_all
        (fun (u, v) ->
          Array.exists (fun bag -> Intset.mem u bag && Intset.mem v bag) d.bags)
        (Graph.edges g)
    in
    (* (C3): for every vertex, the set of bags containing it induces a
       connected subtree. *)
    let c3 =
      List.for_all
        (fun v ->
          let holder = ref [] in
          Array.iteri (fun i bag -> if Intset.mem v bag then holder := i :: !holder) d.bags;
          match !holder with
          | [] -> true (* covered by C1 failing instead *)
          | first :: _ ->
              let holders = Intset.of_list !holder in
              (* BFS restricted to holder bags *)
              let seen = Hashtbl.create 8 in
              Hashtbl.add seen first ();
              let queue = Queue.create () in
              Queue.add first queue;
              let adj = Array.make b [] in
              List.iter
                (fun (x, y) ->
                  adj.(x) <- y :: adj.(x);
                  adj.(y) <- x :: adj.(y))
                d.tree;
              while not (Queue.is_empty queue) do
                let x = Queue.pop queue in
                List.iter
                  (fun y ->
                    if Intset.mem y holders && not (Hashtbl.mem seen y) then begin
                      Hashtbl.add seen y ();
                      Queue.add y queue
                    end)
                  adj.(x)
              done;
              Hashtbl.length seen = Intset.cardinal holders)
        (Graph.vertices g)
    in
    tree_ok && c1 && c2 && c3
  end

(** [of_elimination_order g order] builds a tree decomposition from a vertex
    elimination order by simulating fill-in: eliminating vertex [v] creates
    the bag [{v} ∪ N(v)] in the current (filled) graph and turns [N(v)] into
    a clique.  Bag [i] corresponds to the [i]-th eliminated vertex; bag [i]
    is attached to the bag of the earliest-later-eliminated neighbour.  The
    resulting decomposition is always valid; its width is the width of the
    order. *)
let of_elimination_order (g : Graph.t) (order : int list) : t =
  let n = Graph.num_vertices g in
  if List.length order <> n || List.sort_uniq compare order <> Graph.vertices g
  then invalid_arg "Treedec.of_elimination_order";
  if n = 0 then { bags = [||]; tree = [] }
  else begin
    let h = Graph.copy g in
    let position = Array.make n 0 in
    List.iteri (fun i v -> position.(v) <- i) order;
    let order_arr = Array.of_list order in
    let bags = Array.make n Intset.empty in
    let tree = ref [] in
    let eliminated = Array.make n false in
    Array.iteri
      (fun i v ->
        let nbrs =
          Intset.filter (fun w -> not eliminated.(w)) (Graph.neighbours h v)
        in
        bags.(i) <- Intset.add v nbrs;
        (* fill-in: make the remaining neighbourhood a clique *)
        let nl = Intset.to_list nbrs in
        List.iter
          (fun a -> List.iter (fun b -> if a < b then Graph.add_edge h a b) nl)
          nl;
        (* connect to the bag of the first neighbour eliminated later *)
        (match nl with
        | [] ->
            (* isolated at elimination time: attach to the next bag to keep
               the decomposition a tree *)
            if i + 1 < n then tree := (i, i + 1) :: !tree
        | _ ->
            let next =
              List.fold_left (fun acc w -> min acc position.(w)) max_int nl
            in
            tree := (i, next) :: !tree);
        eliminated.(v) <- true)
      order_arr;
    { bags; tree = !tree }
  end
