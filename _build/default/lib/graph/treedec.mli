(** Tree decompositions (Definition 14) with validation. *)

type t = { bags : Intset.t array; tree : (int * int) list }

(** [width d] is [max |bag| - 1] ([-1] for the empty decomposition). *)
val width : t -> int

val num_bags : t -> int

(** [trivial g] is the one-bag decomposition. *)
val trivial : Graph.t -> t

(** [validate g d] checks conditions (C1)–(C3) of Definition 14 and that
    the bag graph is a tree. *)
val validate : Graph.t -> t -> bool

(** [of_elimination_order g order] builds the (always valid) decomposition
    induced by a vertex elimination order via fill-in simulation; its width
    is the width of the order.
    @raise Invalid_argument if [order] is not a permutation of the
    vertices. *)
val of_elimination_order : Graph.t -> int list -> t
