(** Dynamic counting under updates (Section 1.2): for q-hierarchical
    conjunctive queries the answer count can be maintained with
    constant-time updates after linear preprocessing — and
    q-hierarchicality is exactly the boundary (Berkholz, Keppeler,
    Schweikardt).

    The example maintains "active authors": users with a profile who wrote
    at least one post, under a stream of profile/post updates, and shows
    the criterion rejecting the paper's path query.

    Run with: [dune exec examples/dynamic_counting.exe] *)

let sg =
  Signature.make
    [ Signature.symbol "Profile" 1; Signature.symbol "Wrote" 2 ]

let () =
  (* q(u) = Profile(u) ∧ ∃p. Wrote(u, p) — q-hierarchical *)
  let q =
    Cq.make
      (Structure.make sg [ 0; 1 ] [ ("Profile", [ [ 0 ] ]); ("Wrote", [ [ 0; 1 ] ]) ])
      [ 0 ]
  in
  Format.printf "query: active users (Profile(u) and ∃p Wrote(u, p))@.";
  Format.printf "q-hierarchical: %b@.@." (Cq.is_q_hierarchical q);
  let universe = List.init 100 (fun i -> i) in
  let empty = Structure.make sg universe [] in
  let st = Dynamic.create_exn q empty in
  let show msg = Format.printf "%-42s count = %d@." msg (Dynamic.count st) in
  show "initially";
  Dynamic.insert st "Profile" [ 1 ];
  Dynamic.insert st "Profile" [ 2 ];
  show "profiles for users 1 and 2";
  Dynamic.insert st "Wrote" [ 1; 50 ];
  show "user 1 writes post 50";
  Dynamic.insert st "Wrote" [ 1; 51 ];
  show "user 1 writes post 51 (still one answer)";
  Dynamic.insert st "Wrote" [ 2; 52 ];
  show "user 2 writes post 52";
  Dynamic.insert st "Wrote" [ 3; 53 ];
  show "user 3 writes without a profile";
  Dynamic.delete st "Wrote" [ 1; 50 ];
  show "post 50 deleted (user 1 still active)";
  Dynamic.delete st "Wrote" [ 1; 51 ];
  show "post 51 deleted (user 1 inactive)";

  (* throughput: a burst of updates with periodic consistency checks *)
  let rng = Random.State.make [| 7 |] in
  let t0 = Sys.time () in
  let updates = 200_000 in
  for _ = 1 to updates do
    let u = Random.State.int rng 100 in
    match Random.State.int rng 4 with
    | 0 -> Dynamic.insert st "Profile" [ u ]
    | 1 -> Dynamic.delete st "Profile" [ u ]
    | 2 -> Dynamic.insert st "Wrote" [ u; 100 + Random.State.int rng 100 ]
    | _ -> Dynamic.delete st "Wrote" [ u; 100 + Random.State.int rng 100 ]
  done;
  let dt = Sys.time () -. t0 in
  Format.printf "@.%d random updates in %.3f s (%.2f M updates/s); count = %d@."
    updates dt
    (float_of_int updates /. dt /. 1e6)
    (Dynamic.count st);

  (* the boundary: the paper's acyclic-but-not-q-hierarchical path *)
  let path = Paper_examples.q_hierarchical_example () in
  let graph_db = Structure.make Generators.graph_signature [ 0; 1 ] [] in
  Format.printf
    "@.the path E(a,b) ∧ E(b,c) ∧ E(c,d) is acyclic but not q-hierarchical:@.";
  (try ignore (Dynamic.create_exn path graph_db)
   with Dynamic.Not_q_hierarchical ->
     Format.printf "  Dynamic.create_exn rejects it (Not_q_hierarchical).@.")
