(** Plan-prediction accuracy harness (EXPERIMENTS.md, E16).

    Draws a Qgen corpus of random UCQs and random databases, predicts
    with {!Plan.predicted_outcome} whether [Runner.count] completes
    exactly or degrades under each budget tier, then runs [Runner.count]
    and scores the prediction.  Exits 1 when overall accuracy drops below
    95% — the acceptance bar the CI experiment records.

    Tiers: [unlimited] (no step limit — completion is certain),
    [tiny] (below the expansion cost of nearly every query — exhaustion
    is certain), [medium] (inside the counting phase, where the
    database-dependent estimate does the work) and [generous] (far above
    any corpus query's total cost).

    [PLAN_EVAL_N] overrides the corpus size (default 120 queries). *)

let () =
  let n =
    match Sys.getenv_opt "PLAN_EVAL_N" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 120)
    | None -> 120
  in
  let sg = Generators.graph_signature in
  let tiers =
    [
      ("unlimited", None);
      ("tiny", Some 8);
      ("medium", Some 2_000);
      ("generous", Some 50_000_000);
    ]
  in
  let total = ref 0 and correct = ref 0 in
  let per_tier = Hashtbl.create 8 in
  List.iter (fun (name, _) -> Hashtbl.replace per_tier name (ref 0, ref 0)) tiers;
  for seed = 0 to n - 1 do
    let psi =
      Qgen.random_ucq ~seed ~max_disjuncts:4 ~max_vars:4 ~max_atoms:3 sg
    in
    let db = Generators.random_digraph ~seed:((seed * 13) + 5) 5 12 in
    let db_elems = Structure.universe_size db in
    let db_tuples = Structure.num_tuples db in
    let plan = Plan.predict psi in
    List.iter
      (fun (tier, max_steps) ->
        let predicted =
          Plan.predicted_outcome ?max_steps ~db_elems ~db_tuples plan
        in
        let budget =
          match max_steps with
          | None -> Budget.unlimited ()
          | Some m -> Budget.of_steps m
        in
        let actual =
          match Runner.count ~budget psi db with
          | Ok (Runner.Exact _) -> Plan.Exact
          | Ok (Runner.Approximate _) | Error _ -> Plan.Fallback
        in
        incr total;
        let t_correct, t_total = Hashtbl.find per_tier tier in
        incr t_total;
        if predicted = actual then begin
          incr correct;
          incr t_correct
        end
        else
          Printf.printf
            "mispredict: seed=%d tier=%s predicted=%s actual=%s \
             (expansion=%d steps, est=%.0f)\n"
            seed tier
            (match predicted with Plan.Exact -> "exact" | Plan.Fallback -> "fallback")
            (match actual with Plan.Exact -> "exact" | Plan.Fallback -> "fallback")
            plan.Plan.expansion_steps
            (Plan.cost ~db_elems ~db_tuples plan))
      tiers
  done;
  List.iter
    (fun (tier, _) ->
      let t_correct, t_total = Hashtbl.find per_tier tier in
      Printf.printf "tier %-9s : %d/%d correct\n" tier !t_correct !t_total)
    tiers;
  let accuracy = float_of_int !correct /. float_of_int (max 1 !total) in
  Printf.printf "plan-prediction accuracy: %d/%d = %.1f%% (corpus of %d queries)\n"
    !correct !total (100. *. accuracy) n;
  if accuracy < 0.95 then begin
    Printf.printf "FAIL: below the 95%% acceptance bar\n";
    exit 1
  end
