(** Fault-injection harness for [ucqc serve].

    Spawns the real server binary, then attacks it: malformed and
    oversized frames, truncated writes, mid-request disconnects, a
    slowloris client, bursts past the admission bound, budget-blowing
    queries, interleaved mutation streams — asserting after each
    scenario that the server is still alive, every response frame is
    well-formed JSON, ids are echoed exactly once, and the counters
    stay consistent.  Ends with a SIGTERM drain: the process must exit
    0 within the deadline and leave a validating Chrome trace and
    parseable metrics behind.

    Also the server's correctness oracle: a [count] answered over the
    socket must be bit-identical to the one-shot CLI on the same query
    and database — including after every accepted update, where the
    oracle re-renders the mutated database to a [.facts] file and
    one-shots it.  Tier-A/B queries must keep answering from their
    maintained states ([result.source] never falls back to
    ["computed"]) while the epoch advances, and a [ucqc watch] run
    over an equivalent delta stream must agree with the one-shot CLI
    on its [--final-db] output.

    Run from the repository root: [dune exec tools/fault_inject.exe].
    [--bin PATH] overrides the server binary (default
    [_build/default/bin/ucqc_cli.exe]). *)

let bin = ref "_build/default/bin/ucqc_cli.exe"
let db_file = ref "data/example_db.facts"
let query_file = ref "data/example_query.ucq"

let failures = ref 0

let report fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL: %s\n%!" msg)
    fmt

let section name f =
  Printf.printf "== %s\n%!" name;
  try f ()
  with e ->
    report "%s: harness exception %s" name (Printexc.to_string e)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Server lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

type server = { pid : int; sock : string; log : string }

let mkdtemp () =
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucqc-fault-%d" (Unix.getpid ()))
  in
  let rec try_n i =
    let d = Printf.sprintf "%s-%d" base i in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when i < 100 ->
        try_n (i + 1)
  in
  try_n 0

let tmp = ref ""

let start_server ?(name = "main") ?(extra = []) () : server =
  let sock = Filename.concat !tmp (name ^ ".sock") in
  let log = Filename.concat !tmp (name ^ ".log") in
  let argv =
    Array.of_list
      ([ !bin; "serve"; !db_file; "--socket"; sock ] @ extra)
  in
  let logfd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid = Unix.create_process !bin argv null logfd logfd in
  Unix.close logfd;
  Unix.close null;
  (* wait until the socket accepts *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> Unix.close fd
    | exception _ ->
        Unix.close fd;
        if Unix.gettimeofday () > deadline then
          failwith (Printf.sprintf "server %s did not come up; log: %s" name
                      (try read_file log with _ -> "<unreadable>"))
        else begin
          Unix.sleepf 0.05;
          wait ()
        end
  in
  wait ();
  { pid; sock; log }

(* waitpid with a deadline; returns the exit status or None on timeout *)
let wait_exit (s : server) ~(deadline_s : float) : Unix.process_status option
    =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] s.pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then None
        else begin
          Unix.sleepf 0.05;
          poll ()
        end
    | _, status -> Some status
  in
  poll ()

let stop_server ?(signal = Sys.sigterm) ?(expect = 0) (s : server) : unit =
  (try Unix.kill s.pid signal with _ -> ());
  match wait_exit s ~deadline_s:10. with
  | None ->
      report "server (pid %d) did not exit within 10 s of signal %d" s.pid
        signal;
      (try Unix.kill s.pid Sys.sigkill with _ -> ());
      ignore (try Unix.waitpid [] s.pid with _ -> (0, Unix.WEXITED 0))
  | Some (Unix.WEXITED code) ->
      if code <> expect then begin
        report "server exited %d, expected %d" code expect;
        Printf.printf "server log:\n%s\n"
          (try read_file s.log with _ -> "<unreadable>")
      end
  | Some (Unix.WSIGNALED sg) -> report "server killed by signal %d" sg
  | Some (Unix.WSTOPPED _) -> report "server stopped unexpectedly"

let alive (s : server) : bool =
  match Unix.waitpid [ Unix.WNOHANG ] s.pid with
  | 0, _ -> true
  | _ -> false
  | exception _ -> false

(* ------------------------------------------------------------------ *)
(* Client plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let connect (s : server) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX s.sock);
  fd

let send_all (fd : Unix.file_descr) (data : string) : unit =
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd data !pos (len - !pos)
  done

(* Read newline-terminated frames until [n] arrived, EOF, or deadline. *)
let recv_lines ?(deadline_s = 15.) (fd : Unix.file_descr) (n : int) :
    string list =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let count_lines () =
    String.fold_left
      (fun acc c -> if c = '\n' then acc + 1 else acc)
      0 (Buffer.contents buf)
  in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25 with _ -> ());
  let rec loop () =
    if count_lines () >= n || Unix.gettimeofday () > deadline then ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | r ->
          Buffer.add_subbytes buf chunk 0 r;
          loop ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          loop ()
      | exception _ -> ()
  in
  loop ();
  Buffer.contents buf |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")

(* Build a request line with correct JSON escaping. *)
let req (fields : (string * Trace_json.t) list) : string =
  Trace_json.to_string (Trace_json.Obj fields) ^ "\n"

let num f = Trace_json.Num f

let parse_response (line : string) : Trace_json.t option =
  match Trace_json.parse line with
  | v -> Some v
  | exception _ -> None

let mem k v = Trace_json.member k v

let str_of = function Some (Trace_json.Str s) -> Some s | _ -> None
let num_of = function Some (Trace_json.Num f) -> Some f | _ -> None

let status_of (v : Trace_json.t) : string =
  Option.value ~default:"<missing>" (str_of (mem "status" v))

let id_of (v : Trace_json.t) : float option = num_of (mem "id" v)

(* One request/response exchange on a fresh connection. *)
let roundtrip (s : server) (lines : string list) ~(expect : int) :
    Trace_json.t list =
  let fd = connect s in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      send_all fd (String.concat "" lines);
      let raw = recv_lines fd expect in
      List.filter_map
        (fun line ->
          match parse_response line with
          | Some v -> Some v
          | None ->
              report "response is not JSON: %S" line;
              None)
        raw)

(* Well-formedness every response must satisfy. *)
let check_response_shape (v : Trace_json.t) : unit =
  (match mem "status" v with
  | Some (Trace_json.Str _) -> ()
  | _ -> report "response lacks a string status: %s" (Trace_json.to_string v));
  match mem "code" v with
  | Some (Trace_json.Num _) -> ()
  | _ -> report "response lacks a numeric code: %s" (Trace_json.to_string v)

(* ------------------------------------------------------------------ *)
(* One-shot CLI oracle                                                *)
(* ------------------------------------------------------------------ *)

let run_oneshot (args : string list) : int * string =
  let out = Filename.concat !tmp "oneshot.out" in
  let outfd =
    Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let errfd =
    Unix.openfile
      (Filename.concat !tmp "oneshot.err")
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o600
  in
  let pid =
    Unix.create_process !bin (Array.of_list (!bin :: args)) null outfd errfd
  in
  Unix.close outfd;
  Unix.close errfd;
  Unix.close null;
  let _, status = Unix.waitpid [] pid in
  let code = match status with Unix.WEXITED c -> c | _ -> -1 in
  (code, String.trim (read_file out))

(* ------------------------------------------------------------------ *)
(* Scenarios                                                          *)
(* ------------------------------------------------------------------ *)

let scenario_ping (s : server) =
  section "ping" (fun () ->
      match
        roundtrip s [ req [ ("op", Trace_json.Str "ping"); ("id", num 1.) ] ]
          ~expect:1
      with
      | [ v ] ->
          check_response_shape v;
          if status_of v <> "ok" then report "ping status %s" (status_of v);
          if mem "pong" v <> Some (Trace_json.Bool true) then
            report "ping lacks pong:true";
          if id_of v <> Some 1. then report "ping id not echoed"
      | l -> report "ping: %d responses, expected 1" (List.length l))

let scenario_correctness (s : server) =
  section "correctness vs one-shot CLI" (fun () ->
      let code, expected = run_oneshot [ "count"; !query_file; !db_file ] in
      if code <> 0 then report "one-shot count exited %d" code
      else
        let query = read_file !query_file in
        match
          roundtrip s
            [
              req
                [
                  ("op", Trace_json.Str "count");
                  ("id", num 10.);
                  ("query", Trace_json.Str query);
                ];
            ]
            ~expect:1
        with
        | [ v ] -> (
            check_response_shape v;
            if status_of v <> "ok" then
              report "served count status %s: %s" (status_of v)
                (Trace_json.to_string v)
            else
              match num_of (mem "count" (Option.get (mem "result" v))) with
              | Some n ->
                  let served = Printf.sprintf "%d" (int_of_float n) in
                  if served <> expected then
                    report "served count %s <> one-shot %s" served expected
              | None -> report "count response lacks result.count")
        | l -> report "count: %d responses, expected 1" (List.length l))

let scenario_malformed (s : server) =
  section "malformed frames" (fun () ->
      let junk =
        [
          "not json at all\n";
          "{\"op\":\n";
          "[1,2,3]\n";
          "{\"op\":\"count\"}\n";
          "{\"op\":\"count\",\"query\":42}\n";
          "{\"op\":\"launch-missiles\"}\n";
          "{\"op\":\"count\",\"query\":\"(x) :- E(x, y)\",\"id\":{\"nested\":1}}\n";
          "{\"op\":\"count\",\"query\":\"(x) :- E(x, y)\",\"max_steps\":-5}\n";
          "\"just a string\"\n";
          "null\n";
        ]
      in
      let resps = roundtrip s junk ~expect:(List.length junk) in
      if List.length resps <> List.length junk then
        report "malformed: %d responses for %d frames" (List.length resps)
          (List.length junk);
      List.iter
        (fun v ->
          check_response_shape v;
          if status_of v <> "error" then
            report "malformed frame answered %s: %s" (status_of v)
              (Trace_json.to_string v))
        resps;
      if not (alive s) then report "server died on malformed frames")

let scenario_oversized (s : server) =
  section "oversized frame" (fun () ->
      (* main server runs with --max-frame-bytes 8192 *)
      let big = String.make 20_000 'a' ^ "\n" in
      let follow = req [ ("op", Trace_json.Str "ping"); ("id", num 7.) ] in
      let resps = roundtrip s [ big; follow ] ~expect:2 in
      (match resps with
      | [ a; b ] ->
          check_response_shape a;
          check_response_shape b;
          if status_of a <> "error" then
            report "oversized frame answered %s" (status_of a);
          (match str_of (mem "kind" (Option.value ~default:Trace_json.Null
                                       (mem "error" a))) with
          | Some "frame_too_large" -> ()
          | k ->
              report "oversized frame kind %s"
                (Option.value ~default:"<none>" k));
          (* the connection survived the oversized frame *)
          if status_of b <> "ok" then report "ping after oversized failed"
      | l -> report "oversized: %d responses, expected 2" (List.length l));
      if not (alive s) then report "server died on oversized frame")

let scenario_random_bytes (s : server) =
  section "random bytes" (fun () ->
      (* deterministic LCG junk, newlines sprinkled in so frames form *)
      let st = ref 0x2545F491 in
      let next () =
        st := (!st * 1103515245) + 12345;
        (!st lsr 16) land 0xff
      in
      let buf = Buffer.create 4096 in
      for _ = 1 to 2048 do
        let b = next () in
        if b land 0x3f = 0 then Buffer.add_char buf '\n'
        else Buffer.add_char buf (Char.chr (max 1 b))
      done;
      Buffer.add_char buf '\n';
      let fd = connect s in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          send_all fd (Buffer.contents buf);
          send_all fd (req [ ("op", Trace_json.Str "ping"); ("id", num 9.) ]);
          let resps = recv_lines fd 1000 ~deadline_s:3. in
          List.iter
            (fun line ->
              match parse_response line with
              | Some v -> check_response_shape v
              | None -> report "random-bytes response not JSON: %S" line)
            resps;
          let pings =
            List.filter
              (fun l ->
                match parse_response l with
                | Some v -> id_of v = Some 9.
                | None -> false)
              resps
          in
          if List.length pings <> 1 then
            report "ping after random bytes: %d echoes" (List.length pings));
      if not (alive s) then report "server died on random bytes")

let scenario_truncated (s : server) =
  section "truncated frame + disconnect" (fun () ->
      let fd = connect s in
      send_all fd "{\"op\":\"count\",\"query\":\"(x) :- E";
      Unix.close fd;
      Unix.sleepf 0.1;
      if not (alive s) then report "server died on truncated frame";
      (* server still answers *)
      match
        roundtrip s [ req [ ("op", Trace_json.Str "ping") ] ] ~expect:1
      with
      | [ _ ] -> ()
      | l -> report "ping after truncated: %d responses" (List.length l))

let scenario_mid_request_disconnect (s : server) =
  section "mid-request disconnect" (fun () ->
      let query = read_file !query_file in
      let fd = connect s in
      send_all fd
        (req
           [
             ("op", Trace_json.Str "count");
             ("query", Trace_json.Str query);
             ("id", num 11.);
           ]);
      (* hang up before the evaluator answers *)
      Unix.close fd;
      Unix.sleepf 0.3;
      if not (alive s) then report "server died on mid-request disconnect";
      match
        roundtrip s [ req [ ("op", Trace_json.Str "ping") ] ] ~expect:1
      with
      | [ _ ] -> ()
      | l -> report "ping after disconnect: %d responses" (List.length l))

let scenario_slowloris (s : server) =
  section "slowloris" (fun () ->
      let line = req [ ("op", Trace_json.Str "ping"); ("id", num 21.) ] in
      let fd = connect s in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          String.iter
            (fun c ->
              send_all fd (String.make 1 c);
              Unix.sleepf 0.01)
            line;
          match recv_lines fd 1 ~deadline_s:5. with
          | [ l ] -> (
              match parse_response l with
              | Some v ->
                  if id_of v <> Some 21. then report "slowloris wrong id"
              | None -> report "slowloris response not JSON")
          | l -> report "slowloris: %d responses" (List.length l)))

let scenario_idle_timeout () =
  section "idle timeout" (fun () ->
      let s =
        start_server ~name:"idle" ~extra:[ "--idle-timeout"; "0.5" ] ()
      in
      Fun.protect
        ~finally:(fun () -> stop_server s)
        (fun () ->
          let fd = connect s in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5
               with _ -> ());
              let deadline = Unix.gettimeofday () +. 5. in
              let chunk = Bytes.create 64 in
              let rec wait_eof () =
                if Unix.gettimeofday () > deadline then
                  report "idle connection not closed within 5 s"
                else
                  match Unix.read fd chunk 0 64 with
                  | 0 -> () (* closed by the server: expected *)
                  | _ -> wait_eof ()
                  | exception
                      Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
                    ->
                      wait_eof ()
                  | exception _ -> ()
              in
              wait_eof ())))

let scenario_burst () =
  section "burst beyond the queue bound" (fun () ->
      let s =
        start_server ~name:"burst"
          ~extra:
            [ "--queue-depth"; "2"; "--jobs"; "1"; "--request-timeout"; "2" ]
          ()
      in
      Fun.protect
        ~finally:(fun () -> stop_server s)
        (fun () ->
          (* a query slow enough to pin the evaluator: naive enumeration
             over 9 variables, capped by the 2 s request timeout *)
          let heavy =
            "(a, b, c, d, e, f, g, h, i) :- E(a, b), E(c, d), E(e, f), E(g, \
             h), E(i, a)"
          in
          let quick = "(x) :- E(x, y)" in
          let fd = connect s in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              send_all fd
                (req
                   [
                     ("op", Trace_json.Str "count");
                     ("query", Trace_json.Str heavy);
                     ("method", Trace_json.Str "naive");
                     ("id", num 100.);
                   ]);
              Unix.sleepf 0.3;
              let n_burst = 10 in
              for i = 1 to n_burst do
                send_all fd
                  (req
                     [
                       ("op", Trace_json.Str "count");
                       ("query", Trace_json.Str quick);
                       ("id", num (100. +. float_of_int i));
                     ])
              done;
              let resps =
                List.filter_map parse_response
                  (recv_lines fd (n_burst + 1) ~deadline_s:15.)
              in
              if List.length resps <> n_burst + 1 then
                report "burst: %d responses for %d requests"
                  (List.length resps) (n_burst + 1);
              List.iter check_response_shape resps;
              (* each id answered exactly once *)
              for i = 0 to n_burst do
                let id = 100. +. float_of_int i in
                let n =
                  List.length
                    (List.filter (fun v -> id_of v = Some id) resps)
                in
                if n <> 1 then report "burst id %g answered %d times" id n
              done;
              let shed =
                List.filter (fun v -> status_of v = "overloaded") resps
              in
              if shed = [] then
                report "burst: nothing shed with queue depth 2";
              List.iter
                (fun v ->
                  match num_of (mem "retry_after_ms" v) with
                  | Some ms when ms > 0. -> ()
                  | _ -> report "overloaded without positive retry_after_ms")
                shed;
              (* the pinned request itself must resolve: degraded (its
                 exact attempt timed out) or exact if the machine raced
                 through it *)
              match List.find_opt (fun v -> id_of v = Some 100.) resps with
              | Some v ->
                  if not (List.mem (status_of v) [ "ok"; "degraded"; "error" ])
                  then report "heavy request status %s" (status_of v)
              | None -> report "heavy request never answered")))

let scenario_budget (s : server) =
  section "budget-blowing query" (fun () ->
      let mk id q fields =
        req
          ([
             ("op", Trace_json.Str "count");
             ("query", Trace_json.Str q);
             ("id", num id);
           ]
          @ fields)
      in
      (* two distinct queries: a repeated spelling would be answered
         exactly from its maintained state regardless of the budget, and
         this scenario is about the degradation path *)
      let resps =
        roundtrip s
          [
            mk 30. "(x) :- E(x, y) ; E(y, x)"
              [ ("max_steps", num 3.); ("no_fallback", Trace_json.Bool true) ];
            mk 31. "(x) :- E(x, y)" [ ("max_steps", num 3.) ];
          ]
          ~expect:2
      in
      match resps with
      | [ a; b ] ->
          check_response_shape a;
          check_response_shape b;
          if status_of a <> "error" || num_of (mem "code" a) <> Some 124. then
            report "no-fallback exhaustion: %s" (Trace_json.to_string a);
          if status_of b <> "degraded" then
            report "fallback exhaustion status %s" (status_of b)
          else if
            num_of
              (mem "estimate"
                 (Option.value ~default:Trace_json.Null (mem "result" b)))
            = None
          then report "degraded response lacks result.estimate"
      | l -> report "budget: %d responses, expected 2" (List.length l))

let scenario_cache_and_stats (s : server) =
  section "cache + stats consistency" (fun () ->
      let q = "(u, v) :- E(u, w), E(w, v), E(v, u)" in
      let mk id =
        req
          [
            ("op", Trace_json.Str "count");
            ("query", Trace_json.Str q);
            ("id", num id);
          ]
      in
      let resps = roundtrip s [ mk 40.; mk 41.; mk 42. ] ~expect:3 in
      (match resps with
      | [ a; b; c ] ->
          let cache v = Option.value ~default:"" (str_of (mem "cache" v)) in
          if cache a <> "miss" then report "first lookup cache=%s" (cache a);
          if cache b <> "hit" then report "second lookup cache=%s" (cache b);
          if cache c <> "hit" then report "third lookup cache=%s" (cache c);
          let counts =
            List.map
              (fun v -> num_of (mem "count" (Option.get (mem "result" v))))
              resps
          in
          (match counts with
          | [ Some x; Some y; Some z ] when x = y && y = z -> ()
          | _ -> report "cached results differ from cold result")
      | l -> report "cache: %d responses, expected 3" (List.length l));
      match
        roundtrip s [ req [ ("op", Trace_json.Str "stats") ] ] ~expect:1
      with
      | [ v ] -> (
          match mem "result" v with
          | Some r ->
              let get k = num_of (mem k r) in
              let ok = get "responses_ok" in
              let total = get "requests_total" in
              (match (ok, total) with
              | Some ok, Some total when ok <= total -> ()
              | _ -> report "stats: responses_ok > requests_total");
              (match mem "cache" r with
              | Some cr -> (
                  match num_of (mem "hits" cr) with
                  | Some h when h >= 2. -> ()
                  | _ -> report "stats: cache hits not recorded")
              | None -> report "stats lacks cache block")
          | None -> report "stats lacks result")
      | l -> report "stats: %d responses, expected 1" (List.length l))

let scenario_drain (s : server) ~(trace : string) ~(metrics : string) =
  section "SIGTERM drain" (fun () ->
      (* leave a request in flight while the signal lands *)
      let fd = connect s in
      send_all fd
        (req
           [
             ("op", Trace_json.Str "count");
             ("query", Trace_json.Str "(x, y) :- E(x, z), E(z, y)");
             ("id", num 50.);
           ]);
      Unix.sleepf 0.05;
      stop_server s ~expect:0;
      (try Unix.close fd with _ -> ());
      (* the drain must have flushed a valid Chrome trace *)
      (match Trace_json.parse (read_file trace) with
      | v -> (
          match Trace_json.validate_chrome_trace v with
          | Ok _ -> ()
          | Error msg -> report "drained trace invalid: %s" msg)
      | exception e ->
          report "drained trace unreadable: %s" (Printexc.to_string e));
      match Trace_json.parse (read_file metrics) with
      | Trace_json.Obj _ -> ()
      | _ -> report "drained metrics not a JSON object"
      | exception e ->
          report "drained metrics unreadable: %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Live-update scenarios                                              *)
(* ------------------------------------------------------------------ *)

(* A dedicated database with an explicit universe (spare element 5) and
   three relations, so one registered query lands on tier A and one on
   tier B. *)
let update_db_text =
  "universe { 0, 1, 2, 3, 4, 5 }\n\
   E(0, 1). E(1, 2). E(2, 0). E(2, 3). E(3, 4).\n\
   R(0). R(1).\n\
   S(0, 0).\n"

let tier_a_query = "(x) :- R(x), S(x, y)"
let tier_b_query = "(x, y) :- E(x, z), E(z, y)"

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  path

(* The harness's own mirror of the mutated database: the source of the
   equivalent [.facts] file the one-shot oracle counts. *)
type mirror = (string * int list) list ref

let mirror_of_seed () : mirror =
  ref
    [
      ("E", [ 0; 1 ]); ("E", [ 1; 2 ]); ("E", [ 2; 0 ]); ("E", [ 2; 3 ]);
      ("E", [ 3; 4 ]); ("R", [ 0 ]); ("R", [ 1 ]); ("S", [ 0; 0 ]);
    ]

let mirror_apply (m : mirror) ~(insert : bool) (rel : string)
    (args : int list) : unit =
  if insert then begin
    if not (List.mem (rel, args) !m) then m := !m @ [ (rel, args) ]
  end
  else m := List.filter (fun t -> t <> (rel, args)) !m

let mirror_facts (m : mirror) : string =
  let fact (rel, args) =
    Printf.sprintf "%s(%s)." rel
      (String.concat ", " (List.map string_of_int args))
  in
  "universe { 0, 1, 2, 3, 4, 5 }\n"
  ^ String.concat "\n" (List.map fact !m)
  ^ "\n"

(* Served count for [query], plus the [source]/[tier]/[epoch] fields of
   the response. *)
let served_count (s : server) ~(id : float) (query : string) :
    (int * string * string * float) option =
  match
    roundtrip s
      [
        req
          [
            ("op", Trace_json.Str "count");
            ("query", Trace_json.Str query);
            ("id", num id);
          ];
      ]
      ~expect:1
  with
  | [ v ] -> (
      check_response_shape v;
      if status_of v <> "ok" then begin
        report "count during updates: status %s: %s" (status_of v)
          (Trace_json.to_string v);
        None
      end
      else
        let r = Option.value ~default:Trace_json.Null (mem "result" v) in
        match num_of (mem "count" r) with
        | None ->
            report "count during updates lacks result.count";
            None
        | Some n ->
            let sf k = Option.value ~default:"" (str_of (mem k r)) in
            let ep = Option.value ~default:(-1.) (num_of (mem "epoch" r)) in
            Some (int_of_float n, sf "source", sf "tier", ep))
  | l ->
      report "count during updates: %d responses, expected 1" (List.length l);
      None

let oneshot_count (query_text : string) (facts : string) ~(tag : string) :
    int option =
  let qf = write_file (Filename.concat !tmp (tag ^ ".ucq")) query_text in
  let dbf = write_file (Filename.concat !tmp (tag ^ ".facts")) facts in
  let code, out = run_oneshot [ "count"; qf; dbf ] in
  if code <> 0 then begin
    report "one-shot oracle (%s) exited %d" tag code;
    None
  end
  else int_of_string_opt out

(* One mutation request; returns the response, counting shape failures. *)
let mutate (s : server) ~(id : float) (fields : (string * Trace_json.t) list)
    : Trace_json.t option =
  match roundtrip s [ req (("id", num id) :: fields) ] ~expect:1 with
  | [ v ] ->
      check_response_shape v;
      Some v
  | l ->
      report "mutation: %d responses, expected 1" (List.length l);
      None

let scenario_updates (s : server) =
  section "interleaved updates vs one-shot oracle" (fun () ->
      let m = mirror_of_seed () in
      (* prime both queries twice: the first count builds the maintained
         state, the second must already be served from it *)
      List.iteri
        (fun i q -> ignore (served_count s ~id:(100. +. float_of_int i) q))
        [ tier_a_query; tier_b_query; tier_a_query; tier_b_query ];
      (* an interleaved stream: single mutations, an atomic batch, and a
         no-op; the mirror replays every accepted change *)
      let steps =
        [
          ("insert", [ ("fact", Trace_json.Str "S(1, 1)") ],
           [ (true, "S", [ 1; 1 ]) ], true);
          ("apply",
           [ ("deltas",
              Trace_json.Arr
                [ Trace_json.Str "+E(4, 0)"; Trace_json.Str "-E(2, 3)" ]) ],
           [ (true, "E", [ 4; 0 ]); (false, "E", [ 2; 3 ]) ], true);
          ("delete", [ ("fact", Trace_json.Str "R(0)") ],
           [ (false, "R", [ 0 ]) ], true);
          ("insert", [ ("fact", Trace_json.Str "E(0, 1)") ], [], false);
          ("insert", [ ("fact", Trace_json.Str "S(5, 5)") ],
           [ (true, "S", [ 5; 5 ]) ], true);
        ]
      in
      let last_epoch = ref 0. in
      List.iteri
        (fun i (op, fields, changes, should_change) ->
          let id = 120. +. (10. *. float_of_int i) in
          (match mutate s ~id (("op", Trace_json.Str op) :: fields) with
          | Some v ->
              if status_of v <> "ok" then
                report "update %d (%s) status %s: %s" i op (status_of v)
                  (Trace_json.to_string v)
              else begin
                let r =
                  Option.value ~default:Trace_json.Null (mem "result" v)
                in
                let ep =
                  Option.value ~default:(-1.) (num_of (mem "epoch" r))
                in
                if should_change && ep <= !last_epoch then
                  report "update %d (%s) did not advance the epoch" i op;
                if (not should_change) && ep <> !last_epoch then
                  report "no-op update %d advanced the epoch" i;
                last_epoch := ep
              end
          | None -> ());
          List.iter
            (fun (insert, rel, args) -> mirror_apply m ~insert rel args)
            changes;
          (* after every update both served counts must equal a fresh
             one-shot count over the equivalent .facts file, and the
             tier-A/B states must still answer without recompute *)
          List.iteri
            (fun j (q, tier, tag) ->
              match served_count s ~id:(id +. 1. +. float_of_int j) q with
              | None -> ()
              | Some (n, source, served_tier, ep) -> (
                  if served_tier <> tier then
                    report "step %d: %s served from tier %S, expected %S" i
                      tag served_tier tier;
                  if source = "computed" then
                    report
                      "step %d: %s recomputed — maintained state was lost" i
                      tag;
                  if ep <> !last_epoch then
                    report "step %d: %s answered at epoch %g, db is at %g" i
                      tag ep !last_epoch;
                  match
                    oneshot_count q (mirror_facts m)
                      ~tag:(Printf.sprintf "upd-%d-%s" i tag)
                  with
                  | Some expected when expected <> n ->
                      report "step %d: %s served %d, one-shot says %d" i tag
                        n expected
                  | _ -> ()))
            [
              (tier_a_query, "A", "tier-a");
              (tier_b_query, "B", "tier-b");
            ])
        steps;
      if not (alive s) then report "server died during the update stream")

let scenario_malformed_updates (s : server) =
  section "malformed deltas" (fun () ->
      let epoch_of () =
        match
          roundtrip s [ req [ ("op", Trace_json.Str "stats") ] ] ~expect:1
        with
        | [ v ] ->
            Option.bind (mem "result" v) (fun r ->
                Option.bind (mem "db" r) (fun d -> num_of (mem "epoch" d)))
        | _ -> None
      in
      let before = epoch_of () in
      let expect_error i fields want_code =
        match mutate s ~id:(200. +. float_of_int i) fields with
        | Some v ->
            if status_of v <> "error" then
              report "malformed delta %d accepted: %s" i
                (Trace_json.to_string v)
            else if
              want_code <> 0. && num_of (mem "code" v) <> Some want_code
            then
              report "malformed delta %d: code %s, expected %g" i
                (Trace_json.to_string
                   (Option.value ~default:Trace_json.Null (mem "code" v)))
                want_code
        | None -> ()
      in
      let str k v = (k, Trace_json.Str v) in
      expect_error 0 [ str "op" "insert"; str "fact" "Z(0)" ] 65.;
      expect_error 1 [ str "op" "insert"; str "fact" "E(0)" ] 65.;
      expect_error 2 [ str "op" "delete"; str "fact" "E(0, 9)" ] 65.;
      expect_error 3 [ str "op" "insert"; str "fact" "not a fact (" ] 65.;
      expect_error 4 [ str "op" "insert" ] 64.;
      expect_error 5
        [ ("op", Trace_json.Str "apply"); ("deltas", Trace_json.Str "+E(0, 1)") ]
        64.;
      (* a batch with one bad delta must be rejected atomically *)
      expect_error 6
        [
          ("op", Trace_json.Str "apply");
          ( "deltas",
            Trace_json.Arr
              [ Trace_json.Str "+E(0, 3)"; Trace_json.Str "+Z(9)" ] );
        ]
        65.;
      (match (before, epoch_of ()) with
      | Some b, Some a when a <> b ->
          report "rejected deltas advanced the epoch (%g -> %g)" b a
      | _, None -> report "stats lost its db.epoch field"
      | _ -> ());
      if not (alive s) then report "server died on malformed deltas")

let scenario_update_stats (s : server) =
  section "update stats + maintained-state gauges" (fun () ->
      match
        roundtrip s [ req [ ("op", Trace_json.Str "stats") ] ] ~expect:1
      with
      | [ v ] -> (
          match Option.bind (mem "result" v) (mem "db") with
          | None -> report "stats lacks a db block"
          | Some d ->
              let g k = num_of (mem k d) in
              (match g "epoch" with
              | Some e when e >= 5. -> ()
              | e ->
                  report "db.epoch %g after 5 accepted updates"
                    (Option.value ~default:(-1.) e));
              (match g "updates_applied" with
              | Some n when n >= 5. -> ()
              | _ -> report "db.updates_applied not counting");
              (match g "updates_noop" with
              | Some n when n >= 1. -> ()
              | _ -> report "db.updates_noop not counting");
              (* the acceptance check that tier-A queries answer updates
                 without recompute: their states must still be resident
                 at tier A after the whole stream *)
              (match Option.bind (Some d) (mem "maintained") with
              | Some mt ->
                  let tier k = num_of (mem k mt) in
                  if tier "tier_a" <> Some 1. then
                    report "maintained tier_a gauge: %s"
                      (Trace_json.to_string mt);
                  if tier "tier_b" <> Some 1. then
                    report "maintained tier_b gauge: %s"
                      (Trace_json.to_string mt)
              | None -> report "db block lacks maintained gauges"))
      | l -> report "stats: %d responses, expected 1" (List.length l))

let scenario_update_drain (s : server) =
  section "updates during SIGTERM drain" (fun () ->
      (* enqueue a mutation burst and signal while it is in flight: every
         frame must still be answered with well-formed JSON (ok or
         shutting_down), and the exit must be a clean drain *)
      let fd = connect s in
      for i = 0 to 19 do
        let sign = if i mod 2 = 0 then "+" else "-" in
        send_all fd
          (req
             [
               ("op", Trace_json.Str "apply");
               ( "deltas",
                 Trace_json.Arr
                   [ Trace_json.Str (Printf.sprintf "%sE(%d, %d)" sign
                                       (i mod 5) ((i + 1) mod 5)) ] );
               ("id", num (300. +. float_of_int i));
             ])
      done;
      Unix.sleepf 0.02;
      stop_server s ~expect:0;
      let lines = recv_lines ~deadline_s:5. fd 20 in
      (try Unix.close fd with _ -> ());
      List.iter
        (fun line ->
          match parse_response line with
          | None -> report "drain response is not JSON: %S" line
          | Some v -> (
              check_response_shape v;
              match status_of v with
              | "ok" | "shutting_down" -> ()
              | st -> report "drain-time mutation answered %s" st))
        lines)

let scenario_watch_smoke () =
  section "ucqc watch smoke" (fun () ->
      let db = write_file (Filename.concat !tmp "watch.facts") update_db_text in
      let qa = write_file (Filename.concat !tmp "watch_a.ucq") tier_a_query in
      let qb = write_file (Filename.concat !tmp "watch_b.ucq") tier_b_query in
      let stream =
        write_file
          (Filename.concat !tmp "watch.stream")
          "+S(1, 1)\n\
           # a comment line\n\
           -E(2, 3)\n\
           {\"op\":\"apply\",\"deltas\":[\"+E(4, 0)\"]}\n\
           +E(0, 1)\n"
      in
      let final = Filename.concat !tmp "watch_final.facts" in
      let code, out =
        run_oneshot
          [ "watch"; qa; qb; db; "--input"; stream; "--final-db"; final ]
      in
      if code <> 0 then report "watch exited %d" code
      else begin
        let lines = String.split_on_char '\n' out in
        let last =
          List.fold_left
            (fun acc l -> if String.trim l = "" then acc else Some l)
            None lines
        in
        match Option.map Trace_json.parse last with
        | None | (exception _) -> report "watch produced no parseable output"
        | Some v -> (
            match mem "counts" v with
            | Some (Trace_json.Arr counts) ->
                List.iter
                  (fun c ->
                    let q =
                      Option.value ~default:"" (str_of (mem "query" c))
                    in
                    match num_of (mem "count" c) with
                    | None -> report "watch count for %s is null" q
                    | Some n -> (
                        let text = read_file q in
                        match
                          oneshot_count text (read_file final)
                            ~tag:("watch-" ^ Filename.basename q)
                        with
                        | Some expected when expected <> int_of_float n ->
                            report "watch %s: %g <> one-shot %d" q n expected
                        | _ -> ()))
                  counts
            | _ -> report "watch final line lacks counts: %s" out)
      end;
      (* a stream with one malformed line still processes the rest and
         exits 65 *)
      let bad_stream =
        write_file
          (Filename.concat !tmp "watch_bad.stream")
          "+S(2, 2)\nthis is not a delta\n-R(1)\n"
      in
      let code, out =
        run_oneshot [ "watch"; qa; db; "--input"; bad_stream ]
      in
      if code <> 65 then report "watch with a bad line exited %d, want 65" code;
      let rejected =
        List.exists
          (fun l ->
            match Trace_json.parse l with
            | v -> str_of (mem "status" v) = Some "rejected"
            | exception _ -> false)
          (String.split_on_char '\n' out)
      in
      if not rejected then report "watch did not report the rejected line")

(* ------------------------------------------------------------------ *)

let () =
  let rec parse_args = function
    | [] -> ()
    | "--bin" :: v :: rest ->
        bin := v;
        parse_args rest
    | "--db" :: v :: rest ->
        db_file := v;
        parse_args rest
    | "--query" :: v :: rest ->
        query_file := v;
        parse_args rest
    | a :: _ ->
        Printf.eprintf "fault_inject: unknown argument %s\n" a;
        exit 64
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if not (Sys.file_exists !bin) then begin
    Printf.eprintf "fault_inject: server binary %s not found (build first)\n"
      !bin;
    exit 64
  end;
  tmp := mkdtemp ();
  let trace = Filename.concat !tmp "serve.trace.json" in
  let metrics = Filename.concat !tmp "serve.metrics.json" in
  let s =
    start_server
      ~extra:
        [
          "--max-frame-bytes"; "8192";
          "--request-timeout"; "10";
          "--trace"; trace;
          "--metrics"; metrics;
        ]
      ()
  in
  scenario_ping s;
  scenario_correctness s;
  scenario_malformed s;
  scenario_oversized s;
  scenario_random_bytes s;
  scenario_truncated s;
  scenario_mid_request_disconnect s;
  scenario_slowloris s;
  scenario_budget s;
  scenario_cache_and_stats s;
  scenario_idle_timeout ();
  scenario_burst ();
  scenario_drain s ~trace ~metrics;
  (* the live-update scenarios mutate their database, so they get their
     own server over a dedicated .facts file *)
  let old_db = !db_file in
  db_file := write_file (Filename.concat !tmp "update_db.facts") update_db_text;
  let su = start_server ~name:"updates" () in
  scenario_updates su;
  scenario_malformed_updates su;
  scenario_update_stats su;
  stop_server su ~expect:0;
  let sd = start_server ~name:"update-drain" () in
  scenario_update_drain sd;
  db_file := old_db;
  scenario_watch_smoke ();
  if !failures = 0 then begin
    Printf.printf "fault_inject: all scenarios passed\n";
    exit 0
  end
  else begin
    Printf.printf "fault_inject: %d failure%s\n" !failures
      (if !failures = 1 then "" else "s");
    exit 1
  end
