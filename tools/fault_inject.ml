(** Fault-injection harness for [ucqc serve].

    Spawns the real server binary, then attacks it: malformed and
    oversized frames, truncated writes, mid-request disconnects, a
    slowloris client, bursts past the admission bound, budget-blowing
    queries — asserting after each scenario that the server is still
    alive, every response frame is well-formed JSON, ids are echoed
    exactly once, and the counters stay consistent.  Ends with a SIGTERM
    drain: the process must exit 0 within the deadline and leave a
    validating Chrome trace and parseable metrics behind.

    Also the server's correctness oracle: a [count] answered over the
    socket must be bit-identical to the one-shot CLI on the same query
    and database.

    Run from the repository root: [dune exec tools/fault_inject.exe].
    [--bin PATH] overrides the server binary (default
    [_build/default/bin/ucqc_cli.exe]). *)

let bin = ref "_build/default/bin/ucqc_cli.exe"
let db_file = ref "data/example_db.facts"
let query_file = ref "data/example_query.ucq"

let failures = ref 0

let report fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL: %s\n%!" msg)
    fmt

let section name f =
  Printf.printf "== %s\n%!" name;
  try f ()
  with e ->
    report "%s: harness exception %s" name (Printexc.to_string e)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Server lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

type server = { pid : int; sock : string; log : string }

let mkdtemp () =
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucqc-fault-%d" (Unix.getpid ()))
  in
  let rec try_n i =
    let d = Printf.sprintf "%s-%d" base i in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when i < 100 ->
        try_n (i + 1)
  in
  try_n 0

let tmp = ref ""

let start_server ?(name = "main") ?(extra = []) () : server =
  let sock = Filename.concat !tmp (name ^ ".sock") in
  let log = Filename.concat !tmp (name ^ ".log") in
  let argv =
    Array.of_list
      ([ !bin; "serve"; !db_file; "--socket"; sock ] @ extra)
  in
  let logfd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid = Unix.create_process !bin argv null logfd logfd in
  Unix.close logfd;
  Unix.close null;
  (* wait until the socket accepts *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> Unix.close fd
    | exception _ ->
        Unix.close fd;
        if Unix.gettimeofday () > deadline then
          failwith (Printf.sprintf "server %s did not come up; log: %s" name
                      (try read_file log with _ -> "<unreadable>"))
        else begin
          Unix.sleepf 0.05;
          wait ()
        end
  in
  wait ();
  { pid; sock; log }

(* waitpid with a deadline; returns the exit status or None on timeout *)
let wait_exit (s : server) ~(deadline_s : float) : Unix.process_status option
    =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] s.pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then None
        else begin
          Unix.sleepf 0.05;
          poll ()
        end
    | _, status -> Some status
  in
  poll ()

let stop_server ?(signal = Sys.sigterm) ?(expect = 0) (s : server) : unit =
  (try Unix.kill s.pid signal with _ -> ());
  match wait_exit s ~deadline_s:10. with
  | None ->
      report "server (pid %d) did not exit within 10 s of signal %d" s.pid
        signal;
      (try Unix.kill s.pid Sys.sigkill with _ -> ());
      ignore (try Unix.waitpid [] s.pid with _ -> (0, Unix.WEXITED 0))
  | Some (Unix.WEXITED code) ->
      if code <> expect then begin
        report "server exited %d, expected %d" code expect;
        Printf.printf "server log:\n%s\n"
          (try read_file s.log with _ -> "<unreadable>")
      end
  | Some (Unix.WSIGNALED sg) -> report "server killed by signal %d" sg
  | Some (Unix.WSTOPPED _) -> report "server stopped unexpectedly"

let alive (s : server) : bool =
  match Unix.waitpid [ Unix.WNOHANG ] s.pid with
  | 0, _ -> true
  | _ -> false
  | exception _ -> false

(* ------------------------------------------------------------------ *)
(* Client plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let connect (s : server) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX s.sock);
  fd

let send_all (fd : Unix.file_descr) (data : string) : unit =
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd data !pos (len - !pos)
  done

(* Read newline-terminated frames until [n] arrived, EOF, or deadline. *)
let recv_lines ?(deadline_s = 15.) (fd : Unix.file_descr) (n : int) :
    string list =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let count_lines () =
    String.fold_left
      (fun acc c -> if c = '\n' then acc + 1 else acc)
      0 (Buffer.contents buf)
  in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25 with _ -> ());
  let rec loop () =
    if count_lines () >= n || Unix.gettimeofday () > deadline then ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | r ->
          Buffer.add_subbytes buf chunk 0 r;
          loop ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          loop ()
      | exception _ -> ()
  in
  loop ();
  Buffer.contents buf |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")

(* Build a request line with correct JSON escaping. *)
let req (fields : (string * Trace_json.t) list) : string =
  Trace_json.to_string (Trace_json.Obj fields) ^ "\n"

let num f = Trace_json.Num f

let parse_response (line : string) : Trace_json.t option =
  match Trace_json.parse line with
  | v -> Some v
  | exception _ -> None

let mem k v = Trace_json.member k v

let str_of = function Some (Trace_json.Str s) -> Some s | _ -> None
let num_of = function Some (Trace_json.Num f) -> Some f | _ -> None

let status_of (v : Trace_json.t) : string =
  Option.value ~default:"<missing>" (str_of (mem "status" v))

let id_of (v : Trace_json.t) : float option = num_of (mem "id" v)

(* One request/response exchange on a fresh connection. *)
let roundtrip (s : server) (lines : string list) ~(expect : int) :
    Trace_json.t list =
  let fd = connect s in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      send_all fd (String.concat "" lines);
      let raw = recv_lines fd expect in
      List.filter_map
        (fun line ->
          match parse_response line with
          | Some v -> Some v
          | None ->
              report "response is not JSON: %S" line;
              None)
        raw)

(* Well-formedness every response must satisfy. *)
let check_response_shape (v : Trace_json.t) : unit =
  (match mem "status" v with
  | Some (Trace_json.Str _) -> ()
  | _ -> report "response lacks a string status: %s" (Trace_json.to_string v));
  match mem "code" v with
  | Some (Trace_json.Num _) -> ()
  | _ -> report "response lacks a numeric code: %s" (Trace_json.to_string v)

(* ------------------------------------------------------------------ *)
(* One-shot CLI oracle                                                *)
(* ------------------------------------------------------------------ *)

let run_oneshot (args : string list) : int * string =
  let out = Filename.concat !tmp "oneshot.out" in
  let outfd =
    Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let errfd =
    Unix.openfile
      (Filename.concat !tmp "oneshot.err")
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o600
  in
  let pid =
    Unix.create_process !bin (Array.of_list (!bin :: args)) null outfd errfd
  in
  Unix.close outfd;
  Unix.close errfd;
  Unix.close null;
  let _, status = Unix.waitpid [] pid in
  let code = match status with Unix.WEXITED c -> c | _ -> -1 in
  (code, String.trim (read_file out))

(* ------------------------------------------------------------------ *)
(* Scenarios                                                          *)
(* ------------------------------------------------------------------ *)

let scenario_ping (s : server) =
  section "ping" (fun () ->
      match
        roundtrip s [ req [ ("op", Trace_json.Str "ping"); ("id", num 1.) ] ]
          ~expect:1
      with
      | [ v ] ->
          check_response_shape v;
          if status_of v <> "ok" then report "ping status %s" (status_of v);
          if mem "pong" v <> Some (Trace_json.Bool true) then
            report "ping lacks pong:true";
          if id_of v <> Some 1. then report "ping id not echoed"
      | l -> report "ping: %d responses, expected 1" (List.length l))

let scenario_correctness (s : server) =
  section "correctness vs one-shot CLI" (fun () ->
      let code, expected = run_oneshot [ "count"; !query_file; !db_file ] in
      if code <> 0 then report "one-shot count exited %d" code
      else
        let query = read_file !query_file in
        match
          roundtrip s
            [
              req
                [
                  ("op", Trace_json.Str "count");
                  ("id", num 10.);
                  ("query", Trace_json.Str query);
                ];
            ]
            ~expect:1
        with
        | [ v ] -> (
            check_response_shape v;
            if status_of v <> "ok" then
              report "served count status %s: %s" (status_of v)
                (Trace_json.to_string v)
            else
              match num_of (mem "count" (Option.get (mem "result" v))) with
              | Some n ->
                  let served = Printf.sprintf "%d" (int_of_float n) in
                  if served <> expected then
                    report "served count %s <> one-shot %s" served expected
              | None -> report "count response lacks result.count")
        | l -> report "count: %d responses, expected 1" (List.length l))

let scenario_malformed (s : server) =
  section "malformed frames" (fun () ->
      let junk =
        [
          "not json at all\n";
          "{\"op\":\n";
          "[1,2,3]\n";
          "{\"op\":\"count\"}\n";
          "{\"op\":\"count\",\"query\":42}\n";
          "{\"op\":\"launch-missiles\"}\n";
          "{\"op\":\"count\",\"query\":\"(x) :- E(x, y)\",\"id\":{\"nested\":1}}\n";
          "{\"op\":\"count\",\"query\":\"(x) :- E(x, y)\",\"max_steps\":-5}\n";
          "\"just a string\"\n";
          "null\n";
        ]
      in
      let resps = roundtrip s junk ~expect:(List.length junk) in
      if List.length resps <> List.length junk then
        report "malformed: %d responses for %d frames" (List.length resps)
          (List.length junk);
      List.iter
        (fun v ->
          check_response_shape v;
          if status_of v <> "error" then
            report "malformed frame answered %s: %s" (status_of v)
              (Trace_json.to_string v))
        resps;
      if not (alive s) then report "server died on malformed frames")

let scenario_oversized (s : server) =
  section "oversized frame" (fun () ->
      (* main server runs with --max-frame-bytes 8192 *)
      let big = String.make 20_000 'a' ^ "\n" in
      let follow = req [ ("op", Trace_json.Str "ping"); ("id", num 7.) ] in
      let resps = roundtrip s [ big; follow ] ~expect:2 in
      (match resps with
      | [ a; b ] ->
          check_response_shape a;
          check_response_shape b;
          if status_of a <> "error" then
            report "oversized frame answered %s" (status_of a);
          (match str_of (mem "kind" (Option.value ~default:Trace_json.Null
                                       (mem "error" a))) with
          | Some "frame_too_large" -> ()
          | k ->
              report "oversized frame kind %s"
                (Option.value ~default:"<none>" k));
          (* the connection survived the oversized frame *)
          if status_of b <> "ok" then report "ping after oversized failed"
      | l -> report "oversized: %d responses, expected 2" (List.length l));
      if not (alive s) then report "server died on oversized frame")

let scenario_random_bytes (s : server) =
  section "random bytes" (fun () ->
      (* deterministic LCG junk, newlines sprinkled in so frames form *)
      let st = ref 0x2545F491 in
      let next () =
        st := (!st * 1103515245) + 12345;
        (!st lsr 16) land 0xff
      in
      let buf = Buffer.create 4096 in
      for _ = 1 to 2048 do
        let b = next () in
        if b land 0x3f = 0 then Buffer.add_char buf '\n'
        else Buffer.add_char buf (Char.chr (max 1 b))
      done;
      Buffer.add_char buf '\n';
      let fd = connect s in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          send_all fd (Buffer.contents buf);
          send_all fd (req [ ("op", Trace_json.Str "ping"); ("id", num 9.) ]);
          let resps = recv_lines fd 1000 ~deadline_s:3. in
          List.iter
            (fun line ->
              match parse_response line with
              | Some v -> check_response_shape v
              | None -> report "random-bytes response not JSON: %S" line)
            resps;
          let pings =
            List.filter
              (fun l ->
                match parse_response l with
                | Some v -> id_of v = Some 9.
                | None -> false)
              resps
          in
          if List.length pings <> 1 then
            report "ping after random bytes: %d echoes" (List.length pings));
      if not (alive s) then report "server died on random bytes")

let scenario_truncated (s : server) =
  section "truncated frame + disconnect" (fun () ->
      let fd = connect s in
      send_all fd "{\"op\":\"count\",\"query\":\"(x) :- E";
      Unix.close fd;
      Unix.sleepf 0.1;
      if not (alive s) then report "server died on truncated frame";
      (* server still answers *)
      match
        roundtrip s [ req [ ("op", Trace_json.Str "ping") ] ] ~expect:1
      with
      | [ _ ] -> ()
      | l -> report "ping after truncated: %d responses" (List.length l))

let scenario_mid_request_disconnect (s : server) =
  section "mid-request disconnect" (fun () ->
      let query = read_file !query_file in
      let fd = connect s in
      send_all fd
        (req
           [
             ("op", Trace_json.Str "count");
             ("query", Trace_json.Str query);
             ("id", num 11.);
           ]);
      (* hang up before the evaluator answers *)
      Unix.close fd;
      Unix.sleepf 0.3;
      if not (alive s) then report "server died on mid-request disconnect";
      match
        roundtrip s [ req [ ("op", Trace_json.Str "ping") ] ] ~expect:1
      with
      | [ _ ] -> ()
      | l -> report "ping after disconnect: %d responses" (List.length l))

let scenario_slowloris (s : server) =
  section "slowloris" (fun () ->
      let line = req [ ("op", Trace_json.Str "ping"); ("id", num 21.) ] in
      let fd = connect s in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          String.iter
            (fun c ->
              send_all fd (String.make 1 c);
              Unix.sleepf 0.01)
            line;
          match recv_lines fd 1 ~deadline_s:5. with
          | [ l ] -> (
              match parse_response l with
              | Some v ->
                  if id_of v <> Some 21. then report "slowloris wrong id"
              | None -> report "slowloris response not JSON")
          | l -> report "slowloris: %d responses" (List.length l)))

let scenario_idle_timeout () =
  section "idle timeout" (fun () ->
      let s =
        start_server ~name:"idle" ~extra:[ "--idle-timeout"; "0.5" ] ()
      in
      Fun.protect
        ~finally:(fun () -> stop_server s)
        (fun () ->
          let fd = connect s in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5
               with _ -> ());
              let deadline = Unix.gettimeofday () +. 5. in
              let chunk = Bytes.create 64 in
              let rec wait_eof () =
                if Unix.gettimeofday () > deadline then
                  report "idle connection not closed within 5 s"
                else
                  match Unix.read fd chunk 0 64 with
                  | 0 -> () (* closed by the server: expected *)
                  | _ -> wait_eof ()
                  | exception
                      Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
                    ->
                      wait_eof ()
                  | exception _ -> ()
              in
              wait_eof ())))

let scenario_burst () =
  section "burst beyond the queue bound" (fun () ->
      let s =
        start_server ~name:"burst"
          ~extra:
            [ "--queue-depth"; "2"; "--jobs"; "1"; "--request-timeout"; "2" ]
          ()
      in
      Fun.protect
        ~finally:(fun () -> stop_server s)
        (fun () ->
          (* a query slow enough to pin the evaluator: naive enumeration
             over 9 variables, capped by the 2 s request timeout *)
          let heavy =
            "(a, b, c, d, e, f, g, h, i) :- E(a, b), E(c, d), E(e, f), E(g, \
             h), E(i, a)"
          in
          let quick = "(x) :- E(x, y)" in
          let fd = connect s in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              send_all fd
                (req
                   [
                     ("op", Trace_json.Str "count");
                     ("query", Trace_json.Str heavy);
                     ("method", Trace_json.Str "naive");
                     ("id", num 100.);
                   ]);
              Unix.sleepf 0.3;
              let n_burst = 10 in
              for i = 1 to n_burst do
                send_all fd
                  (req
                     [
                       ("op", Trace_json.Str "count");
                       ("query", Trace_json.Str quick);
                       ("id", num (100. +. float_of_int i));
                     ])
              done;
              let resps =
                List.filter_map parse_response
                  (recv_lines fd (n_burst + 1) ~deadline_s:15.)
              in
              if List.length resps <> n_burst + 1 then
                report "burst: %d responses for %d requests"
                  (List.length resps) (n_burst + 1);
              List.iter check_response_shape resps;
              (* each id answered exactly once *)
              for i = 0 to n_burst do
                let id = 100. +. float_of_int i in
                let n =
                  List.length
                    (List.filter (fun v -> id_of v = Some id) resps)
                in
                if n <> 1 then report "burst id %g answered %d times" id n
              done;
              let shed =
                List.filter (fun v -> status_of v = "overloaded") resps
              in
              if shed = [] then
                report "burst: nothing shed with queue depth 2";
              List.iter
                (fun v ->
                  match num_of (mem "retry_after_ms" v) with
                  | Some ms when ms > 0. -> ()
                  | _ -> report "overloaded without positive retry_after_ms")
                shed;
              (* the pinned request itself must resolve: degraded (its
                 exact attempt timed out) or exact if the machine raced
                 through it *)
              match List.find_opt (fun v -> id_of v = Some 100.) resps with
              | Some v ->
                  if not (List.mem (status_of v) [ "ok"; "degraded"; "error" ])
                  then report "heavy request status %s" (status_of v)
              | None -> report "heavy request never answered")))

let scenario_budget (s : server) =
  section "budget-blowing query" (fun () ->
      let q = "(x) :- E(x, y)" in
      let mk id fields =
        req
          ([
             ("op", Trace_json.Str "count");
             ("query", Trace_json.Str q);
             ("id", num id);
           ]
          @ fields)
      in
      let resps =
        roundtrip s
          [
            mk 30. [ ("max_steps", num 3.); ("no_fallback", Trace_json.Bool true) ];
            mk 31. [ ("max_steps", num 3.) ];
          ]
          ~expect:2
      in
      match resps with
      | [ a; b ] ->
          check_response_shape a;
          check_response_shape b;
          if status_of a <> "error" || num_of (mem "code" a) <> Some 124. then
            report "no-fallback exhaustion: %s" (Trace_json.to_string a);
          if status_of b <> "degraded" then
            report "fallback exhaustion status %s" (status_of b)
          else if
            num_of
              (mem "estimate"
                 (Option.value ~default:Trace_json.Null (mem "result" b)))
            = None
          then report "degraded response lacks result.estimate"
      | l -> report "budget: %d responses, expected 2" (List.length l))

let scenario_cache_and_stats (s : server) =
  section "cache + stats consistency" (fun () ->
      let q = "(u, v) :- E(u, w), E(w, v), E(v, u)" in
      let mk id =
        req
          [
            ("op", Trace_json.Str "count");
            ("query", Trace_json.Str q);
            ("id", num id);
          ]
      in
      let resps = roundtrip s [ mk 40.; mk 41.; mk 42. ] ~expect:3 in
      (match resps with
      | [ a; b; c ] ->
          let cache v = Option.value ~default:"" (str_of (mem "cache" v)) in
          if cache a <> "miss" then report "first lookup cache=%s" (cache a);
          if cache b <> "hit" then report "second lookup cache=%s" (cache b);
          if cache c <> "hit" then report "third lookup cache=%s" (cache c);
          let counts =
            List.map
              (fun v -> num_of (mem "count" (Option.get (mem "result" v))))
              resps
          in
          (match counts with
          | [ Some x; Some y; Some z ] when x = y && y = z -> ()
          | _ -> report "cached results differ from cold result")
      | l -> report "cache: %d responses, expected 3" (List.length l));
      match
        roundtrip s [ req [ ("op", Trace_json.Str "stats") ] ] ~expect:1
      with
      | [ v ] -> (
          match mem "result" v with
          | Some r ->
              let get k = num_of (mem k r) in
              let ok = get "responses_ok" in
              let total = get "requests_total" in
              (match (ok, total) with
              | Some ok, Some total when ok <= total -> ()
              | _ -> report "stats: responses_ok > requests_total");
              (match mem "cache" r with
              | Some cr -> (
                  match num_of (mem "hits" cr) with
                  | Some h when h >= 2. -> ()
                  | _ -> report "stats: cache hits not recorded")
              | None -> report "stats lacks cache block")
          | None -> report "stats lacks result")
      | l -> report "stats: %d responses, expected 1" (List.length l))

let scenario_drain (s : server) ~(trace : string) ~(metrics : string) =
  section "SIGTERM drain" (fun () ->
      (* leave a request in flight while the signal lands *)
      let fd = connect s in
      send_all fd
        (req
           [
             ("op", Trace_json.Str "count");
             ("query", Trace_json.Str "(x, y) :- E(x, z), E(z, y)");
             ("id", num 50.);
           ]);
      Unix.sleepf 0.05;
      stop_server s ~expect:0;
      (try Unix.close fd with _ -> ());
      (* the drain must have flushed a valid Chrome trace *)
      (match Trace_json.parse (read_file trace) with
      | v -> (
          match Trace_json.validate_chrome_trace v with
          | Ok _ -> ()
          | Error msg -> report "drained trace invalid: %s" msg)
      | exception e ->
          report "drained trace unreadable: %s" (Printexc.to_string e));
      match Trace_json.parse (read_file metrics) with
      | Trace_json.Obj _ -> ()
      | _ -> report "drained metrics not a JSON object"
      | exception e ->
          report "drained metrics unreadable: %s" (Printexc.to_string e))

(* ------------------------------------------------------------------ *)

let () =
  let rec parse_args = function
    | [] -> ()
    | "--bin" :: v :: rest ->
        bin := v;
        parse_args rest
    | "--db" :: v :: rest ->
        db_file := v;
        parse_args rest
    | "--query" :: v :: rest ->
        query_file := v;
        parse_args rest
    | a :: _ ->
        Printf.eprintf "fault_inject: unknown argument %s\n" a;
        exit 64
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if not (Sys.file_exists !bin) then begin
    Printf.eprintf "fault_inject: server binary %s not found (build first)\n"
      !bin;
    exit 64
  end;
  tmp := mkdtemp ();
  let trace = Filename.concat !tmp "serve.trace.json" in
  let metrics = Filename.concat !tmp "serve.metrics.json" in
  let s =
    start_server
      ~extra:
        [
          "--max-frame-bytes"; "8192";
          "--request-timeout"; "10";
          "--trace"; trace;
          "--metrics"; metrics;
        ]
      ()
  in
  scenario_ping s;
  scenario_correctness s;
  scenario_malformed s;
  scenario_oversized s;
  scenario_random_bytes s;
  scenario_truncated s;
  scenario_mid_request_disconnect s;
  scenario_slowloris s;
  scenario_budget s;
  scenario_cache_and_stats s;
  scenario_idle_timeout ();
  scenario_burst ();
  scenario_drain s ~trace ~metrics;
  if !failures = 0 then begin
    Printf.printf "fault_inject: all scenarios passed\n";
    exit 0
  end
  else begin
    Printf.printf "fault_inject: %d failure%s\n" !failures
      (if !failures = 1 then "" else "s");
    exit 1
  end
