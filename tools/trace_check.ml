(** Validate a Chrome-trace JSON file emitted by [ucqc --trace].

    Usage: [trace_check FILE [FILE...]].  For each file: parse the JSON,
    check the Chrome-trace shape, and check that every domain's B/E
    events nest and balance.  Exits 0 when every file passes, 1 on a
    validation failure, 64 on usage errors.  CI runs this against traces
    produced by the workflow's traced invocation. *)
let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: trace_check FILE [FILE...]";
    exit 64
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      match Trace_json.parse_file path with
      | exception Sys_error msg ->
          Printf.eprintf "trace_check: %s\n" msg;
          failed := true
      | exception Failure msg ->
          Printf.eprintf "trace_check: %s: %s\n" path msg;
          failed := true
      | v -> (
          match Trace_json.validate_chrome_trace v with
          | Ok n -> Printf.printf "%s: OK (%d events, B/E balanced)\n" path n
          | Error msg ->
              Printf.eprintf "trace_check: %s: %s\n" path msg;
              failed := true))
    files;
  if !failed then exit 1
