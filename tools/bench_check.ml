(** CI gate over the bench harness's JSON artefacts.  Reads each file
    named on the command line (default [BENCH_parallel.json]) and
    dispatches on its shape: a file with a [workloads] array gets the
    parallel bars, a file with [kind = "optimize"] gets the optimizer
    bars.

    Parallel bars (BENCH_parallel.json — the parallel hot path must pay
    for itself):

    - every run of every workload is [reproducible] and [consistent]
      (these hold on any machine — they are determinism bars, not
      speedup bars);
    - when the file says [parallel_comparison_valid] (produced on ≥ 2
      hardware threads): on the E3 inclusion–exclusion workload, jobs=2
      must beat jobs=1 wall-clock (speedup > 1.0) and the aggregate
      [pool.worker] span time of the jobs=2 run must stay within 1.5×
      its wall time (workers busy on work, not on spawn/join overhead).

    On a single-core producer the speedup section prints a NOTICE and is
    skipped — a 1-core "comparison" measures contention and failing on
    it would be noise, which is exactly the misleading-output bug this
    gate exists to prevent.

    Optimizer bars (BENCH_optimize.json — the count-preserving rewrite
    must pay for itself on the redundant-union workload): the optimized
    and unoptimized counts must be equal bit-for-bit, the rewrite must
    strictly shrink the disjunct and IE-subset counts without growing
    the Lemma 26 expansion support,
    and end-to-end optimize+count wall time must not lose to the
    unoptimized count (10% tolerance; skipped with a NOTICE when the
    unoptimized run is under 1 ms — below the wall-clock noise floor).

    Exits 1 on any violation, 0 otherwise. *)

let fail_count = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr fail_count;
      Printf.eprintf "bench_check: FAIL %s\n" s)
    fmt

let mem_exn (k : string) (v : Trace_json.t) : Trace_json.t =
  match Trace_json.member k v with
  | Some x -> x
  | None -> failwith (Printf.sprintf "missing key %S" k)

let num_exn (k : string) (v : Trace_json.t) : float =
  match mem_exn k v with
  | Trace_json.Num f -> f
  | _ -> failwith (Printf.sprintf "key %S is not a number" k)

let bool_exn (k : string) (v : Trace_json.t) : bool =
  match mem_exn k v with
  | Trace_json.Bool b -> b
  | _ -> failwith (Printf.sprintf "key %S is not a bool" k)

let str_exn (k : string) (v : Trace_json.t) : string =
  match mem_exn k v with
  | Trace_json.Str s -> s
  | _ -> failwith (Printf.sprintf "key %S is not a string" k)

let arr_exn (k : string) (v : Trace_json.t) : Trace_json.t list =
  match mem_exn k v with
  | Trace_json.Arr l -> l
  | _ -> failwith (Printf.sprintf "key %S is not an array" k)

(* aggregate [pool.worker] total_ms out of a run's phase breakdown *)
let worker_total_ms (run : Trace_json.t) : float option =
  match Trace_json.member "phases" run with
  | Some (Trace_json.Arr phases) ->
      List.fold_left
        (fun acc p ->
          match Trace_json.member "span" p with
          | Some (Trace_json.Str "pool.worker") -> (
              match Trace_json.member "total_ms" p with
              | Some (Trace_json.Num ms) ->
                  Some (Option.value acc ~default:0. +. ms)
              | _ -> acc)
          | _ -> acc)
        None phases
  | _ -> None

let check_optimize (path : string) (j : Trace_json.t) : unit =
  let int k = int_of_float (num_exn k j) in
  if not (bool_exn "counts_equal" j) then
    fail "%s: optimized count %d differs from unoptimized %d" path
      (int "count_optimized") (int "count_unoptimized")
  else
    Printf.printf "bench_check: %s counts agree (%d)\n" path
      (int "count_optimized");
  if not (bool_exn "changed" j) then
    fail "%s: the optimizer did not rewrite the redundant union" path;
  let shrink what before after =
    if after >= before then
      fail "%s: %s did not shrink (%d -> %d)" path what before after
    else
      Printf.printf "bench_check: %s %s shrank %d -> %d\n" path what before
        after
  in
  shrink "disjuncts" (int "disjuncts_before") (int "disjuncts_after");
  shrink "IE subsets" (int "subsets_before") (int "subsets_after");
  (* the Lemma 26 support of equivalent queries is the same set of
     classes — the optimizer's win is reaching it without enumerating
     2^l subsets — so the bar here is non-increase, not strict shrink *)
  let sb = int "support_before" and sa = int "support_after" in
  if sa > sb then
    fail "%s: expansion support grew (%d -> %d)" path sb sa
  else
    Printf.printf "bench_check: %s expansion support %d -> %d\n" path sb sa;
  let wall_un = num_exn "wall_unoptimized_s" j in
  let wall_opt = num_exn "wall_optimized_s" j in
  if wall_un < 0.001 then
    Printf.printf
      "bench_check: NOTICE %s unoptimized run is %.6f s — below the 1 ms \
       wall-clock noise floor; the not-slower bar is skipped, the count \
       and shrink bars still hold.\n"
      path wall_un
  else if wall_opt > 1.1 *. wall_un then
    fail
      "%s: optimize+count %.6f s is slower than the unoptimized count \
       %.6f s (beyond 10%% tolerance)"
      path wall_opt wall_un
  else
    Printf.printf
      "bench_check: %s optimize+count %.6f s vs unoptimized %.6f s \
       (speedup %.2fx)\n"
      path wall_opt wall_un
      (wall_un /. wall_opt)

let check_parallel (path : string) (j : Trace_json.t) : unit =
  let workloads = arr_exn "workloads" j in
  (* determinism bars: hold regardless of core count *)
  List.iter
    (fun w ->
      let name = str_exn "name" w in
      List.iter
        (fun run ->
          let jobs = int_of_float (num_exn "jobs" run) in
          if not (bool_exn "reproducible" run) then
            fail "%s jobs=%d is not reproducible" name jobs;
          if not (bool_exn "consistent" run) then
            fail "%s jobs=%d is not consistent with jobs=1" name jobs)
        (arr_exn "runs" w))
    workloads;
  (* speedup bar: only meaningful when the producer had ≥ 2 cores *)
  if not (bool_exn "parallel_comparison_valid" j) then
    Printf.printf
      "bench_check: NOTICE %s was produced on a single-core machine \
       (cores_available=%d); the jobs=2 > jobs=1 speedup bar is skipped — \
       the determinism bars still hold.\n"
      path
      (int_of_float (num_exn "cores_available" j))
  else begin
    match
      List.find_opt
        (fun w -> str_exn "name" w = "E3_psi1_inclusion_exclusion")
        workloads
    with
    | None -> fail "E3_psi1_inclusion_exclusion workload missing"
    | Some w -> (
        let runs = arr_exn "runs" w in
        let find_jobs n =
          List.find_opt
            (fun r -> int_of_float (num_exn "jobs" r) = n)
            runs
        in
        match (find_jobs 1, find_jobs 2) with
        | Some _, Some r2 ->
            let speedup = num_exn "speedup_vs_1" r2 in
            let wall_ms = 1000. *. num_exn "wall_s" r2 in
            if speedup <= 1.0 then
              fail "E3 jobs=2 speedup %.3f <= 1.0 — parallelism is a net loss"
                speedup
            else
              Printf.printf "bench_check: E3 jobs=2 speedup %.3f > 1.0\n"
                speedup;
            (match worker_total_ms r2 with
            | Some total ->
                if total > 1.5 *. wall_ms then
                  fail
                    "E3 jobs=2 pool.worker total %.1f ms exceeds 1.5x wall \
                     (%.1f ms) — workers burn time off the critical path"
                    total wall_ms
                else
                  Printf.printf
                    "bench_check: E3 jobs=2 pool.worker total %.1f ms within \
                     1.5x wall (%.1f ms)\n"
                    total wall_ms
            | None -> fail "E3 jobs=2 run has no pool.worker phase")
        | _ -> fail "E3 runs for jobs=1 and jobs=2 missing")
  end

let () =
  let paths =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ "BENCH_parallel.json" ]
    | l -> l
  in
  List.iter
    (fun path ->
      let j =
        try Trace_json.parse_file path
        with e ->
          Printf.eprintf "bench_check: cannot read %s: %s\n" path
            (Printexc.to_string e);
          exit 1
      in
      match Trace_json.member "kind" j with
      | Some (Trace_json.Str "optimize") -> check_optimize path j
      | _ -> check_parallel path j)
    paths;
  if !fail_count > 0 then begin
    Printf.eprintf "bench_check: %d violation(s)\n" !fail_count;
    exit 1
  end;
  print_endline "bench_check: all bars hold"
