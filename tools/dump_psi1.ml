let () =
  let psi1, ktk = Paper_examples.psi1 () in
  let oc = open_out "data/psi1.ucq" in
  output_string oc
    "# Psi_1 = A^_3(Delta_1) of Figure 2 (expansion support NOT acyclic:\n\
     # counting is superlinear under the paper's assumptions)\n";
  output_string oc (Pretty.ucq psi1);
  output_string oc "\n";
  close_out oc;
  let host =
    let n = 8 in
    Graph.of_edges n (Listx.take (n * (n - 1) / 4) (Graph.edges (Graph.clique n)))
  in
  let db = Ktk.database_of_graph ktk host in
  let oc = open_out "data/k34_db.facts" in
  output_string oc
    "# Lemma 45 database over K_3^4 for an 8-vertex quarter-dense host graph\n";
  output_string oc (Pretty.database db);
  output_string oc "\n";
  close_out oc;
  print_endline "wrote data/psi1.ucq data/k34_db.facts"
