(** Stress harness: a heavy randomised cross-validation sweep over every
    counting engine, the reduction parsimony identity, and the treewidth
    machinery.  Not part of `dune runtest` (it takes minutes); run with
    [dune exec tools/fuzz.exe] before releases.  Exits non-zero when any
    mismatch is found, so CI can gate on it.

    [FUZZ_SCALE] scales every iteration count (e.g. [FUZZ_SCALE=0.05] for
    a quick CI smoke run, default 1).  [UCQC_JOBS > 1] additionally
    cross-checks every parallelisable engine on a domain pool of that
    size against its sequential result; a malformed [UCQC_JOBS] is a
    usage error (exit 64).

    Telemetry runs in stack-only mode ([record = false]): spans cost a
    push/pop but buffer nothing over the multi-minute run, and every
    mismatch or crash report carries the active span stack, so a failure
    names the sweep it came from. *)
let () =
  let scale =
    match Sys.getenv_opt "FUZZ_SCALE" with
    | Some s -> (
        match float_of_string_opt s with
        | Some f when f > 0.0 -> f
        | _ ->
            Printf.eprintf "fuzz: ignoring malformed FUZZ_SCALE %S\n" s;
            1.0)
    | None -> 1.0
  in
  let iters n = max 1 (int_of_float (float_of_int n *. scale)) in
  let pool =
    match Pool.jobs_of_env_result () with
    | Error msg ->
        Printf.eprintf "fuzz: %s\n" msg;
        exit 64
    | Ok jobs when jobs > 1 ->
        Printf.printf "fuzz: cross-checking parallel engines with %d jobs\n"
          jobs;
        Some (Pool.create ~jobs ())
    | Ok _ -> None
  in
  Telemetry.enable ~record:false ();
  let sg = Generators.graph_signature in
  let failures = ref 0 in
  let report fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        let stack = Telemetry.current_stack () in
        Printf.printf "%s%s\n" msg
          (if stack = [] then ""
           else
             Printf.sprintf "  [spans: %s]"
               (String.concat " > " (List.rev stack))))
      fmt
  in
  let section name f = Telemetry.with_span name f in
  let run () =
    (* CQ engines *)
    section "fuzz.cq-engines" (fun () ->
        for seed = 0 to iters 1500 do
          let q = Qgen.random_cq ~seed ~max_vars:4 ~max_atoms:5 sg in
          let db = Generators.random_digraph ~seed:(seed * 7 + 1) 5 12 in
          let naive = Counting.count ~strategy:Counting.Naive q db in
          if Counting.count q db <> naive then report "AUTO mismatch seed %d" seed;
          if Varelim.count q db <> naive then report "VARELIM mismatch seed %d" seed;
          if Cq.is_quantifier_free q then begin
            if Counting.count ~strategy:Counting.Treedec q db <> naive then
              report "TREEDEC mismatch seed %d" seed;
            if Counting.count ~strategy:Counting.Weighted q db <> naive then
              report "WEIGHTED mismatch seed %d" seed;
            if Nice_count.count (Cq.structure q) db <> Hom.count (Cq.structure q) db
            then report "NICE mismatch seed %d" seed
          end
        done);
    (* UCQ counting *)
    section "fuzz.ucq-counting" (fun () ->
        for seed = 0 to iters 400 do
          let psi =
            Qgen.random_ucq ~seed ~max_disjuncts:3 ~max_vars:4 ~max_atoms:3 sg
          in
          let db = Generators.random_digraph ~seed:(seed * 13 + 5) 4 9 in
          let naive = Ucq.count_naive psi db in
          if Ucq.count_inclusion_exclusion psi db <> naive then
            report "UCQ IE mismatch seed %d" seed;
          if Ucq.count_via_expansion psi db <> naive then
            report "UCQ EXP mismatch seed %d" seed;
          match pool with
          | None -> ()
          | Some _ ->
              if Ucq.count_naive ?pool psi db <> naive then
                report "UCQ PAR-NAIVE mismatch seed %d" seed;
              if Ucq.count_inclusion_exclusion ?pool psi db <> naive then
                report "UCQ PAR-IE mismatch seed %d" seed;
              if Ucq.count_via_expansion ?pool psi db <> naive then
                report "UCQ PAR-EXP mismatch seed %d" seed
        done);
    (* reduction parsimony, larger random formulas *)
    section "fuzz.parsimony" (fun () ->
        for seed = 0 to iters 150 do
          let f = Cnf.random_3cnf ~seed 4 (1 + (seed mod 6)) in
          if not (Sat_complex.euler_equals_count_sat f) then
            report "PARSIMONY FAIL seed %d" seed
        done);
    (* treewidth: exact vs independent nice-width, on random graphs *)
    section "fuzz.treewidth" (fun () ->
        for seed = 0 to iters 300 do
          let st = Random.State.make [| seed |] in
          let n = 3 + Random.State.int st 7 in
          let g = Graph.make n in
          for _ = 1 to n * 2 do
            Graph.add_edge g (Random.State.int st n) (Random.State.int st n)
          done;
          let w, dec = Treewidth.exact g in
          let nice = Nice_treedec.of_treedec dec in
          if
            (not (Nice_treedec.validate g nice))
            || Nice_treedec.width nice <> max w (-1)
          then report "NICE TD FAIL seed %d" seed;
          if pool <> None && Treewidth.treewidth ?pool g <> w then
            report "PAR TW mismatch seed %d" seed
        done);
    (* parallel Karp-Luby: a fixed (seed, jobs) pair must be reproducible *)
    (match pool with
    | None -> ()
    | Some _ ->
        section "fuzz.parallel-kl" (fun () ->
            for seed = 0 to iters 50 do
              let psi =
                Qgen.random_ucq ~seed ~max_disjuncts:3 ~max_vars:3 ~max_atoms:2
                  sg
              in
              let db = Generators.random_digraph ~seed:(seed * 11 + 7) 5 12 in
              let est () =
                Karp_luby.estimate ~seed ?pool ~samples:300 psi db
              in
              if est () <> est () then report "PAR KL NONDET seed %d" seed
            done));
    (* analyzer totality: the crash corpus and random bytes through
       Analysis.check — it must never raise, its reports must be
       deterministic, and every span must lie inside the input text *)
    section "fuzz.analyzer" (fun () ->
        let check_text name text =
          match try Ok (Analysis.check ~path:name text) with e -> Error e with
          | Error e ->
              report "ANALYZER RAISED %s: %s" name (Printexc.to_string e)
          | Ok r ->
              if Analysis.check ~path:name text <> r then
                report "ANALYZER NONDET %s" name;
              let lines =
                Array.of_list (String.split_on_char '\n' text)
              in
              let nlines = Array.length lines in
              let line_len i = String.length lines.(i - 1) in
              List.iter
                (fun (d : Diagnostic.t) ->
                  match d.Diagnostic.span with
                  | None -> ()
                  | Some s ->
                      let inside line col =
                        line >= 1 && line <= nlines && col >= 1
                        && col <= line_len line + 1
                      in
                      let ordered =
                        s.Diagnostic.end_line > s.Diagnostic.line
                        || (s.Diagnostic.end_line = s.Diagnostic.line
                            && s.Diagnostic.end_col >= s.Diagnostic.col)
                      in
                      if
                        not
                          (inside s.Diagnostic.line s.Diagnostic.col
                          && inside s.Diagnostic.end_line s.Diagnostic.end_col
                          && ordered)
                      then
                        report "ANALYZER SPAN OOB %s: %s" name
                          (Diagnostic.to_string d))
                r.Analysis.diagnostics
        in
        (* the parser crash corpus (also exercised by the frontend tests) *)
        let dir = Filename.concat "test" "crash_corpus" in
        if Sys.file_exists dir && Sys.is_directory dir then
          Array.iter
            (fun f ->
              let path = Filename.concat dir f in
              let ic = open_in_bin path in
              let text = really_input_string ic (in_channel_length ic) in
              close_in ic;
              check_text f text)
            (Sys.readdir dir)
        else Printf.printf "fuzz: analyzer corpus %s not found, skipping\n" dir;
        (* random grammar-adjacent bytes, with occasional raw garbage *)
        let alphabet = "(),;:-#ExyzR01 \n\t" in
        for seed = 0 to iters 2000 do
          let st = Random.State.make [| seed; 77 |] in
          let len = Random.State.int st 80 in
          let buf =
            Bytes.init len (fun _ ->
                if Random.State.int st 8 = 0 then
                  Char.chr (Random.State.int st 256)
                else alphabet.[Random.State.int st (String.length alphabet)])
          in
          check_text (Printf.sprintf "rand-%d" seed) (Bytes.to_string buf)
        done);
    (* budget determinism: the same step budget must exhaust at the same
       point twice, and a generous budget must not change any result *)
    section "fuzz.budget-determinism" (fun () ->
        for seed = 0 to iters 200 do
          let psi =
            Qgen.random_ucq ~seed ~max_disjuncts:3 ~max_vars:4 ~max_atoms:3 sg
          in
          let db = Generators.random_digraph ~seed:(seed * 17 + 3) 4 9 in
          let run_once n =
            let b = Budget.of_steps n in
            Budget.run b ~phase:"fuzz" (fun () ->
                Ucq.count_via_expansion ~budget:b psi db)
          in
          let n = 1 + (seed mod 50) in
          if run_once n <> run_once n then report "BUDGET NONDET seed %d" seed;
          match run_once max_int with
          | Ok c when c = Ucq.count_naive psi db -> ()
          | _ -> report "BUDGET CHANGES RESULT seed %d" seed
        done);
    (* cover optimizer: total, deterministic, never raises, and the
       rewrite is count-preserving on every database and every engine —
       the qcheck suite holds the same equivalence, the fuzzer drives
       far more seeds plus the crash corpus through parse → optimize *)
    section "fuzz.optimize" (fun () ->
        let check_total name psi =
          match try Ok (Optimize.run psi) with e -> Error e with
          | Error e ->
              report "OPTIMIZE RAISED %s: %s" name (Printexc.to_string e)
          | Ok r ->
              if Optimize.run psi <> r then report "OPTIMIZE NONDET %s" name;
              if Ucq.length r.Optimize.optimized < 1 then
                report "OPTIMIZE EMPTY UNION %s" name;
              if
                List.length r.Optimize.kept
                <> Ucq.length r.Optimize.optimized
              then report "OPTIMIZE KEPT/LENGTH MISMATCH %s" name
        in
        let check_text name text =
          match Parse.ucq_result text with
          | Error _ | (exception _) -> () (* parser totality is fuzzed above *)
          | Ok (psi, _) -> check_total name psi
        in
        let dir = Filename.concat "test" "crash_corpus" in
        if Sys.file_exists dir && Sys.is_directory dir then
          Array.iter
            (fun f ->
              let path = Filename.concat dir f in
              let ic = open_in_bin path in
              let text = really_input_string ic (in_channel_length ic) in
              close_in ic;
              check_text f text)
            (Sys.readdir dir)
        else Printf.printf "fuzz: optimize corpus %s not found, skipping\n" dir;
        for seed = 0 to iters 400 do
          let psi =
            Qgen.random_ucq ~seed ~max_disjuncts:4 ~max_vars:4 ~max_atoms:3 sg
          in
          check_total (Printf.sprintf "seed-%d" seed) psi;
          let r = Optimize.run psi in
          let db = Generators.random_digraph ~seed:(seed * 19 + 11) 4 9 in
          let naive = Ucq.count_naive psi db in
          if Ucq.count_naive r.Optimize.optimized db <> naive then
            report "OPTIMIZE CHANGES NAIVE COUNT seed %d" seed;
          if Ucq.count_inclusion_exclusion r.Optimize.optimized db <> naive
          then report "OPTIMIZE CHANGES IE COUNT seed %d" seed;
          if Ucq.count_via_expansion r.Optimize.optimized db <> naive then
            report "OPTIMIZE CHANGES EXP COUNT seed %d" seed;
          match pool with
          | None -> ()
          | Some _ ->
              if Ucq.count_via_expansion ?pool r.Optimize.optimized db <> naive
              then report "OPTIMIZE CHANGES PAR-EXP COUNT seed %d" seed
        done);
    (* serve-mode wire protocol: the crash corpus and random bytes
       through Protocol.parse_request — it must never raise, must be
       deterministic, and every response it leads to must render as one
       newline-terminated line that parses back as JSON *)
    section "fuzz.wire-protocol" (fun () ->
        let check_rendered name (resp : Protocol.response) =
          let line = Protocol.to_string resp in
          let n = String.length line in
          if n = 0 || line.[n - 1] <> '\n' then
            report "PROTOCOL FRAME NOT NL-TERMINATED %s" name
          else if String.contains (String.sub line 0 (n - 1)) '\n' then
            report "PROTOCOL FRAME MULTILINE %s" name
          else
            match Trace_json.parse line with
            | exception e ->
                report "PROTOCOL FRAME UNPARSEABLE %s: %s" name
                  (Printexc.to_string e)
            | v -> (
                match
                  (Trace_json.member "status" v, Trace_json.member "code" v)
                with
                | Some (Trace_json.Str _), Some (Trace_json.Num _) -> ()
                | _ -> report "PROTOCOL FRAME MISSING status/code %s" name)
        in
        let check_frame name line =
          match try Ok (Protocol.parse_request line) with e -> Error e with
          | Error e ->
              report "PROTOCOL RAISED %s: %s" name (Printexc.to_string e)
          | Ok r ->
              if Protocol.parse_request line <> r then
                report "PROTOCOL NONDET %s" name;
              let resp =
                match r with
                | Ok (req : Protocol.request) ->
                    Protocol.make_response ?id:req.Protocol.id Protocol.Ok_ []
                | Error e -> Protocol.of_req_error e
              in
              check_rendered name resp
        in
        (* engine errors must render as well-formed frames too *)
        check_rendered "ucqc-internal"
          (Protocol.of_ucqc_error (Ucqc_error.Internal "boom\n\"quoted\""));
        check_rendered "ucqc-unsupported"
          (Protocol.of_ucqc_error ~id:(Trace_json.Num 3.5)
             (Ucqc_error.Unsupported "no"));
        (* the parser crash corpus doubles as hostile request bodies *)
        let dir = Filename.concat "test" "crash_corpus" in
        if Sys.file_exists dir && Sys.is_directory dir then
          Array.iter
            (fun f ->
              let path = Filename.concat dir f in
              let ic = open_in_bin path in
              let text = really_input_string ic (in_channel_length ic) in
              close_in ic;
              check_frame f text;
              (* ... and embedded as the query of an otherwise-valid op *)
              check_frame (f ^ "-as-query")
                (Trace_json.to_string
                   (Trace_json.Obj
                      [
                        ("op", Trace_json.Str "count");
                        ("query", Trace_json.Str text);
                        ("id", Trace_json.Str f);
                      ])))
            (Sys.readdir dir)
        else Printf.printf "fuzz: protocol corpus %s not found, skipping\n" dir;
        (* random JSON-adjacent bytes, with occasional raw garbage *)
        let alphabet = "{}[]:,\"\\optquerycundismax_1520.-e \n\t" in
        for seed = 0 to iters 2000 do
          let st = Random.State.make [| seed; 911 |] in
          let len = Random.State.int st 120 in
          let buf =
            Bytes.init len (fun _ ->
                if Random.State.int st 8 = 0 then
                  Char.chr (Random.State.int st 256)
                else alphabet.[Random.State.int st (String.length alphabet)])
          in
          check_frame (Printf.sprintf "rand-%d" seed) (Bytes.to_string buf)
        done;
        (* the framer must be chunking-invariant: feeding a byte stream
           in arbitrary pieces yields the same frames as one big feed,
           including oversized-frame discards and the EOF tail *)
        let drain max_frame_bytes chunks =
          let fr = Framer.create ~max_frame_bytes () in
          let out = ref [] in
          List.iter
            (fun c ->
              let b = Bytes.of_string c in
              out := List.rev_append (Framer.feed fr b ~off:0 ~len:(Bytes.length b)) !out;
              if Framer.pending fr < 0 then report "FRAMER NEGATIVE PENDING")
            chunks;
          (match Framer.eof fr with Some f -> out := f :: !out | None -> ());
          if Framer.eof fr <> None then report "FRAMER EOF NOT IDEMPOTENT";
          List.rev !out
        in
        for seed = 0 to iters 800 do
          let st = Random.State.make [| seed; 912 |] in
          let len = Random.State.int st 200 in
          let payload =
            String.init len (fun _ ->
                match Random.State.int st 6 with
                | 0 -> '\n'
                | 1 -> '\r'
                | _ -> Char.chr (32 + Random.State.int st 95))
          in
          let limit = 1 + Random.State.int st 24 in
          let whole =
            match try Ok (drain limit [ payload ]) with e -> Error e with
            | Error e ->
                report "FRAMER RAISED seed %d: %s" seed (Printexc.to_string e);
                []
            | Ok frames -> frames
          in
          (* random re-chunking of the same payload *)
          let rec split acc off =
            if off >= String.length payload then List.rev acc
            else
              let n =
                min (String.length payload - off) (1 + Random.State.int st 9)
              in
              split (String.sub payload off n :: acc) (off + n)
          in
          let chunked = drain limit (split [] 0) in
          if chunked <> whole then report "FRAMER CHUNKING MISMATCH seed %d" seed;
          (* every complete frame respects the size bound and carries no
             terminator bytes *)
          List.iter
            (function
              | Framer.Frame s ->
                  if String.length s > limit then
                    report "FRAMER OVERLONG FRAME seed %d" seed;
                  if String.contains s '\n' then
                    report "FRAMER EMBEDDED NEWLINE seed %d" seed
              | Framer.Oversized n ->
                  if n <> limit then report "FRAMER BAD OVERSIZED TAG seed %d" seed)
            whole
        done)
  in
  (try run ()
   with e ->
     (* crash report: the active span stack names the sweep that died *)
     Printf.eprintf "fuzz: CRASH %s  [spans: %s]\n" (Printexc.to_string e)
       (String.concat " > " (List.rev (Telemetry.current_stack ())));
     raise e);
  Printf.printf "fuzz done: %d failures\n" !failures;
  if !failures > 0 then exit 1
