(** Stress harness: a heavy randomised cross-validation sweep over every
    counting engine, the reduction parsimony identity, and the treewidth
    machinery.  Not part of `dune runtest` (it takes minutes); run with
    [dune exec tools/fuzz.exe] before releases.  Exits non-zero when any
    mismatch is found, so CI can gate on it.

    [FUZZ_SCALE] scales every iteration count (e.g. [FUZZ_SCALE=0.05] for
    a quick CI smoke run, default 1).  [UCQC_JOBS > 1] additionally
    cross-checks every parallelisable engine on a domain pool of that
    size against its sequential result. *)
let () =
  let scale =
    match Sys.getenv_opt "FUZZ_SCALE" with
    | Some s -> (
        match float_of_string_opt s with
        | Some f when f > 0.0 -> f
        | _ ->
            Printf.eprintf "fuzz: ignoring malformed FUZZ_SCALE %S\n" s;
            1.0)
    | None -> 1.0
  in
  let iters n = max 1 (int_of_float (float_of_int n *. scale)) in
  let pool =
    let jobs = Pool.jobs_of_env () in
    if jobs > 1 then begin
      Printf.printf "fuzz: cross-checking parallel engines with %d jobs\n" jobs;
      Some (Pool.create ~jobs ())
    end
    else None
  in
  let sg = Generators.graph_signature in
  let failures = ref 0 in
  (* CQ engines *)
  for seed = 0 to iters 1500 do
    let q = Qgen.random_cq ~seed ~max_vars:4 ~max_atoms:5 sg in
    let db = Generators.random_digraph ~seed:(seed * 7 + 1) 5 12 in
    let naive = Counting.count ~strategy:Counting.Naive q db in
    if Counting.count q db <> naive then (incr failures; Printf.printf "AUTO mismatch seed %d\n" seed);
    if Varelim.count q db <> naive then (incr failures; Printf.printf "VARELIM mismatch seed %d\n" seed);
    if Cq.is_quantifier_free q then begin
      if Counting.count ~strategy:Counting.Treedec q db <> naive then (incr failures; Printf.printf "TREEDEC mismatch seed %d\n" seed);
      if Counting.count ~strategy:Counting.Weighted q db <> naive then (incr failures; Printf.printf "WEIGHTED mismatch seed %d\n" seed);
      if Nice_count.count (Cq.structure q) db <> Hom.count (Cq.structure q) db then (incr failures; Printf.printf "NICE mismatch seed %d\n" seed)
    end
  done;
  (* UCQ counting *)
  for seed = 0 to iters 400 do
    let psi = Qgen.random_ucq ~seed ~max_disjuncts:3 ~max_vars:4 ~max_atoms:3 sg in
    let db = Generators.random_digraph ~seed:(seed * 13 + 5) 4 9 in
    let naive = Ucq.count_naive psi db in
    if Ucq.count_inclusion_exclusion psi db <> naive then (incr failures; Printf.printf "UCQ IE mismatch seed %d\n" seed);
    if Ucq.count_via_expansion psi db <> naive then (incr failures; Printf.printf "UCQ EXP mismatch seed %d\n" seed);
    match pool with
    | None -> ()
    | Some _ ->
        if Ucq.count_naive ?pool psi db <> naive then (incr failures; Printf.printf "UCQ PAR-NAIVE mismatch seed %d\n" seed);
        if Ucq.count_inclusion_exclusion ?pool psi db <> naive then (incr failures; Printf.printf "UCQ PAR-IE mismatch seed %d\n" seed);
        if Ucq.count_via_expansion ?pool psi db <> naive then (incr failures; Printf.printf "UCQ PAR-EXP mismatch seed %d\n" seed)
  done;
  (* reduction parsimony, larger random formulas *)
  for seed = 0 to iters 150 do
    let f = Cnf.random_3cnf ~seed 4 (1 + (seed mod 6)) in
    if not (Sat_complex.euler_equals_count_sat f) then (incr failures; Printf.printf "PARSIMONY FAIL seed %d\n" seed)
  done;
  (* treewidth: exact vs independent nice-width, on random graphs *)
  for seed = 0 to iters 300 do
    let st = Random.State.make [| seed |] in
    let n = 3 + Random.State.int st 7 in
    let g = Graph.make n in
    for _ = 1 to n * 2 do
      Graph.add_edge g (Random.State.int st n) (Random.State.int st n)
    done;
    let w, dec = Treewidth.exact g in
    let nice = Nice_treedec.of_treedec dec in
    if not (Nice_treedec.validate g nice) || Nice_treedec.width nice <> max w (-1)
    then (incr failures; Printf.printf "NICE TD FAIL seed %d\n" seed);
    if pool <> None && Treewidth.treewidth ?pool g <> w then
      (incr failures; Printf.printf "PAR TW mismatch seed %d\n" seed)
  done;
  (* parallel Karp-Luby: a fixed (seed, jobs) pair must be reproducible *)
  (match pool with
  | None -> ()
  | Some _ ->
      for seed = 0 to iters 50 do
        let psi = Qgen.random_ucq ~seed ~max_disjuncts:3 ~max_vars:3 ~max_atoms:2 sg in
        let db = Generators.random_digraph ~seed:(seed * 11 + 7) 5 12 in
        let est () = Karp_luby.estimate ~seed ?pool ~samples:300 psi db in
        if est () <> est () then
          (incr failures; Printf.printf "PAR KL NONDET seed %d\n" seed)
      done);
  (* budget determinism: the same step budget must exhaust at the same
     point twice, and a generous budget must not change any result *)
  for seed = 0 to iters 200 do
    let psi = Qgen.random_ucq ~seed ~max_disjuncts:3 ~max_vars:4 ~max_atoms:3 sg in
    let db = Generators.random_digraph ~seed:(seed * 17 + 3) 4 9 in
    let run_once n =
      let b = Budget.of_steps n in
      Budget.run b ~phase:"fuzz" (fun () ->
          Ucq.count_via_expansion ~budget:b psi db)
    in
    let n = 1 + (seed mod 50) in
    if run_once n <> run_once n then
      (incr failures; Printf.printf "BUDGET NONDET seed %d\n" seed);
    (match run_once max_int with
    | Ok c when c = Ucq.count_naive psi db -> ()
    | _ -> (incr failures; Printf.printf "BUDGET CHANGES RESULT seed %d\n" seed))
  done;
  Printf.printf "fuzz done: %d failures\n" !failures;
  if !failures > 0 then exit 1
