(** Observability conformance checker for [ucqc serve].

    Spawns the real server binary with [--metrics-addr 127.0.0.1:0],
    an access log and a slow-query log, then holds the whole
    observability plane against its contract:

    - every [/metrics] scrape passes {!Prometheus.validate} (exposition
      format 0.0.4) and is served with the exposition content type;
    - counters are monotone across scrapes (same name and label set,
      never decreasing, never disappearing);
    - a deliberately mispredicted query (naive enumeration where the
      plan predicts cheap acyclic counting) produces a slow-query log
      entry whose request id matches the wire response, carrying the
      plan estimate, the observed step count and the lint codes;
    - every evaluated request appears in the access log under its
      request id;
    - [/healthz] answers 200 while serving and flips to 503 during a
      SIGTERM drain, and the process still exits 0.

    Run from the repository root: [dune exec tools/obs_check.exe].
    [--bin PATH] overrides the server binary; [--out DIR] keeps every
    scraped exposition as files (the CI artifact). *)

let bin = ref "_build/default/bin/ucqc_cli.exe"
let db_file = ref "data/example_db.facts"
let out_dir : string option ref = ref None

let failures = ref 0

let report fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL: %s\n%!" msg)
    fmt

let section name f =
  Printf.printf "== %s\n%!" name;
  try f ()
  with e ->
    report "%s: harness exception %s" name (Printexc.to_string e)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let save name contents =
  match !out_dir with
  | None -> ()
  | Some dir ->
      let oc = open_out (Filename.concat dir name) in
      output_string oc contents;
      close_out oc

(* ------------------------------------------------------------------ *)
(* Server lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

type server = {
  pid : int;
  sock : string;
  log : string;
  mport : int;
  access_log : string;
  slow_log : string;
}

let mkdtemp () =
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucqc-obs-%d" (Unix.getpid ()))
  in
  let rec try_n i =
    let d = Printf.sprintf "%s-%d" base i in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when i < 100 ->
        try_n (i + 1)
  in
  try_n 0

let tmp = ref ""

(* The CLI announces the actual gateway port on stderr:
   "ucqc: metrics on http://HOST:PORT/metrics" — the contract that makes
   --metrics-addr HOST:0 scriptable. *)
let parse_metrics_port (log_text : string) : int option =
  let needle = "ucqc: metrics on http://" in
  let nlen = String.length needle in
  let llen = String.length log_text in
  let rec find i =
    if i + nlen > llen then None
    else if String.sub log_text i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start -> (
      match String.index_from_opt log_text start ':' with
      | None -> None
      | Some colon ->
          let digits = Buffer.create 8 in
          let i = ref (colon + 1) in
          while
            !i < llen && log_text.[!i] >= '0' && log_text.[!i] <= '9'
          do
            Buffer.add_char digits log_text.[!i];
            incr i
          done;
          int_of_string_opt (Buffer.contents digits))

let start_server ?(extra = []) () : server =
  let sock = Filename.concat !tmp "obs.sock" in
  let log = Filename.concat !tmp "obs.log" in
  let access_log = Filename.concat !tmp "access.jsonl" in
  let slow_log = Filename.concat !tmp "slow.jsonl" in
  let argv =
    Array.of_list
      ([
         !bin; "serve"; !db_file;
         "--socket"; sock;
         "--metrics-addr"; "127.0.0.1:0";
         "--access-log"; access_log;
         "--slow-query-log"; slow_log;
       ]
      @ extra)
  in
  let logfd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid = Unix.create_process !bin argv null logfd logfd in
  Unix.close logfd;
  Unix.close null;
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait_sock () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> Unix.close fd
    | exception _ ->
        Unix.close fd;
        if Unix.gettimeofday () > deadline then
          failwith
            (Printf.sprintf "server did not come up; log: %s"
               (try read_file log with _ -> "<unreadable>"))
        else begin
          Unix.sleepf 0.05;
          wait_sock ()
        end
  in
  wait_sock ();
  let rec wait_port () =
    match parse_metrics_port (try read_file log with _ -> "") with
    | Some p -> p
    | None ->
        if Unix.gettimeofday () > deadline then
          failwith "server never announced its metrics port"
        else begin
          Unix.sleepf 0.05;
          wait_port ()
        end
  in
  let mport = wait_port () in
  { pid; sock; log; mport; access_log; slow_log }

let wait_exit (s : server) ~(deadline_s : float) : Unix.process_status option
    =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] s.pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then None
        else begin
          Unix.sleepf 0.05;
          poll ()
        end
    | _, status -> Some status
  in
  poll ()

(* ------------------------------------------------------------------ *)
(* Clients: NDJSON on the query plane, HTTP on the ops plane          *)
(* ------------------------------------------------------------------ *)

let send_all (fd : Unix.file_descr) (data : string) : unit =
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd data !pos (len - !pos)
  done

let recv_lines ?(deadline_s = 20.) (fd : Unix.file_descr) (n : int) :
    string list =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let count_lines () =
    String.fold_left
      (fun acc c -> if c = '\n' then acc + 1 else acc)
      0 (Buffer.contents buf)
  in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25 with _ -> ());
  let rec loop () =
    if count_lines () >= n || Unix.gettimeofday () > deadline then ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | r ->
          Buffer.add_subbytes buf chunk 0 r;
          loop ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          loop ()
      | exception _ -> ()
  in
  loop ();
  Buffer.contents buf |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")

let roundtrip (s : server) (lines : string list) ~(expect : int) :
    Trace_json.t list =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX s.sock);
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      send_all fd (String.concat "" lines);
      List.filter_map
        (fun line ->
          match Trace_json.parse line with
          | v -> Some v
          | exception _ ->
              report "response is not JSON: %S" line;
              None)
        (recv_lines fd expect))

let req (fields : (string * Trace_json.t) list) : string =
  Trace_json.to_string (Trace_json.Obj fields) ^ "\n"

let str_of = function Some (Trace_json.Str s) -> Some s | _ -> None
let num_of = function Some (Trace_json.Num f) -> Some f | _ -> None
let mem k v = Trace_json.member k v

(* One HTTP GET against the gateway; the reply is (status, headers,
   body).  The gateway closes after every response, so read to EOF. *)
let http_get (port : int) (target : string) : (int * string * string, string) result =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  match
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "connect :%d: %s" port (Unix.error_message e))
  | () -> (
      send_all fd
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
           target);
      let buf = Bytes.create 8192 in
      let acc = Buffer.create 8192 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes acc buf 0 n;
            drain ()
        | exception _ -> ()
      in
      drain ();
      let raw = Buffer.contents acc in
      let len = String.length raw in
      let rec head_end i =
        if i + 4 > len then None
        else if String.sub raw i 4 = "\r\n\r\n" then Some i
        else head_end (i + 1)
      in
      match head_end 0 with
      | None -> Error "malformed HTTP response"
      | Some he ->
          let head = String.sub raw 0 he in
          let body = String.sub raw (he + 4) (len - he - 4) in
          let status =
            if String.length head >= 12 then
              Option.value ~default:(-1)
                (int_of_string_opt (String.sub head 9 3))
            else -1
          in
          Ok (status, head, body))

let scrape (s : server) ~(name : string) : Prometheus.sample list =
  match http_get s.mport "/metrics" with
  | Error msg ->
      report "scrape %s: %s" name msg;
      []
  | Ok (status, head, body) -> (
      save (name ^ ".prom") body;
      if status <> 200 then report "scrape %s: HTTP %d" name status;
      let lower = String.lowercase_ascii head in
      let has_sub needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i =
          i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
        in
        go 0
      in
      if not (has_sub "text/plain; version=0.0.4" lower) then
        report "scrape %s served without the exposition content type" name;
      (match Prometheus.validate body with
      | Ok n ->
          Printf.printf "   %s: %d samples validated\n%!" name n
      | Error msg -> report "scrape %s fails validation: %s" name msg);
      match Prometheus.parse body with
      | Ok samples -> samples
      | Error msg ->
          report "scrape %s unparseable: %s" name msg;
          [])

let value ?labels (samples : Prometheus.sample list) (name : string) : float
    option =
  Prometheus.find ?labels samples name

(* ------------------------------------------------------------------ *)
(* Checks                                                             *)
(* ------------------------------------------------------------------ *)

let check_monotone ~(from_name : string) ~(to_name : string)
    (before : Prometheus.sample list) (after : Prometheus.sample list) : unit
    =
  let is_counter (s : Prometheus.sample) =
    let n = s.Prometheus.sname in
    let suffix = "_total" in
    let nl = String.length n and sl = String.length suffix in
    nl >= sl && String.sub n (nl - sl) sl = suffix
  in
  List.iter
    (fun (s : Prometheus.sample) ->
      if is_counter s then
        match
          value ~labels:s.Prometheus.slabels after s.Prometheus.sname
        with
        | None ->
            report "counter %s%s disappeared between %s and %s"
              s.Prometheus.sname
              (match s.Prometheus.slabels with
              | [] -> ""
              | l ->
                  "{"
                  ^ String.concat ","
                      (List.map (fun (k, v) -> k ^ "=" ^ v) l)
                  ^ "}")
              from_name to_name
        | Some v ->
            if v < s.Prometheus.svalue then
              report "counter %s went backwards: %g -> %g (%s -> %s)"
                s.Prometheus.sname s.Prometheus.svalue v from_name to_name)
    before

let check_health (s : server) ~(expect : int) ~(what : string) : unit =
  match http_get s.mport "/healthz" with
  | Error msg -> report "healthz (%s): %s" what msg
  | Ok (status, _, _) ->
      if status <> expect then
        report "healthz (%s): HTTP %d, expected %d" what status expect

(* A query the static plan prices as cheap acyclic counting, forced
   through naive enumeration: 5^9 assignments against a prediction of a
   handful of steps — drift far past any sane slow factor. *)
let mispredicted_query =
  "(a, b, c, d, e, f, g, h, i) :- E(a, b), E(c, d), E(e, f), E(g, h), E(i, \
   a)"

let drive_load (s : server) : string option =
  let quick = "(x) :- E(x, y)" in
  let mk id fields =
    req
      ([ ("op", Trace_json.Str "count"); ("id", Trace_json.Num id) ] @ fields)
  in
  let lines =
    List.init 8 (fun i ->
        mk
          (float_of_int (200 + i))
          [ ("query", Trace_json.Str quick) ])
    @ [
        mk 300.
          [
            ("query", Trace_json.Str mispredicted_query);
            ("method", Trace_json.Str "naive");
            ("max_steps", Trace_json.Num 50000.);
          ];
      ]
  in
  let resps = roundtrip s lines ~expect:(List.length lines) in
  if List.length resps <> List.length lines then
    report "load: %d responses for %d requests" (List.length resps)
      (List.length lines);
  (* the mispredicted request must degrade (its exact budget blown) and
     carry a request id we can chase through the logs *)
  match
    List.find_opt
      (fun v -> num_of (mem "id" v) = Some 300.)
      resps
  with
  | None ->
      report "mispredicted request never answered";
      None
  | Some v ->
      (match str_of (mem "status" v) with
      | Some ("degraded" | "ok") -> ()
      | st ->
          report "mispredicted request status %s"
            (Option.value ~default:"<missing>" st));
      let rid = str_of (mem "request_id" v) in
      if rid = None then report "mispredicted response lacks request_id";
      rid

let check_slow_log (s : server) (rid : string option) : unit =
  match rid with
  | None -> ()
  | Some rid -> (
      let text = try read_file s.slow_log with _ -> "" in
      save "slow.jsonl" text;
      let entries =
        String.split_on_char '\n' text
        |> List.filter (fun l -> l <> "")
        |> List.filter_map (fun l ->
               match Slowlog.of_json l with
               | Ok e -> Some e
               | Error msg ->
                   report "slow log line unparseable (%s): %S" msg l;
                   None)
      in
      if entries = [] then report "slow log is empty after a mispredicted query";
      match
        List.find_opt (fun e -> e.Slowlog.request_id = rid) entries
      with
      | None -> report "no slow-log entry for request %s" rid
      | Some e ->
          if e.Slowlog.observed_steps <= 0 then
            report "slow-log entry has no observed steps";
          if e.Slowlog.predicted_cost < 0. then
            report "slow-log predicted cost %g < 0" e.Slowlog.predicted_cost;
          if e.Slowlog.factor < e.Slowlog.threshold then
            report "slow-log entry below its own threshold (%g < %g)"
              e.Slowlog.factor e.Slowlog.threshold;
          if e.Slowlog.op <> "count" then
            report "slow-log entry op %s" e.Slowlog.op;
          if e.Slowlog.lint_codes = [] then
            report "slow-log entry carries no lint codes for a query the \
                    analyzer flags")

let check_access_log (s : server) : unit =
  let text = try read_file s.access_log with _ -> "" in
  save "access.jsonl" text;
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  if List.length lines < 9 then
    report "access log has %d lines, expected at least 9 evaluated requests"
      (List.length lines);
  List.iter
    (fun l ->
      match Trace_json.parse l with
      | exception _ -> report "access log line not JSON: %S" l
      | v ->
          if str_of (mem "request_id" v) = None then
            report "access log line lacks request_id: %S" l;
          if str_of (mem "op" v) = None then
            report "access log line lacks op: %S" l;
          if num_of (mem "elapsed_ms" v) = None then
            report "access log line lacks elapsed_ms: %S" l)
    lines

(* ------------------------------------------------------------------ *)

let () =
  let rec parse_args = function
    | [] -> ()
    | "--bin" :: v :: rest ->
        bin := v;
        parse_args rest
    | "--db" :: v :: rest ->
        db_file := v;
        parse_args rest
    | "--out" :: v :: rest ->
        out_dir := Some v;
        parse_args rest
    | a :: _ ->
        Printf.eprintf "obs_check: unknown argument %s\n" a;
        exit 64
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if not (Sys.file_exists !bin) then begin
    Printf.eprintf "obs_check: server binary %s not found (build first)\n"
      !bin;
    exit 64
  end;
  (match !out_dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | _ -> ());
  tmp := mkdtemp ();
  let s =
    start_server
      ~extra:
        [ "--request-timeout"; "10"; "--drain-deadline"; "3"; "--slow-factor";
          "8" ]
      ()
  in
  Printf.printf "obs_check: server up, metrics port %d\n%!" s.mport;

  let before = ref [] and after = ref [] in
  section "scrape before load" (fun () ->
      before := scrape s ~name:"scrape-before";
      if !before = [] then report "empty first scrape";
      check_health s ~expect:200 ~what:"serving";
      (match http_get s.mport "/readyz" with
      | Ok (200, _, _) -> ()
      | Ok (st, _, _) -> report "readyz: HTTP %d" st
      | Error msg -> report "readyz: %s" msg);
      (* the ops plane knows its own identity *)
      match value !before "ucqc_build_info" with
      | Some 1. -> ()
      | _ -> report "ucqc_build_info missing or not 1");

  let slow_rid = ref None in
  section "load (including a mispredicted query)" (fun () ->
      slow_rid := drive_load s);

  section "scrape after load: monotone counters" (fun () ->
      after := scrape s ~name:"scrape-after";
      check_monotone ~from_name:"before" ~to_name:"after" !before !after;
      (match
         ( value !before "ucqc_serve_requests_count_total",
           value !after "ucqc_serve_requests_count_total" )
       with
      | Some b, Some a when a >= b +. 9. -> ()
      | b, a ->
          report "count requests did not advance (%s -> %s)"
            (match b with Some x -> string_of_float x | None -> "absent")
            (match a with Some x -> string_of_float x | None -> "absent"));
      (match value !after "ucqc_serve_slow_queries_total" with
      | Some n when n >= 1. -> ()
      | _ -> report "slow-query counter did not fire");
      match
        value
          ~labels:[ ("op", "count"); ("quantile", "0.99") ]
          !after "ucqc_rolling_latency_ms"
      with
      | Some q when q > 0. -> ()
      | _ -> report "rolling p99 for count missing or zero after load");

  section "slow-query log" (fun () -> check_slow_log s !slow_rid);
  section "access log" (fun () -> check_access_log s);

  section "SIGTERM drain: healthz flips, exit 0" (fun () ->
      (* pin the evaluator so the drain window is observable: a naive
         sweep over 11 variables outlasts the 3 s drain deadline *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX s.sock);
      send_all fd
        (req
           [
             ("op", Trace_json.Str "count");
             ( "query",
               Trace_json.Str
                 "(a, b, c, d, e, f, g, h, i, j, k) :- E(a, b), E(c, d), \
                  E(e, f), E(g, h), E(i, j), E(k, a)" );
             ("method", Trace_json.Str "naive");
             ("id", Trace_json.Num 400.);
           ]);
      Unix.sleepf 0.3;
      Unix.kill s.pid Sys.sigterm;
      (* the drain flag is set in the signal handler, so the flip must
         be prompt even though the evaluator is pinned *)
      let deadline = Unix.gettimeofday () +. 2. in
      let rec wait_503 () =
        match http_get s.mport "/healthz" with
        | Ok (503, _, _) -> ()
        | _ ->
            if Unix.gettimeofday () > deadline then
              report "healthz never flipped to 503 during the drain"
            else begin
              Unix.sleepf 0.05;
              wait_503 ()
            end
      in
      wait_503 ();
      ignore (scrape s ~name:"scrape-draining");
      (match value (scrape s ~name:"scrape-draining-2") "ucqc_draining" with
      | Some 1. -> ()
      | _ -> report "ucqc_draining not 1 during the drain");
      (try Unix.close fd with _ -> ());
      (match wait_exit s ~deadline_s:15. with
      | Some (Unix.WEXITED 0) -> ()
      | Some (Unix.WEXITED c) ->
          report "server exited %d after SIGTERM, expected 0" c;
          Printf.printf "server log:\n%s\n"
            (try read_file s.log with _ -> "<unreadable>")
      | Some (Unix.WSIGNALED sg) -> report "server killed by signal %d" sg
      | Some (Unix.WSTOPPED _) -> report "server stopped unexpectedly"
      | None ->
          report "server did not exit within 15 s of SIGTERM";
          (try Unix.kill s.pid Sys.sigkill with _ -> ());
          ignore (try Unix.waitpid [] s.pid with _ -> (0, Unix.WEXITED 0)));
      (* the gateway goes down last — after the drain it must be gone *)
      match http_get s.mport "/healthz" with
      | Error _ -> ()
      | Ok (st, _, _) ->
          report "gateway still answering (HTTP %d) after exit" st);

  if !failures = 0 then begin
    Printf.printf "obs_check: all checks passed\n";
    exit 0
  end
  else begin
    Printf.printf "obs_check: %d failure%s\n" !failures
      (if !failures = 1 then "" else "s");
    exit 1
  end
