(** SARIF gate for CI: structurally validate files produced by
    [ucqc check --format sarif].

    Usage: [sarif_check.exe FILE...] — parses each file with the in-tree
    JSON reader and checks it with {!Sarif.validate} (version 2.1.0,
    declared rule ids, valid levels, well-formed regions, well-formed
    [fixes] payloads).  On top of the structural pass, every machine-
    applicable fix is checked {e semantically}: each
    [replacements[].insertedContent.text] must parse back as a UCQ with
    the in-tree parser — a fix a machine cannot re-apply is a bug, not a
    hint.  Prints one line per file and exits 1 on the first malformed
    one, so the CI leg needs no external schema validator. *)

(* Walk results[].fixes[].artifactChanges[].replacements[] and parse
   every insertedContent.text.  Returns the number of replacement texts
   checked, or the first offending context. *)
let validate_fix_texts (json : Trace_json.t) : (int, string) result =
  let open Trace_json in
  let checked = ref 0 in
  let err = ref None in
  let fail ctx msg = if !err = None then err := Some (ctx ^ ": " ^ msg) in
  let arr = function Some (Arr l) -> l | _ -> [] in
  let each k v f = List.iteri (fun i x -> f (Printf.sprintf "%s[%d]" k i) x) (arr v) in
  each "runs" (member "runs" json) (fun rctx run ->
      each (rctx ^ ".results") (member "results" run) (fun resctx res ->
          each (resctx ^ ".fixes") (member "fixes" res) (fun fctx fix ->
              each (fctx ^ ".artifactChanges") (member "artifactChanges" fix)
                (fun cctx change ->
                  each (cctx ^ ".replacements") (member "replacements" change)
                    (fun pctx repl ->
                      match member "insertedContent" repl with
                      | None -> ()
                      | Some inserted -> (
                          match member "text" inserted with
                          | Some (Str text) -> (
                              incr checked;
                              match Parse.ucq_result text with
                              | Ok _ -> ()
                              | Error e ->
                                  fail
                                    (pctx ^ ".insertedContent.text")
                                    (Printf.sprintf
                                       "does not parse back as a UCQ: %s"
                                       (Ucqc_error.to_string e)))
                          | _ ->
                              fail pctx "insertedContent without string text"))))));
  match !err with Some msg -> Error msg | None -> Ok !checked

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: sarif_check.exe FILE...";
    exit 64
  end;
  let failures = ref 0 in
  List.iter
    (fun path ->
      match
        try Ok (Trace_json.parse_file path) with
        | Failure msg -> Error msg
        | Sys_error msg -> Error msg
      with
      | Error msg ->
          incr failures;
          Printf.printf "%s: unreadable or malformed JSON: %s\n" path msg
      | Ok json -> (
          match Sarif.validate json with
          | Ok n -> (
              match validate_fix_texts json with
              | Ok fixes ->
                  Printf.printf
                    "%s: valid SARIF %s, %d results, %d fix replacements \
                     parse back\n"
                    path Sarif.version n fixes
              | Error msg ->
                  incr failures;
                  Printf.printf "%s: INVALID fix: %s\n" path msg)
          | Error msg ->
              incr failures;
              Printf.printf "%s: INVALID: %s\n" path msg))
    files;
  if !failures > 0 then exit 1
