(** SARIF gate for CI: structurally validate files produced by
    [ucqc check --format sarif].

    Usage: [sarif_check.exe FILE...] — parses each file with the in-tree
    JSON reader and checks it with {!Sarif.validate} (version 2.1.0,
    declared rule ids, valid levels, well-formed regions).  Prints one
    line per file and exits 1 on the first malformed one, so the CI leg
    needs no external schema validator. *)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: sarif_check.exe FILE...";
    exit 64
  end;
  let failures = ref 0 in
  List.iter
    (fun path ->
      match
        try Ok (Trace_json.parse_file path) with
        | Failure msg -> Error msg
        | Sys_error msg -> Error msg
      with
      | Error msg ->
          incr failures;
          Printf.printf "%s: unreadable or malformed JSON: %s\n" path msg
      | Ok json -> (
          match Sarif.validate json with
          | Ok n -> Printf.printf "%s: valid SARIF %s, %d results\n" path Sarif.version n
          | Error msg ->
              incr failures;
              Printf.printf "%s: INVALID: %s\n" path msg))
    files;
  if !failures > 0 then exit 1
