(** Resource budgets: a step counter, a wall-clock deadline, and a
    cooperative cancellation flag shared by every engine hot loop.  See the
    interface for the contract; the implementation keeps {!tick} cheap —
    one decrement and two flag tests on the common path — because it sits
    inside branch-and-bound and enumeration inner loops. *)

type exhaustion = { phase : string; steps_done : int }

exception Exhausted of exhaustion

type t = {
  mutable steps_left : int; (* [max_int] means unlimited *)
  step_limited : bool;
  mutable steps_done : int;
  deadline : float option; (* absolute, [Unix.gettimeofday] *)
  mutable clock_probe : int; (* ticks until the next deadline check *)
  mutable cancelled : bool;
  mutable phase : string;
}

(* Checking the clock on every tick would dominate tight loops; probe it
   every [clock_stride] ticks instead.  Deadlines are inherently
   non-deterministic, so the coarsening is harmless — deterministic tests
   use step budgets. *)
let clock_stride = 256

let make ?max_steps ?timeout () : t =
  let steps_left =
    match max_steps with
    | None -> max_int
    | Some n -> if n < 0 then invalid_arg "Budget.make: negative step budget" else n
  in
  {
    steps_left;
    step_limited = max_steps <> None;
    steps_done = 0;
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout;
    clock_probe = clock_stride;
    cancelled = false;
    phase = "start";
  }

let unlimited () : t = make ()
let of_steps (n : int) : t = make ~max_steps:n ()
let of_timeout (seconds : float) : t = make ~timeout:seconds ()
let is_limited (b : t) : bool = b.step_limited || b.deadline <> None
let steps_done (b : t) : int = b.steps_done

let remaining_steps (b : t) : int option =
  if b.step_limited then Some b.steps_left else None

let phase (b : t) : string = b.phase
let set_phase (b : t) (p : string) : unit = b.phase <- p
let cancel (b : t) : unit = b.cancelled <- true
let is_cancelled (b : t) : bool = b.cancelled

let exhaust (b : t) : 'a =
  raise (Exhausted { phase = b.phase; steps_done = b.steps_done })

let past_deadline (b : t) : bool =
  match b.deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let check (b : t) : unit =
  if b.cancelled || b.steps_left <= 0 || past_deadline b then exhaust b

let tick (b : t) : unit =
  b.steps_done <- b.steps_done + 1;
  if b.cancelled then exhaust b;
  if b.step_limited then begin
    b.steps_left <- b.steps_left - 1;
    if b.steps_left <= 0 then exhaust b
  end;
  if b.deadline <> None then begin
    b.clock_probe <- b.clock_probe - 1;
    if b.clock_probe <= 0 then begin
      b.clock_probe <- clock_stride;
      if past_deadline b then exhaust b
    end
  end

let ticks (b : t) (n : int) : unit =
  if n > 0 then begin
    b.steps_done <- b.steps_done + n - 1;
    if b.step_limited then b.steps_left <- b.steps_left - (n - 1);
    tick b
  end

let tick_opt = function None -> () | Some b -> tick b
let ticks_opt o n = match o with None -> () | Some b -> ticks b n
let check_opt = function None -> () | Some b -> check b

let with_phase (b : t) (p : string) (f : unit -> 'a) : 'a =
  let saved = b.phase in
  b.phase <- p;
  Fun.protect ~finally:(fun () -> b.phase <- saved) f

let run (b : t) ~(phase : string) (f : unit -> 'a) : ('a, exhaustion) result =
  b.phase <- phase;
  match f () with v -> Ok v | exception Exhausted e -> Error e

let run_opt (o : t option) ~(phase : string) (f : unit -> 'a) :
    ('a, exhaustion) result =
  match o with
  | None -> Ok (f ())
  | Some b -> run b ~phase f
