(** Resource budgets: a step counter, a wall-clock deadline, and a
    cooperative cancellation flag shared by every engine hot loop.  See the
    interface for the contract; the implementation keeps {!tick} cheap —
    one atomic decrement and two flag tests on the common path — because it
    sits inside branch-and-bound and enumeration inner loops.

    All counters are {!Atomic.t} so a single budget can be shared by every
    domain of a {!Pool}: concurrent ticks never lose steps, and the total
    number of ticks that return normally never exceeds [max_steps].
    Concurrent domains that have already passed their [steps_done]
    increment when the limit trips can overshoot the recorded [steps_done]
    by at most the number of domains — far below the [clock_stride]
    coarsening the deadline probe already accepts. *)

type exhaustion = { phase : string; steps_done : int }

exception Exhausted of exhaustion

type t = {
  steps_left : int Atomic.t; (* [max_int] means unlimited *)
  step_limited : bool;
  steps_done : int Atomic.t;
  deadline : float option; (* absolute, [Unix.gettimeofday] *)
  clock_probe : int Atomic.t; (* ticks until the next deadline check *)
  cancelled : bool Atomic.t;
  phase : string Atomic.t;
}

(* Checking the clock on every tick would dominate tight loops; probe it
   every [clock_stride] ticks instead.  Deadlines are inherently
   non-deterministic, so the coarsening is harmless — deterministic tests
   use step budgets. *)
let clock_stride = 256

let make ?max_steps ?timeout () : t =
  let steps_left =
    match max_steps with
    | None -> max_int
    | Some n -> if n < 0 then invalid_arg "Budget.make: negative step budget" else n
  in
  {
    steps_left = Atomic.make steps_left;
    step_limited = max_steps <> None;
    steps_done = Atomic.make 0;
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout;
    clock_probe = Atomic.make clock_stride;
    cancelled = Atomic.make false;
    phase = Atomic.make "start";
  }

let unlimited () : t = make ()
let of_steps (n : int) : t = make ~max_steps:n ()
let of_timeout (seconds : float) : t = make ~timeout:seconds ()
let is_limited (b : t) : bool = b.step_limited || b.deadline <> None
let steps_done (b : t) : int = Atomic.get b.steps_done

let remaining_steps (b : t) : int option =
  if b.step_limited then Some (Atomic.get b.steps_left) else None

let phase (b : t) : string = Atomic.get b.phase
let set_phase (b : t) (p : string) : unit = Atomic.set b.phase p
let cancel (b : t) : unit = Atomic.set b.cancelled true
let is_cancelled (b : t) : bool = Atomic.get b.cancelled

let exhaust (b : t) : 'a =
  raise
    (Exhausted { phase = Atomic.get b.phase; steps_done = Atomic.get b.steps_done })

let past_deadline (b : t) : bool =
  match b.deadline with
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let check (b : t) : unit =
  if Atomic.get b.cancelled || Atomic.get b.steps_left <= 0 || past_deadline b
  then exhaust b

let tick (b : t) : unit =
  Atomic.incr b.steps_done;
  if Atomic.get b.cancelled then exhaust b;
  if b.step_limited then begin
    (* fetch-and-add makes the allowance exact under concurrency: exactly
       [max_steps] ticks observe a positive pre-decrement value and return
       normally, no matter how many domains share the budget *)
    let before = Atomic.fetch_and_add b.steps_left (-1) in
    if before <= 1 then exhaust b
  end;
  if b.deadline <> None then begin
    let probe = Atomic.fetch_and_add b.clock_probe (-1) in
    if probe <= 1 then begin
      Atomic.set b.clock_probe clock_stride;
      if past_deadline b then exhaust b
    end
  end

let ticks (b : t) (n : int) : unit =
  if n > 0 then begin
    ignore (Atomic.fetch_and_add b.steps_done (n - 1));
    if b.step_limited then ignore (Atomic.fetch_and_add b.steps_left (-(n - 1)));
    tick b
  end

let tick_opt = function None -> () | Some b -> tick b
let ticks_opt o n = match o with None -> () | Some b -> ticks b n
let check_opt = function None -> () | Some b -> check b

let with_phase (b : t) (p : string) (f : unit -> 'a) : 'a =
  let saved = Atomic.get b.phase in
  Atomic.set b.phase p;
  Fun.protect ~finally:(fun () -> Atomic.set b.phase saved) f

let run (b : t) ~(phase : string) (f : unit -> 'a) : ('a, exhaustion) result =
  Atomic.set b.phase phase;
  match f () with v -> Ok v | exception Exhausted e -> Error e

let run_opt (o : t option) ~(phase : string) (f : unit -> 'a) :
    ('a, exhaustion) result =
  match o with
  | None -> Ok (f ())
  | Some b -> run b ~phase f
