(** A persistent work-stealing OCaml 5 domain pool for data-parallel
    engine loops.

    Every engine the paper states fans out over independent terms — the
    [2^ℓ] inclusion–exclusion subsets, Karp–Luby sample chunks, naive
    assignment sweeps, root branches of the treewidth search — and each
    term is an independent pure computation over immutable structures, so
    they parallelise across domains without locking.  A {!t} fixes the
    worker count once (CLI [--jobs] / [UCQC_JOBS]); engines thread it as
    [?pool] the same way they thread [?budget].

    Worker domains are {e resident}: they are spawned on first demand,
    parked on a process-global free-list between runs, and reused by
    every subsequent {!run} of every pool in the process.  A [run]
    borrows [workers − 1] parked domains (spawning only the shortfall)
    and returns them before it completes, so steady-state parallel
    execution spawns no domains at all — the per-call [Domain.spawn]
    cost that used to dominate millisecond-scale workloads is gone.

    Contracts:
    - [jobs = 1] (and an absent [?pool]) is a {e strict sequential
      fallback}: work runs in the calling domain, in index order, with no
      domain spawned — bit-for-bit identical to the pre-pool behaviour,
      including the order of {!Budget.tick}s.
    - Reduction order is deterministic: {!map} fills a slot per input
      index and {!fold} combines the slots left-to-right, so the result
      never depends on domain scheduling (only the {e exhaustion point} of
      a shared budget does).
    - Work is distributed through per-worker queues with steal-on-empty:
      each worker drains its own queue, then steals from the others
      round-robin, so uneven per-item cost load-balances without a
      single contended cursor.  When [?costs] is given, items are
      bin-packed largest-first (deterministic LPT) so the most expensive
      term starts immediately instead of serialising the tail.
    - Cancellation is cooperative: the first exception in any worker
      {!Budget.cancel}s the shared budget (waking every budget-ticking
      worker) and poisons the run — workers re-check the poison flag
      before {e every item}, not just every chunk; after the run
      quiesces, the first exception is re-raised in the caller with its
      original backtrace, so {!Budget.run} engine boundaries behave
      exactly as in sequential code. *)

type t

(** [create ~jobs ()] is a pool of [jobs] workers; values below 1 are
    clamped to 1 (sequential).  Creation is free — no domain is spawned
    until a [run] actually needs one, and domains outlive the value. *)
val create : jobs:int -> unit -> t

(** [sequential] is [create ~jobs:1 ()]. *)
val sequential : t

val jobs : t -> int

(** [validate_jobs s] parses a jobs count: a positive decimal integer.
    Rejects 0, negative values and garbage with a human-readable message
    — the shared validation behind [--jobs], [UCQC_JOBS] and the tools. *)
val validate_jobs : string -> (int, string) result

(** [jobs_of_env_result ()] reads [UCQC_JOBS] through {!validate_jobs}
    ([Ok 1] when unset).  Callers map [Error] to a usage error
    (exit 64). *)
val jobs_of_env_result : unit -> (int, string) result

(** [jobs_of_env ()] is the exception-raising variant of
    {!jobs_of_env_result}.
    @raise Invalid_argument on a malformed or non-positive [UCQC_JOBS]. *)
val jobs_of_env : unit -> int

(** [of_env ()] is [create ~jobs:(jobs_of_env ()) ()]. *)
val of_env : unit -> t

(** [run pool ?budget ?costs ~f n] evaluates [f i] for [0 ≤ i < n] on the
    pool's workers and returns the results in index order.  The building
    block under {!map} / {!fold}.  [costs i] is a nonnegative relative
    cost estimate for item [i], used only for initial largest-first
    placement — it never changes the result, and NaN or negative
    estimates are treated as 0. *)
val run :
  t -> ?budget:Budget.t -> ?costs:(int -> float) -> f:(int -> 'a) -> int ->
  'a array

(** [map pool ?budget ?costs f arr] is [Array.map f arr] evaluated on the
    pool; [costs] estimates the cost of applying [f] to one element. *)
val map :
  t -> ?budget:Budget.t -> ?costs:('a -> float) -> ('a -> 'b) -> 'a array ->
  'b array

(** [fold pool ?budget ?costs ~f ~combine ~init arr] maps [f] on the pool
    and combines the results {e sequentially, left-to-right} — the
    deterministic-reduction contract. *)
val fold :
  t ->
  ?budget:Budget.t ->
  ?costs:('a -> float) ->
  f:('a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc

(** [map_opt pool ?budget ?costs f arr] is {!map} when a pool is present
    and the plain sequential map otherwise — the engine-side convenience
    mirroring {!Budget.tick_opt}. *)
val map_opt :
  t option -> ?budget:Budget.t -> ?costs:('a -> float) -> ('a -> 'b) ->
  'a array -> 'b array

val fold_opt :
  t option ->
  ?budget:Budget.t ->
  ?costs:('a -> float) ->
  f:('a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc

(** [is_parallel pool] is [true] iff the pool would actually use worker
    domains ([jobs > 1]).  Engines use it to keep their sequential hot
    path untouched and to skip cost estimation when it cannot help. *)
val is_parallel : t option -> bool

(** [count_range pool ?budget ~total pred] counts the indices in
    [0 .. total − 1] satisfying [pred], sweeping near-equal index ranges
    on the pool — the backend of the parallel naive assignment sweeps.
    Range bounds come from {!partition}, so [total] may be any value up
    to [max_int]. *)
val count_range : t -> ?budget:Budget.t -> total:int -> (int -> bool) -> int

(** [partition ~total ~parts] splits [0 .. total − 1] into at most
    [parts] contiguous half-open [(lo, hi)] ranges of near-equal size
    (sizes differ by at most 1), in ascending order.  Overflow-safe for
    [total] up to [max_int] — the bounds are computed by division first,
    never by a [total * r] product. *)
val partition : total:int -> parts:int -> (int * int) array

(** {2 Introspection and shutdown}

    Test and operations hooks over the process-global worker registry. *)

(** [spawn_count ()] is the number of worker domains ever spawned by the
    registry.  A steady-state parallel workload holds this constant —
    the domain-leak regression tests assert exactly that. *)
val spawn_count : unit -> int

(** [idle_count ()] is the number of parked worker domains currently on
    the free-list. *)
val idle_count : unit -> int

(** [shutdown_all ()] stops and joins every {e parked} worker domain.
    Safe only when no [run] is in flight (workers borrowed by a live run
    are not on the free-list and are left alone).  Subsequent runs
    simply spawn fresh workers, so this is an optional courtesy for
    process teardown, not an obligation. *)
val shutdown_all : unit -> unit
