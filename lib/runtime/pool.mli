(** A fixed-size OCaml 5 domain pool for data-parallel engine loops.

    Every engine the paper states fans out over independent terms — the
    [2^ℓ] inclusion–exclusion subsets, Karp–Luby sample chunks, naive
    assignment sweeps, root branches of the treewidth search — and each
    term is an independent pure computation over immutable structures, so
    they parallelise across domains without locking.  A {!t} fixes the
    worker count once (CLI [--jobs] / [UCQC_JOBS]); engines thread it as
    [?pool] the same way they thread [?budget].

    Contracts:
    - [jobs = 1] (and an absent [?pool]) is a {e strict sequential
      fallback}: work runs in the calling domain, in index order, with no
      domain spawned — bit-for-bit identical to the pre-pool behaviour,
      including the order of {!Budget.tick}s.
    - Reduction order is deterministic: {!map} fills a slot per input
      index and {!fold} combines the slots left-to-right, so the result
      never depends on domain scheduling (only the {e exhaustion point} of
      a shared budget does).
    - Work is distributed through a chunked queue (an atomic next-chunk
      cursor), so uneven per-item cost load-balances instead of stalling
      on a static partition.
    - Cancellation is cooperative: the first exception in any worker
      {!Budget.cancel}s the shared budget (waking every budget-ticking
      worker) and poisons the queue; after all domains join, the first
      exception is re-raised in the caller with its original backtrace, so
      {!Budget.run} engine boundaries behave exactly as in sequential
      code. *)

type t

(** [create ~jobs ()] is a pool of [jobs] workers; values below 1 are
    clamped to 1 (sequential). *)
val create : jobs:int -> unit -> t

(** [sequential] is [create ~jobs:1 ()]. *)
val sequential : t

val jobs : t -> int

(** [validate_jobs s] parses a jobs count: a positive decimal integer.
    Rejects 0, negative values and garbage with a human-readable message
    — the shared validation behind [--jobs], [UCQC_JOBS] and the tools. *)
val validate_jobs : string -> (int, string) result

(** [jobs_of_env_result ()] reads [UCQC_JOBS] through {!validate_jobs}
    ([Ok 1] when unset).  Callers map [Error] to a usage error
    (exit 64). *)
val jobs_of_env_result : unit -> (int, string) result

(** [jobs_of_env ()] is the exception-raising variant of
    {!jobs_of_env_result}.
    @raise Invalid_argument on a malformed or non-positive [UCQC_JOBS]. *)
val jobs_of_env : unit -> int

(** [of_env ()] is [create ~jobs:(jobs_of_env ()) ()]. *)
val of_env : unit -> t

(** [run pool ?budget ~f n] evaluates [f i] for [0 ≤ i < n] on the pool's
    domains and returns the results in index order.  The building block
    under {!map} / {!fold}. *)
val run : t -> ?budget:Budget.t -> f:(int -> 'a) -> int -> 'a array

(** [map pool ?budget f arr] is [Array.map f arr] evaluated on the pool. *)
val map : t -> ?budget:Budget.t -> ('a -> 'b) -> 'a array -> 'b array

(** [fold pool ?budget ~f ~combine ~init arr] maps [f] on the pool and
    combines the results {e sequentially, left-to-right} — the
    deterministic-reduction contract. *)
val fold :
  t ->
  ?budget:Budget.t ->
  f:('a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc

(** [map_opt pool ?budget f arr] is {!map} when a pool is present and the
    plain sequential map otherwise — the engine-side convenience mirroring
    {!Budget.tick_opt}. *)
val map_opt : t option -> ?budget:Budget.t -> ('a -> 'b) -> 'a array -> 'b array

val fold_opt :
  t option ->
  ?budget:Budget.t ->
  f:('a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc

(** [is_parallel pool] is [true] iff the pool would actually spawn
    domains ([jobs > 1]).  Engines use it to keep their sequential hot
    path untouched. *)
val is_parallel : t option -> bool

(** [count_range pool ?budget ~total pred] counts the indices in
    [0 .. total − 1] satisfying [pred], sweeping near-equal index ranges
    on the pool — the chunked backend of the parallel naive assignment
    sweeps. *)
val count_range : t -> ?budget:Budget.t -> total:int -> (int -> bool) -> int
