(** Resource budgets for the solvers.

    Every algorithm the paper states has worst-case exponential blowup by
    design — exact treewidth branch and bound, the [2^ℓ] CQ expansion,
    inclusion-exclusion over disjunct subsets, naive enumeration — so a
    long-running service cannot call them unguarded.  A {!t} carries a
    step allowance, an optional wall-clock deadline, and a cooperative
    cancellation flag; engines call {!tick} (or {!ticks}) from their hot
    loops and the budget raises the dedicated {!Exhausted} signal, which
    must be caught only at engine boundaries ({!run} is that boundary).

    Step budgets are fully deterministic: the same input and the same
    [of_steps n] budget always exhaust at the same point, which is what
    the fault-injection tests rely on (no sleeps, no wall-clock).

    Budgets are domain-safe: every counter is an {!Atomic.t}, so one
    budget can be shared by all workers of a {!Pool}.  Accounting stays
    exact — at most [max_steps] ticks ever return normally — and
    concurrent ticking can overshoot the recorded [steps_done] by at most
    the number of domains (far below the 256-tick deadline-probe stride).
    Under a shared budget the {e exhaustion point} is scheduling-dependent
    when more than one domain runs; single-domain runs keep the
    deterministic contract bit-for-bit. *)

type t

(** What was being computed when the budget ran out. *)
type exhaustion = { phase : string; steps_done : int }

(** Raised by {!tick}/{!check} on an exhausted or cancelled budget.  Catch
    it only at an engine boundary (see {!run}); library code must let it
    propagate so the caller can degrade gracefully. *)
exception Exhausted of exhaustion

(** [unlimited ()] never exhausts (but can still be {!cancel}led). *)
val unlimited : unit -> t

(** [of_steps n] exhausts after [n] ticks — the deterministic
    fault-injection budget used by the tests. *)
val of_steps : int -> t

(** [of_timeout seconds] exhausts [seconds] of wall-clock time from now. *)
val of_timeout : float -> t

(** [make ?max_steps ?timeout ()] combines both limits (whichever trips
    first). *)
val make : ?max_steps:int -> ?timeout:float -> unit -> t

val is_limited : t -> bool
val steps_done : t -> int

(** [remaining_steps b] is [None] when the step allowance is unlimited. *)
val remaining_steps : t -> int option

val phase : t -> string
val set_phase : t -> string -> unit

(** [cancel b] trips the cooperative cancellation flag: the next
    {!tick}/{!check} raises {!Exhausted}. *)
val cancel : t -> unit

val is_cancelled : t -> bool

(** [tick b] consumes one step.
    @raise Exhausted when the budget is spent, past its deadline, or
    cancelled. *)
val tick : t -> unit

(** [ticks b n] consumes [n] steps at once (cost-proportional accounting
    for engines that materialise [n]-row intermediates). *)
val ticks : t -> int -> unit

(** [check b] re-checks limits without consuming a step. *)
val check : t -> unit

(** Optional-budget conveniences for engines threading [?budget]. *)
val tick_opt : t option -> unit

val ticks_opt : t option -> int -> unit
val check_opt : t option -> unit

(** [with_phase b phase f] runs [f] with the phase label swapped in,
    restoring the previous label afterwards (also on exceptions). *)
val with_phase : t -> string -> (unit -> 'a) -> 'a

(** [run b ~phase f] is the engine boundary: runs [f] under [phase] and
    converts an {!Exhausted} escape into [Error].  Other exceptions
    propagate. *)
val run : t -> phase:string -> (unit -> 'a) -> ('a, exhaustion) result

(** [run_opt budget ~phase f] is {!run} when a budget is present and
    [Ok (f ())] otherwise. *)
val run_opt :
  t option -> phase:string -> (unit -> 'a) -> ('a, exhaustion) result
