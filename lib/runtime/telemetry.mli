(** Structured tracing and metrics for the solver stack.

    The paper's pipelines are multi-phase by construction — treewidth
    branch and bound inside the [2^ℓ] expansion inside a META decision,
    Karp–Luby chunks inside a degraded count — and a budget alone only
    says {e that} steps were consumed, not {e where}.  This module records
    nested, wall-clock-timed {e spans} with structured attributes and
    budget-step deltas, plus a process-wide metrics registry (counters,
    gauges, log-scale histograms), and exports them as a Chrome-trace /
    Perfetto JSON file, a flat metrics JSON dump, or an end-of-run
    summary table.

    {b Cost model.}  Telemetry is off by default.  Every entry point
    first reads one atomic flag; when the flag is clear, {!with_span}
    tail-calls its thunk and the metric operations return without
    allocating, so instrumented hot loops keep their sequential and
    allocation behaviour bit-for-bit.  Attributes are passed as a thunk
    and are only forced when a span is actually recorded.

    {b Domain safety.}  Each domain appends to its own buffer
    (domain-local storage, registered globally at first use); no lock is
    taken on the recording path.  Exporters merge the per-domain buffers
    after the parallel region has joined — the same discipline {!Pool}
    already imposes — so traces taken under [--jobs N] are race-free and
    B/E-balanced per domain.  Metric cells are {!Atomic.t}, so counts
    are exact under concurrency and independent of scheduling. *)

(** {1 Lifecycle} *)

(** [enable ?record ()] turns telemetry on.  With [record = false] spans
    maintain the per-domain name stack (for crash context, see
    {!current_stack}) but append no events — the mode long fuzzing runs
    use to avoid unbounded buffers.  Default [record = true]. *)
val enable : ?record:bool -> unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [reset ()] clears every per-domain event buffer and zeroes every
    registered metric (the registry itself is kept: interned counters
    stay valid). *)
val reset : unit -> unit

(** {1 Spans and events} *)

(** Attribute values attached to spans and instant events. *)
type attr = S of string | I of int | F of float | B of bool

(** [with_span ?attrs ?budget name f] runs [f] inside a span.  When
    telemetry is off this is exactly [f ()].  When on, the span records
    monotonic begin/end timestamps, the recording domain's id, [attrs]
    (forced once, at span begin), and — when [budget] is given — the
    {!Budget.steps_done} delta consumed while the span was open.  The
    span is closed on both normal and exceptional exit, so traces stay
    balanced even when {!Budget.Exhausted} cuts through [f]. *)
val with_span :
  ?attrs:(unit -> (string * attr) list) ->
  ?budget:Budget.t ->
  string ->
  (unit -> 'a) ->
  'a

(** [event ?attrs name] records an instant (zero-duration) event — e.g.
    the [runner.degraded] marker emitted when a fallback fires. *)
val event : ?attrs:(unit -> (string * attr) list) -> string -> unit

(** [current_stack ()] is the names of the spans currently open in the
    calling domain, innermost first.  Empty when telemetry is off.  The
    fuzzer attaches this to crash reports. *)
val current_stack : unit -> string list

(** {1 Metrics} *)

type counter
type gauge
type histogram

(** [counter name] interns (or retrieves) the counter [name].  Create
    counters once at module initialisation; {!add}/{!incr} on the hot
    path are then one atomic flag read plus one fetch-and-add, with no
    allocation in either mode. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit

(** [counter_value c] reads the current count (0 when never enabled). *)
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit

(** [histogram name] interns a base-2 log-scale histogram: [observe]
    drops a value into the bucket of its binary exponent (bucket [b]
    covers [[2^(b-32), 2^(b-31))]), so nine decades of latencies or
    sizes fit in 64 fixed buckets with no per-observation allocation. *)
val histogram : string -> histogram

val observe : histogram -> float -> unit

(** {1 Metric snapshots}

    Read-side API for live exporters (the server's [/metrics] endpoint):
    point-in-time copies of the registered metric cells.  Safe to call
    from any thread at any time; values are read one atomic at a time,
    so a histogram snapshot racing an in-flight [observe] can be off by
    that single observation — monitoring-grade, not transactional. *)

(** Point-in-time copy of one histogram: the 64 base-2 log bucket counts
    (bucket [b] covers [[2^(b-32), 2^(b-31))]), total observation count,
    and the sum of observed values. *)
type histogram_snapshot = {
  hs_counts : int array;
  hs_count : int;
  hs_sum : float;
}

val histogram_snapshot : histogram -> histogram_snapshot

(** Every registered counter / gauge / histogram, sorted by name.  The
    enumeration takes the registry lock (interning is rare); the reads
    themselves are lock-free. *)
val counters_snapshot : unit -> (string * int) list

val gauges_snapshot : unit -> (string * float) list
val histograms_snapshot : unit -> (string * histogram_snapshot) list

(** {1 Aggregation and export} *)

(** Per-span-name aggregate over all domain buffers: number of completed
    spans, total (inclusive) wall nanoseconds, and total budget steps
    attributed to spans of this name. *)
type span_stat = {
  sname : string;
  calls : int;
  total_ns : int64;
  steps : int;
}

(** [span_stats ()] merges the per-domain buffers (call only after
    parallel regions have joined) and aggregates by span name.  Sorted
    by descending total time. *)
val span_stats : unit -> span_stat list

(** [wall_window ()] is the [(first, last)] monotonic timestamps over
    every recorded event, or [None] when nothing was recorded. *)
val wall_window : unit -> (int64 * int64) option

(** [export_chrome_trace oc] writes the merged buffers as Chrome
    [chrome://tracing] / Perfetto JSON ([{"traceEvents": [...]}]) with
    balanced ["B"]/["E"] pairs per domain, microsecond timestamps
    relative to {!enable} time, span attributes under ["args"], and the
    per-span budget-step delta on the ["E"] event. *)
val export_chrome_trace : out_channel -> unit

(** [export_metrics oc] writes every registered counter, gauge and
    histogram as a flat JSON object. *)
val export_metrics : out_channel -> unit

(** [print_summary oc] writes the end-of-run table: wall window, span
    coverage of the window by top-level spans, one row per span name
    (calls, total ms, steps), and the non-zero counters. *)
val print_summary : out_channel -> unit
