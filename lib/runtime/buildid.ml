(** Build identity.  See the interface for the contract. *)

let version = "1.0.0"

let memo : string option ref = ref None
let memo_lock = Mutex.create ()

let compute () =
  let from_cmd () =
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when String.length line >= 7 -> Some (String.trim line)
    | _ -> None
  in
  match try from_cmd () with _ -> None with Some c -> c | None -> "unknown"

let git_commit () =
  Mutex.protect memo_lock (fun () ->
      match !memo with
      | Some c -> c
      | None ->
          let c = compute () in
          memo := Some c;
          c)
