(** Minimal JSON reader + Chrome-trace validator.

    CI needs to check that an emitted [--trace] file is well-formed and
    that every domain's ["B"]/["E"] events balance, without assuming a
    Python or jq on the runner.  This is a small recursive-descent JSON
    parser — enough for machine-generated traces, not a general-purpose
    library (no surrogate-pair decoding; [\uXXXX] escapes are kept
    verbatim). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [parse s] parses the whole string as one JSON value.
    @raise Failure with a position-tagged message on malformed input. *)
val parse : string -> t

val parse_file : string -> t

(** [member k v] is the value bound to key [k] when [v] is an object. *)
val member : string -> t -> t option

(** [to_string v] emits compact JSON: strings escaped per RFC 8259,
    integral numbers (below [1e15]) without a fractional part.
    [parse (to_string v) = v] for every value this module can produce.
    Shared by the SARIF and [check --format json] emitters so the CLI has
    exactly one JSON writer. *)
val to_string : t -> string

(** [validate_chrome_trace v] checks that [v] is a Chrome-trace object:
    has a ["traceEvents"] array; every event is an object with a string
    ["ph"] and a string ["name"]; every ["B"]/["E"]/["i"] event has
    numeric ["ts"] and ["tid"]; and per [tid] the ["B"]/["E"] events
    nest — no ["E"] without an open ["B"], names match LIFO, and nothing
    is left open at the end.  Returns the number of events checked, or a
    human-readable description of the first violation. *)
val validate_chrome_trace : t -> (int, string) result
