type t =
  | Parse_error of {
      line : int;
      col : int;
      end_line : int;
      end_col : int;
      msg : string;
    }
  | Arity_mismatch of { rel : string; expected : int; got : int }
  | Budget_exhausted of { phase : string; steps_done : int }
  | Unsupported of string
  | Internal of string

let parse_error_at ~line ~col msg =
  Parse_error { line; col; end_line = line; end_col = col; msg }

exception Error of t

let of_exhaustion (e : Budget.exhaustion) : t =
  Budget_exhausted { phase = e.Budget.phase; steps_done = e.Budget.steps_done }

let to_string = function
  | Parse_error { line; col; msg; _ } ->
      (* the legacy message format names only the start of the span *)
      Printf.sprintf "parse error at line %d, column %d: %s" line col msg
  | Arity_mismatch { rel; expected; got } ->
      Printf.sprintf "relation %s used with arities %d and %d" rel expected got
  | Budget_exhausted { phase; steps_done } ->
      Printf.sprintf "budget exhausted in phase %s after %d steps" phase
        steps_done
  | Unsupported msg -> Printf.sprintf "unsupported: %s" msg
  | Internal msg -> Printf.sprintf "internal error: %s" msg

let pp (fmt : Format.formatter) (e : t) : unit =
  Format.pp_print_string fmt (to_string e)

let exit_code = function
  | Parse_error _ | Arity_mismatch _ | Unsupported _ -> 65
  | Budget_exhausted _ -> 124
  | Internal _ -> 70

let guard (f : unit -> 'a) : ('a, t) result =
  match f () with
  | v -> Ok v
  | exception Error e -> Error e
  | exception Budget.Exhausted e -> Error (of_exhaustion e)
  | exception Invalid_argument msg -> Error (Unsupported msg)
  | exception Failure msg -> Error (Internal msg)
