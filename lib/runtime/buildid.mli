(** Build identity: the version string and the git commit the binary was
    built from.  The bench [--json] stamp and the server's [ping]
    response both report these so two artifacts (a benchmark file, a
    probe reply) can be traced to the code that produced them. *)

(** The release version, single source of truth for the CLI's
    [--version] and the server's [ping] reply. *)
val version : string

(** [git_commit ()] is the full commit hash of [HEAD], or ["unknown"]
    when the binary runs outside a git checkout.  Shells out to [git]
    on first call; memoized (mutex-protected, safe from any thread)
    afterwards.  Call once at startup if the first use is on a latency
    path. *)
val git_commit : unit -> string
