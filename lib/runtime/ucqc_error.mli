(** Structured errors for every engine entry point.

    User input (malformed query/database files, arity clashes) and
    resource exhaustion must never surface as untyped [Failure]/
    [Invalid_argument] escapes: the CLI and any embedding service need to
    render them, pick an exit code, and decide whether a degraded result
    is acceptable.  [Result]-based engine wrappers ({!Runner} in the core
    library) carry values of this type. *)

type t =
  | Parse_error of {
      line : int;
      col : int;
      end_line : int;
      end_col : int;
      msg : string;
    }
      (** malformed query or database text; the span is 1-based and
          end-exclusive ([end_line]/[end_col] point one past the last
          offending character; a zero-width span marks a point, e.g.
          end-of-input) *)
  | Arity_mismatch of { rel : string; expected : int; got : int }
      (** a relation symbol used with two different arities *)
  | Budget_exhausted of { phase : string; steps_done : int }
      (** a {!Budget.t} ran out and no fallback was allowed *)
  | Unsupported of string
      (** the input is outside the algorithm's domain (e.g. META on a
          quantified union) *)
  | Internal of string
      (** an invariant of the library failed — always a bug report *)

(** [parse_error_at ~line ~col msg] is a zero-width-span parse error —
    the convenience constructor for callers with a point position only. *)
val parse_error_at : line:int -> col:int -> string -> t

(** Exception carrier for contexts that cannot return [Result]. *)
exception Error of t

(** [of_exhaustion e] converts a budget exhaustion record. *)
val of_exhaustion : Budget.exhaustion -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Exit code for the CLI: 65 ([EX_DATAERR]) for parse/arity/unsupported
    errors, 124 for budget exhaustion without fallback, 70
    ([EX_SOFTWARE]) for internal invariant failures.  Success codes (0
    exact, 2 degraded) are chosen by the caller from the result tag. *)
val exit_code : t -> int

(** [guard f] runs [f], converting [Error]-carried values, budget
    exhaustion, and stray [Invalid_argument]/[Failure] escapes into
    [Result] errors. *)
val guard : (unit -> 'a) -> ('a, t) result
