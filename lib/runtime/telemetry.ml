(** Structured tracing + metrics.  See the interface for the contract.

    Recording path: one atomic flag read gates everything; per-domain
    event buffers live in domain-local storage and are registered in a
    mutex-protected global list at first use, so recording itself never
    takes a lock.  Timestamps come from the monotonic clock bechamel
    ships (CLOCK_MONOTONIC, nanoseconds, [@@noalloc]). *)

type attr = S of string | I of int | F of float | B of bool

type event =
  | Begin of {
      name : string;
      ts : int64;
      attrs : (string * attr) list;
      steps : int; (* Budget.steps_done at open, 0 without a budget *)
    }
  | End of { name : string; ts : int64; steps : int }
  | Mark of { name : string; ts : int64; attrs : (string * attr) list }

type dstate = {
  tid : int;
  mutable events : event list; (* newest first; reversed at export *)
  mutable stack : string list; (* open span names, innermost first *)
}

(* ------------------------------------------------------------------ *)
(* Global state                                                       *)
(* ------------------------------------------------------------------ *)

let enabled_flag = Atomic.make false
let record_flag = Atomic.make true
let epoch = Atomic.make 0L (* monotonic ns at [enable] — trace time zero *)
let registry : dstate list ref = ref []
let registry_lock = Mutex.create ()

let dkey : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { tid = (Domain.self () :> int); events = []; stack = [] } in
      Mutex.protect registry_lock (fun () -> registry := s :: !registry);
      s)

let now () : int64 = Monotonic_clock.now ()
let enabled () = Atomic.get enabled_flag

let enable ?(record = true) () =
  Atomic.set record_flag record;
  Atomic.set epoch (now ());
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let force_attrs = function None -> [] | Some f -> f ()

let with_span ?attrs ?(budget : Budget.t option) (name : string)
    (f : unit -> 'a) : 'a =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let s = Domain.DLS.get dkey in
    let record = Atomic.get record_flag in
    let steps_at () =
      match budget with None -> 0 | Some b -> Budget.steps_done b
    in
    if record then
      s.events <-
        Begin { name; ts = now (); attrs = force_attrs attrs; steps = steps_at () }
        :: s.events;
    s.stack <- name :: s.stack;
    Fun.protect
      ~finally:(fun () ->
        (match s.stack with _ :: tl -> s.stack <- tl | [] -> ());
        if record then
          s.events <- End { name; ts = now (); steps = steps_at () } :: s.events)
      f
  end

let event ?attrs (name : string) : unit =
  if Atomic.get enabled_flag && Atomic.get record_flag then begin
    let s = Domain.DLS.get dkey in
    s.events <- Mark { name; ts = now (); attrs = force_attrs attrs } :: s.events
  end

let current_stack () : string list =
  if not (Atomic.get enabled_flag) then []
  else (Domain.DLS.get dkey).stack

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

type counter = { cname : string; cell : int Atomic.t }
type gauge = { gname : string; gcell : float Atomic.t }

type histogram = {
  hname : string;
  buckets : int Atomic.t array; (* 64 base-2 log buckets *)
  hcount : int Atomic.t;
  hsum_micro : int Atomic.t; (* sum scaled by 1e6, fetch-and-add friendly *)
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let metrics_lock = Mutex.create ()

let intern (tbl : (string, 'a) Hashtbl.t) (name : string) (make : unit -> 'a) :
    'a =
  Mutex.protect metrics_lock (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some v -> v
      | None ->
          let v = make () in
          Hashtbl.add tbl name v;
          v)

let counter (name : string) : counter =
  intern counters name (fun () -> { cname = name; cell = Atomic.make 0 })

let add (c : counter) (n : int) : unit =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)

let incr (c : counter) : unit = add c 1
let counter_value (c : counter) : int = Atomic.get c.cell

let gauge (name : string) : gauge =
  intern gauges name (fun () -> { gname = name; gcell = Atomic.make 0. })

let set_gauge (g : gauge) (v : float) : unit =
  if Atomic.get enabled_flag then Atomic.set g.gcell v

let histogram (name : string) : histogram =
  intern histograms name (fun () ->
      {
        hname = name;
        buckets = Array.init 64 (fun _ -> Atomic.make 0);
        hcount = Atomic.make 0;
        hsum_micro = Atomic.make 0;
      })

(* bucket of the binary exponent: bucket b covers [2^(b-32), 2^(b-31)) *)
let bucket_of (v : float) : int =
  if v <= 0. || Float.is_nan v then 0
  else begin
    let _, e = Float.frexp v in
    max 0 (min 63 (e + 31))
  end

let observe (h : histogram) (v : float) : unit =
  if Atomic.get enabled_flag then begin
    Atomic.incr h.buckets.(bucket_of v);
    Atomic.incr h.hcount;
    ignore (Atomic.fetch_and_add h.hsum_micro (int_of_float (v *. 1e6)))
  end

(* ------------------------------------------------------------------ *)
(* Metric snapshots                                                   *)
(* ------------------------------------------------------------------ *)

type histogram_snapshot = {
  hs_counts : int array;
  hs_count : int;
  hs_sum : float;
}

(* Buckets and count are read one atomic at a time, so a snapshot taken
   while observers are running can be off by the in-flight observation —
   fine for monitoring, which is the only caller. *)
let histogram_snapshot (h : histogram) : histogram_snapshot =
  {
    hs_counts = Array.map Atomic.get h.buckets;
    hs_count = Atomic.get h.hcount;
    hs_sum = float_of_int (Atomic.get h.hsum_micro) /. 1e6;
  }

let sorted_bindings (tbl : (string, 'a) Hashtbl.t) : (string * 'a) list =
  Mutex.protect metrics_lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

let counters_snapshot () : (string * int) list =
  List.map (fun (name, c) -> (name, Atomic.get c.cell)) (sorted_bindings counters)

let gauges_snapshot () : (string * float) list =
  List.map (fun (name, g) -> (name, Atomic.get g.gcell)) (sorted_bindings gauges)

let histograms_snapshot () : (string * histogram_snapshot) list =
  List.map
    (fun (name, h) -> (name, histogram_snapshot h))
    (sorted_bindings histograms)

(* ------------------------------------------------------------------ *)
(* Reset                                                              *)
(* ------------------------------------------------------------------ *)

let reset () : unit =
  Mutex.protect registry_lock (fun () ->
      List.iter
        (fun s ->
          s.events <- [];
          s.stack <- [])
        !registry);
  Mutex.protect metrics_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.gcell 0.) gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.hcount 0;
          Atomic.set h.hsum_micro 0)
        histograms);
  Atomic.set epoch (now ())

(* ------------------------------------------------------------------ *)
(* Aggregation                                                        *)
(* ------------------------------------------------------------------ *)

(* Snapshot of the per-domain buffers in recording order, taken under
   the registry lock.  Sound only after parallel regions have joined:
   live foreign domains could still be appending, but the pool joins its
   workers before any exporter runs. *)
let snapshot () : (int * event list) list =
  Mutex.protect registry_lock (fun () ->
      List.map (fun s -> (s.tid, List.rev s.events)) !registry)

type span_stat = { sname : string; calls : int; total_ns : int64; steps : int }

(* Walk one domain's events with an open-span stack, firing [on_close]
   for each completed (begin, end) pair.  Buffers are per-domain and
   [with_span] always closes what it opens, so the stack discipline
   holds by construction; stray events are skipped defensively. *)
let fold_spans (events : event list)
    ~(on_close : name:string -> ts0:int64 -> ts1:int64 -> dsteps:int -> unit) :
    unit =
  let stack = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Begin { name; ts; steps; _ } -> stack := (name, ts, steps) :: !stack
      | End { name; ts; steps } -> (
          match !stack with
          | (bname, ts0, steps0) :: tl when bname = name ->
              stack := tl;
              on_close ~name ~ts0 ~ts1:ts ~dsteps:(steps - steps0)
          | _ -> ())
      | Mark _ -> ())
    events

let span_stats () : span_stat list =
  let tbl : (string, span_stat ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (_, events) ->
      fold_spans events ~on_close:(fun ~name ~ts0 ~ts1 ~dsteps ->
          let cell =
            match Hashtbl.find_opt tbl name with
            | Some r -> r
            | None ->
                let r =
                  ref { sname = name; calls = 0; total_ns = 0L; steps = 0 }
                in
                Hashtbl.add tbl name r;
                r
          in
          cell :=
            {
              !cell with
              calls = !cell.calls + 1;
              total_ns = Int64.add !cell.total_ns (Int64.sub ts1 ts0);
              steps = !cell.steps + dsteps;
            }))
    (snapshot ());
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> compare b.total_ns a.total_ns)

let event_ts = function
  | Begin { ts; _ } | End { ts; _ } | Mark { ts; _ } -> ts

let wall_window () : (int64 * int64) option =
  List.fold_left
    (fun acc (_, events) ->
      List.fold_left
        (fun acc ev ->
          let ts = event_ts ev in
          match acc with
          | None -> Some (ts, ts)
          | Some (lo, hi) -> Some (min lo ts, max hi ts))
        acc events)
    None (snapshot ())

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                       *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float (f : float) : string =
  if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" (if Float.is_nan f then 0. else f)
  else Printf.sprintf "%.6g" f

let attr_json = function
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | I i -> string_of_int i
  | F f -> json_float f
  | B b -> if b then "true" else "false"

let args_json (attrs : (string * attr) list) : string =
  String.concat ", "
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) (attr_json v))
       attrs)

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)
(* ------------------------------------------------------------------ *)

(* microseconds since [enable], the unit Chrome traces expect *)
let us_of (ts : int64) : float =
  Int64.to_float (Int64.sub ts (Atomic.get epoch)) /. 1e3

let export_chrome_trace (oc : out_channel) : unit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  let domains = snapshot () in
  List.iter
    (fun (tid, events) ->
      if events <> [] then
        emit
          (Printf.sprintf
             "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": \
              %d, \"args\": {\"name\": \"domain-%d\"}}"
             tid tid))
    domains;
  List.iter
    (fun (tid, events) ->
      (* per-span step deltas need the matching Begin: track open spans *)
      let stack = ref [] in
      List.iter
        (fun ev ->
          match ev with
          | Begin { name; ts; attrs; steps } ->
              stack := steps :: !stack;
              emit
                (Printf.sprintf
                   "{\"name\": \"%s\", \"cat\": \"ucqc\", \"ph\": \"B\", \
                    \"pid\": 1, \"tid\": %d, \"ts\": %.3f%s}"
                   (json_escape name) tid (us_of ts)
                   (if attrs = [] then ""
                    else Printf.sprintf ", \"args\": {%s}" (args_json attrs)))
          | End { name; ts; steps } ->
              let dsteps =
                match !stack with
                | s0 :: tl ->
                    stack := tl;
                    steps - s0
                | [] -> 0
              in
              emit
                (Printf.sprintf
                   "{\"name\": \"%s\", \"ph\": \"E\", \"pid\": 1, \"tid\": \
                    %d, \"ts\": %.3f, \"args\": {\"steps\": %d}}"
                   (json_escape name) tid (us_of ts) dsteps)
          | Mark { name; ts; attrs } ->
              emit
                (Printf.sprintf
                   "{\"name\": \"%s\", \"cat\": \"ucqc\", \"ph\": \"i\", \
                    \"s\": \"g\", \"pid\": 1, \"tid\": %d, \"ts\": %.3f%s}"
                   (json_escape name) tid (us_of ts)
                   (if attrs = [] then ""
                    else Printf.sprintf ", \"args\": {%s}" (args_json attrs))))
        events)
    domains;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  output_string oc (Buffer.contents buf)

let export_metrics (oc : out_channel) : unit =
  let buf = Buffer.create 1024 in
  let snapshot_tbl tbl =
    Mutex.protect metrics_lock (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b))
  in
  Buffer.add_string buf "{\n  \"counters\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (name, c) ->
            Printf.sprintf "\"%s\": %d" (json_escape name) (Atomic.get c.cell))
          (snapshot_tbl counters)));
  Buffer.add_string buf "},\n  \"gauges\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (name, g) ->
            Printf.sprintf "\"%s\": %s" (json_escape name)
              (json_float (Atomic.get g.gcell)))
          (snapshot_tbl gauges)));
  Buffer.add_string buf "},\n  \"histograms\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (name, h) ->
            let buckets =
              Array.to_list h.buckets
              |> List.mapi (fun i b -> (i, Atomic.get b))
              |> List.filter (fun (_, n) -> n > 0)
              |> List.map (fun (i, n) -> Printf.sprintf "[%d, %d]" (i - 32) n)
            in
            Printf.sprintf
              "\"%s\": {\"count\": %d, \"sum\": %s, \"log2_buckets\": [%s]}"
              (json_escape name) (Atomic.get h.hcount)
              (json_float (float_of_int (Atomic.get h.hsum_micro) /. 1e6))
              (String.concat ", " buckets))
          (snapshot_tbl histograms)));
  Buffer.add_string buf "},\n  \"spans\": [";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun st ->
            Printf.sprintf
              "{\"name\": \"%s\", \"calls\": %d, \"wall_ms\": %.3f, \
               \"steps\": %d}"
              (json_escape st.sname) st.calls
              (Int64.to_float st.total_ns /. 1e6)
              st.steps)
          (span_stats ())));
  Buffer.add_string buf "]\n}\n";
  output_string oc (Buffer.contents buf)

(* Coverage: the fraction of the observed wall window inside a top-level
   span of some domain (nesting depth 0 spans only, per domain, summed).
   The acceptance bar — spans covering >= 95% of wall time — is about
   attribution, so only root spans count; children subdivide them. *)
let toplevel_covered_ns () : int64 =
  List.fold_left
    (fun acc (_, events) ->
      let depth = ref 0 in
      let open_ts = ref 0L in
      List.fold_left
        (fun acc ev ->
          match ev with
          | Begin { ts; _ } ->
              if !depth = 0 then open_ts := ts;
              Stdlib.incr depth;
              acc
          | End { ts; _ } ->
              Stdlib.decr depth;
              if !depth = 0 then Int64.add acc (Int64.sub ts !open_ts)
              else if !depth < 0 then (
                depth := 0;
                acc)
              else acc
          | Mark _ -> acc)
        acc events)
    0L (snapshot ())

let print_summary (oc : out_channel) : unit =
  match wall_window () with
  | None -> Printf.fprintf oc "telemetry: no spans recorded\n"
  | Some (lo, hi) ->
      let window_ns = Int64.to_float (Int64.sub hi lo) in
      let covered = Int64.to_float (toplevel_covered_ns ()) in
      let coverage =
        if window_ns <= 0. then 100. else 100. *. covered /. window_ns
      in
      let stats = span_stats () in
      Printf.fprintf oc
        "telemetry: wall %.3f ms, %d span names, top-level span coverage \
         %.1f%%\n"
        (window_ns /. 1e6) (List.length stats) coverage;
      Printf.fprintf oc "  %-38s %9s %12s %12s\n" "span" "calls" "total ms"
        "steps";
      List.iter
        (fun st ->
          Printf.fprintf oc "  %-38s %9d %12.3f %12d\n" st.sname st.calls
            (Int64.to_float st.total_ns /. 1e6)
            st.steps)
        stats;
      let nonzero =
        Mutex.protect metrics_lock (fun () ->
            Hashtbl.fold
              (fun name c acc ->
                let v = Atomic.get c.cell in
                if v <> 0 then (name, v) :: acc else acc)
              counters [])
        |> List.sort compare
      in
      if nonzero <> [] then begin
        Printf.fprintf oc "  %-38s %9s\n" "counter" "value";
        List.iter
          (fun (name, v) -> Printf.fprintf oc "  %-38s %9d\n" name v)
          nonzero
      end
