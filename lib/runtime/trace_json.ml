type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser                                           *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let fail st msg = failwith (Printf.sprintf "json: %s at byte %d" msg st.pos)

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_lit st lit value =
  let n = String.length lit in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = lit
  then (
    st.pos <- st.pos + n;
    value)
  else fail st (Printf.sprintf "expected %s" lit)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if st.pos >= String.length st.src then fail st "unterminated escape";
        let e = st.src.[st.pos] in
        st.pos <- st.pos + 1;
        match e with
        | '"' -> Buffer.add_char buf '"'; go ()
        | '\\' -> Buffer.add_char buf '\\'; go ()
        | '/' -> Buffer.add_char buf '/'; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'u' ->
            (* keep \uXXXX verbatim — traces only use it for control chars *)
            if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
            Buffer.add_string buf "\\u";
            Buffer.add_string buf (String.sub st.src st.pos 4);
            st.pos <- st.pos + 4;
            go ()
        | _ -> fail st "bad escape")
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then (
        st.pos <- st.pos + 1;
        Obj [])
      else
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then (
        st.pos <- st.pos + 1;
        Arr [])
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              Arr (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        items []
  | Some 't' -> parse_lit st "true" (Bool true)
  | Some 'f' -> parse_lit st "false" (Bool false)
  | Some 'n' -> parse_lit st "null" Null
  | Some _ -> Num (parse_number st)

let parse (s : string) : t =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let parse_file (path : string) : t =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let member (k : string) (v : t) : t option =
  match v with Obj kvs -> List.assoc_opt k kvs | _ -> None

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

let add_escaped (buf : Buffer.t) (s : string) : unit =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num (buf : Buffer.t) (f : float) : unit =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let to_string (v : t) : string =
  let buf = Buffer.create 1024 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> add_num buf f
    | Str s -> add_escaped buf s
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            emit item)
          items;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            add_escaped buf k;
            Buffer.add_char buf ':';
            emit item)
          kvs;
        Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Chrome-trace validation                                            *)
(* ------------------------------------------------------------------ *)

let validate_chrome_trace (v : t) : (int, string) result =
  let ( let* ) = Result.bind in
  let* events =
    match member "traceEvents" v with
    | Some (Arr evs) -> Ok evs
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "missing traceEvents key"
  in
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add stacks tid r;
        r
  in
  let check_event i ev =
    let str k =
      match member k ev with
      | Some (Str s) -> Ok s
      | _ -> Error (Printf.sprintf "event %d: missing string %S" i k)
    in
    let num k =
      match member k ev with
      | Some (Num n) -> Ok n
      | _ -> Error (Printf.sprintf "event %d: missing number %S" i k)
    in
    let* ph = str "ph" in
    let* name = str "name" in
    match ph with
    | "M" -> Ok ()
    | "B" | "E" | "i" -> (
        let* _ts = num "ts" in
        let* tid = num "tid" in
        let stack = stack_of (int_of_float tid) in
        match ph with
        | "B" ->
            stack := name :: !stack;
            Ok ()
        | "E" -> (
            match !stack with
            | top :: tl when top = name ->
                stack := tl;
                Ok ()
            | top :: _ ->
                Error
                  (Printf.sprintf
                     "event %d: E %S closes open span %S (tid %d)" i name top
                     (int_of_float tid))
            | [] ->
                Error
                  (Printf.sprintf "event %d: E %S with no open span (tid %d)"
                     i name (int_of_float tid)))
        | _ -> Ok ())
    | other -> Error (Printf.sprintf "event %d: unknown ph %S" i other)
  in
  let* () =
    List.fold_left
      (fun acc (i, ev) ->
        let* () = acc in
        match ev with
        | Obj _ -> check_event i ev
        | _ -> Error (Printf.sprintf "event %d: not an object" i))
      (Ok ())
      (List.mapi (fun i ev -> (i, ev)) events)
  in
  let* () =
    Hashtbl.fold
      (fun tid stack acc ->
        let* () = acc in
        match !stack with
        | [] -> Ok ()
        | open_spans ->
            Error
              (Printf.sprintf "tid %d: %d span(s) left open (innermost %S)"
                 tid (List.length open_spans) (List.hd open_spans)))
      stacks (Ok ())
  in
  Ok (List.length events)
