(** Fixed-size domain pool: chunked work queue, deterministic reduction,
    cooperative cancellation through the shared {!Budget}.  See the
    interface for the contracts. *)

type t = { jobs : int }

let create ~(jobs : int) () : t = { jobs = max 1 jobs }
let sequential : t = { jobs = 1 }
let jobs (p : t) : int = p.jobs

let validate_jobs (s : string) : (int, string) result =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "jobs must be at least 1 (got %d)" n)
  | None ->
      Error (Printf.sprintf "jobs must be a positive integer (got %S)" s)

let jobs_of_env_result () : (int, string) result =
  match Sys.getenv_opt "UCQC_JOBS" with
  | None -> Ok 1
  | Some s when String.trim s = "" -> Ok 1 (* set-but-empty = unset *)
  | Some s -> Result.map_error (fun e -> "UCQC_JOBS: " ^ e) (validate_jobs s)

let jobs_of_env () : int =
  match jobs_of_env_result () with
  | Ok n -> n
  | Error msg -> invalid_arg ("Pool.jobs_of_env: " ^ msg)

let of_env () : t = create ~jobs:(jobs_of_env ()) ()

(* Sequential evaluation in ascending index order.  [Array.init] leaves
   the evaluation order unspecified, and the order is part of the jobs = 1
   contract (budget ticks must fire exactly as in pre-pool code). *)
let init_in_order (n : int) (f : int -> 'a) : 'a array =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

let chunks_c = Telemetry.counter "pool.chunks"

let run (p : t) ?(budget : Budget.t option) ~(f : int -> 'a) (n : int) :
    'a array =
  if n <= 1 || p.jobs <= 1 then init_in_order n f
  else begin
    let workers = min p.jobs n in
    Telemetry.with_span ?budget
      ~attrs:(fun () -> [ ("n", Telemetry.I n); ("workers", Telemetry.I workers) ])
      "pool.run"
    @@ fun () ->
    let results = Array.make n None in
    (* Chunks several times smaller than a fair share load-balance uneven
       per-item costs; the atomic cursor is the whole queue. *)
    let chunk = max 1 (n / (workers * 8)) in
    let next = Atomic.make 0 in
    let failed : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let body () =
      let continue = ref true in
      while !continue do
        if Atomic.get failed <> None then continue := false
        else begin
          let start = Atomic.fetch_and_add next chunk in
          if start >= n then continue := false
          else begin
            Telemetry.incr chunks_c;
            let stop = min n (start + chunk) in
            try
              for i = start to stop - 1 do
                results.(i) <- Some (f i)
              done
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              if Atomic.compare_and_set failed None (Some (e, bt)) then
                (* cooperative cancellation: wake every worker that ticks
                   the shared budget; pure workers notice [failed] at
                   their next chunk *)
                Option.iter Budget.cancel budget;
              continue := false
          end
        end
      done
    in
    (* the worker span makes per-domain utilisation visible in the trace:
       the gap between a domain's [pool.worker] span and its parent
       [pool.run] span is queue/join wait *)
    let worker () = Telemetry.with_span "pool.worker" body in
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    (* the calling domain is the last worker — never idle *)
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map (p : t) ?budget (f : 'a -> 'b) (arr : 'a array) : 'b array =
  run p ?budget ~f:(fun i -> f arr.(i)) (Array.length arr)

let fold (p : t) ?budget ~(f : 'a -> 'b) ~(combine : 'acc -> 'b -> 'acc)
    ~(init : 'acc) (arr : 'a array) : 'acc =
  Array.fold_left combine init (map p ?budget f arr)

let map_opt (o : t option) ?budget (f : 'a -> 'b) (arr : 'a array) : 'b array =
  map (Option.value o ~default:sequential) ?budget f arr

let fold_opt (o : t option) ?budget ~f ~combine ~init arr =
  fold (Option.value o ~default:sequential) ?budget ~f ~combine ~init arr

let is_parallel (o : t option) : bool =
  match o with None -> false | Some p -> p.jobs > 1

let count_range (p : t) ?budget ~(total : int) (pred : int -> bool) : int =
  let ranges = max 1 (min total (p.jobs * 8)) in
  let sweep r =
    let lo = total * r / ranges and hi = total * (r + 1) / ranges in
    let count = ref 0 in
    for idx = lo to hi - 1 do
      if pred idx then incr count
    done;
    !count
  in
  fold p ?budget ~f:sweep ~combine:( + ) ~init:0
    (init_in_order ranges (fun r -> r))
