(** Persistent work-stealing domain pool: resident worker domains parked
    on a process-global free-list, per-slot queues with steal-on-empty,
    optional cost-aware largest-first packing, deterministic reduction,
    cooperative cancellation through the shared {!Budget}.  See the
    interface for the contracts. *)

type t = { jobs : int }

let create ~(jobs : int) () : t = { jobs = max 1 jobs }
let sequential : t = { jobs = 1 }
let jobs (p : t) : int = p.jobs

let validate_jobs (s : string) : (int, string) result =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "jobs must be at least 1 (got %d)" n)
  | None ->
      Error (Printf.sprintf "jobs must be a positive integer (got %S)" s)

let jobs_of_env_result () : (int, string) result =
  match Sys.getenv_opt "UCQC_JOBS" with
  | None -> Ok 1
  | Some s when String.trim s = "" -> Ok 1 (* set-but-empty = unset *)
  | Some s -> Result.map_error (fun e -> "UCQC_JOBS: " ^ e) (validate_jobs s)

let jobs_of_env () : int =
  match jobs_of_env_result () with
  | Ok n -> n
  | Error msg -> invalid_arg ("Pool.jobs_of_env: " ^ msg)

let of_env () : t = create ~jobs:(jobs_of_env ()) ()

(* Sequential evaluation in ascending index order.  [Array.init] leaves
   the evaluation order unspecified, and the order is part of the jobs = 1
   contract (budget ticks must fire exactly as in pre-pool code). *)
let init_in_order (n : int) (f : int -> 'a) : 'a array =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

(* ------------------------------------------------------------------ *)
(* Resident worker registry                                           *)
(* ------------------------------------------------------------------ *)

(* Workers are process-global, not per-{!t}: pools are cheap throwaway
   values (the CLI and the tests create many), and OCaml caps live
   domains at ~128, so tying domain lifetime to pool lifetime would
   either leak domains or force a shutdown obligation on every caller.
   Instead a parked worker domain sleeps on its condition variable until
   any [run] hands it a job; [run] borrows workers from the free-list
   and spawns only the shortfall. *)

type worker = {
  w_lock : Mutex.t;
  w_cond : Condition.t;
  mutable w_job : (worker -> unit) option;
  mutable w_stop : bool;
  mutable w_domain : unit Domain.t option;
}

let reg_lock = Mutex.create ()
let idle : worker list ref = ref []
let spawned = Atomic.make 0

let spawn_count () : int = Atomic.get spawned
let idle_count () : int = Mutex.protect reg_lock (fun () -> List.length !idle)

let park (w : worker) : unit =
  Mutex.protect reg_lock (fun () -> idle := w :: !idle)

let worker_loop (w : worker) : unit =
  let running = ref true in
  while !running do
    Mutex.lock w.w_lock;
    while w.w_job = None && not w.w_stop do
      Condition.wait w.w_cond w.w_lock
    done;
    let job = w.w_job in
    w.w_job <- None;
    if w.w_stop then running := false;
    Mutex.unlock w.w_lock;
    (* jobs never raise (they catch everything and record into the run's
       [failed] slot); the try is belt-and-braces so a bug there cannot
       kill the domain and deadlock the run waiting on it *)
    match job with Some j -> ( try j w with _ -> ()) | None -> ()
  done

let spawn_worker () : worker =
  let w =
    {
      w_lock = Mutex.create ();
      w_cond = Condition.create ();
      w_job = None;
      w_stop = false;
      w_domain = None;
    }
  in
  Atomic.incr spawned;
  (* [w_domain] is written before the first job is assigned; the
     assignment's mutex pair publishes it to whoever later joins *)
  w.w_domain <- Some (Domain.spawn (fun () -> worker_loop w));
  w

(* [borrow k] takes [k] workers: parked ones first, spawning only the
   shortfall.  On a spawn failure (e.g. the domain limit) every worker
   acquired so far goes back to the free-list before the exception
   propagates, so a failed borrow leaks nothing. *)
let borrow (k : int) : worker list =
  let popped =
    Mutex.protect reg_lock (fun () ->
        let rec take acc n rest =
          if n = 0 then (acc, rest)
          else
            match rest with
            | [] -> (acc, [])
            | w :: tl -> take (w :: acc) (n - 1) tl
        in
        let acc, rest = take [] k !idle in
        idle := rest;
        acc)
  in
  let rec fill acc n =
    if n = 0 then acc
    else
      match spawn_worker () with
      | w -> fill (w :: acc) (n - 1)
      | exception e ->
          List.iter park acc;
          List.iter park popped;
          raise e
  in
  popped @ fill [] (k - List.length popped)

let assign (w : worker) (j : worker -> unit) : unit =
  Mutex.protect w.w_lock (fun () ->
      w.w_job <- Some j;
      Condition.signal w.w_cond)

let shutdown_all () : unit =
  let ws =
    Mutex.protect reg_lock (fun () ->
        let ws = !idle in
        idle := [];
        ws)
  in
  List.iter
    (fun w ->
      Mutex.protect w.w_lock (fun () ->
          w.w_stop <- true;
          Condition.signal w.w_cond))
    ws;
  List.iter
    (fun w -> match w.w_domain with Some d -> Domain.join d | None -> ())
    ws

(* ------------------------------------------------------------------ *)
(* Scheduling                                                         *)
(* ------------------------------------------------------------------ *)

(* Overflow-safe near-equal split of [0 .. total-1] into [parts]
   half-open ranges.  The old formula ([total * (r+1) / ranges])
   overflowed for [total] near [max_int] — e.g. the 2^62 assignment
   sweeps the naive engine partitions — producing negative bounds. *)
let partition ~(total : int) ~(parts : int) : (int * int) array =
  if total <= 0 then [||]
  else begin
    let parts = max 1 (min parts total) in
    let base = total / parts and rem = total mod parts in
    Array.init parts (fun r ->
        let lo = (r * base) + min r rem in
        let hi = lo + base + if r < rem then 1 else 0 in
        (lo, hi))
  end

let sane_cost (c : float) : float =
  if Float.is_nan c || c < 0. then 0. else c

(* Per-slot initial queues.  Without costs: contiguous index ranges
   (cache-friendly, and stealing rebalances any unevenness).  With
   costs: deterministic LPT bin-packing — items sorted by descending
   cost (index-order tie-break) land greedily on the least-loaded slot,
   so one giant term starts immediately instead of serialising the
   tail.  The epsilon per item makes zero-cost inputs round-robin
   rather than pile onto slot 0. *)
let build_queues ~(costs : (int -> float) option) ~(workers : int) (n : int) :
    int array array =
  match costs with
  | None ->
      Array.map
        (fun (lo, hi) -> Array.init (hi - lo) (fun k -> lo + k))
        (partition ~total:n ~parts:workers)
  | Some cost ->
      let c = Array.init n (fun i -> sane_cost (cost i)) in
      let order = Array.init n (fun i -> i) in
      Array.sort
        (fun a b ->
          match Float.compare c.(b) c.(a) with 0 -> compare a b | r -> r)
        order;
      let loads = Array.make workers 0. in
      let queues = Array.make workers [] in
      Array.iter
        (fun i ->
          let best = ref 0 in
          for s = 1 to workers - 1 do
            if loads.(s) < loads.(!best) then best := s
          done;
          loads.(!best) <- loads.(!best) +. c.(i) +. 1e-9;
          queues.(!best) <- i :: queues.(!best))
        order;
      Array.map (fun q -> Array.of_list (List.rev q)) queues

let items_c = Telemetry.counter "pool.items"
let steals_c = Telemetry.counter "pool.steals"

let run (p : t) ?(budget : Budget.t option) ?(costs : (int -> float) option)
    ~(f : int -> 'a) (n : int) : 'a array =
  if n <= 1 || p.jobs <= 1 then init_in_order n f
  else begin
    let workers = min p.jobs n in
    Telemetry.with_span ?budget
      ~attrs:(fun () ->
        [ ("n", Telemetry.I n); ("workers", Telemetry.I workers) ])
      "pool.run"
    @@ fun () ->
    let results = Array.make n None in
    let queues = build_queues ~costs ~workers n in
    let cursors = Array.map (fun _ -> Atomic.make 0) queues in
    let failed : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    (* next item for [slot]: own queue first, then steal round-robin.
       A cursor past the end means that queue is drained; the
       fetch-and-add hands out each index exactly once even when
       several thieves race on the same victim. *)
    let take (slot : int) : int =
      let grab v =
        let q = queues.(v) in
        if Atomic.get cursors.(v) >= Array.length q then -1
        else begin
          let i = Atomic.fetch_and_add cursors.(v) 1 in
          if i >= Array.length q then -1
          else begin
            if v <> slot then Telemetry.incr steals_c;
            q.(i)
          end
        end
      in
      let rec scan k =
        if k = workers then -1
        else begin
          let got = grab ((slot + k) mod workers) in
          if got >= 0 then got else scan (k + 1)
        end
      in
      scan 0
    in
    (* the worker span makes per-slot utilisation visible in the trace:
       it covers only this run's work, never parked time, so the trace
       gap between [pool.worker] and its [pool.run] is steal/join wait *)
    let work (slot : int) : unit =
      Telemetry.with_span
        ~attrs:(fun () -> [ ("slot", Telemetry.I slot) ])
        "pool.worker"
      @@ fun () ->
      try
        let continue = ref true in
        while !continue do
          (* poisoned-run check at item granularity, not chunk
             granularity: with an expensive [f] and no budget to
             cancel, this is the only prompt cancellation path *)
          if Atomic.get failed <> None then continue := false
          else begin
            let i = take slot in
            if i < 0 then continue := false
            else begin
              Telemetry.incr items_c;
              results.(i) <- Some (f i)
            end
          end
        done
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        if Atomic.compare_and_set failed None (Some (e, bt)) then
          (* cooperative cancellation: wake every worker that ticks the
             shared budget; pure workers notice [failed] before their
             next item *)
          Option.iter Budget.cancel budget
    in
    let helpers = borrow (workers - 1) in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    let remaining = ref (List.length helpers) in
    List.iteri
      (fun k w ->
        let slot = k + 1 in
        assign w (fun self ->
            (try work slot with _ -> ());
            (* park before signalling completion: when the caller wakes,
               every borrowed worker is already back on the free-list,
               so back-to-back runs reuse domains instead of spawning *)
            park self;
            Mutex.protect done_lock (fun () ->
                decr remaining;
                if !remaining = 0 then Condition.signal done_cond)))
      helpers;
    (* the calling domain is slot 0 — never idle *)
    work 0;
    Mutex.lock done_lock;
    while !remaining > 0 do
      Condition.wait done_cond done_lock
    done;
    Mutex.unlock done_lock;
    (match Atomic.get failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map (p : t) ?budget ?costs (f : 'a -> 'b) (arr : 'a array) : 'b array =
  let costs = Option.map (fun c i -> c arr.(i)) costs in
  run p ?budget ?costs ~f:(fun i -> f arr.(i)) (Array.length arr)

let fold (p : t) ?budget ?costs ~(f : 'a -> 'b)
    ~(combine : 'acc -> 'b -> 'acc) ~(init : 'acc) (arr : 'a array) : 'acc =
  Array.fold_left combine init (map p ?budget ?costs f arr)

let map_opt (o : t option) ?budget ?costs (f : 'a -> 'b) (arr : 'a array) :
    'b array =
  map (Option.value o ~default:sequential) ?budget ?costs f arr

let fold_opt (o : t option) ?budget ?costs ~f ~combine ~init arr =
  fold (Option.value o ~default:sequential) ?budget ?costs ~f ~combine ~init
    arr

let is_parallel (o : t option) : bool =
  match o with None -> false | Some p -> p.jobs > 1

let count_range (p : t) ?budget ~(total : int) (pred : int -> bool) : int =
  (* a few ranges per worker so stealing can rebalance uneven predicate
     cost; the multiply is clamped so absurd jobs counts cannot wrap *)
  let parts = if p.jobs <= max_int / 8 then p.jobs * 8 else max_int in
  let sweep (lo, hi) =
    let count = ref 0 in
    for idx = lo to hi - 1 do
      if pred idx then incr count
    done;
    !count
  in
  fold p ?budget ~f:sweep ~combine:( + ) ~init:0 (partition ~total ~parts)
