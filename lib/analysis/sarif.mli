(** SARIF 2.1.0 emission and structural validation.

    One [run] per invocation, one [result] per diagnostic, the full rule
    catalogue in [tool.driver.rules].  Built on {!Trace_json}, so the CLI
    has exactly one JSON writer; {!validate} is the structural check
    behind [tools/sarif_check.exe]. *)

val version : string
(** ["2.1.0"] *)

val tool_name : string
(** ["ucqc"] *)

(** [of_reports ?tool_version reports] builds one SARIF log with a single
    run covering every report (one result per diagnostic, in report
    order; spanless findings keep an [artifactLocation] but no
    [region]). *)
val of_reports : ?tool_version:string -> Analysis.report list -> Trace_json.t

(** [to_string log] is {!Trace_json.to_string}. *)
val to_string : Trace_json.t -> string

(** [validate log] structurally checks a SARIF value: version 2.1.0,
    non-empty [runs], a [tool.driver] with string [name] and declared
    [rules], and per result a declared [ruleId], a valid [level], a
    [message.text], well-formed locations (string [uri]; 1-based region
    with end >= start), and — when present — well-formed [fixes]
    (description text, non-empty [artifactChanges] with [uri]s and
    non-empty [replacements], each with a valid [deletedRegion] and
    string [insertedContent.text]).  Returns the number of results
    checked, or a description of the first violation. *)
val validate : Trace_json.t -> (int, string) result
