(** Structured lint diagnostics with stable codes.

    Every finding of the static analyzer is a {!t}: a stable [UCQnnn]
    code, a severity, an optional source span, and a rendered message.
    The code space is partitioned:

    - [UCQ00x] — input validity and analyzer state: [UCQ001] syntax
      error, [UCQ002] arity clash, [UCQ003] analysis incomplete (budget),
      [UCQ004] analyzer rule failed (internal, never fatal)
    - [UCQ1xx] — structural rules on the parsed surface syntax
      ([UCQ101] wildcard existential … [UCQ107] unconstrained free
      variable)
    - [UCQ2xx] — semantic/complexity rules grounded in the paper's
      classification theorems ([UCQ201] contract treewidth / Theorem 5,
      [UCQ202] free-connexity, [UCQ203] inclusion–exclusion blowup,
      [UCQ204] WL-dimension / Theorem 7, [UCQ205] quantified union,
      [UCQ206] cyclic disjunct, [UCQ207] not q-hierarchical)
    - [UCQ3xx] — reports ([UCQ301] predicted execution plan)
    - [UCQ4xx] — rewrite reports from the count-preserving optimizer
      ([UCQ401] subsumed disjunct dropped, [UCQ402] duplicate disjunct
      dropped, [UCQ403] disjunct minimized to its #core, [UCQ404] query
      rewritten, [UCQ405] maintenance tier changed by optimization)

    A diagnostic may carry a machine-applicable {!fix} (surfaced as a
    SARIF [fixes] object) and a {!witness} proving the finding. *)

type severity = Error | Warning | Info | Hint

val severity_to_string : severity -> string

(** [severity_of_string s] parses ["error" | "warning" | "info" | "hint"]. *)
val severity_of_string : string -> severity option

(** [severity_rank s] orders severities ([Hint] = 0 … [Error] = 3). *)
val severity_rank : severity -> int

(** [sarif_level s] is the SARIF [level] string; SARIF has no "hint", so
    [Info] and [Hint] both map to ["note"]. *)
val sarif_level : severity -> string

(** 1-based, end-exclusive — the same convention as
    {!Ucqc_error.Parse_error}. *)
type span = { line : int; col : int; end_line : int; end_col : int }

(** One textual edit: delete [at], insert [text]. *)
type replacement = { at : span; text : string }

(** A machine-applicable fix, mirroring SARIF's [fixes] object.
    Replacement [text] is always a complete query (rendered with
    {!Pretty.ucq}), so it parses back as a UCQ. *)
type fix = { description : string; replacements : replacement list }

(** The proof behind a finding: [Hom_witness] is a homomorphism from
    disjunct [source] to disjunct [target] fixing free variables
    pointwise (UCQ104/UCQ106), as (source element, target element)
    pairs; [Atom_witness] records that atom [atom] of [disjunct]
    duplicates atom [first] (UCQ103).  The optimizer re-verifies
    witnesses in O(tuples) before applying a rewrite. *)
type witness =
  | Hom_witness of { source : int; target : int; map : (int * int) list }
  | Atom_witness of { disjunct : int; atom : int; first : int }

type t = {
  code : string;
  severity : severity;
  span : span option;
  message : string;
  fix : fix option;
  witness : witness option;
}

(** {2 Rule registry} *)

type rule = { id : string; default_severity : severity; title : string }

(** The full catalogue in code order — the single source of truth for the
    SARIF [rules] array and [--deny] validation. *)
val rules : rule list

val find_rule : string -> rule option

(** [make ?span ?severity ?fix ?witness code fmt] builds a diagnostic
    with the registry's default severity unless overridden.
    @raise Invalid_argument on an unregistered code. *)
val make :
  ?span:span ->
  ?severity:severity ->
  ?fix:fix ->
  ?witness:witness ->
  string ->
  ('a, unit, string, t) format4 ->
  'a

(** {2 Ordering and rendering} *)

(** Document order first (spanless findings last), then code — a
    deterministic presentation order independent of rule evaluation
    order. *)
val compare : t -> t -> int

val span_to_string : span -> string

(** [to_string ?path d] renders the [--format human] line:
    [path:line:col-line:col: severity CODE: message]. *)
val to_string : ?path:string -> t -> string

(** {2 Deny specifications} *)

(** What [--deny] promotes to failure: one code, or everything at or
    above a severity. *)
type deny = Code of string | At_least of severity

(** [deny_of_string s] accepts a severity name (case-insensitive) or a
    registered [UCQnnn] code. *)
val deny_of_string : string -> (deny, string) result

(** [denied specs d]: severity [Error] findings are always denied;
    otherwise [d] is denied when any spec matches. *)
val denied : deny list -> t -> bool
