(** The static query analyzer: runs every lint rule over one query text
    and produces a {!report} of {!Diagnostic.t} findings.

    Total by construction — {!check} never raises.  Parse and interning
    failures become [UCQ001]/[UCQ002] diagnostics; budget exhaustion
    becomes [UCQ003] and skips the remaining budgeted rules; any other
    exception escaping a rule becomes [UCQ004].  The rules run in two
    stages: structural rules over the positioned {!Parse.ast} (spans and
    surface names), then semantic rules over the interned {!Ucq.t}. *)

type report = {
  path : string option;
  diagnostics : Diagnostic.t list;  (** sorted by {!Diagnostic.compare} *)
  plan : Plan.t option;  (** present when the plan rule completed *)
  update_tier : Tier.selection option;
      (** maintenance tier under live updates; present when interning
          succeeded and the tier rule completed *)
}

(* Adversarial input must terminate even without a caller budget: the
   semantic rules (hom checks, exact treewidth, 2^l expansion) are
   exponential by design. *)
let default_max_steps = 1_000_000

let span_of (s : Parse.pos) (e : Parse.pos) : Diagnostic.span =
  {
    Diagnostic.line = s.Parse.line;
    col = s.Parse.col;
    end_line = e.Parse.line;
    end_col = e.Parse.col;
  }

let atom_span (a : Parse.atom) : Diagnostic.span =
  span_of a.Parse.apos a.Parse.aend

(** Span of disjunct [i]: first atom start to last atom end. *)
let disjunct_span (ast : Parse.ast) (i : int) : Diagnostic.span option =
  match List.nth_opt ast.Parse.disjuncts i with
  | Some (first :: _ as atoms) ->
      let last = List.nth atoms (List.length atoms - 1) in
      Some (span_of first.Parse.apos last.Parse.aend)
  | _ -> None

(** Span of the whole query text: head start to the last atom end — the
    deleted region of whole-query replacement fixes. *)
let full_span (ast : Parse.ast) : Diagnostic.span =
  let e =
    List.fold_left
      (fun acc atoms ->
        match List.rev atoms with
        | (a : Parse.atom) :: _ -> a.Parse.aend
        | [] -> acc)
      ast.Parse.head_end ast.Parse.disjuncts
  in
  span_of ast.Parse.head_pos e

(** [2^l - 1] as a display string, exact only when it fits a word. *)
let subsets_string (l : int) : string =
  if l < 62 then string_of_int ((1 lsl l) - 1) else Printf.sprintf "2^%d - 1" l

(* ------------------------------------------------------------------ *)
(* Error -> diagnostic mapping                                        *)
(* ------------------------------------------------------------------ *)

let of_error (e : Ucqc_error.t) : Diagnostic.t =
  match e with
  | Ucqc_error.Parse_error { line; col; end_line; end_col; msg } ->
      Diagnostic.make
        ~span:{ Diagnostic.line; col; end_line; end_col }
        "UCQ001" "%s" msg
  | Ucqc_error.Arity_mismatch { rel; expected; got } ->
      Diagnostic.make "UCQ002" "relation %s used with arity %d and arity %d"
        rel expected got
  | Ucqc_error.Budget_exhausted { phase; steps_done } ->
      Diagnostic.make "UCQ003"
        "analysis incomplete: budget exhausted after %d steps in %s"
        steps_done phase
  | Ucqc_error.Unsupported msg ->
      Diagnostic.make ~severity:Diagnostic.Error "UCQ004" "unsupported: %s" msg
  | Ucqc_error.Internal msg ->
      Diagnostic.make ~severity:Diagnostic.Error "UCQ004" "internal: %s" msg

(* ------------------------------------------------------------------ *)
(* Structural rules (positioned AST, surface names)                   *)
(* ------------------------------------------------------------------ *)

(** Underscore-prefixed variables opt out of the occurrence hints
    ([UCQ101]/[UCQ102]) — the conventional wildcard marker. *)
let is_wildcard_name (v : string) : bool =
  String.length v > 0 && v.[0] = '_'

let ast_rules ~(add : Diagnostic.t -> unit) (ast : Parse.ast) : unit =
  let head = ast.Parse.head in
  (* UCQ002: arity clash, with the span of the conflicting atom. *)
  let arities : (string, int * Parse.pos) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (a : Parse.atom) ->
         let n = List.length a.Parse.args in
         match Hashtbl.find_opt arities a.Parse.rel with
         | None -> Hashtbl.add arities a.Parse.rel (n, a.Parse.apos)
         | Some (n0, p0) ->
             if n <> n0 then
               add
                 (Diagnostic.make ~span:(atom_span a) "UCQ002"
                    "relation %s used with arity %d here but arity %d at line \
                     %d, column %d"
                    a.Parse.rel n n0 p0.Parse.line p0.Parse.col)))
    ast.Parse.disjuncts;
  List.iteri
    (fun i (conj : Parse.atom list) ->
      let dnum = i + 1 in
      (* UCQ103: syntactically duplicate atoms (interning drops them). *)
      let seen : (string * string list, int * Parse.pos) Hashtbl.t =
        Hashtbl.create 16
      in
      List.iteri
        (fun ai (a : Parse.atom) ->
          let key = (a.Parse.rel, a.Parse.args) in
          match Hashtbl.find_opt seen key with
          | None -> Hashtbl.add seen key (ai, a.Parse.apos)
          | Some (fi, p0) ->
              add
                (Diagnostic.make ~span:(atom_span a)
                   ~witness:
                     (Diagnostic.Atom_witness
                        { disjunct = i; atom = ai; first = fi })
                   "UCQ103"
                   "duplicate atom %s(%s) in disjunct %d (first at line %d, \
                    column %d); duplicates are dropped at interning"
                   a.Parse.rel
                   (String.concat ", " a.Parse.args)
                   dnum p0.Parse.line p0.Parse.col))
        conj;
      (* Occurrence map: variable -> (total count, atoms containing it). *)
      let occ : (string, int ref * (int, unit) Hashtbl.t) Hashtbl.t =
        Hashtbl.create 16
      in
      List.iteri
        (fun ai (a : Parse.atom) ->
          List.iter
            (fun v ->
              let count, ats =
                match Hashtbl.find_opt occ v with
                | Some c -> c
                | None ->
                    let c = (ref 0, Hashtbl.create 4) in
                    Hashtbl.add occ v c;
                    c
              in
              incr count;
              Hashtbl.replace ats ai ())
            a.Parse.args)
        conj;
      (* UCQ101 / UCQ102: existential variables that constrain nothing
         across atoms.  Iterate atoms (not the hashtable) for
         deterministic order. *)
      let hinted : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (a : Parse.atom) ->
          List.iter
            (fun v ->
              if
                (not (List.mem v head))
                && (not (is_wildcard_name v))
                && not (Hashtbl.mem hinted v)
              then
                match Hashtbl.find_opt occ v with
                | None -> ()
                | Some (count, ats) ->
                    if !count = 1 then (
                      Hashtbl.add hinted v ();
                      add
                        (Diagnostic.make ~span:(atom_span a) "UCQ101"
                           "existential variable %s occurs only once in \
                            disjunct %d; it only asserts that a matching \
                            tuple exists"
                           v dnum))
                    else if Hashtbl.length ats = 1 then (
                      Hashtbl.add hinted v ();
                      add
                        (Diagnostic.make ~span:(atom_span a) "UCQ102"
                           "existential variable %s of disjunct %d appears \
                            in a single atom only"
                           v dnum)))
            a.Parse.args)
        conj;
      (* UCQ107: free variables absent from the disjunct range over the
         whole universe. *)
      List.iter
        (fun v ->
          if not (Hashtbl.mem occ v) then
            add
              (Diagnostic.make
                 ?span:(disjunct_span ast i)
                 "UCQ107"
                 "free variable %s appears in no atom of disjunct %d; it \
                  ranges over the whole universe"
                 v dnum))
        (List.sort_uniq String.compare head);
      (* UCQ105: variable-disjoint atom groups multiply out as a
         cartesian product.  Union-find over atoms keyed by shared
         variables. *)
      let n = List.length conj in
      if n >= 2 then (
        let parent = Array.init n (fun i -> i) in
        let rec find i =
          if parent.(i) = i then i
          else (
            parent.(i) <- find parent.(i);
            parent.(i))
        in
        let union i j =
          let ri = find i and rj = find j in
          if ri <> rj then parent.(ri) <- rj
        in
        let var_home : (string, int) Hashtbl.t = Hashtbl.create 16 in
        List.iteri
          (fun ai (a : Parse.atom) ->
            List.iter
              (fun v ->
                match Hashtbl.find_opt var_home v with
                | None -> Hashtbl.add var_home v ai
                | Some first -> union first ai)
              a.Parse.args)
          conj;
        let roots = Hashtbl.create 4 in
        for i = 0 to n - 1 do
          Hashtbl.replace roots (find i) ()
        done;
        let parts = Hashtbl.length roots in
        if parts > 1 then
          add
            (Diagnostic.make
               ?span:(disjunct_span ast i)
               "UCQ105"
               "disjunct %d is a cartesian product of %d variable-disjoint \
                parts; its count is the product of the parts' counts"
               dnum parts)))
    ast.Parse.disjuncts

(* ------------------------------------------------------------------ *)
(* Semantic rules (interned query)                                    *)
(* ------------------------------------------------------------------ *)

let semantic_rules ~(add : Diagnostic.t -> unit) ~(budget : Budget.t)
    ?(pool : Pool.t option) ~(tw_threshold : int)
    ~(tier : Tier.selection option ref) ~(env : Parse.query_env)
    (ast : Parse.ast) (psi : Ucq.t) : Plan.t option =
  let plan = ref None in
  let exhausted = ref false in
  (* Every rule is fenced: budget exhaustion reports UCQ003 once and
     skips the remaining (budgeted) rules; any other escape reports
     UCQ004 and moves on. *)
  let rule (name : string) (f : unit -> unit) : unit =
    if not !exhausted then
      try f () with
      | Budget.Exhausted e ->
          exhausted := true;
          add
            (Diagnostic.make "UCQ003"
               "analysis incomplete: budget exhausted after %d steps in %s; \
                remaining semantic rules skipped"
               e.Budget.steps_done e.Budget.phase)
      | exn ->
          add
            (Diagnostic.make "UCQ004" "rule %s failed: %s" name
               (Printexc.to_string exn))
  in
  let disjuncts = Ucq.disjuncts psi in
  let dspan i = disjunct_span ast i in
  (* UCQ205: META (Theorem 5) needs a quantifier-free union. *)
  rule "quantified-union" (fun () ->
      if Ucq.length psi > 1 && not (Ucq.is_quantifier_free psi) then
        add
          (Diagnostic.make "UCQ205"
             "union of %d disjuncts with %d quantified variables: the META \
              linear-time decision (Theorem 5) is defined only for \
              quantifier-free unions"
             (Ucq.length psi) (Ucq.num_quantified psi)));
  (* UCQ202 / UCQ206: acyclicity and free-connexity, per disjunct. *)
  List.iteri
    (fun i q ->
      rule "acyclicity" (fun () ->
          let dnum = i + 1 in
          if Cq.is_acyclic q then (
            if not (Cq.is_free_connex q) then
              add
                (Diagnostic.make ?span:(dspan i) "UCQ202"
                   "disjunct %d is acyclic but not free-connex; linear-time \
                    counting of the single disjunct is not available \
                    (footnote 2)"
                   dnum))
          else
            let g, _ = Structure.gaifman (Cq.structure q) in
            let hi, _ = Treewidth.heuristic g in
            add
              (Diagnostic.make ?span:(dspan i) "UCQ206"
                 "disjunct %d is cyclic (alpha-acyclicity fails); per-term \
                  counting backtracks within treewidth <= %d"
                 dnum hi)))
    disjuncts;
  (* UCQ207: the dynamic-counting criterion, exponential in l - gated
     (the gate lives in Tier.select, which reports tier C above it). *)
  rule "q-hierarchical" (fun () ->
      let sel = Tier.select psi in
      tier := Some sel;
      if Ucq.length psi <= Tier.max_disjuncts && sel.Tier.tier <> Tier.A then
        add
          (Diagnostic.make "UCQ207"
             "not exhaustively q-hierarchical: constant-time dynamic \
              counting under updates (Section 1.2) does not apply; live \
              updates fall back to maintenance tier %s (%s)"
             (Tier.to_string sel.Tier.tier)
             (Tier.describe sel.Tier.tier)));
  (* UCQ104 / UCQ106: subsumption between disjuncts via homomorphisms
     fixing the free variables pointwise. *)
  rule "subsumption" (fun () ->
      let ds = Array.of_list (Ucq.disjunct_structures psi) in
      let n = Array.length ds in
      if n >= 2 then (
        let fixed = List.map (fun v -> (v, v)) (Ucq.free psi) in
        (* hom.(i).(j): a witness A_i -> A_j fixing X, i.e. ans_j
           included in ans_i.  Witnesses ride on the diagnostics so the
           optimizer can re-verify in O(tuples) instead of re-searching. *)
        let hom = Array.make_matrix n n None in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j then
              hom.(i).(j) <-
                (let r = ref None in
                 Hom.iter_homs ~budget ~fixed ds.(i) ds.(j) (fun h ->
                     r := Some h;
                     false);
                 !r)
          done
        done;
        (* The machine-applicable fix: the same query with the redundant
           disjunct deleted, as a whole-query replacement that parses
           back (SARIF [fixes]). *)
        let drop_fix j =
          let kept = List.filteri (fun k _ -> k <> j) (Ucq.disjuncts psi) in
          {
            Diagnostic.description =
              Printf.sprintf "delete redundant disjunct %d" (j + 1);
            replacements =
              [
                {
                  Diagnostic.at = full_span ast;
                  text = Pretty.ucq ~env (Ucq.make kept);
                };
              ];
          }
        in
        for j = 0 to n - 1 do
          let dup = ref None and sub = ref None in
          for i = 0 to n - 1 do
            if i <> j && hom.(i).(j) <> None then
              if hom.(j).(i) <> None then (
                if i < j && !dup = None then dup := Some i)
              else if !sub = None then sub := Some i
          done;
          let witness i =
            Diagnostic.Hom_witness
              { source = i; target = j; map = Option.get hom.(i).(j) }
          in
          match (!dup, !sub) with
          | Some i, _ ->
              add
                (Diagnostic.make ?span:(dspan j) ~fix:(drop_fix j)
                   ~witness:(witness i) "UCQ106"
                   "disjunct %d duplicates disjunct %d (homomorphically \
                    equivalent over the free variables); it contributes no \
                    answers"
                   (j + 1) (i + 1))
          | None, Some i ->
              add
                (Diagnostic.make ?span:(dspan j) ~fix:(drop_fix j)
                   ~witness:(witness i) "UCQ104"
                   "disjunct %d is subsumed by disjunct %d: every answer of \
                    disjunct %d is already an answer of disjunct %d"
                   (j + 1) (i + 1) (j + 1) (i + 1))
          | None, None -> ()
        done));
  (* UCQ201: the Theorem 2/5 hardness signal - contract treewidth. *)
  List.iteri
    (fun i q ->
      rule "contract-treewidth" (fun () ->
          let g, _ = Cq.contract q in
          let n = Graph.num_vertices g in
          if n > 0 then (
            let lo = Treewidth.lower_bound g in
            let hi, _ = Treewidth.heuristic g in
            let lo, hi, exact =
              if lo = hi then (lo, hi, true)
              else if n <= 10 then
                let w = Treewidth.treewidth ~budget g in
                (w, w, true)
              else (lo, hi, false)
            in
            if lo > tw_threshold then
              add
                (Diagnostic.make ?span:(dspan i) "UCQ201"
                   "contract treewidth of disjunct %d is %s (threshold %d): \
                    families of unbounded contract treewidth are \
                    #W[1]-hard to count (Theorems 2 and 5)"
                   (i + 1)
                   (if exact then string_of_int lo
                    else Printf.sprintf "between %d and %d" lo hi)
                   tw_threshold))))
    disjuncts;
  (* UCQ204: WL-dimension bounds via hereditary treewidth (Theorem 7). *)
  rule "wl-dimension" (fun () ->
      if Ucq.is_quantifier_free psi && Wl_dimension.check_labelled psi then
        let lo, hi = Meta.hereditary_treewidth_bounds ~budget psi in
        add
          (Diagnostic.make "UCQ204"
             "WL-dimension (Theorems 7/8): %d <= dim_WL = hdtw <= %d%s" lo hi
             (if lo = hi then "" else " (heuristic per-term bounds)")));
  (* UCQ301: the predicted execution plan. *)
  rule "plan" (fun () ->
      let p = Plan.predict ~budget ?pool psi in
      plan := Some p;
      add (Diagnostic.make "UCQ301" "%s" (Plan.describe p)));
  !plan

(* ------------------------------------------------------------------ *)
(* The engine                                                         *)
(* ------------------------------------------------------------------ *)

let check ?(budget : Budget.t option) ?(pool : Pool.t option)
    ?(tw_threshold : int = 2) ?(ie_threshold : int = 8)
    ?(path : string option) (text : string) : report =
  let budget =
    match budget with Some b -> b | None -> Budget.of_steps default_max_steps
  in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let plan = ref None in
  let tier = ref None in
  (try
     match Parse.ast_result text with
     | Error e -> add (of_error e)
     | Ok ast -> (
         ast_rules ~add ast;
         let ie_terms = List.length ast.Parse.disjuncts in
         (match Parse.intern_result ast with
         | Error (Ucqc_error.Arity_mismatch _)
           when List.exists (fun d -> d.Diagnostic.code = "UCQ002") !diags ->
             (* the AST pass already reported it, with a span *)
             ()
         | Error e -> add (of_error e)
         | Ok (psi, env) ->
             plan :=
               semantic_rules ~add ~budget ?pool ~tw_threshold ~tier ~env ast
                 psi);
         (* UCQ203: union-size blowup - unbudgeted, from l alone, refined
            by the plan when one was computed. *)
         if ie_terms >= ie_threshold then
           add
             (Diagnostic.make
                ?span:
                  (Some
                     (span_of ast.Parse.head_pos ast.Parse.head_end))
                "UCQ203"
                "%d disjuncts induce %s inclusion-exclusion subsets; the \
                 expansion and IE engines are exponential in the union \
                 size%s"
                ie_terms
                (subsets_string ie_terms)
                (match !plan with
                | Some p ->
                    Printf.sprintf
                      " (%d support classes survive, max treewidth bound %d)"
                      (List.length p.Plan.support) p.Plan.max_tw_upper
                | None -> "")))
   with exn ->
     add
       (Diagnostic.make ~severity:Diagnostic.Error "UCQ004"
          "analyzer failed: %s" (Printexc.to_string exn)));
  {
    path;
    diagnostics = List.sort_uniq Diagnostic.compare !diags;
    plan = !plan;
    update_tier = !tier;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let max_severity (r : report) : Diagnostic.severity option =
  List.fold_left
    (fun acc (d : Diagnostic.t) ->
      match acc with
      | None -> Some d.Diagnostic.severity
      | Some s ->
          if
            Diagnostic.severity_rank d.Diagnostic.severity
            > Diagnostic.severity_rank s
          then Some d.Diagnostic.severity
          else acc)
    None r.diagnostics

let denied_diagnostics (specs : Diagnostic.deny list) (r : report) :
    Diagnostic.t list =
  List.filter (Diagnostic.denied specs) r.diagnostics

let span_to_json (s : Diagnostic.span) : Trace_json.t =
  Trace_json.Obj
    [
      ("line", Trace_json.Num (float_of_int s.Diagnostic.line));
      ("col", Trace_json.Num (float_of_int s.Diagnostic.col));
      ("endLine", Trace_json.Num (float_of_int s.Diagnostic.end_line));
      ("endCol", Trace_json.Num (float_of_int s.Diagnostic.end_col));
    ]

let diagnostic_to_json (d : Diagnostic.t) : Trace_json.t =
  let base =
    [
      ("code", Trace_json.Str d.Diagnostic.code);
      ( "severity",
        Trace_json.Str (Diagnostic.severity_to_string d.Diagnostic.severity) );
      ("message", Trace_json.Str d.Diagnostic.message);
    ]
  in
  let span =
    match d.Diagnostic.span with
    | None -> []
    | Some s -> [ ("span", span_to_json s) ]
  in
  let fix =
    match d.Diagnostic.fix with
    | None -> []
    | Some f ->
        [
          ( "fix",
            Trace_json.Obj
              [
                ("description", Trace_json.Str f.Diagnostic.description);
                ( "replacements",
                  Trace_json.Arr
                    (List.map
                       (fun (r : Diagnostic.replacement) ->
                         Trace_json.Obj
                           [
                             ("at", span_to_json r.Diagnostic.at);
                             ("text", Trace_json.Str r.Diagnostic.text);
                           ])
                       f.Diagnostic.replacements) );
              ] );
        ]
  in
  let witness =
    match d.Diagnostic.witness with
    | None -> []
    | Some (Diagnostic.Hom_witness { source; target; map }) ->
        [
          ( "witness",
            Trace_json.Obj
              [
                ("kind", Trace_json.Str "hom");
                ("source", Trace_json.Num (float_of_int source));
                ("target", Trace_json.Num (float_of_int target));
                ( "map",
                  Trace_json.Arr
                    (List.map
                       (fun (x, y) ->
                         Trace_json.Arr
                           [
                             Trace_json.Num (float_of_int x);
                             Trace_json.Num (float_of_int y);
                           ])
                       map) );
              ] );
        ]
    | Some (Diagnostic.Atom_witness { disjunct; atom; first }) ->
        [
          ( "witness",
            Trace_json.Obj
              [
                ("kind", Trace_json.Str "atom");
                ("disjunct", Trace_json.Num (float_of_int disjunct));
                ("atom", Trace_json.Num (float_of_int atom));
                ("first", Trace_json.Num (float_of_int first));
              ] );
        ]
  in
  Trace_json.Obj (base @ span @ fix @ witness)

let report_to_json (r : report) : Trace_json.t =
  Trace_json.Obj
    ([
       ( "path",
         match r.path with Some p -> Trace_json.Str p | None -> Trace_json.Null
       );
       ( "diagnostics",
         Trace_json.Arr (List.map diagnostic_to_json r.diagnostics) );
     ]
    @ (match r.plan with Some p -> [ ("plan", Plan.to_json p) ] | None -> [])
    @
    match r.update_tier with
    | Some sel ->
        [
          ( "update_tier",
            Trace_json.Obj
              [
                ("tier", Trace_json.Str (Tier.to_string sel.Tier.tier));
                ("reason", Trace_json.Str sel.Tier.reason);
              ] );
        ]
    | None -> [])

let report_to_human (r : report) : string =
  match r.diagnostics with
  | [] ->
      Printf.sprintf "%s: clean (no findings)"
        (Option.value r.path ~default:"<stdin>")
  | ds ->
      String.concat "\n"
        (List.map (fun d -> Diagnostic.to_string ?path:r.path d) ds)
