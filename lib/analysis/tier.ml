(** Update-maintenance tier selection (see the interface).  The checks
    mirror the classification rules the analyzer already runs: tier A is
    the Section 1.2 dynamic-counting criterion, tier B the acyclicity of
    every combined query, and both are gated on the disjunct count
    because they enumerate the [2^l - 1] nonempty subsets. *)

type t = A | B | C

let to_string = function A -> "A" | B -> "B" | C -> "C"

let of_string s =
  match String.lowercase_ascii s with
  | "a" -> Some A
  | "b" -> Some B
  | "c" -> Some C
  | _ -> None

let describe = function
  | A -> "O(1) dynamic counting (Section 1.2)"
  | B -> "per-update delta evaluation over the changed tuple"
  | C -> "lazy budgeted recompute"

type selection = { tier : t; reason : string }

let max_disjuncts = 6

let select ?(max_disjuncts : int = max_disjuncts) (psi : Ucq.t) : selection =
  let l = Ucq.length psi in
  if l > max_disjuncts then
    {
      tier = C;
      reason =
        Printf.sprintf
          "%d disjuncts exceed the %d-disjunct gate for the exponential \
           tier-A/B criteria"
          l max_disjuncts;
    }
  else if Ucq.is_exhaustively_q_hierarchical psi then
    {
      tier = A;
      reason =
        "exhaustively q-hierarchical: every combined query admits \
         constant-time maintenance";
    }
  else
    let combined = List.map (Ucq.combined psi) (Combinat.nonempty_subsets l) in
    match List.find_opt (fun q -> not (Cq.is_acyclic q)) combined with
    | None ->
        {
          tier = B;
          reason =
            "not exhaustively q-hierarchical, but every combined query is \
             acyclic: delta evaluation applies";
        }
    | Some _ ->
        {
          tier = C;
          reason =
            "some combined query is cyclic: no incremental path, counts \
             are recomputed lazily";
        }
