(** The static query analyzer behind [ucqc check] and [--lint].

    {!check} runs every lint rule over one query text and returns a
    {!report}.  It is total by construction — it never raises: parse and
    interning failures become [UCQ001]/[UCQ002] diagnostics, budget
    exhaustion becomes [UCQ003] (remaining budgeted rules are skipped),
    and any other exception escaping a rule becomes [UCQ004].

    Rules run in two stages: structural rules over the positioned
    {!Parse.ast} (spans and surface names — [UCQ002], [UCQ101]–[UCQ107]),
    then semantic rules over the interned {!Ucq.t} ([UCQ104]/[UCQ106]
    subsumption, [UCQ201]–[UCQ207], and the [UCQ301] plan report). *)

type report = {
  path : string option;
  diagnostics : Diagnostic.t list;  (** sorted by {!Diagnostic.compare} *)
  plan : Plan.t option;  (** present when the plan rule completed *)
  update_tier : Tier.selection option;
      (** {!Tier} maintenance class under live updates; present when
          interning succeeded and the tier rule completed *)
}

(** The default step allowance when {!check} is called without a budget
    (the semantic rules are exponential by design, so adversarial input
    must terminate regardless). *)
val default_max_steps : int

(** [check ?budget ?pool ?tw_threshold ?ie_threshold ?path text] parses
    and analyzes one query.  [tw_threshold] (default 2) is the contract
    treewidth above which [UCQ201] fires; [ie_threshold] (default 8) the
    disjunct count at which [UCQ203] fires.  Never raises; deterministic
    for a fixed input and budget, including under a multi-domain
    [?pool]. *)
val check :
  ?budget:Budget.t ->
  ?pool:Pool.t ->
  ?tw_threshold:int ->
  ?ie_threshold:int ->
  ?path:string ->
  string ->
  report

(** [max_severity r] is the highest severity present, if any finding. *)
val max_severity : report -> Diagnostic.severity option

(** [denied_diagnostics specs r] filters the findings [--deny] fails on
    (severity [Error] is always included). *)
val denied_diagnostics : Diagnostic.deny list -> report -> Diagnostic.t list

val diagnostic_to_json : Diagnostic.t -> Trace_json.t

(** [report_to_json r] is the [--format json] payload:
    [{"path", "diagnostics": [...], "plan"?}]. *)
val report_to_json : report -> Trace_json.t

(** [report_to_human r] is the [--format human] rendering, one line per
    finding (or a "clean" line). *)
val report_to_human : report -> string
