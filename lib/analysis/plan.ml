(** Static cost prediction: which algorithm {!Runner.count} would select
    for a query, and what it would cost.

    The expansion phase is predicted {e exactly}: step budgets are
    deterministic, and {!predict} runs the very same
    [Ucq.expansion ~budget] code path {!Runner.count} does (via
    [Expansion], its default), metering the tick count.  Only the
    per-term counting phase — whose cost depends on the database — is
    estimated, from acyclicity and treewidth bounds of each support
    term. *)

(** Profile of one surviving expansion term (#equivalence class with
    non-zero coefficient). *)
type term_info = {
  coefficient : int;
  atoms : int;  (** tuples of the representative's structure *)
  vars : int;  (** universe size of the representative *)
  acyclic : bool;
  quantifier_free : bool;
  free_connex : bool;
  tw_lower : int;  (** Gaifman treewidth lower bound ([-1]: no vertices) *)
  tw_upper : int;  (** Gaifman treewidth upper bound *)
  tw_exact : bool;  (** the bounds coincide by an exact computation *)
}

type t = {
  disjuncts : int;  (** ℓ *)
  subsets : int;  (** [2^ℓ - 1] inclusion–exclusion terms *)
  expansion_steps : int;
      (** exact deterministic tick count of [Ucq.expansion] *)
  support : term_info list;  (** non-zero-coefficient classes *)
  dropped : int;  (** zero-coefficient classes (computed, then skipped) *)
  max_tw_upper : int;  (** [max] over support of [tw_upper] ([-1] if empty) *)
  all_acyclic : bool;  (** every support term acyclic *)
}

(* Exact treewidth is exponential; only sharpen the heuristic bounds on
   query-sized graphs. *)
let exact_tw_gate = 10

let term_info ?budget (t : Ucq.expansion_term) : term_info =
  let s = Cq.structure t.Ucq.representative in
  let g, _ = Structure.gaifman s in
  let n = Graph.num_vertices g in
  let tw_lower, tw_upper, tw_exact =
    if n = 0 then (-1, -1, true)
    else
      let lo = Treewidth.lower_bound g in
      let hi, _ = Treewidth.heuristic g in
      if lo = hi then (lo, hi, true)
      else if n <= exact_tw_gate then
        let w = Treewidth.treewidth ?budget g in
        (w, w, true)
      else (lo, hi, false)
  in
  {
    coefficient = t.Ucq.coefficient;
    atoms = Structure.num_tuples s;
    vars = Structure.universe_size s;
    acyclic = Cq.is_acyclic t.Ucq.representative;
    quantifier_free = Cq.is_quantifier_free t.Ucq.representative;
    free_connex = Cq.is_free_connex t.Ucq.representative;
    tw_lower;
    tw_upper;
    tw_exact;
  }

(** [predict ?budget ?pool psi] profiles the expansion.  The expansion is
    metered on a private step budget (so [expansion_steps] is exact even
    when the caller's budget is unlimited); the consumed steps are then
    charged to [?budget], whose remaining allowance also caps the run.
    @raise Budget.Exhausted when [?budget] cannot pay for the
    expansion. *)
let predict ?(budget : Budget.t option) ?(pool : Pool.t option) (psi : Ucq.t) :
    t =
  let allowance =
    match budget with
    | None -> max_int
    | Some b -> (
        match Budget.remaining_steps b with None -> max_int | Some r -> r)
  in
  let meter = Budget.of_steps allowance in
  Budget.set_phase meter "plan.expansion";
  let terms =
    match Budget.run meter ~phase:"plan.expansion" (fun () ->
            Ucq.expansion ~budget:meter ?pool psi)
    with
    | Ok terms ->
        Budget.ticks_opt budget (Budget.steps_done meter);
        terms
    | Error e ->
        Budget.ticks_opt budget (Budget.steps_done meter);
        raise (Budget.Exhausted e)
  in
  let expansion_steps = Budget.steps_done meter in
  let support, dropped =
    List.partition (fun t -> t.Ucq.coefficient <> 0) terms
  in
  let support = List.map (term_info ?budget) support in
  let disjuncts = Ucq.length psi in
  {
    disjuncts;
    subsets = (if disjuncts < 62 then (1 lsl disjuncts) - 1 else max_int);
    expansion_steps;
    support;
    dropped = List.length dropped;
    max_tw_upper = List.fold_left (fun m t -> max m t.tw_upper) (-1) support;
    all_acyclic = List.for_all (fun t -> t.acyclic) support;
  }

(* ------------------------------------------------------------------ *)
(* Database-dependent cost estimation                                 *)
(* ------------------------------------------------------------------ *)

(* The model mirrors the Counting.Auto dispatch and its actual tick
   sites, calibrated by tools/plan_eval.exe against Runner.count on the
   Qgen corpus (EXPERIMENTS.md, E16): acyclic quantifier-free terms go
   to the linear-time join-tree counter, which only re-checks limits on
   entry (so ~1 tick for the per-term dispatch); everything else runs a
   variable elimination that ticks [1 + rows] per eliminated variable,
   with intermediate rows bounded by both the join of two input
   relations and the [n^(tw+1)] bag bound. *)

(** [term_cost ~db_elems ~db_tuples info] estimates the budget ticks of
    counting one support term on a database with [db_elems] elements and
    [db_tuples] tuples. *)
let term_cost ~(db_elems : int) ~(db_tuples : int) (info : term_info) : float =
  if info.acyclic && info.quantifier_free then 1.0
  else
    let n = float_of_int (max 2 db_elems) in
    let m = float_of_int (max 1 db_tuples) in
    let width = float_of_int (max 1 (info.tw_upper + 1)) in
    let rows = Float.min (m *. n) (n ** width) in
    float_of_int (info.vars + 1) *. (1.0 +. rows)

(** [rep_cost ~db_elems ~db_tuples q] is {!term_cost} for a bare
    representative: the hook the Runner hands to the pool so expansion
    terms are bin-packed largest-first by the calibrated estimate
    (EXPERIMENTS.md, E16) instead of a syntactic proxy. *)
let rep_cost ~(db_elems : int) ~(db_tuples : int) (q : Cq.t) : float =
  term_cost ~db_elems ~db_tuples
    (term_info { Ucq.representative = q; Ucq.coefficient = 1 })

(** [cost ~db_elems ~db_tuples plan] estimates the total ticks of
    [Runner.count ~via:Expansion]: the exact expansion cost plus the
    estimated per-term counting cost. *)
let cost ~(db_elems : int) ~(db_tuples : int) (plan : t) : float =
  List.fold_left
    (fun acc info -> acc +. term_cost ~db_elems ~db_tuples info)
    (float_of_int plan.expansion_steps)
    plan.support

(** [try_cost ?max_steps ?pool ~db_elems ~db_tuples psi] is {!predict}
    followed by {!cost}, with the profiling itself capped at [max_steps]
    ticks: [None] when the query is too large to profile within the cap
    — the caller (the server's drift tracker) treats that as "no
    prediction" rather than burning evaluator time on the predictor. *)
let try_cost ?(max_steps = 200_000) ?(pool : Pool.t option)
    ~(db_elems : int) ~(db_tuples : int) (psi : Ucq.t) : float option =
  match predict ~budget:(Budget.of_steps max_steps) ?pool psi with
  | plan -> Some (cost ~db_elems ~db_tuples plan)
  | exception Budget.Exhausted _ -> None

type outcome = Exact | Fallback

let outcome_to_string = function
  | Exact -> "exact count via expansion"
  | Fallback -> "budget exhaustion, degrading to Karp-Luby estimate"

(** [predicted_outcome ?max_steps ~db_elems ~db_tuples plan] predicts
    whether [Runner.count] completes exactly under a [max_steps] budget
    or degrades to the Karp–Luby estimate.  Two certain cases anchor the
    prediction: no step limit always completes, and a limit at or below
    the (exactly known) expansion cost always exhausts. *)
let predicted_outcome ?(max_steps : int option) ~(db_elems : int)
    ~(db_tuples : int) (plan : t) : outcome =
  match max_steps with
  | None -> Exact
  | Some m ->
      if plan.expansion_steps >= m then Fallback
      else if cost ~db_elems ~db_tuples plan <= float_of_int m then Exact
      else Fallback

(** [describe plan] is the one-line [UCQ301] report body: selected
    algorithm, support profile, and asymptotic cost. *)
let describe (plan : t) : string =
  let terms = List.length plan.support in
  let shape =
    if terms = 0 then "empty support: the count is identically 0"
    else if plan.all_acyclic then
      Printf.sprintf "all %d acyclic, per-term cost O(|D| log |D|)" terms
    else
      Printf.sprintf "%d term%s, max treewidth bound %d, per-term cost O(n^%d)"
        terms
        (if terms = 1 then "" else "s")
        plan.max_tw_upper (plan.max_tw_upper + 1)
  in
  Printf.sprintf
    "count --via expansion: %d disjunct%s -> %d subset%s -> %d support \
     class%s (%d dropped); expansion costs %d steps; %s"
    plan.disjuncts
    (if plan.disjuncts = 1 then "" else "s")
    plan.subsets
    (if plan.subsets = 1 then "" else "s")
    (List.length plan.support)
    (if terms = 1 then "" else "es")
    plan.dropped plan.expansion_steps shape

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let term_to_json (i : term_info) : Trace_json.t =
  Trace_json.Obj
    [
      ("coefficient", Trace_json.Num (float_of_int i.coefficient));
      ("atoms", Trace_json.Num (float_of_int i.atoms));
      ("vars", Trace_json.Num (float_of_int i.vars));
      ("acyclic", Trace_json.Bool i.acyclic);
      ("quantifierFree", Trace_json.Bool i.quantifier_free);
      ("freeConnex", Trace_json.Bool i.free_connex);
      ("twLower", Trace_json.Num (float_of_int i.tw_lower));
      ("twUpper", Trace_json.Num (float_of_int i.tw_upper));
      ("twExact", Trace_json.Bool i.tw_exact);
    ]

let to_json (p : t) : Trace_json.t =
  Trace_json.Obj
    [
      ("disjuncts", Trace_json.Num (float_of_int p.disjuncts));
      ("subsets", Trace_json.Num (float_of_int p.subsets));
      ("expansionSteps", Trace_json.Num (float_of_int p.expansion_steps));
      ("support", Trace_json.Arr (List.map term_to_json p.support));
      ("dropped", Trace_json.Num (float_of_int p.dropped));
      ("maxTwUpper", Trace_json.Num (float_of_int p.max_tw_upper));
      ("allAcyclic", Trace_json.Bool p.all_acyclic);
      ("description", Trace_json.Str (describe p));
    ]
