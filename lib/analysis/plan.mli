(** Static cost prediction: which algorithm {!Runner.count} would select
    and what it would cost.

    The expansion phase — the [2^ℓ · poly(|Ψ|)] preprocessing shared by
    {!Runner.count}'s default [Expansion] method — is predicted
    {e exactly}: step budgets are deterministic and {!predict} meters the
    same code path.  The per-term counting phase depends on the database
    and is estimated from acyclicity and treewidth bounds
    (calibrated in EXPERIMENTS.md, E16). *)

(** Profile of one surviving expansion term (#equivalence class with
    non-zero coefficient [c_Ψ]). *)
type term_info = {
  coefficient : int;
  atoms : int;  (** tuples of the representative's structure *)
  vars : int;  (** universe size of the representative *)
  acyclic : bool;
  quantifier_free : bool;
  free_connex : bool;
  tw_lower : int;  (** Gaifman treewidth lower bound ([-1]: no vertices) *)
  tw_upper : int;  (** Gaifman treewidth upper bound *)
  tw_exact : bool;  (** the bounds coincide by an exact computation *)
}

type t = {
  disjuncts : int;  (** ℓ *)
  subsets : int;  (** [2^ℓ - 1] inclusion–exclusion terms *)
  expansion_steps : int;
      (** exact deterministic tick count of [Ucq.expansion] *)
  support : term_info list;  (** non-zero-coefficient classes *)
  dropped : int;  (** zero-coefficient classes (computed, then skipped) *)
  max_tw_upper : int;  (** [max] over support of [tw_upper] ([-1] if empty) *)
  all_acyclic : bool;  (** every support term acyclic *)
}

(** [predict ?budget ?pool psi] profiles the expansion, metering its
    exact deterministic step cost on a private budget; the consumed steps
    are charged to [?budget], whose remaining allowance also caps the
    run.
    @raise Budget.Exhausted when [?budget] cannot pay for the
    expansion. *)
val predict : ?budget:Budget.t -> ?pool:Pool.t -> Ucq.t -> t

(** [term_cost ~db_elems ~db_tuples info] estimates the budget ticks of
    counting one support term on a database with [db_elems] elements and
    [db_tuples] tuples. *)
val term_cost : db_elems:int -> db_tuples:int -> term_info -> float

(** [rep_cost ~db_elems ~db_tuples q] is {!term_cost} for a bare
    expansion representative (its profile is computed on the spot) — the
    scheduling hook the Runner passes to
    [Ucq.count_via_expansion ~term_cost] so the pool bin-packs terms
    largest-first by the calibrated estimate. *)
val rep_cost : db_elems:int -> db_tuples:int -> Cq.t -> float

(** [cost ~db_elems ~db_tuples plan] estimates the total ticks of
    [Runner.count ~via:Expansion]: exact expansion cost plus estimated
    per-term counting cost. *)
val cost : db_elems:int -> db_tuples:int -> t -> float

(** [try_cost ?max_steps ?pool ~db_elems ~db_tuples psi] is {!predict}
    followed by {!cost}, with the profiling capped at [max_steps]
    (default 200k) ticks on a private budget.  [None] when the cap is
    hit — the query is too large to profile cheaply, so callers on a
    latency path (the server's drift tracker) skip the prediction
    instead of paying for it.  Never raises {!Budget.Exhausted}. *)
val try_cost :
  ?max_steps:int ->
  ?pool:Pool.t ->
  db_elems:int ->
  db_tuples:int ->
  Ucq.t ->
  float option

(** What {!Runner.count} is predicted to do under a given budget. *)
type outcome = Exact | Fallback

val outcome_to_string : outcome -> string

(** [predicted_outcome ?max_steps ~db_elems ~db_tuples plan] predicts
    whether [Runner.count] completes exactly under a [max_steps] step
    budget ([None]: unlimited) or degrades to the Karp–Luby estimate.
    Anchored by two certain cases: no limit always completes; a limit at
    or below the exactly-known expansion cost always exhausts. *)
val predicted_outcome :
  ?max_steps:int -> db_elems:int -> db_tuples:int -> t -> outcome

(** [describe plan] is the one-line [UCQ301] report body. *)
val describe : t -> string

val to_json : t -> Trace_json.t
