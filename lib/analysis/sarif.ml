(** SARIF 2.1.0 emission and structural validation.

    One [run] per invocation, one [result] per diagnostic, the full rule
    catalogue in [tool.driver.rules].  Built on {!Trace_json} — the CLI
    has exactly one JSON writer.  {!validate} checks the structural
    subset this module emits (and that consumers like GitHub code
    scanning require), so [tools/sarif_check.exe] can gate CI without a
    schema validator on the runner. *)

let version = "2.1.0"

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let tool_name = "ucqc"

let rule_to_json (r : Diagnostic.rule) : Trace_json.t =
  Trace_json.Obj
    [
      ("id", Trace_json.Str r.Diagnostic.id);
      ( "shortDescription",
        Trace_json.Obj [ ("text", Trace_json.Str r.Diagnostic.title) ] );
      ( "defaultConfiguration",
        Trace_json.Obj
          [
            ( "level",
              Trace_json.Str (Diagnostic.sarif_level r.Diagnostic.default_severity)
            );
          ] );
    ]

(** SARIF requires a URI; stdin input gets a stable placeholder. *)
let uri_of_path (path : string option) : string =
  match path with None -> "stdin" | Some p -> p

let result_to_json ~(uri : string) (d : Diagnostic.t) : Trace_json.t =
  let location =
    match d.Diagnostic.span with
    | None ->
        Trace_json.Obj
          [
            ( "physicalLocation",
              Trace_json.Obj
                [
                  ( "artifactLocation",
                    Trace_json.Obj [ ("uri", Trace_json.Str uri) ] );
                ] );
          ]
    | Some s ->
        Trace_json.Obj
          [
            ( "physicalLocation",
              Trace_json.Obj
                [
                  ( "artifactLocation",
                    Trace_json.Obj [ ("uri", Trace_json.Str uri) ] );
                  ( "region",
                    Trace_json.Obj
                      [
                        ( "startLine",
                          Trace_json.Num (float_of_int s.Diagnostic.line) );
                        ( "startColumn",
                          Trace_json.Num (float_of_int s.Diagnostic.col) );
                        ( "endLine",
                          Trace_json.Num (float_of_int s.Diagnostic.end_line) );
                        ( "endColumn",
                          Trace_json.Num (float_of_int s.Diagnostic.end_col) );
                      ] );
                ] );
          ]
  in
  let fixes =
    match d.Diagnostic.fix with
    | None -> []
    | Some f ->
        let replacement (r : Diagnostic.replacement) =
          let s = r.Diagnostic.at in
          Trace_json.Obj
            [
              ( "deletedRegion",
                Trace_json.Obj
                  [
                    ( "startLine",
                      Trace_json.Num (float_of_int s.Diagnostic.line) );
                    ( "startColumn",
                      Trace_json.Num (float_of_int s.Diagnostic.col) );
                    ( "endLine",
                      Trace_json.Num (float_of_int s.Diagnostic.end_line) );
                    ( "endColumn",
                      Trace_json.Num (float_of_int s.Diagnostic.end_col) );
                  ] );
              ( "insertedContent",
                Trace_json.Obj [ ("text", Trace_json.Str r.Diagnostic.text) ]
              );
            ]
        in
        [
          ( "fixes",
            Trace_json.Arr
              [
                Trace_json.Obj
                  [
                    ( "description",
                      Trace_json.Obj
                        [ ("text", Trace_json.Str f.Diagnostic.description) ]
                    );
                    ( "artifactChanges",
                      Trace_json.Arr
                        [
                          Trace_json.Obj
                            [
                              ( "artifactLocation",
                                Trace_json.Obj
                                  [ ("uri", Trace_json.Str uri) ] );
                              ( "replacements",
                                Trace_json.Arr
                                  (List.map replacement
                                     f.Diagnostic.replacements) );
                            ];
                        ] );
                  ];
              ] );
        ]
  in
  Trace_json.Obj
    ([
       ("ruleId", Trace_json.Str d.Diagnostic.code);
       ("level", Trace_json.Str (Diagnostic.sarif_level d.Diagnostic.severity));
       ( "message",
         Trace_json.Obj [ ("text", Trace_json.Str d.Diagnostic.message) ] );
       ("locations", Trace_json.Arr [ location ]);
     ]
    @ fixes)

(** [of_reports ?tool_version reports] builds one SARIF log with a single
    run covering every report (one result per diagnostic, in report
    order). *)
let of_reports ?(tool_version : string = "dev")
    (reports : Analysis.report list) : Trace_json.t =
  let results =
    List.concat_map
      (fun (r : Analysis.report) ->
        let uri = uri_of_path r.Analysis.path in
        List.map (result_to_json ~uri) r.Analysis.diagnostics)
      reports
  in
  Trace_json.Obj
    [
      ("$schema", Trace_json.Str schema_uri);
      ("version", Trace_json.Str version);
      ( "runs",
        Trace_json.Arr
          [
            Trace_json.Obj
              [
                ( "tool",
                  Trace_json.Obj
                    [
                      ( "driver",
                        Trace_json.Obj
                          [
                            ("name", Trace_json.Str tool_name);
                            ("version", Trace_json.Str tool_version);
                            ( "informationUri",
                              Trace_json.Str
                                "https://github.com/ucqc/ucqc" );
                            ( "rules",
                              Trace_json.Arr
                                (List.map rule_to_json Diagnostic.rules) );
                          ] );
                    ] );
                ("results", Trace_json.Arr results);
              ];
          ] );
    ]

let to_string (log : Trace_json.t) : string = Trace_json.to_string log

(* ------------------------------------------------------------------ *)
(* Validation                                                         *)
(* ------------------------------------------------------------------ *)

let valid_levels = [ "error"; "warning"; "note"; "none" ]

(** [validate log] structurally checks a SARIF value: version 2.1.0;
    non-empty [runs]; per run a [tool.driver] with a string [name] and a
    [rules] array of objects with string [id]s; a [results] array whose
    entries carry a [ruleId] declared in [rules], a valid [level], a
    [message.text] string, and — when locations are present — a
    [physicalLocation.artifactLocation.uri] string and a [region] with
    1-based [startLine]/[startColumn] and end >= start.  Returns the
    number of results checked, or a description of the first
    violation. *)
let validate (log : Trace_json.t) : (int, string) result =
  let ( let* ) = Result.bind in
  let str ctx v =
    match v with
    | Some (Trace_json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "%s: expected a string" ctx)
  in
  let num ctx v =
    match v with
    | Some (Trace_json.Num n) -> Ok n
    | _ -> Error (Printf.sprintf "%s: expected a number" ctx)
  in
  let arr ctx v =
    match v with
    | Some (Trace_json.Arr l) -> Ok l
    | _ -> Error (Printf.sprintf "%s: expected an array" ctx)
  in
  let obj ctx v =
    match v with
    | Some (Trace_json.Obj _ as o) -> Ok o
    | _ -> Error (Printf.sprintf "%s: expected an object" ctx)
  in
  let* v = str "version" (Trace_json.member "version" log) in
  let* () =
    if v = version then Ok ()
    else Error (Printf.sprintf "version: expected %S, got %S" version v)
  in
  let* runs = arr "runs" (Trace_json.member "runs" log) in
  let* () = if runs = [] then Error "runs: empty" else Ok () in
  let validate_region ctx region =
    let* start_line = num (ctx ^ ".startLine") (Trace_json.member "startLine" region) in
    let* start_col =
      num (ctx ^ ".startColumn") (Trace_json.member "startColumn" region)
    in
    let* end_line = num (ctx ^ ".endLine") (Trace_json.member "endLine" region) in
    let* end_col = num (ctx ^ ".endColumn") (Trace_json.member "endColumn" region) in
    if start_line < 1.0 || start_col < 1.0 then
      Error (Printf.sprintf "%s: start is not 1-based" ctx)
    else if
      end_line < start_line || (end_line = start_line && end_col < start_col)
    then Error (Printf.sprintf "%s: end precedes start" ctx)
    else Ok ()
  in
  (* SARIF [fix] objects — the machine-applicable rewrites: a
     description, and artifactChanges whose replacements carry a
     well-formed deletedRegion and (when present) string
     insertedContent.text.  [tools/sarif_check.exe] additionally parses
     each insertedContent.text back as a UCQ. *)
  let validate_fix fctx fix =
    let* desc =
      obj (fctx ^ ".description") (Trace_json.member "description" fix)
    in
    let* _ =
      str (fctx ^ ".description.text") (Trace_json.member "text" desc)
    in
    let* changes =
      arr (fctx ^ ".artifactChanges") (Trace_json.member "artifactChanges" fix)
    in
    let* () =
      if changes = [] then Error (fctx ^ ".artifactChanges: empty") else Ok ()
    in
    List.fold_left
      (fun acc change ->
        let* () = acc in
        let cctx = fctx ^ ".artifactChanges[]" in
        let* artifact =
          obj
            (cctx ^ ".artifactLocation")
            (Trace_json.member "artifactLocation" change)
        in
        let* _uri = str (cctx ^ ".uri") (Trace_json.member "uri" artifact) in
        let* reps =
          arr (cctx ^ ".replacements") (Trace_json.member "replacements" change)
        in
        let* () =
          if reps = [] then Error (cctx ^ ".replacements: empty") else Ok ()
        in
        List.fold_left
          (fun acc rep ->
            let* () = acc in
            let rctx = cctx ^ ".replacements[]" in
            let* region =
              obj (rctx ^ ".deletedRegion")
                (Trace_json.member "deletedRegion" rep)
            in
            let* () = validate_region (rctx ^ ".deletedRegion") region in
            match Trace_json.member "insertedContent" rep with
            | None -> Ok ()
            | Some ic ->
                let* _ =
                  str
                    (rctx ^ ".insertedContent.text")
                    (Trace_json.member "text" ic)
                in
                Ok ())
          (Ok ()) reps)
      (Ok ()) changes
  in
  let validate_result ~rule_ids ri result =
    let ctx = Printf.sprintf "results[%d]" ri in
    let* rule_id = str (ctx ^ ".ruleId") (Trace_json.member "ruleId" result) in
    let* () =
      if List.mem rule_id rule_ids then Ok ()
      else Error (Printf.sprintf "%s: undeclared ruleId %S" ctx rule_id)
    in
    let* level = str (ctx ^ ".level") (Trace_json.member "level" result) in
    let* () =
      if List.mem level valid_levels then Ok ()
      else Error (Printf.sprintf "%s: invalid level %S" ctx level)
    in
    let* message = obj (ctx ^ ".message") (Trace_json.member "message" result) in
    let* _text = str (ctx ^ ".message.text") (Trace_json.member "text" message) in
    let* () =
      match Trace_json.member "locations" result with
      | None -> Ok ()
      | Some (Trace_json.Arr locs) ->
          List.fold_left
            (fun acc loc ->
              let* () = acc in
              let lctx = ctx ^ ".locations[]" in
              let* phys =
                obj (lctx ^ ".physicalLocation")
                  (Trace_json.member "physicalLocation" loc)
              in
              let* artifact =
                obj
                  (lctx ^ ".artifactLocation")
                  (Trace_json.member "artifactLocation" phys)
              in
              let* _uri =
                str (lctx ^ ".uri") (Trace_json.member "uri" artifact)
              in
              match Trace_json.member "region" phys with
              | None -> Ok ()
              | Some region -> validate_region (lctx ^ ".region") region)
            (Ok ()) locs
      | Some _ -> Error (ctx ^ ".locations: expected an array")
    in
    match Trace_json.member "fixes" result with
    | None -> Ok ()
    | Some (Trace_json.Arr fixes) ->
        List.fold_left
          (fun acc fix ->
            let* () = acc in
            validate_fix (ctx ^ ".fixes[]") fix)
          (Ok ()) fixes
    | Some _ -> Error (ctx ^ ".fixes: expected an array")
  in
  let validate_run ri run =
    let ctx = Printf.sprintf "runs[%d]" ri in
    let* tool = obj (ctx ^ ".tool") (Trace_json.member "tool" run) in
    let* driver = obj (ctx ^ ".tool.driver") (Trace_json.member "driver" tool) in
    let* _name = str (ctx ^ ".tool.driver.name") (Trace_json.member "name" driver) in
    let* rules =
      arr (ctx ^ ".tool.driver.rules") (Trace_json.member "rules" driver)
    in
    let* rule_ids =
      List.fold_left
        (fun acc rule ->
          let* ids = acc in
          let* id =
            str (ctx ^ ".rules[].id") (Trace_json.member "id" rule)
          in
          Ok (id :: ids))
        (Ok []) rules
    in
    let* results = arr (ctx ^ ".results") (Trace_json.member "results" run) in
    let* _ =
      List.fold_left
        (fun acc result ->
          let* i = acc in
          let* () = validate_result ~rule_ids i result in
          Ok (i + 1))
        (Ok 0) results
    in
    Ok (List.length results)
  in
  let* _, total =
    List.fold_left
      (fun acc run ->
        let* i, total = acc in
        let* n = validate_run i run in
        Ok (i + 1, total + n))
      (Ok (0, 0))
      runs
  in
  Ok total
