(** Structured lint diagnostics with stable codes.

    Every finding of the static analyzer is a {!t}: a stable [UCQnnn]
    code, a severity, an optional 1-based end-exclusive source span
    (mirroring the spans {!Ucqc_error.Parse_error} carries), and a
    rendered message.  The code space is partitioned:

    - [UCQ00x] — input validity and analyzer state (syntax, arity,
      incomplete analysis)
    - [UCQ1xx] — structural rules on the parsed surface syntax
    - [UCQ2xx] — semantic/complexity rules grounded in the paper's
      classification theorems
    - [UCQ3xx] — reports (predicted execution plan)
    - [UCQ4xx] — rewrite reports from the count-preserving optimizer
      (subsumed/duplicate disjunct dropped, disjunct minimized, query
      rewritten, maintenance tier changed)

    A diagnostic may additionally carry a machine-applicable {!fix}
    (surfaced as a SARIF [fixes] object) and a {!witness} — the
    containment homomorphism or atom-level match that *proves* the
    finding, letting the optimizer re-verify and apply it without
    re-searching. *)

type severity = Error | Warning | Info | Hint

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"
  | Hint -> "hint"

(* for ordering and [--deny warning]-style promotion thresholds *)
let severity_rank = function Error -> 3 | Warning -> 2 | Info -> 1 | Hint -> 0

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | "hint" -> Some Hint
  | _ -> None

(** SARIF [level] values: SARIF has no "hint"; informational findings map
    to ["note"]. *)
let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info | Hint -> "note"

(** 1-based, end-exclusive (like {!Ucqc_error.Parse_error}). *)
type span = { line : int; col : int; end_line : int; end_col : int }

(** One textual edit: delete [at], insert [text]. *)
type replacement = { at : span; text : string }

(** A machine-applicable fix — SARIF's [fixes] shape: a description plus
    replacements against the analyzed artifact.  Replacement [text] is
    always a complete query rendered by {!Pretty.ucq}, so it parses back
    as a UCQ (validated by [tools/sarif_check.exe]). *)
type fix = { description : string; replacements : replacement list }

(** The proof object behind a finding.  [Hom_witness] is a homomorphism
    from disjunct [source] to disjunct [target] fixing the free
    variables pointwise (so every answer of [target] is an answer of
    [source] — UCQ104/UCQ106); the [map] lists (element of source,
    element of target) pairs over the source disjunct's universe.
    [Atom_witness] records a duplicate atom: atom index [atom] of
    disjunct [disjunct] repeats atom index [first] (UCQ103). *)
type witness =
  | Hom_witness of { source : int; target : int; map : (int * int) list }
  | Atom_witness of { disjunct : int; atom : int; first : int }

type t = {
  code : string;
  severity : severity;
  span : span option;
  message : string;
  fix : fix option;
  witness : witness option;
}

(* ------------------------------------------------------------------ *)
(* Rule registry                                                      *)
(* ------------------------------------------------------------------ *)

type rule = { id : string; default_severity : severity; title : string }

(** The full catalogue, in code order — the single source of truth for
    the SARIF [rules] array, [--deny] validation, and the DESIGN.md rule
    table. *)
let rules : rule list =
  [
    { id = "UCQ001"; default_severity = Error; title = "syntax error" };
    { id = "UCQ002"; default_severity = Error; title = "relation arity clash" };
    { id = "UCQ003"; default_severity = Info; title = "analysis incomplete" };
    {
      id = "UCQ004";
      default_severity = Warning;
      title = "analyzer rule failed";
    };
    {
      id = "UCQ101";
      default_severity = Hint;
      title = "wildcard existential variable";
    };
    {
      id = "UCQ102";
      default_severity = Hint;
      title = "variable confined to a single atom";
    };
    {
      id = "UCQ103";
      default_severity = Warning;
      title = "duplicate atom in disjunct";
    };
    { id = "UCQ104"; default_severity = Warning; title = "subsumed disjunct" };
    {
      id = "UCQ105";
      default_severity = Warning;
      title = "cartesian-product disjunct";
    };
    { id = "UCQ106"; default_severity = Warning; title = "duplicate disjunct" };
    {
      id = "UCQ107";
      default_severity = Warning;
      title = "unconstrained free variable";
    };
    {
      id = "UCQ201";
      default_severity = Warning;
      title = "contract treewidth exceeds threshold";
    };
    {
      id = "UCQ202";
      default_severity = Info;
      title = "free-connexity violation";
    };
    {
      id = "UCQ203";
      default_severity = Warning;
      title = "inclusion-exclusion blowup";
    };
    { id = "UCQ204"; default_severity = Info; title = "WL-dimension bounds" };
    { id = "UCQ205"; default_severity = Info; title = "quantified union" };
    { id = "UCQ206"; default_severity = Info; title = "cyclic disjunct" };
    { id = "UCQ207"; default_severity = Hint; title = "not q-hierarchical" };
    { id = "UCQ301"; default_severity = Info; title = "predicted plan" };
    {
      id = "UCQ401";
      default_severity = Info;
      title = "subsumed disjunct dropped";
    };
    {
      id = "UCQ402";
      default_severity = Info;
      title = "duplicate disjunct dropped";
    };
    {
      id = "UCQ403";
      default_severity = Info;
      title = "disjunct minimized to its #core";
    };
    { id = "UCQ404"; default_severity = Info; title = "query rewritten" };
    {
      id = "UCQ405";
      default_severity = Info;
      title = "maintenance tier changed by optimization";
    };
  ]

let find_rule (id : string) : rule option =
  List.find_opt (fun r -> r.id = id) rules

(** [make ?span ?severity ?fix ?witness code fmt] builds a diagnostic,
    defaulting the severity from the registry.
    @raise Invalid_argument on an unregistered code. *)
let make ?(span : span option) ?(severity : severity option)
    ?(fix : fix option) ?(witness : witness option) (code : string) fmt =
  Printf.ksprintf
    (fun message ->
      match find_rule code with
      | None -> invalid_arg (Printf.sprintf "Diagnostic.make: unknown %s" code)
      | Some r ->
          {
            code;
            severity = Option.value severity ~default:r.default_severity;
            span;
            message;
            fix;
            witness;
          })
    fmt

(* ------------------------------------------------------------------ *)
(* Ordering and rendering                                             *)
(* ------------------------------------------------------------------ *)

(** Span-first ordering: findings with positions come first in document
    order, then report-level findings, then by code — a deterministic
    presentation order independent of rule evaluation order. *)
let compare (a : t) (b : t) : int =
  match (a.span, b.span) with
  | Some sa, Some sb ->
      let c = Stdlib.compare (sa.line, sa.col) (sb.line, sb.col) in
      if c <> 0 then c else Stdlib.compare (a.code, a.message) (b.code, b.message)
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> Stdlib.compare (a.code, a.message) (b.code, b.message)

let span_to_string (s : span) : string =
  if s.line = s.end_line && s.end_col <= s.col then
    Printf.sprintf "%d:%d" s.line s.col
  else Printf.sprintf "%d:%d-%d:%d" s.line s.col s.end_line s.end_col

(** [to_string ?path d] renders one [file:line:col-line:col: severity CODE:
    message] line — the [--format human] output. *)
let to_string ?(path : string option) (d : t) : string =
  let where =
    match (path, d.span) with
    | Some p, Some s -> Printf.sprintf "%s:%s: " p (span_to_string s)
    | Some p, None -> Printf.sprintf "%s: " p
    | None, Some s -> Printf.sprintf "%s: " (span_to_string s)
    | None, None -> ""
  in
  Printf.sprintf "%s%s %s: %s" where
    (severity_to_string d.severity)
    d.code d.message

(* ------------------------------------------------------------------ *)
(* Deny specifications                                                *)
(* ------------------------------------------------------------------ *)

(** What [--deny] promotes to a failure: a specific code, or every
    finding at or above a severity. *)
type deny = Code of string | At_least of severity

let deny_of_string (s : string) : (deny, string) result =
  match severity_of_string (String.lowercase_ascii s) with
  | Some sev -> Ok (At_least sev)
  | None -> (
      let s = String.uppercase_ascii s in
      match find_rule s with
      | Some _ -> Ok (Code s)
      | None ->
          Error
            (Printf.sprintf
               "unknown deny spec %S (expected a severity or a UCQnnn code)" s))

(** [denied specs d]: severity [Error] findings are always denied;
    otherwise a finding is denied when any spec matches it. *)
let denied (specs : deny list) (d : t) : bool =
  d.severity = Error
  || List.exists
       (function
         | Code c -> c = d.code
         | At_least sev -> severity_rank d.severity >= severity_rank sev)
       specs
