(** Update-maintenance tier selection for the live-update subsystem.

    When the database changes one tuple at a time ([ucqc watch], the
    server's [insert]/[delete]/[apply] ops), each prepared query is
    maintained by one of three strategies, picked from the same
    classification the lint rules already run:

    - {b Tier A} — the query is exhaustively q-hierarchical (Section
      1.2, Berkholz–Keppeler–Schweikardt): a [Dynamic_ucq] state
      answers every update in O(1) data complexity.
    - {b Tier B} — every combined query [∧(Ψ|J)] is alpha-acyclic: a
      per-update delta evaluation through the variable-elimination path
      of [lib/db], restricted to homomorphisms through the changed
      tuple, maintains exact counts without full recomputation.
    - {b Tier C} — everything else: the count is recomputed lazily
      (dirty flag + budget) on the next read.

    The exhaustive checks behind tiers A and B are exponential in the
    number of disjuncts, so selection is gated exactly like the
    [UCQ207] lint: beyond {!max_disjuncts} the query goes straight to
    tier C. *)

type t = A | B | C

val to_string : t -> string

(** [of_string s] accepts ["A" | "B" | "C"] (case-insensitive). *)
val of_string : string -> t option

(** [describe t] is a short human description of the maintenance
    strategy ("O(1) dynamic counting", …). *)
val describe : t -> string

(** A selected tier with the one-line reason the classifier chose it. *)
type selection = { tier : t; reason : string }

(** Disjunct-count gate above which the exponential criteria are not
    evaluated (mirrors the [UCQ207] lint gate). *)
val max_disjuncts : int

(** [select ?max_disjuncts psi] classifies [psi].  Pure and total;
    exponential in the number of disjuncts below the gate. *)
val select : ?max_disjuncts:int -> Ucq.t -> selection
