(** {1 ucqc — Counting answers to unions of conjunctive queries}

    Public umbrella for the library, a faithful implementation of
    {e Counting Answers to Unions of Conjunctive Queries: Natural
    Tractability Criteria and Meta-Complexity} (Focke, Goldberg, Roth,
    Živný; PODS 2024).

    {2 Layers}

    {b Substrates}
    - {!Combinat}, {!Listx}, {!Intset} — enumeration and set utilities
    - {!Bigint}, {!Rational}, {!Linalg} — exact arithmetic and linear
      algebra (for the Theorem 28 solver)
    - {!Graph}, {!Treedec}, {!Treewidth}, {!Graph_iso} — graphs, tree
      decompositions (Definition 14), exact and heuristic treewidth
    - {!Hypergraph} — GYO reduction, join trees, alpha-acyclicity
    - {!Signature}, {!Structure}, {!Struct_iso} — relational structures,
      tensor products, Gaifman graphs, isomorphism

    {b Query processing}
    - {!Hom} — homomorphism search (the semantics of CQ answers)
    - {!Jointree_count} — linear-time counting for acyclic quantifier-free
      CQs (Theorems 4/37)
    - {!Treedec_count} — the [n^(tw+1)] counting dynamic program
    - {!Relation}, {!Varelim}, {!Counting} — relational algebra, variable
      elimination for quantified queries, strategy dispatch
    - {!Generators} — synthetic databases

    {b The paper's objects}
    - {!Cq} — conjunctive queries [(A, X)]: acyclicity, contracts
      (Definition 20), #minimality and #cores (Definitions 16/19,
      Observation 17), q-hierarchicality
    - {!Ucq} — unions: combined queries [∧(Ψ|J)] (Definition 23), the CQ
      expansion and coefficient function [c_Ψ] (Definition 25, Lemma 26),
      answer counting by inclusion–exclusion and by expansion
    - {!Scomplex}, {!Power_complex} — simplicial complexes, reduced Euler
      characteristic (Definition 40), domination (Lemmas 41/42), power
      complexes (Definition 46, Lemma 47)
    - {!Cnf}, {!Sat_complex}, {!Ktk}, {!Lemma48}, {!Pipeline} — the
      hardness machinery of Section 4.2: 3-SAT → power complex → UCQ
    - {!Wl} — the k-dimensional Weisfeiler–Leman algorithm (Section 5)

    {b Meta algorithms}
    - {!Meta} — the META decision procedure (Lemma 38 / Theorem 5),
      hereditary treewidth (Definition 57), the gap problem (Definition 54)
    - {!Wl_dimension} — WL-dimension of quantifier-free UCQs (Theorems
      7/8/58)
    - {!Monotonicity} — complexity monotonicity (Theorem 28)
    - {!Classify} — the tractability criteria of Theorems 1/2/3
    - {!Counterexamples} — the Appendix A families (Lemmas 59/60/61)

    {b Runtime}
    - {!Budget} — deterministic step budgets, wall-clock deadlines, and
      cooperative cancellation for every exponential engine
    - {!Ucqc_error} — structured errors (parse positions, arity clashes,
      budget exhaustion) with CLI exit-code mapping
    - {!Runner} — Result-based engine boundaries with graceful
      degradation (exact count → Karp–Luby, exact treewidth → heuristic
      bounds)

    {b Extensions}
    - {!Parse}, {!Pretty} — a Datalog-flavoured surface syntax for queries
      and databases (used by the [ucqc] command-line tool)
    - {!Sampler}, {!Karp_luby} — uniform answer sampling and the Karp–Luby
      (ε, δ)-approximation for UCQ counts (Section 1.2)
    - {!Dynamic} — constant-time dynamic counting for q-hierarchical CQs
      (the Berkholz–Keppeler–Schweikardt setting of Section 1.2)
    - {!Paper_examples} — the worked objects of the paper (Figures 1/2,
      Ψ₁/Ψ₂, Corollary 49) *)

module Budget = Budget
module Ucqc_error = Ucqc_error
module Runner = Runner
module Combinat = Combinat
module Listx = Listx
module Intset = Intset
module Bigint = Bigint
module Rational = Rational
module Linalg = Linalg
module Graph = Graph
module Treedec = Treedec
module Nice_treedec = Nice_treedec
module Treewidth = Treewidth
module Graph_iso = Graph_iso
module Hypergraph = Hypergraph
module Signature = Signature
module Structure = Structure
module Struct_iso = Struct_iso
module Hom = Hom
module Semiring = Semiring
module Jointree_count = Jointree_count
module Nice_count = Nice_count
module Treedec_count = Treedec_count
module Relation = Relation
module Varelim = Varelim
module Counting = Counting
module Enumerate = Enumerate
module Generators = Generators
module Qgen = Qgen
module Cq = Cq
module Ucq = Ucq
module Scomplex = Scomplex
module Power_complex = Power_complex
module Cnf = Cnf
module Sat_complex = Sat_complex
module Ktk = Ktk
module Lemma48 = Lemma48
module Pipeline = Pipeline
module Wl = Wl
module Meta = Meta
module Wl_dimension = Wl_dimension
module Monotonicity = Monotonicity
module Classify = Classify
module Counterexamples = Counterexamples
module Parse = Parse
module Pretty = Pretty
module Sampler = Sampler
module Karp_luby = Karp_luby
module Dynamic = Dynamic
module Dynamic_ucq = Dynamic_ucq
module Paper_examples = Paper_examples
