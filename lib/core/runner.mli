(** Result-based engine boundaries with graceful degradation.

    Wrappers around the exact engines that run under a {!Budget.t}, catch
    the {!Budget.Exhausted} signal at the boundary, and either degrade to
    a tagged polynomial-time substitute or return a structured
    {!Ucqc_error.t}.  No library exception escapes these functions.

    Degradation matrix:
    - exact UCQ count     → Karp–Luby [(ε, δ)]-estimate ({!Approximate})
    - exact treewidth     → minor-min-width / min-fill pair ({!Heuristic})
    - exact WL-dimension  → Theorem 7 bound pair ({!Bounds})
    - META decision       → no substitute: always an error on exhaustion

    Pass [~fallback:false] to disable degradation and surface
    [Budget_exhausted] instead. *)

(** [guard f] is {!Ucqc_error.guard} extended with the engine-level
    exceptions ([Counting.Unsupported]) that the runtime layer cannot
    know. *)
val guard : (unit -> 'a) -> ('a, Ucqc_error.t) result

(** {2 Abandoned attempts}

    When a wrapper degrades, the cost already sunk into the abandoned
    exact attempt is captured — the budget counter keeps running into the
    fallback, so without the deltas that consumption would be
    unattributable.  Every degradation also emits a [runner.degraded]
    telemetry event carrying the same data plus the reason. *)

type abandoned = {
  phase : string;  (** budget phase of the abandoned attempt *)
  steps : int;  (** budget steps consumed by the attempt alone *)
  elapsed_s : float;  (** wall seconds spent on the attempt *)
}

(** {2 Counting} *)

type count_outcome =
  | Exact of int
  | Approximate of {
      value : float;
      epsilon : float;
      delta : float;
      exhausted : Budget.exhaustion;
          (** where the exact computation ran out *)
      abandoned : abandoned;
          (** what the abandoned exact attempt consumed *)
    }

(** Which exact counting algorithm to budget. *)
type count_method = Expansion | Inclusion_exclusion | Naive

val default_epsilon : float
(** [0.1] — relative error of the degraded estimate. *)

val default_delta : float
(** [0.05] — failure probability of the degraded estimate. *)

(** [count ?strategy ?via ?fallback ?optimize ?select ?epsilon ?delta
    ?seed ~budget psi d] counts [ans(Ψ → D)] exactly under [budget],
    degrading to a Karp–Luby estimate on exhaustion (unless
    [fallback = false]).

    [optimize] (default [false]) first applies the count-preserving
    cover optimizer ({!Optimize.run}) — same count, fewer disjuncts.
    [select] (default [false]) lets the calibrated {!Plan} predictor
    skip a doomed exact attempt and go straight to the estimator
    (expansion method only; advisory — a wrong [Exact] verdict still
    degrades normally).  A selection-skipped run reports exhaustion
    phase ["count.predicted"] with zero consumed steps. *)
val count :
  ?strategy:Counting.strategy ->
  ?via:count_method ->
  ?fallback:bool ->
  ?optimize:bool ->
  ?select:bool ->
  ?epsilon:float ->
  ?delta:float ->
  ?seed:int ->
  ?pool:Pool.t ->
  budget:Budget.t ->
  Ucq.t ->
  Structure.t ->
  (count_outcome, Ucqc_error.t) result

(** [approx ?seed ~epsilon ~delta ~budget psi d] runs the Karp–Luby
    estimator under [budget]; exhaustion is always an error (nothing to
    degrade to). *)
val approx :
  ?seed:int ->
  ?pool:Pool.t ->
  epsilon:float ->
  delta:float ->
  budget:Budget.t ->
  Ucq.t ->
  Structure.t ->
  (Karp_luby.estimate, Ucqc_error.t) result

(** {2 Treewidth} *)

type treewidth_outcome =
  | Exact_width of int
  | Heuristic of {
      lower : int;
      upper : int;
      exhausted : Budget.exhaustion;
      abandoned : abandoned;
    }

val treewidth :
  ?fallback:bool ->
  ?pool:Pool.t ->
  budget:Budget.t ->
  Graph.t ->
  (treewidth_outcome, Ucqc_error.t) result

(** {2 WL-dimension} *)

type dimension_outcome =
  | Exact_dim of int
  | Bounds of {
      lower : int;
      upper : int;
      exhausted : Budget.exhaustion;
      abandoned : abandoned;
    }

val wl_dimension :
  ?fallback:bool ->
  ?pool:Pool.t ->
  budget:Budget.t ->
  Ucq.t ->
  (dimension_outcome, Ucqc_error.t) result

(** {2 META} *)

val decide_meta :
  ?pool:Pool.t -> budget:Budget.t -> Ucq.t -> (Meta.decision, Ucqc_error.t) result

(** {2 Static pre-flight}

    [preflight ?budget ?pool ?path text] runs the static analyzer
    ({!Analysis.check}) over a query text — the engine behind
    [ucqc check] and the [--lint] flag of the executing subcommands.
    Never raises; emits a [runner.preflight] telemetry event with the
    finding count and maximum severity.  Without a budget the analyzer's
    own default allowance applies, so pre-flight never consumes the
    execution budget of the run it precedes. *)

val preflight :
  ?budget:Budget.t ->
  ?pool:Pool.t ->
  ?path:string ->
  string ->
  Analysis.report

(** {2 Exit codes}

    0 — exact success; 2 — degraded success; errors map through
    {!Ucqc_error.exit_code} (65 data, 124 budget, 70 internal). *)

val exit_exact : int
val exit_degraded : int
val exit_code : degraded:('a -> bool) -> ('a, Ucqc_error.t) result -> int
val count_exit_code : (count_outcome, Ucqc_error.t) result -> int
val treewidth_exit_code : (treewidth_outcome, Ucqc_error.t) result -> int
val dimension_exit_code : (dimension_outcome, Ucqc_error.t) result -> int
