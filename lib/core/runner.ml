(** Result-based engine boundaries with graceful degradation.

    The library's engines raise {!Budget.Exhausted} from their hot loops;
    this module is the boundary that catches it and either degrades to a
    polynomial-time substitute — exact UCQ counting falls back to the
    Karp–Luby estimator, exact treewidth to the minor-min-width /
    min-fill bound pair — or reports a structured
    {!Ucqc_error.Budget_exhausted}.  Every wrapper returns [Result]; no
    exception of the library escapes it.  Degraded results are tagged so
    callers (the CLI, services) can distinguish exact from approximate
    output and pick the corresponding exit code. *)

(* Extend the runtime-level guard with engine exceptions the runtime
   library cannot know about (layering: ucq_runtime sits below the
   engines). *)
let guard (f : unit -> 'a) : ('a, Ucqc_error.t) result =
  try Ucqc_error.guard f
  with Counting.Unsupported msg -> Error (Ucqc_error.Unsupported msg)

(* ------------------------------------------------------------------ *)
(* Abandoned-attempt accounting                                       *)
(* ------------------------------------------------------------------ *)

type abandoned = { phase : string; steps : int; elapsed_s : float }

(* Meter the exact attempt so its cost is not lost on degradation: the
   budget's counter keeps running into the fallback, so the consumption
   of the abandoned attempt must be deltas captured at its boundary. *)
let metered ~(budget : Budget.t) ~(phase : string) (f : unit -> 'a) :
    ('a, Budget.exhaustion) result * abandoned =
  let steps0 = Budget.steps_done budget in
  let t0 = Unix.gettimeofday () in
  let result = Budget.run budget ~phase f in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  (result, { phase; steps = Budget.steps_done budget - steps0; elapsed_s })

let degraded_event ~(task : string) ~(fallback : string)
    (abandoned : abandoned) : unit =
  Telemetry.event
    ~attrs:(fun () ->
      [
        ("task", Telemetry.S task);
        ("fallback", Telemetry.S fallback);
        ("reason", Telemetry.S "budget-exhausted");
        ("phase", Telemetry.S abandoned.phase);
        ("steps", Telemetry.I abandoned.steps);
        ("elapsed_ms", Telemetry.F (abandoned.elapsed_s *. 1000.));
      ])
    "runner.degraded"

(* ------------------------------------------------------------------ *)
(* Counting                                                           *)
(* ------------------------------------------------------------------ *)

type count_outcome =
  | Exact of int
  | Approximate of {
      value : float;
      epsilon : float;
      delta : float;
      exhausted : Budget.exhaustion;
      abandoned : abandoned;
    }

type count_method = Expansion | Inclusion_exclusion | Naive

let default_epsilon = 0.1
let default_delta = 0.05

(* Cap on the private profiling budget of predictor-driven selection —
   prediction must stay cheap relative to the run it steers (the same
   cap the server's drift tracker uses). *)
let plan_predict_cap = 200_000

(** [count ?strategy ?via ?fallback ?optimize ?select ?epsilon ?delta
    ?seed ~budget psi d] counts [ans(Ψ → D)] exactly (via the CQ
    expansion by default) under [budget].  On exhaustion, when
    [fallback] (default [true]), it degrades to the un-budgeted
    Karp–Luby [(ε, δ)]-estimate — polynomial per sample — tagged with
    the exhaustion record; with [fallback = false] the exhaustion
    becomes [Error (Budget_exhausted _)].

    [optimize] (default [false]) first applies the count-preserving
    cover optimizer ({!Optimize.run}): the answer count is unchanged by
    construction, but dropped disjuncts shrink the [2^ℓ] expansion the
    exact path must pay for.  [select] (default [false]) replaces the
    fixed try-then-degrade order with predictor-driven selection: the
    calibrated {!Plan} estimate (computed on a private capped budget)
    decides up front whether the exact expansion can finish under the
    remaining budget, and on a [Fallback] verdict goes straight to
    Karp–Luby without sinking the budget into a doomed exact attempt.
    Selection only ever skips work — a wrong [Exact] verdict still
    degrades normally on exhaustion. *)
let count ?strategy ?(via = Expansion) ?(fallback = true)
    ?(optimize = false) ?(select = false) ?(epsilon = default_epsilon)
    ?(delta = default_delta) ?seed ?(pool : Pool.t option)
    ~(budget : Budget.t) (psi : Ucq.t) (d : Structure.t) :
    (count_outcome, Ucqc_error.t) result =
  let psi =
    if not optimize then psi
    else begin
      let r = Optimize.run psi in
      if r.Optimize.changed then
        Telemetry.event
          ~attrs:(fun () ->
            [
              ("task", Telemetry.S "count");
              ( "disjuncts_removed",
                Telemetry.I (Optimize.disjuncts_removed r) );
              ("atoms_removed", Telemetry.I (Optimize.atoms_removed r));
            ])
          "runner.optimized";
      r.Optimize.optimized
    end
  in
  let exact () =
    match via with
    | Expansion ->
        (* with real parallelism, rank the expansion terms by the
           calibrated database-aware estimate so the pool packs the
           most expensive term first; sequentially the ranking is dead
           weight, so skip the profiling entirely *)
        let term_cost =
          if Pool.is_parallel pool then
            Some
              (Plan.rep_cost
                 ~db_elems:(Structure.universe_size d)
                 ~db_tuples:(Structure.num_tuples d))
          else None
        in
        Ucq.count_via_expansion ?strategy ~budget ?pool ?term_cost psi d
    | Inclusion_exclusion ->
        Ucq.count_inclusion_exclusion ?strategy ~budget ?pool psi d
    | Naive -> Ucq.count_naive ~budget ?pool psi d
  in
  let estimate ~exhausted ~abandoned =
    degraded_event ~task:"count" ~fallback:"karp-luby" abandoned;
    guard (fun () ->
        let est = Karp_luby.fpras ?seed ?pool ~epsilon ~delta psi d in
        Approximate
          { value = est.Karp_luby.value; epsilon; delta; exhausted; abandoned })
  in
  (* Predictor-driven selection: only meaningful for the expansion
     method (the predictor meters exactly that code path), only when a
     fallback exists to select, and only advisory — prediction failures
     of any kind fall back to the try-then-degrade order. *)
  let predicted_fallback =
    select && fallback && via = Expansion
    &&
    match Plan.predict ~budget:(Budget.of_steps plan_predict_cap) ?pool psi with
    | plan ->
        Plan.predicted_outcome
          ?max_steps:(Budget.remaining_steps budget)
          ~db_elems:(Structure.universe_size d)
          ~db_tuples:(Structure.num_tuples d) plan
        = Plan.Fallback
    | exception _ -> false
  in
  if predicted_fallback then
    estimate
      ~exhausted:{ Budget.phase = "count.predicted"; steps_done = 0 }
      ~abandoned:{ phase = "count.predicted"; steps = 0; elapsed_s = 0. }
  else
    match guard (fun () -> metered ~budget ~phase:"count" exact) with
    | Error e -> Error e
    | Ok (Ok n, _) -> Ok (Exact n)
    | Ok (Error exhausted, abandoned) ->
        if not fallback then Error (Ucqc_error.of_exhaustion exhausted)
        else estimate ~exhausted ~abandoned

(** [approx ?seed ~epsilon ~delta ~budget psi d] runs the Karp–Luby
    estimator under [budget] directly (no further fallback exists below
    it). *)
let approx ?seed ?(pool : Pool.t option) ~(epsilon : float)
    ~(delta : float) ~(budget : Budget.t) (psi : Ucq.t) (d : Structure.t) :
    (Karp_luby.estimate, Ucqc_error.t) result =
  match
    guard (fun () ->
        Budget.run budget ~phase:"approx" (fun () ->
            Karp_luby.fpras ?seed ?pool ~budget ~epsilon ~delta psi d))
  with
  | Error e -> Error e
  | Ok (Ok est) -> Ok est
  | Ok (Error exhausted) -> Error (Ucqc_error.of_exhaustion exhausted)

(* ------------------------------------------------------------------ *)
(* Treewidth                                                          *)
(* ------------------------------------------------------------------ *)

type treewidth_outcome =
  | Exact_width of int
  | Heuristic of {
      lower : int;
      upper : int;
      exhausted : Budget.exhaustion;
      abandoned : abandoned;
    }

(** [treewidth ?fallback ~budget g] computes exact treewidth by branch and
    bound; on exhaustion it degrades to the polynomial
    minor-min-width/min-fill bound pair [lower ≤ tw(g) ≤ upper]. *)
let treewidth ?(fallback = true) ?(pool : Pool.t option)
    ~(budget : Budget.t) (g : Graph.t) :
    (treewidth_outcome, Ucqc_error.t) result =
  match
    guard (fun () ->
        metered ~budget ~phase:"treewidth" (fun () ->
            Treewidth.treewidth ~budget ?pool g))
  with
  | Error e -> Error e
  | Ok (Ok w, _) -> Ok (Exact_width w)
  | Ok (Error exhausted, abandoned) ->
      if not fallback then Error (Ucqc_error.of_exhaustion exhausted)
      else begin
        degraded_event ~task:"treewidth" ~fallback:"heuristic-bounds" abandoned;
        guard (fun () ->
            let lower = Treewidth.lower_bound g in
            let upper, _ = Treewidth.heuristic g in
            Heuristic { lower; upper; exhausted; abandoned })
      end

(* ------------------------------------------------------------------ *)
(* WL-dimension                                                       *)
(* ------------------------------------------------------------------ *)

type dimension_outcome =
  | Exact_dim of int
  | Bounds of {
      lower : int;
      upper : int;
      exhausted : Budget.exhaustion;
      abandoned : abandoned;
    }

(** [wl_dimension ?fallback ~budget psi] computes [dim_WL(Ψ) = hdtw(Ψ)]
    exactly; on exhaustion it degrades to the Theorem 7 polynomial-per-term
    bound pair.  (The fallback re-runs the [2^ℓ] expansion un-budgeted:
    exhaustion almost always happens in the per-term exact treewidth, and
    the expansion itself is small for query-sized [ℓ].) *)
let wl_dimension ?(fallback = true) ?(pool : Pool.t option)
    ~(budget : Budget.t) (psi : Ucq.t) :
    (dimension_outcome, Ucqc_error.t) result =
  match
    guard (fun () ->
        metered ~budget ~phase:"wl-dimension" (fun () ->
            Wl_dimension.exact ~budget ?pool psi))
  with
  | Error e -> Error e
  | Ok (Ok k, _) -> Ok (Exact_dim k)
  | Ok (Error exhausted, abandoned) ->
      if not fallback then Error (Ucqc_error.of_exhaustion exhausted)
      else begin
        degraded_event ~task:"wl-dimension" ~fallback:"theorem-7-bounds"
          abandoned;
        guard (fun () ->
            let lower, upper = Wl_dimension.approximate psi in
            Bounds { lower; upper; exhausted; abandoned })
      end

(* ------------------------------------------------------------------ *)
(* META                                                               *)
(* ------------------------------------------------------------------ *)

(** [decide_meta ~budget psi] runs the META decision procedure.  There is
    no approximate substitute for a yes/no classification, so exhaustion
    is always an error. *)
let decide_meta ?(pool : Pool.t option) ~(budget : Budget.t) (psi : Ucq.t)
    : (Meta.decision, Ucqc_error.t) result =
  match
    guard (fun () ->
        Budget.run budget ~phase:"meta" (fun () ->
            Meta.decide ~budget ?pool psi))
  with
  | Error e -> Error e
  | Ok (Ok d) -> Ok d
  | Ok (Error exhausted) -> Error (Ucqc_error.of_exhaustion exhausted)

(* ------------------------------------------------------------------ *)
(* Exit codes                                                         *)
(* ------------------------------------------------------------------ *)

let exit_exact = 0
let exit_degraded = 2

(** [exit_code ~degraded r]: 0 for an exact success, 2 for a degraded
    one, and the {!Ucqc_error.exit_code} of the error otherwise. *)
let exit_code ~(degraded : 'a -> bool) : ('a, Ucqc_error.t) result -> int =
  function
  | Ok v -> if degraded v then exit_degraded else exit_exact
  | Error e -> Ucqc_error.exit_code e

let count_exit_code : (count_outcome, Ucqc_error.t) result -> int =
  exit_code ~degraded:(function Exact _ -> false | Approximate _ -> true)

let treewidth_exit_code : (treewidth_outcome, Ucqc_error.t) result -> int =
  exit_code ~degraded:(function Exact_width _ -> false | Heuristic _ -> true)

let dimension_exit_code : (dimension_outcome, Ucqc_error.t) result -> int =
  exit_code ~degraded:(function Exact_dim _ -> false | Bounds _ -> true)

(* ------------------------------------------------------------------ *)
(* Static pre-flight                                                  *)
(* ------------------------------------------------------------------ *)

let preflight ?(budget : Budget.t option) ?(pool : Pool.t option)
    ?(path : string option) (text : string) : Analysis.report =
  let report = Analysis.check ?budget ?pool ?path text in
  Telemetry.event
    ~attrs:(fun () ->
      [
        ("path", Telemetry.S (Option.value path ~default:"<stdin>"));
        ("findings", Telemetry.I (List.length report.Analysis.diagnostics));
        ( "max_severity",
          Telemetry.S
            (match Analysis.max_severity report with
            | None -> "clean"
            | Some s -> Diagnostic.severity_to_string s) );
      ])
    "runner.preflight";
  report
