(** Evaluation of conjunctive queries with existential quantification by
    variable elimination (bucket elimination).

    Counting the answers of a query with quantified variables is counting
    the distinct projections of the homomorphism set onto the free
    variables.  This evaluator materialises exactly that projection:
    quantified variables are eliminated one at a time (join the relations
    mentioning the variable, then project it out), then the remaining
    relations — all over free variables — are joined.  The intermediate
    relation sizes are governed by the elimination order; we pick the
    quantified variable occurring in the fewest current relations first. *)

(** [answer_relation q d] is the set of answers [Ans((A, X) → D)] as a
    relation over a subset [V ⊆ X] of covered free variables, paired with
    the number of free variables not covered by any atom (each such
    variable ranges freely over the universe). *)
let answer_relation ?(budget : Budget.t option) (q : Cq.t) (d : Structure.t) :
    Relation.t * int =
  let a = Cq.structure q in
  if not (Signature.subset (Structure.signature a) (Structure.signature d))
  then (Relation.falsity, 0)
  else begin
    let rels =
      ref
        (List.concat_map
           (fun (name, ts) ->
             let td = Structure.relation d name in
             List.map (fun qt -> Relation.of_atom qt td) ts)
           (Structure.relations a))
    in
    let remaining = ref (Cq.quantified q) in
    let domain_nonempty = Structure.universe_size d > 0 in
    let ok = ref true in
    while !remaining <> [] && !ok do
      (* choose the quantified variable in the fewest relations *)
      let occurrences y =
        List.length (List.filter (fun r -> List.mem y r.Relation.vars) !rels)
      in
      let y = Listx.min_by occurrences !remaining in
      remaining := List.filter (fun z -> z <> y) !remaining;
      let with_y, without_y =
        List.partition (fun r -> List.mem y r.Relation.vars) !rels
      in
      match with_y with
      | [] ->
          (* isolated quantified variable: satisfiable iff the domain is
             non-empty *)
          if not domain_nonempty then ok := false
      | _ ->
          let joined = Relation.join_all with_y in
          (* cost-proportional accounting: the joined intermediate is the
             quantity a budget must bound *)
          Budget.ticks_opt budget (1 + Relation.cardinality joined);
          let projected = Relation.eliminate joined y in
          if Relation.is_empty projected then ok := false;
          rels := projected :: without_y
    done;
    if not !ok then (Relation.falsity, 0)
    else begin
      let answers = Relation.join_all !rels in
      let covered = answers.Relation.vars in
      let missing =
        List.length (List.filter (fun x -> not (List.mem x covered)) (Cq.free q))
      in
      (answers, missing)
    end
  end

(** [count ?budget q d] is [ans((A, X) → D)]. *)
let count ?(budget : Budget.t option) (q : Cq.t) (d : Structure.t) : int =
  let n = Structure.universe_size d in
  if n = 0 then begin
    (* No assignments exist unless X = ∅; the empty assignment is an answer
       iff the (necessarily atom- and variable-free) query is satisfied. *)
    if Cq.free q = [] && Hom.exists ?budget (Cq.structure q) d then 1 else 0
  end
  else begin
    let answers, missing = answer_relation ?budget q d in
    Relation.cardinality answers * Combinat.power_int n missing
  end

(** [answers q d] enumerates the full answer set over the sorted free
    variables (materialising the cartesian expansion of uncovered
    variables).  Intended for tests and small examples. *)
let answers (q : Cq.t) (d : Structure.t) : int list list =
  let n = Structure.universe_size d in
  if n = 0 then if count q d = 1 then [ [] ] else []
  else begin
    let rel, _ = answer_relation q d in
    let covered = rel.Relation.vars in
    let x = Cq.free q in
    let missing = List.filter (fun v -> not (List.mem v covered)) x in
    let dom = Structure.universe d in
    let expansions = Combinat.tuples (List.length missing) dom in
    List.concat_map
      (fun tup ->
        let env = List.combine covered tup in
        List.map
          (fun ext ->
            let env = env @ List.combine missing ext in
            List.map (fun v -> List.assoc v env) x)
          expansions)
      rel.Relation.tuples
    |> List.sort_uniq compare
  end

(** [count_big q d] is the exact arbitrary-precision variant of {!count}
    (the materialised relation is still bounded by memory, but the isolated
    free-variable factor [n^missing] may exceed native range). *)
let count_big (q : Cq.t) (d : Structure.t) : Bigint.t =
  let n = Structure.universe_size d in
  if n = 0 then Bigint.of_int (count q d)
  else begin
    let answers, missing = answer_relation q d in
    Bigint.mul
      (Bigint.of_int (Relation.cardinality answers))
      (Bigint.pow (Bigint.of_int n) missing)
  end
