(** Counting answers to a single conjunctive query: strategy dispatch.

    - [Naive] iterates all assignments of the free variables and tests
      extendability with the backtracking engine — the reference oracle.
    - [Yannakakis] is the linear-time join-tree counter for acyclic
      quantifier-free queries (Theorems 4/37).
    - [Treedec] is the [n^{tw+1}] dynamic program for quantifier-free
      queries of bounded treewidth (tractable side of Theorem 21).
    - [Weighted] is sum-product variable elimination over weighted
      relations — the sparsity-aware counter for cyclic quantifier-free
      queries (used by [Auto] in that regime).
    - [Varelim] handles existential quantification by materialising the
      projected answer set.
    - [Auto] picks the cheapest sound strategy for the query shape. *)

type strategy = Auto | Naive | Yannakakis | Treedec | Weighted | Varelim

exception Unsupported of string

(* per-resolved-strategy call counters — counters, not spans: [count] sits
   inside the 2^ℓ subset loops and a per-call span closure would allocate
   even with telemetry off *)
let naive_c = Telemetry.counter "count.naive"
let yannakakis_c = Telemetry.counter "count.yannakakis"
let treedec_c = Telemetry.counter "count.treedec"
let weighted_c = Telemetry.counter "count.weighted"
let varelim_c = Telemetry.counter "count.varelim"

(** [count ?strategy ?budget ?pool q d] is [ans((A, X) → D)].  The budget
    is threaded into the engines with super-linear worst cases ([Naive]
    assignment enumeration, the variable-elimination joins); the
    linear-time join-tree counter only re-checks the limits on entry.
    [Naive] enumerates the [|D|^|X|] assignments lazily (never
    materialising the product) and, given a parallel pool, sweeps index
    ranges of the assignment space on the worker domains.
    @raise Unsupported when a forced strategy does not apply to [q].
    @raise Budget.Exhausted when the budget runs out mid-count. *)
let count ?(strategy = Auto) ?(budget : Budget.t option)
    ?(pool : Pool.t option) (q : Cq.t) (d : Structure.t) : int =
  Budget.check_opt budget;
  let quantifier_free = Cq.is_quantifier_free q in
  match strategy with
  | Naive ->
      Telemetry.incr naive_c;
      let x = Cq.free q in
      let k = List.length x in
      let dom = Structure.universe d in
      let is_answer tup =
        Budget.tick_opt budget;
        Hom.exists ?budget ~fixed:(List.combine x tup) (Cq.structure q) d
      in
      if not (Pool.is_parallel pool) then
        Seq.fold_left
          (fun acc tup -> if is_answer tup then acc + 1 else acc)
          0
          (Combinat.tuples_seq k dom)
      else
        Pool.count_range (Option.get pool) ?budget
          ~total:(Combinat.num_tuples k dom)
          (fun idx -> is_answer (Combinat.tuple_of_index k dom idx))
  | Yannakakis -> begin
      if not quantifier_free then
        raise (Unsupported "Yannakakis counting requires a quantifier-free query");
      match Jointree_count.count (Cq.structure q) d with
      | Some c ->
          Telemetry.incr yannakakis_c;
          c
      | None -> raise (Unsupported "Yannakakis counting requires an acyclic query")
    end
  | Treedec ->
      if not quantifier_free then
        raise (Unsupported "Treedec counting requires a quantifier-free query");
      Telemetry.incr treedec_c;
      Treedec_count.count (Cq.structure q) d
  | Weighted ->
      if not quantifier_free then
        raise (Unsupported "Weighted counting requires a quantifier-free query");
      Telemetry.incr weighted_c;
      Wvarelim.count_homs ?budget (Cq.structure q) d
  | Varelim ->
      Telemetry.incr varelim_c;
      Varelim.count ?budget q d
  | Auto ->
      if quantifier_free then begin
        match Jointree_count.count (Cq.structure q) d with
        | Some c ->
            Telemetry.incr yannakakis_c;
            c
        | None ->
            Telemetry.incr weighted_c;
            Wvarelim.count_homs ?budget (Cq.structure q) d
      end
      else begin
        Telemetry.incr varelim_c;
        Varelim.count ?budget q d
      end

(** [count_big q d] is [ans((A, X) → D)] with exact arbitrary-precision
    arithmetic (same automatic dispatch as [count ~strategy:Auto]). *)
let count_big (q : Cq.t) (d : Structure.t) : Bigint.t =
  if Cq.is_quantifier_free q then begin
    match Jointree_count.count_big (Cq.structure q) d with
    | Some c -> c
    | None -> Treedec_count.count_big (Cq.structure q) d
  end
  else Varelim.count_big q d
