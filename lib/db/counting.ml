(** Counting answers to a single conjunctive query: strategy dispatch.

    - [Naive] iterates all assignments of the free variables and tests
      extendability with the backtracking engine — the reference oracle.
    - [Yannakakis] is the linear-time join-tree counter for acyclic
      quantifier-free queries (Theorems 4/37).
    - [Treedec] is the [n^{tw+1}] dynamic program for quantifier-free
      queries of bounded treewidth (tractable side of Theorem 21).
    - [Weighted] is sum-product variable elimination over weighted
      relations — the sparsity-aware counter for cyclic quantifier-free
      queries (used by [Auto] in that regime).
    - [Varelim] handles existential quantification by materialising the
      projected answer set.
    - [Auto] picks the cheapest sound strategy for the query shape. *)

type strategy = Auto | Naive | Yannakakis | Treedec | Weighted | Varelim

exception Unsupported of string

(** [count ?strategy ?budget q d] is [ans((A, X) → D)].  The budget is
    threaded into the engines with super-linear worst cases ([Naive]
    assignment enumeration, the variable-elimination joins); the
    linear-time join-tree counter only re-checks the limits on entry.
    @raise Unsupported when a forced strategy does not apply to [q].
    @raise Budget.Exhausted when the budget runs out mid-count. *)
let count ?(strategy = Auto) ?(budget : Budget.t option) (q : Cq.t)
    (d : Structure.t) : int =
  Budget.check_opt budget;
  let quantifier_free = Cq.is_quantifier_free q in
  match strategy with
  | Naive ->
      let x = Cq.free q in
      let dom = Structure.universe d in
      let assignments = Combinat.tuples (List.length x) dom in
      List.length
        (List.filter
           (fun tup ->
             Budget.tick_opt budget;
             Hom.exists ?budget ~fixed:(List.combine x tup) (Cq.structure q) d)
           assignments)
  | Yannakakis -> begin
      if not quantifier_free then
        raise (Unsupported "Yannakakis counting requires a quantifier-free query");
      match Jointree_count.count (Cq.structure q) d with
      | Some c -> c
      | None -> raise (Unsupported "Yannakakis counting requires an acyclic query")
    end
  | Treedec ->
      if not quantifier_free then
        raise (Unsupported "Treedec counting requires a quantifier-free query");
      Treedec_count.count (Cq.structure q) d
  | Weighted ->
      if not quantifier_free then
        raise (Unsupported "Weighted counting requires a quantifier-free query");
      Wvarelim.count_homs ?budget (Cq.structure q) d
  | Varelim -> Varelim.count ?budget q d
  | Auto ->
      if quantifier_free then begin
        match Jointree_count.count (Cq.structure q) d with
        | Some c -> c
        | None -> Wvarelim.count_homs ?budget (Cq.structure q) d
      end
      else Varelim.count ?budget q d

(** [count_big q d] is [ans((A, X) → D)] with exact arbitrary-precision
    arithmetic (same automatic dispatch as [count ~strategy:Auto]). *)
let count_big (q : Cq.t) (d : Structure.t) : Bigint.t =
  if Cq.is_quantifier_free q then begin
    match Jointree_count.count_big (Cq.structure q) d with
    | Some c -> c
    | None -> Treedec_count.count_big (Cq.structure q) d
  end
  else Varelim.count_big q d
