(** Evaluation of conjunctive queries with existential quantification by
    variable elimination: counting answers means counting distinct
    projections of the homomorphism set onto the free variables. *)

(** [answer_relation ?budget q d] is the answer set as a relation over the
    covered free variables, with the number of free variables covered by
    no atom (each ranging freely over the universe).  The budget is
    charged proportionally to each joined intermediate. *)
val answer_relation : ?budget:Budget.t -> Cq.t -> Structure.t -> Relation.t * int

(** [count ?budget q d] is [ans((A, X) → D)]. *)
val count : ?budget:Budget.t -> Cq.t -> Structure.t -> int

(** [count_big q d] is the exact arbitrary-precision variant. *)
val count_big : Cq.t -> Structure.t -> Bigint.t

(** [answers q d] materialises the full answer set over the sorted free
    variables (tests and small examples). *)
val answers : Cq.t -> Structure.t -> int list list
