(** Counting answers to a single conjunctive query: strategy dispatch over
    the engines of this library. *)

type strategy =
  | Auto
      (** quantifier-free: join tree if acyclic, else weighted sum-product;
          quantified: variable elimination *)
  | Naive  (** enumerate assignments of the free variables (oracle) *)
  | Yannakakis  (** linear-time; acyclic quantifier-free only *)
  | Treedec  (** dense [n^(tw+1)] dynamic program; quantifier-free only *)
  | Weighted  (** sum-product elimination; quantifier-free only *)
  | Varelim  (** projection-based; any query *)

exception Unsupported of string

(** [count ?strategy ?budget ?pool q d] is [ans((A, X) → D)].  [Naive]
    enumerates assignments lazily and sweeps index ranges on a parallel
    [?pool]; [jobs = 1] (or no pool) is the bit-for-bit sequential path.
    @raise Unsupported when a forced strategy does not apply to [q].
    @raise Budget.Exhausted when the supplied budget runs out. *)
val count :
  ?strategy:strategy -> ?budget:Budget.t -> ?pool:Pool.t -> Cq.t -> Structure.t -> int

(** [count_big q d] is the exact arbitrary-precision variant with [Auto]
    dispatch. *)
val count_big : Cq.t -> Structure.t -> Bigint.t
