(** Weighted (sum-product) variable elimination: counting homomorphisms of
    quantifier-free conjunctive queries with sparsity-aware cost.

    The tree-decomposition dynamic program ({!Treedec_count}) enumerates all
    [|U(D)|^(tw+1)] bag assignments, which is prohibitive on large sparse
    databases even for treewidth 2.  This engine instead works on
    *weighted relations* (tuples with multiplicities): query variables are
    eliminated one by one — join the factors mentioning the variable, then
    project it out, summing multiplicities — so intermediate sizes are
    bounded by actual join sizes rather than dense assignment spaces.  It
    is the engine behind the Corollary 49 running-time experiments: on the
    Lemma 45 databases it exhibits precisely the triangle-counting-like
    superlinear behaviour for the cyclic term [K_t^k], while acyclic
    queries go through the linear {!Jointree_count} instead.

    Only valid for quantifier-free queries: with existential quantification
    multiplicities must not be summed (answers are counted once per
    projection, not per witness). *)

(** A weighted relation: distinct tuples over [vars] with positive
    multiplicities. *)
type wrel = { vars : int list; rows : (int list * int) list }

let scalar (w : int) : wrel = { vars = []; rows = (if w = 0 then [] else [ ([], w) ]) }

(** [normalise rows] merges duplicate tuples, summing weights. *)
let normalise (vars : int list) (rows : (int list * int) list) : wrel =
  let tbl = Hashtbl.create (List.length rows) in
  List.iter
    (fun (t, w) ->
      Hashtbl.replace tbl t (w + Option.value ~default:0 (Hashtbl.find_opt tbl t)))
    rows;
  { vars; rows = Hashtbl.fold (fun t w acc -> (t, w) :: acc) tbl [] }

let columns_of (r : wrel) (vs : int list) : int list -> int list =
  let pos = List.map (fun v -> Listx.index_of v r.vars) vs in
  fun tup ->
    let arr = Array.of_list tup in
    List.map (fun p -> arr.(p)) pos

(** [join r1 r2] is the weighted natural join (weights multiply). *)
let join (r1 : wrel) (r2 : wrel) : wrel =
  let shared = List.filter (fun v -> List.mem v r1.vars) r2.vars in
  let extra = List.filter (fun v -> not (List.mem v r1.vars)) r2.vars in
  let key1 = columns_of r1 shared and key2 = columns_of r2 shared in
  let extra2 = columns_of r2 extra in
  let index = Hashtbl.create (List.length r2.rows) in
  List.iter
    (fun (t2, w2) ->
      let k = key2 t2 in
      Hashtbl.replace index k
        ((extra2 t2, w2) :: Option.value ~default:[] (Hashtbl.find_opt index k)))
    r2.rows;
  let rows =
    List.concat_map
      (fun (t1, w1) ->
        match Hashtbl.find_opt index (key1 t1) with
        | None -> []
        | Some exts -> List.map (fun (e, w2) -> (t1 @ e, w1 * w2)) exts)
      r1.rows
  in
  normalise (r1.vars @ extra) rows

(** [eliminate r v] projects [v] out, summing multiplicities. *)
let eliminate (r : wrel) (v : int) : wrel =
  let keep = List.filter (fun w -> w <> v) r.vars in
  let extract = columns_of r keep in
  normalise keep (List.map (fun (t, w) -> (extract t, w)) r.rows)

(** [of_atom query_tuple db_tuples] lifts an atom to a weight-1 relation,
    honouring repeated variables. *)
let of_atom (query_tuple : int list) (db_tuples : int list list) : wrel =
  let plain = Relation.of_atom query_tuple db_tuples in
  { vars = plain.Relation.vars; rows = List.map (fun t -> (t, 1)) plain.Relation.tuples }

(** [count_homs ?budget a d] is [hom(A → D)] for a quantifier-free view of
    the structure [a] (all elements summed out).  The budget is charged
    proportionally to every joined intermediate, so dense joins exhaust a
    step allowance at a deterministic point. *)
let count_homs ?(budget : Budget.t option) (a : Structure.t) (d : Structure.t)
    : int =
  if not (Signature.subset (Structure.signature a) (Structure.signature d))
  then 0
  else begin
    let n = Structure.universe_size d in
    let factors =
      ref
        (List.concat_map
           (fun (name, ts) ->
             let td = Structure.relation d name in
             List.map (fun qt -> of_atom qt td) ts)
           (Structure.relations a))
    in
    let covered =
      List.concat_map (fun r -> r.vars) !factors |> List.sort_uniq compare
    in
    let isolated =
      List.length
        (List.filter (fun v -> not (List.mem v covered)) (Structure.universe a))
    in
    let remaining = ref covered in
    let empty = ref false in
    while !remaining <> [] && not !empty do
      let occurrences v =
        List.fold_left
          (fun acc r -> if List.mem v r.vars then acc + List.length r.rows else acc)
          0 !factors
      in
      let v = Listx.min_by occurrences !remaining in
      remaining := List.filter (fun w -> w <> v) !remaining;
      let with_v, without_v = List.partition (fun r -> List.mem v r.vars) !factors in
      match with_v with
      | [] -> () (* cannot happen: v is covered *)
      | first :: rest ->
          let joined = List.fold_left join first rest in
          Budget.ticks_opt budget (1 + List.length joined.rows);
          let projected = eliminate joined v in
          if projected.rows = [] then empty := true;
          factors := projected :: without_v
    done;
    if !empty then 0
    else begin
      (* all factors are now scalars *)
      let product =
        List.fold_left
          (fun acc r ->
            match r.rows with
            | [ ([], w) ] -> acc * w
            | [] -> 0
            | _ -> assert false)
          1 !factors
      in
      product * Combinat.power_int n isolated
    end
  end
