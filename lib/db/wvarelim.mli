(** Weighted (sum-product) variable elimination: a sparsity-aware counter
    for homomorphisms of quantifier-free queries.  Intermediate sizes are
    bounded by join sizes rather than the dense [|U(D)|^(tw+1)] assignment
    space; on the Lemma 45 databases it exhibits exactly the
    triangle-counting-like superlinear behaviour of the cyclic term
    (Corollary 49 experiments).  Not valid under existential
    quantification (multiplicities must not be summed there). *)

(** A weighted relation: distinct tuples with positive multiplicities. *)
type wrel = { vars : int list; rows : (int list * int) list }

val scalar : int -> wrel

(** [normalise vars rows] merges duplicate tuples, summing weights. *)
val normalise : int list -> (int list * int) list -> wrel

(** [join r1 r2] is the weighted natural join (weights multiply). *)
val join : wrel -> wrel -> wrel

(** [eliminate r v] projects [v] out, summing multiplicities. *)
val eliminate : wrel -> int -> wrel

(** [of_atom query_tuple db_tuples] lifts an atom to a weight-1 relation. *)
val of_atom : int list -> int list list -> wrel

(** [count_homs ?budget a d] is [hom(A → D)]; the budget is charged
    proportionally to every joined intermediate. *)
val count_homs : ?budget:Budget.t -> Structure.t -> Structure.t -> int
